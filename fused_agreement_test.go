package repro_test

// Randomized fused/unfused agreement: with Options.Fuse set, maximal
// scan→filter→project(→probe) chains collapse into single-loop FusedPipeline
// operators — and must produce byte-identical results, in identical order, to
// the unfused operator tree running the same plans against the same catalog.
// Serially and at every DOP, under unlimited and tight memory budgets, on
// plain and UA-rewritten plans. This is the acceptance gate for the fusion
// layer: like typed execution before it, fusion is an optimization, never a
// semantics change.

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/types"
)

// fusedBudgets are the memory regimes the fused suite runs under: unlimited,
// and a budget tight enough to force the governor on for these tables. Under
// a governor, fused probes must decline (governed joins need the spilling
// HashJoin) and fall back to the unfused tree — agreement pins that the
// fallback actually composes.
func fusedBudgets() []int64 { return []int64{0, 8 << 10} }

func fusedOpts(dop int, budget int64, dir string) physical.Options {
	return physical.Options{DOP: dop, MorselSize: 64, MinParallelRows: 1,
		Fuse: true, MemBudget: budget, SpillDir: dir}
}

func TestFusedUnfusedAgreementRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	dir := t.TempDir()
	for trial := 0; trial < 120; trial++ {
		cat := typedAgreementCatalog(rng)
		g := &planGen{rng: rng, cat: cat}
		plan, _ := g.gen(1 + rng.Intn(3))

		want := drainOpts(t, plan, cat, physical.Options{DOP: 1}, "unfused serial")
		for _, dop := range typedDOPs() {
			for _, budget := range fusedBudgets() {
				got := drainOpts(t, plan, cat, fusedOpts(dop, budget, dir), "fused")
				mustMatchRows(t, got, want, "fused vs unfused")
			}
		}
	}
}

// TestFusedUnfusedAgreementUA runs UA-rewritten plans — trailing certainty
// column, least() certainty combination at joins — through the fused engine
// at every DOP and budget against the unfused serial tree. UA projections are
// computing projections (least(), certainty arithmetic), so rewritten plans
// exercise the fusion gate's main target.
func TestFusedUnfusedAgreementUA(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	dir := t.TempDir()
	for trial := 0; trial < 120; trial++ {
		det := typedAgreementCatalog(rng)
		enc := engine.NewCatalog()
		for _, name := range det.Names() {
			enc.PutAs(name, rewrite.EncodeDeterministic(det.Get(name)))
		}
		g := &planGen{rng: rng, cat: det, raPlus: true}
		plan, _ := g.gen(1 + rng.Intn(3))
		ua, err := rewrite.RewriteUA(plan)
		if err != nil {
			t.Fatalf("rewrite: %v", err)
		}

		want := drainOpts(t, ua, rowSource{enc}, physical.Options{DOP: 1}, "unfused serial UA")
		for _, dop := range typedDOPs() {
			for _, budget := range fusedBudgets() {
				got := drainOpts(t, ua, enc, fusedOpts(dop, budget, dir), "fused UA")
				mustMatchRows(t, got, want, "fused vs unfused UA")
			}
		}
	}
}

// fusedTestCatalog builds two small int tables suitable for chain and probe
// plans: t(k, v) with k = i%7, v = i, and r(k, w) with one row per key 0..6.
func fusedTestCatalog() *engine.Catalog {
	tb := engine.NewTable(types.NewSchema("t", "k", "v"))
	for i := 0; i < 200; i++ {
		tb.AppendVals(types.NewInt(int64(i%7)), types.NewInt(int64(i)))
	}
	rb := engine.NewTable(types.NewSchema("r", "k", "w"))
	for i := 0; i < 7; i++ {
		rb.AppendVals(types.NewInt(int64(i)), types.NewInt(int64(i*100)))
	}
	cat := engine.NewCatalog()
	cat.Put(tb)
	cat.Put(rb)
	return cat
}

func fusedChainPlan(cat *engine.Catalog) algebra.Node {
	sch := cat.Get("t").Schema
	k := algebra.Col{Idx: 0, Name: "k"}
	v := algebra.Col{Idx: 1, Name: "v"}
	return &algebra.Project{
		Input: &algebra.Filter{
			Input: &algebra.Scan{Table: "t", TblSchema: sch},
			Pred: algebra.Bin{Op: algebra.OpLt, L: v,
				R: algebra.Const{V: types.NewInt(100)}},
		},
		Exprs: []algebra.Expr{k, algebra.Bin{Op: algebra.OpAdd, L: k, R: v}},
		Names: []string{"k", "kv"},
	}
}

// TestFusedPathEngages pins that Fuse actually changes the lowered tree: the
// chain collapses to a single FusedPipeline (serially and inside Gather
// workers), the probe variant absorbs the join's probe side, Explain renders
// the collapsed chain as one node, and without Fuse nothing changes.
func TestFusedPathEngages(t *testing.T) {
	cat := fusedTestCatalog()
	plan := fusedChainPlan(cat)

	// Serial: one FusedPipeline, exact Explain rendering.
	op, err := physical.LowerOpts(plan, cat, physical.Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*physical.FusedPipeline); !ok {
		t.Fatalf("serial fused lowering produced %T, want *FusedPipeline", op)
	}
	out, err := engine.ExplainPhysicalOpts(plan, cat, physical.Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if want := "FusedPipeline[scan t → filter → project]\n"; out != want {
		t.Fatalf("fused explain:\n%s\nwant:\n%s", out, want)
	}

	// Without the flag the tree is untouched — the reference engine remains
	// the default.
	op, err = physical.LowerOpts(plan, cat, physical.Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*physical.Project); !ok {
		t.Fatalf("unfused lowering produced %T, want *Project", op)
	}

	// Parallel: each Gather worker runs a FusedPipeline over its MorselScan.
	popt := physical.Options{DOP: 2, MorselSize: 16, MinParallelRows: 1, Fuse: true}
	op, err = physical.LowerOpts(plan, cat, popt)
	if err != nil {
		t.Fatal(err)
	}
	g, ok := op.(*physical.Gather)
	if !ok {
		t.Fatalf("parallel fused lowering produced %T, want *Gather", op)
	}
	if _, ok := g.Workers[0].Pipe.(*physical.FusedPipeline); !ok {
		t.Fatalf("gather worker runs %T, want *FusedPipeline", g.Workers[0].Pipe)
	}

	// Probe: the chain absorbs the join's probe side and Explain shows the
	// build subtree beneath it.
	join := &algebra.Join{Left: fusedChainPlan(cat),
		Right: &algebra.Scan{Table: "r", TblSchema: cat.Get("r").Schema},
		EquiL: []int{0}, EquiR: []int{0}}
	out, err = engine.ExplainPhysicalOpts(join, cat, physical.Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "FusedPipeline[scan t → filter → project → probe]") ||
		!strings.Contains(out, "build:") {
		t.Fatalf("fused probe explain:\n%s", out)
	}

	// A governed join declines fusion of the probe (spilling needs the real
	// HashJoin) while the scan-side chain still fuses below it.
	gopt := physical.Options{DOP: 1, Fuse: true, MemBudget: 8 << 10, SpillDir: t.TempDir()}
	out, err = engine.ExplainPhysicalOpts(join, cat, gopt)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "probe]") || !strings.Contains(out, "FusedPipeline[scan t → filter → project]") {
		t.Fatalf("governed fused explain:\n%s", out)
	}
}

// fusedAggPlan is an aggregate over the fusable chain: grouped by the
// chain's first output, summing its computed one.
func fusedAggPlan(cat *engine.Catalog) *algebra.Aggregate {
	return &algebra.Aggregate{
		Input:      fusedChainPlan(cat),
		GroupBy:    []algebra.Expr{algebra.Col{Idx: 0, Name: "k"}},
		GroupNames: []string{"g"},
		Aggs: []algebra.AggSpec{
			{Func: algebra.AggCount, Star: true, Name: "n"},
			{Func: algebra.AggSum, Arg: algebra.Col{Idx: 1, Name: "kv"}, Name: "s"},
		},
	}
}

// TestFusedAggEngages pins that Fuse carries past the pipeline breaker: an
// ungoverned aggregate over a fusable chain lowers to one FusedAggregate
// (ParallelFusedAggregate at DOP > 1), Explain renders the collapsed chain
// including the aggregate, a memory budget declines fusion back to the
// governed spilling HashAggregate, and without Fuse nothing changes.
func TestFusedAggEngages(t *testing.T) {
	cat := fusedTestCatalog()

	// Serial: the whole chain, breaker included, is one operator. A bare
	// scan-aggregate fuses too — there is no worth gate past the breaker.
	op, err := physical.LowerOpts(fusedAggPlan(cat), cat, physical.Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*physical.FusedAggregate); !ok {
		t.Fatalf("serial fused aggregate lowering produced %T, want *FusedAggregate", op)
	}
	bare := &algebra.Aggregate{
		Input:   &algebra.Scan{Table: "t", TblSchema: cat.Get("t").Schema},
		GroupBy: []algebra.Expr{algebra.Col{Idx: 0, Name: "k"}}, GroupNames: []string{"g"},
		Aggs: []algebra.AggSpec{{Func: algebra.AggCount, Star: true, Name: "n"}},
	}
	out, err := engine.ExplainPhysicalOpts(bare, cat, physical.Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	// The optimizer prunes the scan through an inserted projection before
	// lowering, so the collapsed chain shows it.
	if want := "FusedAggregate[scan t → project → aggregate; by k#0; count(*)]\n"; out != want {
		t.Fatalf("fused aggregate explain:\n%s\nwant:\n%s", out, want)
	}

	// Parallel: morsel workers fold windows straight off the shared source.
	popt := physical.Options{DOP: 2, MorselSize: 16, MinParallelRows: 1, Fuse: true}
	op, err = physical.LowerOpts(fusedAggPlan(cat), cat, popt)
	if err != nil {
		t.Fatal(err)
	}
	pfa, ok := op.(*physical.ParallelFusedAggregate)
	if !ok {
		t.Fatalf("parallel fused aggregate lowering produced %T, want *ParallelFusedAggregate", op)
	}
	if pfa.DOP() != 2 {
		t.Fatalf("parallel fused aggregate DOP %d, want 2", pfa.DOP())
	}

	// Governed: aggregation must stay the serial spilling HashAggregate; the
	// chain below it still fuses.
	gopt := physical.Options{DOP: 1, Fuse: true, MemBudget: 8 << 10, SpillDir: t.TempDir()}
	gout, err := engine.ExplainPhysicalOpts(fusedAggPlan(cat), cat, gopt)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(gout, "HashAggregate[") ||
		!strings.Contains(gout, "FusedPipeline[scan t → filter → project]") {
		t.Fatalf("governed fused aggregate explain:\n%s", gout)
	}

	// Without the flag the tree is untouched.
	op, err = physical.LowerOpts(fusedAggPlan(cat), cat, physical.Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*physical.HashAggregate); !ok {
		t.Fatalf("unfused aggregate lowering produced %T, want *HashAggregate", op)
	}
}

// TestFusedAggDirectedParity runs the fused aggregate against the serial
// HashAggregate on the inputs that stress its unboxed accumulation arms:
// NaN and ±0 floats (Compare's NaN never replaces an extremum), integers
// past 2^53 (min/max widen through float64 with ties keeping the incumbent,
// exactly like Compare), NULL-riddled columns (skipped by every aggregate
// but COUNT(*)), strings and booleans (counted, min/maxed through the boxed
// arm), mixed-kind columns, a global aggregate over an empty selection (one
// row out), and a grouped aggregate over an empty selection (zero rows out).
func TestFusedAggDirectedParity(t *testing.T) {
	const big = int64(1) << 53
	mk := func() *engine.Catalog {
		tb := engine.NewTable(types.NewSchema("d", "k", "i", "f", "s"))
		floats := []float64{math.NaN(), math.Inf(1), math.Copysign(0, -1), 0, 1.5, -2.25, math.NaN()}
		ints := []int64{big, big + 1, -big - 1, 0, -1, 3, big}
		for r := 0; r < 60; r++ {
			row := []types.Value{
				types.NewInt(int64(r % 3)),
				types.NewInt(ints[r%len(ints)]),
				types.NewFloat(floats[r%len(floats)]),
				types.NewString(string(rune('a' + r%4))),
			}
			if r%7 == 0 {
				row[1] = types.Null()
			}
			if r%5 == 0 {
				row[2] = types.Null()
			}
			tb.Append(row)
		}
		cat := engine.NewCatalog()
		cat.Put(tb)
		return cat
	}
	scan := func(cat *engine.Catalog) algebra.Node {
		return &algebra.Scan{Table: "d", TblSchema: cat.Get("d").Schema}
	}
	aggsAll := []algebra.AggSpec{
		{Func: algebra.AggCount, Star: true, Name: "n"},
		{Func: algebra.AggCount, Arg: algebra.Col{Idx: 1, Name: "i"}, Name: "ni"},
		{Func: algebra.AggSum, Arg: algebra.Col{Idx: 1, Name: "i"}, Name: "si"},
		{Func: algebra.AggSum, Arg: algebra.Col{Idx: 2, Name: "f"}, Name: "sf"},
		{Func: algebra.AggAvg, Arg: algebra.Col{Idx: 2, Name: "f"}, Name: "af"},
		{Func: algebra.AggMin, Arg: algebra.Col{Idx: 1, Name: "i"}, Name: "mi"},
		{Func: algebra.AggMax, Arg: algebra.Col{Idx: 1, Name: "i"}, Name: "xi"},
		{Func: algebra.AggMin, Arg: algebra.Col{Idx: 2, Name: "f"}, Name: "mf"},
		{Func: algebra.AggMax, Arg: algebra.Col{Idx: 2, Name: "f"}, Name: "xf"},
		{Func: algebra.AggMin, Arg: algebra.Col{Idx: 3, Name: "s"}, Name: "ms"},
		{Func: algebra.AggMax, Arg: algebra.Col{Idx: 3, Name: "s"}, Name: "xs"},
	}
	never := algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1, Name: "i"},
		R: algebra.Const{V: types.NewInt(-big * 2)}}
	plans := []algebra.Node{
		&algebra.Aggregate{Input: scan(mk()), GroupBy: []algebra.Expr{algebra.Col{Idx: 0, Name: "k"}},
			GroupNames: []string{"g"}, Aggs: aggsAll},
		&algebra.Aggregate{Input: scan(mk()), Aggs: aggsAll},
		&algebra.Aggregate{Input: &algebra.Filter{Input: scan(mk()), Pred: never}, Aggs: aggsAll},
		&algebra.Aggregate{Input: &algebra.Filter{Input: scan(mk()), Pred: never},
			GroupBy:    []algebra.Expr{algebra.Col{Idx: 0, Name: "k"}},
			GroupNames: []string{"g"}, Aggs: aggsAll},
	}
	cat := mk()
	for pi, plan := range plans {
		want := drainOpts(t, plan, cat, physical.Options{DOP: 1}, "serial HashAggregate")
		for _, dop := range typedDOPs() {
			got := drainOpts(t, plan, cat, fusedOpts(dop, 0, ""), "fused aggregate")
			mustMatchRows(t, got, want, fmt.Sprintf("plan %d dop %d: fused vs serial aggregate", pi, dop))
		}
	}
}

// TestFusedFilterOnlyStaysUnfused pins the worthFusing gate: a bare
// scan→filter chain keeps the typed Filter (which moves row pointers and
// boxes nothing — fusing it would only add boxing), and a passthrough
// projection with no predicate likewise stays on the column-only path.
func TestFusedFilterOnlyStaysUnfused(t *testing.T) {
	cat := fusedTestCatalog()
	sch := cat.Get("t").Schema
	v := algebra.Col{Idx: 1, Name: "v"}
	filter := &algebra.Filter{
		Input: &algebra.Scan{Table: "t", TblSchema: sch},
		Pred:  algebra.Bin{Op: algebra.OpLt, L: v, R: algebra.Const{V: types.NewInt(100)}},
	}
	op, err := physical.LowerOpts(filter, cat, physical.Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*physical.Filter); !ok {
		t.Fatalf("filter-only chain lowered to %T, want *Filter", op)
	}

	passthrough := &algebra.Project{
		Input: &algebra.Scan{Table: "t", TblSchema: sch},
		Exprs: []algebra.Expr{algebra.Col{Idx: 0, Name: "k"}},
		Names: []string{"k"},
	}
	op, err = physical.LowerOpts(passthrough, cat, physical.Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := op.(*physical.Project); !ok {
		t.Fatalf("passthrough project lowered to %T, want *Project", op)
	}
}
