// Probabilistic databases: a block-independent database queried three ways —
// UA-DB (constant-time certainty bounds), MayBMS-style exact confidence
// computation, and Monte-Carlo (MCDB-style) estimation — showing the cost
// spectrum the paper's Figure 19 quantifies.
package main

import (
	"fmt"
	"time"

	"repro/internal/baseline/maybms"
	"repro/internal/baseline/mcdb"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

func main() {
	// A sensor-reading BI-DB: each sensor reports a reading that may be one
	// of several disambiguations, with probabilities.
	x := models.NewXRelation(types.NewSchema("readings", "sensor", "room", "status"))
	x.Probabilistic = true
	s := func(v string) types.Value { return types.NewString(v) }
	add := func(sensor string, alts ...models.Alternative) {
		x.Add(models.XTuple{Alts: alts})
		_ = sensor
	}
	add("s1",
		models.Alternative{Data: types.Tuple{s("s1"), s("lab"), s("hot")}, Prob: 0.7},
		models.Alternative{Data: types.Tuple{s("s1"), s("lab"), s("ok")}, Prob: 0.3})
	add("s2",
		models.Alternative{Data: types.Tuple{s("s2"), s("lab"), s("hot")}, Prob: 1.0})
	add("s3",
		models.Alternative{Data: types.Tuple{s("s3"), s("office"), s("ok")}, Prob: 0.6},
		models.Alternative{Data: types.Tuple{s("s3"), s("hall"), s("ok")}, Prob: 0.4})

	q := kdb.ProjectQ{
		Input: kdb.SelectQ{
			Input: kdb.Table{Name: "readings"},
			Pred:  kdb.AttrConst{Attr: "status", Op: kdb.OpEq, Const: s("hot")},
		},
		Attrs: []string{"room"},
	}

	// 1. UA-DB: best-guess rows with certainty labels, no enumeration.
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	uaDB.Put(uadb.FromXDB(x))
	start := time.Now()
	uaRes, err := uadb.Eval(q, uaDB)
	if err != nil {
		panic(err)
	}
	fmt.Printf("UA-DB (%v): rooms with a hot reading in the best guess\n", time.Since(start))
	for _, t := range uaRes.Tuples() {
		p := uaRes.Get(t)
		mark := "uncertain"
		if p.Cert > 0 {
			mark = "CERTAIN"
		}
		fmt.Printf("  %-8s %s\n", t[0], mark)
	}

	// 2. MayBMS-style: every possible answer with exact confidence.
	linDB, blocks := maybms.BuildDB(map[string]*models.XRelation{"readings": x})
	start = time.Now()
	linRes, err := maybms.Eval(q, linDB)
	if err != nil {
		panic(err)
	}
	confs := maybms.Conf(linRes, blocks, 0, 0)
	fmt.Printf("\nMayBMS-style (%v): all possible answers with conf()\n", time.Since(start))
	for _, rt := range confs {
		fmt.Printf("  %-8s P = %.3f\n", rt.Tuple[0], rt.Prob)
	}

	// 3. MCDB-style: sampled worlds.
	start = time.Now()
	mc, err := mcdb.Run(map[string]*models.XRelation{"readings": x},
		"SELECT room FROM readings WHERE status = 'hot'", 100, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nMCDB-style, 100 samples (%v): appearance frequencies\n", time.Since(start))
	for key, n := range mc.Count {
		fmt.Printf("  %-8s %d/100\n", mc.Tuple[key][0], n)
	}
}
