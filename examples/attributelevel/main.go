// Attribute-level annotations: the paper's future-work extension
// (Section 12), prototyped in internal/attrua. Tuple-level UA-DBs mark a
// whole row uncertain as soon as any cell is imputed; attribute-level
// labels track which cells are uncertain, so projections that discard the
// noisy cells recover full certainty — removing the false negatives the
// paper's Figure 15 measures.
package main

import (
	"fmt"

	"repro/internal/attrua"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

func main() {
	s := func(v string) types.Value { return types.NewString(v) }
	i := func(v int64) types.Value { return types.NewInt(v) }

	// A patients table where only the *age* column was imputed: each
	// uncertain row has two candidate ages but identical id/diagnosis.
	x := models.NewXRelation(types.NewSchema("patients", "id", "diagnosis", "age"))
	x.AddCertain(types.Tuple{i(1), s("flu"), i(34)})
	x.AddChoice(
		types.Tuple{i(2), s("asthma"), i(51)},
		types.Tuple{i(2), s("asthma"), i(15)},
	)
	x.AddChoice(
		types.Tuple{i(3), s("flu"), i(42)},
		types.Tuple{i(3), s("flu"), i(44)},
	)

	// Tuple-level UA-DB: the query "which diagnoses occur?" marks rows 2
	// and 3 uncertain even though their diagnoses are beyond doubt.
	db := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	db.Put(uadb.FromXDB(x))
	res, err := uadb.Eval(kdb.ProjectQ{Input: kdb.Table{Name: "patients"}, Attrs: []string{"id", "diagnosis"}}, db)
	if err != nil {
		panic(err)
	}
	fmt.Println("Tuple-level labels on SELECT id, diagnosis:")
	for _, t := range res.Tuples() {
		mark := "uncertain (false negative!)"
		if res.Get(t).Cert > 0 {
			mark = "CERTAIN"
		}
		fmt.Printf("  %-18s %s\n", t, mark)
	}

	// Attribute-level labels know the uncertainty lives in the age column
	// only: projecting it away restores certainty.
	rel := attrua.FromXDB(x)
	proj := attrua.Project(rel, []int{0, 1})
	fmt.Println("\nAttribute-level labels on the same projection:")
	for _, row := range proj.Rows {
		mark := "uncertain"
		if row.TupleCertain() {
			mark = "CERTAIN"
		}
		fmt.Printf("  %-18s %s\n", row.Data, mark)
	}

	// Selections show the flip side: filtering on the uncertain age makes
	// survival uncertain even for rows whose other cells are clean.
	adults := attrua.Select(rel, attrua.Pred{
		Eval:  func(t types.Tuple) bool { return t[2].Int() >= 18 },
		Reads: []int{2},
	})
	fmt.Println("\nAfter WHERE age >= 18 (age was imputed):")
	for _, row := range adults.Rows {
		mark := "uncertain"
		if row.ExistsCertain {
			mark = "certainly present"
		}
		fmt.Printf("  %-22s %s\n", row.Data, mark)
	}
}
