// Quickstart: the paper's running example (Figures 2 and 3). An address
// table with ambiguous geocodings is joined with a region lookup table; the
// UA-DB result contains every best-guess answer, each labeled certain or
// uncertain, sandwiching the certain answers.
package main

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

func f(v float64) types.Value { return types.NewFloat(v) }
func i(v int64) types.Value   { return types.NewInt(v) }
func s(v string) types.Value  { return types.NewString(v) }

func main() {
	// ADDR: tuples 2 and 3 have ambiguous geocodings (x-tuples with two
	// alternatives); the first alternative is the geocoder's best guess.
	addr := models.NewXRelation(types.NewSchema("addr", "id", "lat", "lon"))
	addr.AddCertain(types.Tuple{i(1), f(42.94), f(-78.82)}) // 51 Comstock
	addr.AddChoice(                                         // Grant at Ferguson: Buffalo or Tucson?
		types.Tuple{i(2), f(42.91), f(-78.89)},
		types.Tuple{i(2), f(32.25), f(-110.87)},
	)
	addr.AddChoice( // 499 Woodlawn: two candidate rooftops
		types.Tuple{i(3), f(42.905), f(-78.845)},
		types.Tuple{i(3), f(42.904), f(-78.846)},
	)
	addr.AddCertain(types.Tuple{i(4), f(42.94), f(-78.80)}) // 192 Davidson

	// LOC: a deterministic lookup table of bounding boxes.
	loc := models.NewXRelation(types.NewSchema("loc",
		"locale", "state", "lat1", "lon1", "lat2", "lon2"))
	box := func(locale, state string, a, b, c, d float64) {
		loc.AddCertain(types.Tuple{s(locale), s(state), f(a), f(b), f(c), f(d)})
	}
	box("Lasalle", "NY", 42.93, -78.83, 42.95, -78.81)
	box("Tucson", "AZ", 31.99, -111.045, 32.32, -110.71)
	box("Grant Ferry", "NY", 42.91, -78.91, 42.92, -78.88)
	box("Kingsley", "NY", 42.90, -78.85, 42.91, -78.84)
	box("Kensington", "NY", 42.93, -78.81, 42.96, -78.78)

	// Build the UA-DB: labeling scheme + best-guess world per relation,
	// then encode for the query-rewriting middleware.
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	uaDB.Put(uadb.FromXDB(addr))
	uaDB.Put(uadb.FromXDB(loc))
	front := rewrite.NewFrontend(rewrite.EncodeUADatabase(uaDB))

	// The spatial join of Example 1.
	qres, err := front.Query(context.Background(), `
		SELECT a.id, l.locale, l.state
		FROM addr a, loc l
		WHERE a.lat >= l.lat1 AND a.lat <= l.lat2
		  AND a.lon >= l.lon1 AND a.lon <= l.lon2`, front.Opts)
	if err != nil {
		panic(err)
	}
	res := engine.ResultTable(qres)

	fmt.Println("UA-DB answer (Figure 3d): id, locale, state, certain?")
	printLabeled(res)

	// Compare with the deterministic best-guess answer (no labels) and the
	// certain answers (via world enumeration — exponential, for reference).
	detCat := rewrite.DetCatalog(uaDB)
	detPlan, err := engine.NewPlanner(detCat).PlanSQL(
		"SELECT a.id, l.locale, l.state FROM addr a, loc l WHERE a.lat >= l.lat1 AND a.lat <= l.lat2 AND a.lon >= l.lon1 AND a.lon <= l.lon2")
	if err != nil {
		panic(err)
	}
	detRes, err := engine.NewSession(detCat, physical.Options{}).Execute(context.Background(), detPlan)
	if err != nil {
		panic(err)
	}
	det := engine.ResultTable(detRes)
	fmt.Printf("\nBest-guess query processing returns %d rows with no uncertainty information.\n", det.NumRows())
	fmt.Println("The UA-DB returns the same rows plus a certainty label, at the same cost.")
}

func printLabeled(res *engine.Table) {
	c := res.Schema.Arity() - 1
	sorted := res.Clone()
	sorted.SortRows()
	for _, row := range sorted.Rows {
		mark := "uncertain"
		if row[c].Int() == 1 {
			mark = "CERTAIN"
		}
		fmt.Printf("  %v %-12v %-3v %s\n", row[0], row[1], row[2], mark)
	}
}
