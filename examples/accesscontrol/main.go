// Access control: UA-DBs over the clearance-level semiring A (Section 11.3,
// "Beyond Set Semantics"). Tuple annotations are clearance levels
// 0 < T < S < C < P; a UA pair [c, d] bounds a tuple's certain clearance:
// it is definitely visible at level c and visible in the best guess at
// level d. Queries combine levels with min (join) and max (union), and the
// bounds are preserved.
package main

import (
	"fmt"

	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

func main() {
	k := semiring.Access
	schema := types.NewSchema("docs", "doc", "topic")
	s := func(v string) types.Value { return types.NewString(v) }

	// The best-guess world assigns each document's row a clearance level as
	// detected by a heuristic classifier; the labeling holds the level each
	// row is *guaranteed* to have (a lower bound — the classifier may have
	// under-redacted).
	world := kdb.New[semiring.Level](k, schema)
	label := kdb.New[semiring.Level](k, schema)
	rows := []struct {
		doc, topic string
		guaranteed semiring.Level // conservative lower bound
		detected   semiring.Level // best-guess level
	}{
		{"budget.xls", "finance", semiring.LevelPublic, semiring.LevelPublic},
		{"merger.doc", "finance", semiring.LevelTopSecret, semiring.LevelSecret},
		{"roster.pdf", "people", semiring.LevelConfidential, semiring.LevelConfidential},
		{"launch.key", "product", semiring.LevelTopSecret, semiring.LevelConfidential},
	}
	for _, r := range rows {
		t := types.Tuple{s(r.doc), s(r.topic)}
		world.Set(t, r.detected)
		label.Set(t, r.guaranteed)
	}

	ua := uadb.New[semiring.Level](k, label, world)
	db := kdb.NewDatabase[semiring.Pair[semiring.Level]](semiring.UA[semiring.Level](k))
	db.Put(ua)

	// Join documents on shared topic: the joined row's clearance is the min
	// of the inputs (you need access to both), and the UA bounds propagate.
	q := kdb.ProjectQ{
		Input: kdb.JoinQ{
			Left:  kdb.Table{Name: "docs"},
			Right: kdb.RenameQ{Input: kdb.Table{Name: "docs"}, Attrs: []string{"doc2", "topic2"}},
			Pred: kdb.And{
				kdb.AttrAttr{Left: "topic", Right: "topic2", PosLeft: -1, PosRight: -1, Op: kdb.OpEq},
				kdb.AttrAttr{Left: "doc", Right: "doc2", PosLeft: -1, PosRight: -1, Op: kdb.OpLt},
			},
		},
		Attrs: []string{"doc", "doc2"},
	}
	res, err := uadb.Eval(q, db)
	if err != nil {
		panic(err)
	}
	fmt.Println("Document pairs on a shared topic, with clearance bounds [guaranteed, detected]:")
	for _, t := range res.Tuples() {
		p := res.Get(t)
		fmt.Printf("  %-22s [%s, %s]\n", t, p.Cert, p.Det)
	}
	fmt.Println("\nA user cleared at the 'guaranteed' level may definitely see the pair;")
	fmt.Println("between the bounds, access depends on how the uncertainty resolves.")
}
