// Crime analytics: the paper's "real queries" (Section 11.4) over simulated
// Chicago open data with imputation-induced uncertainty. Demonstrates that
// UA-DB answers cost nearly the same as deterministic best-guess answers
// while flagging exactly which rows depend on imputed values.
package main

import (
	"context"
	"fmt"
	"time"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/uadb"
)

func main() {
	// 3000 incidents per table, 5% of rows with imputed (uncertain) cells.
	rt := datagen.GenerateRealTables(3000, 0.05, 42)

	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range rt.Tables() {
		uaDB.Put(uadb.FromXDB(x))
	}
	front := rewrite.NewFrontend(rewrite.EncodeUADatabase(uaDB))
	detCat := rewrite.DetCatalog(uaDB)
	det := engine.NewPlanner(detCat)
	detSess := engine.NewSession(detCat, physical.Options{})

	for _, q := range datagen.RealQueries() {
		start := time.Now()
		detPlan, err := det.PlanSQL(q.SQL)
		if err != nil {
			panic(err)
		}
		dres, err := detSess.Execute(context.Background(), detPlan)
		if err != nil {
			panic(err)
		}
		detRes := engine.ResultTable(dres)
		detTime := time.Since(start)

		start = time.Now()
		ures, err := front.Query(context.Background(), q.SQL, front.Opts)
		if err != nil {
			panic(err)
		}
		uaRes := engine.ResultTable(ures)
		uaTime := time.Since(start)

		certain := 0
		c := uaRes.Schema.Arity() - 1
		for _, row := range uaRes.Rows {
			if row[c].Int() == 1 {
				certain++
			}
		}
		fmt.Printf("%s: %d rows (%d certain, %d flagged uncertain)\n",
			q.Name, uaRes.NumRows(), certain, uaRes.NumRows()-certain)
		fmt.Printf("    deterministic %v, UA-DB %v (det rows: %d)\n",
			detTime, uaTime, detRes.NumRows())
	}

	fmt.Println("\nEvery flagged row is present in the analyst's best-guess answer —")
	fmt.Println("nothing is hidden, unlike certain-answer semantics — but rows that")
	fmt.Println("depend on imputed values are explicitly marked for review.")
}
