package repro_test

// Randomized spill/in-memory agreement: the memory-governed engine —
// spilling sort runs, aggregate generations, and grace join partitions to
// disk — must produce byte-identical results, in identical order, to the
// in-memory engine on arbitrary plans, at every budget and every DOP, on
// plain and UA-rewritten plans. This is the acceptance gate for the
// out-of-core layer: spilling is a residency change, never a semantics
// change. Every execution also asserts that its spill directory is empty
// again after Close — the temp-file leak check — including when a Limit
// closes the plan early.
//
// The float corpus is dyadic (0.5, 1.5, 4, ...) and NaN-free for the same
// reason the parallel agreement corpus is integer-valued: spilled
// aggregation merges partial sums generation by generation, which
// re-associates float addition, and NaN's non-transitive ordering makes
// MIN/MAX merge order-sensitive. Dyadic sums are exactly associative, so
// byte-identity is a fair requirement.

import (
	"math"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/spill"
	"repro/internal/types"
)

// spillAgreementCatalog builds tables with NULLs, duplicate keys, ints,
// dyadic floats, strings, and bools — big enough that a quarter-of-data
// budget actually binds, small enough for hundreds of trials.
func spillAgreementCatalog(rng *rand.Rand) *engine.Catalog {
	cat := engine.NewCatalog()
	floats := []float64{0, math.Copysign(0, -1), 1.5, -2.25, 4, 2, 0.5, -8, 1024.125}
	// No 2^53-scale ints here: they may share a column with floats, and a
	// SUM mixing them is not exactly associative — the huge-int key
	// encodings are covered by the typed agreement suite and the spill
	// codec fuzzer instead.
	val := func() types.Value {
		switch rng.Intn(8) {
		case 0:
			return types.Null()
		case 1, 2, 3:
			return types.NewInt(int64(rng.Intn(7)))
		case 4:
			return types.NewFloat(floats[rng.Intn(len(floats))])
		case 5:
			return types.NewBool(rng.Intn(2) == 0)
		default:
			return types.NewString(string(rune('a' + rng.Intn(4))))
		}
	}
	mk := func(name string, attrs []string, n int) {
		t := engine.NewTable(types.NewSchema(name, attrs...))
		for i := 0; i < n; i++ {
			row := make([]types.Value, len(attrs))
			for j := range row {
				row[j] = val()
			}
			row[len(row)-1] = types.NewInt(int64(i)) // keep rows distinguishable
			t.Append(row)
		}
		cat.Put(t)
	}
	mk("r", []string{"a", "b", "c"}, 20+rng.Intn(100))
	mk("s", []string{"d", "e"}, 10+rng.Intn(60))
	return cat
}

// catalogBytes sizes the catalog's data with the governor's own estimator,
// so the quarter budget means the same thing the operators' accounting does.
func catalogBytes(cat *engine.Catalog) int64 {
	var n int64
	for _, name := range cat.Names() {
		n += physical.RowsMemSize(cat.Get(name).Rows)
	}
	return n
}

// spillBudgets returns the harness budgets: unlimited (the in-memory
// engine, byte for byte), a quarter of the data, and a pathological 512
// bytes that forces every pipeline breaker to spill.
func spillBudgets(cat *engine.Catalog) []int64 {
	return []int64{0, catalogBytes(cat) / 4, 512}
}

// drainSpilling lowers and drains plan with the given budget/DOP, pointing
// spills at dir and asserting dir is empty again after the drain's Close.
func drainSpilling(t *testing.T, plan algebra.Node, src physical.Source,
	budget int64, dop int, dir string, what string) [][]types.Value {
	t.Helper()
	opt := physical.Options{DOP: dop, MorselSize: 64, MinParallelRows: 1,
		MemBudget: budget, SpillDir: dir}
	op, err := physical.LowerOpts(plan, src, opt)
	if err != nil {
		t.Fatalf("%s: lower: %v", what, err)
	}
	rows, err := physical.Drain(op)
	if err != nil {
		t.Fatalf("%s: drain: %v", what, err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	if len(ents) != 0 {
		t.Fatalf("%s: %d spill files leaked after Close", what, len(ents))
	}
	return rows
}

func spillDOPs() []int {
	dops := []int{1, 2}
	if n := runtime.NumCPU(); n > 2 {
		dops = append(dops, n)
	}
	return dops
}

func TestSpillAgreementRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	dir := t.TempDir()
	for trial := 0; trial < trials; trial++ {
		cat := spillAgreementCatalog(rng)
		g := &planGen{rng: rng, cat: cat}
		plan, _ := g.gen(1 + rng.Intn(3))

		want := drainOpts(t, plan, rowSource{cat}, physical.Options{DOP: 1}, "in-memory serial")
		for _, budget := range spillBudgets(cat) {
			for _, dop := range spillDOPs() {
				got := drainSpilling(t, plan, cat, budget, dop, dir, "spilling")
				mustMatchRows(t, got, want, "spilling vs in-memory")
			}
		}
	}
}

// TestSpillAgreementUA runs UA-rewritten plans — trailing certainty column,
// least() certainty combination at joins — through the spilling engine at
// every budget and DOP against the in-memory serial reference.
func TestSpillAgreementUA(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	trials := 60
	if testing.Short() {
		trials = 15
	}
	dir := t.TempDir()
	for trial := 0; trial < trials; trial++ {
		det := spillAgreementCatalog(rng)
		enc := engine.NewCatalog()
		for _, name := range det.Names() {
			enc.PutAs(name, rewrite.EncodeDeterministic(det.Get(name)))
		}
		g := &planGen{rng: rng, cat: det, raPlus: true}
		plan, _ := g.gen(1 + rng.Intn(3))
		ua, err := rewrite.RewriteUA(plan)
		if err != nil {
			t.Fatalf("rewrite: %v", err)
		}

		want := drainOpts(t, ua, rowSource{enc}, physical.Options{DOP: 1}, "in-memory serial UA")
		for _, budget := range spillBudgets(det) {
			for _, dop := range spillDOPs() {
				got := drainSpilling(t, ua, enc, budget, dop, dir, "spilling UA")
				mustMatchRows(t, got, want, "spilling vs in-memory UA")
			}
		}
	}
}

// TestSpillAcceptance1M is the ISSUE's out-of-core acceptance bar: sort,
// aggregate, and join over a 1M-row table, at a budget of a quarter of the
// input size, must complete byte-identical to the in-memory engine at
// every DOP, with the governor's peak tracked allocation within budget
// plus one batch of slack (forced rows, merge cursor frames), and leave
// zero temp files behind. Skipped in -short and under the race detector —
// it is a scale test; the randomized suites above cover the same paths.
func TestSpillAcceptance1M(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-row acceptance workload skipped in -short")
	}
	if raceEnabled {
		t.Skip("1M-row acceptance workload skipped under -race")
	}
	const n = 1_000_000
	tb := engine.NewTable(types.NewSchema("t", "k", "v"))
	for i := 0; i < n; i++ {
		tb.AppendVals(types.NewInt(int64(i%1024)), types.NewInt(int64(i)))
	}
	cat := engine.NewCatalog()
	cat.Put(tb)
	budget := physical.RowsMemSize(tb.Rows) / 4
	// The governor's documented slack: one resident frame (up to
	// spill.DefaultFrameRows rows) per concurrent spill stream — at most
	// SpillPartitions+2 run cursors (grace join output runs; sort and
	// aggregate hold fewer) — plus the tracked buffer overhead of the
	// writers a grace join holds open at once (build + probe + output).
	// The widest spilled row here is the join's tagged output (1 + 2×2
	// columns).
	widest := physical.RowMemSize(make([]types.Value, 5))
	slack := int64(physical.SpillPartitions+2)*int64(spill.DefaultFrameRows)*widest +
		int64(2*physical.SpillPartitions+2)*physical.SpillWriterOverheadBytes

	scan := func() algebra.Node { return &algebra.Scan{Table: "t", TblSchema: tb.Schema} }
	queries := []struct {
		name string
		plan algebra.Node
	}{
		{"sort", &algebra.Sort{Input: scan(),
			Keys: []algebra.SortKey{{Expr: algebra.Col{Idx: 1}, Desc: true}}}},
		{"aggregate", &algebra.Aggregate{Input: scan(),
			GroupBy:    []algebra.Expr{algebra.Col{Idx: 1}}, // ~1M groups: must spill
			GroupNames: []string{"g"},
			Aggs: []algebra.AggSpec{
				{Func: algebra.AggCount, Star: true, Name: "n"},
				{Func: algebra.AggMax, Arg: algebra.Col{Idx: 0}, Name: "m"}}}},
		{"join", &algebra.Join{Left: scan(), Right: scan(),
			EquiL: []int{1}, EquiR: []int{1}}}, // 1:1 self join: 1M-row build side
	}
	dir := t.TempDir()
	for _, q := range queries {
		want := drainOpts(t, q.plan, rowSource{cat}, physical.Options{DOP: 1}, q.name+" in-memory")
		for _, dop := range spillDOPs() {
			gov := physical.NewMemGovernor(budget)
			opt := physical.Options{DOP: dop, MemBudget: budget, SpillDir: dir, Gov: gov}
			got := drainOpts(t, q.plan, cat, opt, q.name+" spilling")
			mustMatchRows(t, got, want, q.name+" spilling vs in-memory")
			ents, err := os.ReadDir(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(ents) != 0 {
				t.Fatalf("%s dop %d: %d spill files leaked", q.name, dop, len(ents))
			}
			if gov.Peak() == 0 {
				t.Fatalf("%s dop %d: governor tracked nothing", q.name, dop)
			}
			if gov.Peak() > budget+slack {
				t.Fatalf("%s dop %d: peak tracked allocation %d exceeds budget %d + slack %d",
					q.name, dop, gov.Peak(), budget, slack)
			}
			if gov.InUse() != 0 {
				t.Fatalf("%s dop %d: %d bytes still reserved after Close", q.name, dop, gov.InUse())
			}
		}
	}
}

// TestSpillEarlyCloseLeavesNoFiles pins the limit short-circuit path: a
// LIMIT over a spilling sort closes the operator tree while spilled runs
// are still mid-merge, and no temp file may survive.
func TestSpillEarlyCloseLeavesNoFiles(t *testing.T) {
	tb := engine.NewTable(types.NewSchema("big", "k", "v"))
	for i := 0; i < 30000; i++ {
		tb.AppendVals(types.NewInt(int64(i%97)), types.NewInt(int64(i)))
	}
	cat := engine.NewCatalog()
	cat.Put(tb)
	dir := t.TempDir()
	plan := &algebra.Limit{N: 5, Input: &algebra.Sort{
		Input: &algebra.Scan{Table: "big", TblSchema: tb.Schema},
		Keys:  []algebra.SortKey{{Expr: algebra.Col{Idx: 1}, Desc: true}}}}
	op, err := physical.LowerOpts(plan, cat, physical.Options{DOP: 1,
		MemBudget: 8 << 10, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := op.Open(); err != nil {
		t.Fatal(err)
	}
	b, err := op.Next()
	if err != nil || b == nil {
		t.Fatalf("Next: batch %v err %v", b, err)
	}
	// Spilled runs exist right now; Close tears them down mid-merge.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) == 0 {
		t.Fatal("8KB budget over 30k rows did not spill — test is vacuous")
	}
	if err := op.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err = os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files survived early Close", len(ents))
	}
}
