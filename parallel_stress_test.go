package repro_test

// Exchange-order determinism: the morsel-parallel engine must produce
// byte-identical ordered output to the serial batch engine — not just once,
// but across hundreds of repetitions at DOP 1, 2, and NumCPU, because the
// morsel-to-worker assignment is scheduling-dependent and only the Gather's
// sequence-number reordering makes the output deterministic. CI runs this
// under -race, which is the enforcement mechanism for the engine's
// cross-goroutine ownership rules.

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/types"
)

// stressOpts splits the small test tables into many morsels so every DOP > 1
// actually exercises the exchange.
func stressOpts(dop int) physical.Options {
	return physical.Options{DOP: dop, MorselSize: 128, MinParallelRows: 1}
}

// stressDOPs is 1, 2, NumCPU (deduplicated, in order).
func stressDOPs() []int {
	dops := []int{1, 2}
	if n := runtime.NumCPU(); n != 1 && n != 2 {
		dops = append(dops, n)
	}
	return dops
}

// stressCatalog builds integer-valued tables (exact under parallel aggregate
// merging) with NULLs, duplicate keys, and enough rows for many morsels.
func stressCatalog() *engine.Catalog {
	cat := engine.NewCatalog()
	t := engine.NewTable(types.NewSchema("t", "k", "v", "w"))
	for i := 0; i < 1600; i++ {
		k := types.NewInt(int64(i % 17))
		if i%11 == 0 {
			k = types.Null()
		}
		t.Append([]types.Value{k, types.NewInt(int64(i)), types.NewInt(int64(i % 5))})
	}
	cat.Put(t)
	r := engine.NewTable(types.NewSchema("r", "k", "x"))
	for i := 0; i < 250; i++ {
		r.Append([]types.Value{types.NewInt(int64(i % 17)), types.NewInt(int64(i))})
	}
	cat.Put(r)
	return cat
}

// stressPlans are the shapes the parallel lowering rewrites: a filter+project
// pipeline, a parallel-probe equi-join, and a partial-merge aggregate.
func stressPlans(cat *engine.Catalog) map[string]algebra.Node {
	scan := func(name string) *algebra.Scan {
		return &algebra.Scan{Table: name, TblSchema: cat.Get(name).Schema}
	}
	col := func(i int) algebra.Expr { return algebra.Col{Idx: i} }
	return map[string]algebra.Node{
		"pipeline": &algebra.Project{
			Input: &algebra.Filter{Input: scan("t"),
				Pred: algebra.Bin{Op: algebra.OpLt, L: col(1), R: algebra.Const{V: types.NewInt(1100)}}},
			Exprs: []algebra.Expr{col(0), algebra.Bin{Op: algebra.OpAdd, L: col(1), R: col(2)}},
			Names: []string{"k", "s"},
		},
		"join": &algebra.Join{
			Left: &algebra.Filter{Input: scan("t"),
				Pred: algebra.Bin{Op: algebra.OpGe, L: col(1), R: algebra.Const{V: types.NewInt(100)}}},
			Right: scan("r"),
			EquiL: []int{0}, EquiR: []int{0},
			Residual: algebra.Bin{Op: algebra.OpNe, L: col(2), R: col(4)},
		},
		"aggregate": &algebra.Aggregate{
			Input:      scan("t"),
			GroupBy:    []algebra.Expr{col(0)},
			GroupNames: []string{"g"},
			Aggs: []algebra.AggSpec{
				{Func: algebra.AggCount, Star: true, Name: "n"},
				{Func: algebra.AggSum, Arg: col(1), Name: "s"},
				{Func: algebra.AggMin, Arg: col(1), Name: "m"},
			},
		},
	}
}

// drainWith lowers plan at the given options and drains it.
func drainWith(t *testing.T, plan algebra.Node, src physical.Source, opt physical.Options) [][]types.Value {
	t.Helper()
	op, err := physical.LowerOpts(plan, src, opt)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	rows, err := physical.Drain(op)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return rows
}

// mustMatchOrdered requires byte-identical rows in identical order.
func mustMatchOrdered(t *testing.T, got, want [][]types.Value, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if types.Tuple(got[i]).Key() != types.Tuple(want[i]).Key() {
			t.Fatalf("%s: row %d differs:\ngot:  %v\nwant: %v", what, i, got[i], want[i])
		}
	}
}

func TestExchangeOrderDeterminismStress(t *testing.T) {
	cat := stressCatalog()
	plans := stressPlans(cat)
	iters := 150
	if testing.Short() {
		iters = 20
	}
	for name, plan := range plans {
		want := drainWith(t, plan, cat, physical.Options{DOP: 1})
		for _, dop := range stressDOPs() {
			opt := stressOpts(dop)
			for i := 0; i < iters; i++ {
				got := drainWith(t, plan, cat, opt)
				mustMatchOrdered(t, got, want, fmt.Sprintf("%s dop=%d iter=%d", name, dop, i))
			}
		}
	}
}

// TestExchangeOrderDeterminismUA: the same guarantee for a UA-rewritten plan
// carrying the trailing certainty column — the paper's frontend rides the
// parallel engine unchanged, and on a deterministically-encoded database
// every row stays certain (C = 1) at every DOP.
func TestExchangeOrderDeterminismUA(t *testing.T) {
	det := stressCatalog()
	enc := engine.NewCatalog()
	for _, name := range det.Names() {
		enc.PutAs(name, rewrite.EncodeDeterministic(det.Get(name)))
	}
	plans := stressPlans(det)
	iters := 100
	if testing.Short() {
		iters = 15
	}
	for _, name := range []string{"pipeline", "join"} { // the RA⁺ fragment RewriteUA accepts
		ua, err := rewrite.RewriteUA(plans[name])
		if err != nil {
			t.Fatalf("%s: rewrite: %v", name, err)
		}
		want := drainWith(t, ua, enc, physical.Options{DOP: 1})
		if len(want) == 0 {
			t.Fatalf("%s: UA reference plan returned no rows", name)
		}
		for _, row := range want {
			if c := row[len(row)-1]; c.Kind() != types.KindInt || c.Int() != 1 {
				t.Fatalf("%s: certainty column = %v, want 1", name, c)
			}
		}
		for _, dop := range stressDOPs() {
			opt := stressOpts(dop)
			for i := 0; i < iters; i++ {
				got := drainWith(t, ua, enc, opt)
				mustMatchOrdered(t, got, want, fmt.Sprintf("ua %s dop=%d iter=%d", name, dop, i))
			}
		}
	}
}
