//go:build !race

package repro_test

// raceEnabled reports that this binary was built with -race.
const raceEnabled = false
