//go:build race

package repro_test

// raceEnabled reports that this binary was built with -race. The 1M-row
// out-of-core acceptance test is a throughput-scale workload, not a
// concurrency probe — under the race detector's ~10x slowdown it would
// dominate the CI race job without adding coverage (the randomized spill
// agreement suite runs under race and exercises every spilling path).
const raceEnabled = true
