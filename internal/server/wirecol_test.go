package server

import (
	"math"
	"strings"
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

func chunkFixture() []vector.Vector {
	nb := vector.NewBitmap(5)
	nb.Set(3)
	return []vector.Vector{
		vector.NewInt64Vector([]int64{1, -1, math.MaxInt64, 0, 1 << 53}, nil),
		vector.NewFloat64Vector([]float64{0.5, math.NaN(), math.Inf(-1), 0, -0.0}, nb),
		vector.NewStringVector([]string{"", "a", "chunk", "héllo", "z"}, nil),
		vector.NewBoolVector([]bool{true, false, true, true, false}, nil),
		vector.NewValueVector([]types.Value{
			types.NewInt(9), types.Null(), types.NewString("mix"), types.NewFloat(2.5), types.NewBool(false),
		}),
	}
}

func TestColChunkRoundTrip(t *testing.T) {
	cols := chunkFixture()
	payload := EncodeColChunk(42, 7, cols)
	id, seq, nrows, got, err := DecodeColChunk(payload)
	if err != nil {
		t.Fatal(err)
	}
	if id != 42 || seq != 7 || nrows != 5 {
		t.Fatalf("id/seq/rows = %d/%d/%d, want 42/7/5", id, seq, nrows)
	}
	if len(got) != len(cols) {
		t.Fatalf("columns = %d, want %d", len(got), len(cols))
	}
	for j, want := range cols {
		for i := 0; i < nrows; i++ {
			w, g := want.Value(i), got[j].Value(i)
			if w.Kind() != g.Kind() {
				t.Fatalf("col %d row %d: kind %v -> %v", j, i, w.Kind(), g.Kind())
			}
			if w.Kind() == types.KindFloat {
				if math.Float64bits(w.Float()) != math.Float64bits(g.Float()) {
					t.Fatalf("col %d row %d: float bits changed", j, i)
				}
			} else if !w.IsNull() && w.Compare(g) != 0 {
				t.Fatalf("col %d row %d: %v -> %v", j, i, w, g)
			}
		}
	}
}

func TestColChunkEmpty(t *testing.T) {
	payload := EncodeColChunk(1, 0, []vector.Vector{vector.NewInt64Vector(nil, nil)})
	_, _, nrows, cols, err := DecodeColChunk(payload)
	if err != nil {
		t.Fatal(err)
	}
	if nrows != 0 || len(cols) != 1 || cols[0].Len() != 0 {
		t.Fatalf("empty chunk decoded as %d rows, %d cols", nrows, len(cols))
	}
}

// TestColChunkCorruption: every structural defect must be a clean error —
// CRC mismatch, truncation at any byte, bad magic, trailing garbage.
func TestColChunkCorruption(t *testing.T) {
	payload := EncodeColChunk(3, 0, chunkFixture())

	for cut := 0; cut < len(payload); cut++ {
		if _, _, _, _, err := DecodeColChunk(payload[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded successfully", cut, len(payload))
		}
	}

	for _, at := range []int{1, 8, colChunkHdr - 1, colChunkHdr, len(payload) - 1} {
		bad := append([]byte(nil), payload...)
		bad[at] ^= 0x40
		_, _, _, _, err := DecodeColChunk(bad)
		if err == nil {
			t.Fatalf("flipped byte %d decoded successfully", at)
		}
		if at >= colChunkHdr && !strings.Contains(err.Error(), "CRC") {
			t.Errorf("flipped body byte %d: error %q does not mention the CRC", at, err)
		}
	}

	bad := append([]byte(nil), payload...)
	bad[0] = '{'
	if _, _, _, _, err := DecodeColChunk(bad); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic: err = %v", err)
	}
}

func TestChunkRowsWindowing(t *testing.T) {
	n := 1 << 20
	ints := vector.NewInt64Vector(make([]int64, n), nil)
	floats := vector.NewFloat64Vector(make([]float64, n), nil)
	cols := []vector.Vector{ints, floats}
	// Two 8-byte columns: the byte target allows 64Ki rows, the row cap
	// also says 64Ki.
	if got := chunkRows(cols, n, 0); got != WireChunkRows {
		t.Errorf("fixed-width chunk = %d rows, want %d", got, WireChunkRows)
	}
	// A tail shorter than one window is one chunk.
	if got := chunkRows(cols, n, n-100); got != 100 {
		t.Errorf("tail chunk = %d rows, want 100", got)
	}

	// Fat strings must cut chunks near the byte target, not the row cap.
	fat := make([]string, 4096)
	for i := range fat {
		fat[i] = strings.Repeat("x", 64<<10)
	}
	got := chunkRows([]vector.Vector{vector.NewStringVector(fat, nil)}, len(fat), 0)
	if got < 1 || got > 2*WireChunkBytes/(64<<10) {
		t.Errorf("fat-string chunk = %d rows, want about %d", got, WireChunkBytes/(64<<10))
	}
	// And whatever it cuts must encode under the frame cap.
	window := []vector.Vector{vector.NewStringVector(fat[:got], nil)}
	if size := len(EncodeColChunk(1, 0, window)); size > MaxFrame {
		t.Errorf("chunk of %d rows encodes to %d bytes, over the %d frame cap", got, size, MaxFrame)
	}
	if got := chunkRows(nil, 5, 0); got != 5 {
		t.Errorf("zero-column chunk = %d rows, want 5", got)
	}
}
