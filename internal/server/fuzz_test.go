package server

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/types"
	"repro/internal/vector"
)

// columnsFromBytes deterministically derives a column set from raw fuzz
// input: a row count, then per column a kind, a null pattern, and payload
// bytes. The mapping is total — every input produces some column set — so
// the fuzzer freely explores kind mixes, null layouts, NaN payloads, and
// extreme int64s across chunk encode/decode.
func columnsFromBytes(data []byte) []vector.Vector {
	take := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		b := data[:n]
		data = data[n:]
		return b
	}
	pad := func(b []byte, n int) []byte {
		for len(b) < n {
			b = append(b, 0)
		}
		return b
	}
	if len(data) == 0 {
		return nil
	}
	nrows := int(take(1)[0]) % 97
	var cols []vector.Vector
	for len(data) > 0 && len(cols) < 6 {
		kind := pad(take(1), 1)[0] % 5
		nullEvery := int(pad(take(1), 1)[0])
		var nb *vector.Bitmap
		null := func(i int) bool {
			if nullEvery == 0 || i%nullEvery != 0 {
				return false
			}
			if nb == nil {
				nb = vector.NewBitmap(nrows)
			}
			nb.Set(i)
			return true
		}
		switch kind {
		case 0:
			vals := make([]int64, nrows)
			for i := range vals {
				if !null(i) {
					vals[i] = int64(binary.LittleEndian.Uint64(pad(take(8), 8)))
				}
			}
			cols = append(cols, vector.NewInt64Vector(vals, nb))
		case 1:
			vals := make([]float64, nrows)
			for i := range vals {
				if !null(i) {
					vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(pad(take(8), 8)))
				}
			}
			cols = append(cols, vector.NewFloat64Vector(vals, nb))
		case 2:
			vals := make([]string, nrows)
			for i := range vals {
				if !null(i) {
					n := int(pad(take(1), 1)[0]) % 31
					vals[i] = string(take(n))
				}
			}
			cols = append(cols, vector.NewStringVector(vals, nb))
		case 3:
			vals := make([]bool, nrows)
			for i := range vals {
				if !null(i) {
					vals[i] = pad(take(1), 1)[0]&1 == 1
				}
			}
			cols = append(cols, vector.NewBoolVector(vals, nb))
		default: // boxed: every cell carries its own kind
			vals := make([]types.Value, nrows)
			for i := range vals {
				switch pad(take(1), 1)[0] % 5 {
				case 0:
					vals[i] = types.Null()
				case 1:
					vals[i] = types.NewBool(pad(take(1), 1)[0]&1 == 1)
				case 2:
					vals[i] = types.NewInt(int64(binary.LittleEndian.Uint64(pad(take(8), 8))))
				case 3:
					vals[i] = types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(pad(take(8), 8))))
				default:
					n := int(pad(take(1), 1)[0]) % 15
					vals[i] = types.NewString(string(take(n)))
				}
			}
			cols = append(cols, vector.NewValueVector(vals))
		}
	}
	return cols
}

// bitEqual is exact value identity: same kind, same payload bits (every
// NaN payload is itself; +0 and -0 differ; int64 precision is full).
func bitEqual(a, b types.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case types.KindNull:
		return true
	case types.KindInt:
		return a.Int() == b.Int()
	case types.KindFloat:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case types.KindString:
		return a.Str() == b.Str()
	default:
		return a.Bool() == b.Bool()
	}
}

// FuzzWireColumnarRoundTrip is the wire twin of FuzzSpillRunRoundTrip:
// any column set the engine can produce must survive chunk encode → decode
// bit-identically — kinds, null positions, NaN payloads, ±0, 2^53-range
// int64s, string bytes. A lossy wire encoding would make binary results
// diverge from the JSON path, which the protocol forbids.
func FuzzWireColumnarRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{5, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{3, 1, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8, 0x7f}) // NaN payload bits
	f.Add([]byte{4, 2, 3, 'h', 'i', 0, 'y', 'o'})
	f.Add([]byte{9, 4, 0, 2, 0, 0, 0, 0, 0, 0, 0x20, 0, 3}) // boxed 2^53
	f.Fuzz(func(t *testing.T, data []byte) {
		cols := columnsFromBytes(data)
		if len(cols) == 0 {
			return
		}
		id := uint64(len(data))
		payload := EncodeColChunk(id, 1, cols)
		gotID, seq, nrows, got, err := DecodeColChunk(payload)
		if err != nil {
			t.Fatalf("decode of freshly encoded chunk: %v", err)
		}
		if gotID != id || seq != 1 {
			t.Fatalf("id/seq = %d/%d, want %d/1", gotID, seq, id)
		}
		if nrows != cols[0].Len() || len(got) != len(cols) {
			t.Fatalf("shape %dx%d -> %dx%d", cols[0].Len(), len(cols), nrows, len(got))
		}
		for j, want := range cols {
			for i := 0; i < nrows; i++ {
				if want.Null(i) != got[j].Null(i) {
					t.Fatalf("col %d row %d: null %v -> %v", j, i, want.Null(i), got[j].Null(i))
				}
				if !bitEqual(want.Value(i), got[j].Value(i)) {
					t.Fatalf("col %d row %d: %v (%s) -> %v (%s)",
						j, i, want.Value(i), want.Value(i).Kind(), got[j].Value(i), got[j].Value(i).Kind())
				}
			}
		}
	})
}
