// Package client is the Go client for the UA-DB query server
// (internal/server): one TCP connection is one session, and any number of
// requests may be in flight at once — the client matches responses to
// requests by id, so concurrent goroutines can share a connection the same
// way concurrent queries share a server session.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/server"
	"repro/internal/types"
)

// Result is a decoded query result.
type Result struct {
	Schema []string
	Rows   [][]types.Value
}

// Client is one session with the server. Methods are safe for concurrent
// use.
type Client struct {
	conn net.Conn

	wmu    sync.Mutex // serializes request frames
	mu     sync.Mutex // guards nextID, pending, readErr
	nextID uint64
	// pending maps an in-flight request id to the channel its response is
	// delivered on (buffered, capacity 1).
	pending map[uint64]chan server.Response
	readErr error
	done    chan struct{}
}

// Dial connects to a server at addr ("host:port").
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:    conn,
		pending: map[uint64]chan server.Response{},
		done:    make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// readLoop is the one reader of the connection: it dispatches each
// response frame to the request waiting on its id. On read failure every
// pending and future request fails with the error.
func (c *Client) readLoop() {
	for {
		var resp server.Response
		if err := server.ReadFrame(c.conn, &resp); err != nil {
			c.mu.Lock()
			if c.readErr == nil {
				c.readErr = fmt.Errorf("client: connection lost: %w", err)
			}
			for id, ch := range c.pending {
				delete(c.pending, id)
				ch <- server.Response{ID: id, Error: c.readErr.Error()}
			}
			c.mu.Unlock()
			close(c.done)
			return
		}
		c.mu.Lock()
		ch, ok := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ok {
			ch <- resp
		}
	}
}

// roundTrip sends one request and waits for its response.
func (c *Client) roundTrip(req server.Request) (server.Response, error) {
	ch := make(chan server.Response, 1)
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return server.Response{}, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := server.WriteFrame(c.conn, req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return server.Response{}, fmt.Errorf("client: send: %w", err)
	}

	resp := <-ch
	if resp.Error != "" {
		return resp, errors.New(resp.Error)
	}
	if !resp.OK {
		return resp, errors.New("client: server rejected request")
	}
	return resp, nil
}

// Set updates the session's execution options; nil fields keep their
// current values.
func (c *Client) Set(opts server.SessionOpts) error {
	_, err := c.roundTrip(server.Request{Op: "set", Opts: &opts})
	return err
}

// Query executes one UA-SQL statement and decodes the result.
func (c *Client) Query(sql string) (*Result, error) {
	resp, err := c.roundTrip(server.Request{Op: "query", SQL: sql})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// Prepare names a statement for later Exec calls; the SQL is validated
// server-side now.
func (c *Client) Prepare(name, sql string) error {
	_, err := c.roundTrip(server.Request{Op: "prepare", Name: name, SQL: sql})
	return err
}

// Exec runs a statement prepared earlier in this session.
func (c *Client) Exec(name string) (*Result, error) {
	resp, err := c.roundTrip(server.Request{Op: "exec", Name: name})
	if err != nil {
		return nil, err
	}
	return decodeResult(resp)
}

// Stats snapshots the server's counters.
func (c *Client) Stats() (*server.Stats, error) {
	resp, err := c.roundTrip(server.Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, errors.New("client: stats response carried no stats")
	}
	return resp.Stats, nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	_, err := c.roundTrip(server.Request{Op: "ping"})
	return err
}

// Close ends the session: a best-effort close handshake, then the
// connection drops. In-flight queries on this session are aborted
// server-side.
func (c *Client) Close() error {
	c.roundTrip(server.Request{Op: "close"}) // best-effort; the conn close below is authoritative
	err := c.conn.Close()
	<-c.done // reader exits once the conn is closed
	return err
}

func decodeResult(resp server.Response) (*Result, error) {
	rows, err := server.DecodeRows(resp.Rows)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: resp.Schema, Rows: rows}, nil
}
