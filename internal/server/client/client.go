// Package client is the Go client for the UA-DB query server
// (internal/server): one TCP connection is one session, and any number of
// requests may be in flight at once — the client matches responses to
// requests by id, so concurrent goroutines can share a connection the same
// way concurrent queries share a server session.
//
// Dial negotiates the binary columnar result encoding (protocol v2): query
// results stream back as binary column chunks, reassembled into
// vector.Columns and exposed through Result both as columns (no boxing)
// and as lazily materialized rows. DialJSON skips negotiation for the v1
// JSON-only protocol; results are byte-identical either way.
package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"

	"repro/internal/server"
	"repro/internal/types"
	"repro/internal/vector"
)

// Result is a decoded query result. It holds the result columnar when the
// session negotiated the binary encoding and row-backed otherwise; the
// other form is derived lazily and cached. A Result is not safe for
// concurrent use until fully materialized.
type Result struct {
	Schema []string
	// CacheHit reports whether the server served the plan from its shared
	// plan cache (chunked streams only; JSON results leave it false).
	CacheHit bool

	cols *vector.Columns
	rows [][]types.Value
	// haveRows distinguishes "rows not yet materialized" from a cached
	// empty row set.
	haveRows bool
}

// Columns returns the result as column vectors, building them from rows
// (kind-inferred, value-exact) for a JSON-encoded result.
func (r *Result) Columns() *vector.Columns {
	if r.cols == nil {
		r.cols = vector.FromRows(r.rows, len(r.Schema))
	}
	return r.cols
}

// Rows returns the result as boxed rows, materializing (and caching) them
// from the columns on first call.
func (r *Result) Rows() [][]types.Value {
	if !r.haveRows {
		r.rows = vector.Materialize(r.cols.Vecs, r.cols.N)
		r.haveRows = true
	}
	return r.rows
}

// NumRows reports the row count without materializing anything.
func (r *Result) NumRows() int {
	if r.cols != nil {
		return r.cols.N
	}
	return len(r.rows)
}

// call is one in-flight request: its delivery channel plus, for chunked
// results, the reassembly state. The state fields are touched only by the
// read loop (the single reader) between registration and delivery.
type call struct {
	ch chan outcome

	streaming bool
	schema    []string
	kinds     []string
	cacheHit  bool
	chunks    [][]vector.Vector
	rows      int
	nextSeq   uint64
}

// outcome is what a call resolves to: the final response frame, plus the
// assembled result for chunked streams.
type outcome struct {
	resp server.Response
	res  *Result
}

// Client is one session with the server. Methods are safe for concurrent
// use.
type Client struct {
	conn net.Conn

	wmu    sync.Mutex // serializes request frames
	mu     sync.Mutex // guards nextID, pending, readErr, encoding
	nextID uint64
	// pending maps an in-flight request id to its call state.
	pending  map[uint64]*call
	readErr  error
	encoding string
	done     chan struct{}
}

// Dial connects to a server at addr ("host:port") and negotiates the
// binary columnar result encoding. If the server only speaks JSON the
// session downgrades cleanly; results are identical either way.
func Dial(addr string) (*Client, error) {
	c, err := dial(addr)
	if err != nil {
		return nil, err
	}
	out, err := c.roundTrip(server.Request{
		Op:        "hello",
		Proto:     server.ProtoVersion,
		Encodings: []string{server.EncodingColBin},
	})
	if err != nil {
		c.Close()
		return nil, fmt.Errorf("client: hello: %w", err)
	}
	enc := out.resp.Encoding
	if enc == "" {
		enc = server.EncodingJSON
	}
	c.mu.Lock()
	c.encoding = enc
	c.mu.Unlock()
	return c, nil
}

// DialJSON connects without a hello handshake — the v1 protocol exactly as
// a pre-versioning client speaks it. Results arrive as single JSON frames.
func DialJSON(addr string) (*Client, error) {
	return dial(addr)
}

func dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		conn:     conn,
		pending:  map[uint64]*call{},
		encoding: server.EncodingJSON,
		done:     make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Encoding reports the session's negotiated result encoding.
func (c *Client) Encoding() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.encoding
}

// readLoop is the one reader of the connection: it dispatches each frame —
// JSON response or binary column chunk — to the request waiting on its id.
// On read failure or protocol corruption every pending and future request
// fails with the error; corruption also drops the connection, because a
// stream that has lost framing discipline cannot be resynchronized.
func (c *Client) readLoop() {
	for {
		payload, err := server.ReadRawFrame(c.conn)
		if err != nil {
			c.failAll(fmt.Errorf("client: connection lost: %w", err), false)
			return
		}
		if len(payload) > 0 && payload[0] == server.ColMagic {
			if err := c.handleChunk(payload); err != nil {
				c.failAll(err, true)
				return
			}
			continue
		}
		var resp server.Response
		if err := json.Unmarshal(payload, &resp); err != nil {
			c.failAll(fmt.Errorf("client: bad response frame: %w", err), true)
			return
		}
		if err := c.handleResponse(resp); err != nil {
			c.failAll(err, true)
			return
		}
	}
}

// handleChunk folds one binary chunk frame into its query's reassembly
// state. Any protocol defect is returned as a fatal error.
func (c *Client) handleChunk(payload []byte) error {
	id, seq, nrows, cols, err := server.DecodeColChunk(payload)
	if err != nil {
		return fmt.Errorf("client: %w", err)
	}
	c.mu.Lock()
	p := c.pending[id]
	c.mu.Unlock()
	if p == nil {
		return fmt.Errorf("client: chunk for unknown request %d", id)
	}
	if !p.streaming {
		return fmt.Errorf("client: chunk before result header (request %d)", id)
	}
	if seq != p.nextSeq {
		return fmt.Errorf("client: chunk %d out of order (want %d)", seq, p.nextSeq)
	}
	if len(cols) != len(p.schema) {
		return fmt.Errorf("client: chunk has %d columns, schema has %d", len(cols), len(p.schema))
	}
	p.nextSeq++
	p.chunks = append(p.chunks, cols)
	p.rows += nrows
	return nil
}

// handleResponse dispatches one JSON frame: a streaming header arms its
// call's reassembly state, a trailer assembles and delivers the columns,
// anything else delivers directly.
func (c *Client) handleResponse(resp server.Response) error {
	c.mu.Lock()
	p := c.pending[resp.ID]
	if p != nil && !resp.Chunked {
		delete(c.pending, resp.ID)
	}
	c.mu.Unlock()
	if p == nil {
		return nil // response to an abandoned request; drop it
	}
	if resp.Chunked {
		p.streaming = true
		p.schema = resp.Schema
		p.kinds = resp.Kinds
		p.cacheHit = resp.CacheHit
		return nil
	}
	if p.streaming && resp.Final && resp.Error == "" {
		res, err := assemble(p, resp)
		if err != nil {
			resp.OK = false
			resp.Error = err.Error()
			p.ch <- outcome{resp: resp}
			return nil
		}
		p.ch <- outcome{resp: resp, res: res}
		return nil
	}
	p.ch <- outcome{resp: resp}
	return nil
}

// assemble stitches a completed chunk stream into one columnar Result,
// cross-checking the trailer's totals.
func assemble(p *call, trailer server.Response) (*Result, error) {
	if int64(p.rows) != trailer.RowCount {
		return nil, fmt.Errorf("client: stream carried %d rows, trailer says %d", p.rows, trailer.RowCount)
	}
	if len(p.chunks) != trailer.Chunks {
		return nil, fmt.Errorf("client: stream carried %d chunks, trailer says %d", len(p.chunks), trailer.Chunks)
	}
	vecs := make([]vector.Vector, len(p.schema))
	parts := make([]vector.Vector, len(p.chunks))
	for j := range vecs {
		if len(parts) == 0 {
			// A zero-row stream carries no chunks, so the header's kind
			// tags are the only record of the column types: build typed
			// empties from them rather than an untyped boxed vector.
			tag := byte('V')
			if j < len(p.kinds) && len(p.kinds[j]) == 1 {
				tag = p.kinds[j][0]
			}
			vecs[j] = vector.EmptyOfTag(tag)
			continue
		}
		for i, ch := range p.chunks {
			parts[i] = ch[j]
		}
		vecs[j] = vector.Concat(parts)
	}
	return &Result{
		Schema:   p.schema,
		CacheHit: p.cacheHit,
		cols:     &vector.Columns{N: p.rows, Vecs: vecs},
	}, nil
}

// failAll fails every pending and future request. Corrupt streams (fatal)
// also drop the connection; a plain read error means it is already dead.
func (c *Client) failAll(err error, fatal bool) {
	c.mu.Lock()
	if c.readErr == nil {
		c.readErr = err
	}
	for id, p := range c.pending {
		delete(c.pending, id)
		p.ch <- outcome{resp: server.Response{ID: id, Error: c.readErr.Error()}}
	}
	c.mu.Unlock()
	if fatal {
		c.conn.Close()
	}
	close(c.done)
}

// roundTrip sends one request and waits for its outcome.
func (c *Client) roundTrip(req server.Request) (outcome, error) {
	p := &call{ch: make(chan outcome, 1)}
	c.mu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.mu.Unlock()
		return outcome{}, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = p
	c.mu.Unlock()

	c.wmu.Lock()
	err := server.WriteFrame(c.conn, req)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return outcome{}, fmt.Errorf("client: send: %w", err)
	}

	out := <-p.ch
	if out.resp.Error != "" {
		return out, errors.New(out.resp.Error)
	}
	if !out.resp.OK {
		return out, errors.New("client: server rejected request")
	}
	return out, nil
}

// Set updates the session's execution options; nil fields keep their
// current values.
func (c *Client) Set(opts server.SessionOpts) error {
	_, err := c.roundTrip(server.Request{Op: "set", Opts: &opts})
	return err
}

// Query executes one UA-SQL statement and decodes the result.
func (c *Client) Query(sql string) (*Result, error) {
	out, err := c.roundTrip(server.Request{Op: "query", SQL: sql})
	if err != nil {
		return nil, err
	}
	return decodeResult(out)
}

// Prepare names a statement for later Exec calls; the SQL is validated
// server-side now.
func (c *Client) Prepare(name, sql string) error {
	_, err := c.roundTrip(server.Request{Op: "prepare", Name: name, SQL: sql})
	return err
}

// Exec runs a statement prepared earlier in this session.
func (c *Client) Exec(name string) (*Result, error) {
	out, err := c.roundTrip(server.Request{Op: "exec", Name: name})
	if err != nil {
		return nil, err
	}
	return decodeResult(out)
}

// Stats snapshots the server's counters.
func (c *Client) Stats() (*server.Stats, error) {
	out, err := c.roundTrip(server.Request{Op: "stats"})
	if err != nil {
		return nil, err
	}
	if out.resp.Stats == nil {
		return nil, errors.New("client: stats response carried no stats")
	}
	return out.resp.Stats, nil
}

// Ping round-trips a no-op request.
func (c *Client) Ping() error {
	_, err := c.roundTrip(server.Request{Op: "ping"})
	return err
}

// Close ends the session: a best-effort close handshake, then the
// connection drops. In-flight queries on this session are aborted
// server-side.
func (c *Client) Close() error {
	c.roundTrip(server.Request{Op: "close"}) // best-effort; the conn close below is authoritative
	err := c.conn.Close()
	<-c.done // reader exits once the conn is closed
	return err
}

// decodeResult builds a Result from a completed outcome: the assembled
// columns of a chunked stream, or the decoded rows of a JSON response.
func decodeResult(out outcome) (*Result, error) {
	if out.res != nil {
		return out.res, nil
	}
	rows, err := server.DecodeRows(out.resp.Rows)
	if err != nil {
		return nil, err
	}
	return &Result{Schema: out.resp.Schema, rows: rows, haveRows: true}, nil
}
