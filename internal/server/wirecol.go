package server

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"repro/internal/types"
	"repro/internal/vector"
)

// Binary column-chunk frames. After a session negotiates the "colbin"
// encoding (hello, proto >= 2), query results stream as a JSON header
// frame, then zero or more binary chunk frames, then a JSON trailer frame.
// Chunk frames share the connection's 4-byte big-endian length prefix with
// JSON frames and are distinguished by their first payload byte: JSON
// frames always start with '{', chunk frames with ColMagic (0xC1, never a
// valid JSON or UTF-8 first byte).
//
// Chunk payload layout (after the length prefix):
//
//	offset 0:  ColMagic (1 byte)
//	offset 1:  request id (8 bytes little-endian) — responses multiplex on
//	           one connection, so every frame must self-identify
//	offset 9:  CRC32 (IEEE) of the id and the body (4 bytes little-endian),
//	           the same check the spill run format uses
//	offset 13: body
//
// body = uvarint chunk sequence number (0-based, per query)
//
//	| uvarint row count | uvarint column count
//	| that many column encodings (vector.AppendVector layout)
const ColMagic = 0xC1

// colChunkHdr is the fixed prefix before the CRC-protected body.
const colChunkHdr = 1 + 8 + 4

// WireChunkBytes is the target payload size of one column chunk. Chunks
// are cut so the encoded bytes land near this size — small enough that the
// server never materializes a giant frame and the client decodes
// incrementally, large enough that per-frame overhead vanishes at scale.
const WireChunkBytes = 1 << 20

// WireChunkRows caps a chunk's row count even when rows are tiny, bounding
// the decoder's per-chunk allocation spike.
const WireChunkRows = 64 << 10

// EncodeColChunk renders one chunk frame payload: seq is the 0-based chunk
// index within the query, cols are same-length column windows.
func EncodeColChunk(id uint64, seq uint64, cols []vector.Vector) []byte {
	n := 0
	if len(cols) > 0 {
		n = cols[0].Len()
	}
	body := make([]byte, 0, colChunkHdr+16+len(cols)*(1+1+8*n))
	body = append(body, make([]byte, colChunkHdr)...)
	body = binary.AppendUvarint(body, seq)
	body = binary.AppendUvarint(body, uint64(n))
	body = binary.AppendUvarint(body, uint64(len(cols)))
	for _, v := range cols {
		body = vector.AppendVector(body, v)
	}
	body[0] = ColMagic
	binary.LittleEndian.PutUint64(body[1:9], id)
	binary.LittleEndian.PutUint32(body[9:13], chunkCRC(body))
	return body
}

// chunkCRC covers the request id and the body — everything after the magic
// except the CRC field itself — so a flipped bit anywhere in the frame is
// caught at decode, not by downstream bookkeeping.
func chunkCRC(payload []byte) uint32 {
	crc := crc32.Update(0, crc32.IEEETable, payload[1:9])
	return crc32.Update(crc, crc32.IEEETable, payload[colChunkHdr:])
}

// DecodeColChunk parses one chunk frame payload. Any structural defect —
// bad magic, truncation, CRC mismatch, trailing garbage — is an error;
// chunk corruption must surface as a protocol error, never a wrong result.
func DecodeColChunk(payload []byte) (id uint64, seq uint64, nrows int, cols []vector.Vector, err error) {
	if len(payload) < colChunkHdr {
		return 0, 0, 0, nil, fmt.Errorf("server: chunk frame of %d bytes is shorter than its header", len(payload))
	}
	if payload[0] != ColMagic {
		return 0, 0, 0, nil, fmt.Errorf("server: chunk frame has bad magic 0x%02x", payload[0])
	}
	id = binary.LittleEndian.Uint64(payload[1:9])
	wantCRC := binary.LittleEndian.Uint32(payload[9:13])
	body := payload[colChunkHdr:]
	if got := chunkCRC(payload); got != wantCRC {
		return 0, 0, 0, nil, fmt.Errorf("server: chunk CRC mismatch (got %08x, frame says %08x)", got, wantCRC)
	}
	seq, k := binary.Uvarint(body)
	if k <= 0 {
		return 0, 0, 0, nil, fmt.Errorf("server: bad chunk sequence varint")
	}
	body = body[k:]
	rows64, k := binary.Uvarint(body)
	if k <= 0 || rows64 > WireChunkRows {
		return 0, 0, 0, nil, fmt.Errorf("server: bad chunk row count")
	}
	body = body[k:]
	ncols64, k := binary.Uvarint(body)
	if k <= 0 || ncols64 > uint64(len(body)) {
		return 0, 0, 0, nil, fmt.Errorf("server: bad chunk column count")
	}
	body = body[k:]
	nrows = int(rows64)
	cols = make([]vector.Vector, ncols64)
	for j := range cols {
		cols[j], body, err = vector.DecodeVector(body, nrows)
		if err != nil {
			return 0, 0, 0, nil, fmt.Errorf("server: chunk column %d: %w", j, err)
		}
	}
	if len(body) != 0 {
		return 0, 0, 0, nil, fmt.Errorf("server: chunk frame has %d trailing bytes", len(body))
	}
	return id, seq, nrows, cols, nil
}

// chunkRows picks the next chunk's row count starting at row lo: as many
// rows as fit the WireChunkBytes target, capped at WireChunkRows.
// Fixed-width columns cost a constant per row; string and boxed columns
// are walked row by row so one megabyte of strings cuts as small a chunk
// as one megabyte of ints.
func chunkRows(cols []vector.Vector, n, lo int) int {
	fixed := 0
	var walked []vector.Vector
	for _, v := range cols {
		switch v.(type) {
		case *vector.Int64Vector, *vector.Float64Vector:
			fixed += 8
		case *vector.BoolVector:
			fixed++ // 1 bit, charged as a byte to keep the estimate integral
		default:
			walked = append(walked, v)
		}
	}
	max := n - lo
	if max > WireChunkRows {
		max = WireChunkRows
	}
	if len(walked) == 0 {
		if fixed == 0 {
			return max
		}
		rows := WireChunkBytes / fixed
		if rows < 1 {
			rows = 1
		}
		if rows > max {
			rows = max
		}
		return rows
	}
	bytes := 0
	for i := 0; i < max; i++ {
		bytes += fixed
		for _, v := range walked {
			bytes += 4 // string offset / boxed tag overhead
			if sv, ok := v.(*vector.StringVector); ok {
				if !sv.Null(lo + i) {
					bytes += len(sv.Vals[lo+i])
				}
			} else if v.Kind() == types.KindNull { // boxed fallback
				cell := v.Value(lo + i)
				if cell.Kind() == types.KindString {
					bytes += len(cell.Str())
				} else {
					bytes += 9
				}
			}
		}
		if bytes >= WireChunkBytes {
			return i + 1
		}
	}
	return max
}
