package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
)

func iv(v int64) types.Value   { return types.NewInt(v) }
func fv(v float64) types.Value { return types.NewFloat(v) }
func sv(v string) types.Value  { return types.NewString(v) }

// testFrontend builds the fixture catalog both the server under test and
// the serial reference run use: a sort-heavy "big" table (rows * ~56 bytes,
// far over the per-query grants the tests hand out), a small "dim" join
// side, and a raw "sensors" table for model-annotated (IS TI) queries.
func testFrontend(rows int) *rewrite.Frontend {
	front := rewrite.NewFrontend(engine.NewCatalog())

	big := engine.NewTable(types.NewSchema("big", "id", "k", "v"))
	for i := 0; i < rows; i++ {
		big.AppendVals(iv(int64(i)), iv(int64((i*7919)%997)), iv(int64(i%13)))
	}
	front.Enc.Put(rewrite.EncodeDeterministic(big))

	dim := engine.NewTable(types.NewSchema("dim", "k", "grp"))
	for k := 0; k < 997; k++ {
		dim.AppendVals(iv(int64(k)), iv(int64(k%7)))
	}
	front.Enc.Put(rewrite.EncodeDeterministic(dim))

	sensors := engine.NewTable(types.NewSchema("sensors", "sid", "temp", "p"))
	for i := 0; i < 500; i++ {
		p := 1.0
		if i%3 == 0 {
			p = 0.5
		}
		sensors.AppendVals(iv(int64(i)), fv(float64(i%50)+0.5), fv(p))
	}
	front.Raw.Put(sensors)
	return front
}

// testQueries are the statements every session runs. All carry ORDER BY
// over a unique key so row order — and therefore the byte-identical
// comparison — is deterministic under any DOP.
var testQueries = []string{
	"SELECT k, id, v FROM big ORDER BY k, id",
	"SELECT b.id, d.grp FROM big b, dim d WHERE b.k = d.k AND d.grp = 3 ORDER BY b.id",
	"SELECT sid, temp FROM sensors IS TI WITH PROBABILITY (p) WHERE temp > 10.0 ORDER BY sid",
}

// startServer runs a server over the fixture on an ephemeral port.
func startServer(t *testing.T, cfg server.Config) (*server.Server, string) {
	t.Helper()
	srv := server.New(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	})
	return srv, ln.Addr().String()
}

// rowsKey renders a result as one comparable string, value kinds included,
// so "byte-identical" means identical engine values, not just identical
// formatting.
func rowsKey(schema []string, rows [][]types.Value) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(schema, ","))
	sb.WriteByte('\n')
	for _, row := range rows {
		sb.WriteString(types.Tuple(row).Key())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// referenceResults runs every test query serially through the one-shot
// frontend path on an identically-built fixture.
func referenceResults(t *testing.T, rows int) map[string]string {
	t.Helper()
	front := testFrontend(rows)
	want := map[string]string{}
	for _, q := range testQueries {
		res, err := frontQueryTbl(front, q)
		if err != nil {
			t.Fatalf("reference %q: %v", q, err)
		}
		want[q] = rowsKey(res.Schema.Attrs, res.Rows)
	}
	return want
}

func frontQueryTbl(front *rewrite.Frontend, q string) (*engine.Table, error) {
	res, err := front.Query(context.Background(), q, rewrite.QueryOpts{DOP: 1})
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

// TestServerConcurrentSessionsAgree is the acceptance test of the PR: 8+
// simultaneous sessions running spilling queries under one global memory
// budget. Every result must be byte-identical to the serial one-shot
// Frontend path (UA-rewritten plans and model-annotated queries included),
// and the server-wide governed peak must stay within budget plus the
// documented slack.
func TestServerConcurrentSessionsAgree(t *testing.T) {
	const (
		rows     = 12000
		sessions = 8
		global   = int64(1 << 20) // 1MiB shared by all sessions
		grant    = "256K"         // per-query ask: 4 run, the rest queue
	)
	want := referenceResults(t, rows)

	spillDir := t.TempDir()
	srv, addr := startServer(t, server.Config{
		Front:        testFrontend(rows),
		GlobalBudget: global,
		SpillDir:     spillDir,
	})
	_ = srv

	var wg sync.WaitGroup
	errs := make(chan error, sessions*len(testQueries))
	for s := 0; s < sessions; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			c, err := client.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			// Sessions differ in execution strategy — serial vs parallel,
			// fused vs not — which must never show in the results.
			budget := grant
			dop := 1 + s%2
			fuse := s%2 == 0
			if err := c.Set(server.SessionOpts{DOP: &dop, Fuse: &fuse, MemBudget: &budget}); err != nil {
				errs <- err
				return
			}
			for rep := 0; rep < 2; rep++ {
				for qi, q := range testQueries {
					res, err := c.Query(q)
					if err != nil {
						errs <- fmt.Errorf("session %d query %d: %w", s, qi, err)
						continue
					}
					if got := rowsKey(res.Schema, res.Rows()); got != want[q] {
						errs <- fmt.Errorf("session %d: result for %q differs from one-shot run", s, q)
					}
				}
			}
		}(s)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Queries < int64(sessions*len(testQueries)) {
		t.Errorf("queries = %d, want >= %d", stats.Queries, sessions*len(testQueries))
	}
	if stats.Granted != 0 {
		t.Errorf("granted = %d after all sessions finished, want 0", stats.Granted)
	}
	if stats.InUse != 0 {
		t.Errorf("in-use = %d after all sessions finished, want 0", stats.InUse)
	}
	if stats.Peak == 0 {
		t.Error("governed peak = 0: the workload never touched the ledger, test is vacuous")
	}
	// The documented slack per spilling query (see ARCHITECTURE.md): spill
	// writer buffers are forced, not reserved, because they exist
	// regardless of the budget — a grace join or partitioned aggregate can
	// hold up to 2*SpillPartitions+1 writers open at once — plus at most
	// one batch of rows that individually overflow the grant. The sharp
	// admission guarantee is PeakGranted <= budget below; this bound pins
	// that slack cannot exceed its documented worst case.
	perQuerySlack := int64((2*physical.SpillPartitions+1)*physical.SpillWriterOverheadBytes + 256<<10)
	if limit := global + sessions*perQuerySlack; stats.Peak > limit {
		t.Errorf("governed peak %d exceeds budget %d + documented slack %d",
			stats.Peak, global, sessions*perQuerySlack)
	}
	if stats.PeakGranted > global {
		t.Errorf("peak granted %d exceeds global budget %d", stats.PeakGranted, global)
	}
	if stats.Queued == 0 {
		t.Error("no query ever queued: admission control was never exercised, shrink the budget")
	}
	if stats.PlanHits == 0 {
		t.Error("plan cache never hit despite repeated identical queries")
	}
}

// TestServerSessionOps covers the session surface: ping, set validation,
// prepare/exec, stats, error responses, unknown ops.
func TestServerSessionOps(t *testing.T) {
	_, addr := startServer(t, server.Config{Front: testFrontend(200)})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	bad := "12 parsecs"
	if err := c.Set(server.SessionOpts{MemBudget: &bad}); err == nil {
		t.Error("bad mem_budget accepted")
	}
	if _, err := c.Query("SELEKT nope"); err == nil {
		t.Error("bad SQL accepted")
	}
	if err := c.Prepare("q1", "SELECT id FROM big WHERE v = 3 ORDER BY id"); err != nil {
		t.Fatal(err)
	}
	if err := c.Prepare("broken", "SELECT FROM nothing"); err == nil {
		t.Error("prepare of bad SQL accepted")
	}
	if _, err := c.Exec("missing"); err == nil {
		t.Error("exec of unknown statement accepted")
	}
	got, err := c.Exec("q1")
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.Query("SELECT id FROM big WHERE v = 3 ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if rowsKey(got.Schema, got.Rows()) != rowsKey(direct.Schema, direct.Rows()) {
		t.Error("exec of prepared statement differs from direct query")
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 1 {
		t.Errorf("sessions = %d, want 1", stats.Sessions)
	}
	if stats.Budget != 0 {
		t.Errorf("budget = %d on an unlimited server, want 0", stats.Budget)
	}
}

// TestServerQueryTimeout: a session timeout aborts a spilling query with a
// deadline error and the grant is returned.
func TestServerQueryTimeout(t *testing.T) {
	_, addr := startServer(t, server.Config{
		Front:        testFrontend(50000),
		GlobalBudget: 1 << 20,
		SpillDir:     t.TempDir(),
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	timeout := int64(1)
	budget := "64K"
	if err := c.Set(server.SessionOpts{TimeoutMS: &timeout, MemBudget: &budget}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Query("SELECT k, id, v FROM big ORDER BY k, id")
	if err == nil {
		t.Skip("query finished inside 1ms; nothing to assert")
	}
	if !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err = %v, want a deadline error", err)
	}
	// The grant must be back; a second session (no timeout) can use it.
	c2, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	waitForStats(t, c2, func(s *server.Stats) bool { return s.Granted == 0 })
}

// TestServerDisconnectReleasesBudget: a client that vanishes mid-query
// must not leak its admission grant.
func TestServerDisconnectReleasesBudget(t *testing.T) {
	_, addr := startServer(t, server.Config{
		Front:        testFrontend(100000),
		GlobalBudget: 1 << 20,
		SpillDir:     t.TempDir(),
	})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	budget := "64K"
	if err := c.Set(server.SessionOpts{MemBudget: &budget}); err != nil {
		t.Fatal(err)
	}
	// Fire a long spilling query and hang up without waiting for it.
	go c.Query("SELECT k, id, v FROM big ORDER BY k, id")
	watcher, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	waitForStats(t, watcher, func(s *server.Stats) bool { return s.Granted > 0 })
	c.Close()
	waitForStats(t, watcher, func(s *server.Stats) bool { return s.Granted == 0 && s.InUse == 0 })
}

// TestWireValueRoundTrip pins the tagged codec on every value kind,
// including the floats JSON cannot represent natively and extreme int64s.
func TestWireValueRoundTrip(t *testing.T) {
	vals := []types.Value{
		types.Null(),
		iv(0), iv(1), iv(-1), iv(math.MaxInt64), iv(math.MinInt64),
		fv(0), fv(1.5), fv(-2.25), fv(1e300), fv(5e-324),
		fv(math.NaN()), fv(math.Inf(1)), fv(math.Inf(-1)),
		sv(""), sv("plain"), sv(`with "quotes" and \ and ,`), sv("unicode: héllo ☃"),
		types.NewBool(true), types.NewBool(false),
	}
	enc, err := server.EncodeRows([][]types.Value{vals})
	if err != nil {
		t.Fatal(err)
	}
	// The frame layer is JSON: round-trip through it too.
	blob, err := json.Marshal(enc)
	if err != nil {
		t.Fatal(err)
	}
	var back [][]json.RawMessage
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	dec, err := server.DecodeRows(back)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec) != 1 || len(dec[0]) != len(vals) {
		t.Fatalf("shape changed: %d rows", len(dec))
	}
	for i, v := range vals {
		got := dec[0][i]
		if v.Kind() != got.Kind() {
			t.Errorf("value %d: kind %v -> %v", i, v.Kind(), got.Kind())
			continue
		}
		same := false
		switch v.Kind() {
		case types.KindNull:
			same = true
		case types.KindInt:
			same = v.Int() == got.Int()
		case types.KindFloat:
			same = math.Float64bits(v.Float()) == math.Float64bits(got.Float()) ||
				(math.IsNaN(v.Float()) && math.IsNaN(got.Float()))
		case types.KindString:
			same = v.Str() == got.Str()
		case types.KindBool:
			same = v.Bool() == got.Bool()
		}
		if !same {
			t.Errorf("value %d: %v -> %v", i, v, got)
		}
	}
}

func waitForStats(t *testing.T, c *client.Client, cond func(*server.Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s, err := c.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if cond(s) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stats condition not reached; last: %+v", *s)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
