package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/physical"
	"repro/internal/rewrite"
)

// Config sets up a Server.
type Config struct {
	// Front is the shared frontend: its catalogs are the server's session
	// catalog (every session sees the same tables) and its Opts are the
	// session defaults a client inherits until it sends a set.
	Front *rewrite.Frontend
	// GlobalBudget is the server-wide memory budget in bytes shared by all
	// concurrent queries through admission control; <= 0 means unlimited
	// (no admission, per-query budgets only).
	GlobalBudget int64
	// QueryBudget is the default per-query admission ask when a session
	// has not set its own mem_budget; 0 defaults to GlobalBudget/4 (so
	// four default queries run concurrently before the fifth queues).
	// Ignored when GlobalBudget is unlimited.
	QueryBudget int64
	// SpillDir is where governed queries spill; "" means the system temp
	// directory.
	SpillDir string
	// PlanCache is the shared plan-cache capacity in entries; 0 uses
	// rewrite.DefaultPlanCacheSize, negative disables caching.
	PlanCache int
}

// Server is the UA-DB query server. See the package comment for the wire
// protocol and New for construction.
type Server struct {
	front       *rewrite.Frontend
	admission   *physical.Admission
	queryBudget int64
	spillDir    string

	baseCtx context.Context
	abort   context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	sessions atomic.Int64 // live connections
	queries  atomic.Int64 // cumulative executed queries
}

// New builds a server over cfg. The frontend's plan cache is enabled so
// every session shares one prepared-plan cache keyed on normalized SQL.
func New(cfg Config) *Server {
	qb := cfg.QueryBudget
	if cfg.GlobalBudget > 0 {
		if qb <= 0 {
			qb = cfg.GlobalBudget / 4
		}
		if qb < 1 {
			qb = 1
		}
	}
	if cfg.PlanCache >= 0 {
		n := cfg.PlanCache
		if n == 0 {
			n = rewrite.DefaultPlanCacheSize
		}
		cfg.Front.EnablePlanCache(n)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		front:       cfg.Front,
		admission:   physical.NewAdmission(cfg.GlobalBudget),
		queryBudget: qb,
		spillDir:    cfg.SpillDir,
		baseCtx:     ctx,
		abort:       cancel,
		conns:       map[net.Conn]struct{}{},
	}
}

// ListenAndServe listens on addr and serves until Shutdown or a fatal
// listener error.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// shutdown-initiated close, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Addr reports the listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting connections and waits for live sessions to
// drain. If ctx expires first, in-flight queries are aborted (their grants
// release, their spill files are cleaned by operator Close) and
// connections are closed; Shutdown then waits for the handlers to unwind
// and returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.abort() // cancel every in-flight query
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// Close is Shutdown with no grace period.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// session is one connection's mutable state: execution options and named
// statements. Options resolve lazily so a set mid-session applies to the
// next query, not running ones.
type session struct {
	mu        sync.Mutex
	dop       int
	fuse      bool
	memBudget int64 // per-query ask in bytes; 0 = server default
	timeoutMS int64
	prepared  map[string]string // name -> SQL
}

func (s *Server) newSession() *session {
	return &session{
		dop:      s.front.Opts.DOP,
		fuse:     s.front.Opts.Fuse,
		prepared: map[string]string{},
	}
}

// apply folds a set request into the session.
func (sess *session) apply(o *SessionOpts) error {
	if o == nil {
		return nil
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if o.DOP != nil {
		sess.dop = *o.DOP
	}
	if o.Fuse != nil {
		sess.fuse = *o.Fuse
	}
	if o.MemBudget != nil {
		b, err := physical.ParseByteSize(*o.MemBudget)
		if err != nil {
			return fmt.Errorf("mem_budget: %w", err)
		}
		sess.memBudget = b
	}
	if o.TimeoutMS != nil {
		sess.timeoutMS = *o.TimeoutMS
	}
	return nil
}

// handleConn owns one connection: a read loop that dispatches each request
// to its own goroutine, a shared write lock serializing response frames,
// and a connection context whose cancellation — disconnect or server
// shutdown — aborts every in-flight query so admission grants are never
// leaked by a vanished client.
func (s *Server) handleConn(conn net.Conn) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	sess := s.newSession()
	s.sessions.Add(1)
	var wmu sync.Mutex
	var inflight sync.WaitGroup

	respond := func(resp Response) {
		wmu.Lock()
		defer wmu.Unlock()
		WriteFrame(conn, resp) // a dead conn also fails the read loop; nothing to do here
	}

	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			break
		}
		if req.Op == "close" {
			respond(Response{ID: req.ID, OK: true})
			break
		}
		inflight.Add(1)
		go func(req Request) {
			defer inflight.Done()
			respond(s.handle(ctx, sess, req))
		}(req)
	}

	cancel() // abort in-flight queries; queued ones fall out of admission
	inflight.Wait()
	conn.Close()
	s.sessions.Add(-1)
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

// handle executes one request and builds its response.
func (s *Server) handle(ctx context.Context, sess *session, req Request) Response {
	fail := func(err error) Response {
		return Response{ID: req.ID, Error: err.Error()}
	}
	switch req.Op {
	case "hello", "stats":
		return Response{ID: req.ID, OK: true, Stats: s.stats()}
	case "ping":
		return Response{ID: req.ID, OK: true}
	case "set":
		if err := sess.apply(req.Opts); err != nil {
			return fail(err)
		}
		return Response{ID: req.ID, OK: true}
	case "prepare":
		if req.Name == "" {
			return fail(errors.New("prepare: empty statement name"))
		}
		// Validate now so exec cannot fail on syntax; the plan itself is
		// cached by the shared normalized-SQL plan cache, not the session.
		if _, err := s.front.PlanSQL(req.SQL); err != nil {
			return fail(err)
		}
		sess.mu.Lock()
		sess.prepared[req.Name] = req.SQL
		sess.mu.Unlock()
		return Response{ID: req.ID, OK: true}
	case "exec":
		sess.mu.Lock()
		sqlText, ok := sess.prepared[req.Name]
		sess.mu.Unlock()
		if !ok {
			return fail(fmt.Errorf("exec: no prepared statement %q", req.Name))
		}
		return s.runQuery(ctx, sess, req.ID, sqlText)
	case "query":
		return s.runQuery(ctx, sess, req.ID, req.SQL)
	}
	return fail(fmt.Errorf("unknown op %q", req.Op))
}

// runQuery executes one SQL statement under the session's options and the
// server's admission control, and encodes the result.
func (s *Server) runQuery(ctx context.Context, sess *session, id uint64, sqlText string) Response {
	sess.mu.Lock()
	dop, fuse, ask, timeoutMS := sess.dop, sess.fuse, sess.memBudget, sess.timeoutMS
	sess.mu.Unlock()

	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, msDuration(timeoutMS))
		defer cancel()
	}

	opt := rewrite.QueryOpts{DOP: dop, Fuse: fuse, SpillDir: s.spillDir}
	if s.admission != nil {
		if ask <= 0 {
			ask = s.queryBudget
		}
		grant, err := s.admission.Acquire(ctx, ask)
		if err != nil {
			return Response{ID: id, Error: err.Error()}
		}
		defer grant.Release()
		opt.Gov = grant.Gov()
	} else {
		opt.MemBudget = ask
	}

	res, err := s.front.Query(ctx, sqlText, opt)
	if err != nil {
		return Response{ID: id, Error: err.Error()}
	}
	s.queries.Add(1)
	rows, err := EncodeRows(res.Rows())
	if err != nil {
		return Response{ID: id, Error: err.Error()}
	}
	return Response{ID: id, OK: true, Schema: res.Schema.Attrs, Rows: rows}
}

func msDuration(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }

// stats snapshots the server counters.
func (s *Server) stats() *Stats {
	hits, misses := s.front.PlanCacheStats()
	admitted, queued := s.admission.Stats()
	return &Stats{
		Sessions:    s.sessions.Load(),
		Queries:     s.queries.Load(),
		Budget:      s.admission.Budget(),
		Granted:     s.admission.Granted(),
		PeakGranted: s.admission.PeakGranted(),
		InUse:       s.admission.InUse(),
		Peak:        s.admission.Peak(),
		QueueLen:    s.admission.QueueLen(),
		Admitted:    admitted,
		Queued:      queued,
		PlanHits:    hits,
		PlanMisses:  misses,
	}
}
