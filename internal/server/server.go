package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/physical"
	"repro/internal/rewrite"
	"repro/internal/vector"
)

// Config sets up a Server.
type Config struct {
	// Front is the shared frontend: its catalogs are the server's session
	// catalog (every session sees the same tables) and its Opts are the
	// session defaults a client inherits until it sends a set.
	Front *rewrite.Frontend
	// GlobalBudget is the server-wide memory budget in bytes shared by all
	// concurrent queries through admission control; <= 0 means unlimited
	// (no admission, per-query budgets only).
	GlobalBudget int64
	// QueryBudget is the default per-query admission ask when a session
	// has not set its own mem_budget; 0 defaults to GlobalBudget/4 (so
	// four default queries run concurrently before the fifth queues).
	// Ignored when GlobalBudget is unlimited.
	QueryBudget int64
	// SpillDir is where governed queries spill; "" means the system temp
	// directory.
	SpillDir string
	// PlanCache is the shared plan-cache capacity in entries; 0 uses
	// rewrite.DefaultPlanCacheSize, negative disables caching.
	PlanCache int
}

// Server is the UA-DB query server. See the package comment for the wire
// protocol and New for construction.
type Server struct {
	front       *rewrite.Frontend
	admission   *physical.Admission
	queryBudget int64
	spillDir    string

	baseCtx context.Context
	abort   context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	sessions atomic.Int64 // live connections
	queries  atomic.Int64 // cumulative executed queries
}

// New builds a server over cfg. The frontend's plan cache is enabled so
// every session shares one prepared-plan cache keyed on normalized SQL.
func New(cfg Config) *Server {
	qb := cfg.QueryBudget
	if cfg.GlobalBudget > 0 {
		if qb <= 0 {
			qb = cfg.GlobalBudget / 4
		}
		if qb < 1 {
			qb = 1
		}
	}
	if cfg.PlanCache >= 0 {
		n := cfg.PlanCache
		if n == 0 {
			n = rewrite.DefaultPlanCacheSize
		}
		cfg.Front.EnablePlanCache(n)
	}
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		front:       cfg.Front,
		admission:   physical.NewAdmission(cfg.GlobalBudget),
		queryBudget: qb,
		spillDir:    cfg.SpillDir,
		baseCtx:     ctx,
		abort:       cancel,
		conns:       map[net.Conn]struct{}{},
	}
}

// ListenAndServe listens on addr and serves until Shutdown or a fatal
// listener error.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until Shutdown. It returns nil after a
// shutdown-initiated close, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return errors.New("server: already shut down")
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		go s.handleConn(conn)
	}
}

// Addr reports the listener's address (nil before Serve).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Shutdown stops accepting connections and waits for live sessions to
// drain. If ctx expires first, in-flight queries are aborted (their grants
// release, their spill files are cleaned by operator Close) and
// connections are closed; Shutdown then waits for the handlers to unwind
// and returns ctx.Err().
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.closed = true
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}
	s.abort() // cancel every in-flight query
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	<-done
	return ctx.Err()
}

// Close is Shutdown with no grace period.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Shutdown(ctx)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}

// session is one connection's mutable state: execution options, the
// negotiated result encoding, and named statements. Options resolve lazily
// so a set mid-session applies to the next query, not running ones.
type session struct {
	mu         sync.Mutex
	dop        int
	fuse       bool
	attrBounds bool
	memBudget  int64 // per-query ask in bytes; 0 = server default
	timeoutMS  int64
	encoding   string            // negotiated result encoding; "" = json
	prepared   map[string]string // name -> SQL
}

func (s *Server) newSession() *session {
	return &session{
		dop:        s.front.Opts.DOP,
		fuse:       s.front.Opts.Fuse,
		attrBounds: s.front.Opts.AttrBounds,
		encoding:   EncodingJSON,
		prepared:   map[string]string{},
	}
}

// frameWriter serializes a connection's outbound frames: JSON responses
// and binary column chunks share one write lock, so frames from
// concurrent queries interleave whole, never torn. Ordering within one
// query holds because that query's frames are written by one goroutine.
type frameWriter struct {
	mu sync.Mutex
	w  io.Writer
}

func (fw *frameWriter) writeJSON(v any) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return WriteFrame(fw.w, v)
}

func (fw *frameWriter) writeRaw(payload []byte) error {
	fw.mu.Lock()
	defer fw.mu.Unlock()
	return WriteRawFrame(fw.w, payload)
}

// apply folds a set request into the session.
func (sess *session) apply(o *SessionOpts) error {
	if o == nil {
		return nil
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if o.DOP != nil {
		sess.dop = *o.DOP
	}
	if o.Fuse != nil {
		sess.fuse = *o.Fuse
	}
	if o.MemBudget != nil {
		b, err := physical.ParseByteSize(*o.MemBudget)
		if err != nil {
			return fmt.Errorf("mem_budget: %w", err)
		}
		sess.memBudget = b
	}
	if o.TimeoutMS != nil {
		sess.timeoutMS = *o.TimeoutMS
	}
	if o.AttrBounds != nil {
		sess.attrBounds = *o.AttrBounds
	}
	return nil
}

// handleConn owns one connection: a read loop that dispatches each request
// to its own goroutine, a shared write lock serializing response frames,
// and a connection context whose cancellation — disconnect or server
// shutdown — aborts every in-flight query so admission grants are never
// leaked by a vanished client.
func (s *Server) handleConn(conn net.Conn) {
	ctx, cancel := context.WithCancel(s.baseCtx)
	sess := s.newSession()
	s.sessions.Add(1)
	fw := &frameWriter{w: conn} // a dead conn also fails the read loop; write errors need no handling here
	var inflight sync.WaitGroup

	for {
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			break
		}
		if req.Op == "close" {
			fw.writeJSON(Response{ID: req.ID, OK: true})
			break
		}
		inflight.Add(1)
		go func(req Request) {
			defer inflight.Done()
			s.handle(ctx, sess, fw, req)
		}(req)
	}

	cancel() // abort in-flight queries; queued ones fall out of admission
	inflight.Wait()
	conn.Close()
	s.sessions.Add(-1)
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.wg.Done()
}

// handle executes one request and writes its response frame(s).
func (s *Server) handle(ctx context.Context, sess *session, fw *frameWriter, req Request) {
	fail := func(err error) {
		fw.writeJSON(Response{ID: req.ID, Error: err.Error()})
	}
	switch req.Op {
	case "hello":
		s.hello(sess, fw, req)
	case "stats":
		fw.writeJSON(Response{ID: req.ID, OK: true, Stats: s.stats()})
	case "ping":
		fw.writeJSON(Response{ID: req.ID, OK: true})
	case "set":
		if err := sess.apply(req.Opts); err != nil {
			fail(err)
			return
		}
		fw.writeJSON(Response{ID: req.ID, OK: true})
	case "prepare":
		if req.Name == "" {
			fail(errors.New("prepare: empty statement name"))
			return
		}
		// Validate now so exec cannot fail on syntax; the plan itself is
		// cached by the shared normalized-SQL plan cache, not the session.
		if _, err := s.front.PlanSQL(req.SQL); err != nil {
			fail(err)
			return
		}
		sess.mu.Lock()
		sess.prepared[req.Name] = req.SQL
		sess.mu.Unlock()
		fw.writeJSON(Response{ID: req.ID, OK: true})
	case "exec":
		sess.mu.Lock()
		sqlText, ok := sess.prepared[req.Name]
		sess.mu.Unlock()
		if !ok {
			fail(fmt.Errorf("exec: no prepared statement %q", req.Name))
			return
		}
		s.runQuery(ctx, sess, fw, req.ID, sqlText)
	case "query":
		s.runQuery(ctx, sess, fw, req.ID, req.SQL)
	default:
		fail(fmt.Errorf("unknown op %q", req.Op))
	}
}

// hello negotiates the protocol version and result encoding. An absent
// Proto is version 1 (every pre-versioning client); a version beyond what
// the server speaks gets an explicit error naming the server's ceiling, so
// a future peer fails at the handshake instead of obscurely mid-stream.
// The encoding is the client's first listed one the server speaks under
// the agreed version; unknown entries are skipped and no match means
// "json", so negotiation only ever downgrades, never errors.
func (s *Server) hello(sess *session, fw *frameWriter, req Request) {
	proto := req.Proto
	if proto == 0 {
		proto = 1
	}
	if proto > ProtoVersion {
		fw.writeJSON(Response{
			ID:    req.ID,
			Proto: ProtoVersion,
			Error: fmt.Sprintf("unsupported protocol version %d (server speaks up to %d)", proto, ProtoVersion),
		})
		return
	}
	enc := EncodingJSON
	if proto >= 2 {
		for _, e := range req.Encodings {
			if e == EncodingColBin {
				enc = EncodingColBin
				break
			}
			if e == EncodingJSON {
				break
			}
		}
	}
	sess.mu.Lock()
	sess.encoding = enc
	sess.mu.Unlock()
	fw.writeJSON(Response{ID: req.ID, OK: true, Stats: s.stats(), Proto: proto, Encoding: enc})
}

// runQuery executes one SQL statement under the session's options and the
// server's admission control, and writes the result in the session's
// negotiated encoding: one JSON response frame, or a chunked binary
// column stream.
func (s *Server) runQuery(ctx context.Context, sess *session, fw *frameWriter, id uint64, sqlText string) {
	sess.mu.Lock()
	dop, fuse, ask, timeoutMS := sess.dop, sess.fuse, sess.memBudget, sess.timeoutMS
	attrBounds := sess.attrBounds
	encoding := sess.encoding
	sess.mu.Unlock()

	if timeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, msDuration(timeoutMS))
		defer cancel()
	}

	opt := rewrite.QueryOpts{DOP: dop, Fuse: fuse, SpillDir: s.spillDir, AttrBounds: attrBounds}
	if s.admission != nil {
		if ask <= 0 {
			ask = s.queryBudget
		}
		grant, err := s.admission.Acquire(ctx, ask)
		if err != nil {
			fw.writeJSON(Response{ID: id, Error: err.Error()})
			return
		}
		defer grant.Release()
		opt.Gov = grant.Gov()
	} else {
		opt.MemBudget = ask
	}

	res, cacheHit, err := s.front.QueryCached(ctx, sqlText, opt)
	if err != nil {
		fw.writeJSON(Response{ID: id, Error: err.Error()})
		return
	}
	s.queries.Add(1)

	if encoding == EncodingColBin {
		s.streamResult(ctx, fw, id, res, cacheHit)
		return
	}
	rows, err := EncodeRows(res.Rows())
	if err != nil {
		fw.writeJSON(Response{ID: id, Error: err.Error()})
		return
	}
	fw.writeJSON(Response{ID: id, OK: true, Schema: res.Schema.Attrs, Rows: rows})
}

// streamResult writes one query result as a chunked binary column stream:
// a JSON header frame carrying the schema and plan metadata, windowed
// binary chunk frames sliced zero-copy off the result vectors (row-backed
// results columnarize first — FromRows round-trips values exactly), and a
// JSON trailer frame with the totals. The admission grant is held by the
// caller until streaming finishes, so the result's memory is accounted for
// as long as it is being read.
func (s *Server) streamResult(ctx context.Context, fw *frameWriter, id uint64, res *physical.Result, cacheHit bool) {
	var vecs []vector.Vector
	n := res.NumRows()
	if cols := res.Cols(); cols != nil {
		vecs = cols.Vecs
	} else {
		vecs = vector.FromRows(res.Rows(), len(res.Schema.Attrs)).Vecs
	}
	kinds := make([]string, len(vecs))
	for j, v := range vecs {
		kinds[j] = string(vector.WireTag(v))
	}
	if err := fw.writeJSON(Response{
		ID: id, OK: true, Chunked: true,
		Schema: res.Schema.Attrs, Kinds: kinds, Encoding: EncodingColBin, CacheHit: cacheHit,
	}); err != nil {
		return
	}
	chunks := 0
	for lo := 0; lo < n; {
		if err := ctx.Err(); err != nil {
			fw.writeJSON(Response{ID: id, Final: true, Error: err.Error()})
			return
		}
		rows := chunkRows(vecs, n, lo)
		window := make([]vector.Vector, len(vecs))
		for j, v := range vecs {
			window[j] = v.Slice(lo, lo+rows)
		}
		if err := fw.writeRaw(EncodeColChunk(id, uint64(chunks), window)); err != nil {
			// A frame-size error (one row beyond MaxFrame) leaves the conn
			// alive: tell the client. A dead conn fails this write too.
			fw.writeJSON(Response{ID: id, Final: true, Error: err.Error()})
			return
		}
		chunks++
		lo += rows
	}
	fw.writeJSON(Response{ID: id, OK: true, Final: true, RowCount: int64(n), Chunks: chunks})
}

func msDuration(ms int64) time.Duration { return time.Duration(ms) * time.Millisecond }

// stats snapshots the server counters.
func (s *Server) stats() *Stats {
	hits, misses := s.front.PlanCacheStats()
	admitted, queued := s.admission.Stats()
	return &Stats{
		Sessions:    s.sessions.Load(),
		Queries:     s.queries.Load(),
		Budget:      s.admission.Budget(),
		Granted:     s.admission.Granted(),
		PeakGranted: s.admission.PeakGranted(),
		InUse:       s.admission.InUse(),
		Peak:        s.admission.Peak(),
		QueueLen:    s.admission.QueueLen(),
		Admitted:    admitted,
		Queued:      queued,
		PlanHits:    hits,
		PlanMisses:  misses,
	}
}
