// Package server is the UA-DB query server: a TCP surface over the same
// rewrite.Frontend the one-shot CLI drives, with per-connection sessions,
// per-session execution options, a shared plan cache, and a server-wide
// memory budget enforced by admission control (physical.Admission). Results
// are byte-identical to the one-shot path — the server adds sessions and
// governance, never semantics.
//
// # Wire format
//
// Every message — request and response — is one frame: a 4-byte big-endian
// payload length followed by that many bytes of JSON. Requests carry a
// client-chosen id; the matching response echoes it, so a client may keep
// any number of requests in flight on one connection and match replies by
// id (the server executes them concurrently and responds in completion
// order).
//
// Values in result rows use a tagged encoding so every engine value
// round-trips exactly: null is JSON null, and the rest are one-key objects
// {"I": int64}, {"F": float64 or "NaN"/"+Inf"/"-Inf"}, {"S": string},
// {"B": bool}. Integers survive because the decoder reads numbers as
// json.Number (no float64 detour); floats survive because Go's JSON
// encoder emits shortest-round-trip forms and the three non-finite values
// are spelled out as strings.
package server

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"repro/internal/types"
)

// MaxFrame caps a single frame's payload so a corrupt or hostile length
// prefix cannot make the server allocate unbounded memory.
const MaxFrame = 64 << 20

// ProtoVersion is the wire protocol version this package speaks. Version 1
// is the original JSON-only protocol (clients that send no version at all
// are treated as v1); version 2 adds the negotiated binary columnar result
// encoding and chunked streaming. A hello carrying a higher version than
// the server speaks gets an explicit error response naming both versions —
// never an obscure mid-stream failure.
const ProtoVersion = 2

// Result encodings a session can negotiate in hello.
const (
	// EncodingJSON is the v1 result shape: one response frame carrying
	// tagged-JSON rows. Always available; the default when no hello is sent
	// or no common encoding exists.
	EncodingJSON = "json"
	// EncodingColBin is the binary columnar encoding: a header frame, then
	// chunked binary column frames (see wirecol.go), then a trailer frame.
	// Requires proto >= 2.
	EncodingColBin = "colbin"
)

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame and unmarshals it into v.
func ReadFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return err
	}
	return json.Unmarshal(payload, v)
}

// WriteRawFrame writes pre-encoded payload bytes as one length-prefixed
// frame — the write path for binary chunk frames, which are already bytes.
func WriteRawFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadRawFrame reads one length-prefixed frame and returns its payload
// bytes undecoded, so a reader can dispatch on the first byte (JSON frames
// start with '{', binary chunk frames with ColMagic).
func ReadRawFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("server: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// Request is one client message.
type Request struct {
	ID uint64 `json:"id"`
	// Op selects the operation: hello, set, query, prepare, exec, stats,
	// ping, close.
	Op string `json:"op"`
	// SQL is the query text (query, prepare).
	SQL string `json:"sql,omitempty"`
	// Name names a prepared statement (prepare, exec).
	Name string `json:"name,omitempty"`
	// Opts carries session-option updates (set); nil fields keep the
	// session's current value.
	Opts *SessionOpts `json:"opts,omitempty"`
	// Proto is the client's protocol version (hello). 0 — the field absent,
	// as every pre-versioning client sends — means version 1.
	Proto int `json:"proto,omitempty"`
	// Encodings lists the result encodings the client can decode (hello),
	// in preference order. The server picks the first one it speaks;
	// absent or unrecognized entries fall back to "json".
	Encodings []string `json:"encodings,omitempty"`
}

// SessionOpts are the per-session execution options. Pointer fields
// distinguish "not mentioned" from an explicit zero.
type SessionOpts struct {
	// DOP caps the engine's parallelism for this session's queries
	// (0 = GOMAXPROCS, 1 = serial).
	DOP *int `json:"dop,omitempty"`
	// Fuse selects fused pipeline compilation.
	Fuse *bool `json:"fuse,omitempty"`
	// MemBudget is the session's per-query memory ask as a byte-size
	// string ("64M", "2G", plain bytes; "0" = server default). Under a
	// global budget it is the admission grant the session's queries
	// request; without one it becomes a plain per-query governor.
	MemBudget *string `json:"mem_budget,omitempty"`
	// TimeoutMS bounds each query's total time — queueing in admission
	// included — in milliseconds (0 = no timeout).
	TimeoutMS *int64 `json:"timeout_ms,omitempty"`
	// AttrBounds selects the attribute-level uncertainty mode: every
	// result column is answered as a [lower, best-guess, upper] range
	// (AU-DB spine layout) instead of the tuple-level certainty column.
	AttrBounds *bool `json:"attr_bounds,omitempty"`
}

// Response is one server message, matched to its request by ID.
type Response struct {
	ID    uint64 `json:"id"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Schema and Rows carry a query result (query, exec).
	Schema []string            `json:"schema,omitempty"`
	Rows   [][]json.RawMessage `json:"rows,omitempty"`
	// Stats carries the server counters (hello, stats).
	Stats *Stats `json:"stats,omitempty"`
	// Proto and Encoding report the negotiated protocol version and result
	// encoding (hello response; Proto also rides the version-mismatch
	// error so the client learns what the server speaks).
	Proto    int    `json:"proto,omitempty"`
	Encoding string `json:"encoding,omitempty"`
	// Chunked marks a streaming result's header frame: Schema is present,
	// rows follow as binary chunk frames, and a trailer frame with Final
	// set ends the result.
	Chunked bool `json:"chunked,omitempty"`
	// Kinds carries one wire column tag per result column on a streaming
	// header frame ("I", "F", "S", "B", "V" — vector.WireTag). A zero-row
	// stream has no chunk frames to name its column types, so the header
	// must: clients reassemble empty results as typed empty vectors from
	// these tags.
	Kinds []string `json:"kinds,omitempty"`
	// Final marks a streaming result's trailer frame: RowCount and Chunks
	// summarize the stream on success, Error reports a mid-stream failure
	// (rows already sent must be discarded).
	Final    bool  `json:"final,omitempty"`
	RowCount int64 `json:"row_count,omitempty"`
	Chunks   int   `json:"chunks,omitempty"`
	// CacheHit reports whether the query's rewritten plan came from the
	// shared plan cache (streaming header frames).
	CacheHit bool `json:"cache_hit,omitempty"`
}

// Stats is the server-wide counter snapshot.
type Stats struct {
	Sessions    int64 `json:"sessions"`     // live connections
	Queries     int64 `json:"queries"`      // queries executed (cumulative)
	Budget      int64 `json:"budget"`       // global memory budget (0 = unlimited)
	Granted     int64 `json:"granted"`      // outstanding admission grants
	PeakGranted int64 `json:"peak_granted"` // high-water mark of grants
	InUse       int64 `json:"in_use"`       // governed bytes in use right now
	Peak        int64 `json:"peak"`         // high-water mark of governed bytes
	QueueLen    int   `json:"queue_len"`    // queries blocked in admission
	Admitted    int64 `json:"admitted"`     // queries ever granted
	Queued      int64 `json:"queued"`       // queries that had to wait
	PlanHits    int64 `json:"plan_hits"`    // plan-cache hits
	PlanMisses  int64 `json:"plan_misses"`  // plan-cache misses
}

// EncodeValue renders one engine value in the tagged wire form.
func EncodeValue(v types.Value) (json.RawMessage, error) {
	switch v.Kind() {
	case types.KindNull:
		return json.RawMessage("null"), nil
	case types.KindInt:
		return json.RawMessage(fmt.Sprintf(`{"I":%d}`, v.Int())), nil
	case types.KindFloat:
		f := v.Float()
		switch {
		case math.IsNaN(f):
			return json.RawMessage(`{"F":"NaN"}`), nil
		case math.IsInf(f, 1):
			return json.RawMessage(`{"F":"+Inf"}`), nil
		case math.IsInf(f, -1):
			return json.RawMessage(`{"F":"-Inf"}`), nil
		}
		num, err := json.Marshal(f)
		if err != nil {
			return nil, err
		}
		return json.RawMessage(fmt.Sprintf(`{"F":%s}`, num)), nil
	case types.KindString:
		s, err := json.Marshal(v.Str())
		if err != nil {
			return nil, err
		}
		return json.RawMessage(fmt.Sprintf(`{"S":%s}`, s)), nil
	case types.KindBool:
		return json.RawMessage(fmt.Sprintf(`{"B":%t}`, v.Bool())), nil
	}
	return nil, fmt.Errorf("server: cannot encode value kind %v", v.Kind())
}

// DecodeValue parses one tagged wire value back into an engine value.
func DecodeValue(raw json.RawMessage) (types.Value, error) {
	trimmed := bytes.TrimSpace(raw)
	if len(trimmed) == 0 || string(trimmed) == "null" {
		return types.Null(), nil
	}
	var tag struct {
		I *json.Number     `json:"I"`
		F *json.RawMessage `json:"F"`
		S *string          `json:"S"`
		B *bool            `json:"B"`
	}
	dec := json.NewDecoder(bytes.NewReader(trimmed))
	dec.UseNumber()
	if err := dec.Decode(&tag); err != nil {
		return types.Value{}, fmt.Errorf("server: bad wire value %q: %w", trimmed, err)
	}
	switch {
	case tag.I != nil:
		n, err := strconv.ParseInt(tag.I.String(), 10, 64)
		if err != nil {
			return types.Value{}, fmt.Errorf("server: bad int value %q: %w", tag.I.String(), err)
		}
		return types.NewInt(n), nil
	case tag.F != nil:
		fraw := bytes.TrimSpace(*tag.F)
		if len(fraw) > 0 && fraw[0] == '"' {
			var s string
			if err := json.Unmarshal(fraw, &s); err != nil {
				return types.Value{}, err
			}
			switch s {
			case "NaN":
				return types.NewFloat(math.NaN()), nil
			case "+Inf":
				return types.NewFloat(math.Inf(1)), nil
			case "-Inf":
				return types.NewFloat(math.Inf(-1)), nil
			}
			return types.Value{}, fmt.Errorf("server: bad float spelling %q", s)
		}
		var f float64
		if err := json.Unmarshal(fraw, &f); err != nil {
			return types.Value{}, fmt.Errorf("server: bad float value %q: %w", fraw, err)
		}
		return types.NewFloat(f), nil
	case tag.S != nil:
		return types.NewString(*tag.S), nil
	case tag.B != nil:
		return types.NewBool(*tag.B), nil
	}
	return types.Value{}, fmt.Errorf("server: wire value %q has no recognized tag", trimmed)
}

// EncodeRows renders result rows in the tagged wire form.
func EncodeRows(rows [][]types.Value) ([][]json.RawMessage, error) {
	out := make([][]json.RawMessage, len(rows))
	for i, row := range rows {
		enc := make([]json.RawMessage, len(row))
		for j, v := range row {
			ev, err := EncodeValue(v)
			if err != nil {
				return nil, err
			}
			enc[j] = ev
		}
		out[i] = enc
	}
	return out, nil
}

// DecodeRows parses wire rows back into engine values.
func DecodeRows(rows [][]json.RawMessage) ([][]types.Value, error) {
	out := make([][]types.Value, len(rows))
	for i, row := range rows {
		dec := make([]types.Value, len(row))
		for j, raw := range row {
			v, err := DecodeValue(raw)
			if err != nil {
				return nil, err
			}
			dec[j] = v
		}
		out[i] = dec
	}
	return out, nil
}
