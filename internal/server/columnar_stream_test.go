package server_test

import (
	"encoding/json"
	"io"
	"math"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
)

// rawSession opens a bare wire connection for protocol-level tests that
// the Go client would paper over.
func rawSession(t *testing.T, addr string) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn
}

func writeReq(t *testing.T, conn net.Conn, req server.Request) {
	t.Helper()
	if err := server.WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
}

func readResp(t *testing.T, conn net.Conn) server.Response {
	t.Helper()
	var resp server.Response
	if err := server.ReadFrame(conn, &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestProtocolVersionNegotiation pins the hello handshake: explicit
// rejection of future versions, encoding selection gated on the agreed
// version, and a session that keeps working (as JSON) after a failed or
// absent handshake.
func TestProtocolVersionNegotiation(t *testing.T) {
	_, addr := startServer(t, server.Config{Front: testFrontend(50)})
	conn := rawSession(t, addr)

	// A future protocol version must fail loudly at the handshake, naming
	// the server's ceiling, instead of obscurely mid-stream.
	writeReq(t, conn, server.Request{ID: 1, Op: "hello", Proto: 99, Encodings: []string{server.EncodingColBin}})
	resp := readResp(t, conn)
	if resp.OK || resp.Error == "" {
		t.Fatalf("future version accepted: %+v", resp)
	}
	if !strings.Contains(resp.Error, "99") || !strings.Contains(resp.Error, "2") {
		t.Errorf("version error %q names neither version", resp.Error)
	}
	if resp.Proto != server.ProtoVersion {
		t.Errorf("error frame Proto = %d, want the server ceiling %d", resp.Proto, server.ProtoVersion)
	}

	// The connection survives the rejected hello and still speaks v1 JSON.
	writeReq(t, conn, server.Request{ID: 2, Op: "query", SQL: "SELECT id FROM big WHERE v = 3 ORDER BY id"})
	if resp = readResp(t, conn); !resp.OK || resp.Chunked || len(resp.Rows) == 0 {
		t.Fatalf("post-rejection query: %+v", resp)
	}

	// v2 + colbin negotiates the binary encoding.
	writeReq(t, conn, server.Request{ID: 3, Op: "hello", Proto: 2, Encodings: []string{server.EncodingColBin}})
	if resp = readResp(t, conn); !resp.OK || resp.Encoding != server.EncodingColBin || resp.Proto != 2 {
		t.Fatalf("v2 hello: %+v", resp)
	}
	if resp.Stats == nil {
		t.Error("hello response dropped the stats snapshot")
	}

	// v2 with no offered encodings stays JSON.
	writeReq(t, conn, server.Request{ID: 4, Op: "hello", Proto: 2})
	if resp = readResp(t, conn); !resp.OK || resp.Encoding != server.EncodingJSON {
		t.Fatalf("v2 hello without encodings: %+v", resp)
	}

	// v1 cannot negotiate colbin even if it asks — the encoding is a v2
	// feature, and an unknown encoding name is skipped, not an error.
	writeReq(t, conn, server.Request{ID: 5, Op: "hello", Proto: 1, Encodings: []string{"zstd-frames", server.EncodingColBin}})
	if resp = readResp(t, conn); !resp.OK || resp.Encoding != server.EncodingJSON {
		t.Fatalf("v1 hello with colbin: %+v", resp)
	}
}

// valuesBitEqual is the strict cross-encoding comparator: identical kind
// and identical payload bits per cell. (rowsKey canonicalizes ints through
// the float key encoder, so it alone cannot distinguish 2^53 from 2^53+1.)
func valuesBitEqual(a, b types.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case types.KindNull:
		return true
	case types.KindInt:
		return a.Int() == b.Int()
	case types.KindFloat:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case types.KindString:
		return a.Str() == b.Str()
	default:
		return a.Bool() == b.Bool()
	}
}

// TestProtocolCompatMatrix runs the new server against both client
// generations: a JSON-only peer (no hello at all — the v1 wire exactly)
// and a negotiating colbin peer, asserting both match the serial one-shot
// reference and each other bit for bit.
func TestProtocolCompatMatrix(t *testing.T) {
	const rows = 5000
	want := referenceResults(t, rows)
	_, addr := startServer(t, server.Config{Front: testFrontend(rows)})

	jsonC, err := client.DialJSON(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer jsonC.Close()
	colC, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer colC.Close()

	if enc := jsonC.Encoding(); enc != server.EncodingJSON {
		t.Fatalf("JSON-only client negotiated %q", enc)
	}
	if enc := colC.Encoding(); enc != server.EncodingColBin {
		t.Fatalf("colbin client negotiated %q", enc)
	}

	for _, q := range testQueries {
		jr, err := jsonC.Query(q)
		if err != nil {
			t.Fatalf("json %q: %v", q, err)
		}
		cr, err := colC.Query(q)
		if err != nil {
			t.Fatalf("colbin %q: %v", q, err)
		}
		if got := rowsKey(jr.Schema, jr.Rows()); got != want[q] {
			t.Errorf("json result for %q differs from one-shot run", q)
		}
		if got := rowsKey(cr.Schema, cr.Rows()); got != want[q] {
			t.Errorf("colbin result for %q differs from one-shot run", q)
		}
		jrows, crows := jr.Rows(), cr.Rows()
		if len(jrows) != len(crows) {
			t.Fatalf("%q: %d rows via json, %d via colbin", q, len(jrows), len(crows))
		}
		for i := range jrows {
			for j := range jrows[i] {
				if !valuesBitEqual(jrows[i][j], crows[i][j]) {
					t.Fatalf("%q row %d col %d: json %v, colbin %v", q, i, j, jrows[i][j], crows[i][j])
				}
			}
		}
	}
}

// TestMidStreamDisconnectDrains: a client that reads the stream header and
// vanishes must not leak its admission grant or its spill files — the
// write failure aborts streaming and the deferred release runs.
func TestMidStreamDisconnectDrains(t *testing.T) {
	spillDir := t.TempDir()
	_, addr := startServer(t, server.Config{
		Front:        testFrontend(120000),
		GlobalBudget: 1 << 20,
		SpillDir:     spillDir,
	})

	conn := rawSession(t, addr)
	writeReq(t, conn, server.Request{ID: 1, Op: "hello", Proto: server.ProtoVersion, Encodings: []string{server.EncodingColBin}})
	if resp := readResp(t, conn); resp.Encoding != server.EncodingColBin {
		t.Fatalf("negotiation failed: %+v", resp)
	}
	budget := "64K"
	writeReq(t, conn, server.Request{ID: 2, Op: "set", Opts: &server.SessionOpts{MemBudget: &budget}})
	if resp := readResp(t, conn); !resp.OK {
		t.Fatalf("set failed: %+v", resp)
	}
	writeReq(t, conn, server.Request{ID: 3, Op: "query", SQL: "SELECT k, id, v FROM big ORDER BY k, id"})
	// Read only the header frame — the spilling sort has finished and the
	// server is now streaming chunks — then hang up without draining them.
	if resp := readResp(t, conn); !resp.Chunked {
		t.Fatalf("expected a stream header, got %+v", resp)
	}
	conn.Close()

	watcher, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	waitForStats(t, watcher, func(s *server.Stats) bool { return s.Granted == 0 && s.InUse == 0 })

	deadline := time.Now().Add(10 * time.Second)
	for {
		ents, err := os.ReadDir(spillDir)
		if err != nil {
			t.Fatal(err)
		}
		if len(ents) == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("spill dir still holds %d entries after disconnect", len(ents))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// corruptingProxy relays one client connection to backend, passing every
// server->client frame through corrupt. A nil return from corrupt drops
// the connection mid-frame (the truncation case).
func corruptingProxy(t *testing.T, backend string, corrupt func([]byte) []byte) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		up, err := net.Dial("tcp", backend)
		if err != nil {
			conn.Close()
			return
		}
		go func() {
			io.Copy(up, conn) // client -> server passes through untouched
			up.Close()
		}()
		for {
			payload, err := server.ReadRawFrame(up)
			if err != nil {
				conn.Close()
				return
			}
			if mutated := corrupt(payload); mutated == nil {
				// Truncation: write a frame header promising more bytes
				// than follow, then drop the connection.
				hdr := []byte{0, 0, 0, byte(len(payload))}
				conn.Write(hdr)
				conn.Write(payload[:len(payload)/2])
				conn.Close()
				return
			} else if err := server.WriteRawFrame(conn, mutated); err != nil {
				conn.Close()
				return
			}
		}
	}()
	return ln.Addr().String()
}

// TestChunkCorruptionFailsCleanly: a flipped CRC byte or a truncated chunk
// surfaces as a prompt, clean protocol error — no hang, no wrong result —
// and the server side drains its admission grant.
func TestChunkCorruptionFailsCleanly(t *testing.T) {
	_, addr := startServer(t, server.Config{
		Front:        testFrontend(20000),
		GlobalBudget: 1 << 20,
		SpillDir:     t.TempDir(),
	})
	const q = "SELECT k, id, v FROM big ORDER BY k, id"

	t.Run("flipped CRC byte", func(t *testing.T) {
		flipped := false
		proxy := corruptingProxy(t, addr, func(p []byte) []byte {
			if !flipped && len(p) > 0 && p[0] == server.ColMagic {
				flipped = true
				q := append([]byte(nil), p...)
				q[9] ^= 0xFF // low CRC byte
				return q
			}
			return p
		})
		c, err := client.Dial(proxy)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = c.Query(q)
		if err == nil {
			t.Fatal("corrupt chunk produced a result")
		}
		if !strings.Contains(err.Error(), "CRC") {
			t.Errorf("err = %v, want a CRC mismatch", err)
		}
		if !flipped {
			t.Error("no chunk frame ever crossed the proxy; test is vacuous")
		}
	})

	t.Run("truncated chunk", func(t *testing.T) {
		cut := false
		proxy := corruptingProxy(t, addr, func(p []byte) []byte {
			if !cut && len(p) > 0 && p[0] == server.ColMagic {
				cut = true
				return nil
			}
			return p
		})
		c, err := client.Dial(proxy)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		_, err = c.Query(q)
		if err == nil {
			t.Fatal("truncated stream produced a result")
		}
		if !cut {
			t.Error("no chunk frame ever crossed the proxy; test is vacuous")
		}
	})

	watcher, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer watcher.Close()
	waitForStats(t, watcher, func(s *server.Stats) bool { return s.Granted == 0 && s.InUse == 0 })
}

// TestStreamTrailerTotals pins the stream's bookkeeping frames end to end
// on the raw wire: header schema, ascending chunk sequence, trailer row
// and chunk counts that match what actually crossed the connection.
func TestStreamTrailerTotals(t *testing.T) {
	_, addr := startServer(t, server.Config{Front: testFrontend(3000)})
	conn := rawSession(t, addr)
	writeReq(t, conn, server.Request{ID: 1, Op: "hello", Proto: 2, Encodings: []string{server.EncodingColBin}})
	readResp(t, conn)
	writeReq(t, conn, server.Request{ID: 2, Op: "query", SQL: "SELECT k, id, v FROM big ORDER BY k, id"})

	header := readResp(t, conn)
	if !header.Chunked || header.Final || len(header.Schema) != 4 {
		t.Fatalf("header = %+v", header)
	}
	var rows, chunks int
	for {
		payload, err := server.ReadRawFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if payload[0] != server.ColMagic {
			var trailer server.Response
			if err := json.Unmarshal(payload, &trailer); err != nil {
				t.Fatal(err)
			}
			if !trailer.Final || !trailer.OK {
				t.Fatalf("trailer = %+v", trailer)
			}
			if trailer.RowCount != int64(rows) || trailer.Chunks != chunks {
				t.Fatalf("trailer says %d rows / %d chunks, stream carried %d / %d",
					trailer.RowCount, trailer.Chunks, rows, chunks)
			}
			if rows != 3000 {
				t.Fatalf("stream carried %d rows, want 3000", rows)
			}
			return
		}
		id, seq, n, cols, err := server.DecodeColChunk(payload)
		if err != nil {
			t.Fatal(err)
		}
		if id != 2 || seq != uint64(chunks) || len(cols) != 4 {
			t.Fatalf("chunk id/seq/cols = %d/%d/%d", id, seq, len(cols))
		}
		rows += n
		chunks++
	}
}
