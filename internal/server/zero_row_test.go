package server_test

import (
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/engine"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
	"repro/internal/vector"
)

// zeroRowFrontend is a fixture with one column of every typed kind, so a
// zero-row result exercises typed reassembly across all of them.
func zeroRowFrontend() *rewrite.Frontend {
	front := rewrite.NewFrontend(engine.NewCatalog())
	ev := engine.NewTable(types.NewSchema("ev", "id", "score", "tag"))
	for i := 0; i < 64; i++ {
		ev.AppendVals(iv(int64(i)), fv(float64(i)+0.5), sv(fmt.Sprintf("t%d", i%4)))
	}
	front.Enc.Put(rewrite.EncodeDeterministic(ev))
	return front
}

// TestZeroRowColbinTypedColumns is the regression test for zero-row results
// on the binary columnar stream: the stream must round-trip header -> zero
// chunks -> trailer cleanly, and the client must reassemble typed empty
// column vectors — with no chunk frames to name the column types, the
// header's kind tags are the only record, and losing them silently demotes
// every empty result to boxed columns.
func TestZeroRowColbinTypedColumns(t *testing.T) {
	_, addr := startServer(t, server.Config{Front: zeroRowFrontend()})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if enc := c.Encoding(); enc != server.EncodingColBin {
		t.Fatalf("negotiated %q, want colbin", enc)
	}
	fuse := true
	if err := c.Set(server.SessionOpts{Fuse: &fuse}); err != nil {
		t.Fatal(err)
	}

	res, err := c.Query("SELECT id, score, tag FROM ev WHERE id < 0")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 0 {
		t.Fatalf("rows = %d, want 0", res.NumRows())
	}
	wantSchema := []string{"id", "score", "tag", "__cert"}
	if len(res.Schema) != len(wantSchema) {
		t.Fatalf("schema = %v, want %v", res.Schema, wantSchema)
	}
	cols := res.Columns()
	if len(cols.Vecs) != 4 || cols.N != 0 {
		t.Fatalf("columns = %d vecs / %d rows, want 4 / 0", len(cols.Vecs), cols.N)
	}
	for j, want := range []byte{'I', 'F', 'S', 'I'} {
		v := cols.Vecs[j]
		if v.Len() != 0 {
			t.Errorf("col %d (%s) has %d elements, want 0", j, res.Schema[j], v.Len())
		}
		if got := vector.WireTag(v); got != want {
			t.Errorf("col %d (%s) reassembled as %T (tag %q), want tag %q",
				j, res.Schema[j], v, got, want)
		}
	}
	// Row materialization of the typed empties stays empty and panic-free.
	if rows := res.Rows(); len(rows) != 0 {
		t.Fatalf("materialized rows = %v, want none", rows)
	}

	// A populated query on the same session still works after the zero-row
	// stream (framing was not disturbed).
	res, err = c.Query("SELECT id, score, tag FROM ev WHERE id = 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 1 || res.Rows()[0][0].Int() != 3 {
		t.Fatalf("follow-up query = %v", res.Rows())
	}
}

// TestZeroRowStreamWire pins the zero-row stream's raw wire shape: a header
// frame carrying schema and per-column kind tags, no chunk frames at all,
// and a trailer with zero totals.
func TestZeroRowStreamWire(t *testing.T) {
	_, addr := startServer(t, server.Config{Front: zeroRowFrontend()})
	conn := rawSession(t, addr)
	writeReq(t, conn, server.Request{ID: 1, Op: "hello", Proto: 2, Encodings: []string{server.EncodingColBin}})
	if resp := readResp(t, conn); resp.Encoding != server.EncodingColBin {
		t.Fatalf("negotiation failed: %+v", resp)
	}
	fuse := true
	writeReq(t, conn, server.Request{ID: 2, Op: "set", Opts: &server.SessionOpts{Fuse: &fuse}})
	if resp := readResp(t, conn); !resp.OK {
		t.Fatalf("set failed: %+v", resp)
	}
	writeReq(t, conn, server.Request{ID: 3, Op: "query", SQL: "SELECT id, score, tag FROM ev WHERE id < 0"})

	header := readResp(t, conn)
	if !header.Chunked || !header.OK {
		t.Fatalf("header = %+v", header)
	}
	if got, want := fmt.Sprint(header.Kinds), fmt.Sprint([]string{"I", "F", "S", "I"}); got != want {
		t.Fatalf("header kinds = %v, want %v", header.Kinds, want)
	}
	// The very next frame must be the trailer — zero chunk frames.
	payload, err := server.ReadRawFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if payload[0] == server.ColMagic {
		t.Fatal("zero-row stream emitted a chunk frame")
	}
	var trailer server.Response
	if err := json.Unmarshal(payload, &trailer); err != nil {
		t.Fatal(err)
	}
	if !trailer.Final || !trailer.OK || trailer.RowCount != 0 || trailer.Chunks != 0 {
		t.Fatalf("trailer = %+v", trailer)
	}
}
