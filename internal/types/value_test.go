package types

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
		str  string
	}{
		{Null(), KindNull, "NULL"},
		{NewBool(true), KindBool, "true"},
		{NewBool(false), KindBool, "false"},
		{NewInt(42), KindInt, "42"},
		{NewInt(-7), KindInt, "-7"},
		{NewFloat(2.5), KindFloat, "2.5"},
		{NewString("abc"), KindString, "abc"},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if c.v.String() != c.str {
			t.Errorf("String() = %q, want %q", c.v.String(), c.str)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if NewInt(5).Int() != 5 {
		t.Error("Int accessor")
	}
	if NewFloat(1.5).Float() != 1.5 {
		t.Error("Float accessor")
	}
	if NewInt(3).Float() != 3.0 {
		t.Error("Float should widen ints")
	}
	if NewString("x").Str() != "x" {
		t.Error("Str accessor")
	}
	if !NewBool(true).Bool() {
		t.Error("Bool accessor")
	}
	if !Null().IsNull() || NewInt(0).IsNull() {
		t.Error("IsNull")
	}
	if !NewInt(1).IsNumeric() || !NewFloat(1).IsNumeric() || NewString("1").IsNumeric() {
		t.Error("IsNumeric")
	}
}

func TestValueAccessorPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"Int on string":   func() { NewString("x").Int() },
		"Float on string": func() { NewString("x").Float() },
		"Str on int":      func() { NewInt(1).Str() },
		"Bool on null":    func() { Null().Bool() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(2), NewFloat(2.0), 0},  // cross-kind numeric equality
		{NewFloat(1.5), NewInt(2), -1}, // cross-kind numeric order
		{Null(), NewInt(0), -1},        // NULL sorts first
		{Null(), Null(), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{NewBool(true), NewString("a"), -1}, // kind order: bool < string
		{NewInt(5), NewString("5"), -1},     // kind order: numeric < string
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

func TestValueEqualMatchesCompare(t *testing.T) {
	vals := []Value{Null(), NewBool(true), NewInt(1), NewInt(2), NewFloat(1), NewString("1")}
	for _, a := range vals {
		for _, b := range vals {
			if a.Equal(b) != (a.Compare(b) == 0) {
				t.Errorf("Equal(%v, %v) inconsistent with Compare", a, b)
			}
		}
	}
}

func TestTupleKeyInjective(t *testing.T) {
	tuples := []Tuple{
		{NewInt(1), NewInt(2)},
		{NewInt(12)},
		{NewString("1"), NewInt(2)},
		{NewString("1|2")},
		{NewString("1"), NewString("2")},
		{NewInt(1), NewInt(2), Null()},
		{NewFloat(1), NewInt(2)}, // equals {1,2} numerically -> same key by design
	}
	keys := make(map[string]Tuple)
	for _, tp := range tuples {
		k := tp.Key()
		if prev, ok := keys[k]; ok {
			if prev.Compare(tp) != 0 {
				t.Errorf("key collision between unequal tuples %v and %v", prev, tp)
			}
		}
		keys[k] = tp
	}
}

func TestTupleKeyAgreesWithCompare(t *testing.T) {
	f := func(a, b int64, s string) bool {
		t1 := Tuple{NewInt(a), NewString(s)}
		t2 := Tuple{NewInt(b), NewString(s)}
		return (t1.Key() == t2.Key()) == (t1.Compare(t2) == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTupleOps(t *testing.T) {
	tp := Tuple{NewInt(1), NewString("x"), NewFloat(2.5)}
	if got := tp.Project([]int{2, 0}); !got.Equal(Tuple{NewFloat(2.5), NewInt(1)}) {
		t.Errorf("Project = %v", got)
	}
	other := Tuple{NewBool(true)}
	cat := tp.Concat(other)
	if len(cat) != 4 || !cat[3].Equal(NewBool(true)) {
		t.Errorf("Concat = %v", cat)
	}
	cl := tp.Clone()
	cl[0] = NewInt(99)
	if tp[0].Int() != 1 {
		t.Error("Clone shares storage")
	}
	if tp.HasNull() {
		t.Error("HasNull false positive")
	}
	if !(Tuple{NewInt(1), Null()}).HasNull() {
		t.Error("HasNull false negative")
	}
	if tp.String() != "(1, x, 2.5)" {
		t.Errorf("String = %q", tp.String())
	}
}

func TestTupleCompareLexicographic(t *testing.T) {
	ts := []Tuple{
		{NewInt(2)},
		{NewInt(1), NewInt(5)},
		{NewInt(1)},
		{NewInt(1), NewInt(3)},
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Compare(ts[j]) < 0 })
	want := []Tuple{{NewInt(1)}, {NewInt(1), NewInt(3)}, {NewInt(1), NewInt(5)}, {NewInt(2)}}
	for i := range want {
		if !ts[i].Equal(want[i]) {
			t.Fatalf("sorted[%d] = %v, want %v", i, ts[i], want[i])
		}
	}
}

func TestSchema(t *testing.T) {
	s := NewSchema("R", "id", "Name", "score")
	if s.Arity() != 3 {
		t.Error("Arity")
	}
	if s.IndexOf("name") != 1 {
		t.Error("IndexOf should be case-insensitive")
	}
	if s.IndexOf("missing") != -1 {
		t.Error("IndexOf missing")
	}
	if s.MustIndexOf("ID") != 0 {
		t.Error("MustIndexOf")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("MustIndexOf should panic on missing attribute")
			}
		}()
		s.MustIndexOf("nope")
	}()
	c := s.Concat(NewSchema("S", "x"))
	if c.Arity() != 4 || c.Attrs[3] != "x" {
		t.Error("Concat")
	}
	p := s.Project([]int{2, 0})
	if p.Attrs[0] != "score" || p.Attrs[1] != "id" {
		t.Error("Project")
	}
	if !s.Equal(NewSchema("other", "ID", "NAME", "SCORE")) {
		t.Error("Equal should ignore relation name and case")
	}
	if s.Equal(NewSchema("R", "id", "name")) {
		t.Error("Equal arity mismatch")
	}
	if s.String() != "R(id, Name, score)" {
		t.Errorf("String = %q", s.String())
	}
}
