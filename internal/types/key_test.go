package types

import (
	"math/rand"
	"testing"
)

// TestAppendKeyCollisions pins the canonical binary key encoding against
// the classic collision traps: the encoding must distinguish exactly the
// value (tuples) that Compare distinguishes.
func TestAppendKeyCollisions(t *testing.T) {
	distinct := []struct {
		name string
		a, b Tuple
	}{
		{"concat boundary", Tuple{NewString("a"), NewString("bc")}, Tuple{NewString("ab"), NewString("c")}},
		{"NULL vs empty string", Tuple{Null()}, Tuple{NewString("")}},
		{"NULL vs zero", Tuple{Null()}, Tuple{NewInt(0)}},
		{"int vs its decimal string", Tuple{NewInt(1)}, Tuple{NewString("1")}},
		{"bool vs its encoding letter", Tuple{NewBool(true)}, Tuple{NewString("T")}},
		{"separator inside string", Tuple{NewString("a|b")}, Tuple{NewString("a"), NewString("b")}},
		{"string with length-like prefix", Tuple{NewString("2:ab")}, Tuple{NewString("ab")}},
		{"zero vs negative zero string forms", Tuple{NewString("0")}, Tuple{NewString("-0")}},
		{"true vs false", Tuple{NewBool(true)}, Tuple{NewBool(false)}},
	}
	for _, c := range distinct {
		if c.a.Key() == c.b.Key() {
			t.Errorf("%s: %v and %v collide on key %q", c.name, c.a, c.b, c.a.Key())
		}
	}

	// Values that compare equal must encode identically — grouping and
	// joining follow Compare's cross-kind numeric equality.
	equal := []struct {
		name string
		a, b Tuple
	}{
		{"int vs equal float", Tuple{NewInt(1)}, Tuple{NewFloat(1.0)}},
		{"negative int vs equal float", Tuple{NewInt(-7)}, Tuple{NewFloat(-7.0)}},
		{"NULLs", Tuple{Null()}, Tuple{Null()}},
	}
	for _, c := range equal {
		if c.a.Key() != c.b.Key() {
			t.Errorf("%s: %v and %v should share a key: %q vs %q",
				c.name, c.a, c.b, c.a.Key(), c.b.Key())
		}
	}
}

// TestAppendKeyMatchesCompare fuzzes the invariant Key(a) == Key(b) iff
// Compare(a, b) == 0 over random value pairs.
func TestAppendKeyMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randVal := func() Value {
		switch rng.Intn(5) {
		case 0:
			return Null()
		case 1:
			return NewBool(rng.Intn(2) == 0)
		case 2:
			return NewInt(int64(rng.Intn(7) - 3))
		case 3:
			return NewFloat(float64(rng.Intn(7)-3) / 2)
		default:
			return NewString(string(rune('a' + rng.Intn(3))))
		}
	}
	for i := 0; i < 5000; i++ {
		a, b := randVal(), randVal()
		ka := string(a.AppendKey(nil))
		kb := string(b.AppendKey(nil))
		if (a.Compare(b) == 0) != (ka == kb) {
			t.Fatalf("Compare(%v,%v)=%d but keys %q vs %q", a, b, a.Compare(b), ka, kb)
		}
	}
}
