package types

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
)

// TestAppendKeyCollisions pins the canonical binary key encoding against
// the classic collision traps: the encoding must distinguish exactly the
// value (tuples) that Compare distinguishes.
func TestAppendKeyCollisions(t *testing.T) {
	distinct := []struct {
		name string
		a, b Tuple
	}{
		{"concat boundary", Tuple{NewString("a"), NewString("bc")}, Tuple{NewString("ab"), NewString("c")}},
		{"NULL vs empty string", Tuple{Null()}, Tuple{NewString("")}},
		{"NULL vs zero", Tuple{Null()}, Tuple{NewInt(0)}},
		{"int vs its decimal string", Tuple{NewInt(1)}, Tuple{NewString("1")}},
		{"bool vs its encoding letter", Tuple{NewBool(true)}, Tuple{NewString("T")}},
		{"separator inside string", Tuple{NewString("a|b")}, Tuple{NewString("a"), NewString("b")}},
		{"string with length-like prefix", Tuple{NewString("2:ab")}, Tuple{NewString("ab")}},
		{"zero vs negative zero string forms", Tuple{NewString("0")}, Tuple{NewString("-0")}},
		{"true vs false", Tuple{NewBool(true)}, Tuple{NewBool(false)}},
	}
	for _, c := range distinct {
		if c.a.Key() == c.b.Key() {
			t.Errorf("%s: %v and %v collide on key %q", c.name, c.a, c.b, c.a.Key())
		}
	}

	// Values that compare equal must encode identically — grouping and
	// joining follow Compare's cross-kind numeric equality.
	equal := []struct {
		name string
		a, b Tuple
	}{
		{"int vs equal float", Tuple{NewInt(1)}, Tuple{NewFloat(1.0)}},
		{"negative int vs equal float", Tuple{NewInt(-7)}, Tuple{NewFloat(-7.0)}},
		{"NULLs", Tuple{Null()}, Tuple{Null()}},
	}
	for _, c := range equal {
		if c.a.Key() != c.b.Key() {
			t.Errorf("%s: %v and %v should share a key: %q vs %q",
				c.name, c.a, c.b, c.a.Key(), c.b.Key())
		}
	}
}

// TestAppendKeyMatchesCompare fuzzes the invariant Key(a) == Key(b) iff
// Compare(a, b) == 0 over random value pairs.
func TestAppendKeyMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randVal := func() Value {
		switch rng.Intn(5) {
		case 0:
			return Null()
		case 1:
			return NewBool(rng.Intn(2) == 0)
		case 2:
			return NewInt(int64(rng.Intn(7) - 3))
		case 3:
			return NewFloat(float64(rng.Intn(7)-3) / 2)
		default:
			return NewString(string(rune('a' + rng.Intn(3))))
		}
	}
	for i := 0; i < 5000; i++ {
		a, b := randVal(), randVal()
		ka := string(a.AppendKey(nil))
		kb := string(b.AppendKey(nil))
		if (a.Compare(b) == 0) != (ka == kb) {
			t.Fatalf("Compare(%v,%v)=%d but keys %q vs %q", a, b, a.Compare(b), ka, kb)
		}
	}
}

// TestTypedEncodersMatchBoxed pins the per-kind Append*Key fast paths —
// what the columnar vectors call per element — byte for byte against the
// boxed Value.AppendKey, on every edge the typed loops could plausibly get
// wrong: NULL, NaN, infinities, negative zero, and int64↔float64 widening
// past 2^53 (where a huge int must share its key with the float it
// collapses to, exactly as Compare treats them as equal).
func TestTypedEncodersMatchBoxed(t *testing.T) {
	const big = int64(1) << 53
	check := func(name string, typed, boxed []byte) {
		t.Helper()
		if !bytes.Equal(typed, boxed) {
			t.Errorf("%s: typed %q != boxed %q", name, typed, boxed)
		}
	}
	check("null", AppendNullKey(nil), Null().AppendKey(nil))
	for _, b := range []bool{false, true} {
		check("bool", AppendBoolKey(nil, b), NewBool(b).AppendKey(nil))
	}
	ints := []int64{0, 1, -1, 42, big, big + 1, big - 1, -big, -big - 1,
		math.MaxInt64, math.MinInt64}
	for _, i := range ints {
		check("int", AppendIntKey(nil, i), NewInt(i).AppendKey(nil))
	}
	floats := []float64{0, math.Copysign(0, -1), 1.5, -2.25, math.NaN(),
		math.Inf(1), math.Inf(-1), float64(big), math.MaxFloat64, math.SmallestNonzeroFloat64}
	for _, f := range floats {
		check("float", AppendFloatKey(nil, f), NewFloat(f).AppendKey(nil))
	}
	for _, s := range []string{"", "a", "ab|c", "2:ab", "N", "T", "f3ff"} {
		check("string", AppendStringKey(nil, s), NewString(s).AppendKey(nil))
	}

	// The widening contract: a huge int keys identically to the float64 it
	// widens to, and therefore to any other int widening to the same float.
	check("2^53 int vs float", AppendIntKey(nil, big), NewFloat(float64(big)).AppendKey(nil))
	check("2^53+1 collapses", AppendIntKey(nil, big+1), AppendIntKey(nil, big))
	if NewInt(big).Compare(NewInt(big+1)) != 0 {
		t.Error("Compare contract changed: 2^53 and 2^53+1 no longer equal after widening")
	}
	// -0.0 and +0.0 compare equal but are distinct bit patterns; the
	// encoding has always kept them distinct (it keys by bits), and the
	// typed path must reproduce exactly that — not "fix" it.
	if bytes.Equal(AppendFloatKey(nil, 0), AppendFloatKey(nil, math.Copysign(0, -1))) !=
		bytes.Equal(NewFloat(0).AppendKey(nil), NewFloat(math.Copysign(0, -1)).AppendKey(nil)) {
		t.Error("typed and boxed encoders disagree on ±0 distinctness")
	}
}
