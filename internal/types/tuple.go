package types

import (
	"fmt"
	"strings"
)

// Tuple is an ordered sequence of values, one per schema attribute.
type Tuple []Value

// NewTuple builds a tuple from the given values.
func NewTuple(vs ...Value) Tuple { return Tuple(vs) }

// Key returns a canonical string key for t, injective over tuples, suitable
// as a map key for grouping, deduplication, and annotation lookup.
func (t Tuple) Key() string {
	b := make([]byte, 0, 16*len(t))
	for _, v := range t {
		b = v.AppendKey(b)
		b = append(b, '|')
	}
	return string(b)
}

// Compare orders tuples lexicographically; shorter tuples sort first when
// they are a prefix of longer ones.
func (t Tuple) Compare(o Tuple) int {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if c := t[i].Compare(o[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(t) < len(o):
		return -1
	case len(t) > len(o):
		return 1
	default:
		return 0
	}
}

// Equal reports whether t and o hold the same values.
func (t Tuple) Equal(o Tuple) bool { return t.Compare(o) == 0 }

// Clone returns a copy of t that shares no backing storage.
func (t Tuple) Clone() Tuple {
	c := make(Tuple, len(t))
	copy(c, t)
	return c
}

// Concat returns the concatenation of t and o as a fresh tuple.
func (t Tuple) Concat(o Tuple) Tuple {
	c := make(Tuple, 0, len(t)+len(o))
	c = append(c, t...)
	c = append(c, o...)
	return c
}

// Project returns the tuple restricted to the given positions.
func (t Tuple) Project(idx []int) Tuple {
	c := make(Tuple, len(idx))
	for i, j := range idx {
		c[i] = t[j]
	}
	return c
}

// HasNull reports whether any component of t is NULL.
func (t Tuple) HasNull() bool {
	for _, v := range t {
		if v.IsNull() {
			return true
		}
	}
	return false
}

// String renders the tuple as (v1, v2, ...).
func (t Tuple) String() string {
	var sb strings.Builder
	sb.WriteByte('(')
	for i, v := range t {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// Schema names the attributes of a relation.
type Schema struct {
	Name  string   // relation name, may be empty for derived results
	Attrs []string // attribute names in column order
}

// NewSchema builds a schema.
func NewSchema(name string, attrs ...string) Schema {
	return Schema{Name: name, Attrs: attrs}
}

// Arity returns the number of attributes.
func (s Schema) Arity() int { return len(s.Attrs) }

// IndexOf returns the position of the named attribute, or -1. Lookup is
// case-insensitive, matching SQL identifier semantics.
func (s Schema) IndexOf(attr string) int {
	for i, a := range s.Attrs {
		if strings.EqualFold(a, attr) {
			return i
		}
	}
	return -1
}

// MustIndexOf is IndexOf but panics on a missing attribute; for tests and
// internal call sites where absence is a bug.
func (s Schema) MustIndexOf(attr string) int {
	i := s.IndexOf(attr)
	if i < 0 {
		panic(fmt.Sprintf("types: schema %s has no attribute %q", s.Name, attr))
	}
	return i
}

// Concat returns the schema of a cross product of s and o.
func (s Schema) Concat(o Schema) Schema {
	attrs := make([]string, 0, len(s.Attrs)+len(o.Attrs))
	attrs = append(attrs, s.Attrs...)
	attrs = append(attrs, o.Attrs...)
	return Schema{Name: "", Attrs: attrs}
}

// Project returns the schema restricted to the given positions.
func (s Schema) Project(idx []int) Schema {
	attrs := make([]string, len(idx))
	for i, j := range idx {
		attrs[i] = s.Attrs[j]
	}
	return Schema{Name: "", Attrs: attrs}
}

// Equal reports whether two schemas have the same attribute names in order
// (relation names are ignored: derived relations are union-compatible with
// their sources).
func (s Schema) Equal(o Schema) bool {
	if len(s.Attrs) != len(o.Attrs) {
		return false
	}
	for i := range s.Attrs {
		if !strings.EqualFold(s.Attrs[i], o.Attrs[i]) {
			return false
		}
	}
	return true
}

// String renders the schema as Name(a1, a2, ...).
func (s Schema) String() string {
	return fmt.Sprintf("%s(%s)", s.Name, strings.Join(s.Attrs, ", "))
}
