// Package types provides the value, tuple, and schema layer shared by every
// other subsystem: typed scalar values with a total order, tuples with
// canonical hash keys, and named relation schemas.
package types

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the runtime type of a Value.
type Kind uint8

// The supported value kinds. KindNull sorts before every other kind; the
// remaining kinds sort in declaration order when values of different kinds
// are compared (a total order is required for deterministic output and for
// sort-based operators).
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOLEAN"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "FLOAT"
	case KindString:
		return "VARCHAR"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a dynamically typed scalar. The zero Value is NULL.
type Value struct {
	kind Kind
	i    int64
	f    float64
	s    string
	b    bool
}

// Null returns the NULL value.
func Null() Value { return Value{} }

// NewInt returns an integer value.
func NewInt(v int64) Value { return Value{kind: KindInt, i: v} }

// NewFloat returns a floating point value.
func NewFloat(v float64) Value { return Value{kind: KindFloat, f: v} }

// NewString returns a string value.
func NewString(v string) Value { return Value{kind: KindString, s: v} }

// NewBool returns a boolean value.
func NewBool(v bool) Value { return Value{kind: KindBool, b: v} }

// Kind reports the runtime kind of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// Int returns the integer payload. It panics if v is not an integer.
func (v Value) Int() int64 {
	if v.kind != KindInt {
		panic(fmt.Sprintf("types: Int() on %s value", v.kind))
	}
	return v.i
}

// Float returns the float payload, widening integers. It panics on other kinds.
func (v Value) Float() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic(fmt.Sprintf("types: Float() on %s value", v.kind))
}

// Str returns the string payload. It panics if v is not a string.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("types: Str() on %s value", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics if v is not a boolean.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("types: Bool() on %s value", v.kind))
	}
	return v.b
}

// IsNumeric reports whether v is an integer or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Compare returns -1, 0, or +1 ordering v relative to o. NULL sorts first;
// numeric kinds compare by numeric value; values of incomparable kinds order
// by kind. The result is a total order over all values.
func (v Value) Compare(o Value) int {
	if v.kind == KindNull || o.kind == KindNull {
		switch {
		case v.kind == o.kind:
			return 0
		case v.kind == KindNull:
			return -1
		default:
			return 1
		}
	}
	if v.IsNumeric() && o.IsNumeric() {
		a, b := v.Float(), o.Float()
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	if v.kind != o.kind {
		if v.kind < o.kind {
			return -1
		}
		return 1
	}
	switch v.kind {
	case KindBool:
		switch {
		case v.b == o.b:
			return 0
		case !v.b:
			return -1
		default:
			return 1
		}
	case KindString:
		return strings.Compare(v.s, o.s)
	}
	return 0
}

// Equal reports whether v and o are the same value (NULL equals NULL here;
// SQL three-valued logic lives in the expression evaluator, not in Value).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	default:
		return "?"
	}
}

// AppendKey appends the canonical binary key encoding of v to b. The
// encoding is the single shared grouping/join/dedup key format of the whole
// engine: two values encode identically iff Compare orders them equal.
// Integers that are exactly representable as floats encode identically to
// the equal float, matching Compare's cross-kind numeric equality; strings
// are length-prefixed so concatenated encodings cannot collide ("a","bc" vs
// "ab","c"); NULL ('N') is distinct from the empty string ("s0:"). The
// numeric encoding is fixed-width-free hex and therefore not
// self-delimiting — multi-value keys must join encodings with a separator,
// as Tuple.Key and the physical operators' key builders do.
//
// The per-kind Append*Key functions below are the same encoding over raw Go
// payloads; AppendKey delegates to them, so the typed columnar key builders
// (which never box a Value) agree with the boxed encoder by construction.
func (v Value) AppendKey(b []byte) []byte {
	switch v.kind {
	case KindNull:
		return AppendNullKey(b)
	case KindBool:
		return AppendBoolKey(b, v.b)
	case KindInt:
		return AppendIntKey(b, v.i)
	case KindFloat:
		return AppendFloatKey(b, v.f)
	case KindString:
		return AppendStringKey(b, v.s)
	default:
		return append(b, '?')
	}
}

// AppendNullKey appends the canonical key encoding of NULL.
func AppendNullKey(b []byte) []byte { return append(b, 'N') }

// AppendBoolKey appends the canonical key encoding of a boolean payload.
func AppendBoolKey(b []byte, v bool) []byte {
	if v {
		return append(b, 'T')
	}
	return append(b, 'F')
}

// AppendIntKey appends the canonical key encoding of an integer payload.
// Integers widen to float64 first — exactly as Compare's cross-kind numeric
// equality does — so an int and the float it equals share one encoding, and
// two huge ints that collapse to the same float64 (beyond 2^53) collide
// exactly when Compare orders them equal.
func AppendIntKey(b []byte, v int64) []byte {
	return AppendFloatKey(b, float64(v))
}

// AppendFloatKey appends the canonical key encoding of a float payload: the
// IEEE-754 bit pattern in hex, so -0 and +0 stay distinct encodings of
// distinct bit patterns and every NaN payload keys by its own bits.
func AppendFloatKey(b []byte, v float64) []byte {
	b = append(b, 'f')
	return strconv.AppendUint(b, math.Float64bits(v), 16)
}

// AppendStringKey appends the canonical key encoding of a string payload,
// length-prefixed so concatenated encodings cannot collide.
func AppendStringKey(b []byte, v string) []byte {
	b = append(b, 's')
	b = strconv.AppendInt(b, int64(len(v)), 10)
	b = append(b, ':')
	return append(b, v...)
}
