package uadb

import (
	"fmt"

	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
)

// UAttr is the name of the certainty-marker attribute added by the bag
// encoding of Definition 8 (the paper's column C; named U here to avoid
// clashing with user attributes named "c" in examples).
const UAttr = "__cert"

// Enc encodes a bag UA-relation as an ordinary N-relation with an extra
// trailing attribute U ∈ {0, 1} (Definition 8): a tuple annotated [c, d]
// becomes (t, 1) with multiplicity c and (t, 0) with multiplicity d − c.
// This is the physical representation the query-rewriting frontend operates
// on.
func Enc(r *Relation[int64]) *kdb.Relation[int64] {
	schema := r.Schema()
	encSchema := types.Schema{Name: schema.Name, Attrs: append(append([]string{}, schema.Attrs...), UAttr)}
	out := kdb.New[int64](semiring.Nat, encSchema)
	r.ForEach(func(t types.Tuple, p semiring.Pair[int64]) {
		if p.Cert > 0 {
			out.Add(t.Concat(types.Tuple{types.NewInt(1)}), p.Cert)
		}
		if d := p.Det - p.Cert; d > 0 {
			out.Add(t.Concat(types.Tuple{types.NewInt(0)}), d)
		}
	})
	return out
}

// Dec decodes the relational encoding back into a UA-relation
// (Enc⁻¹ of Definition 8): R(t) = [R'(t,1), R'(t,0) + R'(t,1)]. The encoded
// relation's last attribute must be the certainty marker.
func Dec(r *kdb.Relation[int64]) (*Relation[int64], error) {
	schema := r.Schema()
	n := schema.Arity()
	if n < 1 {
		return nil, fmt.Errorf("uadb: Dec on relation without certainty attribute")
	}
	base := types.Schema{Name: schema.Name, Attrs: schema.Attrs[:n-1]}
	ua := semiring.UA[int64](semiring.Nat)
	out := kdb.New[semiring.Pair[int64]](ua, base)
	var err error
	r.ForEach(func(t types.Tuple, k int64) {
		if err != nil {
			return
		}
		marker := t[n-1]
		data := t[:n-1].Clone()
		p := out.Get(data)
		switch {
		case marker.Equal(types.NewInt(1)):
			p.Cert += k
			p.Det += k
		case marker.Equal(types.NewInt(0)):
			p.Det += k
		default:
			err = fmt.Errorf("uadb: bad certainty marker %s in tuple %s", marker, t)
			return
		}
		out.Set(data, p)
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EncDatabase encodes every relation of a UA-database.
func EncDatabase(d *Database[int64]) *kdb.Database[int64] {
	out := kdb.NewDatabase[int64](semiring.Nat)
	for _, r := range d.Relations {
		out.Put(Enc(r))
	}
	return out
}

// DecDatabase decodes every relation of an encoded database.
func DecDatabase(d *kdb.Database[int64]) (*Database[int64], error) {
	ua := semiring.UA[int64](semiring.Nat)
	out := kdb.NewDatabase[semiring.Pair[int64]](ua)
	for _, r := range d.Relations {
		dec, err := Dec(r)
		if err != nil {
			return nil, err
		}
		out.Put(dec)
	}
	return out, nil
}
