package uadb

// Tests for Section 8 of the paper: preservation of c-completeness.
// Corollary 1: RA⁺ over labelings derived from TI-DBs preserves
// c-completeness (and with Theorem 5's soundness, results are c-correct).
// Theorem 6: over x-DBs, conjunctive self-join-free queries preserve
// c-completeness when the projection retains an x-key of every input.

import (
	"math/rand"
	"testing"

	"repro/internal/incomplete"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/semiring"
	"repro/internal/types"
)

// randomTI builds a random TI relation R(a,b) with a few optional rows.
func randomTI(rng *rand.Rand) *models.TIRelation {
	r := models.NewTIRelation(types.NewSchema("R", "a", "b"))
	for i := 0; i < rng.Intn(5)+2; i++ {
		tp := it(rng.Int63n(3), rng.Int63n(3))
		if rng.Intn(2) == 0 {
			r.AddCertain(tp)
		} else {
			r.AddOptional(tp, 0.5)
		}
	}
	return r
}

// TestCorollary1TIDBCCorrectResults: queries over TI-DB labelings return
// exactly the certain annotations — c-sound by Theorem 5 and c-complete by
// Corollary 1.
func TestCorollary1TIDBCCorrectResults(t *testing.T) {
	rng := rand.New(rand.NewSource(808))
	for trial := 0; trial < 60; trial++ {
		ti := randomTI(rng)
		worlds, err := models.WorldsTIDB(ti)
		if err != nil {
			continue
		}
		labelDB := kdb.NewDatabase[int64](semiring.Nat)
		labelDB.Put(models.LabelTIDB(ti))

		q := randomQuery(rng, rng.Intn(3)+1)
		labelRes, err := kdb.Eval(q, labelDB)
		if err != nil {
			t.Fatal(err)
		}
		certRes, err := incomplete.CertainOfQuery(q, worlds)
		if err != nil {
			t.Fatal(err)
		}
		// c-correctness: the two relations agree exactly.
		ok := true
		labelRes.ForEach(func(tp types.Tuple, l int64) {
			if l != certRes.Get(tp) {
				ok = false
			}
		})
		certRes.ForEach(func(tp types.Tuple, c int64) {
			if c != labelRes.Get(tp) {
				ok = false
			}
		})
		if !ok {
			t.Fatalf("trial %d: query %s over TI labeling is not c-correct:\nlabel: %s\ncert: %s",
				trial, q, labelRes, certRes)
		}
	}
}

// TestTheorem6XKeyPreservesCompleteness: projecting onto a set of attributes
// containing an x-key keeps the labeling c-complete (no false negatives),
// while projecting an x-key away can produce certain tuples the labeling
// misses — exactly the paper's FNR mechanism.
func TestTheorem6XKeyPreservesCompleteness(t *testing.T) {
	// R(a, b): x-tuples whose alternatives always differ on b (b is an
	// x-key) but agree on a.
	x := models.NewXRelation(types.NewSchema("R", "a", "b"))
	x.AddChoice(it(1, 10), it(1, 11))
	x.AddChoice(it(2, 20), it(2, 21))
	x.AddCertain(it(3, 30))
	if !models.XKey(x, []string{"b"}) {
		t.Fatal("b should be an x-key")
	}
	if models.XKey(x, []string{"a"}) {
		t.Fatal("a must not be an x-key (alternatives agree on it)")
	}
	worlds, err := models.WorldsXDB(x)
	if err != nil {
		t.Fatal(err)
	}
	labelDB := kdb.NewDatabase[int64](semiring.Nat)
	labelDB.Put(models.LabelXDB(x))

	check := func(attrs []string) (missed int) {
		q := kdb.ProjectQ{Input: kdb.Table{Name: "R"}, Attrs: attrs}
		labelRes, err := kdb.Eval(q, labelDB)
		if err != nil {
			t.Fatal(err)
		}
		certRes, err := incomplete.CertainOfQuery(q, worlds)
		if err != nil {
			t.Fatal(err)
		}
		certRes.ForEach(func(tp types.Tuple, c int64) {
			if c > 0 && labelRes.Get(tp) == 0 {
				missed++
			}
		})
		return missed
	}
	// π_{a,b} contains the x-key b: c-completeness preserved.
	if m := check([]string{"a", "b"}); m != 0 {
		t.Errorf("projection retaining the x-key missed %d certain tuples", m)
	}
	// π_a drops the x-key: tuples (1) and (2) are certain (their x-tuples'
	// alternatives all project to the same a) but unlabeled.
	if m := check([]string{"a"}); m != 2 {
		t.Errorf("projection dropping the x-key should miss 2 certain tuples, missed %d", m)
	}
}

// TestTheorem6JoinWithXKeys: a self-join-free conjunctive query whose
// projection keeps an x-key of each relation preserves c-completeness.
func TestTheorem6JoinWithXKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		// R(a,b) with x-key b: alternatives vary b only.
		r := models.NewXRelation(types.NewSchema("R", "a", "b"))
		for i := 0; i < rng.Intn(3)+1; i++ {
			a := rng.Int63n(2)
			if rng.Intn(2) == 0 {
				r.AddCertain(it(a, rng.Int63n(10)))
			} else {
				b := rng.Int63n(10)
				r.AddChoice(it(a, b), it(a, b+100)) // always differ on b
			}
		}
		// S(c,d) deterministic.
		s := models.NewXRelation(types.NewSchema("S", "c", "d"))
		for i := 0; i < rng.Intn(3)+1; i++ {
			s.AddCertain(it(rng.Int63n(2), rng.Int63n(3)))
		}
		rw, err := models.WorldsXDB(r)
		if err != nil {
			t.Fatal(err)
		}
		sw, err := models.WorldsXDB(s)
		if err != nil {
			t.Fatal(err)
		}
		// Combine the two independent world sets.
		var combined incomplete.DB[int64]
		combined.K = semiring.Nat
		for _, wr := range rw.Worlds {
			for _, ws := range sw.Worlds {
				db := kdb.NewDatabase[int64](semiring.Nat)
				db.Put(wr.Get("R"))
				db.Put(ws.Get("S"))
				combined.Worlds = append(combined.Worlds, db)
			}
		}

		labelDB := kdb.NewDatabase[int64](semiring.Nat)
		labelDB.Put(models.LabelXDB(r))
		labelDB.Put(models.LabelXDB(s))

		// π_{b, c, d}(R ⋈_{a=c} S): contains x-key b of R and trivially the
		// (deterministic) whole of S.
		q := kdb.ProjectQ{
			Input: kdb.JoinQ{
				Left: kdb.Table{Name: "R"}, Right: kdb.Table{Name: "S"},
				Pred: kdb.AttrAttr{Left: "a", Right: "c", PosLeft: -1, PosRight: -1, Op: kdb.OpEq},
			},
			Attrs: []string{"b", "c", "d"},
		}
		labelRes, err := kdb.Eval(q, labelDB)
		if err != nil {
			t.Fatal(err)
		}
		certRes, err := incomplete.CertainOfQuery(q, &combined)
		if err != nil {
			t.Fatal(err)
		}
		certRes.ForEach(func(tp types.Tuple, c int64) {
			// Set-level c-completeness: every certain tuple is labeled.
			if c > 0 && labelRes.Get(tp) == 0 {
				t.Fatalf("trial %d: certain tuple %s unlabeled despite x-key projection", trial, tp)
			}
		})
	}
}

// TestXKeySuperset is Lemma 7: supersets of x-keys are x-keys.
func TestXKeySuperset(t *testing.T) {
	x := models.NewXRelation(types.NewSchema("R", "a", "b", "c"))
	x.AddChoice(it(1, 10, 5), it(1, 11, 5))
	if !models.XKey(x, []string{"b"}) {
		t.Fatal("b is an x-key")
	}
	for _, super := range [][]string{{"a", "b"}, {"b", "c"}, {"a", "b", "c"}} {
		if !models.XKey(x, super) {
			t.Errorf("superset %v of x-key should be an x-key", super)
		}
	}
}
