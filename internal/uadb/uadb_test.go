package uadb

import (
	"math/rand"
	"testing"

	"repro/internal/incomplete"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/semiring"
	"repro/internal/types"
)

func it(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.NewInt(v)
	}
	return t
}

func TestNewClampsLabelToWorld(t *testing.T) {
	k := semiring.Nat
	schema := types.NewSchema("R", "a")
	label := kdb.New[int64](k, schema)
	label.Add(it(1), 5) // inconsistent: claims more certainty than the world has
	world := kdb.New[int64](k, schema)
	world.Add(it(1), 2)
	ua := New[int64](k, label, world)
	p := ua.Get(it(1))
	if p.Cert != 2 || p.Det != 2 {
		t.Errorf("pair = [%d,%d], want clamped [2,2]", p.Cert, p.Det)
	}
}

func TestCertDetParts(t *testing.T) {
	k := semiring.Nat
	schema := types.NewSchema("R", "a")
	label := kdb.New[int64](k, schema)
	label.Add(it(1), 1)
	world := kdb.New[int64](k, schema)
	world.Add(it(1), 3)
	world.Add(it(2), 2)
	ua := New[int64](k, label, world)
	c := CertPart[int64](k, ua)
	d := DetPart[int64](k, ua)
	if c.Get(it(1)) != 1 || c.Get(it(2)) != 0 {
		t.Error("CertPart")
	}
	if d.Get(it(1)) != 3 || d.Get(it(2)) != 2 {
		t.Error("DetPart")
	}
}

// randomXDB builds a random x-relation over schema R(a,b) with nTuples
// x-tuples, each with 1-3 alternatives and random optionality.
func randomXDB(rng *rand.Rand, nTuples int) *models.XRelation {
	r := models.NewXRelation(types.NewSchema("R", "a", "b"))
	for i := 0; i < nTuples; i++ {
		nAlts := rng.Intn(3) + 1
		alts := make([]models.Alternative, nAlts)
		for j := range alts {
			alts[j] = models.Alternative{Data: it(rng.Int63n(3), rng.Int63n(3)), Prob: 1 / float64(nAlts)}
		}
		r.Add(models.XTuple{Alts: alts, Optional: rng.Intn(4) == 0})
	}
	return r
}

func randomQuery(rng *rand.Rand, depth int) kdb.Query {
	if depth <= 0 {
		return kdb.Table{Name: "R"}
	}
	switch rng.Intn(4) {
	case 0:
		return kdb.SelectQ{
			Input: randomQuery(rng, depth-1),
			Pred:  kdb.AttrConst{Attr: "a", Op: kdb.OpLe, Const: types.NewInt(rng.Int63n(3))},
		}
	case 1:
		in := randomQuery(rng, depth-1)
		return kdb.ProjectQ{Input: in, Attrs: []string{"a"}}
	case 2:
		// Self-join on a: rename-free because predicates use positions.
		l := randomQuery(rng, depth-1)
		return kdb.ProjectQ{
			Input: kdb.JoinQ{Left: l, Right: kdb.Table{Name: "R"},
				Pred: kdb.AttrAttr{PosLeft: 0, PosRight: queryArity(l), Op: kdb.OpEq}},
			Attrs: []string{"a", "b"},
		}
	default:
		l := randomQuery(rng, depth-1)
		r := randomQuery(rng, depth-1)
		return kdb.UnionQ{
			Left:  kdb.ProjectQ{Input: l, Attrs: []string{"a"}},
			Right: kdb.ProjectQ{Input: r, Attrs: []string{"a"}},
		}
	}
}

var rSchemas = map[string]types.Schema{"r": types.NewSchema("R", "a", "b")}

func queryArity(q kdb.Query) int {
	s, err := kdb.OutputSchema(q, rSchemas)
	if err != nil {
		panic(err)
	}
	return s.Arity()
}

// TestQueriesPreserveBounds is the paper's central result (Theorems 4 and 5):
// for a UA-DB built from a c-sound labeling and a best-guess world, the
// result of any RA⁺ query still sandwiches the certain annotations —
// Q(L)(t) ⪯ certN(Q(D), t) and the det component equals Q evaluated on the
// BGW, which is ⪰ the certain annotation.
func TestQueriesPreserveBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 80; trial++ {
		x := randomXDB(rng, rng.Intn(4)+2)
		worlds, err := models.WorldsXDB(x)
		if err != nil {
			continue // too many worlds; skip
		}
		// Build the UA-DB from labeling + designated world 0 equivalent
		// (BestGuessXDB picks first alternatives = world with choice vector 0,
		// but optional x-tuples are included, matching a specific world).
		uaRel := FromXDB(x)
		uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
		uaDB.Put(uaRel)

		q := randomQuery(rng, rng.Intn(3)+1)
		uaRes, err := Eval(q, uaDB)
		if err != nil {
			t.Fatal(err)
		}
		certRes, err := incomplete.CertainOfQuery(q, worlds)
		if err != nil {
			t.Fatal(err)
		}
		// c-soundness of the result labeling (Theorem 5).
		uaRes.ForEach(func(tp types.Tuple, p semiring.Pair[int64]) {
			if p.Cert > certRes.Get(tp) {
				t.Fatalf("trial %d query %s: tuple %s labeled %d but certain only %d",
					trial, q, tp, p.Cert, certRes.Get(tp))
			}
		})
		// Over-approximation: every certain tuple appears in the UA result
		// with det ⪰ cert (Theorem 4: the BGW component is preserved and any
		// world over-approximates the certain annotations).
		certRes.ForEach(func(tp types.Tuple, c int64) {
			p := uaRes.Get(tp)
			if p.Det < c {
				t.Fatalf("trial %d query %s: tuple %s certain %d but BGW has only %d",
					trial, q, tp, c, p.Det)
			}
		})
	}
}

// TestDetComponentIsBGQP verifies backward compatibility with best-guess
// query processing: h_det(Q(D_UA)) = Q(h_det(D_UA)).
func TestDetComponentIsBGQP(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	for trial := 0; trial < 50; trial++ {
		x := randomXDB(rng, rng.Intn(4)+2)
		uaRel := FromXDB(x)
		uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
		uaDB.Put(uaRel)
		bgwDB := kdb.NewDatabase[int64](semiring.Nat)
		bgwDB.Put(models.BestGuessXDB(x))

		q := randomQuery(rng, rng.Intn(3)+1)
		uaRes, err := Eval(q, uaDB)
		if err != nil {
			t.Fatal(err)
		}
		bgwRes, err := kdb.Eval(q, bgwDB)
		if err != nil {
			t.Fatal(err)
		}
		if !DetPart[int64](semiring.Nat, uaRes).Equal(bgwRes) {
			t.Fatalf("h_det does not commute with query %s", q)
		}
	}
}

// TestCertComponentIsLabelQuery verifies h_cert(Q(D_UA)) = Q(h_cert(D_UA)):
// the under-approximation component evolves exactly like a query over the
// labeling.
func TestCertComponentIsLabelQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	for trial := 0; trial < 50; trial++ {
		x := randomXDB(rng, rng.Intn(4)+2)
		uaRel := FromXDB(x)
		uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
		uaDB.Put(uaRel)
		labelDB := kdb.NewDatabase[int64](semiring.Nat)
		labelDB.Put(CertPart[int64](semiring.Nat, uaRel))

		q := randomQuery(rng, rng.Intn(3)+1)
		uaRes, err := Eval(q, uaDB)
		if err != nil {
			t.Fatal(err)
		}
		labelRes, err := kdb.Eval(q, labelDB)
		if err != nil {
			t.Fatal(err)
		}
		if !CertPart[int64](semiring.Nat, uaRes).Equal(labelRes) {
			t.Fatalf("h_cert does not commute with query %s", q)
		}
	}
}

func TestCheckBounds(t *testing.T) {
	x := models.NewXRelation(types.NewSchema("R", "a", "b"))
	x.AddCertain(it(1, 10))
	x.AddChoice(it(2, 20), it(2, 21))
	worlds, err := models.WorldsXDB(x)
	if err != nil {
		t.Fatal(err)
	}
	ua := FromXDB(x)
	if err := CheckBounds[int64](semiring.Nat, ua, worlds, "R", 0); err != nil {
		t.Errorf("CheckBounds on valid UA-DB: %v", err)
	}
	// Corrupt the labeling: claim (2,20) certain.
	bad := ua.Clone()
	bad.Set(it(2, 20), semiring.Pair[int64]{Cert: 1, Det: 1})
	if err := CheckBounds[int64](semiring.Nat, bad, worlds, "R", 0); err == nil {
		t.Error("CheckBounds should reject over-claimed certainty")
	}
}

// --- Enc/Dec (Definition 8) ---

func TestEncDec(t *testing.T) {
	k := semiring.Nat
	schema := types.NewSchema("R", "a")
	label := kdb.New[int64](k, schema)
	label.Add(it(1), 2)
	world := kdb.New[int64](k, schema)
	world.Add(it(1), 5)
	world.Add(it(2), 1)
	ua := New[int64](k, label, world)

	enc := Enc(ua)
	if enc.Schema().Attrs[1] != UAttr {
		t.Error("encoding must append the certainty attribute")
	}
	// (1): c=2, d=5 -> (1,1)×2, (1,0)×3.
	if enc.Get(types.Tuple{types.NewInt(1), types.NewInt(1)}) != 2 {
		t.Error("certain copies")
	}
	if enc.Get(types.Tuple{types.NewInt(1), types.NewInt(0)}) != 3 {
		t.Error("uncertain copies")
	}
	if enc.Get(types.Tuple{types.NewInt(2), types.NewInt(0)}) != 1 {
		t.Error("fully uncertain tuple")
	}

	back, err := Dec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(ua) {
		t.Errorf("Enc/Dec round trip failed:\n%s\nvs\n%s", back, ua)
	}
}

func TestEncDecRandomRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 50; trial++ {
		x := randomXDB(rng, rng.Intn(5)+1)
		ua := FromXDB(x)
		back, err := Dec(Enc(ua))
		if err != nil {
			t.Fatal(err)
		}
		if !back.Equal(ua) {
			t.Fatalf("round trip failed")
		}
	}
}

func TestDecErrors(t *testing.T) {
	bad := kdb.New[int64](semiring.Nat, types.NewSchema("R", "a", UAttr))
	bad.Add(types.Tuple{types.NewInt(1), types.NewInt(7)}, 1) // marker must be 0/1
	if _, err := Dec(bad); err == nil {
		t.Error("expected bad-marker error")
	}
	empty := kdb.New[int64](semiring.Nat, types.Schema{Name: "R"})
	if _, err := Dec(empty); err == nil {
		t.Error("expected arity error")
	}
}

func TestStatsN(t *testing.T) {
	k := semiring.Nat
	schema := types.NewSchema("R", "a")
	label := kdb.New[int64](k, schema)
	label.Add(it(1), 1)
	world := kdb.New[int64](k, schema)
	world.Add(it(1), 1)
	world.Add(it(2), 2)
	ua := New[int64](k, label, world)
	s := StatsN(ua)
	if s.Tuples != 2 || s.CertainRows != 1 || s.TotalRows != 3 || s.FullyCertain != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestFromModels(t *testing.T) {
	ti := models.NewTIRelation(types.NewSchema("R", "a"))
	ti.AddCertain(it(1))
	ti.AddOptional(it(2), 0.9)
	uaTI := FromTIDB(ti)
	if p := uaTI.Get(it(1)); p.Cert != 1 || p.Det != 1 {
		t.Error("FromTIDB certain row")
	}
	if p := uaTI.Get(it(2)); p.Cert != 0 || p.Det != 1 {
		t.Error("FromTIDB optional row in BGW")
	}

	ct := models.NewCTable(types.NewSchema("R", "a"))
	ct.AddGround(it(7))
	uaCT := FromCTable(ct)
	if p := uaCT.Get(it(7)); p.Cert != 1 || p.Det != 1 {
		t.Error("FromCTable")
	}
}

func TestNewDatabaseMissingLabel(t *testing.T) {
	k := semiring.Nat
	worlds := kdb.NewDatabase[int64](k)
	w := kdb.New[int64](k, types.NewSchema("R", "a"))
	w.Add(it(1), 1)
	worlds.Put(w)
	labels := kdb.NewDatabase[int64](k) // no labeling for R
	ua := NewDatabase[int64](k, labels, worlds)
	p := ua.Get("R").Get(it(1))
	if p.Cert != 0 || p.Det != 1 {
		t.Error("missing labeling should degrade to all-uncertain (BGQP)")
	}
}
