// Package uadb implements the paper's primary contribution: Uncertainty
// Annotated Databases. A UA-relation annotates each tuple of a designated
// best-guess world with a pair [c, d] from the UA-semiring K² (Definition 3)
// where d is the tuple's annotation in the best-guess world and c is a
// c-sound under-approximation of its certain annotation. RA⁺ queries
// evaluated with ordinary K-relation semantics over the pairs preserve both
// bounds (Theorems 4 and 5), so a UA-DB is closed under queries — unlike
// certain answers themselves.
//
// The package also implements the relational encoding of bag UA-DBs used by
// the query-rewriting frontend (Definition 8): an N^UA-relation becomes an
// ordinary bag relation with an extra attribute U ∈ {0, 1}, where each tuple
// t appears as c copies of (t, 1) and d − c copies of (t, 0).
package uadb

import (
	"fmt"

	"repro/internal/incomplete"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/semiring"
	"repro/internal/types"
)

// Relation is a UA-relation: a K²-annotated relation.
type Relation[T any] = kdb.Relation[semiring.Pair[T]]

// Database is a UA-database.
type Database[T any] = kdb.Database[semiring.Pair[T]]

// New constructs a UA-relation from an uncertainty labeling and a designated
// best-guess world (Section 5.2): D_UA(t) = [L(t), D(t)]. The labeling must
// be c-sound for the incomplete database the world was drawn from; New
// additionally clamps c to d with the GLB so the stored pair always
// satisfies c ⪯ d even if the caller passes an inconsistent labeling.
func New[T any](k semiring.Lattice[T], label, world *kdb.Relation[T]) *Relation[T] {
	ua := semiring.UA(k)
	out := kdb.New[semiring.Pair[T]](ua, world.Schema())
	world.ForEach(func(t types.Tuple, d T) {
		c := k.Glb(label.Get(t), d)
		out.Set(t, semiring.Pair[T]{Cert: c, Det: d})
	})
	return out
}

// NewDatabase assembles a UA-database from per-relation labelings and
// best-guess worlds.
func NewDatabase[T any](k semiring.Lattice[T], labels, worlds *kdb.Database[T]) *Database[T] {
	ua := semiring.UA(k)
	out := kdb.NewDatabase[semiring.Pair[T]](ua)
	for name, w := range worlds.Relations {
		l := labels.Get(name)
		if l == nil {
			l = kdb.New(k, w.Schema()) // no certainty information: all uncertain
		}
		out.Put(New(k, l, w))
	}
	return out
}

// CertPart extracts the labeling component via the homomorphism h_cert.
func CertPart[T any](k semiring.Lattice[T], r *Relation[T]) *kdb.Relation[T] {
	return kdb.MapAnnotations(r, semiring.Semiring[T](k), semiring.CertHom[T])
}

// DetPart extracts the best-guess world component via h_det.
func DetPart[T any](k semiring.Lattice[T], r *Relation[T]) *kdb.Relation[T] {
	return kdb.MapAnnotations(r, semiring.Semiring[T](k), semiring.DetHom[T])
}

// Eval evaluates an RA⁺ query over a UA-database. Because h_cert and h_det
// are homomorphisms, this is equivalent to evaluating the query separately
// over the labeling and the best-guess world.
func Eval[T any](q kdb.Query, db *Database[T]) (*Relation[T], error) {
	return kdb.Eval(q, db)
}

// CheckBounds verifies the UA-DB sandwich property against ground truth: for
// every tuple, c ⪯ certK(D, t) ⪯ d where d is the tuple's annotation in
// world bgw of the incomplete database and certK is computed by enumerating
// worlds of relation name. It returns a descriptive error on the first
// violated bound; tests use it as the oracle for Theorems 4/5.
func CheckBounds[T any](k semiring.Lattice[T], ua *Relation[T], d *incomplete.DB[T], name string, bgw int) error {
	certRel := incomplete.CertainRelation(d, name)
	world := d.Worlds[bgw].Get(name)
	if world == nil {
		return fmt.Errorf("uadb: world %d misses relation %q", bgw, name)
	}
	// Every tuple of the UA-DB must satisfy c ⪯ cert(t) ⪯ d = world(t).
	var err error
	ua.ForEach(func(t types.Tuple, p semiring.Pair[T]) {
		if err != nil {
			return
		}
		cert := certRel.Get(t)
		if !k.Leq(p.Cert, cert) {
			err = fmt.Errorf("uadb: tuple %s: label %s exceeds certain annotation %s",
				t, k.Format(p.Cert), k.Format(cert))
			return
		}
		if !k.Eq(p.Det, world.Get(t)) {
			err = fmt.Errorf("uadb: tuple %s: det %s differs from world annotation %s",
				t, k.Format(p.Det), k.Format(world.Get(t)))
			return
		}
		if !k.Leq(cert, p.Det) {
			err = fmt.Errorf("uadb: tuple %s: certain annotation %s exceeds world annotation %s",
				t, k.Format(cert), k.Format(p.Det))
		}
	})
	if err != nil {
		return err
	}
	// Conversely, every certain tuple must appear in the UA-DB (the BGW
	// over-approximates the certain answers).
	certRel.ForEach(func(t types.Tuple, c T) {
		if err != nil {
			return
		}
		if k.IsZero(c) {
			return
		}
		p := ua.Get(t)
		if k.IsZero(p.Det) {
			err = fmt.Errorf("uadb: certain tuple %s missing from UA-DB", t)
		}
	})
	return err
}

// FromTIDB builds a bag UA-relation from a TI-relation using the paper's
// labeling scheme and best-guess world.
func FromTIDB(r *models.TIRelation) *Relation[int64] {
	return New[int64](semiring.Nat, models.LabelTIDB(r), models.BestGuessTIDB(r))
}

// FromXDB builds a bag UA-relation from an x-relation.
func FromXDB(r *models.XRelation) *Relation[int64] {
	return New[int64](semiring.Nat, models.LabelXDB(r), models.BestGuessXDB(r))
}

// FromCTable builds a bag UA-relation from a C-table.
func FromCTable(c *models.CTable) *Relation[int64] {
	return New[int64](semiring.Nat, models.LabelCTable(c), models.BestGuessCTable(c))
}

// Stats summarizes a UA-relation for reporting: total distinct tuples, how
// many are fully certain (c = d), and bag cardinalities.
type Stats struct {
	Tuples       int   // distinct tuples present in the BGW
	CertainRows  int64 // Σ c
	TotalRows    int64 // Σ d
	FullyCertain int   // tuples with c = d
}

// StatsN computes Stats for a bag UA-relation.
func StatsN(r *Relation[int64]) Stats {
	var s Stats
	r.ForEach(func(t types.Tuple, p semiring.Pair[int64]) {
		s.Tuples++
		s.CertainRows += p.Cert
		s.TotalRows += p.Det
		if p.Cert == p.Det {
			s.FullyCertain++
		}
	})
	return s
}
