package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/models"
	"repro/internal/types"
)

// This file generates the domain-specific tables behind the paper's five
// "real queries" (Section 11.4): Chicago crime, graffiti-removal requests,
// and food inspections, with the columns those queries touch and value
// distributions that give them non-trivial selectivities. Uncertainty is
// injected with the same imputation model as the Figure 16 datasets.

func sval(s string) types.Value  { return types.NewString(s) }
func ival(v int64) types.Value   { return types.NewInt(v) }
func fval(v float64) types.Value { return types.NewFloat(v) }

// RealTables bundles the three tables used by the real queries.
type RealTables struct {
	Crime    *models.XRelation // id, case_number, iucr, district, longitude, latitude, x_coordinate, y_coordinate
	Graffiti *models.XRelation // street_address, zip_code, status, police_district, x_coordinate, y_coordinate, service_request_number, community_area
	FoodInsp *models.XRelation // inspection_date, address, zip, results, risk
}

// GenerateRealTables builds the three tables with nRows rows each and the
// given row-level uncertainty rate.
func GenerateRealTables(nRows int, uRow float64, seed int64) *RealTables {
	rng := rand.New(rand.NewSource(seed))
	rt := &RealTables{}

	iucrs := []int64{820, 486, 1320, 560, 610, 710}
	crimeSchema := types.NewSchema("crime",
		"id", "case_number", "iucr", "district", "longitude", "latitude", "x_coordinate", "y_coordinate")
	rt.Crime = models.NewXRelation(crimeSchema)
	for i := 0; i < nRows; i++ {
		row := types.Tuple{
			ival(int64(i + 1)),
			sval(fmt.Sprintf("HZ%06d", i)),
			ival(iucrs[rng.Intn(len(iucrs))]),
			sval(fmt.Sprintf("%03d", rng.Intn(12)+1)),
			fval(-87.60 - rng.Float64()*0.15),
			fval(41.85 + rng.Float64()*0.10),
			fval(float64(rng.Intn(10000)) + 1140000),
			fval(float64(rng.Intn(10000)) + 1890000),
		}
		// Uncertain cells: geocoding ambiguity on coordinates, IUCR typos.
		addUncertain(rt.Crime, row, map[int]func() types.Value{
			2: func() types.Value { return ival(iucrs[rng.Intn(len(iucrs))]) },
			4: func() types.Value { return fval(-87.60 - rng.Float64()*0.15) },
			5: func() types.Value { return fval(41.85 + rng.Float64()*0.10) },
			6: func() types.Value { return fval(float64(rng.Intn(10000)) + 1140000) },
			7: func() types.Value { return fval(float64(rng.Intn(10000)) + 1890000) },
		}, uRow, rng)
	}

	statuses := []string{"Open", "Completed", "Cancelled"}
	graffitiSchema := types.NewSchema("graffiti",
		"street_address", "zip_code", "status", "police_district",
		"x_coordinate", "y_coordinate", "service_request_number", "community_area")
	rt.Graffiti = models.NewXRelation(graffitiSchema)
	for i := 0; i < nRows; i++ {
		row := types.Tuple{
			sval(fmt.Sprintf("%d W Street", 100+i)),
			ival(int64(60601 + rng.Intn(60))),
			sval(statuses[rng.Intn(len(statuses))]),
			ival(int64(rng.Intn(12) + 1)),
			fval(float64(rng.Intn(10000)) + 1140000),
			fval(float64(rng.Intn(10000)) + 1890000),
			sval(fmt.Sprintf("SR%07d", i)),
			ival(int64(rng.Intn(77) + 1)),
		}
		addUncertain(rt.Graffiti, row, map[int]func() types.Value{
			1: func() types.Value { return ival(int64(60601 + rng.Intn(60))) },
			2: func() types.Value { return sval(statuses[rng.Intn(len(statuses))]) },
			4: func() types.Value { return fval(float64(rng.Intn(10000)) + 1140000) },
			5: func() types.Value { return fval(float64(rng.Intn(10000)) + 1890000) },
		}, uRow, rng)
	}

	results := []string{"Pass", "Pass w/ Conditions", "Fail"}
	risks := []string{"Risk 1 (High)", "Risk 2 (Medium)", "Risk 3 (Low)"}
	foodSchema := types.NewSchema("foodinspections",
		"inspection_date", "address", "zip", "results", "risk")
	rt.FoodInsp = models.NewXRelation(foodSchema)
	for i := 0; i < nRows; i++ {
		row := types.Tuple{
			ival(int64(rng.Intn(3650))),
			sval(fmt.Sprintf("%d N Ave", 10+i)),
			ival(int64(60601 + rng.Intn(60))),
			sval(results[rng.Intn(len(results))]),
			sval(risks[rng.Intn(len(risks))]),
		}
		addUncertain(rt.FoodInsp, row, map[int]func() types.Value{
			2: func() types.Value { return ival(int64(60601 + rng.Intn(60))) },
			3: func() types.Value { return sval(results[rng.Intn(len(results))]) },
			4: func() types.Value { return sval(risks[rng.Intn(len(risks))]) },
		}, uRow, rng)
	}
	return rt
}

// addUncertain turns the row into an x-tuple with imputation alternatives
// with probability uRow, redrawing a random subset of the mutable cells.
func addUncertain(rel *models.XRelation, row types.Tuple, gens map[int]func() types.Value, uRow float64, rng *rand.Rand) {
	if rng.Float64() >= uRow {
		rel.AddCertain(row)
		return
	}
	cols := make([]int, 0, len(gens))
	for c := range gens {
		cols = append(cols, c)
	}
	// Choose 1-2 dirty cells deterministically from the rng.
	nDirty := rng.Intn(2) + 1
	dirty := map[int]bool{}
	for len(dirty) < nDirty {
		dirty[cols[rng.Intn(len(cols))]] = true
	}
	nAlts := rng.Intn(2) + 2
	alts := make([]models.Alternative, 0, nAlts)
	alts = append(alts, models.Alternative{Data: row, Prob: 1 / float64(nAlts)})
	for a := 1; a < nAlts; a++ {
		alt := row.Clone()
		for c := range dirty {
			alt[c] = gens[c]()
		}
		alts = append(alts, models.Alternative{Data: alt, Prob: 1 / float64(nAlts)})
	}
	rel.Add(models.XTuple{Alts: alts})
}

// RealQuery couples the paper's Section 11.4 queries with the metadata the
// experiments need to compute exact certain answers.
type RealQuery struct {
	Name string
	SQL  string
}

// RealQueries returns the five queries of Section 11.4 adapted to the
// generated schemas (IUCR codes numeric; CASE translation of Q1 kept).
func RealQueries() []RealQuery {
	return []RealQuery{
		{Name: "Q1", SQL: `SELECT id, case_number,
			CASE iucr WHEN 820 THEN 'Theft' WHEN 486 THEN 'Domestic Battery' WHEN 1320 THEN 'Criminal Damage' END AS crime_type
			FROM crime WHERE iucr = 820 OR iucr = 486 OR iucr = 1320`},
		{Name: "Q2", SQL: `SELECT id, case_number, longitude, latitude FROM crime
			WHERE longitude BETWEEN -87.674 AND -87.619 AND latitude BETWEEN 41.892 AND 41.903`},
		{Name: "Q3", SQL: `SELECT street_address, zip_code, status FROM graffiti WHERE status = 'Open'`},
		{Name: "Q4", SQL: `SELECT inspection_date, address, zip FROM foodinspections
			WHERE results = 'Pass w/ Conditions' AND risk = 'Risk 1 (High)'`},
		{Name: "Q5", SQL: `SELECT c.id, c.case_number, c.iucr, g.status, g.service_request_number, g.community_area
			FROM (SELECT * FROM graffiti WHERE police_district = 8) g,
			     (SELECT * FROM crime WHERE district = '008') c
			WHERE c.x_coordinate < g.x_coordinate + 100
			  AND c.x_coordinate > g.x_coordinate - 100
			  AND c.y_coordinate < g.y_coordinate + 100
			  AND c.y_coordinate > g.y_coordinate - 100`},
	}
}

// Tables returns the named x-relations for catalog building.
func (rt *RealTables) Tables() map[string]*models.XRelation {
	return map[string]*models.XRelation{
		"crime":           rt.Crime,
		"graffiti":        rt.Graffiti,
		"foodinspections": rt.FoodInsp,
	}
}
