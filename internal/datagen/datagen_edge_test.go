package datagen

import "testing"

// Edge-of-domain specs: the generator must behave at zero rows, zero
// uncertainty, and a cell rate that the UAttr/URow ratio would push past 1
// (the clamp), and the realized-fraction reporters must not divide by zero.

func TestGenerateZeroRows(t *testing.T) {
	d := Generate(Spec{Name: "empty", Rows: 0, Cols: 5, UAttr: 0.1, URow: 0.5, Seed: 1})
	if d.Ground.NumRows() != 0 || len(d.X.XTuples) != 0 {
		t.Fatalf("zero-row dataset has rows: ground %d, x %d",
			d.Ground.NumRows(), len(d.X.XTuples))
	}
	_ = d.UncertainRowFraction() // NaN (0/0) is acceptable here; a panic is not
	if f := d.UncertainCellFraction(); f != 0 {
		t.Errorf("empty dataset cell fraction = %v, want 0", f)
	}
}

func TestGenerateFullyCertain(t *testing.T) {
	d := Generate(Spec{Name: "certain", Rows: 50, Cols: 4, UAttr: 0, URow: 0, Seed: 2})
	if f := d.UncertainRowFraction(); f != 0 {
		t.Errorf("URow 0 produced uncertain rows: %v", f)
	}
	if f := d.UncertainCellFraction(); f != 0 {
		t.Errorf("URow 0 produced uncertain cells: %v", f)
	}
	for i, xt := range d.X.XTuples {
		if len(xt.Alts) != 1 {
			t.Fatalf("x-tuple %d has %d alternatives, want 1", i, len(xt.Alts))
		}
	}
}

func TestGenerateCellRateClamped(t *testing.T) {
	// UAttr > URow forces cellRate = UAttr/URow > 1, which must clamp to 1:
	// every non-id cell of an uncertain row is dirty, and generation
	// terminates normally.
	d := Generate(Spec{Name: "clamped", Rows: 80, Cols: 3, UAttr: 0.9, URow: 0.3, Seed: 3})
	if d.Ground.NumRows() != 80 {
		t.Fatalf("rows = %d", d.Ground.NumRows())
	}
	if f := d.UncertainRowFraction(); f <= 0 {
		t.Errorf("clamped spec produced no uncertain rows: %v", f)
	}
}

func TestGenerateMinimalWidth(t *testing.T) {
	// Cols = 2 is the smallest meaningful width (id + one payload column);
	// the dirty-cell fallback (`1 + rng.Intn(Cols-1)`) must stay in range.
	d := Generate(Spec{Name: "narrow", Rows: 200, Cols: 2, UAttr: 0.05, URow: 0.5, Seed: 4})
	if d.Schema.Arity() != 2 {
		t.Fatalf("arity = %d", d.Schema.Arity())
	}
	for _, xt := range d.X.XTuples {
		for _, alt := range xt.Alts {
			if len(alt.Data) != 2 {
				t.Fatalf("alternative arity %d", len(alt.Data))
			}
		}
	}
}

func TestColNameStable(t *testing.T) {
	s := Spec{Cols: 3}
	if s.ColName(0) != "a0" || s.ColName(2) != "a2" {
		t.Errorf("column naming changed: %q %q", s.ColName(0), s.ColName(2))
	}
}
