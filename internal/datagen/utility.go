package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/types"
)

// This file generates the utility experiment's inputs (Figure 18): a ground
// truth world, a version with randomly injected nulls, and best-guess /
// random-guess imputations of those nulls — reproducing the paper's
// income-survey / Buffalo-news / business-license setups.

// ImputationMethod selects how the best-guess world fills missing values.
type ImputationMethod uint8

// The imputation methods of Figure 18.
const (
	// BGQP imputes each null with the column's most frequent value — the
	// "standard missing value imputation algorithm" of the paper.
	BGQP ImputationMethod = iota
	// RGQP picks a random value from the column's domain.
	RGQP
)

// UtilityData holds the three coupled representations of one noisy dataset.
type UtilityData struct {
	Schema types.Schema
	Ground *engine.Table     // D_ground: the truth
	Nulled *engine.Table     // D: values replaced by NULL (Libkin's input)
	X      *models.XRelation // imputed x-DB; alternative 0 = the imputation
}

// GenerateUtility builds a dataset with nRows rows and nCols categorical
// columns, replacing uncertainty fraction of the attribute values with
// nulls, then imputing per method. Alternatives of each nulled cell are the
// imputed value plus other domain candidates.
func GenerateUtility(nRows, nCols int, uncertainty float64, method ImputationMethod, seed int64) *UtilityData {
	rng := rand.New(rand.NewSource(seed))
	// Imputation draws come from a separate stream so Ground and Nulled are
	// bit-identical across methods and the Figure 18 comparison isolates
	// the imputation policy.
	impRng := rand.New(rand.NewSource(seed + 1))
	attrs := make([]string, nCols)
	for j := range attrs {
		attrs[j] = fmt.Sprintf("a%d", j)
	}
	schema := types.Schema{Name: "t", Attrs: attrs}
	ud := &UtilityData{
		Schema: schema,
		Ground: engine.NewTable(schema),
		Nulled: engine.NewTable(schema),
		X:      models.NewXRelation(schema),
	}

	// Skewed categorical columns so the mode is a meaningful best guess.
	const vocab = 8
	draw := func() int { return int(float64(vocab) * rng.Float64() * rng.Float64()) }
	val := func(j, v int) types.Value { return types.NewString(fmt.Sprintf("c%d_v%d", j, v)) }

	// Generate ground truth and track column frequencies.
	truth := make([][]int, nRows)
	freq := make([][]int, nCols)
	for j := range freq {
		freq[j] = make([]int, vocab)
	}
	for i := 0; i < nRows; i++ {
		truth[i] = make([]int, nCols)
		for j := 0; j < nCols; j++ {
			v := draw()
			truth[i][j] = v
			freq[j][v]++
		}
	}
	mode := make([]int, nCols)
	for j := range mode {
		best := 0
		for v := 1; v < vocab; v++ {
			if freq[j][v] > freq[j][best] {
				best = v
			}
		}
		mode[j] = best
	}

	for i := 0; i < nRows; i++ {
		groundRow := make([]types.Value, nCols)
		nulledRow := make([]types.Value, nCols)
		var dirty []int
		for j := 0; j < nCols; j++ {
			groundRow[j] = val(j, truth[i][j])
			if rng.Float64() < uncertainty {
				nulledRow[j] = types.Null()
				dirty = append(dirty, j)
			} else {
				nulledRow[j] = groundRow[j]
			}
		}
		ud.Ground.Append(groundRow)
		ud.Nulled.Append(nulledRow)

		if len(dirty) == 0 {
			ud.X.AddCertain(types.Tuple(groundRow))
			continue
		}
		// Imputed best guess.
		imputed := make(types.Tuple, nCols)
		copy(imputed, nulledRow)
		for _, j := range dirty {
			switch method {
			case BGQP:
				imputed[j] = val(j, mode[j])
			case RGQP:
				imputed[j] = val(j, impRng.Intn(vocab))
			}
		}
		// Alternatives: the imputation plus two other candidates per row.
		alts := []models.Alternative{{Data: imputed, Prob: 0.5}}
		for a := 0; a < 2; a++ {
			alt := imputed.Clone()
			for _, j := range dirty {
				alt[j] = val(j, impRng.Intn(vocab))
			}
			alts = append(alts, models.Alternative{Data: alt, Prob: 0.25})
		}
		ud.X.Add(models.XTuple{Alts: alts})
	}
	return ud
}

// PrecisionRecall compares a result against the ground-truth result at the
// distinct-tuple level (the utility metric of Figure 18).
func PrecisionRecall(result, groundTruth *engine.Table) (precision, recall float64) {
	got := make(map[string]bool)
	for _, row := range result.Rows {
		got[types.Tuple(row).Key()] = true
	}
	want := make(map[string]bool)
	for _, row := range groundTruth.Rows {
		want[types.Tuple(row).Key()] = true
	}
	if len(got) == 0 {
		if len(want) == 0 {
			return 1, 1
		}
		return 1, 0
	}
	hit := 0
	for k := range got {
		if want[k] {
			hit++
		}
	}
	precision = float64(hit) / float64(len(got))
	covered := 0
	for k := range want {
		if got[k] {
			covered++
		}
	}
	if len(want) == 0 {
		recall = 1
	} else {
		recall = float64(covered) / float64(len(want))
	}
	return precision, recall
}
