// Package datagen simulates the paper's nine real-world evaluation datasets
// (Figure 16): statistically matched synthetic tables with the same column
// counts and uncertainty rates (scaled row counts), missing-value injection,
// and imputation producing x-DBs with a designated best-guess alternative —
// the role SparkML imputation plays in the paper's pipeline (see DESIGN.md
// for the substitution argument). Errors are clustered per row, reproducing
// the correlated-error structure the FNR experiments depend on.
package datagen

import (
	"fmt"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/types"
)

// Spec describes one dataset: dimensions and uncertainty rates mirroring
// Figure 16 (rows scaled down ~100× to keep experiments laptop-fast).
type Spec struct {
	Name  string
	Rows  int
	Cols  int
	UAttr float64 // fraction of attribute values uncertain
	URow  float64 // fraction of rows with ≥1 uncertain attribute
	Seed  int64
}

// Specs returns the nine datasets of Figure 16 with the paper's U_attr and
// U_row percentages.
func Specs() []Spec {
	return []Spec{
		{Name: "Building Violations", Rows: 3000, Cols: 35, UAttr: 0.0082, URow: 0.128, Seed: 101},
		{Name: "Shootings in Buffalo", Rows: 2900, Cols: 21, UAttr: 0.0024, URow: 0.021, Seed: 102},
		{Name: "Business Licenses", Rows: 3000, Cols: 25, UAttr: 0.0139, URow: 0.140, Seed: 103},
		{Name: "Chicago Crime", Rows: 5000, Cols: 17, UAttr: 0.0021, URow: 0.009, Seed: 104},
		{Name: "Contracts", Rows: 3000, Cols: 13, UAttr: 0.0150, URow: 0.192, Seed: 105},
		{Name: "Food Inspections", Rows: 3000, Cols: 16, UAttr: 0.0034, URow: 0.046, Seed: 106},
		{Name: "Graffiti Removal", Rows: 3000, Cols: 15, UAttr: 0.0009, URow: 0.008, Seed: 107},
		{Name: "Building Permits", Rows: 3000, Cols: 19, UAttr: 0.0042, URow: 0.053, Seed: 108},
		{Name: "Public Library Survey", Rows: 1000, Cols: 99, UAttr: 0.0119, URow: 0.142, Seed: 109},
	}
}

// Dataset is a generated dataset: the ground-truth world, the x-DB produced
// by imputation, and bookkeeping for ground-truth certain answers.
type Dataset struct {
	Spec   Spec
	Schema types.Schema
	Ground *engine.Table     // the true world (unknown to the system)
	X      *models.XRelation // imputed x-DB: first alternative = best guess
}

// vocabSize is the per-column categorical vocabulary.
const vocabSize = 20

func colName(j int) string { return fmt.Sprintf("a%d", j) }

// ColName returns the j-th generated attribute name.
func (s Spec) ColName(j int) string { return colName(j) }

// Generate builds a dataset deterministically from its spec.
func Generate(spec Spec) *Dataset {
	rng := rand.New(rand.NewSource(spec.Seed))
	attrs := make([]string, spec.Cols)
	for j := range attrs {
		attrs[j] = colName(j)
	}
	schema := types.Schema{Name: "t", Attrs: attrs}
	ground := engine.NewTable(schema)
	x := models.NewXRelation(schema)

	// Per-column skewed vocabularies (zipf-ish via squared uniform).
	drawVal := func(j int) types.Value {
		v := int(float64(vocabSize) * rng.Float64() * rng.Float64())
		return types.NewString(fmt.Sprintf("c%d_v%d", j, v))
	}

	// Cell error rate within an uncertain row, calibrated so the overall
	// attribute rate matches UAttr: UAttr = URow * cellRate.
	cellRate := 0.0
	if spec.URow > 0 {
		cellRate = spec.UAttr / spec.URow
	}
	if cellRate > 1 {
		cellRate = 1
	}

	for i := 0; i < spec.Rows; i++ {
		row := make(types.Tuple, spec.Cols)
		// First column is a row id to keep ground truth identifiable.
		row[0] = types.NewInt(int64(i))
		for j := 1; j < spec.Cols; j++ {
			row[j] = drawVal(j)
		}
		groundRow := make([]types.Value, len(row))
		copy(groundRow, row)
		ground.Append(groundRow)

		if rng.Float64() >= spec.URow {
			x.AddCertain(row)
			continue
		}
		// Uncertain row: corrupt a cluster of cells.
		var dirty []int
		for j := 1; j < spec.Cols; j++ {
			if rng.Float64() < cellRate {
				dirty = append(dirty, j)
			}
		}
		if len(dirty) == 0 {
			dirty = []int{1 + rng.Intn(spec.Cols-1)}
		}
		nAlts := rng.Intn(3) + 2 // 2..4 imputations
		alts := make([]models.Alternative, 0, nAlts)
		for a := 0; a < nAlts; a++ {
			alt := row.Clone()
			for _, j := range dirty {
				// The best guess (alternative 0) hits the truth ~60% of the
				// time, simulating a decent imputation model.
				if a == 0 && rng.Float64() < 0.6 {
					continue
				}
				alt[j] = drawVal(j)
			}
			alts = append(alts, models.Alternative{Data: alt, Prob: 1 / float64(nAlts)})
		}
		x.Add(models.XTuple{Alts: alts})
	}
	return &Dataset{Spec: spec, Schema: schema, Ground: ground, X: x}
}

// UncertainRowFraction reports the realized U_row of the x-DB.
func (d *Dataset) UncertainRowFraction() float64 {
	n := 0
	for _, xt := range d.X.XTuples {
		if len(xt.Alts) > 1 || xt.Optional {
			n++
		}
	}
	return float64(n) / float64(len(d.X.XTuples))
}

// UncertainCellFraction reports the realized U_attr: the fraction of cells
// on which some pair of alternatives disagrees.
func (d *Dataset) UncertainCellFraction() float64 {
	total, dirty := 0, 0
	for _, xt := range d.X.XTuples {
		total += d.Schema.Arity()
		if len(xt.Alts) <= 1 {
			continue
		}
		for j := 0; j < d.Schema.Arity(); j++ {
			base := xt.Alts[0].Data[j]
			for _, alt := range xt.Alts[1:] {
				if !alt.Data[j].Equal(base) {
					dirty++
					break
				}
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(dirty) / float64(total)
}
