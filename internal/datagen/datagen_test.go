package datagen

import (
	"testing"

	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/types"
)

func TestSpecsCount(t *testing.T) {
	if len(Specs()) != 9 {
		t.Fatalf("specs = %d, want 9 (Figure 16)", len(Specs()))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Specs()[1]
	a, b := Generate(spec), Generate(spec)
	if a.UncertainRowFraction() != b.UncertainRowFraction() {
		t.Error("generation not deterministic")
	}
	if len(a.X.XTuples) != len(b.X.XTuples) {
		t.Error("row counts differ")
	}
}

func TestGenerateShape(t *testing.T) {
	spec := Specs()[4] // Contracts: 13 cols, high uncertainty
	d := Generate(spec)
	if d.Ground.NumRows() != spec.Rows {
		t.Errorf("ground rows = %d", d.Ground.NumRows())
	}
	if d.Schema.Arity() != spec.Cols {
		t.Errorf("cols = %d", d.Schema.Arity())
	}
	if len(d.X.XTuples) != spec.Rows {
		t.Errorf("x-tuples = %d", len(d.X.XTuples))
	}
	// Realized uncertainty within a factor of two of the target.
	ur := d.UncertainRowFraction()
	if ur < spec.URow/2 || ur > spec.URow*2 {
		t.Errorf("realized U_row %.3f vs target %.3f", ur, spec.URow)
	}
	uc := d.UncertainCellFraction()
	if uc <= 0 || uc > spec.UAttr*4 {
		t.Errorf("realized U_attr %.4f vs target %.4f", uc, spec.UAttr)
	}
}

func TestGenerateBestGuessHitsTruthOften(t *testing.T) {
	spec := Specs()[2]
	d := Generate(spec)
	// The first alternative (best guess) should coincide with ground truth
	// for a solid majority of uncertain rows (the generator aims for ~60%
	// per dirty cell plus clean cells).
	hits, n := 0, 0
	for i, xt := range d.X.XTuples {
		if len(xt.Alts) <= 1 {
			continue
		}
		n++
		if xt.Alts[0].Data.Equal(types.Tuple(d.Ground.Rows[i])) {
			hits++
		}
	}
	if n == 0 {
		t.Fatal("no uncertain rows generated")
	}
	if frac := float64(hits) / float64(n); frac < 0.2 {
		t.Errorf("best guess hits truth only %.2f of the time", frac)
	}
}

func TestRealTables(t *testing.T) {
	rt := GenerateRealTables(300, 0.1, 1)
	tables := rt.Tables()
	if len(tables) != 3 {
		t.Fatal("tables")
	}
	for name, x := range tables {
		if len(x.XTuples) != 300 {
			t.Errorf("%s rows = %d", name, len(x.XTuples))
		}
		uncertain := 0
		for _, xt := range x.XTuples {
			if len(xt.Alts) > 1 {
				uncertain++
			}
		}
		rate := float64(uncertain) / 300
		if rate < 0.03 || rate > 0.2 {
			t.Errorf("%s uncertain rate %.3f", name, rate)
		}
	}
	if len(RealQueries()) != 5 {
		t.Error("five real queries")
	}
}

func TestGenerateUtilityCoherence(t *testing.T) {
	ud := GenerateUtility(200, 6, 0.3, BGQP, 11)
	if ud.Ground.NumRows() != 200 || ud.Nulled.NumRows() != 200 {
		t.Fatal("row counts")
	}
	nulls := 0
	for i, row := range ud.Nulled.Rows {
		for j, v := range row {
			if v.IsNull() {
				nulls++
			} else if !v.Equal(ud.Ground.Rows[i][j]) {
				t.Fatalf("non-null cell differs from ground truth at %d/%d", i, j)
			}
		}
	}
	rate := float64(nulls) / float64(200*6)
	if rate < 0.2 || rate > 0.4 {
		t.Errorf("null rate %.3f, want ≈ 0.3", rate)
	}
	// x-DB has one x-tuple per row; clean rows certain.
	if len(ud.X.XTuples) != 200 {
		t.Error("x rows")
	}
}

func TestGroundNulledIdenticalAcrossMethods(t *testing.T) {
	a := GenerateUtility(100, 5, 0.2, BGQP, 9)
	b := GenerateUtility(100, 5, 0.2, RGQP, 9)
	for i := range a.Ground.Rows {
		if !types.Tuple(a.Ground.Rows[i]).Equal(types.Tuple(b.Ground.Rows[i])) {
			t.Fatal("ground truth differs across imputation methods")
		}
		if !types.Tuple(a.Nulled.Rows[i]).Equal(types.Tuple(b.Nulled.Rows[i])) {
			t.Fatal("nulled table differs across imputation methods")
		}
	}
}

func TestBGQPImputesMode(t *testing.T) {
	ud := GenerateUtility(500, 4, 0.5, BGQP, 13)
	// Column modes: recompute from ground truth.
	counts := map[string]int{}
	for _, row := range ud.Ground.Rows {
		counts[row[1].Str()]++
	}
	mode, best := "", -1
	for v, c := range counts {
		if c > best {
			mode, best = v, c
		}
	}
	// Every imputed a1-cell (null in Nulled) must be the mode.
	for i, row := range ud.Nulled.Rows {
		if row[1].IsNull() {
			imputed := ud.X.XTuples[i].Alts[0].Data[1].Str()
			if imputed != mode {
				t.Fatalf("BGQP imputed %q, mode is %q", imputed, mode)
			}
		}
	}
}

func TestPrecisionRecall(t *testing.T) {
	mk := func(vals ...int64) *engine.Table {
		tb := engine.NewTable(types.NewSchema("t", "a"))
		for _, v := range vals {
			tb.AppendVals(types.NewInt(v))
		}
		return tb
	}
	p, r := PrecisionRecall(mk(1, 2), mk(1, 2, 3))
	if p != 1 || r < 0.66 || r > 0.67 {
		t.Errorf("p=%f r=%f", p, r)
	}
	p, r = PrecisionRecall(mk(1, 9), mk(1, 2))
	if p != 0.5 || r != 0.5 {
		t.Errorf("p=%f r=%f", p, r)
	}
	p, r = PrecisionRecall(mk(), mk())
	if p != 1 || r != 1 {
		t.Error("empty/empty")
	}
	p, r = PrecisionRecall(mk(), mk(1))
	if p != 1 || r != 0 {
		t.Error("empty result")
	}
}

func TestUncertainCellFractionEmpty(t *testing.T) {
	x := models.NewXRelation(types.NewSchema("t", "a"))
	d := &Dataset{Schema: x.Schema, X: x}
	if d.UncertainCellFraction() != 0 {
		t.Error("empty dataset")
	}
}
