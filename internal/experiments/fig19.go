package experiments

import (
	"math/rand"
	"time"

	"repro/internal/algebra"
	"repro/internal/baseline/maybms"
	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// Fig19Config controls the probabilistic-database comparison.
type Fig19Config struct {
	Rows         int
	Alternatives []int
	URow         float64 // fraction of uncertain blocks
	Eps          float64 // MayBMS approximation error bound
	Seed         int64
}

// DefaultFig19 mirrors the paper's 2/5/10/20-alternative sweep. Row count is
// chosen so the MB-20 self-join (the paper's 3.5-minute cell) finishes in
// seconds while still dominating everything else by orders of magnitude.
func DefaultFig19() Fig19Config {
	return Fig19Config{Rows: 1500, Alternatives: []int{2, 5, 10, 20}, URow: 0.3, Eps: 0.3, Seed: 33}
}

// fig19Consts derives the query constants from the workload size (two rows
// share each index, so indexes range over [1, rows/2]). The range and target
// index scale with the data, keeping selectivities constant across sizes.
type fig19Consts struct {
	lo, hi, target int64
}

func constsFor(rows int) fig19Consts {
	maxIdx := int64(rows / 2)
	return fig19Consts{lo: maxIdx / 3, hi: maxIdx, target: maxIdx * 9 / 10}
}

// buffaloBI builds a Buffalo-shootings-like BI-DB: bp(index, district,
// type), where uncertain rows have nAlts equiprobable alternatives varying
// district and type.
func buffaloBI(rows, nAlts int, uRow float64, seed int64) *models.XRelation {
	rng := rand.New(rand.NewSource(seed))
	districts := []string{"BD", "CD", "DD", "ED"}
	shotTypes := []string{"fatal", "nonfatal"}
	x := models.NewXRelation(types.NewSchema("bp", "index", "district", "type"))
	x.Probabilistic = true
	for i := 0; i < rows; i++ {
		// Two incidents share each index value, so result tuples can have
		// multiple independent derivations — probability computation then
		// sums floating point terms, surfacing the rounding
		// misclassifications the paper reports for MayBMS.
		idx := int64(i/2 + 1)
		mk := func() types.Tuple {
			// District draws are skewed toward BD (as in the source data),
			// so some uncertain blocks have every alternative in BD: their
			// true probability is 1, computed as a sum of 1/nAlts floats —
			// the rounding-misclassification source the paper observes.
			d := "BD"
			if rng.Float64() > 0.7 {
				d = districts[1+rng.Intn(len(districts)-1)]
			}
			return types.Tuple{
				types.NewInt(idx),
				types.NewString(d),
				types.NewString(shotTypes[rng.Intn(len(shotTypes))]),
			}
		}
		if rng.Float64() >= uRow {
			x.Add(models.XTuple{Alts: []models.Alternative{{Data: mk(), Prob: 1}}})
			continue
		}
		alts := make([]models.Alternative, nAlts)
		for a := range alts {
			alts[a] = models.Alternative{Data: mk(), Prob: 1 / float64(nAlts)}
		}
		x.Add(models.XTuple{Alts: alts})
	}
	return x
}

// fig19Queries returns QP1–QP3 of Section 11.4 in RA form (the conf()
// computation is the probability pass over the result lineage).
func fig19Queries(c fig19Consts) map[string]kdb.Query {
	return map[string]kdb.Query{
		// QP1: probability of a randomly chosen tuple (index = 1).
		"QP1": kdb.SelectQ{
			Input: kdb.Table{Name: "bp"},
			Pred:  kdb.AttrConst{Attr: "index", Op: kdb.OpEq, Const: types.NewInt(1)},
		},
		// QP2: shootings per district for an index range in district BD.
		"QP2": kdb.ProjectQ{
			Input: kdb.SelectQ{
				Input: kdb.Table{Name: "bp"},
				Pred: kdb.And{
					kdb.AttrConst{Attr: "index", Op: kdb.OpGt, Const: types.NewInt(c.lo)},
					kdb.AttrConst{Attr: "index", Op: kdb.OpLt, Const: types.NewInt(c.hi)},
					kdb.AttrConst{Attr: "district", Op: kdb.OpEq, Const: types.NewString("BD")},
				},
			},
			Attrs: []string{"district", "index"},
		},
		// QP3: self-join pairing one incident with same-district same-type
		// incidents.
		"QP3": kdb.ProjectQ{
			Input: kdb.JoinQ{
				Left: kdb.SelectQ{
					Input: kdb.Table{Name: "bp"},
					Pred:  kdb.AttrConst{Attr: "index", Op: kdb.OpEq, Const: types.NewInt(c.target)},
				},
				Right: kdb.RenameQ{Input: kdb.Table{Name: "bp"}, Attrs: []string{"yindex", "ydistrict", "ytype"}},
				Pred: kdb.And{
					kdb.AttrAttr{Left: "district", Right: "ydistrict", PosLeft: -1, PosRight: -1, Op: kdb.OpEq},
					kdb.AttrAttr{Left: "type", Right: "ytype", PosLeft: -1, PosRight: -1, Op: kdb.OpEq},
				},
			},
			Attrs: []string{"index", "yindex"},
		},
	}
}

// Fig19Row is one (query, #alternatives, system) measurement.
type Fig19Row struct {
	Query  string
	Alts   int
	System string // UADB, MB-exact, MB-approx
	Time   time.Duration
	ErrPct float64
}

// Fig19 reproduces the probabilistic-database comparison: UA-DB query time
// and misclassification rate vs MayBMS with exact and approximate (eps)
// confidence computation, for growing numbers of block alternatives. UA-DB
// time is independent of the alternative count (only the designated
// alternative is touched); MayBMS degrades, dramatically so for the
// self-join QP3.
func Fig19(cfg Fig19Config) (*Report, []Fig19Row, error) {
	rep := &Report{ID: "Fig19", Title: "Probabilistic databases: UA-DB vs MayBMS (time / error)"}
	rep.addf("%-5s %-6s %-12s %-14s %-8s", "query", "#alts", "system", "time", "error")
	var out []Fig19Row
	consts := constsFor(cfg.Rows)
	queries := fig19Queries(consts)
	for _, nAlts := range cfg.Alternatives {
		x := buffaloBI(cfg.Rows, nAlts, cfg.URow, cfg.Seed)
		xdbs := map[string]*models.XRelation{"bp": x}

		// UA-DB setup.
		uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
		uaDB.Put(uadb.FromXDB(x))
		encCat := rewrite.EncodeUADatabase(uaDB)
		schemas := map[string]types.Schema{"bp": x.Schema}

		// MayBMS setup.
		linDB, blocks := maybms.BuildDB(xdbs)

		for _, qname := range []string{"QP1", "QP2", "QP3"} {
			q := queries[qname]
			truth := fig19Truth(qname, x, consts)

			// UA-DB: rewritten engine query; the certainty column plays the
			// role of the probability-1 test.
			detPlan, err := rewrite.FromKDB(q, schemas)
			if err != nil {
				return nil, nil, err
			}
			start := time.Now()
			uaPlan, err := rewrite.RewriteUA(detPlan)
			if err != nil {
				return nil, nil, err
			}
			uaRes, err := engineExecute(uaPlan, encCat)
			if err != nil {
				return nil, nil, err
			}
			uaTime := time.Since(start)
			uaErr := uaMisclassification(uaRes, truth)
			out = append(out, Fig19Row{qname, nAlts, "UADB", uaTime, uaErr})

			// MayBMS exact and approximate confidence computation.
			for _, approx := range []bool{false, true} {
				start = time.Now()
				linRes, err := maybms.Eval(q, linDB)
				if err != nil {
					return nil, nil, err
				}
				eps := 0.0
				sys := "MB-exact"
				if approx {
					eps = cfg.Eps
					sys = "MB-approx"
				}
				confs := maybms.Conf(linRes, blocks, eps, cfg.Seed)
				mbTime := time.Since(start)
				mbErr := mbMisclassification(confs, truth)
				out = append(out, Fig19Row{qname, nAlts, sys, mbTime, mbErr})
			}
		}
	}
	for _, r := range out {
		rep.addf("%-5s %-6d %-12s %-14v %-8.2f%%", r.Query, r.Alts, r.System, r.Time, 100*r.ErrPct)
	}
	return rep, out, nil
}

// fig19Truth computes the exact certain answers of each query.
func fig19Truth(qname string, x *models.XRelation, c fig19Consts) *kdb.Relation[int64] {
	s := x.Schema
	idxIdx := s.MustIndexOf("index")
	switch qname {
	case "QP1":
		return models.CertainSP(x, func(t types.Tuple) bool { return t[idxIdx].Int() == 1 },
			[]int{0, 1, 2})
	case "QP2":
		d := s.MustIndexOf("district")
		return models.CertainSP(x, func(t types.Tuple) bool {
			return t[idxIdx].Int() > c.lo && t[idxIdx].Int() < c.hi && t[d].Str() == "BD"
		}, []int{d, idxIdx})
	case "QP3":
		d, ty := s.MustIndexOf("district"), s.MustIndexOf("type")
		off := s.Arity()
		return models.CertainSPJ(x, x, func(t types.Tuple) bool {
			return t[idxIdx].Int() == c.target && t[d].Equal(t[off+d]) && t[ty].Equal(t[off+ty])
		}, []int{idxIdx, off + idxIdx})
	default:
		panic("unknown query " + qname)
	}
}

// uaMisclassification measures the fraction of result tuples whose
// certainty marker disagrees with ground truth (false negatives only can
// occur; Theorem 5 rules out false positives).
func uaMisclassification(uaRes *engine.Table, truth *kdb.Relation[int64]) float64 {
	cIdx := uaRes.Schema.Arity() - 1
	if uaRes.NumRows() == 0 {
		return 0
	}
	labeled := map[string]bool{}
	all := map[string]bool{}
	for _, row := range uaRes.Rows {
		k := types.Tuple(row[:cIdx]).Key()
		all[k] = true
		if row[cIdx].Int() == 1 {
			labeled[k] = true
		}
	}
	certSet := map[string]bool{}
	truth.ForEach(func(t types.Tuple, c int64) {
		if c > 0 {
			certSet[t.Key()] = true
		}
	})
	wrong := 0
	for k := range all {
		if certSet[k] != labeled[k] {
			wrong++
		}
	}
	return float64(wrong) / float64(len(all))
}

// mbMisclassification measures MayBMS misclassifications: a tuple counts as
// certain when its computed probability reaches 1, so floating-point
// rounding in the Shannon expansion (or sampling error in the approximate
// scheme) produces both false negatives and false positives, as the paper
// observes.
func mbMisclassification(confs []maybms.ResultTuple, truth *kdb.Relation[int64]) float64 {
	if len(confs) == 0 {
		return 0
	}
	wrong := 0
	for _, rt := range confs {
		isCert := truth.Get(rt.Tuple) > 0
		claimed := rt.Prob >= 1
		if isCert != claimed {
			wrong++
		}
	}
	return float64(wrong) / float64(len(confs))
}

func engineExecute(plan algebra.Node, cat *engine.Catalog) (*engine.Table, error) {
	return execPlan(plan, cat)
}
