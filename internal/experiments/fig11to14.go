package experiments

import (
	"fmt"
	"time"

	"repro/internal/baseline/libkin"
	"repro/internal/baseline/maybms"
	"repro/internal/baseline/mcdb"
	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/pdbench"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// PDBenchConfig controls the PDBench comparison experiments.
type PDBenchConfig struct {
	SF            float64
	Uncertainties []float64
	MCDBSamples   int
	Seed          int64
}

// DefaultPDBench mirrors the paper's Figure 11 sweep at laptop scale.
func DefaultPDBench() PDBenchConfig {
	return PDBenchConfig{
		SF:            0.05,
		Uncertainties: []float64{0.02, 0.05, 0.10, 0.30},
		MCDBSamples:   10,
		Seed:          7,
	}
}

// PDBenchRow is one measurement: per-system runtimes plus result sizes.
type PDBenchRow struct {
	Query        string
	Uncertainty  float64
	SF           float64
	Det          time.Duration
	UADB         time.Duration
	Libkin       time.Duration
	MayBMS       time.Duration
	MCDB         time.Duration
	DetRows      int
	UADBRows     int
	UADBDistinct int // distinct result tuples (comparable with MayBMSRows)
	MayBMSRows   int // distinct possible answers
	CertainRows  int // rows of the UA-DB result labeled certain
}

// pdbenchSystems runs all five systems on one generated workload and query.
func pdbenchSystems(w *pdbench.Workload, q pdbench.Query, mcdbSamples int, seed int64) (PDBenchRow, error) {
	row := PDBenchRow{Query: q.Name, Uncertainty: w.Config.Uncertainty, SF: w.Config.SF}

	// Materialize the catalogs once (loading is not what the paper times).
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range w.Tables {
		uaDB.Put(uadb.FromXDB(x))
	}
	detCat := rewrite.DetCatalog(uaDB)
	encCat := rewrite.EncodeUADatabase(uaDB)
	coddCat := libkin.CoddCatalog(w.Tables)
	linDB, _ := maybms.BuildDB(w.Tables)

	// Det: deterministic query over the best-guess world.
	var detRes *engine.Table
	d, err := timeIt(func() error {
		var e error
		detRes, e = execSQL(detCat, q.SQL)
		return e
	})
	if err != nil {
		return row, fmt.Errorf("det: %w", err)
	}
	row.Det = d
	row.DetRows = detRes.NumRows()

	// UA-DB: rewritten query over the encoded catalog.
	front := rewrite.NewFrontend(encCat)
	var uaRes *engine.Table
	d, err = timeIt(func() error {
		var e error
		uaRes, e = frontQuery(front, q.SQL)
		return e
	})
	if err != nil {
		return row, fmt.Errorf("uadb: %w", err)
	}
	row.UADB = d
	row.UADBRows = uaRes.NumRows()
	cIdx := uaRes.Schema.Arity() - 1
	distinct := map[string]bool{}
	for _, r := range uaRes.Rows {
		distinct[types.Tuple(r[:cIdx]).Key()] = true
		if r[cIdx].Int() == 1 {
			row.CertainRows++
		}
	}
	row.UADBDistinct = len(distinct)

	// Libkin: null-based under-approximation.
	d, err = timeIt(func() error {
		_, e := libkin.Run(coddCat, q.SQL)
		return e
	})
	if err != nil {
		return row, fmt.Errorf("libkin: %w", err)
	}
	row.Libkin = d

	// MayBMS: all possible answers with lineage (no probability
	// computation, matching the paper's footnote 5).
	var linRes *kdb.Relation[maybms.Lineage]
	d, err = timeIt(func() error {
		var e error
		linRes, e = maybms.Eval(q.RA, linDB)
		return e
	})
	if err != nil {
		return row, fmt.Errorf("maybms: %w", err)
	}
	row.MayBMS = d
	row.MayBMSRows = linRes.Len()

	// MCDB: sampled evaluation.
	d, err = timeIt(func() error {
		_, e := mcdb.Run(w.Tables, q.SQL, mcdbSamples, seed)
		return e
	})
	if err != nil {
		return row, fmt.Errorf("mcdb: %w", err)
	}
	row.MCDB = d
	return row, nil
}

// Fig11 reproduces Figure 11: runtimes of the three PDBench queries for
// Det, UA-DB, Libkin, MayBMS and MCDB while the cell uncertainty rate
// varies. Expected shape: UA-DB ≈ Libkin ≈ Det; MCDB ≈ samples × Det;
// MayBMS degrades sharply as uncertainty grows.
func Fig11(cfg PDBenchConfig) (*Report, []PDBenchRow, error) {
	rep := &Report{ID: "Fig11", Title: "PDBench query runtime vs amount of uncertainty"}
	rep.addf("%-4s %-5s %-12s %-12s %-12s %-12s %-12s", "qry", "u%", "Det", "UA-DB", "Libkin", "MayBMS", "MCDB")
	var rows []PDBenchRow
	for _, u := range cfg.Uncertainties {
		w := pdbench.Generate(pdbench.Config{SF: cfg.SF, Uncertainty: u, Seed: cfg.Seed})
		for _, q := range pdbench.Queries() {
			r, err := pdbenchSystems(w, q, cfg.MCDBSamples, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, r)
			rep.addf("%-4s %-5.0f %-12v %-12v %-12v %-12v %-12v",
				r.Query, u*100, r.Det, r.UADB, r.Libkin, r.MayBMS, r.MCDB)
		}
	}
	return rep, rows, nil
}

// Fig12 reproduces Figure 12: result sizes of UA-DB vs MayBMS per query and
// uncertainty level — UA-DBs return exactly the best-guess-world tuples
// while MayBMS returns every possible answer (both counted as distinct
// tuples so the comparison is apples-to-apples).
func Fig12(rows []PDBenchRow) *Report {
	rep := &Report{ID: "Fig12", Title: "Query result sizes (distinct tuples): UA-DB vs MayBMS"}
	rep.addf("%-5s %-6s %-12s %-12s", "u%", "query", "UA-DB", "MayBMS")
	for _, r := range rows {
		rep.addf("%-5.0f %-6s %-12d %-12d", r.Uncertainty*100, r.Query, r.UADBDistinct, r.MayBMSRows)
	}
	return rep
}

// Fig13 reproduces Figure 13: the fraction of UA-DB result rows labeled
// certain per query and uncertainty level.
func Fig13(rows []PDBenchRow) *Report {
	rep := &Report{ID: "Fig13", Title: "Result certain answer %"}
	rep.addf("%-5s %-6s %-10s %-8s", "u%", "query", "certain", "pct")
	for _, r := range rows {
		pct := 0.0
		if r.UADBRows > 0 {
			pct = 100 * float64(r.CertainRows) / float64(r.UADBRows)
		}
		rep.addf("%-5.0f %-6s %-10d %.0f%%", r.Uncertainty*100, r.Query, r.CertainRows, pct)
	}
	return rep
}

// Fig14 reproduces Figure 14: runtime scaling with database size at fixed
// 2% uncertainty.
func Fig14(sfs []float64, cfg PDBenchConfig) (*Report, []PDBenchRow, error) {
	rep := &Report{ID: "Fig14", Title: "PDBench query runtime vs database size (2% uncertainty)"}
	rep.addf("%-4s %-6s %-12s %-12s %-12s %-12s %-12s", "qry", "SF", "Det", "UA-DB", "Libkin", "MayBMS", "MCDB")
	var rows []PDBenchRow
	for _, sf := range sfs {
		w := pdbench.Generate(pdbench.Config{SF: sf, Uncertainty: 0.02, Seed: cfg.Seed})
		for _, q := range pdbench.Queries() {
			r, err := pdbenchSystems(w, q, cfg.MCDBSamples, cfg.Seed)
			if err != nil {
				return nil, nil, err
			}
			rows = append(rows, r)
			rep.addf("%-4s %-6.2f %-12v %-12v %-12v %-12v %-12v",
				r.Query, sf, r.Det, r.UADB, r.Libkin, r.MayBMS, r.MCDB)
		}
	}
	return rep, rows, nil
}
