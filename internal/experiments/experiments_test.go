package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestQuartiles(t *testing.T) {
	q := quartiles([]float64{4, 1, 3, 2, 5})
	if q[0] != 1 || q[2] != 3 || q[4] != 5 {
		t.Errorf("quartiles = %v", q)
	}
	if q[1] != 2 || q[3] != 4 {
		t.Errorf("q1/q3 = %v", q)
	}
	single := quartiles([]float64{7})
	for _, v := range single {
		if v != 7 {
			t.Error("singleton quartiles")
		}
	}
}

func TestMean(t *testing.T) {
	if mean(nil) != 0 {
		t.Error("mean of empty")
	}
	if mean([]float64{1, 2, 3}) != 2 {
		t.Error("mean")
	}
}

func TestFig10ShapeAndMonotonicity(t *testing.T) {
	cfg := DefaultFig10()
	cfg.Rows = 20
	cfg.MaxOps = 4
	cfg.QueriesPerOp = 3
	rep, points := Fig10(cfg)
	if len(points) != cfg.MaxOps {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.CTablesPerTup < 0 || p.UADBPerTup < 0 {
			t.Error("negative time")
		}
	}
	if len(rep.Lines) != cfg.MaxOps+1 {
		t.Error("report lines")
	}
	// The paper's claim: exact certain-answer computation costs more than
	// UA-DB evaluation. Per-tuple numbers are noisy at test scale, so check
	// total work across the sweep.
	var ctSum, uaSum float64
	for _, p := range points {
		ctSum += float64(p.CTablesTotal)
		uaSum += float64(p.UADBTotal)
	}
	if ctSum <= uaSum {
		t.Errorf("expected c-tables total cost (%v) to exceed UA-DB (%v)", ctSum, uaSum)
	}
}

func TestFig11To13Invariants(t *testing.T) {
	cfg := DefaultPDBench()
	cfg.SF = 0.01
	cfg.Uncertainties = []float64{0.02, 0.30}
	rep, rows, err := Fig11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rep.String(), "MayBMS") {
		t.Error("report header")
	}
	byQU := map[string]PDBenchRow{}
	for _, r := range rows {
		// The UA-DB result has exactly the deterministic rows (Figure 12's
		// point): same count, plus the label column.
		if r.UADBRows != r.DetRows {
			t.Errorf("%s u=%.2f: UADB rows %d != Det rows %d", r.Query, r.Uncertainty, r.UADBRows, r.DetRows)
		}
		// MayBMS returns all possible answers: at least as many distinct
		// tuples as the BGW contributes (results here are distinct-counted).
		if r.MayBMSRows < r.CertainRows {
			t.Errorf("%s: possible answers %d < certain rows %d", r.Query, r.MayBMSRows, r.CertainRows)
		}
		if r.CertainRows > r.UADBRows {
			t.Errorf("%s: certain rows exceed result rows", r.Query)
		}
		byQU[r.Query+typesFloat(r.Uncertainty)] = r
	}
	// Certain fraction decreases as uncertainty rises (Figure 13's trend),
	// checked on the selection query Q2 where it is most stable.
	lo := byQU["Q2"+typesFloat(0.02)]
	hi := byQU["Q2"+typesFloat(0.30)]
	if lo.UADBRows > 0 && hi.UADBRows > 0 {
		fLo := float64(lo.CertainRows) / float64(lo.UADBRows)
		fHi := float64(hi.CertainRows) / float64(hi.UADBRows)
		if fHi > fLo {
			t.Errorf("certain fraction should not increase with uncertainty: %f -> %f", fLo, fHi)
		}
	}
	// Figures 12/13 render from the same rows.
	if !strings.Contains(Fig12(rows).String(), "Q1") {
		t.Error("Fig12 rendering")
	}
	if !strings.Contains(Fig13(rows).String(), "%") {
		t.Error("Fig13 rendering")
	}
}

func typesFloat(f float64) string {
	return string(rune('0' + int(f*100)%10))
}

func TestFig14Scaling(t *testing.T) {
	cfg := DefaultPDBench()
	rep, rows, err := Fig14([]float64{0.01, 0.02}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	if !strings.Contains(rep.String(), "SF") {
		t.Error("report")
	}
}

func TestFig15FNRBounds(t *testing.T) {
	cfg := Fig15Config{TrialsPerK: 2, Points: 3, Seed: 5}
	rep := Fig15(cfg)
	out := rep.String()
	if !strings.Contains(out, "Shootings in Buffalo") {
		t.Error("missing dataset")
	}
	// All nine datasets appear.
	for _, name := range []string{"Building Violations", "Chicago Crime", "Public Library Survey"} {
		if !strings.Contains(out, name) {
			t.Errorf("missing %s", name)
		}
	}
}

func TestFig16RealizedRates(t *testing.T) {
	rep := Fig16()
	if len(rep.Lines) != 10 { // header + 9 datasets
		t.Fatalf("lines = %d", len(rep.Lines))
	}
}

func TestFig17OverheadAndError(t *testing.T) {
	rep, rows, err := Fig17(800, 0.05, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.ErrRate < 0 || r.ErrRate > 0.25 {
			t.Errorf("%s: error rate %.3f out of the expected band", r.Query, r.ErrRate)
		}
		// The overhead claim: UA-DB within a modest factor of deterministic
		// (the paper reports <4%). Sub-millisecond queries are dominated by
		// scheduler noise under `go test` parallelism, so the tight bound is
		// only asserted on queries long enough to measure; the rest get a
		// loose sanity bound.
		limit := 10.0
		if r.Det > 5*time.Millisecond {
			limit = 1.0
		}
		if r.Overhead > limit {
			t.Errorf("%s: overhead %.2f exceeds %.1f (det=%v)", r.Query, r.Overhead, limit, r.Det)
		}
	}
	_ = rep
}

func TestFig18UtilityShape(t *testing.T) {
	cfg := DefaultFig18()
	cfg.Rows = 600
	cfg.Uncertainties = []float64{0, 0.2, 0.5}
	_, points, err := Fig18(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range points {
		// Libkin is c-sound: precision always 1.
		if p.LibPrec != 1 {
			t.Errorf("%s u=%.1f: Libkin precision %.3f != 1", p.Dataset, p.Uncertainty, p.LibPrec)
		}
		if p.Uncertainty == 0 {
			if p.BGRec != 1 || p.LibRec != 1 || p.BGPrec != 1 {
				t.Errorf("no uncertainty should give perfect answers: %+v", p)
			}
		}
	}
	// Recall ordering at high uncertainty: UA-DB(BGQP) > Libkin (the
	// paper's headline utility claim).
	for _, p := range points {
		if p.Uncertainty >= 0.5 && p.BGRec <= p.LibRec {
			t.Errorf("%s: BGQP recall %.3f should exceed Libkin recall %.3f",
				p.Dataset, p.BGRec, p.LibRec)
		}
	}
}

func TestFig19Invariants(t *testing.T) {
	cfg := DefaultFig19()
	cfg.Rows = 400
	cfg.Alternatives = []int{2, 20}
	_, rows, err := Fig19(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2*3*3 {
		t.Fatalf("rows = %d", len(rows))
	}
	times := map[string]map[int]float64{}
	for _, r := range rows {
		if r.ErrPct < 0 || r.ErrPct > 1 {
			t.Errorf("error out of range: %+v", r)
		}
		if times[r.System+r.Query] == nil {
			times[r.System+r.Query] = map[int]float64{}
		}
		times[r.System+r.Query][r.Alts] = float64(r.Time)
	}
	// MayBMS-exact QP3 must slow down as alternatives grow; UA-DB must not
	// grow proportionally (its input is independent of the alternative
	// count).
	mb := times["MB-exactQP3"]
	if mb[20] <= mb[2] {
		t.Errorf("MayBMS QP3 should degrade with more alternatives: %v", mb)
	}
	ua := times["UADBQP3"]
	if ua[20] > 20*ua[2]+float64(5e6) {
		t.Errorf("UA-DB time should be roughly alternative-independent: %v", ua)
	}
}

func TestFig20And21Render(t *testing.T) {
	out20 := Fig20(1, 3).String()
	if !strings.Contains(out20, "Shootings in Buffalo") {
		t.Error("Fig20 datasets")
	}
	out21 := Fig21(1, 3).String()
	if !strings.Contains(out21, "err%") {
		t.Error("Fig21 header")
	}
}
