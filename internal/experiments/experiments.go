// Package experiments reproduces every table and figure of the paper's
// evaluation (Section 11). Each Fig* function runs one experiment and
// returns a Report whose rows mirror the series the paper plots; cmd/bench
// prints them and bench_test.go wraps the timing-critical ones in
// testing.B benchmarks. Sizes are scaled for single-machine runs (see
// DESIGN.md); the comparisons are relative, matching the paper's claims
// about who wins and by roughly what factor.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
)

// execPlan runs a compiled logical plan through the engine's one execution
// entrypoint and materializes the table shape the experiment code works
// with.
func execPlan(plan algebra.Node, cat *engine.Catalog) (*engine.Table, error) {
	res, err := engine.NewSession(cat, physical.Options{}).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

// execSQL plans and runs a deterministic SQL string against cat.
func execSQL(cat *engine.Catalog, query string) (*engine.Table, error) {
	plan, err := engine.NewPlanner(cat).PlanSQL(query)
	if err != nil {
		return nil, err
	}
	return execPlan(plan, cat)
}

// frontQuery runs a UA-SQL query through the frontend's one execution
// entrypoint, materialized.
func frontQuery(front *rewrite.Frontend, query string) (*engine.Table, error) {
	res, err := front.Query(context.Background(), query, front.Opts)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

// Report is one experiment's formatted output.
type Report struct {
	ID    string
	Title string
	Lines []string
}

func (r *Report) addf(format string, args ...any) {
	r.Lines = append(r.Lines, fmt.Sprintf(format, args...))
}

// String renders the report.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s: %s ===\n", r.ID, r.Title)
	for _, l := range r.Lines {
		sb.WriteString(l)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// timeIt measures wall-clock time of f.
func timeIt(f func() error) (time.Duration, error) {
	start := time.Now()
	err := f()
	return time.Since(start), nil2(err)
}

func nil2(err error) error { return err }

// quartiles computes min, q1, median, q3, max of a non-empty sample.
func quartiles(xs []float64) [5]float64 {
	s := append([]float64{}, xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	q := func(p float64) float64 {
		if len(s) == 1 {
			return s[0]
		}
		idx := p * float64(len(s)-1)
		lo := int(idx)
		frac := idx - float64(lo)
		if lo+1 >= len(s) {
			return s[len(s)-1]
		}
		return s[lo]*(1-frac) + s[lo+1]*frac
	}
	return [5]float64{s[0], q(0.25), q(0.5), q(0.75), s[len(s)-1]}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t / float64(len(xs))
}
