package experiments

import (
	"math/rand"
	"time"

	"repro/internal/baseline/ctexact"
	"repro/internal/cond"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// Fig10Config controls the C-table certain-answers experiment.
type Fig10Config struct {
	Rows         int // rows in the synthetic C-table
	Attrs        int // attributes (the paper uses 8)
	MaxOps       int // query complexity sweep 1..MaxOps
	QueriesPerOp int // random queries averaged per complexity level
	Seed         int64
}

// DefaultFig10 mirrors the paper's setup at laptop scale.
func DefaultFig10() Fig10Config {
	return Fig10Config{Rows: 40, Attrs: 8, MaxOps: 7, QueriesPerOp: 5, Seed: 1}
}

// Fig10Point is one data point of Figure 10.
type Fig10Point struct {
	Complexity    int
	CTablesPerTup time.Duration // exact certain answers via symbolic eval + solver
	UADBPerTup    time.Duration // UA-DB query evaluation
	CTablesTotal  time.Duration
	UADBTotal     time.Duration
	Ratio         float64
}

// Fig10 reproduces Figure 10: per-tuple execution time of exact certain
// answers over C-tables vs UA-DBs as query complexity (number of operators)
// grows. The paper reports 27×–40×+ overheads growing super-linearly; the
// shape reproduces here with the active-domain solver substituting for Z3.
func Fig10(cfg Fig10Config) (*Report, []Fig10Point) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ct := synthCTable(cfg, rng)
	sym := ctexact.FromCTable(ct)
	uaRel := uadb.FromCTable(ct)
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	uaDB.Put(uaRel)
	// UA-DB runs through the real middleware: encoded table + rewritten
	// plan on the engine.
	encCat := rewrite.EncodeUADatabase(uaDB)
	schemas := map[string]types.Schema{"r": ct.Schema}

	rep := &Report{ID: "Fig10", Title: "Certain answers over C-tables vs UA-DB (per-tuple time)"}
	rep.addf("%-11s %-18s %-18s %s", "complexity", "c-tables/tuple", "UADB/tuple", "ratio")

	// Measure prefixes of the same random operator chains: complexity k is
	// the k-operator prefix, so every complexity level sees the same query
	// families and the per-tuple cost growth is attributable to the added
	// operators (the paper averages over random queries to the same end).
	ctTotal := make([]time.Duration, cfg.MaxOps+1)
	uaTotal := make([]time.Duration, cfg.MaxOps+1)
	ctTuples := make([]int, cfg.MaxOps+1)
	uaTuples := make([]int, cfg.MaxOps+1)
	for qi := 0; qi < cfg.QueriesPerOp; qi++ {
		chain := randomCTQueryChain(rng, cfg.MaxOps, ct.Schema)
		for ops := 1; ops <= cfg.MaxOps; ops++ {
			q := chain[ops-1]

			// Exact baseline: symbolic evaluation + one solver call per
			// result tuple (the paper's Z3 instrumentation).
			start := time.Now()
			symRes, err := ctexact.Eval(q, ctexact.SymDB{"r": sym})
			if err == nil {
				ctexact.CertainRows(symRes)
				ctTotal[ops] += time.Since(start)
				ctTuples[ops] += len(symRes.Rows)
			}

			// UA-DB: rewrite + engine execution over the encoding.
			detPlan, err := rewrite.FromKDB(q, schemas)
			if err != nil {
				continue
			}
			start = time.Now()
			uaPlan, err := rewrite.RewriteUA(detPlan)
			if err != nil {
				continue
			}
			uaRes, err := execPlan(uaPlan, encCat)
			if err == nil {
				uaTotal[ops] += time.Since(start)
				uaTuples[ops] += uaRes.NumRows()
			}
		}
	}
	var points []Fig10Point
	for ops := 1; ops <= cfg.MaxOps; ops++ {
		ctN, uaN := ctTuples[ops], uaTuples[ops]
		if ctN == 0 {
			ctN = 1
		}
		if uaN == 0 {
			uaN = 1
		}
		p := Fig10Point{
			Complexity:    ops,
			CTablesPerTup: ctTotal[ops] / time.Duration(ctN),
			UADBPerTup:    uaTotal[ops] / time.Duration(uaN),
			CTablesTotal:  ctTotal[ops],
			UADBTotal:     uaTotal[ops],
		}
		if p.UADBPerTup > 0 {
			p.Ratio = float64(p.CTablesPerTup) / float64(p.UADBPerTup)
		}
		points = append(points, p)
		rep.addf("%-11d %-18v %-18v %.1fx", p.Complexity, p.CTablesPerTup, p.UADBPerTup, p.Ratio)
	}
	return rep, points
}

// randomCTQueryChain returns queries of increasing length: element k is the
// (k+1)-operator prefix of one random operator chain.
func randomCTQueryChain(rng *rand.Rand, maxOps int, schema types.Schema) []kdb.Query {
	var out []kdb.Query
	var q kdb.Query = kdb.Table{Name: "r"}
	cur := schema
	joins := 0
	for i := 0; i < maxOps; i++ {
		kind := rng.Intn(3)
		if kind == 2 && joins >= 2 {
			kind = rng.Intn(2) // cap self-joins: symbolic size is O(rows^joins)
		}
		switch kind {
		case 0: // selection on a random attribute
			attr := cur.Attrs[rng.Intn(cur.Arity())]
			cmps := []kdb.CmpOp{kdb.OpEq, kdb.OpLe, kdb.OpGt}
			q = kdb.SelectQ{Input: q, Pred: kdb.AttrConst{
				Attr: attr, Op: cmps[rng.Intn(3)], Const: types.NewInt(rng.Int63n(8)),
			}}
		case 1: // projection dropping one attribute
			if cur.Arity() > 2 {
				keep := append([]string{}, cur.Attrs...)
				drop := rng.Intn(len(keep))
				keep = append(keep[:drop], keep[drop+1:]...)
				q = kdb.ProjectQ{Input: q, Attrs: keep}
				cur = types.Schema{Attrs: keep}
			} else { // fall back to a selection
				attr := cur.Attrs[rng.Intn(cur.Arity())]
				q = kdb.SelectQ{Input: q, Pred: kdb.AttrConst{
					Attr: attr, Op: kdb.OpLe, Const: types.NewInt(rng.Int63n(8)),
				}}
			}
		default: // self-join on position 0
			q = kdb.JoinQ{Left: q, Right: kdb.Table{Name: "r"},
				Pred: kdb.AttrAttr{PosLeft: 0, PosRight: cur.Arity(), Op: kdb.OpEq}}
			cur = cur.Concat(schema)
			joins++
		}
		out = append(out, q)
	}
	return out
}

// synthCTable builds the synthetic 8-attribute C-table: half of each row's
// attributes are variables, the rest floating point constants (Section 11.1).
func synthCTable(cfg Fig10Config, rng *rand.Rand) *models.CTable {
	attrs := make([]string, cfg.Attrs)
	for i := range attrs {
		attrs[i] = []string{"a", "b", "c", "d", "e", "f", "g", "h"}[i%8]
	}
	ct := models.NewCTable(types.Schema{Name: "r", Attrs: attrs})
	varID := 0
	for i := 0; i < cfg.Rows; i++ {
		data := make([]cond.Term, cfg.Attrs)
		perm := rng.Perm(cfg.Attrs)
		for j, col := range perm {
			if j < cfg.Attrs/2 {
				name := varName(varID)
				varID++
				ct.SetDomain(name, types.NewInt(rng.Int63n(4)), types.NewInt(rng.Int63n(4)+4))
				data[col] = cond.V(name)
			} else {
				data[col] = cond.CI(rng.Int63n(8))
			}
		}
		ct.Add(data, cond.Lit(true))
	}
	return ct
}

func varName(i int) string {
	return "X" + string(rune('A'+i%26)) + string(rune('0'+(i/26)%10)) + string(rune('0'+(i/260)%10))
}

// randomCTQuery assembles a chain of ops random selections, projections and
// self-joins over the synthetic table, mirroring the paper's random query
// construction.
func randomCTQuery(rng *rand.Rand, ops int, schema types.Schema) kdb.Query {
	var q kdb.Query = kdb.Table{Name: "r"}
	cur := schema
	joins := 0
	for i := 0; i < ops; i++ {
		kind := rng.Intn(3)
		if kind == 2 && joins >= 2 {
			kind = rng.Intn(2) // cap self-joins: symbolic size is O(rows^joins)
		}
		switch kind {
		case 0: // selection on a random attribute
			attr := cur.Attrs[rng.Intn(cur.Arity())]
			cmps := []kdb.CmpOp{kdb.OpEq, kdb.OpLe, kdb.OpGt}
			q = kdb.SelectQ{Input: q, Pred: kdb.AttrConst{
				Attr: attr, Op: cmps[rng.Intn(3)], Const: types.NewInt(rng.Int63n(8)),
			}}
		case 1: // projection dropping one attribute
			if cur.Arity() <= 2 {
				continue
			}
			keep := append([]string{}, cur.Attrs...)
			drop := rng.Intn(len(keep))
			keep = append(keep[:drop], keep[drop+1:]...)
			q = kdb.ProjectQ{Input: q, Attrs: keep}
			cur = types.Schema{Attrs: keep}
		default: // self-join on position 0 = base attr a
			q = kdb.JoinQ{Left: q, Right: kdb.Table{Name: "r"},
				Pred: kdb.AttrAttr{PosLeft: 0, PosRight: cur.Arity(), Op: kdb.OpEq}}
			cur = cur.Concat(schema)
			joins++
		}
	}
	return q
}
