package experiments

import (
	"math/rand"

	"repro/internal/datagen"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// Fig20 reproduces the bag-semantics mislabeling experiment (Section 11.3
// "Beyond Set Semantics"): mean error rate of random projections evaluated
// under semiring N, over three of the real-world datasets. A result tuple is
// mislabeled when it is certain (its true certain multiplicity is positive)
// but the query over the labeling assigns it no certain copies at all.
func Fig20(trials int, seed int64) *Report {
	rep := &Report{ID: "Fig20", Title: "Bag semantics — mean mislabeling rate of random projections"}
	rep.addf("%-24s %-4s %-10s", "dataset", "k", "mean err")
	rng := rand.New(rand.NewSource(seed))
	specs := datagen.Specs()
	for _, si := range []int{1, 5, 7} { // buffalo, foodins, permits
		spec := specs[si]
		d := datagen.Generate(spec)
		ua := uadb.FromXDB(d.X)
		uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
		uaDB.Put(ua)
		step := spec.Cols / 8
		if step < 1 {
			step = 1
		}
		for k := 1; k <= spec.Cols; k += step {
			var errs []float64
			for trial := 0; trial < trials; trial++ {
				idx := rng.Perm(spec.Cols)[:k]
				attrs := make([]string, k)
				for i, j := range idx {
					attrs[i] = spec.ColName(j)
				}
				res, err := uadb.Eval(kdb.ProjectQ{Input: kdb.Table{Name: d.Schema.Name}, Attrs: attrs}, uaDB)
				if err != nil {
					panic(err)
				}
				truth := models.CertainSP(d.X, nil, idx)
				total, wrong := 0, 0
				res.ForEach(func(t types.Tuple, p semiring.Pair[int64]) {
					total++
					if truth.Get(t) > 0 && p.Cert == 0 {
						wrong++ // certain tuple labeled entirely uncertain
					}
				})
				if total > 0 {
					errs = append(errs, float64(wrong)/float64(total))
				}
			}
			rep.addf("%-24s %-4d %-10.4f", spec.Name, k, mean(errs))
		}
	}
	return rep
}

// Fig21 reproduces the access-control-semiring experiment: tuples carry
// clearance levels from the semiring A, labelings with a controlled
// fraction of mislabeled tuples are queried with random projections, and
// the mean lattice distance between the labeling's answer and the true
// certain annotation is reported per error rate.
func Fig21(trials int, seed int64) *Report {
	rep := &Report{ID: "Fig21", Title: "Access-control semiring — mean label error of random projections"}
	rep.addf("%-24s %-6s %-4s %-12s", "dataset", "err%", "k", "mean dist")
	rng := rand.New(rand.NewSource(seed))
	specs := datagen.Specs()
	levels := semiring.Levels
	for _, si := range []int{0, 1, 2, 4, 5} { // five datasets
		spec := specs[si]
		spec.Rows /= 4 // the A experiment only needs modest tables
		d := datagen.Generate(spec)

		// Ground truth: each tuple of the BGW annotated with a random
		// clearance level (the certain annotation).
		truth := kdb.New[semiring.Level](semiring.Access, d.Schema)
		bgw := models.BestGuessXDB(d.X)
		bgw.ForEach(func(t types.Tuple, _ int64) {
			truth.Set(t, levels[1+rng.Intn(len(levels)-1)])
		})

		for _, errRate := range []float64{0.01, 0.05, 0.10, 0.15} {
			// Labeling: a c-sound approximation with errRate of the tuples
			// assigned a strictly lower level.
			label := kdb.New[semiring.Level](semiring.Access, d.Schema)
			truth.ForEach(func(t types.Tuple, lv semiring.Level) {
				if rng.Float64() < errRate && lv > semiring.LevelTopSecret {
					lv = levels[1+rng.Intn(int(lv)-1)]
				}
				label.Set(t, lv)
			})
			truthDB := kdb.NewDatabase[semiring.Level](semiring.Access)
			truthDB.Put(truth)
			labelDB := kdb.NewDatabase[semiring.Level](semiring.Access)
			labelDB.Put(label)

			for _, k := range []int{1, 3, 5, 7, 9} {
				if k > spec.Cols {
					break
				}
				var dists []float64
				for trial := 0; trial < trials; trial++ {
					idx := rng.Perm(spec.Cols)[:k]
					attrs := make([]string, k)
					for i, j := range idx {
						attrs[i] = spec.ColName(j)
					}
					q := kdb.ProjectQ{Input: kdb.Table{Name: d.Schema.Name}, Attrs: attrs}
					resT, err := kdb.Eval(q, truthDB)
					if err != nil {
						panic(err)
					}
					resL, err := kdb.Eval(q, labelDB)
					if err != nil {
						panic(err)
					}
					var total float64
					n := 0
					resT.ForEach(func(t types.Tuple, lv semiring.Level) {
						total += semiring.Distance(lv, resL.Get(t))
						n++
					})
					if n > 0 {
						dists = append(dists, total/float64(n))
					}
				}
				rep.addf("%-24s %-6.0f %-4d %-12.5f", spec.Name, errRate*100, k, mean(dists))
			}
		}
	}
	return rep
}
