package experiments

import (
	"math/rand"
	"time"

	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/rewrite"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

// fnrOfProjection computes the false negative rate of the UA-DB labeling for
// one projection over an x-relation: the fraction of truly certain result
// tuples that the labeling marks uncertain. ua must be uadb.FromXDB(x).
func fnrOfProjection(x *models.XRelation, ua *uadb.Relation[int64], idx []int) float64 {
	attrs := make([]string, len(idx))
	for i, j := range idx {
		attrs[i] = x.Schema.Attrs[j]
	}
	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	uaDB.Put(ua)
	res, err := uadb.Eval(kdb.ProjectQ{Input: kdb.Table{Name: x.Schema.Name}, Attrs: attrs}, uaDB)
	if err != nil {
		panic(err)
	}
	truth := models.CertainSP(x, nil, idx)
	total, missed := 0, 0
	truth.ForEach(func(t types.Tuple, cert int64) {
		if cert == 0 {
			return
		}
		total++
		if res.Get(t).Cert == 0 {
			missed++
		}
	})
	if total == 0 {
		return 0
	}
	return float64(missed) / float64(total)
}

// Fig15Config controls the FNR-distribution experiment.
type Fig15Config struct {
	TrialsPerK int
	Points     int // number of k values sampled between 1 and #cols
	Seed       int64
}

// DefaultFig15 uses 8 random projections per projection width.
func DefaultFig15() Fig15Config { return Fig15Config{TrialsPerK: 8, Points: 8, Seed: 5} }

// Fig15 reproduces Figure 15 (a–i): quartile distributions of the false
// negative rate of random projection queries over the nine real-world
// datasets, as a function of the number of projection attributes. FNR
// decreases with more projection attributes and stays low overall.
func Fig15(cfg Fig15Config) *Report {
	rep := &Report{ID: "Fig15", Title: "FNR of random projections (min/q1/median/q3/max)"}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, spec := range datagen.Specs() {
		d := datagen.Generate(spec)
		ua := uadb.FromXDB(d.X)
		rep.addf("-- %s (%d rows, %d cols)", spec.Name, spec.Rows, spec.Cols)
		rep.addf("   %-4s %-8s %-8s %-8s %-8s %-8s", "k", "min", "q1", "med", "q3", "max")
		step := spec.Cols / cfg.Points
		if step < 1 {
			step = 1
		}
		for k := 1; k <= spec.Cols; k += step {
			var fnrs []float64
			for trial := 0; trial < cfg.TrialsPerK; trial++ {
				idx := rng.Perm(spec.Cols)[:k]
				fnrs = append(fnrs, fnrOfProjection(d.X, ua, idx))
			}
			q := quartiles(fnrs)
			rep.addf("   %-4d %-8.4f %-8.4f %-8.4f %-8.4f %-8.4f", k, q[0], q[1], q[2], q[3], q[4])
		}
	}
	return rep
}

// Fig16 reproduces the dataset-statistics table: rows, columns, and realized
// uncertainty rates of the generated datasets.
func Fig16() *Report {
	rep := &Report{ID: "Fig16", Title: "Real-world dataset statistics"}
	rep.addf("%-24s %-8s %-6s %-8s %-8s", "dataset", "rows", "cols", "U_attr", "U_row")
	for _, spec := range datagen.Specs() {
		d := datagen.Generate(spec)
		rep.addf("%-24s %-8d %-6d %-8.2f%% %-8.1f%%",
			spec.Name, spec.Rows, spec.Cols,
			100*d.UncertainCellFraction(), 100*d.UncertainRowFraction())
	}
	return rep
}

// Fig17Row is one real query's measurements.
type Fig17Row struct {
	Query    string
	Det      time.Duration
	UADB     time.Duration
	Overhead float64 // (UADB-Det)/Det
	ErrRate  float64 // FNR against exact certain answers
}

// Fig17 reproduces the real-query experiment (Section 11.3 "Real Queries"):
// the five queries of Section 11.4 over the crime / graffiti / food
// inspection tables, reporting UA-DB overhead relative to deterministic
// processing and the false negative rate.
func Fig17(nRows int, uRow float64, seed int64) (*Report, []Fig17Row, error) {
	rt := datagen.GenerateRealTables(nRows, uRow, seed)
	tables := rt.Tables()

	uaDB := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	for _, x := range tables {
		uaDB.Put(uadb.FromXDB(x))
	}
	detCat := rewrite.DetCatalog(uaDB)
	encCat := rewrite.EncodeUADatabase(uaDB)
	front := rewrite.NewFrontend(encCat)

	rep := &Report{ID: "Fig17", Title: "Real queries: UA-DB overhead and error rate"}
	rep.addf("%-4s %-12s %-12s %-10s %-10s", "qry", "Det", "UA-DB", "overhead", "err rate")
	var rows []Fig17Row
	for _, q := range datagen.RealQueries() {
		var detRes, uaRes *engine.Table
		_ = detRes
		// Average a few runs: these queries are sub-millisecond.
		const reps = 5
		var detT, uaT time.Duration
		for i := 0; i < reps; i++ {
			d, err := timeIt(func() error {
				var e error
				detRes, e = execSQL(detCat, q.SQL)
				return e
			})
			if err != nil {
				return nil, nil, err
			}
			detT += d
			d, err = timeIt(func() error {
				var e error
				uaRes, e = frontQuery(front, q.SQL)
				return e
			})
			if err != nil {
				return nil, nil, err
			}
			uaT += d
		}
		row := Fig17Row{Query: q.Name, Det: detT / reps, UADB: uaT / reps}
		if row.Det > 0 {
			row.Overhead = float64(row.UADB-row.Det) / float64(row.Det)
		}
		row.ErrRate = realQueryFNR(q.Name, rt, uaRes)
		rows = append(rows, row)
		rep.addf("%-4s %-12v %-12v %-10.2f%% %-10.2f%%",
			row.Query, row.Det, row.UADB, 100*row.Overhead, 100*row.ErrRate)
	}
	return rep, rows, nil
}

// realQueryFNR computes the exact FNR of the UA-DB result for one of the
// five real queries using the PTIME certain-answer characterizations of
// models.CertainSP / CertainSPJ.
func realQueryFNR(name string, rt *datagen.RealTables, uaRes *engine.Table) float64 {
	labeled := map[string]bool{} // tuples labeled certain by the UA-DB
	cIdx := uaRes.Schema.Arity() - 1
	for _, row := range uaRes.Rows {
		if row[cIdx].Int() == 1 {
			labeled[types.Tuple(row[:cIdx]).Key()] = true
		}
	}
	truth := realQueryTruth(name, rt)
	total, missed := 0, 0
	truth.ForEach(func(t types.Tuple, cert int64) {
		if cert == 0 {
			return
		}
		total++
		if !labeled[t.Key()] {
			missed++
		}
	})
	if total == 0 {
		return 0
	}
	return float64(missed) / float64(total)
}

func realQueryTruth(name string, rt *datagen.RealTables) *kdb.Relation[int64] {
	crimeS := rt.Crime.Schema
	grafS := rt.Graffiti.Schema
	foodS := rt.FoodInsp.Schema
	switch name {
	case "Q1":
		iucr := crimeS.MustIndexOf("iucr")
		pred := func(t types.Tuple) bool {
			v := t[iucr].Int()
			return v == 820 || v == 486 || v == 1320
		}
		mapFn := func(t types.Tuple) types.Tuple {
			var ctype types.Value
			switch t[iucr].Int() {
			case 820:
				ctype = types.NewString("Theft")
			case 486:
				ctype = types.NewString("Domestic Battery")
			case 1320:
				ctype = types.NewString("Criminal Damage")
			default:
				ctype = types.Null()
			}
			return types.Tuple{t[crimeS.MustIndexOf("id")], t[crimeS.MustIndexOf("case_number")], ctype}
		}
		return models.CertainSPMap(rt.Crime, pred, mapFn, types.Schema{Attrs: []string{"id", "case_number", "crime_type"}})
	case "Q2":
		lon, lat := crimeS.MustIndexOf("longitude"), crimeS.MustIndexOf("latitude")
		pred := func(t types.Tuple) bool {
			lo, la := t[lon].Float(), t[lat].Float()
			return lo >= -87.674 && lo <= -87.619 && la >= 41.892 && la <= 41.903
		}
		return models.CertainSP(rt.Crime, pred, []int{
			crimeS.MustIndexOf("id"), crimeS.MustIndexOf("case_number"), lon, lat})
	case "Q3":
		st := grafS.MustIndexOf("status")
		pred := func(t types.Tuple) bool { return t[st].Str() == "Open" }
		return models.CertainSP(rt.Graffiti, pred, []int{
			grafS.MustIndexOf("street_address"), grafS.MustIndexOf("zip_code"), st})
	case "Q4":
		res, risk := foodS.MustIndexOf("results"), foodS.MustIndexOf("risk")
		pred := func(t types.Tuple) bool {
			return t[res].Str() == "Pass w/ Conditions" && t[risk].Str() == "Risk 1 (High)"
		}
		return models.CertainSP(rt.FoodInsp, pred, []int{
			foodS.MustIndexOf("inspection_date"), foodS.MustIndexOf("address"), foodS.MustIndexOf("zip")})
	case "Q5":
		// graffiti g × crime c with band predicates; concat order g then c.
		gx, gy := grafS.MustIndexOf("x_coordinate"), grafS.MustIndexOf("y_coordinate")
		gpd := grafS.MustIndexOf("police_district")
		off := grafS.Arity()
		cx, cy := off+crimeS.MustIndexOf("x_coordinate"), off+crimeS.MustIndexOf("y_coordinate")
		cd := off + crimeS.MustIndexOf("district")
		pred := func(t types.Tuple) bool {
			if t[gpd].Int() != 8 || t[cd].Str() != "008" {
				return false
			}
			dx := t[cx].Float() - t[gx].Float()
			dy := t[cy].Float() - t[gy].Float()
			return dx < 100 && dx > -100 && dy < 100 && dy > -100
		}
		proj := []int{
			off + crimeS.MustIndexOf("id"), off + crimeS.MustIndexOf("case_number"),
			off + crimeS.MustIndexOf("iucr"), grafS.MustIndexOf("status"),
			grafS.MustIndexOf("service_request_number"), grafS.MustIndexOf("community_area"),
		}
		return models.CertainSPJ(rt.Graffiti, rt.Crime, pred, proj)
	default:
		panic("unknown real query " + name)
	}
}
