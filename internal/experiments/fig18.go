package experiments

import (
	"repro/internal/baseline/libkin"
	"repro/internal/datagen"
	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/rewrite"
)

// Fig18Config controls the utility experiment.
type Fig18Config struct {
	Rows          int
	Cols          int
	Uncertainties []float64
	Seed          int64
}

// DefaultFig18 sweeps uncertainty 0–50% as in the paper.
func DefaultFig18() Fig18Config {
	return Fig18Config{
		Rows: 2000, Cols: 8,
		Uncertainties: []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5},
		Seed:          21,
	}
}

// Fig18Point is one measurement of the utility experiment.
type Fig18Point struct {
	Dataset     string
	Uncertainty float64
	BGPrec      float64 // UA-DB over best-guess imputation
	BGRec       float64
	RGPrec      float64 // UA-DB over random-guess imputation
	RGRec       float64
	LibPrec     float64 // Libkin under-approximation
	LibRec      float64
}

// Fig18 reproduces the utility experiment (Section 11.5): precision and
// recall of query answers against ground truth for UA-DBs over best-guess
// and random-guess worlds and for Libkin's certain-answer
// under-approximation, as uncertainty grows. Expected shape: Libkin keeps
// 100% precision but recall collapses; UA-DB(BGQP) holds 80–90% on both;
// UA-DB(RGQP) is in between.
func Fig18(cfg Fig18Config) (*Report, []Fig18Point, error) {
	rep := &Report{ID: "Fig18", Title: "Utility: precision/recall vs ground truth"}
	rep.addf("%-16s %-5s %-9s %-9s %-9s %-9s %-9s %-9s",
		"dataset", "u%", "BG-prec", "BG-rec", "RG-prec", "RG-rec", "Lib-prec", "Lib-rec")
	datasets := []struct {
		name string
		seed int64
	}{
		{"Income Survey", cfg.Seed},
		{"Buffalo News", cfg.Seed + 100},
		{"Business License", cfg.Seed + 200},
	}
	// The analyst's query: a selection on one attribute projected onto
	// three others (selection attribute values may themselves be imputed).
	query := "SELECT a0, a1, a2 FROM t WHERE a3 = 'c3_v0'"

	var points []Fig18Point
	for _, ds := range datasets {
		for _, u := range cfg.Uncertainties {
			bg := datagen.GenerateUtility(cfg.Rows, cfg.Cols, u, datagen.BGQP, ds.seed)
			rg := datagen.GenerateUtility(cfg.Rows, cfg.Cols, u, datagen.RGQP, ds.seed)

			groundCat := engine.NewCatalog()
			groundCat.Put(bg.Ground)
			truth, err := execSQL(groundCat, query)
			if err != nil {
				return nil, nil, err
			}

			runBG, err := runOnBGW(bg.X, query)
			if err != nil {
				return nil, nil, err
			}
			runRG, err := runOnBGW(rg.X, query)
			if err != nil {
				return nil, nil, err
			}
			nulledCat := engine.NewCatalog()
			nulledCat.Put(bg.Nulled)
			lib, err := libkin.Run(nulledCat, query)
			if err != nil {
				return nil, nil, err
			}

			p := Fig18Point{Dataset: ds.name, Uncertainty: u}
			p.BGPrec, p.BGRec = datagen.PrecisionRecall(runBG, truth)
			p.RGPrec, p.RGRec = datagen.PrecisionRecall(runRG, truth)
			p.LibPrec, p.LibRec = datagen.PrecisionRecall(lib, truth)
			points = append(points, p)
			rep.addf("%-16s %-5.0f %-9.3f %-9.3f %-9.3f %-9.3f %-9.3f %-9.3f",
				ds.name, u*100, p.BGPrec, p.BGRec, p.RGPrec, p.RGRec, p.LibPrec, p.LibRec)
		}
	}
	return rep, points, nil
}

// runOnBGW evaluates the query over the best-guess world of the x-relation
// (the deterministic component of the UA-DB result — precision/recall are
// computed over tuples, which the certainty column does not change).
func runOnBGW(x *models.XRelation, query string) (*engine.Table, error) {
	cat := engine.NewCatalog()
	cat.Put(rewrite.TableFromRelation(models.BestGuessXDB(x)))
	return execSQL(cat, query)
}
