package engine

import (
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/types"
)

// spillSortFixture builds a catalog and a sort plan big enough to spill
// under a 4KiB budget.
func spillSortFixture(rows int) (*Catalog, algebra.Node) {
	tb := NewTable(types.NewSchema("t", "k", "v"))
	for i := 0; i < rows; i++ {
		tb.AppendVals(types.NewInt(int64((i*7919)%100003)), types.NewInt(int64(i)))
	}
	cat := NewCatalog()
	cat.Put(tb)
	plan := &algebra.Sort{
		Input: &algebra.Scan{Table: "t", TblSchema: tb.Schema},
		Keys:  []algebra.SortKey{{Expr: algebra.Col{Idx: 0}}, {Expr: algebra.Col{Idx: 1}}},
	}
	return cat, plan
}

// TestExecuteCancelledBeforeStart: a context that is already dead yields
// context.Canceled without touching the spill directory.
func TestExecuteCancelledBeforeStart(t *testing.T) {
	cat, plan := spillSortFixture(1000)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dir := t.TempDir()
	_, err := NewSession(cat, physical.Options{DOP: 1, MemBudget: 4 << 10, SpillDir: dir}).
		Execute(ctx, plan)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files written by a cancelled query", len(ents))
	}
}

// TestExecuteCancelledMidSpill cancels a spilling sort while it runs. The
// query must abort with context.Canceled (not hang, not return a partial
// result), the governor must drain back to zero — a leaked reservation
// here would poison a server-wide ledger forever — and the spill
// directory must be empty again.
func TestExecuteCancelledMidSpill(t *testing.T) {
	cat, plan := spillSortFixture(50000)
	gov := physical.NewMemGovernor(4 << 10)
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		// Let the query get under way — with a 4KiB budget over 50k rows it
		// spends nearly all its time spilling runs — then pull the plug.
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	res, err := NewSession(cat, physical.Options{DOP: 1, Gov: gov, SpillDir: dir}).
		Execute(ctx, plan)
	if err == nil {
		// The race is legal: a fast machine may finish before the cancel
		// lands. Then the result must at least be complete and the run
		// proves nothing about cancellation — rerun with an earlier cancel.
		if res.NumRows() != 50000 {
			t.Fatalf("uncancelled run returned %d rows, want 50000", res.NumRows())
		}
		t.Skip("query finished before cancellation landed")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := gov.InUse(); got != 0 {
		t.Fatalf("governor still holds %d bytes after cancelled query", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files leaked by cancelled query", len(ents))
	}
}

// TestExecuteTimeoutMidSpill is the deadline flavor: the error must be
// context.DeadlineExceeded and cleanup identical.
func TestExecuteTimeoutMidSpill(t *testing.T) {
	cat, plan := spillSortFixture(50000)
	gov := physical.NewMemGovernor(4 << 10)
	dir := t.TempDir()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	_, err := NewSession(cat, physical.Options{DOP: 1, Gov: gov, SpillDir: dir}).
		Execute(ctx, plan)
	if err == nil {
		t.Skip("query finished before the deadline")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if got := gov.InUse(); got != 0 {
		t.Fatalf("governor still holds %d bytes after timed-out query", got)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files leaked by timed-out query", len(ents))
	}
}
