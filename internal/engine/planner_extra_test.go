package engine

import (
	"strings"
	"testing"

	"repro/internal/sql"
	"repro/internal/types"
)

// Additional planner coverage: post-aggregation expression compilation,
// ORDER BY resolution modes, and error paths.

func TestCaseOverAggregateOutput(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, `SELECT city,
		CASE WHEN count(*) > 1 THEN 'busy' ELSE 'quiet' END AS load
		FROM users GROUP BY city ORDER BY city`)
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	byCity := map[string]string{}
	for _, row := range res.Rows {
		byCity[row[0].Str()] = row[1].Str()
	}
	if byCity["NYC"] != "busy" || byCity["LA"] != "quiet" || byCity["SF"] != "quiet" {
		t.Errorf("loads = %v", byCity)
	}
}

func TestArithmeticAndNegationOverAggregates(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT uid, -sum(amount) + count(*) AS w FROM orders GROUP BY uid ORDER BY uid")
	if res.NumRows() != 3 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	// uid 1: -(9.5+20) + 2 = -27.5.
	if res.Rows[0][1].Float() != -27.5 {
		t.Errorf("w = %v", res.Rows[0][1])
	}
	// NOT over an aggregate comparison in HAVING.
	res = run(t, cat, "SELECT uid FROM orders GROUP BY uid HAVING NOT count(*) > 1 ORDER BY uid")
	if res.NumRows() != 2 {
		t.Errorf("having-not rows = %d", res.NumRows())
	}
}

func TestGroupByNonColumnExpression(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT age / 10, count(*) FROM users WHERE age IS NOT NULL GROUP BY age / 10")
	if res.NumRows() != 2 { // 30/35 -> 3; 25 -> 2
		t.Fatalf("groups = %d: %v", res.NumRows(), res.Rows)
	}
}

func TestOrderByAliasAndInputColumn(t *testing.T) {
	cat := fixtureCatalog()
	// Alias in ORDER BY.
	res := run(t, cat, "SELECT name AS n FROM users ORDER BY n DESC LIMIT 1")
	if res.Rows[0][0].Str() != "dave" {
		t.Errorf("order by alias: %v", res.Rows[0])
	}
	// Projected-away input column in ORDER BY (pre-projection sort).
	res = run(t, cat, "SELECT name FROM users WHERE age IS NOT NULL ORDER BY age")
	if res.Rows[0][0].Str() != "bob" {
		t.Errorf("order by projected-away column: %v", res.Rows)
	}
	// Mixing both kinds is rejected with a clear error.
	_, err := testRunSQL(cat, "SELECT name AS n FROM users ORDER BY n, age")
	if err == nil || !strings.Contains(err.Error(), "ORDER BY") {
		t.Errorf("expected mixed ORDER BY error, got %v", err)
	}
}

func TestHavingUnknownColumn(t *testing.T) {
	cat := fixtureCatalog()
	if _, err := testRunSQL(cat, "SELECT city FROM users GROUP BY city HAVING zzz > 1"); err == nil {
		t.Error("expected HAVING resolution error")
	}
	if _, err := testRunSQL(cat, "SELECT city FROM users GROUP BY zzz"); err == nil {
		t.Error("expected GROUP BY resolution error")
	}
}

func TestScalarFuncInsideAggregate(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT sum(abs(-amount)) FROM orders")
	if res.Rows[0][0].Float() != 35.5 {
		t.Errorf("sum(abs(-amount)) = %v", res.Rows[0][0])
	}
}

func TestQualifiedStarExpansion(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT o.* FROM users u, orders o WHERE u.id = o.uid")
	if res.Schema.Arity() != 3 {
		t.Errorf("o.* should expand to 3 columns, got %d", res.Schema.Arity())
	}
	if res.NumRows() != 3 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestSubqueryAliasScoping(t *testing.T) {
	cat := fixtureCatalog()
	// The inner alias u is not visible outside; the outer alias q is.
	if _, err := testRunSQL(cat,
		"SELECT u.name FROM (SELECT name FROM users u) q"); err == nil {
		t.Error("inner alias must not leak")
	}
	res := run(t, cat, "SELECT q.name FROM (SELECT name FROM users) q WHERE q.name = 'ann'")
	if res.NumRows() != 1 {
		t.Errorf("rows = %d", res.NumRows())
	}
}

func TestExecuteUnknownTableAtRuntime(t *testing.T) {
	cat := fixtureCatalog()
	plan, err := NewPlanner(cat).Plan(mustParse(t, "SELECT name FROM users"))
	if err != nil {
		t.Fatal(err)
	}
	// Execute against a different catalog missing the table.
	if _, err := Execute(plan, NewCatalog()); err == nil {
		t.Error("expected unknown-table execution error")
	}
}

func mustParse(t *testing.T, q string) *sql.SelectStmt {
	t.Helper()
	s, err := sql.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestValuesSortedDeterministically(t *testing.T) {
	tb := NewTable(types.NewSchema("t", "a"))
	tb.AppendVals(iv(3))
	tb.AppendVals(iv(1))
	tb.AppendVals(iv(2))
	tb.SortRows()
	for i, want := range []int64{1, 2, 3} {
		if tb.Rows[i][0].Int() != want {
			t.Fatalf("sorted[%d] = %v", i, tb.Rows[i][0])
		}
	}
	if len(tb.Multiset()) != 3 {
		t.Error("multiset")
	}
	names := NewCatalog()
	names.Put(tb)
	if len(names.Names()) != 1 || names.Names()[0] != "t" {
		t.Error("catalog names")
	}
}
