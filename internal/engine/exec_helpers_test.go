package engine

// Test helpers that route every execution through the package's single
// non-deprecated entrypoint, Session.Execute, materializing the *Table
// shape the assertions compare.

import (
	"context"

	"repro/internal/algebra"
	"repro/internal/physical"
)

// testExecute runs plan against cat with default options.
func testExecute(plan algebra.Node, cat *Catalog) (*Table, error) {
	return testExecuteOpts(plan, cat, physical.Options{})
}

// testExecuteOpts runs plan against cat with the given physical options.
func testExecuteOpts(plan algebra.Node, cat *Catalog, opt physical.Options) (*Table, error) {
	res, err := NewSession(cat, opt).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return ResultTable(res), nil
}

// testRunSQL plans and runs a SQL string against cat.
func testRunSQL(cat *Catalog, query string) (*Table, error) {
	plan, err := NewPlanner(cat).PlanSQL(query)
	if err != nil {
		return nil, err
	}
	return testExecute(plan, cat)
}
