// Package engine is the classical bag-semantics DBMS substrate the UA-DB
// middleware rewrites into: an in-memory catalog of tables and a planner
// that compiles the SQL AST into the logical algebra of internal/algebra.
// Execution is delegated to internal/physical — the optimizer normalizes the
// logical plan and lowers it onto batch-at-a-time streaming operators (hash
// joins for equi-conditions, nested loops as the theta fallback). The paper
// ran against a commercial DBMS; all performance experiments here compare
// rewritten queries against deterministic queries on this same engine, so
// relative overheads remain meaningful (see DESIGN.md).
package engine

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/types"
	"repro/internal/vector"
)

// Table is a bag of rows with a schema. Duplicate rows represent
// multiplicity, exactly like a relational DBMS. Alongside the rows the
// table lazily maintains a columnar mirror (internal/vector) that the
// physical engine's typed operator paths scan; the mirror is invalidated by
// Append and rebuilt on the next query, so it is always consistent with
// Rows when read through Columns.
type Table struct {
	Schema types.Schema
	Rows   [][]types.Value

	colsMu sync.Mutex      // guards cols: concurrent read-only queries race on the lazy build
	cols   *vector.Columns // lazy columnar mirror; nil or stale until Columns()
}

// NewTable builds an empty table with the given schema.
func NewTable(schema types.Schema) *Table {
	return &Table{Schema: schema}
}

// Append adds a row; the row length must match the schema arity.
func (t *Table) Append(row []types.Value) {
	if len(row) != t.Schema.Arity() {
		panic(fmt.Sprintf("engine: row arity %d does not match schema %s", len(row), t.Schema))
	}
	t.Rows = append(t.Rows, row)
}

// AppendVals is Append with variadic values.
func (t *Table) AppendVals(vals ...types.Value) { t.Append(vals) }

// NumRows returns the number of rows.
func (t *Table) NumRows() int { return len(t.Rows) }

// Columns returns the table's columnar mirror, building it on first use and
// rebuilding it after the row count changed (Append invalidates by length;
// callers mutating retained rows in place were already outside the
// contract). The build is mutex-guarded so concurrent read-only queries on
// one catalog — safe before the mirror existed — stay safe: they serialize
// only on the first build, not per query. Mutation (Append) remains
// non-concurrent with queries, as before.
func (t *Table) Columns() *vector.Columns {
	t.colsMu.Lock()
	defer t.colsMu.Unlock()
	if t.cols == nil || t.cols.N != len(t.Rows) {
		t.cols = vector.FromRows(t.Rows, t.Schema.Arity())
	}
	return t.cols
}

// Clone returns a deep copy.
func (t *Table) Clone() *Table {
	c := NewTable(t.Schema)
	c.Rows = make([][]types.Value, len(t.Rows))
	for i, r := range t.Rows {
		row := make([]types.Value, len(r))
		copy(row, r)
		c.Rows[i] = row
	}
	return c
}

// SortRows orders rows lexicographically in place for deterministic output.
func (t *Table) SortRows() {
	sort.Slice(t.Rows, func(i, j int) bool {
		return types.Tuple(t.Rows[i]).Compare(types.Tuple(t.Rows[j])) < 0
	})
}

// Multiset returns the bag of rows as a key→count map, for order-insensitive
// comparison in tests.
func (t *Table) Multiset() map[string]int {
	m := make(map[string]int, len(t.Rows))
	for _, r := range t.Rows {
		m[types.Tuple(r).Key()]++
	}
	return m
}

// EqualBag reports whether two tables contain the same bag of rows.
func (t *Table) EqualBag(o *Table) bool {
	if t.NumRows() != o.NumRows() {
		return false
	}
	m := t.Multiset()
	for _, r := range o.Rows {
		k := types.Tuple(r).Key()
		m[k]--
		if m[k] < 0 {
			return false
		}
	}
	return true
}

// String renders the table with a header, rows sorted.
func (t *Table) String() string {
	var sb strings.Builder
	sb.WriteString(strings.Join(t.Schema.Attrs, " | "))
	sb.WriteByte('\n')
	c := t.Clone()
	c.SortRows()
	for _, r := range c.Rows {
		parts := make([]string, len(r))
		for i, v := range r {
			parts[i] = v.String()
		}
		sb.WriteString(strings.Join(parts, " | "))
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Catalog is a named collection of tables. Registration and lookup are
// safe for concurrent use — the query server resolves annotated tables
// (which register freshly encoded tables mid-query) from many sessions at
// once — but a *Table's rows must still not be mutated concurrently with
// queries reading it.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog { return &Catalog{tables: make(map[string]*Table)} }

// Put registers a table under its schema name.
func (c *Catalog) Put(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(t.Schema.Name)] = t
}

// PutAs registers a table under an explicit name.
func (c *Catalog) PutAs(name string, t *Table) {
	t.Schema.Name = name
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(name)] = t
}

// Get returns the named table or nil.
func (c *Catalog) Get(name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[strings.ToLower(name)]
}

// Names returns the sorted table names.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for n := range c.tables {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
