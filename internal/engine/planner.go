package engine

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/types"
)

// scopeCol names one column position of an intermediate result.
type scopeCol struct {
	qualifier string
	name      string
}

// scope maps column positions to (qualifier, name) pairs for name
// resolution.
type scope struct {
	cols []scopeCol
}

func (s *scope) concat(o *scope) *scope {
	out := &scope{cols: make([]scopeCol, 0, len(s.cols)+len(o.cols))}
	out.cols = append(out.cols, s.cols...)
	out.cols = append(out.cols, o.cols...)
	return out
}

// resolve finds the position of a column reference. Unqualified names must
// be unambiguous.
func (s *scope) resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s.cols {
		if !strings.EqualFold(c.name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("engine: ambiguous column %q", name)
		}
		found = i
	}
	if found < 0 {
		if qualifier != "" {
			return 0, fmt.Errorf("engine: unknown column %s.%s", qualifier, name)
		}
		return 0, fmt.Errorf("engine: unknown column %q", name)
	}
	return found, nil
}

// Planner compiles SQL statements into logical plans against a catalog.
type Planner struct {
	cat *Catalog
}

// NewPlanner returns a planner over the catalog.
func NewPlanner(cat *Catalog) *Planner { return &Planner{cat: cat} }

// Plan compiles a SELECT statement (with any UNION ALL chain) into a logical
// plan. Model annotations (IS TI / IS X / IS CTABLE) are not handled here;
// the rewrite package resolves them before planning.
func (p *Planner) Plan(stmt *sql.SelectStmt) (algebra.Node, error) {
	node, _, err := p.planSelect(stmt)
	return node, err
}

// PlanSQL parses and compiles a SQL string without executing it.
func (p *Planner) PlanSQL(query string) (algebra.Node, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return p.Plan(stmt)
}

// Run plans and executes a SQL string.
//
// Deprecated: plan with PlanSQL and execute through Session.Execute with a
// context. Kept as a thin wrapper for external callers only.
func (p *Planner) Run(query string) (*Table, error) {
	plan, err := p.PlanSQL(query)
	if err != nil {
		return nil, err
	}
	res, err := NewSession(p.cat, physical.Options{}).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return ResultTable(res), nil
}

// RunStmt plans and executes a parsed statement.
//
// Deprecated: plan with Plan and execute through Session.Execute with a
// context. Kept as a thin wrapper for external callers only.
func (p *Planner) RunStmt(stmt *sql.SelectStmt) (*Table, error) {
	plan, err := p.Plan(stmt)
	if err != nil {
		return nil, err
	}
	res, err := NewSession(p.cat, physical.Options{}).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return ResultTable(res), nil
}

func (p *Planner) planSelect(stmt *sql.SelectStmt) (algebra.Node, *scope, error) {
	node, sc, err := p.planSingle(stmt)
	if err != nil {
		return nil, nil, err
	}
	for u := stmt.Union; u != nil; u = u.Union {
		right, _, err := p.planSingle(u)
		if err != nil {
			return nil, nil, err
		}
		if right.Schema().Arity() != node.Schema().Arity() {
			return nil, nil, fmt.Errorf("engine: UNION ALL arity mismatch")
		}
		node = &algebra.UnionAll{Left: node, Right: right}
	}
	return node, sc, nil
}

// planSingle plans one SELECT block, ignoring its Union chain.
func (p *Planner) planSingle(stmt *sql.SelectStmt) (algebra.Node, *scope, error) {
	if len(stmt.From) == 0 {
		return nil, nil, fmt.Errorf("engine: SELECT without FROM is not supported")
	}
	for _, fi := range stmt.From {
		if fi.Primary.Model != nil {
			return nil, nil, fmt.Errorf("engine: table %q has a model annotation; use the rewrite frontend",
				fi.Primary.Table)
		}
		for _, j := range fi.Joins {
			if j.Right.Model != nil {
				return nil, nil, fmt.Errorf("engine: table %q has a model annotation; use the rewrite frontend",
					j.Right.Table)
			}
		}
	}

	node, sc, conjuncts, err := p.planFrom(stmt.From, stmt.Where)
	if err != nil {
		return nil, nil, err
	}
	// Leftover WHERE conjuncts that were not pushed into joins.
	if len(conjuncts) > 0 {
		pred, err := compileConjunction(conjuncts, sc)
		if err != nil {
			return nil, nil, err
		}
		node = &algebra.Filter{Input: node, Pred: pred}
	}

	// Aggregation?
	hasAgg := len(stmt.GroupBy) > 0 || stmt.Having != nil
	for _, it := range stmt.Items {
		if !it.Star && containsAggregate(it.Expr) {
			hasAgg = true
		}
	}
	if hasAgg {
		return p.planAggregate(stmt, node, sc)
	}

	// Plain projection. ORDER BY may reference either output columns
	// (aliases) or input columns that are projected away; when a key only
	// resolves against the input, sort before projecting.
	exprs, names, err := p.compileSelectList(stmt.Items, sc)
	if err != nil {
		return nil, nil, err
	}
	outScope := projScope(names)
	var preKeys, postKeys []algebra.SortKey
	for _, oi := range stmt.OrderBy {
		if e, err := compileExpr(oi.Expr, outScope); err == nil {
			postKeys = append(postKeys, algebra.SortKey{Expr: e, Desc: oi.Desc})
			continue
		}
		e, err := compileExpr(oi.Expr, sc)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: ORDER BY: %w", err)
		}
		preKeys = append(preKeys, algebra.SortKey{Expr: e, Desc: oi.Desc})
	}
	if len(preKeys) > 0 && len(postKeys) > 0 {
		return nil, nil, fmt.Errorf("engine: ORDER BY mixing projected-away and output columns is not supported")
	}
	if len(preKeys) > 0 {
		node = &algebra.Sort{Input: node, Keys: preKeys}
	}
	node = &algebra.Project{Input: node, Exprs: exprs, Names: names}
	if len(postKeys) > 0 {
		node = &algebra.Sort{Input: node, Keys: postKeys}
	}
	if stmt.Distinct {
		node = &algebra.Distinct{Input: node}
	}
	if stmt.Limit >= 0 {
		node = &algebra.Limit{Input: node, N: stmt.Limit}
	}
	return node, outScope, nil
}

func projScope(names []string) *scope {
	sc := &scope{cols: make([]scopeCol, len(names))}
	for i, n := range names {
		sc.cols[i] = scopeCol{name: n}
	}
	return sc
}

func (p *Planner) finishSelect(stmt *sql.SelectStmt, node algebra.Node, sc *scope) (algebra.Node, *scope, error) {
	if stmt.Distinct {
		node = &algebra.Distinct{Input: node}
	}
	if len(stmt.OrderBy) > 0 {
		keys := make([]algebra.SortKey, len(stmt.OrderBy))
		for i, oi := range stmt.OrderBy {
			e, err := compileExpr(oi.Expr, sc)
			if err != nil {
				return nil, nil, fmt.Errorf("engine: ORDER BY: %w", err)
			}
			keys[i] = algebra.SortKey{Expr: e, Desc: oi.Desc}
		}
		node = &algebra.Sort{Input: node, Keys: keys}
	}
	if stmt.Limit >= 0 {
		node = &algebra.Limit{Input: node, N: stmt.Limit}
	}
	return node, sc, nil
}

// planFrom builds the join tree for the FROM clause, pushing WHERE
// conjuncts into joins as soon as their columns are in scope (greedy
// left-deep planning with hash-join key extraction). It returns the plan,
// the scope, and the conjuncts that could not be pushed down.
func (p *Planner) planFrom(items []sql.FromItem, where sql.Expr) (algebra.Node, *scope, []sql.Expr, error) {
	conjuncts := splitConjuncts(where)
	used := make([]bool, len(conjuncts))

	var node algebra.Node
	var sc *scope
	addPrimary := func(prim sql.Primary, onConds []sql.Expr) error {
		right, rightScope, err := p.planPrimary(prim)
		if err != nil {
			return err
		}
		if node == nil {
			node = right
			sc = rightScope
			// Apply ON conditions (none possible on the first primary).
			return nil
		}
		combined := sc.concat(rightScope)
		// Gather applicable conditions: explicit ON plus any WHERE conjunct
		// that becomes resolvable with the new primary but references it.
		conds := append([]sql.Expr{}, onConds...)
		for i, cj := range conjuncts {
			if used[i] {
				continue
			}
			if resolvable(cj, combined) && !resolvable(cj, sc) {
				conds = append(conds, cj)
				used[i] = true
			}
		}
		join := &algebra.Join{Left: node, Right: right}
		var residual []sql.Expr
		for _, cj := range conds {
			// equiPair returns a left-relative and a right-relative position,
			// exactly what the hash join expects.
			if li, ri, ok := equiPair(cj, sc, rightScope); ok {
				join.EquiL = append(join.EquiL, li)
				join.EquiR = append(join.EquiR, ri)
				continue
			}
			residual = append(residual, cj)
		}
		if len(residual) > 0 {
			pred, err := compileConjunction(residual, combined)
			if err != nil {
				return err
			}
			join.Residual = pred
		}
		node = join
		sc = combined
		return nil
	}

	for _, fi := range items {
		if err := addPrimary(fi.Primary, nil); err != nil {
			return nil, nil, nil, err
		}
		for _, jc := range fi.Joins {
			if err := addPrimary(jc.Right, splitConjuncts(jc.On)); err != nil {
				return nil, nil, nil, err
			}
		}
	}
	var leftover []sql.Expr
	for i, cj := range conjuncts {
		if !used[i] {
			leftover = append(leftover, cj)
		}
	}
	return node, sc, leftover, nil
}

func (p *Planner) planPrimary(prim sql.Primary) (algebra.Node, *scope, error) {
	if prim.Subquery != nil {
		node, _, err := p.planSelect(prim.Subquery)
		if err != nil {
			return nil, nil, err
		}
		schema := node.Schema()
		sc := &scope{cols: make([]scopeCol, schema.Arity())}
		for i, a := range schema.Attrs {
			sc.cols[i] = scopeCol{qualifier: prim.Alias, name: a}
		}
		return node, sc, nil
	}
	t := p.cat.Get(prim.Table)
	if t == nil {
		return nil, nil, fmt.Errorf("engine: unknown table %q", prim.Table)
	}
	scan := &algebra.Scan{Table: prim.Table, TblSchema: t.Schema}
	alias := prim.Alias
	if alias == "" {
		alias = prim.Table
	}
	sc := &scope{cols: make([]scopeCol, t.Schema.Arity())}
	for i, a := range t.Schema.Attrs {
		sc.cols[i] = scopeCol{qualifier: alias, name: a}
	}
	return scan, sc, nil
}

// splitConjuncts flattens a WHERE expression into AND-connected conjuncts.
func splitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(sql.Binary); ok && b.Op == sql.BinAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// resolvable reports whether every column of e resolves in sc.
func resolvable(e sql.Expr, sc *scope) bool {
	ok := true
	walkColumns(e, func(c sql.ColumnRef) {
		if _, err := sc.resolve(c.Qualifier, c.Name); err != nil {
			ok = false
		}
	})
	return ok
}

// equiPair recognizes `l.col = r.col` conjuncts across the two scopes and
// returns the left-relative and right-relative positions.
func equiPair(e sql.Expr, left, right *scope) (int, int, bool) {
	b, ok := e.(sql.Binary)
	if !ok || b.Op != sql.BinEq {
		return 0, 0, false
	}
	lc, lok := b.L.(sql.ColumnRef)
	rc, rok := b.R.(sql.ColumnRef)
	if !lok || !rok {
		return 0, 0, false
	}
	li, lerr := left.resolve(lc.Qualifier, lc.Name)
	ri, rerr := right.resolve(rc.Qualifier, rc.Name)
	if lerr == nil && rerr == nil {
		return li, ri, true
	}
	// Try flipped orientation.
	li2, lerr2 := left.resolve(rc.Qualifier, rc.Name)
	ri2, rerr2 := right.resolve(lc.Qualifier, lc.Name)
	if lerr2 == nil && rerr2 == nil {
		return li2, ri2, true
	}
	return 0, 0, false
}

func compileConjunction(conjuncts []sql.Expr, sc *scope) (algebra.Expr, error) {
	var out algebra.Expr
	for _, cj := range conjuncts {
		e, err := compileExpr(cj, sc)
		if err != nil {
			return nil, err
		}
		if out == nil {
			out = e
		} else {
			out = algebra.Bin{Op: algebra.OpAnd, L: out, R: e}
		}
	}
	return out, nil
}

// compileSelectList expands stars and compiles each item.
func (p *Planner) compileSelectList(items []sql.SelectItem, sc *scope) ([]algebra.Expr, []string, error) {
	var exprs []algebra.Expr
	var names []string
	for _, it := range items {
		if it.Star {
			for i, c := range sc.cols {
				if it.Qualifier != "" && !strings.EqualFold(c.qualifier, it.Qualifier) {
					continue
				}
				exprs = append(exprs, algebra.Col{Idx: i, Name: c.name})
				names = append(names, c.name)
			}
			continue
		}
		e, err := compileExpr(it.Expr, sc)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		names = append(names, itemName(it))
	}
	return exprs, names, nil
}

func itemName(it sql.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if c, ok := it.Expr.(sql.ColumnRef); ok {
		return c.Name
	}
	return it.Expr.String()
}

// compileExpr lowers a SQL expression to a compiled algebra expression.
func compileExpr(e sql.Expr, sc *scope) (algebra.Expr, error) {
	switch n := e.(type) {
	case sql.ColumnRef:
		i, err := sc.resolve(n.Qualifier, n.Name)
		if err != nil {
			return nil, err
		}
		return algebra.Col{Idx: i, Name: n.Name}, nil
	case sql.Literal:
		return algebra.Const{V: n.Value}, nil
	case sql.Binary:
		l, err := compileExpr(n.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := compileExpr(n.R, sc)
		if err != nil {
			return nil, err
		}
		op, ok := binOpMap[n.Op]
		if !ok {
			return nil, fmt.Errorf("engine: unsupported operator")
		}
		return algebra.Bin{Op: op, L: l, R: r}, nil
	case sql.Unary:
		inner, err := compileExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		if n.Not {
			return algebra.Not{E: inner}, nil
		}
		return algebra.Neg{E: inner}, nil
	case sql.Between:
		ex, err := compileExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		lo, err := compileExpr(n.Lo, sc)
		if err != nil {
			return nil, err
		}
		hi, err := compileExpr(n.Hi, sc)
		if err != nil {
			return nil, err
		}
		return algebra.BetweenE{E: ex, Lo: lo, Hi: hi, Negated: n.Negated}, nil
	case sql.InList:
		ex, err := compileExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		list := make([]algebra.Expr, len(n.List))
		for i, le := range n.List {
			list[i], err = compileExpr(le, sc)
			if err != nil {
				return nil, err
			}
		}
		return algebra.InE{E: ex, List: list, Negated: n.Negated}, nil
	case sql.Like:
		ex, err := compileExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		pat, err := compileExpr(n.Pattern, sc)
		if err != nil {
			return nil, err
		}
		return algebra.LikeE{E: ex, Pattern: pat, Negated: n.Negated}, nil
	case sql.IsNull:
		ex, err := compileExpr(n.E, sc)
		if err != nil {
			return nil, err
		}
		return algebra.IsNullE{E: ex, Negated: n.Negated}, nil
	case sql.Case:
		var operand algebra.Expr
		var err error
		if n.Operand != nil {
			operand, err = compileExpr(n.Operand, sc)
			if err != nil {
				return nil, err
			}
		}
		whens := make([]algebra.CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			c, err := compileExpr(w.Cond, sc)
			if err != nil {
				return nil, err
			}
			r, err := compileExpr(w.Result, sc)
			if err != nil {
				return nil, err
			}
			whens[i] = algebra.CaseWhen{Cond: c, Result: r}
		}
		var els algebra.Expr
		if n.Else != nil {
			els, err = compileExpr(n.Else, sc)
			if err != nil {
				return nil, err
			}
		}
		return algebra.CaseExpr{Operand: operand, Whens: whens, Else: els}, nil
	case sql.FuncCall:
		name := strings.ToLower(n.Name)
		// min/max with two or more arguments act as scalar least/greatest
		// (the rewriting of Figure 8 relies on min(Q1.C, Q2.C)).
		if (name == "min" || name == "max") && len(n.Args) >= 2 {
			if name == "min" {
				name = "least"
			} else {
				name = "greatest"
			}
		}
		if algebra.ScalarFuncs[name] {
			args := make([]algebra.Expr, len(n.Args))
			for i, a := range n.Args {
				var err error
				args[i], err = compileExpr(a, sc)
				if err != nil {
					return nil, err
				}
			}
			return algebra.ScalarFunc{Name: name, Args: args}, nil
		}
		if _, ok := algebra.AggName(name); ok {
			return nil, fmt.Errorf("engine: aggregate %s not allowed here", name)
		}
		return nil, fmt.Errorf("engine: unknown function %q", n.Name)
	default:
		return nil, fmt.Errorf("engine: unsupported expression %T", e)
	}
}

var binOpMap = map[sql.BinOp]algebra.BinOp{
	sql.BinOr: algebra.OpOr, sql.BinAnd: algebra.OpAnd, sql.BinEq: algebra.OpEq,
	sql.BinNe: algebra.OpNe, sql.BinLt: algebra.OpLt, sql.BinLe: algebra.OpLe,
	sql.BinGt: algebra.OpGt, sql.BinGe: algebra.OpGe, sql.BinAdd: algebra.OpAdd,
	sql.BinSub: algebra.OpSub, sql.BinMul: algebra.OpMul, sql.BinDiv: algebra.OpDiv,
	sql.BinMod: algebra.OpMod, sql.BinConcat: algebra.OpConcat,
}

// walkColumns visits every column reference in e.
func walkColumns(e sql.Expr, f func(sql.ColumnRef)) {
	switch n := e.(type) {
	case sql.ColumnRef:
		f(n)
	case sql.Binary:
		walkColumns(n.L, f)
		walkColumns(n.R, f)
	case sql.Unary:
		walkColumns(n.E, f)
	case sql.Between:
		walkColumns(n.E, f)
		walkColumns(n.Lo, f)
		walkColumns(n.Hi, f)
	case sql.InList:
		walkColumns(n.E, f)
		for _, x := range n.List {
			walkColumns(x, f)
		}
	case sql.Like:
		walkColumns(n.E, f)
		walkColumns(n.Pattern, f)
	case sql.IsNull:
		walkColumns(n.E, f)
	case sql.Case:
		if n.Operand != nil {
			walkColumns(n.Operand, f)
		}
		for _, w := range n.Whens {
			walkColumns(w.Cond, f)
			walkColumns(w.Result, f)
		}
		if n.Else != nil {
			walkColumns(n.Else, f)
		}
	case sql.FuncCall:
		for _, a := range n.Args {
			walkColumns(a, f)
		}
	}
}

// containsAggregate reports whether e contains an aggregate function call.
func containsAggregate(e sql.Expr) bool {
	found := false
	var walk func(sql.Expr)
	walk = func(x sql.Expr) {
		switch n := x.(type) {
		case sql.FuncCall:
			name := strings.ToLower(n.Name)
			if n.Star {
				found = true
				return
			}
			if _, ok := algebra.AggName(name); ok && len(n.Args) == 1 {
				found = true
				return
			}
			for _, a := range n.Args {
				walk(a)
			}
		case sql.Binary:
			walk(n.L)
			walk(n.R)
		case sql.Unary:
			walk(n.E)
		case sql.Between:
			walk(n.E)
			walk(n.Lo)
			walk(n.Hi)
		case sql.InList:
			walk(n.E)
			for _, y := range n.List {
				walk(y)
			}
		case sql.Like:
			walk(n.E)
			walk(n.Pattern)
		case sql.IsNull:
			walk(n.E)
		case sql.Case:
			if n.Operand != nil {
				walk(n.Operand)
			}
			for _, w := range n.Whens {
				walk(w.Cond)
				walk(w.Result)
			}
			if n.Else != nil {
				walk(n.Else)
			}
		}
	}
	walk(e)
	return found
}

// planAggregate lowers a grouped SELECT into Aggregate + Filter(HAVING) +
// Project.
func (p *Planner) planAggregate(stmt *sql.SelectStmt, input algebra.Node, sc *scope) (algebra.Node, *scope, error) {
	agg := &algebra.Aggregate{Input: input}
	// Group-by keys.
	for _, g := range stmt.GroupBy {
		e, err := compileExpr(g, sc)
		if err != nil {
			return nil, nil, fmt.Errorf("engine: GROUP BY: %w", err)
		}
		agg.GroupBy = append(agg.GroupBy, e)
		name := g.String()
		if c, ok := g.(sql.ColumnRef); ok {
			name = c.Name
		}
		agg.GroupNames = append(agg.GroupNames, name)
	}
	// Collect aggregate calls from the select list and HAVING.
	aggIdx := make(map[string]int) // canonical string -> agg position
	collect := func(e sql.Expr) error {
		var err error
		var walk func(sql.Expr)
		walk = func(x sql.Expr) {
			if err != nil {
				return
			}
			if fc, ok := x.(sql.FuncCall); ok {
				name := strings.ToLower(fc.Name)
				if f, isAgg := algebra.AggName(name); isAgg && (fc.Star || len(fc.Args) == 1) {
					key := fc.String()
					if _, dup := aggIdx[key]; dup {
						return
					}
					spec := algebra.AggSpec{Func: f, Star: fc.Star, Name: key}
					if !fc.Star {
						arg, cerr := compileExpr(fc.Args[0], sc)
						if cerr != nil {
							err = cerr
							return
						}
						spec.Arg = arg
					}
					aggIdx[key] = len(agg.Aggs)
					agg.Aggs = append(agg.Aggs, spec)
					return
				}
			}
			switch n := x.(type) {
			case sql.Binary:
				walk(n.L)
				walk(n.R)
			case sql.Unary:
				walk(n.E)
			case sql.Case:
				if n.Operand != nil {
					walk(n.Operand)
				}
				for _, w := range n.Whens {
					walk(w.Cond)
					walk(w.Result)
				}
				if n.Else != nil {
					walk(n.Else)
				}
			case sql.FuncCall:
				for _, a := range n.Args {
					walk(a)
				}
			}
		}
		walk(e)
		return err
	}
	for _, it := range stmt.Items {
		if it.Star {
			return nil, nil, fmt.Errorf("engine: SELECT * with GROUP BY is not supported")
		}
		if err := collect(it.Expr); err != nil {
			return nil, nil, err
		}
	}
	if stmt.Having != nil {
		if err := collect(stmt.Having); err != nil {
			return nil, nil, err
		}
	}

	// Scope over the aggregate output: group columns (by original names and
	// positions) then aggregate results (by canonical string).
	aggScope := &scope{}
	for i, g := range stmt.GroupBy {
		name := agg.GroupNames[i]
		qual := ""
		if c, ok := g.(sql.ColumnRef); ok {
			qual = c.Qualifier
		}
		aggScope.cols = append(aggScope.cols, scopeCol{qualifier: qual, name: name})
	}
	for _, a := range agg.Aggs {
		aggScope.cols = append(aggScope.cols, scopeCol{name: a.Name})
	}

	var node algebra.Node = agg
	if stmt.Having != nil {
		pred, err := compilePostAgg(stmt.Having, aggScope, aggIdx, len(stmt.GroupBy))
		if err != nil {
			return nil, nil, fmt.Errorf("engine: HAVING: %w", err)
		}
		node = &algebra.Filter{Input: node, Pred: pred}
	}
	var exprs []algebra.Expr
	var names []string
	for _, it := range stmt.Items {
		e, err := compilePostAgg(it.Expr, aggScope, aggIdx, len(stmt.GroupBy))
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		names = append(names, itemName(it))
	}
	node = &algebra.Project{Input: node, Exprs: exprs, Names: names}
	return p.finishSelect(stmt, node, projScope(names))
}

// compilePostAgg compiles an expression over the aggregate output scope,
// replacing aggregate calls with references to their computed columns and
// expressions that textually match a GROUP BY key with references to the
// key's column (so `SELECT age / 10 ... GROUP BY age / 10` resolves).
func compilePostAgg(e sql.Expr, sc *scope, aggIdx map[string]int, nGroups int) (algebra.Expr, error) {
	if fc, ok := e.(sql.FuncCall); ok {
		if i, isAgg := aggIdx[fc.String()]; isAgg {
			return algebra.Col{Idx: nGroups + i, Name: fc.String()}, nil
		}
	}
	if _, isCol := e.(sql.ColumnRef); !isCol {
		for i := 0; i < nGroups && i < len(sc.cols); i++ {
			if sc.cols[i].name == e.String() {
				return algebra.Col{Idx: i, Name: sc.cols[i].name}, nil
			}
		}
	}
	switch n := e.(type) {
	case sql.Binary:
		l, err := compilePostAgg(n.L, sc, aggIdx, nGroups)
		if err != nil {
			return nil, err
		}
		r, err := compilePostAgg(n.R, sc, aggIdx, nGroups)
		if err != nil {
			return nil, err
		}
		return algebra.Bin{Op: binOpMap[n.Op], L: l, R: r}, nil
	case sql.Unary:
		inner, err := compilePostAgg(n.E, sc, aggIdx, nGroups)
		if err != nil {
			return nil, err
		}
		if n.Not {
			return algebra.Not{E: inner}, nil
		}
		return algebra.Neg{E: inner}, nil
	case sql.Case:
		// CASE over aggregate outputs: recompile branch-wise.
		var operand algebra.Expr
		var err error
		if n.Operand != nil {
			operand, err = compilePostAgg(n.Operand, sc, aggIdx, nGroups)
			if err != nil {
				return nil, err
			}
		}
		whens := make([]algebra.CaseWhen, len(n.Whens))
		for i, w := range n.Whens {
			c, err := compilePostAgg(w.Cond, sc, aggIdx, nGroups)
			if err != nil {
				return nil, err
			}
			r, err := compilePostAgg(w.Result, sc, aggIdx, nGroups)
			if err != nil {
				return nil, err
			}
			whens[i] = algebra.CaseWhen{Cond: c, Result: r}
		}
		var els algebra.Expr
		if n.Else != nil {
			els, err = compilePostAgg(n.Else, sc, aggIdx, nGroups)
			if err != nil {
				return nil, err
			}
		}
		return algebra.CaseExpr{Operand: operand, Whens: whens, Else: els}, nil
	default:
		return compileExpr(e, sc)
	}
}

// TableToSchema exposes a table's schema for callers outside the package.
func TableToSchema(t *Table) types.Schema { return t.Schema }
