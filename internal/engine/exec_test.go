package engine

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/types"
)

// TestPlanShapeHashJoinForEquiJoins pins the acceptance criterion: SQL
// equi-joins must execute via the hash-join physical operator, theta joins
// via the nested-loop fallback.
func TestPlanShapeHashJoinForEquiJoins(t *testing.T) {
	cat := fixtureCatalog()
	p := NewPlanner(cat)

	plan, err := p.Plan(sql.MustParse(
		"SELECT u.name, o.amount FROM users u, orders o WHERE u.id = o.uid AND o.amount > 6"))
	if err != nil {
		t.Fatal(err)
	}
	s, err := ExplainPhysical(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "HashJoin") {
		t.Errorf("equi-join must lower to HashJoin:\n%s", s)
	}
	if strings.Contains(s, "NestedLoopJoin") {
		t.Errorf("equi-join must not nested-loop:\n%s", s)
	}
	// The amount filter must sit below the join, on the orders side.
	if !strings.Contains(s, "Filter") {
		t.Errorf("pushed filter missing from physical plan:\n%s", s)
	}

	plan, err = p.Plan(sql.MustParse(
		"SELECT u.id, o.oid FROM users u, orders o WHERE o.uid < u.id"))
	if err != nil {
		t.Fatal(err)
	}
	s, err = ExplainPhysical(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(s, "NestedLoopJoin") {
		t.Errorf("theta join must lower to NestedLoopJoin:\n%s", s)
	}
}

// TestLimitDoesNotAliasSource is the regression test for the seed executor's
// Limit, which returned in.Rows[:n] and let downstream mutation corrupt the
// base table.
func TestLimitDoesNotAliasSource(t *testing.T) {
	cat := NewCatalog()
	src := NewTable(types.NewSchema("t", "a"))
	src.AppendVals(iv(1))
	src.AppendVals(iv(2))
	src.AppendVals(iv(3))
	cat.Put(src)

	plan := &algebra.Limit{
		Input: &algebra.Scan{Table: "t", TblSchema: src.Schema},
		N:     2,
	}
	out, err := testExecute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if out.NumRows() != 2 {
		t.Fatalf("rows = %d", out.NumRows())
	}
	// Appending must not overwrite the source's backing array...
	out.AppendVals(iv(99))
	// ...and mutating an output row must not reach the source.
	out.Rows[0][0] = iv(42)
	for i, want := range []int64{1, 2, 3} {
		if src.Rows[i][0].Int() != want {
			t.Fatalf("source row %d corrupted: %v", i, src.Rows[i])
		}
	}
}

// TestExecuteSchemaMismatch runs a plan against a catalog whose table has a
// different arity than the plan was compiled for.
func TestExecuteSchemaMismatch(t *testing.T) {
	cat := fixtureCatalog()
	plan, err := NewPlanner(cat).Plan(mustParse(t, "SELECT name FROM users WHERE age > 26"))
	if err != nil {
		t.Fatal(err)
	}
	other := NewCatalog()
	shrunk := NewTable(types.NewSchema("users", "id", "name"))
	shrunk.AppendVals(iv(1), sv("x"))
	other.Put(shrunk)
	if _, err := testExecute(plan, other); err == nil {
		t.Error("expected a schema-mismatch execution error")
	}
}

// TestHashAndNestedLoopAgree compares the optimizer's hash-join execution of
// an equality join (via Execute) against the raw nested-loop lowering of the
// same plan, on a randomized workload.
func TestHashAndNestedLoopAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		cat := NewCatalog()
		mk := func(name string) *Table {
			tb := NewTable(types.NewSchema(name, "k", "v"))
			for i := 0; i < 10+rng.Intn(50); i++ {
				key := types.Null()
				if rng.Intn(8) > 0 {
					key = iv(int64(rng.Intn(6)))
				}
				tb.AppendVals(key, iv(int64(i)))
			}
			cat.Put(tb)
			return tb
		}
		l, r := mk("l"), mk("r")
		// The join carries the equality only as a residual: Execute's
		// optimizer must turn it into a hash join; lowering the plan as-is
		// keeps the nested loop.
		plan := &algebra.Join{
			Left:  &algebra.Scan{Table: "l", TblSchema: l.Schema},
			Right: &algebra.Scan{Table: "r", TblSchema: r.Schema},
			Residual: algebra.Bin{Op: algebra.OpEq,
				L: algebra.Col{Idx: 0, Name: "k"},
				R: algebra.Col{Idx: 2, Name: "k"},
			},
		}
		s, err := ExplainPhysical(plan, cat)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(s, "HashJoin") {
			t.Fatalf("optimizer did not extract the equi key:\n%s", s)
		}

		hashRes, err := testExecute(plan, cat)
		if err != nil {
			t.Fatal(err)
		}
		nlOp, err := physical.Lower(plan, cat)
		if err != nil {
			t.Fatal(err)
		}
		nlRows, err := physical.Drain(nlOp)
		if err != nil {
			t.Fatal(err)
		}
		nlRes := NewTable(nlOp.Schema())
		nlRes.Rows = nlRows
		if !hashRes.EqualBag(nlRes) {
			t.Fatalf("hash and nested-loop joins disagree:\nhash:\n%s\nnested:\n%s", hashRes, nlRes)
		}
	}
}

// TestMalformedPlanErrorsNotPanics: a plan whose expressions reference
// columns outside its schema must surface a validation error from Execute,
// not a panic from the optimizer.
func TestMalformedPlanErrorsNotPanics(t *testing.T) {
	cat := fixtureCatalog()
	users := cat.Get("users")
	bad := &algebra.Filter{
		Input: &algebra.Scan{Table: "users", TblSchema: users.Schema},
		Pred:  algebra.Col{Idx: 99, Name: "ghost"},
	}
	if _, err := testExecute(bad, cat); err == nil || !strings.Contains(err.Error(), "references column 99") {
		t.Errorf("err = %v, want column-range validation error", err)
	}
	if _, err := ExplainPhysical(bad, cat); err == nil {
		t.Error("ExplainPhysical must validate too")
	}
}

// TestRuntimeResolvedScanSchemas: plans built with empty Scan.TblSchema rely
// on lowering-time resolution (the old executor resolved schemas at run
// time). They must skip static optimization and still execute correctly.
func TestRuntimeResolvedScanSchemas(t *testing.T) {
	cat := fixtureCatalog()
	plan := &algebra.Filter{
		Input: &algebra.Scan{Table: "users"},
		Pred: algebra.Bin{Op: algebra.OpGt,
			L: algebra.Col{Idx: 2, Name: "age"},
			R: algebra.Const{V: iv(26)}},
	}
	res, err := testExecute(plan, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", res.NumRows())
	}
	// A join over runtime-resolved scans: the left arity is statically
	// unknown, so conjunct classification would be wrong — the optimizer
	// must stand aside and the nested loop must still be correct.
	join := &algebra.Join{
		Left:  &algebra.Scan{Table: "users"},
		Right: &algebra.Scan{Table: "orders"},
		Residual: algebra.Bin{Op: algebra.OpEq,
			L: algebra.Col{Idx: 0, Name: "id"},
			R: algebra.Col{Idx: 5, Name: "uid"}},
	}
	res, err = testExecute(join, cat)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 3 {
		t.Errorf("join rows = %d, want 3", res.NumRows())
	}
}

// TestEmptyInputJoinsSQL drives empty-side joins through the full SQL path.
func TestEmptyInputJoinsSQL(t *testing.T) {
	cat := fixtureCatalog()
	empty := NewTable(types.NewSchema("nothing", "id", "x"))
	cat.Put(empty)
	for _, q := range []string{
		"SELECT u.name FROM users u, nothing n WHERE u.id = n.id",
		"SELECT u.name FROM nothing n, users u WHERE u.id = n.id",
		"SELECT a.x FROM nothing a, nothing b WHERE a.id = b.id",
		"SELECT u.name FROM users u, nothing n WHERE n.id < u.id", // theta
	} {
		res := run(t, cat, q)
		if res.NumRows() != 0 {
			t.Errorf("query %q: rows = %d, want 0", q, res.NumRows())
		}
	}
}

// TestDistinctAndAggregateOverEmptySQL covers the zero-row edge cases
// through SQL.
func TestDistinctAndAggregateOverEmptySQL(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT DISTINCT city FROM users WHERE id > 100")
	if res.NumRows() != 0 {
		t.Errorf("distinct over empty input: rows = %d", res.NumRows())
	}
	res = run(t, cat, "SELECT city, count(*) FROM users WHERE id > 100 GROUP BY city")
	if res.NumRows() != 0 {
		t.Errorf("grouped aggregate over empty input: rows = %d", res.NumRows())
	}
	res = run(t, cat, "SELECT min(age), max(age), avg(age) FROM users WHERE id > 100")
	if res.NumRows() != 1 {
		t.Fatalf("global aggregate over empty input must emit one row")
	}
	for i, v := range res.Rows[0] {
		if !v.IsNull() {
			t.Errorf("column %d = %v, want NULL", i, v)
		}
	}
}

// TestExecuteOptsParallelAgreement: Execute's parallel path (forced down to
// tiny tables via explicit options) must agree with the serial engine
// row-for-row, and the explained plan must show the exchange.
func TestExecuteOptsParallelAgreement(t *testing.T) {
	cat := NewCatalog()
	tbl := NewTable(types.NewSchema("big", "k", "v"))
	for i := 0; i < 400; i++ {
		tbl.Append([]types.Value{types.NewInt(int64(i % 13)), types.NewInt(int64(i))})
	}
	cat.Put(tbl)
	plan := &algebra.Project{
		Input: &algebra.Filter{
			Input: &algebra.Scan{Table: "big", TblSchema: tbl.Schema},
			Pred: algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1},
				R: algebra.Const{V: types.NewInt(300)}},
		},
		Exprs: []algebra.Expr{algebra.Col{Idx: 0}},
		Names: []string{"k"},
	}
	par := physical.Options{DOP: 4, MorselSize: 32, MinParallelRows: 1}

	want, err := testExecuteOpts(plan, cat, physical.Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := testExecuteOpts(plan, cat, par)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("parallel %d rows, serial %d", got.NumRows(), want.NumRows())
	}
	for i := range got.Rows {
		if types.Tuple(got.Rows[i]).Key() != types.Tuple(want.Rows[i]).Key() {
			t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], want.Rows[i])
		}
	}

	op, err := compile(plan, cat, par)
	if err != nil {
		t.Fatal(err)
	}
	if s := physical.Explain(op); !strings.Contains(s, "Gather") {
		t.Errorf("parallel compile must produce a Gather:\n%s", s)
	}
}
