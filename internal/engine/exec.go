package engine

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/types"
)

// Execute evaluates a logical plan against the catalog and materializes the
// result. Scans resolve table names at execution time, so the same plan can
// run against different catalogs (e.g. the deterministic and the UA-encoded
// database).
func Execute(n algebra.Node, cat *Catalog) (*Table, error) {
	switch node := n.(type) {
	case *algebra.Scan:
		t := cat.Get(node.Table)
		if t == nil {
			return nil, fmt.Errorf("engine: unknown table %q", node.Table)
		}
		return t, nil

	case *algebra.Filter:
		in, err := Execute(node.Input, cat)
		if err != nil {
			return nil, err
		}
		out := NewTable(types.Schema{Attrs: in.Schema.Attrs})
		for _, row := range in.Rows {
			if algebra.Truthy(node.Pred.Eval(row)) {
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil

	case *algebra.Project:
		in, err := Execute(node.Input, cat)
		if err != nil {
			return nil, err
		}
		out := NewTable(types.Schema{Attrs: node.Names})
		out.Rows = make([][]types.Value, len(in.Rows))
		for i, row := range in.Rows {
			proj := make([]types.Value, len(node.Exprs))
			for j, e := range node.Exprs {
				proj[j] = e.Eval(row)
			}
			out.Rows[i] = proj
		}
		return out, nil

	case *algebra.Join:
		return execJoin(node, cat)

	case *algebra.UnionAll:
		l, err := Execute(node.Left, cat)
		if err != nil {
			return nil, err
		}
		r, err := Execute(node.Right, cat)
		if err != nil {
			return nil, err
		}
		if l.Schema.Arity() != r.Schema.Arity() {
			return nil, fmt.Errorf("engine: UNION ALL arity mismatch: %d vs %d",
				l.Schema.Arity(), r.Schema.Arity())
		}
		out := NewTable(types.Schema{Attrs: l.Schema.Attrs})
		out.Rows = make([][]types.Value, 0, len(l.Rows)+len(r.Rows))
		out.Rows = append(out.Rows, l.Rows...)
		out.Rows = append(out.Rows, r.Rows...)
		return out, nil

	case *algebra.Aggregate:
		return execAggregate(node, cat)

	case *algebra.Sort:
		in, err := Execute(node.Input, cat)
		if err != nil {
			return nil, err
		}
		out := in.Clone()
		sort.SliceStable(out.Rows, func(i, j int) bool {
			for _, k := range node.Keys {
				a, b := k.Expr.Eval(out.Rows[i]), k.Expr.Eval(out.Rows[j])
				c := a.Compare(b)
				if c != 0 {
					if k.Desc {
						return c > 0
					}
					return c < 0
				}
			}
			return false
		})
		return out, nil

	case *algebra.Limit:
		in, err := Execute(node.Input, cat)
		if err != nil {
			return nil, err
		}
		out := NewTable(types.Schema{Attrs: in.Schema.Attrs})
		n := node.N
		if n > int64(len(in.Rows)) {
			n = int64(len(in.Rows))
		}
		out.Rows = in.Rows[:n]
		return out, nil

	case *algebra.Distinct:
		in, err := Execute(node.Input, cat)
		if err != nil {
			return nil, err
		}
		out := NewTable(types.Schema{Attrs: in.Schema.Attrs})
		seen := make(map[string]bool, len(in.Rows))
		for _, row := range in.Rows {
			k := types.Tuple(row).Key()
			if !seen[k] {
				seen[k] = true
				out.Rows = append(out.Rows, row)
			}
		}
		return out, nil

	default:
		return nil, fmt.Errorf("engine: unsupported plan node %T", n)
	}
}

func execJoin(node *algebra.Join, cat *Catalog) (*Table, error) {
	l, err := Execute(node.Left, cat)
	if err != nil {
		return nil, err
	}
	r, err := Execute(node.Right, cat)
	if err != nil {
		return nil, err
	}
	out := NewTable(types.Schema{Attrs: node.Schema().Attrs})
	lw := l.Schema.Arity()
	emit := func(lr, rr []types.Value) {
		row := make([]types.Value, 0, lw+len(rr))
		row = append(row, lr...)
		row = append(row, rr...)
		if node.Residual == nil || algebra.Truthy(node.Residual.Eval(row)) {
			out.Rows = append(out.Rows, row)
		}
	}
	if len(node.EquiL) > 0 {
		// Hash join: build on the smaller side (right by convention here).
		build := make(map[string][][]types.Value, len(r.Rows))
		for _, rr := range r.Rows {
			key, ok := joinKey(rr, node.EquiR)
			if !ok {
				continue // NULL keys never match
			}
			build[key] = append(build[key], rr)
		}
		for _, lr := range l.Rows {
			key, ok := joinKey(lr, node.EquiL)
			if !ok {
				continue
			}
			for _, rr := range build[key] {
				emit(lr, rr)
			}
		}
		return out, nil
	}
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			emit(lr, rr)
		}
	}
	return out, nil
}

func joinKey(row []types.Value, idx []int) (string, bool) {
	key := make(types.Tuple, len(idx))
	for i, j := range idx {
		if row[j].IsNull() {
			return "", false
		}
		key[i] = row[j]
	}
	return key.Key(), true
}

type aggState struct {
	groupRow []types.Value
	count    []int64
	sumI     []int64
	sumF     []float64
	isFloat  []bool
	min      []types.Value
	max      []types.Value
	seen     []bool
}

func execAggregate(node *algebra.Aggregate, cat *Catalog) (*Table, error) {
	in, err := Execute(node.Input, cat)
	if err != nil {
		return nil, err
	}
	nAggs := len(node.Aggs)
	groups := make(map[string]*aggState)
	var order []string
	for _, row := range in.Rows {
		key := make(types.Tuple, len(node.GroupBy))
		for i, e := range node.GroupBy {
			key[i] = e.Eval(row)
		}
		ks := key.Key()
		st, ok := groups[ks]
		if !ok {
			st = &aggState{
				groupRow: key,
				count:    make([]int64, nAggs),
				sumI:     make([]int64, nAggs),
				sumF:     make([]float64, nAggs),
				isFloat:  make([]bool, nAggs),
				min:      make([]types.Value, nAggs),
				max:      make([]types.Value, nAggs),
				seen:     make([]bool, nAggs),
			}
			groups[ks] = st
			order = append(order, ks)
		}
		for i, a := range node.Aggs {
			var v types.Value
			if a.Star {
				st.count[i]++
				continue
			}
			v = a.Arg.Eval(row)
			if v.IsNull() {
				continue // SQL aggregates skip NULLs
			}
			st.count[i]++
			if v.IsNumeric() {
				if v.Kind() == types.KindFloat {
					st.isFloat[i] = true
				}
				st.sumI[i] += func() int64 {
					if v.Kind() == types.KindInt {
						return v.Int()
					}
					return 0
				}()
				st.sumF[i] += v.Float()
			}
			if !st.seen[i] {
				st.min[i], st.max[i] = v, v
				st.seen[i] = true
			} else {
				if v.Compare(st.min[i]) < 0 {
					st.min[i] = v
				}
				if v.Compare(st.max[i]) > 0 {
					st.max[i] = v
				}
			}
		}
	}
	// A global aggregate over an empty input still emits one row.
	if len(node.GroupBy) == 0 && len(groups) == 0 {
		st := &aggState{
			groupRow: nil,
			count:    make([]int64, nAggs),
			sumI:     make([]int64, nAggs),
			sumF:     make([]float64, nAggs),
			isFloat:  make([]bool, nAggs),
			min:      make([]types.Value, nAggs),
			max:      make([]types.Value, nAggs),
			seen:     make([]bool, nAggs),
		}
		groups[""] = st
		order = append(order, "")
	}
	out := NewTable(node.Schema())
	for _, ks := range order {
		st := groups[ks]
		row := make([]types.Value, 0, len(node.GroupBy)+nAggs)
		row = append(row, st.groupRow...)
		for i, a := range node.Aggs {
			switch a.Func {
			case algebra.AggCount:
				row = append(row, types.NewInt(st.count[i]))
			case algebra.AggSum:
				switch {
				case st.count[i] == 0:
					row = append(row, types.Null())
				case st.isFloat[i]:
					row = append(row, types.NewFloat(st.sumF[i]))
				default:
					row = append(row, types.NewInt(st.sumI[i]))
				}
			case algebra.AggAvg:
				if st.count[i] == 0 {
					row = append(row, types.Null())
				} else {
					row = append(row, types.NewFloat(st.sumF[i]/float64(st.count[i])))
				}
			case algebra.AggMin:
				if !st.seen[i] {
					row = append(row, types.Null())
				} else {
					row = append(row, st.min[i])
				}
			case algebra.AggMax:
				if !st.seen[i] {
					row = append(row, types.Null())
				} else {
					row = append(row, st.max[i])
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}
