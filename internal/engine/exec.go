package engine

import (
	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/types"
	"repro/internal/vector"
)

// Execute evaluates a logical plan against the catalog and materializes the
// result. The plan is normalized by the physical optimizer (predicate
// pushdown, equi-join extraction, projection pruning), lowered onto the
// batch-at-a-time operator tree of internal/physical — morsel-parallel where
// the plan and table sizes allow, up to runtime.GOMAXPROCS workers — and
// drained. Scans resolve table names at lowering time, so the same plan can
// run against different catalogs (e.g. the deterministic and the UA-encoded
// database) — the symmetry the UA-DB overhead experiments rely on.
// Result rows may alias catalog storage when the plan preserves rows end to
// end (a bare scan or filter); callers must not mutate them in place, the
// same contract the catalog's own tables carry. LIMIT results are copies.
func Execute(n algebra.Node, cat *Catalog) (*Table, error) {
	return ExecuteOpts(n, cat, physical.Options{})
}

// ExecuteOpts is Execute with explicit physical execution options; the zero
// Options means automatic parallelism (DOP = GOMAXPROCS) with no memory
// budget, Options{DOP: 1} forces the serial engine, and a MemBudget caps
// the query's pipeline-breaker working set — sorts, aggregates, and join
// builds beyond the budget spill to Options.SpillDir and stream back,
// byte-identical to in-memory execution. The UA frontend threads its own
// DOP and MemBudget through here, so out-of-core execution is an engine
// property shared by deterministic and UA-rewritten queries alike.
func ExecuteOpts(n algebra.Node, cat *Catalog, opt physical.Options) (*Table, error) {
	op, err := compile(n, cat, opt)
	if err != nil {
		return nil, err
	}
	rows, err := physical.Drain(op)
	if err != nil {
		return nil, err
	}
	out := NewTable(op.Schema())
	out.Rows = rows
	return out, nil
}

// ExecuteColumns is ExecuteOpts with a columnar result sink: when the
// lowered plan's root can emit its output as column vectors (a passthrough
// columnar scan, a serial fused chain), the result stays unboxed end to end
// and boxed rows exist only if the caller materializes them via Result.Rows.
// Plans without a columnar root drain through the normal row path and come
// back row-backed — the call is total, only the representation differs. The
// materialized rows are byte-identical to ExecuteOpts output (pinned by the
// columnar agreement harness).
func ExecuteColumns(n algebra.Node, cat *Catalog, opt physical.Options) (*physical.Result, error) {
	op, err := compile(n, cat, opt)
	if err != nil {
		return nil, err
	}
	return physical.DrainColumns(op)
}

// compile validates, optimizes, and lowers a logical plan. Plans whose scan
// schemas were not compiled in (arity 0 — some programmatic plans rely on
// pure runtime resolution) skip the optimizer, whose rewrites need static
// column positions; lowering still validates them against the runtime
// catalog.
func compile(n algebra.Node, cat *Catalog, opt physical.Options) (physical.Operator, error) {
	optimizable, err := physical.Validate(n)
	if err != nil {
		return nil, err
	}
	plan := n
	if optimizable {
		plan = physical.Optimize(n)
	}
	return physical.LowerOpts(plan, cat, opt)
}

// ExplainPhysical returns the physical operator tree Execute would run for
// the plan, after optimization, as an indented string — the plan-shape
// tests and EXPLAIN output both use it. It compiles with the same default
// options as Execute, so parallelized plans show their Gather pipelines.
func ExplainPhysical(n algebra.Node, cat *Catalog) (string, error) {
	return ExplainPhysicalOpts(n, cat, physical.Options{})
}

// ExplainPhysicalOpts is ExplainPhysical under explicit execution options —
// the tree ExecuteOpts would run. With Options.Fuse set, fused chains render
// as a single FusedPipeline node listing the collapsed operators.
func ExplainPhysicalOpts(n algebra.Node, cat *Catalog, opt physical.Options) (string, error) {
	op, err := compile(n, cat, opt)
	if err != nil {
		return "", err
	}
	return physical.Explain(op), nil
}

// Resolve implements physical.Source: it hands the physical layer a table's
// schema and backing rows at plan-lowering time.
func (c *Catalog) Resolve(name string) (types.Schema, [][]types.Value, error) {
	t := c.Get(name)
	if t == nil {
		return types.Schema{}, nil, &UnknownTableError{Name: name}
	}
	return t.Schema, t.Rows, nil
}

// ResolveColumns implements physical.ColumnSource: scans over catalog tables
// get the table's columnar mirror alongside the rows, which switches the
// physical engine onto its typed (unboxed) operator paths. The mirror is
// built lazily on the first query after a table changes.
func (c *Catalog) ResolveColumns(name string) (*vector.Columns, bool) {
	t := c.Get(name)
	if t == nil {
		return nil, false
	}
	return t.Columns(), true
}

// UnknownTableError reports a scan of a table the catalog does not hold.
type UnknownTableError struct{ Name string }

// Error implements error.
func (e *UnknownTableError) Error() string {
	return "engine: unknown table \"" + e.Name + "\""
}
