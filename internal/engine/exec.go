package engine

import (
	"context"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/types"
	"repro/internal/vector"
)

// Session is the engine's one execution entrypoint: a catalog plus the
// physical execution options every query through it runs under. One-shot
// callers build a throwaway Session per query (NewSession is two field
// assignments); long-lived callers — the query server — hold one per client
// session and thread a per-query context and admission-granted governor
// through Opt.
//
// Execute evaluates a logical plan: the physical optimizer normalizes it
// (predicate pushdown, equi-join extraction, projection pruning), lowering
// puts it onto the batch-at-a-time operator tree of internal/physical —
// morsel-parallel where the plan and table sizes allow — and the result
// comes back as a *physical.Result: columnar when the plan's root can emit
// vectors, row-backed otherwise, with boxed rows materialized lazily on the
// first Result.Rows call either way. Scans resolve table names at lowering
// time, so the same plan can run against different catalogs (the
// deterministic and the UA-encoded database) — the symmetry the UA-DB
// overhead experiments rely on.
//
// Cancellation: Execute binds ctx to the query's memory governor (spill
// paths poll it, so a governed query aborts mid-eviction) and checks it
// between output batches while draining. Result rows may alias catalog
// storage when the plan preserves rows end to end; callers must not mutate
// them in place — the contract the catalog's own tables carry.
type Session struct {
	// Cat is the catalog queries resolve tables against.
	Cat *Catalog
	// Opt are the physical execution options: the zero value means
	// automatic parallelism (DOP = GOMAXPROCS), no memory budget, no
	// fusion. With Opt.Gov set (the server's admission grant), that
	// governor — not a per-query one built from MemBudget — caps the
	// query's pipeline-breaker working set.
	Opt physical.Options
}

// NewSession returns a session executing against cat under opt.
func NewSession(cat *Catalog, opt physical.Options) *Session {
	return &Session{Cat: cat, Opt: opt}
}

// Execute runs one logical plan to completion under the session's options
// and ctx. See Session for the full contract.
func (s *Session) Execute(ctx context.Context, n algebra.Node) (*physical.Result, error) {
	opt := s.Opt
	if opt.Gov == nil {
		opt.Gov = physical.NewMemGovernor(opt.MemBudget)
	}
	opt.Gov.Bind(ctx)
	op, err := compile(n, s.Cat, opt)
	if err != nil {
		return nil, err
	}
	return physical.DrainColumnsContext(ctx, op)
}

// ResultTable adapts a *physical.Result to the engine's *Table (schema plus
// materialized rows) — the shape the table-valued helpers (EqualBag,
// SortRows, String) and the pre-Session callers work with. Materialization
// is the result's own lazy-cached one.
func ResultTable(res *physical.Result) *Table {
	out := NewTable(res.Schema)
	out.Rows = res.Rows()
	return out
}

// Execute evaluates a logical plan against the catalog and materializes the
// result.
//
// Deprecated: use NewSession(cat, physical.Options{}).Execute with a
// context (and ResultTable if a *Table is needed). Kept as a thin wrapper
// for external callers only.
func Execute(n algebra.Node, cat *Catalog) (*Table, error) {
	return ExecuteOpts(n, cat, physical.Options{})
}

// ExecuteOpts is Execute with explicit physical execution options.
//
// Deprecated: use NewSession(cat, opt).Execute with a context (and
// ResultTable if a *Table is needed). Kept as a thin wrapper for external
// callers only.
func ExecuteOpts(n algebra.Node, cat *Catalog, opt physical.Options) (*Table, error) {
	res, err := NewSession(cat, opt).Execute(context.Background(), n)
	if err != nil {
		return nil, err
	}
	return ResultTable(res), nil
}

// ExecuteColumns is ExecuteOpts with a columnar result sink.
//
// Deprecated: use NewSession(cat, opt).Execute with a context — it is the
// same call. Kept as a thin wrapper for external callers only.
func ExecuteColumns(n algebra.Node, cat *Catalog, opt physical.Options) (*physical.Result, error) {
	return NewSession(cat, opt).Execute(context.Background(), n)
}

// compile validates, optimizes, and lowers a logical plan. Plans whose scan
// schemas were not compiled in (arity 0 — some programmatic plans rely on
// pure runtime resolution) skip the optimizer, whose rewrites need static
// column positions; lowering still validates them against the runtime
// catalog.
func compile(n algebra.Node, cat *Catalog, opt physical.Options) (physical.Operator, error) {
	optimizable, err := physical.Validate(n)
	if err != nil {
		return nil, err
	}
	plan := n
	if optimizable {
		plan = physical.Optimize(n)
	}
	return physical.LowerOpts(plan, cat, opt)
}

// ExplainPhysical returns the physical operator tree Execute would run for
// the plan, after optimization, as an indented string — the plan-shape
// tests and EXPLAIN output both use it. It compiles with the same default
// options as Execute, so parallelized plans show their Gather pipelines.
func ExplainPhysical(n algebra.Node, cat *Catalog) (string, error) {
	return ExplainPhysicalOpts(n, cat, physical.Options{})
}

// ExplainPhysicalOpts is ExplainPhysical under explicit execution options —
// the tree ExecuteOpts would run. With Options.Fuse set, fused chains render
// as a single FusedPipeline node listing the collapsed operators.
func ExplainPhysicalOpts(n algebra.Node, cat *Catalog, opt physical.Options) (string, error) {
	op, err := compile(n, cat, opt)
	if err != nil {
		return "", err
	}
	return physical.Explain(op), nil
}

// Resolve implements physical.Source: it hands the physical layer a table's
// schema and backing rows at plan-lowering time.
func (c *Catalog) Resolve(name string) (types.Schema, [][]types.Value, error) {
	t := c.Get(name)
	if t == nil {
		return types.Schema{}, nil, &UnknownTableError{Name: name}
	}
	return t.Schema, t.Rows, nil
}

// ResolveColumns implements physical.ColumnSource: scans over catalog tables
// get the table's columnar mirror alongside the rows, which switches the
// physical engine onto its typed (unboxed) operator paths. The mirror is
// built lazily on the first query after a table changes.
func (c *Catalog) ResolveColumns(name string) (*vector.Columns, bool) {
	t := c.Get(name)
	if t == nil {
		return nil, false
	}
	return t.Columns(), true
}

// UnknownTableError reports a scan of a table the catalog does not hold.
type UnknownTableError struct{ Name string }

// Error implements error.
func (e *UnknownTableError) Error() string {
	return "engine: unknown table \"" + e.Name + "\""
}
