package engine

import (
	"strings"
	"testing"

	"repro/internal/sql"
	"repro/internal/types"
)

func iv(v int64) types.Value   { return types.NewInt(v) }
func fv(v float64) types.Value { return types.NewFloat(v) }
func sv(v string) types.Value  { return types.NewString(v) }

// fixtureCatalog builds the small catalog shared by the engine tests.
func fixtureCatalog() *Catalog {
	cat := NewCatalog()

	users := NewTable(types.NewSchema("users", "id", "name", "age", "city"))
	users.AppendVals(iv(1), sv("ann"), iv(30), sv("NYC"))
	users.AppendVals(iv(2), sv("bob"), iv(25), sv("LA"))
	users.AppendVals(iv(3), sv("carol"), iv(35), sv("NYC"))
	users.AppendVals(iv(4), sv("dave"), types.Null(), sv("SF"))
	cat.Put(users)

	orders := NewTable(types.NewSchema("orders", "oid", "uid", "amount"))
	orders.AppendVals(iv(100), iv(1), fv(9.5))
	orders.AppendVals(iv(101), iv(1), fv(20))
	orders.AppendVals(iv(102), iv(2), fv(5))
	orders.AppendVals(iv(103), iv(9), fv(1)) // dangling uid
	cat.Put(orders)

	return cat
}

func run(t *testing.T, cat *Catalog, q string) *Table {
	t.Helper()
	res, err := testRunSQL(cat, q)
	if err != nil {
		t.Fatalf("query %q: %v", q, err)
	}
	return res
}

func TestSelectWhere(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT name FROM users WHERE age > 26")
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (NULL age must not match)", res.NumRows())
	}
}

func TestNullComparison3VL(t *testing.T) {
	cat := fixtureCatalog()
	// dave's age is NULL: neither > nor <= matches.
	a := run(t, cat, "SELECT name FROM users WHERE age > 0")
	b := run(t, cat, "SELECT name FROM users WHERE age <= 0")
	if a.NumRows()+b.NumRows() != 3 {
		t.Errorf("3VL: %d + %d rows, want 3 total", a.NumRows(), b.NumRows())
	}
	c := run(t, cat, "SELECT name FROM users WHERE age IS NULL")
	if c.NumRows() != 1 || c.Rows[0][0].Str() != "dave" {
		t.Error("IS NULL")
	}
	d := run(t, cat, "SELECT name FROM users WHERE age IS NOT NULL")
	if d.NumRows() != 3 {
		t.Error("IS NOT NULL")
	}
	// NOT (NULL > 0) is NULL, still filtered.
	e := run(t, cat, "SELECT name FROM users WHERE NOT age > 0")
	if e.NumRows() != 0 {
		t.Error("NOT NULL-comparison should not match")
	}
}

func TestProjectionExpressions(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT id * 10 + 1 AS x FROM users WHERE id = 2")
	if res.Rows[0][0].Int() != 21 {
		t.Errorf("expr = %v", res.Rows[0][0])
	}
	res = run(t, cat, "SELECT 7 / 2, 7.0 / 2, 7 % 3 FROM users WHERE id = 1")
	if res.Rows[0][0].Int() != 3 {
		t.Error("integer division truncates")
	}
	if res.Rows[0][1].Float() != 3.5 {
		t.Error("float division")
	}
	if res.Rows[0][2].Int() != 1 {
		t.Error("modulo")
	}
}

func TestCaseExpression(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, `SELECT name, CASE city WHEN 'NYC' THEN 'east' WHEN 'LA' THEN 'west' ELSE 'other' END AS coast
		FROM users ORDER BY id`)
	wants := []string{"east", "west", "east", "other"}
	for i, w := range wants {
		if res.Rows[i][1].Str() != w {
			t.Errorf("row %d: %v, want %s", i, res.Rows[i][1], w)
		}
	}
	res = run(t, cat, `SELECT CASE WHEN age >= 30 THEN 'senior' WHEN age >= 0 THEN 'junior' END AS grp
		FROM users ORDER BY id`)
	if res.Rows[0][0].Str() != "senior" || res.Rows[1][0].Str() != "junior" {
		t.Error("searched case")
	}
	if !res.Rows[3][0].IsNull() {
		t.Error("case without match and without else is NULL")
	}
}

func TestBetweenInLike(t *testing.T) {
	cat := fixtureCatalog()
	if res := run(t, cat, "SELECT name FROM users WHERE age BETWEEN 25 AND 30"); res.NumRows() != 2 {
		t.Error("between")
	}
	if res := run(t, cat, "SELECT name FROM users WHERE age NOT BETWEEN 25 AND 30"); res.NumRows() != 1 {
		t.Error("not between excludes NULL age")
	}
	if res := run(t, cat, "SELECT name FROM users WHERE city IN ('NYC', 'SF')"); res.NumRows() != 3 {
		t.Error("in")
	}
	if res := run(t, cat, "SELECT name FROM users WHERE name LIKE '%a%'"); res.NumRows() != 3 {
		t.Error("like contains: ann, carol, dave")
	}
	if res := run(t, cat, "SELECT name FROM users WHERE name LIKE '_ob'"); res.NumRows() != 1 {
		t.Error("like underscore")
	}
	if res := run(t, cat, "SELECT name FROM users WHERE name NOT LIKE 'a%'"); res.NumRows() != 3 {
		t.Error("not like")
	}
}

func TestJoinHashAndResidual(t *testing.T) {
	cat := fixtureCatalog()
	// Comma join with WHERE equality: the planner must extract a hash key.
	q := "SELECT u.name, o.amount FROM users u, orders o WHERE u.id = o.uid AND o.amount > 6"
	res := run(t, cat, q)
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", res.NumRows())
	}
	// Explicit JOIN ... ON.
	res2 := run(t, cat, "SELECT u.name, o.amount FROM users u JOIN orders o ON u.id = o.uid WHERE o.amount > 6")
	if !res.EqualBag(res2) {
		t.Error("comma join and explicit join disagree")
	}
	// Plan must actually contain a hash join.
	plan, err := NewPlanner(cat).Plan(sql.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan.String(), "equi") {
		t.Errorf("expected hash join in plan: %s", plan)
	}
}

func TestThetaJoin(t *testing.T) {
	cat := fixtureCatalog()
	// Non-equi join falls back to nested loops.
	res := run(t, cat, "SELECT u.id, o.oid FROM users u, orders o WHERE o.uid < u.id")
	if res.NumRows() == 0 {
		t.Fatal("theta join returned nothing")
	}
	for _, row := range res.Rows {
		if row[1].Int() == 103 && row[0].Int() <= 9 {
			continue
		}
	}
}

func TestSelfJoin(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, `SELECT a.name, b.name FROM users a, users b WHERE a.city = b.city AND a.id < b.id`)
	if res.NumRows() != 1 {
		t.Fatalf("self join rows = %d, want 1 (ann-carol)", res.NumRows())
	}
	if res.Rows[0][0].Str() != "ann" || res.Rows[0][1].Str() != "carol" {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestJoinNullKeysNeverMatch(t *testing.T) {
	cat := NewCatalog()
	a := NewTable(types.NewSchema("a", "x"))
	a.AppendVals(types.Null())
	a.AppendVals(iv(1))
	cat.Put(a)
	b := NewTable(types.NewSchema("b", "y"))
	b.AppendVals(types.Null())
	b.AppendVals(iv(1))
	cat.Put(b)
	res := run(t, cat, "SELECT * FROM a, b WHERE a.x = b.y")
	if res.NumRows() != 1 {
		t.Errorf("NULL join keys must not match: rows = %d", res.NumRows())
	}
}

func TestUnionAll(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT name FROM users WHERE city = 'NYC' UNION ALL SELECT name FROM users WHERE age < 26")
	if res.NumRows() != 3 {
		t.Errorf("union all rows = %d, want 3", res.NumRows())
	}
}

func TestDistinct(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT DISTINCT city FROM users")
	if res.NumRows() != 3 {
		t.Errorf("distinct rows = %d, want 3", res.NumRows())
	}
}

func TestOrderByLimit(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT name, age FROM users WHERE age IS NOT NULL ORDER BY age DESC LIMIT 2")
	if res.NumRows() != 2 {
		t.Fatal("limit")
	}
	if res.Rows[0][0].Str() != "carol" || res.Rows[1][0].Str() != "ann" {
		t.Errorf("order: %v", res.Rows)
	}
}

func TestAggregates(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT count(*), count(age), sum(age), min(age), max(age), avg(age) FROM users")
	row := res.Rows[0]
	if row[0].Int() != 4 {
		t.Error("count(*)")
	}
	if row[1].Int() != 3 {
		t.Error("count skips NULLs")
	}
	if row[2].Int() != 90 {
		t.Error("sum")
	}
	if row[3].Int() != 25 || row[4].Int() != 35 {
		t.Error("min/max")
	}
	if row[5].Float() != 30 {
		t.Error("avg")
	}
}

func TestGroupByHaving(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, `SELECT city, count(*) AS n FROM users GROUP BY city HAVING count(*) > 1`)
	if res.NumRows() != 1 || res.Rows[0][0].Str() != "NYC" || res.Rows[0][1].Int() != 2 {
		t.Errorf("group/having: %v", res.Rows)
	}
}

func TestGroupByExpressionOverAggregate(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT uid, sum(amount) * 2 AS dbl FROM orders GROUP BY uid ORDER BY uid")
	if res.NumRows() != 3 {
		t.Fatalf("groups = %d", res.NumRows())
	}
	if res.Rows[0][1].Float() != 59 {
		t.Errorf("sum*2 for uid 1 = %v, want 59", res.Rows[0][1])
	}
}

func TestAggregateEmptyInput(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT count(*), sum(age) FROM users WHERE id > 100")
	if res.NumRows() != 1 {
		t.Fatal("global aggregate over empty input emits one row")
	}
	if res.Rows[0][0].Int() != 0 || !res.Rows[0][1].IsNull() {
		t.Errorf("row = %v", res.Rows[0])
	}
}

func TestSubqueryInFrom(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, `SELECT s.name FROM (SELECT name, age FROM users WHERE age >= 30) s WHERE s.age < 40`)
	if res.NumRows() != 2 {
		t.Errorf("subquery rows = %d", res.NumRows())
	}
	// The paper's Q5 shape: two filtered subqueries joined with a band
	// predicate.
	res = run(t, cat, `SELECT a.name, b.oid FROM
		(SELECT * FROM users WHERE city = 'NYC') a,
		(SELECT * FROM orders WHERE amount > 1) b
		WHERE b.uid < a.id + 1 AND b.uid > a.id - 1`)
	if res.NumRows() != 2 {
		t.Errorf("band join rows = %d, want 2", res.NumRows())
	}
}

func TestScalarFunctions(t *testing.T) {
	cat := fixtureCatalog()
	res := run(t, cat, "SELECT abs(-5), least(3, 1, 2), greatest(3, 1, 2), coalesce(NULL, 7), length('abc'), upper('x'), lower('Y'), min(2, 9) FROM users WHERE id = 1")
	row := res.Rows[0]
	if row[0].Int() != 5 || row[1].Int() != 1 || row[2].Int() != 3 || row[3].Int() != 7 || row[4].Int() != 3 {
		t.Errorf("scalar funcs: %v", row)
	}
	if row[5].Str() != "X" || row[6].Str() != "y" {
		t.Error("upper/lower")
	}
	if row[7].Int() != 2 {
		t.Error("two-arg min is scalar least")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	cat := fixtureCatalog()
	_, err := testRunSQL(cat, "SELECT id FROM users a, users b")
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestPlannerErrors(t *testing.T) {
	cat := fixtureCatalog()
	for _, q := range []string{
		"SELECT x FROM users",
		"SELECT name FROM missing",
		"SELECT u.name FROM users v",
		"SELECT nosuchfunc(id) FROM users",
		"SELECT name FROM users UNION ALL SELECT id, name FROM users",
		"SELECT * FROM users GROUP BY city",
		"SELECT * FROM users IS TI WITH PROBABILITY (p)",
	} {
		if _, err := testRunSQL(cat, q); err == nil {
			t.Errorf("query %q: expected error", q)
		}
	}
}

func TestTableHelpers(t *testing.T) {
	a := NewTable(types.NewSchema("t", "x"))
	a.AppendVals(iv(1))
	a.AppendVals(iv(1))
	a.AppendVals(iv(2))
	b := NewTable(types.NewSchema("t", "x"))
	b.AppendVals(iv(2))
	b.AppendVals(iv(1))
	b.AppendVals(iv(1))
	if !a.EqualBag(b) {
		t.Error("EqualBag order-insensitive")
	}
	b.AppendVals(iv(3))
	if a.EqualBag(b) {
		t.Error("EqualBag cardinality")
	}
	c := a.Clone()
	c.Rows[0][0] = iv(99)
	if a.Rows[0][0].Int() != 1 {
		t.Error("Clone aliases storage")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Append arity mismatch should panic")
			}
		}()
		a.AppendVals(iv(1), iv(2))
	}()
}
