package engine

import (
	"os"
	"testing"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/types"
)

// TestExecuteOptsMemBudget runs a sort-heavy plan through the engine entry
// point under a pathological budget: the result must match the in-memory
// run row for row, and the spill directory must drain by the time the
// result is materialized.
func TestExecuteOptsMemBudget(t *testing.T) {
	tb := NewTable(types.NewSchema("t", "k", "v"))
	for i := 0; i < 5000; i++ {
		tb.AppendVals(types.NewInt(int64(i%101)), types.NewInt(int64(i)))
	}
	cat := NewCatalog()
	cat.Put(tb)
	plan := &algebra.Sort{
		Input: &algebra.Scan{Table: "t", TblSchema: tb.Schema},
		Keys: []algebra.SortKey{
			{Expr: algebra.Col{Idx: 0}}, {Expr: algebra.Col{Idx: 1}, Desc: true}},
	}

	want, err := testExecuteOpts(plan, cat, physical.Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	got, err := testExecuteOpts(plan, cat, physical.Options{
		DOP: 1, MemBudget: 4 << 10, SpillDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != want.NumRows() {
		t.Fatalf("budgeted run: %d rows, want %d", got.NumRows(), want.NumRows())
	}
	for i := range got.Rows {
		if types.Tuple(got.Rows[i]).Key() != types.Tuple(want.Rows[i]).Key() {
			t.Fatalf("row %d differs: %v vs %v", i, got.Rows[i], want.Rows[i])
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("%d spill files leaked through engine.ExecuteOpts", len(ents))
	}
}
