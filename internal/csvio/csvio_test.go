package csvio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/types"
)

func TestReadTypesInference(t *testing.T) {
	in := "id,score,name,flag,missing\n1,2.5,alice,true,\n-3,1e2,bob,false,null\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Arity() != 5 || tb.NumRows() != 2 {
		t.Fatalf("shape: %v", tb.Schema)
	}
	r0 := tb.Rows[0]
	if r0[0].Kind() != types.KindInt || r0[0].Int() != 1 {
		t.Error("int")
	}
	if r0[1].Kind() != types.KindFloat || r0[1].Float() != 2.5 {
		t.Error("float")
	}
	if r0[2].Kind() != types.KindString {
		t.Error("string")
	}
	if r0[3].Kind() != types.KindBool || !r0[3].Bool() {
		t.Error("bool")
	}
	if !r0[4].IsNull() {
		t.Error("empty -> NULL")
	}
	if !tb.Rows[1][4].IsNull() {
		t.Error("'null' -> NULL")
	}
	if tb.Rows[1][1].Float() != 100 {
		t.Error("scientific notation")
	}
}

func TestRoundTrip(t *testing.T) {
	in := "a,b\n1,x\n,y\n3.5,z\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.EqualBag(back) {
		t.Errorf("round trip changed table:\n%s\nvs\n%s", tb, back)
	}
}

func TestLoadSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	in := "x\n1\n2\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(tb, path); err != nil {
		t.Fatal(err)
	}
	back, err := Load("t", path)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.EqualBag(back) {
		t.Error("load/save round trip")
	}
	if _, err := Load("t", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read("t", strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should fail")
	}
}

// TestHeaderOnlyIsZeroRowTable: a header with no data rows is a valid,
// empty table — not an error — and survives a write/read round trip.
func TestHeaderOnlyIsZeroRowTable(t *testing.T) {
	tb, err := Read("t", strings.NewReader("a,b,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Arity() != 3 || tb.NumRows() != 0 {
		t.Fatalf("shape: %v, %d rows", tb.Schema, tb.NumRows())
	}
	var buf bytes.Buffer
	if err := Write(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 || back.Schema.Arity() != 3 {
		t.Errorf("zero-row round trip: %v, %d rows", back.Schema, back.NumRows())
	}
}

// TestQuotedSeparatorsAndQuotes: quoted cells carrying the separator,
// embedded quotes, and newlines stay one cell, and the round trip
// re-quotes them correctly.
func TestQuotedSeparatorsAndQuotes(t *testing.T) {
	in := "name,note\n\"a,b\",\"he said \"\"hi\"\"\"\n\"line1\nline2\",plain\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.NumRows())
	}
	if got := tb.Rows[0][0].Str(); got != "a,b" {
		t.Errorf("quoted separator: %q", got)
	}
	if got := tb.Rows[0][1].Str(); got != `he said "hi"` {
		t.Errorf("escaped quotes: %q", got)
	}
	if got := tb.Rows[1][0].Str(); got != "line1\nline2" {
		t.Errorf("quoted newline: %q", got)
	}
	var buf bytes.Buffer
	if err := Write(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.EqualBag(back) {
		t.Errorf("quoted round trip changed table:\n%s\nvs\n%s", tb, back)
	}
}

// TestWhitespaceAndSpelledNulls: leading whitespace trims, and the NULL
// spellings are case-insensitive.
func TestWhitespaceAndSpelledNulls(t *testing.T) {
	tb, err := Read("t", strings.NewReader("a,b,c\n  7 , NULL ,  True\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := tb.Rows[0]
	if r[0].Kind() != types.KindInt || r[0].Int() != 7 {
		t.Errorf("trimmed int: %v", r[0])
	}
	if !r[1].IsNull() {
		t.Errorf("NULL spelling: %v", r[1])
	}
	if r[2].Kind() != types.KindBool || !r[2].Bool() {
		t.Errorf("trimmed bool: %v", r[2])
	}
}
