package csvio

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/types"
)

func TestReadTypesInference(t *testing.T) {
	in := "id,score,name,flag,missing\n1,2.5,alice,true,\n-3,1e2,bob,false,null\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Arity() != 5 || tb.NumRows() != 2 {
		t.Fatalf("shape: %v", tb.Schema)
	}
	r0 := tb.Rows[0]
	if r0[0].Kind() != types.KindInt || r0[0].Int() != 1 {
		t.Error("int")
	}
	if r0[1].Kind() != types.KindFloat || r0[1].Float() != 2.5 {
		t.Error("float")
	}
	if r0[2].Kind() != types.KindString {
		t.Error("string")
	}
	if r0[3].Kind() != types.KindBool || !r0[3].Bool() {
		t.Error("bool")
	}
	if !r0[4].IsNull() {
		t.Error("empty -> NULL")
	}
	if !tb.Rows[1][4].IsNull() {
		t.Error("'null' -> NULL")
	}
	if tb.Rows[1][1].Float() != 100 {
		t.Error("scientific notation")
	}
}

func TestRoundTrip(t *testing.T) {
	in := "a,b\n1,x\n,y\n3.5,z\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.EqualBag(back) {
		t.Errorf("round trip changed table:\n%s\nvs\n%s", tb, back)
	}
}

func TestLoadSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	in := "x\n1\n2\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(tb, path); err != nil {
		t.Fatal(err)
	}
	back, err := Load("t", path)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.EqualBag(back) {
		t.Error("load/save round trip")
	}
	if _, err := Load("t", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read("t", strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should fail")
	}
}
