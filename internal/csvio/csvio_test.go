package csvio

import (
	"bytes"
	"math"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/types"
	"repro/internal/vector"
)

func TestReadTypesInference(t *testing.T) {
	in := "id,score,name,flag,missing\n1,2.5,alice,true,\n-3,1e2,bob,false,null\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Arity() != 5 || tb.NumRows() != 2 {
		t.Fatalf("shape: %v", tb.Schema)
	}
	r0 := tb.Rows[0]
	if r0[0].Kind() != types.KindInt || r0[0].Int() != 1 {
		t.Error("int")
	}
	if r0[1].Kind() != types.KindFloat || r0[1].Float() != 2.5 {
		t.Error("float")
	}
	if r0[2].Kind() != types.KindString {
		t.Error("string")
	}
	if r0[3].Kind() != types.KindBool || !r0[3].Bool() {
		t.Error("bool")
	}
	if !r0[4].IsNull() {
		t.Error("empty -> NULL")
	}
	if !tb.Rows[1][4].IsNull() {
		t.Error("'null' -> NULL")
	}
	if tb.Rows[1][1].Float() != 100 {
		t.Error("scientific notation")
	}
}

func TestRoundTrip(t *testing.T) {
	in := "a,b\n1,x\n,y\n3.5,z\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.EqualBag(back) {
		t.Errorf("round trip changed table:\n%s\nvs\n%s", tb, back)
	}
}

func TestLoadSave(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.csv")
	in := "x\n1\n2\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(tb, path); err != nil {
		t.Fatal(err)
	}
	back, err := Load("t", path)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.EqualBag(back) {
		t.Error("load/save round trip")
	}
	if _, err := Load("t", filepath.Join(dir, "missing.csv")); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestReadErrors(t *testing.T) {
	if _, err := Read("t", strings.NewReader("")); err == nil {
		t.Error("empty input should fail")
	}
	if _, err := Read("t", strings.NewReader("a,b\n1\n")); err == nil {
		t.Error("ragged row should fail")
	}
}

// TestHeaderOnlyIsZeroRowTable: a header with no data rows is a valid,
// empty table — not an error — and survives a write/read round trip.
func TestHeaderOnlyIsZeroRowTable(t *testing.T) {
	tb, err := Read("t", strings.NewReader("a,b,c\n"))
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Arity() != 3 || tb.NumRows() != 0 {
		t.Fatalf("shape: %v, %d rows", tb.Schema, tb.NumRows())
	}
	var buf bytes.Buffer
	if err := Write(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 || back.Schema.Arity() != 3 {
		t.Errorf("zero-row round trip: %v, %d rows", back.Schema, back.NumRows())
	}
}

// TestQuotedSeparatorsAndQuotes: quoted cells carrying the separator,
// embedded quotes, and newlines stay one cell, and the round trip
// re-quotes them correctly.
func TestQuotedSeparatorsAndQuotes(t *testing.T) {
	in := "name,note\n\"a,b\",\"he said \"\"hi\"\"\"\n\"line1\nline2\",plain\n"
	tb, err := Read("t", strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2", tb.NumRows())
	}
	if got := tb.Rows[0][0].Str(); got != "a,b" {
		t.Errorf("quoted separator: %q", got)
	}
	if got := tb.Rows[0][1].Str(); got != `he said "hi"` {
		t.Errorf("escaped quotes: %q", got)
	}
	if got := tb.Rows[1][0].Str(); got != "line1\nline2" {
		t.Errorf("quoted newline: %q", got)
	}
	var buf bytes.Buffer
	if err := Write(tb, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read("t", &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !tb.EqualBag(back) {
		t.Errorf("quoted round trip changed table:\n%s\nvs\n%s", tb, back)
	}
}

// TestWhitespaceAndSpelledNulls: leading whitespace trims, and the NULL
// spellings are case-insensitive.
func TestWhitespaceAndSpelledNulls(t *testing.T) {
	tb, err := Read("t", strings.NewReader("a,b,c\n  7 , NULL ,  True\n"))
	if err != nil {
		t.Fatal(err)
	}
	r := tb.Rows[0]
	if r[0].Kind() != types.KindInt || r[0].Int() != 7 {
		t.Errorf("trimmed int: %v", r[0])
	}
	if !r[1].IsNull() {
		t.Errorf("NULL spelling: %v", r[1])
	}
	if r[2].Kind() != types.KindBool || !r[2].Bool() {
		t.Errorf("trimmed bool: %v", r[2])
	}
}

// TestWriteColumnsWriteResultParity pins that every CSV write path — the
// boxed row loop (Write, row-backed WriteResult) and the vector-direct loop
// (columnar WriteResult, WriteColumns) — emits byte-identical output over
// an adversarial value set: NULLs in typed and boxed columns, embedded
// separators / quotes / newlines, unicode, negative zero, large ints, and
// a mixed-kind column that forces the boxed vector arm. The -connect CSV
// path renders through WriteColumns, the one-shot path through WriteResult;
// any drift between them is a user-visible difference for the same query.
func TestWriteColumnsWriteResultParity(t *testing.T) {
	schema := types.NewSchema("res", "i", "f", "s", "b", "mixed")
	rows := [][]types.Value{
		{types.NewInt(1), types.NewFloat(2.5), types.NewString("plain"), types.NewBool(true), types.NewInt(7)},
		{types.Null(), types.Null(), types.Null(), types.Null(), types.Null()},
		{types.NewInt(-9007199254740993), types.NewFloat(math.Copysign(0, -1)), types.NewString("a,b"), types.NewBool(false), types.NewString("x")},
		{types.NewInt(0), types.NewFloat(1e300), types.NewString(`quote " inside`), types.NewBool(true), types.NewFloat(0.25)},
		{types.NewInt(42), types.NewFloat(0.1), types.NewString("line\nbreak"), types.NewBool(false), types.NewBool(true)},
		{types.NewInt(-1), types.NewFloat(-2.25), types.NewString("héllo, wörld — ünïcode"), types.NewBool(true), types.NewInt(-3)},
		{types.NewInt(8), types.NewFloat(3.5), types.NewString("null"), types.NewBool(false), types.NewString("it's; fine\ttab")},
	}

	tbl := engine.NewTable(schema)
	for _, r := range rows {
		tbl.Append(r)
	}
	cols := vector.FromRows(rows, schema.Arity())
	// The fixture must actually cover both vector representations.
	if _, boxed := cols.Vecs[4].(*vector.ValueVector); !boxed {
		t.Fatalf("mixed column built %T, want the boxed fallback", cols.Vecs[4])
	}
	if _, typed := cols.Vecs[0].(*vector.Int64Vector); !typed {
		t.Fatalf("int column built %T, want *vector.Int64Vector", cols.Vecs[0])
	}

	outputs := map[string]string{}
	var buf bytes.Buffer
	if err := Write(tbl, &buf); err != nil {
		t.Fatal(err)
	}
	outputs["Write(table)"] = buf.String()

	buf.Reset()
	if err := WriteResult(physical.NewRowResult(schema, rows), &buf); err != nil {
		t.Fatal(err)
	}
	outputs["WriteResult(rows)"] = buf.String()

	buf.Reset()
	if err := WriteResult(physical.NewColumnarResult(schema, cols), &buf); err != nil {
		t.Fatal(err)
	}
	outputs["WriteResult(columns)"] = buf.String()

	buf.Reset()
	if err := WriteColumns(schema.Attrs, cols, &buf); err != nil {
		t.Fatal(err)
	}
	outputs["WriteColumns"] = buf.String()

	want := outputs["Write(table)"]
	for name, got := range outputs {
		if got != want {
			t.Errorf("%s diverges from Write(table):\n got: %q\nwant: %q", name, got, want)
		}
	}

	// The adversarial cells survive a CSV round-trip, proving the quoting
	// actually engaged (not just matched between writers).
	back, err := Read("res", strings.NewReader(want))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != len(rows) {
		t.Fatalf("round-trip rows = %d, want %d", back.NumRows(), len(rows))
	}
	if got := back.Rows[4][2].Str(); got != "line\nbreak" {
		t.Errorf("embedded newline round-tripped as %q", got)
	}
	if got := back.Rows[5][2].Str(); got != "héllo, wörld — ünïcode" {
		t.Errorf("unicode cell round-tripped as %q", got)
	}
	if got := back.Rows[3][2].Str(); got != `quote " inside` {
		t.Errorf("embedded quote round-tripped as %q", got)
	}
	// NULL spelling: every writer renders NULL as the empty cell, which
	// reads back as NULL; the string "null" is indistinguishable by design
	// (parseCell folds it) — pinned so a future spelling change shows up.
	if !back.Rows[1][0].IsNull() || !back.Rows[1][2].IsNull() {
		t.Error("empty cells must read back as NULL")
	}
	if !back.Rows[6][2].IsNull() {
		t.Error(`the literal string "null" reads back as NULL (documented lossy spelling)`)
	}
}

// TestWriteColumnsZeroRows: a zero-row columnar result (typed or boxed
// empties) writes a header and nothing else, on both columnar paths.
func TestWriteColumnsZeroRows(t *testing.T) {
	schema := types.NewSchema("res", "a", "b")
	for name, cols := range map[string]*vector.Columns{
		"typed": {N: 0, Vecs: []vector.Vector{
			vector.NewInt64Vector(nil, nil), vector.NewStringVector(nil, nil)}},
		"boxed": vector.FromRows(nil, 2),
	} {
		var buf bytes.Buffer
		if err := WriteColumns(schema.Attrs, cols, &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := buf.String(); got != "a,b\n" {
			t.Errorf("%s: zero-row output = %q, want header only", name, got)
		}
		buf.Reset()
		if err := WriteResult(physical.NewColumnarResult(schema, cols), &buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := buf.String(); got != "a,b\n" {
			t.Errorf("%s: WriteResult zero-row output = %q, want header only", name, got)
		}
	}
}
