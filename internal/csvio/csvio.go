// Package csvio loads and stores engine tables as CSV files with header
// rows, inferring column types (integer, float, string; empty cells are
// NULL). It backs the uadb command-line tool and the runnable examples.
package csvio

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/types"
	"repro/internal/vector"
)

// Load reads a CSV file (first row = attribute names) into a table named
// name.
func Load(name, path string) (*engine.Table, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(name, f)
}

// Read parses CSV content from r.
func Read(name string, r io.Reader) (*engine.Table, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("csvio: reading header: %w", err)
	}
	attrs := make([]string, len(header))
	for i, h := range header {
		attrs[i] = strings.TrimSpace(h)
	}
	t := engine.NewTable(types.Schema{Name: name, Attrs: attrs})
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("csvio: %w", err)
		}
		row := make([]types.Value, len(rec))
		for i, cell := range rec {
			row[i] = parseCell(cell)
		}
		t.Append(row)
	}
	return t, nil
}

func parseCell(cell string) types.Value {
	s := strings.TrimSpace(cell)
	if s == "" || strings.EqualFold(s, "null") {
		return types.Null()
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return types.NewInt(n)
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return types.NewFloat(f)
	}
	if strings.EqualFold(s, "true") {
		return types.NewBool(true)
	}
	if strings.EqualFold(s, "false") {
		return types.NewBool(false)
	}
	return types.NewString(s)
}

// Write stores the table as CSV (values rendered with Value.String; NULLs
// become empty cells).
func Write(t *engine.Table, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Attrs); err != nil {
		return err
	}
	for _, row := range t.Rows {
		rec := make([]string, len(row))
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteResult streams a columnar query result as CSV straight from its
// vectors — per-kind cell rendering with no boxed Value in between — falling
// back to the row path for row-backed results. The bytes are identical to
// Write over the materialized rows: the typed arms mirror Value.String
// exactly (strconv.FormatInt; FormatFloat 'g' -1; "true"/"false"; raw
// strings) and NULLs become empty cells either way.
func WriteResult(res *physical.Result, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(res.Schema.Attrs); err != nil {
		return err
	}
	cols := res.Cols()
	if cols == nil {
		for _, row := range res.Rows() {
			rec := make([]string, len(row))
			for i, v := range row {
				if v.IsNull() {
					rec[i] = ""
				} else {
					rec[i] = v.String()
				}
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	}
	return writeColumnRecords(cw, cols)
}

// WriteColumns streams a set of result columns as CSV — header row, then
// one record per row rendered straight off the vectors. It is the common
// tail of WriteResult and of the remote client path, where the wire decoder
// hands over vector.Columns without a physical.Result around them.
func WriteColumns(attrs []string, cols *vector.Columns, w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(attrs); err != nil {
		return err
	}
	return writeColumnRecords(cw, cols)
}

func writeColumnRecords(cw *csv.Writer, cols *vector.Columns) error {
	rec := make([]string, len(cols.Vecs))
	for i := 0; i < cols.N; i++ {
		for j, vec := range cols.Vecs {
			rec[j] = renderCell(vec, i)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// renderCell renders one vector element as Write would render the boxed
// Value: "" for NULL, Value.String otherwise, with unboxed fast paths for
// the typed vectors.
func renderCell(vec vector.Vector, i int) string {
	if vec.Null(i) {
		return ""
	}
	switch tv := vec.(type) {
	case *vector.Int64Vector:
		return strconv.FormatInt(tv.Vals[i], 10)
	case *vector.Float64Vector:
		return strconv.FormatFloat(tv.Vals[i], 'g', -1, 64)
	case *vector.StringVector:
		return tv.Vals[i]
	case *vector.BoolVector:
		if tv.Vals[i] {
			return "true"
		}
		return "false"
	default:
		return vec.Value(i).String()
	}
}

// Save writes the table to a file.
func Save(t *engine.Table, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return Write(t, f)
}
