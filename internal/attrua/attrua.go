// Package attrua prototypes the paper's future-work extension (Section 12):
// attribute-level uncertainty annotations. Where a UA-DB labels whole tuples
// certain or uncertain, an attribute-annotated relation tracks, per row of
// the best-guess world,
//
//   - ExistsCertain — the row (with *some* values) appears in every possible
//     world, and
//   - per-attribute flags — the i-th value is the same in every alternative.
//
// A projected tuple is then certain iff the row certainly exists and every
// projected attribute is certain — which is exactly the PTIME
// characterization of certain answers for select-project queries over x-DBs
// (models.CertainSP). Attribute-level labels therefore eliminate the false
// negatives that tuple-level UA-DBs incur when a projection discards all
// uncertain attributes (the paper's Figure 15 experiment); the comparison is
// quantified in TestAttributeVsTupleLevelFNR and the Benchmark in the root
// suite.
//
// Queries supported: selection, projection, join, union (RA⁺), with the
// same extensional label propagation style as Section 7 — and the same
// c-soundness guarantee, verified against world enumeration in the tests.
package attrua

import (
	"fmt"

	"repro/internal/models"
	"repro/internal/types"
)

// Row is one best-guess row with attribute-level certainty.
type Row struct {
	Data types.Tuple
	// ExistsCertain reports that the source x-tuple is non-optional: every
	// world contains a row derived from it (values possibly differing).
	ExistsCertain bool
	// AttrCertain[i] reports that every alternative agrees on attribute i.
	AttrCertain []bool
}

// TupleCertain reports whether the row, as a whole tuple, is certain: it
// exists in every world with exactly these values.
func (r Row) TupleCertain() bool {
	if !r.ExistsCertain {
		return false
	}
	for _, c := range r.AttrCertain {
		if !c {
			return false
		}
	}
	return true
}

// Relation is an attribute-annotated best-guess relation.
type Relation struct {
	Schema types.Schema
	Rows   []Row
}

// FromXDB derives the attribute-level annotation from an x-relation: the
// designated (first) alternative of each x-tuple becomes a row; flags record
// where the alternatives agree.
func FromXDB(x *models.XRelation) *Relation {
	out := &Relation{Schema: x.Schema}
	for _, xt := range x.XTuples {
		if len(xt.Alts) == 0 {
			continue
		}
		best := xt.Alts[0].Data
		flags := make([]bool, len(best))
		for i := range flags {
			flags[i] = true
			for _, alt := range xt.Alts[1:] {
				if !alt.Data[i].Equal(best[i]) {
					flags[i] = false
					break
				}
			}
		}
		out.Rows = append(out.Rows, Row{
			Data:          best.Clone(),
			ExistsCertain: !xt.Optional,
			AttrCertain:   flags,
		})
	}
	return out
}

// Pred is a predicate together with the attribute positions it reads; the
// positions determine whether a passing row's survival is certain.
type Pred struct {
	Eval  func(types.Tuple) bool
	Reads []int
}

// Select filters rows by the predicate on best-guess values. A passing row
// keeps its existence certainty only when the predicate read exclusively
// certain attributes — otherwise its survival depends on how the uncertain
// values resolve.
func Select(r *Relation, p Pred) *Relation {
	out := &Relation{Schema: r.Schema}
	for _, row := range r.Rows {
		if !p.Eval(row.Data) {
			continue
		}
		nr := Row{Data: row.Data, ExistsCertain: row.ExistsCertain,
			AttrCertain: append([]bool{}, row.AttrCertain...)}
		for _, i := range p.Reads {
			if !row.AttrCertain[i] {
				nr.ExistsCertain = false
				break
			}
		}
		out.Rows = append(out.Rows, nr)
	}
	return out
}

// Project keeps the given attribute positions with their flags.
func Project(r *Relation, idx []int) *Relation {
	out := &Relation{Schema: r.Schema.Project(idx)}
	for _, row := range r.Rows {
		flags := make([]bool, len(idx))
		for i, j := range idx {
			flags[i] = row.AttrCertain[j]
		}
		out.Rows = append(out.Rows, Row{
			Data:          row.Data.Project(idx),
			ExistsCertain: row.ExistsCertain,
			AttrCertain:   flags,
		})
	}
	return out
}

// Join combines rows passing the θ-predicate on the concatenated best-guess
// values; existence certainty requires both inputs certain and a predicate
// over certain attributes only.
func Join(l, r *Relation, p Pred) *Relation {
	out := &Relation{Schema: l.Schema.Concat(r.Schema)}
	lw := l.Schema.Arity()
	for _, lr := range l.Rows {
		for _, rr := range r.Rows {
			data := lr.Data.Concat(rr.Data)
			if p.Eval != nil && !p.Eval(data) {
				continue
			}
			flags := make([]bool, 0, len(lr.AttrCertain)+len(rr.AttrCertain))
			flags = append(flags, lr.AttrCertain...)
			flags = append(flags, rr.AttrCertain...)
			nr := Row{Data: data, ExistsCertain: lr.ExistsCertain && rr.ExistsCertain, AttrCertain: flags}
			for _, i := range p.Reads {
				var certain bool
				if i < lw {
					certain = lr.AttrCertain[i]
				} else {
					certain = rr.AttrCertain[i-lw]
				}
				if !certain {
					nr.ExistsCertain = false
					break
				}
			}
			out.Rows = append(out.Rows, nr)
		}
	}
	return out
}

// Union appends the rows of both inputs (bag union).
func Union(l, r *Relation) *Relation {
	if l.Schema.Arity() != r.Schema.Arity() {
		panic(fmt.Sprintf("attrua: union arity mismatch: %s vs %s", l.Schema, r.Schema))
	}
	out := &Relation{Schema: l.Schema}
	out.Rows = append(append([]Row{}, l.Rows...), r.Rows...)
	return out
}

// CertainTuples returns the distinct tuples the annotation proves certain
// (at least one fully-certain row).
func CertainTuples(r *Relation) map[string]types.Tuple {
	out := make(map[string]types.Tuple)
	for _, row := range r.Rows {
		if row.TupleCertain() {
			out[row.Data.Key()] = row.Data
		}
	}
	return out
}

// Stats summarizes an annotated relation.
type Stats struct {
	Rows          int
	ExistsCertain int
	TupleCertain  int
	CertainCells  int
	TotalCells    int
}

// Summarize computes Stats.
func Summarize(r *Relation) Stats {
	var s Stats
	for _, row := range r.Rows {
		s.Rows++
		if row.ExistsCertain {
			s.ExistsCertain++
		}
		if row.TupleCertain() {
			s.TupleCertain++
		}
		for _, c := range row.AttrCertain {
			s.TotalCells++
			if c {
				s.CertainCells++
			}
		}
	}
	return s
}
