package attrua

import (
	"math/rand"
	"testing"

	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/semiring"
	"repro/internal/types"
	"repro/internal/uadb"
)

func it(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.NewInt(v)
	}
	return t
}

func sampleX() *models.XRelation {
	x := models.NewXRelation(types.NewSchema("R", "a", "b", "c"))
	x.AddCertain(it(1, 10, 100))
	// Alternatives differ only on b: a and c are attribute-certain.
	x.AddChoice(it(2, 20, 200), it(2, 21, 200))
	// Optional single alternative: values certain, existence not.
	x.Add(models.XTuple{Alts: []models.Alternative{{Data: it(3, 30, 300), Prob: 0.5}}, Optional: true})
	return x
}

func TestFromXDBFlags(t *testing.T) {
	r := FromXDB(sampleX())
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	r0, r1, r2 := r.Rows[0], r.Rows[1], r.Rows[2]
	if !r0.TupleCertain() {
		t.Error("fully certain row")
	}
	if !r1.ExistsCertain {
		t.Error("multi-alternative non-optional x-tuple certainly exists")
	}
	if !r1.AttrCertain[0] || r1.AttrCertain[1] || !r1.AttrCertain[2] {
		t.Errorf("flags = %v, want [true false true]", r1.AttrCertain)
	}
	if r1.TupleCertain() {
		t.Error("row with uncertain attribute is not tuple-certain")
	}
	if r2.ExistsCertain {
		t.Error("optional row existence is uncertain")
	}
	if !r2.AttrCertain[0] {
		t.Error("single alternative: values certain")
	}
}

func TestProjectionRecoversCertainty(t *testing.T) {
	// The headline win: projecting away the uncertain attribute b makes
	// row 2 a certain answer — tuple-level labels miss this.
	r := FromXDB(sampleX())
	proj := Project(r, []int{0, 2}) // a, c
	cert := CertainTuples(proj)
	if _, ok := cert[it(2, 200).Key()]; !ok {
		t.Error("attribute-level labels should certify (2, 200)")
	}
	if _, ok := cert[it(3, 300).Key()]; ok {
		t.Error("optional row stays uncertain")
	}
	// Tuple-level comparison.
	ua := uadb.FromXDB(sampleX())
	db := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
	db.Put(ua)
	res, err := uadb.Eval(kdb.ProjectQ{Input: kdb.Table{Name: "R"}, Attrs: []string{"a", "c"}}, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Get(it(2, 200)).Cert != 0 {
		t.Fatal("tuple-level labeling should miss (2, 200) — setup broken")
	}
}

func TestSelectOnUncertainAttr(t *testing.T) {
	r := FromXDB(sampleX())
	// Selection reading the uncertain attribute b: row survives via its
	// best guess but its existence becomes uncertain.
	sel := Select(r, Pred{
		Eval:  func(tp types.Tuple) bool { return tp[1].Int() >= 20 },
		Reads: []int{1},
	})
	if len(sel.Rows) != 2 {
		t.Fatalf("rows = %d", len(sel.Rows))
	}
	for _, row := range sel.Rows {
		if row.ExistsCertain {
			t.Errorf("row %v survived an uncertain-attribute selection with certain existence", row.Data)
		}
	}
	// Selection on the certain attribute a keeps certainty.
	sel = Select(r, Pred{
		Eval:  func(tp types.Tuple) bool { return tp[0].Int() <= 2 },
		Reads: []int{0},
	})
	if !sel.Rows[0].ExistsCertain || !sel.Rows[1].ExistsCertain {
		t.Error("certain-attribute selection should preserve existence certainty")
	}
}

// TestCSoundnessAgainstEnumeration: every tuple the attribute-level
// annotation certifies is a true certain answer under world enumeration,
// over random x-DBs and random SP queries.
func TestCSoundnessAgainstEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	for trial := 0; trial < 60; trial++ {
		x := models.NewXRelation(types.NewSchema("R", "a", "b"))
		for i := 0; i < rng.Intn(4)+2; i++ {
			nAlts := rng.Intn(3) + 1
			alts := make([]models.Alternative, nAlts)
			for j := range alts {
				alts[j] = models.Alternative{Data: it(rng.Int63n(3), rng.Int63n(3))}
			}
			x.Add(models.XTuple{Alts: alts, Optional: rng.Intn(4) == 0})
		}
		worlds, err := models.WorldsXDB(x)
		if err != nil {
			continue
		}

		// Random pipeline: optional selection then a projection.
		selCol, selV := rng.Intn(2), rng.Int63n(3)
		withSel := rng.Intn(2) == 0
		projCol := rng.Intn(2)
		selPred := func(tp types.Tuple) bool { return tp[selCol].Int() <= selV }

		r := FromXDB(x)
		if withSel {
			r = Select(r, Pred{Eval: selPred, Reads: []int{selCol}})
		}
		r = Project(r, []int{projCol})

		// Soundness: every certified tuple appears in the pipeline's result
		// in every possible world.
		for _, row := range r.Rows {
			if !row.TupleCertain() {
				continue
			}
			for wi, w := range worlds.Worlds {
				found := false
				w.Get("R").ForEach(func(tp types.Tuple, k int64) {
					if k == 0 || (withSel && !selPred(tp)) {
						return
					}
					if tp.Project([]int{projCol}).Equal(row.Data) {
						found = true
					}
				})
				if !found {
					t.Fatalf("trial %d: certified tuple %s missing from world %d", trial, row.Data, wi)
				}
			}
		}
	}
}

// TestAttributeVsTupleLevelFNR quantifies the extension's value: on random
// projections the attribute-level labeling never has more false negatives
// than the tuple-level one, and strictly fewer when uncertain attributes are
// projected away.
func TestAttributeVsTupleLevelFNR(t *testing.T) {
	rng := rand.New(rand.NewSource(707))
	strictlyBetter := false
	for trial := 0; trial < 40; trial++ {
		x := models.NewXRelation(types.NewSchema("R", "a", "b", "c"))
		for i := 0; i < 20; i++ {
			base := it(rng.Int63n(5), rng.Int63n(5), rng.Int63n(5))
			if rng.Intn(3) == 0 {
				alt := base.Clone()
				alt[1] = types.NewInt(rng.Int63n(5) + 10) // perturb b only
				x.AddChoice(base, alt)
			} else {
				x.AddCertain(base)
			}
		}
		idx := []int{0, 2} // project away the uncertain attribute
		truth := models.CertainSP(x, nil, idx)

		attrCert := CertainTuples(Project(FromXDB(x), idx))

		ua := uadb.FromXDB(x)
		db := kdb.NewDatabase[semiring.Pair[int64]](semiring.UA[int64](semiring.Nat))
		db.Put(ua)
		res, err := uadb.Eval(kdb.ProjectQ{Input: kdb.Table{Name: "R"}, Attrs: []string{"a", "c"}}, db)
		if err != nil {
			t.Fatal(err)
		}

		attrMiss, tupMiss := 0, 0
		truth.ForEach(func(tp types.Tuple, c int64) {
			if c == 0 {
				return
			}
			if _, ok := attrCert[tp.Key()]; !ok {
				attrMiss++
			}
			if res.Get(tp).Cert == 0 {
				tupMiss++
			}
		})
		if attrMiss > tupMiss {
			t.Fatalf("trial %d: attribute-level misses %d > tuple-level %d", trial, attrMiss, tupMiss)
		}
		if attrMiss < tupMiss {
			strictlyBetter = true
		}
	}
	if !strictlyBetter {
		t.Error("expected attribute-level labels to strictly win on some trial")
	}
}

func TestJoinCertainty(t *testing.T) {
	l := FromXDB(sampleX())
	sx := models.NewXRelation(types.NewSchema("S", "k", "v"))
	sx.AddCertain(it(1, 7))
	sx.AddCertain(it(2, 8))
	r := FromXDB(sx)
	join := Join(l, r, Pred{
		Eval:  func(tp types.Tuple) bool { return tp[0].Equal(tp[3]) },
		Reads: []int{0, 3},
	})
	if len(join.Rows) != 2 {
		t.Fatalf("join rows = %d", len(join.Rows))
	}
	for _, row := range join.Rows {
		if row.Data[0].Int() == 1 && !row.ExistsCertain {
			t.Error("join of certain rows on certain attrs must be certain")
		}
		if row.Data[0].Int() == 2 && !row.ExistsCertain {
			t.Error("x-tuple 2 certainly exists and joins on certain attr a")
		}
	}
}

func TestUnionAndStats(t *testing.T) {
	r := FromXDB(sampleX())
	u := Union(r, r)
	if len(u.Rows) != 6 {
		t.Error("bag union")
	}
	s := Summarize(r)
	if s.Rows != 3 || s.ExistsCertain != 2 || s.TupleCertain != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.TotalCells != 9 || s.CertainCells != 8 {
		t.Errorf("cells = %+v", s)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("union arity mismatch should panic")
			}
		}()
		Union(r, Project(r, []int{0}))
	}()
}
