package physbench

import (
	"fmt"
	"math"
	"net"

	"repro/internal/engine"
	"repro/internal/rewrite"
	"repro/internal/server"
	"repro/internal/server/client"
	"repro/internal/types"
)

// ServerRoundTrip measures the wire protocol end to end: an in-process
// uadb-server on a localhost listener, one session per encoding, and a
// scan-filter-project query whose result is half the table — so the
// measurement is dominated by result transfer, which is exactly what the
// binary columnar encoding exists to speed up. Both sessions run the same
// serial plan over the same catalog; the only variable is the result
// encoding ("server-roundtrip/json" vs "server-roundtrip/colbin").
//
// Before timing, both encodings' results are materialized and compared
// bit-exactly (kinds and payload bits, NaN included) — a throughput number
// for a wire format that changes bytes would be meaningless.
func ServerRoundTrip(n int) ([]Result, error) {
	front := rewrite.NewFrontend(engine.NewCatalog())
	tbl := engine.NewTable(types.NewSchema("t", "k", "v"))
	domain := n/10 + 1
	for i := 0; i < n; i++ {
		tbl.AppendVals(types.NewInt(int64(i%domain)), types.NewInt(int64(i)))
	}
	front.Enc.Put(rewrite.EncodeDeterministic(tbl))

	srv := server.New(server.Config{Front: front})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// v = i is unique, so the predicate admits exactly n/2 rows; the UA
	// rewrite appends the certainty column, making three columns of output.
	q := fmt.Sprintf("SELECT k, k + v AS kv FROM t WHERE v < %d", n/2)
	wantRows := n / 2

	dials := []struct {
		enc  string
		dial func(string) (*client.Client, error)
	}{
		{server.EncodingJSON, client.DialJSON},
		{server.EncodingColBin, client.Dial},
	}
	clients := make(map[string]*client.Client, len(dials))
	materialized := map[string][][]types.Value{}
	for _, d := range dials {
		c, err := d.dial(addr)
		if err != nil {
			return nil, err
		}
		defer c.Close()
		if got := c.Encoding(); got != d.enc {
			return nil, fmt.Errorf("server-roundtrip: client negotiated %q, want %q", got, d.enc)
		}
		dop := 1
		if err := c.Set(server.SessionOpts{DOP: &dop}); err != nil {
			return nil, err
		}
		clients[d.enc] = c

		// Warm the plan cache and materialize for the byte-identity check.
		res, err := c.Query(q)
		if err != nil {
			return nil, fmt.Errorf("server-roundtrip %s: %w", d.enc, err)
		}
		materialized[d.enc] = res.Rows()
	}
	if err := sameRows(materialized[server.EncodingJSON], materialized[server.EncodingColBin]); err != nil {
		return nil, fmt.Errorf("server-roundtrip: json and colbin results differ: %w", err)
	}
	if got := len(materialized[server.EncodingJSON]); got != wantRows {
		return nil, fmt.Errorf("server-roundtrip: %d result rows, want %d", got, wantRows)
	}

	var results []Result
	for _, d := range dials {
		c := clients[d.enc]
		r, err := run("server-roundtrip/"+d.enc, n, wantRows, func() (int, error) {
			res, err := c.Query(q)
			if err != nil {
				return 0, err
			}
			return res.NumRows(), nil
		})
		if err != nil {
			return nil, err
		}
		results = append(results, r)
	}
	return results, nil
}

// sameRows compares two materialized results cell for cell with exact kind
// and payload-bit identity.
func sameRows(a, b [][]types.Value) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d rows vs %d rows", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return fmt.Errorf("row %d: %d cols vs %d cols", i, len(a[i]), len(b[i]))
		}
		for j := range a[i] {
			x, y := a[i][j], b[i][j]
			if x.Kind() != y.Kind() {
				return fmt.Errorf("row %d col %d: kind %s vs %s", i, j, x.Kind(), y.Kind())
			}
			same := true
			switch x.Kind() {
			case types.KindNull:
			case types.KindInt:
				same = x.Int() == y.Int()
			case types.KindFloat:
				same = math.Float64bits(x.Float()) == math.Float64bits(y.Float())
			case types.KindString:
				same = x.Str() == y.Str()
			default:
				same = x.Bool() == y.Bool()
			}
			if !same {
				return fmt.Errorf("row %d col %d: %v vs %v", i, j, x, y)
			}
		}
	}
	return nil
}
