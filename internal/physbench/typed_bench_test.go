package physbench

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/types"
	"repro/internal/vector"
)

// BenchmarkTypedVsBatch pins the typed columnar engine against the boxed
// batch engine on the acceptance pipeline. The CI bench smoke step runs it
// with -benchtime=1x; locally, -count with larger -benchtime gives the
// typed-vs-batch ratio BENCH_physical.json records at full size.
func BenchmarkTypedVsBatch(b *testing.B) {
	const n = 300000
	schema, rows := table("t", n, n/10+1)
	cols := vector.FromRows(rows, 2)
	pred := algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1, Name: "v"},
		R: algebra.Const{V: types.NewInt(n / 2)}}
	exprs := []algebra.Expr{algebra.Col{Idx: 0, Name: "k"},
		algebra.Bin{Op: algebra.OpAdd, L: algebra.Col{Idx: 0, Name: "k"}, R: algebra.Col{Idx: 1, Name: "v"}}}
	pipeline := func(scan physical.Operator) physical.Operator {
		return physical.NewProject(&physical.Filter{Input: scan, Pred: pred},
			exprs, []string{"k", "kv"})
	}
	b.Run("ScanFilterProject/Typed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := physical.Drain(pipeline(physical.NewColumnarScan("t", schema, rows, cols)))
			if err != nil || len(out) != n/2 {
				b.Fatal(len(out), err)
			}
		}
	})
	b.Run("ScanFilterProject/Batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := physical.Drain(pipeline(physical.NewScan("t", schema, rows)))
			if err != nil || len(out) != n/2 {
				b.Fatal(len(out), err)
			}
		}
	})

	fschema, frows := floatTable("tf", n, n/10+1)
	fcols := vector.FromRows(frows, 2)
	fpred := algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1, Name: "v"},
		R: algebra.Const{V: types.NewFloat(float64(n) / 4)}}
	fpipeline := func(scan physical.Operator) physical.Operator {
		return physical.NewProject(&physical.Filter{Input: scan, Pred: fpred},
			exprs, []string{"k", "kv"})
	}
	b.Run("ScanFilterProjectFloat/Typed", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := physical.Drain(fpipeline(physical.NewColumnarScan("tf", fschema, frows, fcols)))
			if err != nil || len(out) != n/2 {
				b.Fatal(len(out), err)
			}
		}
	})
	b.Run("ScanFilterProjectFloat/Batch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := physical.Drain(fpipeline(physical.NewScan("tf", fschema, frows)))
			if err != nil || len(out) != n/2 {
				b.Fatal(len(out), err)
			}
		}
	})
}
