package physbench

import (
	"strings"
	"testing"
)

// TestOutOfCoreQuick runs the spilling workloads at a toy size: every op
// must measure (the row-count assertions inside run() hold), produce both
// the in-memory twin and the /spill entry, and format with the
// spill-vs-batch ratio line.
func TestOutOfCoreQuick(t *testing.T) {
	rs, err := OutOfCore(2000, 4<<10) // 4KB budget: everything spills
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"sort-oocore/batch", "sort-oocore/spill",
		"aggregate-oocore/batch", "aggregate-oocore/spill",
		"join-oocore/batch", "join-oocore/spill",
	}
	if len(rs) != len(want) {
		t.Fatalf("got %d results, want %d", len(rs), len(want))
	}
	for i, r := range rs {
		if r.Op != want[i] {
			t.Errorf("result %d: op %q, want %q", i, r.Op, want[i])
		}
		if r.RowsPerSec <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Op, r)
		}
	}
	report := Format(rs)
	if !strings.Contains(report, "spill-vs-batch") {
		t.Errorf("Format missing the spill ratio lines:\n%s", report)
	}
}

// TestOutOfCoreAutoBudget: budget <= 0 derives the quarter-of-data budget
// instead of running unbudgeted (which would never spill and measure the
// wrong thing).
func TestOutOfCoreAutoBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("measurement-backed test skipped in -short")
	}
	rs, err := OutOfCore(200, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) == 0 {
		t.Fatal("no results")
	}
}
