package physbench

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/physical"
)

// OutOfCore measures the memory-governed spilling engine at data ≫ budget:
// sort, hash aggregate (high group cardinality), and hash join (build side
// bigger than the budget) over n-row tables, each executed with a fresh
// governor so every iteration pays the full spill-and-merge cost. budget
// <= 0 derives the conventional acceptance budget of a quarter of the
// scanned table's estimated bytes.
//
// Results carry "/spill" ops at DOP 1 alongside an in-memory "/batch" twin
// for the same plan, so the JSON records the out-of-core slowdown factor
// the same way the suite records batch-vs-row speedups. The "/spill"
// entries depend on disk throughput as well as CPU, so their baseline (see
// BENCH_physical.json and `bench update`) is even more hardware-bound than
// the in-memory entries: regenerate on an idle machine before trusting a
// regression verdict.
func OutOfCore(n int, budget int64) ([]Result, error) {
	schema, rows := table("t", n, n/8+1)
	uschema, urows := table("u", n, n) // unique keys: 1:1 self join
	src := benchSource{
		"t": {schema, rows},
		"u": {uschema, urows},
	}
	if budget <= 0 {
		budget = physical.RowsMemSize(rows) / 4
	}
	col := func(i int, name string) algebra.Expr { return algebra.Col{Idx: i, Name: name} }
	scanT := func() *algebra.Scan { return &algebra.Scan{Table: "t", TblSchema: schema} }
	scanU := func() *algebra.Scan { return &algebra.Scan{Table: "u", TblSchema: uschema} }

	aggRows := n/8 + 1
	if aggRows > n {
		aggRows = n
	}
	workloads := []struct {
		op   string
		want int
		plan algebra.Node
	}{
		{"sort-oocore", n, &algebra.Sort{Input: scanT(),
			Keys: []algebra.SortKey{{Expr: col(1, "v"), Desc: true}}}},
		{"aggregate-oocore", aggRows, &algebra.Aggregate{Input: scanT(),
			GroupBy: []algebra.Expr{col(0, "k")}, GroupNames: []string{"k"},
			Aggs: []algebra.AggSpec{
				{Func: algebra.AggSum, Arg: col(1, "v"), Name: "sum(v)"},
				{Func: algebra.AggCount, Star: true, Name: "count(*)"},
			}}},
		{"join-oocore", n, &algebra.Join{Left: scanU(), Right: scanU(),
			EquiL: []int{0}, EquiR: []int{0}}},
	}

	var out []Result
	for _, w := range workloads {
		for _, eng := range []struct {
			suffix string
			budget int64
		}{{"/batch", 0}, {"/spill", budget}} {
			opt := physical.Options{DOP: 1, MemBudget: eng.budget}
			fn := func() (int, error) {
				op, err := physical.LowerOpts(w.plan, src, opt)
				if err != nil {
					return 0, err
				}
				return drainBatch(op)
			}
			r, err := run(w.op+eng.suffix, n, w.want, fn)
			if err != nil {
				return nil, fmt.Errorf("physbench out-of-core %s: %w", w.op, err)
			}
			out = append(out, r)
		}
	}
	return out, nil
}
