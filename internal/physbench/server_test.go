package physbench

import (
	"strings"
	"testing"
)

// TestServerRoundTripQuick runs the wire-protocol pair at a toy size: both
// encodings must measure against a live localhost server, the pre-timing
// byte-identity check must hold, and Format must emit the colbin-vs-json
// ratio line CI greps for. The 3x throughput claim itself is asserted by
// the bench job at the full 1M-row size, not here — a toy result set is
// execution-dominated, not transfer-dominated.
func TestServerRoundTripQuick(t *testing.T) {
	rs, err := ServerRoundTrip(4000)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"server-roundtrip/json", "server-roundtrip/colbin"}
	if len(rs) != len(want) {
		t.Fatalf("got %d results, want %d", len(rs), len(want))
	}
	for i, r := range rs {
		if r.Op != want[i] {
			t.Errorf("result %d: op %q, want %q", i, r.Op, want[i])
		}
		if r.RowsPerSec <= 0 || r.NsPerOp <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Op, r)
		}
	}
	report := Format(rs)
	if !strings.Contains(report, "colbin-vs-json:") {
		t.Errorf("Format missing the colbin-vs-json ratio line:\n%s", report)
	}
}
