// Package physbench measures the physical engine's operator throughput and
// emits the results in machine-readable form (BENCH_physical.json), so the
// repo's perf trajectory is tracked from PR 2 onward. Every workload runs
// twice — once on the batch engine (internal/physical) and once on the
// frozen row-at-a-time reference (internal/rowref) — making each JSON entry
// one side of a batch-vs-row comparison on identical plans and data; with
// dop > 1 the pipeline-shaped workloads run a third time on the
// morsel-parallel engine ("/par"). Check compares two result sets, which is
// the core of the `bench check` CI regression gate.
package physbench

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/rowref"
	"repro/internal/types"
	"repro/internal/vector"
)

// Result is one benchmark measurement. Op names the workload and engine
// ("scan-filter-project/batch"); Rows is the input size per operation. DOP
// is set on "/par" entries: the worker count of the morsel-parallel engine.
type Result struct {
	Op          string  `json:"op"`
	Rows        int     `json:"rows"`
	DOP         int     `json:"dop,omitempty"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec"`
}

// WriteJSON writes results as indented JSON to path.
func WriteJSON(path string, rs []Result) error {
	b, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// ParseJSON decodes results previously written by WriteJSON.
func ParseJSON(raw []byte) ([]Result, error) {
	var rs []Result
	if err := json.Unmarshal(raw, &rs); err != nil {
		return nil, err
	}
	return rs, nil
}

// Format renders results as an aligned text table with batch-vs-row speedup
// lines after each workload pair.
func Format(rs []Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-28s %10s %14s %12s %14s\n",
		"op", "rows", "ns/op", "allocs/op", "rows/sec")
	byOp := map[string]Result{}
	for _, r := range rs {
		fmt.Fprintf(&sb, "%-28s %10d %14.0f %12d %14.0f\n",
			r.Op, r.Rows, r.NsPerOp, r.AllocsPerOp, r.RowsPerSec)
		byOp[r.Op] = r
	}
	for _, r := range rs {
		base, op, ok := strings.Cut(r.Op, "/")
		if !ok || r.NsPerOp <= 0 {
			continue
		}
		switch op {
		case "batch":
			if row, ok := byOp[base+"/row"]; ok {
				fmt.Fprintf(&sb, "%-28s %.2fx throughput, %+d allocs/op\n",
					base+" batch-vs-row:", row.NsPerOp/r.NsPerOp,
					r.AllocsPerOp-row.AllocsPerOp)
			}
		case "typed":
			if batch, ok := byOp[base+"/batch"]; ok {
				fmt.Fprintf(&sb, "%-28s %.2fx throughput, %+d allocs/op\n",
					base+" typed-vs-batch:", batch.NsPerOp/r.NsPerOp,
					r.AllocsPerOp-batch.AllocsPerOp)
			}
		case "par":
			if batch, ok := byOp[base+"/batch"]; ok {
				fmt.Fprintf(&sb, "%-28s %.2fx throughput at dop=%d\n",
					base+" par-vs-batch:", batch.NsPerOp/r.NsPerOp, r.DOP)
			}
		case "spill":
			if batch, ok := byOp[base+"/batch"]; ok {
				fmt.Fprintf(&sb, "%-28s %.2fx throughput under budget\n",
					base+" spill-vs-batch:", batch.NsPerOp/r.NsPerOp)
			}
		case "fused":
			if typed, ok := byOp[base+"/typed"]; ok {
				fmt.Fprintf(&sb, "%-28s %.2fx throughput, %+d allocs/op\n",
					base+" fused-vs-typed:", typed.NsPerOp/r.NsPerOp,
					r.AllocsPerOp-typed.AllocsPerOp)
			}
			// The fused aggregate's headline comparison is against the boxed
			// batch operator tree it replaces; CI greps this literal.
			if batch, ok := byOp[base+"/batch"]; ok && base == "hash-aggregate" {
				fmt.Fprintf(&sb, "%-28s %.2fx throughput, %+d allocs/op\n",
					base+" fusedagg-vs-batch:", batch.NsPerOp/r.NsPerOp,
					r.AllocsPerOp-batch.AllocsPerOp)
			}
		case "fusedcol":
			// The columnar result sink against the same fused loop draining
			// boxed rows: the allocation ratio is the sink's whole point.
			if fused, ok := byOp[base+"/fused"]; ok {
				allocs := float64(fused.AllocsPerOp)
				if r.AllocsPerOp > 0 {
					allocs /= float64(r.AllocsPerOp)
				}
				fmt.Fprintf(&sb, "%-28s %.2fx throughput, %.1fx fewer allocs/op\n",
					base+" fusedcol-vs-fused:", fused.NsPerOp/r.NsPerOp, allocs)
			}
		case "colbin":
			// The binary columnar wire encoding against the JSON result
			// frames on the same server round trip; CI greps this literal.
			if js, ok := byOp[base+"/json"]; ok {
				fmt.Fprintf(&sb, "%-28s %.2fx throughput\n",
					base+" colbin-vs-json:", js.NsPerOp/r.NsPerOp)
			}
		}
	}
	return sb.String()
}

// CheckStats summarizes how much of the baseline a Check actually compared.
// A gate that skipped every baseline entry compared nothing and passes
// vacuously — callers (cmd/bench check) must treat Compared == 0 with a
// non-empty baseline as a gate failure, not a pass.
type CheckStats struct {
	Baseline int // entries in the committed baseline
	Compared int // baseline entries actually compared
	Skipped  int // baseline entries skipped (missing op, rows or dop mismatch)
}

// AllSkipped reports a vacuous comparison: a non-empty baseline of which
// nothing was comparable.
func (s CheckStats) AllSkipped() bool { return s.Baseline > 0 && s.Compared == 0 }

// Allocation slack for Check: an entry only regresses on allocs/bytes when it
// exceeds the baseline by BOTH the absolute slack and the relative tolerance.
// The absolute floor keeps tiny baselines honest — a 3-alloc fused sink
// drifting to 5 is 66% "worse" but meaningless noise, while a 74-alloc
// pipeline quietly doubling is exactly what the gate exists to catch.
const (
	allocSlack = 16
	byteSlack  = 1 << 20
)

// allocRegressed reports a meaningful allocation regression: more than slack
// above the baseline absolutely AND more than the tolerated fraction above it
// relatively.
func allocRegressed(base, cur int64, tol float64, slack int64) bool {
	return cur > base+slack && float64(cur) > float64(base)*(1+tol)
}

// Check compares current results against a committed baseline: every op
// present in both (at the same input size) must keep its rows_per_sec within
// the tolerated fraction of the baseline — tol 0.25 fails any pipeline more
// than 25% slower than its recorded throughput — and must not grow its
// allocs/op or bytes/op past both the tolerance and the absolute slack
// (allocSlack/byteSlack), so the columnar sink's near-zero allocation floor
// is held by the same gate that holds throughput. It returns a
// human-readable comparison, the list of regressed ops (empty = gate
// passes), and the skip accounting. Ops missing from either side, or
// measured at a different size, are reported and counted but never fail the
// gate here, so baselines and suites can evolve independently; the caller
// decides what an entirely skipped baseline means.
func Check(baseline, current []Result, tol float64) (report string, regressed []string, stats CheckStats) {
	var sb strings.Builder
	curByOp := map[string]Result{}
	for _, r := range current {
		curByOp[r.Op] = r
	}
	stats.Baseline = len(baseline)
	fmt.Fprintf(&sb, "%-34s %14s %14s %8s\n", "op", "base rows/sec", "cur rows/sec", "ratio")
	for _, b := range baseline {
		c, ok := curByOp[b.Op]
		if !ok {
			stats.Skipped++
			fmt.Fprintf(&sb, "%-34s %14.0f %14s %8s\n", b.Op, b.RowsPerSec, "-", "skip")
			continue
		}
		delete(curByOp, b.Op)
		if c.Rows != b.Rows {
			stats.Skipped++
			fmt.Fprintf(&sb, "%-34s rows mismatch (base %d, current %d): skipped\n",
				b.Op, b.Rows, c.Rows)
			continue
		}
		if c.DOP != b.DOP {
			// A /par entry measured at a different worker count (e.g. a CI
			// runner with a different core count than the baseline machine)
			// is not comparable.
			stats.Skipped++
			fmt.Fprintf(&sb, "%-34s dop mismatch (base %d, current %d): skipped\n",
				b.Op, b.DOP, c.DOP)
			continue
		}
		stats.Compared++
		ratio := 0.0
		if b.RowsPerSec > 0 {
			ratio = c.RowsPerSec / b.RowsPerSec
		}
		verdict := "ok"
		if ratio < 1-tol {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s: %.0f -> %.0f rows/sec (%.2fx, floor %.2fx)",
				b.Op, b.RowsPerSec, c.RowsPerSec, ratio, 1-tol))
		}
		if allocRegressed(b.AllocsPerOp, c.AllocsPerOp, tol, allocSlack) {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s: %d -> %d allocs/op (slack %d, tol %.0f%%)",
				b.Op, b.AllocsPerOp, c.AllocsPerOp, int64(allocSlack), tol*100))
		}
		if allocRegressed(b.BytesPerOp, c.BytesPerOp, tol, byteSlack) {
			verdict = "REGRESSED"
			regressed = append(regressed, fmt.Sprintf("%s: %d -> %d bytes/op (slack %d, tol %.0f%%)",
				b.Op, b.BytesPerOp, c.BytesPerOp, int64(byteSlack), tol*100))
		}
		fmt.Fprintf(&sb, "%-34s %14.0f %14.0f %7.2fx %s\n",
			b.Op, b.RowsPerSec, c.RowsPerSec, ratio, verdict)
	}
	extra := make([]string, 0, len(curByOp))
	for op := range curByOp {
		extra = append(extra, op)
	}
	sort.Strings(extra)
	for _, op := range extra {
		fmt.Fprintf(&sb, "%-34s not in baseline: skipped\n", op)
	}
	fmt.Fprintf(&sb, "compared %d of %d baseline entries (%d skipped, %d current-only)\n",
		stats.Compared, stats.Baseline, stats.Skipped, len(extra))
	return sb.String(), regressed, stats
}

// table builds an n-row (k, v) table with k cycling over a small-ish domain
// so joins and aggregates have realistic fan-in.
func table(name string, n, domain int) (types.Schema, [][]types.Value) {
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{
			types.NewInt(int64(i % domain)),
			types.NewInt(int64(i)),
		}
	}
	return types.NewSchema(name, "k", "v"), rows
}

// floatTable is table with a float64 v column, so the suite measures the
// typed engine's float64 loops as well as its int64 ones.
func floatTable(name string, n, domain int) (types.Schema, [][]types.Value) {
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{
			types.NewInt(int64(i % domain)),
			types.NewFloat(float64(i) / 2),
		}
	}
	return types.NewSchema(name, "k", "v"), rows
}

// run times fn (which executes one full drain and returns the result row
// count) with the testing package's benchmark harness, asserting the count.
// The forced collection first starts every workload from the same clean GC
// state, so a measurement is not taxed with (or flattered by) the garbage
// and pacing left behind by the previous one.
func run(op string, rows, wantRows int, fn func() (int, error)) (Result, error) {
	runtime.GC()
	var innerErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			n, err := fn()
			if err != nil {
				innerErr = err
				b.FailNow()
			}
			if n != wantRows {
				innerErr = fmt.Errorf("%s: got %d rows, want %d", op, n, wantRows)
				b.FailNow()
			}
		}
	})
	if innerErr != nil {
		return Result{}, innerErr
	}
	ns := float64(r.T.Nanoseconds()) / float64(r.N)
	return Result{
		Op: op, Rows: rows, NsPerOp: ns,
		AllocsPerOp: r.AllocsPerOp(), BytesPerOp: r.AllocedBytesPerOp(),
		RowsPerSec: float64(rows) / ns * 1e9,
	}, nil
}

// drainBatch executes a batch operator tree and returns its row count.
func drainBatch(op physical.Operator) (int, error) {
	rows, err := physical.Drain(op)
	return len(rows), err
}

// drainRow executes a row-reference operator tree and returns its row count.
func drainRow(op rowref.Operator) (int, error) {
	rows, err := rowref.Drain(op)
	return len(rows), err
}

// benchSource exposes the generated tables to physical.LowerOpts, so the
// parallel workloads run through the same lowering the engine uses.
type benchSource map[string]struct {
	schema types.Schema
	rows   [][]types.Value
}

func (s benchSource) Resolve(table string) (types.Schema, [][]types.Value, error) {
	t, ok := s[table]
	if !ok {
		return types.Schema{}, nil, fmt.Errorf("physbench: no table %q", table)
	}
	return t.schema, t.rows, nil
}

// benchColSource is benchSource plus prebuilt columnar mirrors — the
// physical.ColumnSource the typed scan and fused lowering paths need.
type benchColSource struct {
	benchSource
	cols map[string]*vector.Columns
}

func (s benchColSource) ResolveColumns(table string) (*vector.Columns, bool) {
	c, ok := s.cols[table]
	return c, ok
}

// Suite runs every workload at the given input size on both serial engines
// (batch vs the frozen row reference) and returns the measurements. The
// scan→filter→project pipeline is the acceptance workload: the batch engine
// must beat the row engine by ≥2x with fewer allocs/op. Workloads with a
// typed columnar fast path run again over prebuilt column vectors ("/typed"
// entries — same serial operator trees, unboxed kernels); the typed
// acceptance bar is scan-filter-project/typed at ≥1.5x the boxed /batch
// rows_per_sec on int64 and float64 columns. With dop > 1 (dop <= 0
// resolves to GOMAXPROCS, like physical.Options) the pipeline-shaped
// workloads also run on the morsel-parallel engine ("/par" entries) at that
// worker count — on multi-core hardware scan-filter-project/par is the
// parallel acceptance workload against scan-filter-project/batch. The
// chain-shaped workloads run once more lowered with Options.Fuse ("/fused"
// entries): one compiled loop per pipeline instead of an operator tree,
// measured against the /typed entries they collapse. Two entries measure the
// pipeline-breaker work: hash-aggregate/fused is the fused aggregation
// lowering (bar: ≥1.5x hash-aggregate/batch rows_per_sec), and
// scan-filter-project/fusedcol is the pre-lowered fused chain drained
// through the columnar result sink (bar: ≥10x fewer allocs/op than the
// /fused row drain).
func Suite(n, dop int) ([]Result, error) {
	if dop <= 0 {
		dop = runtime.GOMAXPROCS(0)
	}
	schema, rows := table("t", n, n/10+1)
	uschema, urows := table("u", n, n) // unique keys: the join is 1:1
	src := benchSource{
		"t": {schema, rows},
		"u": {uschema, urows},
	}
	// Columnar forms, built once outside the timed region — exactly the
	// cached mirror engine catalogs hand to lowering. "/typed" entries run
	// the same serial operator trees as "/batch" over these columns.
	tCols := vector.FromRows(rows, 2)
	uCols := vector.FromRows(urows, 2)
	lowerPar := func(plan algebra.Node) (physical.Operator, error) {
		return physical.LowerOpts(plan, src, physical.Options{DOP: dop})
	}
	col := func(i int, name string) algebra.Expr { return algebra.Col{Idx: i, Name: name} }
	// The acceptance pipeline is the canonical select-project query shape
	// (the same family as the UA overhead micro query's "l.v < 9000"):
	// v < n/2 keeps half the rows, the projection keeps a column and adds
	// one arithmetic output.
	pred := func() algebra.Expr {
		return algebra.Bin{Op: algebra.OpLt, L: col(1, "v"),
			R: algebra.Const{V: types.NewInt(int64(n / 2))}}
	}
	projExprs := func() []algebra.Expr {
		return []algebra.Expr{col(0, "k"),
			algebra.Bin{Op: algebra.OpAdd, L: col(0, "k"), R: col(1, "v")}}
	}
	// The expr-heavy variant stresses kernel evaluation itself: a modulo
	// inside the comparison. Its speedup is smaller — shared expression
	// cost bounds it — and tracking it keeps the suite honest.
	heavyPred := func() algebra.Expr {
		return algebra.Bin{Op: algebra.OpEq,
			L: algebra.Bin{Op: algebra.OpMod, L: col(1, "v"), R: algebra.Const{V: types.NewInt(2)}},
			R: algebra.Const{V: types.NewInt(0)},
		}
	}
	groupBy := func() []algebra.Expr {
		return []algebra.Expr{algebra.Bin{Op: algebra.OpMod, L: col(1, "v"), R: algebra.Const{V: types.NewInt(100)}}}
	}
	aggs := []algebra.AggSpec{
		{Func: algebra.AggSum, Arg: col(1, "v"), Name: "sum(v)"},
		{Func: algebra.AggCount, Star: true, Name: "count(*)"},
	}
	sortKeys := []algebra.SortKey{{Expr: col(1, "v"), Desc: true}}
	// "v < n/2" over v = 0..n-1 keeps exactly ⌊n/2⌋ rows; the even-v and
	// float pipelines keep ⌈n/2⌉ — distinct counts whenever -physrows is
	// odd, so each workload asserts its own exact cardinality.
	sfpRows := n / 2
	halfUp := (n + 1) / 2
	aggRows := 100
	if n < 100 {
		aggRows = n
	}
	distinctRows := n/10 + 1
	if distinctRows > n {
		distinctRows = n
	}

	var out []Result
	add := func(r Result, err error) error {
		if err != nil {
			return err
		}
		out = append(out, r)
		return nil
	}

	scanT := func() *algebra.Scan { return &algebra.Scan{Table: "t", TblSchema: schema} }
	scanU := func() *algebra.Scan { return &algebra.Scan{Table: "u", TblSchema: uschema} }
	drainPar := func(plan algebra.Node) func() (int, error) {
		return func() (int, error) {
			op, err := lowerPar(plan)
			if err != nil {
				return 0, err
			}
			return drainBatch(op)
		}
	}

	// A sparse build side for the selective probe workload: one build key per
	// 4096 probe rows, so most probe batches contain no match at all. The
	// typed engine probes such batches straight off the vectors and never
	// materializes their rows; the boxed engine boxes every probe row first.
	const sparseStride = 4096
	wschema, wrows := types.NewSchema("w", "k", "v"), make([][]types.Value, n/sparseStride)
	for i := range wrows {
		wrows[i] = []types.Value{types.NewInt(int64(i * sparseStride)), types.NewInt(int64(i))}
	}
	wCols := vector.FromRows(wrows, 2)
	src["w"] = struct {
		schema types.Schema
		rows   [][]types.Value
	}{wschema, wrows}
	sparseMatches := n / sparseStride

	type workload struct {
		op    string
		want  int
		batch func() (int, error)
		row   func() (int, error)
		typed func() (int, error) // nil: no typed fast path to demonstrate
		par   func() (int, error) // nil: workload has no parallel lowering
	}
	workloads := []workload{
		{"scan-filter-project", sfpRows,
			func() (int, error) {
				return drainBatch(physical.NewProject(
					&physical.Filter{Input: physical.NewScan("t", schema, rows), Pred: pred()},
					projExprs(), []string{"k", "kv"}))
			},
			func() (int, error) {
				return drainRow(&rowref.Project{
					Input: &rowref.Filter{Input: rowref.NewScan(schema, rows), Pred: pred()},
					Exprs: projExprs()})
			},
			func() (int, error) {
				return drainBatch(physical.NewProject(
					&physical.Filter{Input: physical.NewColumnarScan("t", schema, rows, tCols), Pred: pred()},
					projExprs(), []string{"k", "kv"}))
			},
			drainPar(&algebra.Project{
				Input: &algebra.Filter{Input: scanT(), Pred: pred()},
				Exprs: projExprs(), Names: []string{"k", "kv"}})},
		{"scan-filter-project-exprheavy", halfUp,
			func() (int, error) {
				return drainBatch(physical.NewProject(
					&physical.Filter{Input: physical.NewScan("t", schema, rows), Pred: heavyPred()},
					projExprs(), []string{"k", "kv"}))
			},
			func() (int, error) {
				return drainRow(&rowref.Project{
					Input: &rowref.Filter{Input: rowref.NewScan(schema, rows), Pred: heavyPred()},
					Exprs: projExprs()})
			},
			func() (int, error) {
				return drainBatch(physical.NewProject(
					&physical.Filter{Input: physical.NewColumnarScan("t", schema, rows, tCols), Pred: heavyPred()},
					projExprs(), []string{"k", "kv"}))
			},
			drainPar(&algebra.Project{
				Input: &algebra.Filter{Input: scanT(), Pred: heavyPred()},
				Exprs: projExprs(), Names: []string{"k", "kv"}})},
		{"hash-join", n,
			func() (int, error) {
				return drainBatch(physical.NewHashJoin(
					physical.NewScan("u", uschema, urows), physical.NewScan("u", uschema, urows),
					[]int{0}, []int{0}, nil))
			},
			func() (int, error) {
				return drainRow(rowref.NewHashJoin(
					rowref.NewScan(uschema, urows), rowref.NewScan(uschema, urows),
					[]int{0}, []int{0}, nil))
			},
			func() (int, error) {
				// Typed build- and probe-key encoding straight off the vectors.
				return drainBatch(physical.NewHashJoin(
					physical.NewColumnarScan("u", uschema, urows, uCols),
					physical.NewColumnarScan("u", uschema, urows, uCols),
					[]int{0}, []int{0}, nil))
			},
			drainPar(&algebra.Join{Left: scanU(), Right: scanU(),
				EquiL: []int{0}, EquiR: []int{0}})},
		{"join-probe-sparse", sparseMatches,
			func() (int, error) {
				return drainBatch(physical.NewHashJoin(
					physical.NewProject(physical.NewScan("t", schema, rows),
						[]algebra.Expr{col(0, "k"), col(1, "v")}, []string{"k", "v"}),
					physical.NewScan("w", wschema, wrows),
					[]int{1}, []int{0}, nil))
			},
			func() (int, error) {
				return drainRow(rowref.NewHashJoin(
					&rowref.Project{Input: rowref.NewScan(schema, rows),
						Exprs: []algebra.Expr{col(0, "k"), col(1, "v")}},
					rowref.NewScan(wschema, wrows),
					[]int{1}, []int{0}, nil))
			},
			func() (int, error) {
				// Column-only probe batches: passthrough projection keeps the
				// vectors, the probe keys off them, and only the rare
				// matching batch ever builds rows.
				return drainBatch(physical.NewHashJoin(
					physical.NewProject(physical.NewColumnarScan("t", schema, rows, tCols),
						[]algebra.Expr{col(0, "k"), col(1, "v")}, []string{"k", "v"}),
					physical.NewColumnarScan("w", wschema, wrows, wCols),
					[]int{1}, []int{0}, nil))
			},
			nil},
		{"hash-aggregate", aggRows,
			func() (int, error) {
				return drainBatch(physical.NewHashAggregate(
					physical.NewScan("t", schema, rows), groupBy(), []string{"g"}, aggs))
			},
			func() (int, error) {
				return drainRow(&rowref.HashAggregate{
					Input: rowref.NewScan(schema, rows), GroupBy: groupBy(), Aggs: aggs,
				})
			},
			func() (int, error) {
				// Columnar scan feeding the same boxed fold. The group key is
				// an expression, not a bare column, so the aggregate's typed
				// keying cannot engage — this entry isolates what the scan
				// alone buys, and is the /fused entry's operator-tree twin.
				return drainBatch(physical.NewHashAggregate(
					physical.NewColumnarScan("t", schema, rows, tCols),
					groupBy(), []string{"g"}, aggs))
			},
			drainPar(&algebra.Aggregate{Input: scanT(),
				GroupBy: groupBy(), GroupNames: []string{"g"}, Aggs: aggs})},
		{"distinct", distinctRows,
			func() (int, error) {
				return drainBatch(&physical.Distinct{Input: physical.NewProject(
					physical.NewScan("t", schema, rows),
					[]algebra.Expr{col(0, "k")}, []string{"k"})})
			},
			func() (int, error) {
				return drainRow(&rowref.Distinct{Input: &rowref.Project{
					Input: rowref.NewScan(schema, rows),
					Exprs: []algebra.Expr{col(0, "k")}}})
			},
			func() (int, error) {
				// Column passthrough projection, per-vector dedup keying.
				return drainBatch(&physical.Distinct{Input: physical.NewProject(
					physical.NewColumnarScan("t", schema, rows, tCols),
					[]algebra.Expr{col(0, "k")}, []string{"k"})})
			},
			nil},
		{"sort", n,
			func() (int, error) {
				return drainBatch(&physical.Sort{
					Input: physical.NewScan("t", schema, rows), Keys: sortKeys})
			},
			func() (int, error) {
				return drainRow(&rowref.Sort{
					Input: rowref.NewScan(schema, rows), Keys: sortKeys})
			},
			nil, nil},
	}
	for _, w := range workloads {
		if err := add(run(w.op+"/batch", n, w.want, w.batch)); err != nil {
			return nil, err
		}
		if err := add(run(w.op+"/row", n, w.want, w.row)); err != nil {
			return nil, err
		}
		if w.typed != nil {
			if err := add(run(w.op+"/typed", n, w.want, w.typed)); err != nil {
				return nil, err
			}
		}
		if w.par == nil || dop <= 1 {
			continue
		}
		r, err := run(w.op+"/par", n, w.want, w.par)
		if err != nil {
			return nil, err
		}
		r.DOP = dop
		out = append(out, r)
	}

	// Fused single-loop pipelines ("/fused"): the same logical plans lowered
	// with Options.Fuse, collapsing each scan→filter→project chain — and the
	// filtered sparse join's probe side — into one specialized loop over the
	// typed vectors, with no intermediate batch materialization. The fused
	// acceptance bar is scan-filter-project/fused at ≥2x the /typed
	// rows_per_sec and the expr-heavy variant at ≥1.5x.
	colSrc := benchColSource{benchSource: src, cols: map[string]*vector.Columns{
		"t": tCols, "u": uCols, "w": wCols,
	}}
	lowerOptsDrain := func(plan algebra.Node, opt physical.Options) func() (int, error) {
		return func() (int, error) {
			op, err := physical.LowerOpts(plan, colSrc, opt)
			if err != nil {
				return 0, err
			}
			return drainBatch(op)
		}
	}
	lowerFusedDrain := func(plan algebra.Node) func() (int, error) {
		return lowerOptsDrain(plan, physical.Options{DOP: 1, Fuse: true})
	}
	// The fused probe workload keeps a filter under the join: a passthrough
	// probe chain declines fusion (the typed HashJoin already probes straight
	// off the vectors — fusing adds nothing there), so the filtered variant
	// is where the fused probe path engages. Its /typed twin lowers the same
	// plan without Fuse, so the pair differs in execution strategy only.
	filteredProbePlan := func() algebra.Node {
		return &algebra.Join{
			Left: &algebra.Project{
				Input: &algebra.Filter{Input: scanT(), Pred: pred()},
				Exprs: []algebra.Expr{col(0, "k"), col(1, "v")},
				Names: []string{"k", "v"}},
			Right: &algebra.Scan{Table: "w", TblSchema: wschema},
			EquiL: []int{1}, EquiR: []int{0}}
	}
	filteredMatches := sparseMatches
	if m := (sfpRows + sparseStride - 1) / sparseStride; m < filteredMatches {
		filteredMatches = m
	}
	// The columnar-sink workload ("/fusedcol") drains the same fused
	// scan→filter→project loop through DrainColumns instead of the boxed row
	// sink. The plan is lowered once outside the timed region — the sink's
	// client shape is a prepared plan re-executed per query, and lowering per
	// iteration would measure plan construction, not the sink — so each
	// iteration is Open → vector windows → Close with no per-row boxing. Its
	// steady-state allocs/op against the /fused row drain is the sink's
	// acceptance measurement (≥10x fewer allocs/op at 1M rows).
	fusedColOp, err := physical.LowerOpts(&algebra.Project{
		Input: &algebra.Filter{Input: scanT(), Pred: pred()},
		Exprs: projExprs(), Names: []string{"k", "kv"}}, colSrc,
		physical.Options{DOP: 1, Fuse: true})
	if err != nil {
		return nil, err
	}
	fusedWorkloads := []struct {
		op   string
		want int
		fn   func() (int, error)
	}{
		{"scan-filter-project/fused", sfpRows,
			lowerFusedDrain(&algebra.Project{
				Input: &algebra.Filter{Input: scanT(), Pred: pred()},
				Exprs: projExprs(), Names: []string{"k", "kv"}})},
		{"scan-filter-project-exprheavy/fused", halfUp,
			lowerFusedDrain(&algebra.Project{
				Input: &algebra.Filter{Input: scanT(), Pred: heavyPred()},
				Exprs: projExprs(), Names: []string{"k", "kv"}})},
		{"scan-filter-project/fusedcol", sfpRows,
			func() (int, error) {
				res, err := physical.DrainColumns(fusedColOp)
				if err != nil {
					return 0, err
				}
				return res.NumRows(), nil
			}},
		{"join-probe-sparse-filtered/typed", filteredMatches,
			lowerOptsDrain(filteredProbePlan(), physical.Options{DOP: 1})},
		{"join-probe-sparse-filtered/fused", filteredMatches,
			lowerFusedDrain(filteredProbePlan())},
		// The fused aggregate collapses the whole grouped plan — scan, the
		// pruning projection, group-key and argument kernels, and the
		// accumulators — into one fold per window, with unboxed int/float
		// absorption. Its bar is ≥1.5x hash-aggregate/batch rows_per_sec.
		{"hash-aggregate/fused", aggRows,
			lowerFusedDrain(&algebra.Aggregate{Input: scanT(),
				GroupBy: groupBy(), GroupNames: []string{"g"}, Aggs: aggs})},
	}
	for _, w := range fusedWorkloads {
		if err := add(run(w.op, n, w.want, w.fn)); err != nil {
			return nil, err
		}
	}

	// The float64 pipeline runs as its own phase, with its table built only
	// now: keeping a third n-row table live through every measurement above
	// inflates GC scan cost for all of them (the boxed engine, whose output
	// is pointer-bearing Values, suffers most), distorting exactly the
	// ratios the suite exists to record. v = i/2 against v < n/4 keeps the
	// first ⌈n/2⌉ rows — the int pipeline's selectivity, modulo the odd-n
	// boundary row.
	fschema, frows := floatTable("tf", n, n/10+1)
	fCols := vector.FromRows(frows, 2)
	src["tf"] = struct {
		schema types.Schema
		rows   [][]types.Value
	}{fschema, frows}
	colSrc.cols["tf"] = fCols
	fpred := func() algebra.Expr {
		return algebra.Bin{Op: algebra.OpLt, L: col(1, "v"),
			R: algebra.Const{V: types.NewFloat(float64(n) / 4)}}
	}
	floatWorkloads := []struct {
		op string
		fn func() (int, error)
	}{
		{"scan-filter-project-float/batch", func() (int, error) {
			return drainBatch(physical.NewProject(
				&physical.Filter{Input: physical.NewScan("tf", fschema, frows), Pred: fpred()},
				projExprs(), []string{"k", "kv"}))
		}},
		{"scan-filter-project-float/row", func() (int, error) {
			return drainRow(&rowref.Project{
				Input: &rowref.Filter{Input: rowref.NewScan(fschema, frows), Pred: fpred()},
				Exprs: projExprs()})
		}},
		{"scan-filter-project-float/typed", func() (int, error) {
			return drainBatch(physical.NewProject(
				&physical.Filter{Input: physical.NewColumnarScan("tf", fschema, frows, fCols), Pred: fpred()},
				projExprs(), []string{"k", "kv"}))
		}},
		{"scan-filter-project-float/fused",
			lowerFusedDrain(&algebra.Project{
				Input: &algebra.Filter{
					Input: &algebra.Scan{Table: "tf", TblSchema: fschema}, Pred: fpred()},
				Exprs: projExprs(), Names: []string{"k", "kv"}})},
	}
	for _, w := range floatWorkloads {
		if err := add(run(w.op, n, halfUp, w.fn)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
