package physbench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/rowref"
	"repro/internal/types"
)

// BenchmarkBatchVsRow pins the batch engine against the frozen row-at-a-time
// reference on the two acceptance paths: the scan→filter→project pipeline
// and the join-heavy path. The CI bench smoke step runs these with
// -benchtime=1x, so a refactor that breaks either engine's executability
// fails fast even before the numbers are looked at.
func BenchmarkBatchVsRow(b *testing.B) {
	const n = 100000
	schema, rows := table("t", n, n/10+1)
	uschema, urows := table("u", n, n)
	pred := algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1, Name: "v"},
		R: algebra.Const{V: types.NewInt(n / 2)}}
	exprs := []algebra.Expr{algebra.Col{Idx: 0, Name: "k"},
		algebra.Bin{Op: algebra.OpAdd, L: algebra.Col{Idx: 0, Name: "k"}, R: algebra.Col{Idx: 1, Name: "v"}}}

	b.Run("ScanFilterProject/Batch", func(b *testing.B) {
		op := physical.NewProject(
			&physical.Filter{Input: physical.NewScan("t", schema, rows), Pred: pred},
			exprs, []string{"k", "kv"})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := physical.Drain(op)
			if err != nil || len(out) != n/2 {
				b.Fatal(len(out), err)
			}
		}
	})
	b.Run("ScanFilterProject/Row", func(b *testing.B) {
		op := &rowref.Project{
			Input: &rowref.Filter{Input: rowref.NewScan(schema, rows), Pred: pred},
			Exprs: exprs}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := rowref.Drain(op)
			if err != nil || len(out) != n/2 {
				b.Fatal(len(out), err)
			}
		}
	})
	b.Run("HashJoin/Batch", func(b *testing.B) {
		op := physical.NewHashJoin(
			physical.NewScan("u", uschema, urows), physical.NewScan("u", uschema, urows),
			[]int{0}, []int{0}, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := physical.Drain(op)
			if err != nil || len(out) != n {
				b.Fatal(len(out), err)
			}
		}
	})
	b.Run("HashJoin/Row", func(b *testing.B) {
		op := rowref.NewHashJoin(
			rowref.NewScan(uschema, urows), rowref.NewScan(uschema, urows),
			[]int{0}, []int{0}, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := rowref.Drain(op)
			if err != nil || len(out) != n {
				b.Fatal(len(out), err)
			}
		}
	})
}

// TestFormatAndJSON covers the reporting half of the suite without running
// the (seconds-long) measurements: Format must pair batch/row results into
// speedup lines and WriteJSON must round-trip the records.
func TestFormatAndJSON(t *testing.T) {
	rs := []Result{
		{Op: "scan-filter-project/batch", Rows: 1000, NsPerOp: 100, AllocsPerOp: 2, RowsPerSec: 1e7},
		{Op: "scan-filter-project/row", Rows: 1000, NsPerOp: 300, AllocsPerOp: 500, RowsPerSec: 3.3e6},
	}
	s := Format(rs)
	if !strings.Contains(s, "scan-filter-project/batch") ||
		!strings.Contains(s, "3.00x throughput") {
		t.Errorf("format missing expected lines:\n%s", s)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteJSON(path, rs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back []Result
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0] != rs[0] || back[1] != rs[1] {
		t.Errorf("JSON round-trip mismatch: %+v", back)
	}
}
