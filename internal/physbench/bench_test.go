package physbench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/physical"
	"repro/internal/rowref"
	"repro/internal/types"
)

// BenchmarkBatchVsRow pins the batch engine against the frozen row-at-a-time
// reference on the two acceptance paths: the scan→filter→project pipeline
// and the join-heavy path. The CI bench smoke step runs these with
// -benchtime=1x, so a refactor that breaks either engine's executability
// fails fast even before the numbers are looked at.
func BenchmarkBatchVsRow(b *testing.B) {
	const n = 100000
	schema, rows := table("t", n, n/10+1)
	uschema, urows := table("u", n, n)
	pred := algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1, Name: "v"},
		R: algebra.Const{V: types.NewInt(n / 2)}}
	exprs := []algebra.Expr{algebra.Col{Idx: 0, Name: "k"},
		algebra.Bin{Op: algebra.OpAdd, L: algebra.Col{Idx: 0, Name: "k"}, R: algebra.Col{Idx: 1, Name: "v"}}}

	b.Run("ScanFilterProject/Batch", func(b *testing.B) {
		op := physical.NewProject(
			&physical.Filter{Input: physical.NewScan("t", schema, rows), Pred: pred},
			exprs, []string{"k", "kv"})
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := physical.Drain(op)
			if err != nil || len(out) != n/2 {
				b.Fatal(len(out), err)
			}
		}
	})
	b.Run("ScanFilterProject/Row", func(b *testing.B) {
		op := &rowref.Project{
			Input: &rowref.Filter{Input: rowref.NewScan(schema, rows), Pred: pred},
			Exprs: exprs}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := rowref.Drain(op)
			if err != nil || len(out) != n/2 {
				b.Fatal(len(out), err)
			}
		}
	})
	b.Run("HashJoin/Batch", func(b *testing.B) {
		op := physical.NewHashJoin(
			physical.NewScan("u", uschema, urows), physical.NewScan("u", uschema, urows),
			[]int{0}, []int{0}, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := physical.Drain(op)
			if err != nil || len(out) != n {
				b.Fatal(len(out), err)
			}
		}
	})
	b.Run("HashJoin/Row", func(b *testing.B) {
		op := rowref.NewHashJoin(
			rowref.NewScan(uschema, urows), rowref.NewScan(uschema, urows),
			[]int{0}, []int{0}, nil)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := rowref.Drain(op)
			if err != nil || len(out) != n {
				b.Fatal(len(out), err)
			}
		}
	})
}

// TestFormatAndJSON covers the reporting half of the suite without running
// the (seconds-long) measurements: Format must pair batch/row and par/batch
// results into speedup lines and WriteJSON must round-trip the records.
func TestFormatAndJSON(t *testing.T) {
	rs := []Result{
		{Op: "scan-filter-project/batch", Rows: 1000, NsPerOp: 100, AllocsPerOp: 2, RowsPerSec: 1e7},
		{Op: "scan-filter-project/row", Rows: 1000, NsPerOp: 300, AllocsPerOp: 500, RowsPerSec: 3.3e6},
		{Op: "scan-filter-project/par", Rows: 1000, DOP: 4, NsPerOp: 50, AllocsPerOp: 40, RowsPerSec: 2e7},
	}
	s := Format(rs)
	if !strings.Contains(s, "scan-filter-project/batch") ||
		!strings.Contains(s, "3.00x throughput") {
		t.Errorf("format missing expected lines:\n%s", s)
	}
	if !strings.Contains(s, "par-vs-batch") || !strings.Contains(s, "2.00x throughput at dop=4") {
		t.Errorf("format missing par-vs-batch line:\n%s", s)
	}

	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteJSON(path, rs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseJSON(raw)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(rs) {
		t.Fatalf("JSON round-trip: %d results, want %d", len(back), len(rs))
	}
	for i := range rs {
		if back[i] != rs[i] {
			t.Errorf("JSON round-trip mismatch at %d: %+v != %+v", i, back[i], rs[i])
		}
	}
}

// TestFormatFusedFooters pins the pipeline-breaker comparison lines: the
// fused aggregate renders a fusedagg-vs-batch footer (CI greps that literal)
// next to fused-vs-typed, and the columnar sink renders its allocation ratio
// against the fused row drain.
func TestFormatFusedFooters(t *testing.T) {
	rs := []Result{
		{Op: "hash-aggregate/batch", Rows: 1000, NsPerOp: 200, AllocsPerOp: 1100, RowsPerSec: 5e6},
		{Op: "hash-aggregate/typed", Rows: 1000, NsPerOp: 180, AllocsPerOp: 4000, RowsPerSec: 5.5e6},
		{Op: "hash-aggregate/fused", Rows: 1000, NsPerOp: 100, AllocsPerOp: 1150, RowsPerSec: 1e7},
		{Op: "scan-filter-project/fused", Rows: 1000, NsPerOp: 100, AllocsPerOp: 74, RowsPerSec: 1e7},
		{Op: "scan-filter-project/fusedcol", Rows: 1000, NsPerOp: 4, AllocsPerOp: 3, RowsPerSec: 2.5e8},
	}
	s := Format(rs)
	for _, frag := range []string{
		"hash-aggregate fusedagg-vs-batch:",
		"2.00x throughput, +50 allocs/op", // fused agg vs batch: 200/100, 1150-1100
		"hash-aggregate fused-vs-typed:",
		"scan-filter-project fusedcol-vs-fused:",
		"25.00x throughput, 24.7x fewer allocs/op", // 100/4, 74/3
	} {
		if !strings.Contains(s, frag) {
			t.Errorf("format missing %q:\n%s", frag, s)
		}
	}
	// A zero-alloc columnar sink must not divide by zero.
	rs[4].AllocsPerOp = 0
	if s := Format(rs); !strings.Contains(s, "fusedcol-vs-fused") {
		t.Errorf("zero-alloc fusedcol lost its footer:\n%s", s)
	}
}

// TestCheckAllocGate pins the allocation half of the gate: allocs/op and
// bytes/op regress only past BOTH the absolute slack and the relative
// tolerance, so tiny-baseline jitter (3 → 5 allocs) passes while a re-boxed
// sink (74 → 500074) fails even when throughput stays inside tolerance.
func TestCheckAllocGate(t *testing.T) {
	base := []Result{
		{Op: "sink/fusedcol", Rows: 1000, RowsPerSec: 100, AllocsPerOp: 3, BytesPerOp: 144},
		{Op: "pipe/fused", Rows: 1000, RowsPerSec: 100, AllocsPerOp: 74, BytesPerOp: 60 << 20},
		{Op: "fat/batch", Rows: 1000, RowsPerSec: 100, AllocsPerOp: 1000, BytesPerOp: 1 << 20},
	}
	cur := []Result{
		// +2 allocs: 66% relative but inside the absolute slack — noise.
		{Op: "sink/fusedcol", Rows: 1000, RowsPerSec: 100, AllocsPerOp: 5, BytesPerOp: 200},
		// Re-boxed sink: throughput fine, allocs and bytes exploded.
		{Op: "pipe/fused", Rows: 1000, RowsPerSec: 100, AllocsPerOp: 500074, BytesPerOp: 120 << 20},
		// +20% allocs: past the slack but inside the 25% tolerance.
		{Op: "fat/batch", Rows: 1000, RowsPerSec: 100, AllocsPerOp: 1200, BytesPerOp: 1 << 20},
	}
	report, regressed, stats := Check(base, cur, 0.25)
	if stats.Compared != 3 {
		t.Fatalf("compared %d, want 3", stats.Compared)
	}
	if len(regressed) != 2 {
		t.Fatalf("want pipe/fused regressed on allocs and bytes, got %v", regressed)
	}
	for _, frag := range []string{"pipe/fused: 74 -> 500074 allocs/op", "bytes/op"} {
		if !strings.Contains(strings.Join(regressed, "\n"), frag) {
			t.Errorf("regressions missing %q: %v", frag, regressed)
		}
	}
	if !strings.Contains(report, "REGRESSED") {
		t.Errorf("report missing REGRESSED verdict:\n%s", report)
	}
	// Fewer allocs than baseline never fails.
	if _, reg, _ := Check(base[1:2], []Result{
		{Op: "pipe/fused", Rows: 1000, RowsPerSec: 100, AllocsPerOp: 3, BytesPerOp: 144},
	}, 0.25); len(reg) != 0 {
		t.Errorf("alloc improvement must pass, got %v", reg)
	}
}

// TestCheck pins the regression gate's comparison semantics: within
// tolerance passes, beyond it fails, faster never fails, and op/row-count
// mismatches are reported but skipped.
func TestCheck(t *testing.T) {
	base := []Result{
		{Op: "a/batch", Rows: 1000, RowsPerSec: 100},
		{Op: "b/batch", Rows: 1000, RowsPerSec: 100},
		{Op: "gone/batch", Rows: 1000, RowsPerSec: 100},
		{Op: "resized/batch", Rows: 1000, RowsPerSec: 100},
	}
	base = append(base, Result{Op: "p/par", Rows: 1000, DOP: 4, RowsPerSec: 100})
	cur := []Result{
		{Op: "a/batch", Rows: 1000, RowsPerSec: 80},      // -20%: within 25%
		{Op: "b/batch", Rows: 1000, RowsPerSec: 60},      // -40%: regressed
		{Op: "resized/batch", Rows: 500, RowsPerSec: 1},  // different size: skip
		{Op: "new/batch", Rows: 1000, RowsPerSec: 1},     // not in baseline: skip
		{Op: "p/par", Rows: 1000, DOP: 2, RowsPerSec: 1}, // different dop: skip
	}
	report, regressed, stats := Check(base, cur, 0.25)
	if len(regressed) != 1 || !strings.Contains(regressed[0], "b/batch") {
		t.Fatalf("want exactly b/batch regressed, got %v", regressed)
	}
	for _, frag := range []string{"REGRESSED", "skip", "not in baseline", "dop mismatch", "compared 2 of 5"} {
		if !strings.Contains(report, frag) {
			t.Errorf("report missing %q:\n%s", frag, report)
		}
	}
	if stats.Baseline != 5 || stats.Compared != 2 || stats.Skipped != 3 {
		t.Errorf("stats = %+v, want {Baseline:5 Compared:2 Skipped:3}", stats)
	}
	if stats.AllSkipped() {
		t.Error("AllSkipped true despite 2 comparisons")
	}
	// Faster than baseline is never a failure.
	if _, reg, _ := Check(base[:1], []Result{{Op: "a/batch", Rows: 1000, RowsPerSec: 1e6}}, 0.25); len(reg) != 0 {
		t.Errorf("faster run must pass, got %v", reg)
	}
}

// TestCheckAllSkipped pins the vacuous-gate accounting: a baseline of which
// nothing is comparable must be detectable by the caller, and an empty
// baseline must not count as vacuous (there was nothing to guard).
func TestCheckAllSkipped(t *testing.T) {
	base := []Result{
		{Op: "a/batch", Rows: 1000, RowsPerSec: 100},
		{Op: "p/par", Rows: 1000, DOP: 4, RowsPerSec: 100},
	}
	cur := []Result{
		{Op: "a/batch", Rows: 500, RowsPerSec: 1},        // rows mismatch
		{Op: "p/par", Rows: 1000, DOP: 2, RowsPerSec: 1}, // dop mismatch
	}
	_, regressed, stats := Check(base, cur, 0.25)
	if len(regressed) != 0 {
		t.Fatalf("skipped entries must not regress, got %v", regressed)
	}
	if !stats.AllSkipped() || stats.Compared != 0 || stats.Skipped != 2 {
		t.Errorf("stats = %+v, want all skipped", stats)
	}
	if _, _, empty := Check(nil, cur, 0.25); empty.AllSkipped() {
		t.Error("empty baseline must not report AllSkipped")
	}
}
