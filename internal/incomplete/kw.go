package incomplete

import (
	"fmt"

	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
)

// ToKW pivots an incomplete K-database into its K^W encoding (Section 3.2):
// a single database over the possible-world semiring where each tuple is
// annotated with the vector of its annotations across all worlds.
// Proposition 1: the two encodings are isomorphic w.r.t. possible-worlds
// semantics for RA⁺.
func ToKW[T any](d *DB[T]) *kdb.Database[[]T] {
	kw := semiring.Worlds(d.K, len(d.Worlds))
	out := kdb.NewDatabase[[]T](kw)
	// Collect relation names from world 0 (all worlds share a schema).
	for name, r0 := range d.Worlds[0].Relations {
		universe := make(map[string]types.Tuple)
		for _, w := range d.Worlds {
			r := w.Get(name)
			if r == nil {
				panic(fmt.Sprintf("incomplete: relation %q missing from a world", name))
			}
			r.ForEach(func(t types.Tuple, _ T) { universe[t.Key()] = t })
		}
		rel := kdb.New[[]T](kw, r0.Schema())
		for _, t := range universe {
			vec := make([]T, len(d.Worlds))
			for i, w := range d.Worlds {
				vec[i] = w.Get(name).Get(t)
			}
			rel.Set(t, vec)
		}
		out.Put(rel)
	}
	return out
}

// FromKW unpivots a K^W database back into an explicit set of possible
// worlds, inverting ToKW.
func FromKW[T any](k semiring.Lattice[T], d *kdb.Database[[]T]) *DB[T] {
	kw, ok := d.K.(semiring.VectorSemiring[T])
	if !ok {
		panic("incomplete: FromKW requires a VectorSemiring database")
	}
	worlds := make([]*kdb.Database[T], kw.N)
	for i := range worlds {
		worlds[i] = kdb.NewDatabase(k)
		for _, rel := range d.Relations {
			wr := kdb.MapAnnotations(rel, k, semiring.PW[T](i))
			worlds[i].Put(wr)
		}
	}
	return &DB[T]{K: k, Worlds: worlds}
}

// CertKW returns the certain-annotation relation of a K^W relation:
// certK(D, t) = ⊓ of the annotation vector (Section 3.2).
func CertKW[T any](k semiring.Lattice[T], r *kdb.Relation[[]T]) *kdb.Relation[T] {
	out := kdb.New(k, r.Schema())
	r.ForEach(func(t types.Tuple, vec []T) {
		out.Set(t, semiring.GlbAll(k, vec))
	})
	return out
}

// PossKW returns the possible-annotation relation: ⊔ of the vector.
func PossKW[T any](k semiring.Lattice[T], r *kdb.Relation[[]T]) *kdb.Relation[T] {
	out := kdb.New(k, r.Schema())
	r.ForEach(func(t types.Tuple, vec []T) {
		out.Set(t, semiring.LubAll(k, vec))
	})
	return out
}

// World extracts possible world i from a K^W database via the pw_i
// homomorphism (Lemma 1).
func World[T any](k semiring.Lattice[T], d *kdb.Database[[]T], i int) *kdb.Database[T] {
	return kdb.MapDatabase(d, semiring.Semiring[T](k), semiring.PW[T](i))
}
