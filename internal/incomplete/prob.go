package incomplete

import (
	"fmt"
	"sort"

	"repro/internal/kdb"
	"repro/internal/types"
)

// This file implements the probabilistic extension of K^W-relations the
// paper sketches in Section 3.2: a distribution P : W → [0,1] over the
// possible worlds, carried unchanged through queries (queries preserve the
// same |W| worlds), plus the derived quantities practitioners ask for —
// tuple marginals and expected annotations.

// NormalizeProbs rescales the world probabilities to sum to 1. It returns
// an error when no probabilities are attached or their mass is zero.
func (d *DB[T]) NormalizeProbs() error {
	if d.Probs == nil {
		return fmt.Errorf("incomplete: database carries no world probabilities")
	}
	if len(d.Probs) != len(d.Worlds) {
		return fmt.Errorf("incomplete: %d probabilities for %d worlds", len(d.Probs), len(d.Worlds))
	}
	total := 0.0
	for _, p := range d.Probs {
		if p < 0 {
			return fmt.Errorf("incomplete: negative world probability %f", p)
		}
		total += p
	}
	if total == 0 {
		return fmt.Errorf("incomplete: zero total probability mass")
	}
	for i := range d.Probs {
		d.Probs[i] /= total
	}
	return nil
}

// TupleMarginal returns P(t ∈ R) — the total probability of the worlds in
// which the named relation contains t (with non-zero annotation).
func TupleMarginal[T any](d *DB[T], name string, t types.Tuple) (float64, error) {
	if d.Probs == nil {
		return 0, fmt.Errorf("incomplete: database carries no world probabilities")
	}
	p := 0.0
	for i, w := range d.Worlds {
		r := w.Get(name)
		if r == nil {
			return 0, fmt.Errorf("incomplete: unknown relation %q", name)
		}
		if !r.Semiring().IsZero(r.Get(t)) {
			p += d.Probs[i]
		}
	}
	return p, nil
}

// ExpectedMultiplicity returns E[R(t)] for a bag (N-annotated) incomplete
// database: the probability-weighted average multiplicity of t.
func ExpectedMultiplicity(d *DB[int64], name string, t types.Tuple) (float64, error) {
	if d.Probs == nil {
		return 0, fmt.Errorf("incomplete: database carries no world probabilities")
	}
	e := 0.0
	for i, w := range d.Worlds {
		r := w.Get(name)
		if r == nil {
			return 0, fmt.Errorf("incomplete: unknown relation %q", name)
		}
		e += d.Probs[i] * float64(r.Get(t))
	}
	return e, nil
}

// RankedTuple pairs a tuple with its marginal probability.
type RankedTuple struct {
	Tuple types.Tuple
	Prob  float64
}

// RankedPossible lists the possible tuples of the named relation ordered by
// decreasing marginal probability (ties broken by tuple order) — the
// "top-k possible answers" view probabilistic systems expose.
func RankedPossible[T any](d *DB[T], name string) ([]RankedTuple, error) {
	if d.Probs == nil {
		return nil, fmt.Errorf("incomplete: database carries no world probabilities")
	}
	seen := make(map[string]types.Tuple)
	for _, w := range d.Worlds {
		r := w.Get(name)
		if r == nil {
			return nil, fmt.Errorf("incomplete: unknown relation %q", name)
		}
		r.ForEach(func(t types.Tuple, _ T) { seen[t.Key()] = t })
	}
	out := make([]RankedTuple, 0, len(seen))
	for _, t := range seen {
		p, err := TupleMarginal(d, name, t)
		if err != nil {
			return nil, err
		}
		out = append(out, RankedTuple{Tuple: t, Prob: p})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Prob != out[j].Prob {
			return out[i].Prob > out[j].Prob
		}
		return out[i].Tuple.Compare(out[j].Tuple) < 0
	})
	return out, nil
}

// EvalWorldsKeepProbs is EvalWorlds specialized to emphasize the
// distribution-preservation property: the result carries the input's
// distribution object unchanged (queries permute nothing).
func EvalWorldsKeepProbs[T any](q kdb.Query, d *DB[T]) (*DB[T], error) {
	res, err := EvalWorlds(q, d)
	if err != nil {
		return nil, err
	}
	res.Probs = d.Probs
	return res, nil
}
