package incomplete

import (
	"math/rand"
	"testing"

	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
)

func it(vs ...int64) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.NewInt(v)
	}
	return t
}

func st(vs ...string) types.Tuple {
	t := make(types.Tuple, len(vs))
	for i, v := range vs {
		t[i] = types.NewString(v)
	}
	return t
}

// example7DB builds the paper's Example 7: a bag LOC relation with two
// worlds.
func example7DB() *DB[int64] {
	schema := types.NewSchema("LOC", "locale", "state")
	w1 := kdb.NewDatabase[int64](semiring.Nat)
	r1 := kdb.New[int64](semiring.Nat, schema)
	r1.Add(st("Lasalle", "NY"), 3)
	r1.Add(st("Tucson", "AZ"), 2)
	w1.Put(r1)
	w2 := kdb.NewDatabase[int64](semiring.Nat)
	r2 := kdb.New[int64](semiring.Nat, schema)
	r2.Add(st("Lasalle", "NY"), 2)
	r2.Add(st("Tucson", "AZ"), 1)
	r2.Add(st("Greenville", "IN"), 5)
	w2.Put(r2)
	return New[int64](semiring.Nat, w1, w2)
}

func TestCertainAnnotationsExample7(t *testing.T) {
	d := example7DB()
	cert := CertainRelation(d, "LOC")
	if got := cert.Get(st("Lasalle", "NY")); got != 2 {
		t.Errorf("cert(Lasalle) = %d, want 2", got)
	}
	if got := cert.Get(st("Tucson", "AZ")); got != 1 {
		t.Errorf("cert(Tucson) = %d, want 1", got)
	}
	if got := cert.Get(st("Greenville", "IN")); got != 0 {
		t.Errorf("cert(Greenville) = %d, want 0", got)
	}
	poss := PossibleRelation(d, "LOC")
	if got := poss.Get(st("Lasalle", "NY")); got != 3 {
		t.Errorf("poss(Lasalle) = %d, want 3", got)
	}
	if got := poss.Get(st("Greenville", "IN")); got != 5 {
		t.Errorf("poss(Greenville) = %d, want 5", got)
	}
}

func TestSetSemanticsCertainty(t *testing.T) {
	// Under B, certain = present in all worlds (classical definition).
	schema := types.NewSchema("R", "a")
	mk := func(vals ...int64) *kdb.Database[bool] {
		db := kdb.NewDatabase[bool](semiring.Bool)
		r := kdb.New[bool](semiring.Bool, schema)
		for _, v := range vals {
			r.Add(it(v), true)
		}
		db.Put(r)
		return db
	}
	d := New[bool](semiring.Bool, mk(1, 2), mk(1, 3), mk(1, 2, 3))
	cert := CertainRelation(d, "R")
	if !cert.Get(it(1)) {
		t.Error("1 should be certain")
	}
	if cert.Get(it(2)) || cert.Get(it(3)) {
		t.Error("2, 3 are not certain")
	}
	poss := PossibleRelation(d, "R")
	for _, v := range []int64{1, 2, 3} {
		if !poss.Get(it(v)) {
			t.Errorf("%d should be possible", v)
		}
	}
}

func TestBestGuessWorld(t *testing.T) {
	d := example7DB()
	if d.BestGuessWorld() != 0 {
		t.Error("non-probabilistic BGW should be world 0")
	}
	d.Probs = []float64{0.3, 0.7}
	if d.BestGuessWorld() != 1 {
		t.Error("probabilistic BGW should be the most likely world")
	}
}

func TestEvalWorldsPossibleWorldsSemantics(t *testing.T) {
	// Equation 1: Q(D) = {Q(D) | D ∈ D}. Evaluate a selection over both
	// worlds of Example 7 and compare per-world results.
	d := example7DB()
	q := kdb.SelectQ{
		Input: kdb.Table{Name: "LOC"},
		Pred:  kdb.AttrConst{Attr: "state", Op: kdb.OpEq, Const: types.NewString("NY")},
	}
	res, err := EvalWorlds(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if res.NumWorlds() != 2 {
		t.Fatal("query must preserve the number of worlds")
	}
	if got := res.Worlds[0].Get("result").Get(st("Lasalle", "NY")); got != 3 {
		t.Errorf("world 0: %d", got)
	}
	if got := res.Worlds[1].Get("result").Get(st("Lasalle", "NY")); got != 2 {
		t.Errorf("world 1: %d", got)
	}
	if res.Worlds[0].Get("result").Get(st("Tucson", "AZ")) != 0 {
		t.Error("selection should remove AZ")
	}
}

func TestCertainOfQuery(t *testing.T) {
	d := example7DB()
	q := kdb.ProjectQ{Input: kdb.Table{Name: "LOC"}, Attrs: []string{"state"}}
	cert, err := CertainOfQuery(q, d)
	if err != nil {
		t.Fatal(err)
	}
	// World 1: NY->3, AZ->2. World 2: NY->2, AZ->1, IN->5.
	if got := cert.Get(st("NY")); got != 2 {
		t.Errorf("cert(NY) = %d, want 2", got)
	}
	if got := cert.Get(st("AZ")); got != 1 {
		t.Errorf("cert(AZ) = %d, want 1", got)
	}
	if got := cert.Get(st("IN")); got != 0 {
		t.Errorf("cert(IN) = %d, want 0", got)
	}
	poss, err := PossibleOfQuery(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if got := poss.Get(st("IN")); got != 5 {
		t.Errorf("poss(IN) = %d, want 5", got)
	}
}

func TestKWRoundTrip(t *testing.T) {
	d := example7DB()
	kw := ToKW(d)
	back := FromKW[int64](semiring.Nat, kw)
	if back.NumWorlds() != d.NumWorlds() {
		t.Fatal("world count changed")
	}
	for i := range d.Worlds {
		orig := d.Worlds[i].Get("LOC")
		got := back.Worlds[i].Get("LOC")
		if !orig.Equal(got) {
			t.Errorf("world %d differs after round trip:\n%s\nvs\n%s", i, orig, got)
		}
	}
}

func TestKWEncoding(t *testing.T) {
	// Example 8: the pivoted N²-relation.
	d := example7DB()
	kw := ToKW(d)
	rel := kw.Get("LOC")
	vec := rel.Get(st("Lasalle", "NY"))
	if vec[0] != 3 || vec[1] != 2 {
		t.Errorf("Lasalle vector = %v, want [3 2]", vec)
	}
	vec = rel.Get(st("Greenville", "IN"))
	if vec[0] != 0 || vec[1] != 5 {
		t.Errorf("Greenville vector = %v, want [0 5]", vec)
	}
	// certK/possK over the K^W encoding (Section 3.2).
	cert := CertKW[int64](semiring.Nat, rel)
	if cert.Get(st("Lasalle", "NY")) != 2 || cert.Get(st("Greenville", "IN")) != 0 {
		t.Error("CertKW")
	}
	poss := PossKW[int64](semiring.Nat, rel)
	if poss.Get(st("Greenville", "IN")) != 5 {
		t.Error("PossKW")
	}
}

func TestWorldExtraction(t *testing.T) {
	// pw_i homomorphism extracts world i (Lemma 1 applied to databases).
	d := example7DB()
	kw := ToKW(d)
	for i := range d.Worlds {
		w := World[int64](semiring.Nat, kw, i)
		if !w.Get("LOC").Equal(d.Worlds[i].Get("LOC")) {
			t.Errorf("world %d extraction differs", i)
		}
	}
}

// TestProposition1 checks the isomorphism of Proposition 1: evaluating a
// query over the K^W encoding and extracting world i equals evaluating the
// query over world i directly.
func TestProposition1(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	schema := types.NewSchema("R", "a", "b")
	for trial := 0; trial < 30; trial++ {
		nWorlds := rng.Intn(3) + 2
		worlds := make([]*kdb.Database[int64], nWorlds)
		for i := range worlds {
			db := kdb.NewDatabase[int64](semiring.Nat)
			r := kdb.New[int64](semiring.Nat, schema)
			for j := 0; j < 5; j++ {
				r.Add(it(rng.Int63n(3), rng.Int63n(3)), rng.Int63n(3))
			}
			db.Put(r)
			worlds[i] = db
		}
		d := New[int64](semiring.Nat, worlds...)
		kw := ToKW(d)
		q := kdb.ProjectQ{
			Input: kdb.SelectQ{
				Input: kdb.Table{Name: "R"},
				Pred:  kdb.AttrConst{Attr: "a", Op: kdb.OpLe, Const: types.NewInt(rng.Int63n(3))},
			},
			Attrs: []string{"b"},
		}
		kwRes, err := kdb.Eval(q, kw)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < nWorlds; i++ {
			perWorld, err := kdb.Eval(q, worlds[i])
			if err != nil {
				t.Fatal(err)
			}
			extracted := kdb.MapAnnotations(kwRes, semiring.Semiring[int64](semiring.Nat), semiring.PW[int64](i))
			if !extracted.Equal(perWorld) {
				t.Fatalf("pw_%d(Q(D)) != Q(pw_%d(D))", i, i)
			}
		}
	}
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New[int64](semiring.Nat)
}
