package incomplete

import (
	"math"
	"testing"

	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
)

// probDB enumerates the TI-DB {1 certain, 2 @0.75, 3 @0.25} by hand (the
// models package cannot be imported here — it depends on incomplete).
func probDB(t *testing.T) *DB[int64] {
	t.Helper()
	schema := types.NewSchema("R", "a")
	mk := func(vals ...int64) *kdb.Database[int64] {
		db := kdb.NewDatabase[int64](semiring.Nat)
		r := kdb.New[int64](semiring.Nat, schema)
		for _, v := range vals {
			r.Add(it(v), 1)
		}
		db.Put(r)
		return db
	}
	return &DB[int64]{
		K: semiring.Nat,
		Worlds: []*kdb.Database[int64]{
			mk(1), mk(1, 2), mk(1, 3), mk(1, 2, 3),
		},
		Probs: []float64{0.25 * 0.75, 0.75 * 0.75, 0.25 * 0.25, 0.75 * 0.25},
	}
}

func TestNormalizeProbs(t *testing.T) {
	d := probDB(t)
	// Already normalized by construction.
	if err := d.NormalizeProbs(); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, p := range d.Probs {
		total += p
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("total = %f", total)
	}
	// Unnormalized input.
	d.Probs = []float64{2, 2, 2, 2}
	if err := d.NormalizeProbs(); err != nil {
		t.Fatal(err)
	}
	if d.Probs[0] != 0.25 {
		t.Error("rescaling")
	}
	// Errors.
	d.Probs = nil
	if err := d.NormalizeProbs(); err == nil {
		t.Error("missing probs")
	}
	d.Probs = []float64{0, 0, 0, 0}
	if err := d.NormalizeProbs(); err == nil {
		t.Error("zero mass")
	}
	d.Probs = []float64{-1, 2, 0, 0}
	if err := d.NormalizeProbs(); err == nil {
		t.Error("negative prob")
	}
}

func TestTupleMarginal(t *testing.T) {
	d := probDB(t)
	p1, err := TupleMarginal(d, "R", it(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-1) > 1e-12 {
		t.Errorf("P(1) = %f, want 1", p1)
	}
	p2, _ := TupleMarginal(d, "R", it(2))
	if math.Abs(p2-0.75) > 1e-12 {
		t.Errorf("P(2) = %f, want 0.75", p2)
	}
	p9, _ := TupleMarginal(d, "R", it(9))
	if p9 != 0 {
		t.Errorf("P(absent) = %f", p9)
	}
	if _, err := TupleMarginal(d, "zzz", it(1)); err == nil {
		t.Error("unknown relation")
	}
}

func TestExpectedMultiplicity(t *testing.T) {
	// Two worlds with multiplicities 3 and 1, probabilities 0.5/0.5.
	schema := types.NewSchema("R", "a")
	mk := func(k int64) *kdb.Database[int64] {
		db := kdb.NewDatabase[int64](semiring.Nat)
		r := kdb.New[int64](semiring.Nat, schema)
		r.Add(it(1), k)
		db.Put(r)
		return db
	}
	d := &DB[int64]{K: semiring.Nat, Worlds: []*kdb.Database[int64]{mk(3), mk(1)}, Probs: []float64{0.5, 0.5}}
	e, err := ExpectedMultiplicity(d, "R", it(1))
	if err != nil {
		t.Fatal(err)
	}
	if e != 2 {
		t.Errorf("E = %f, want 2", e)
	}
}

func TestRankedPossible(t *testing.T) {
	d := probDB(t)
	ranked, err := RankedPossible(d, "R")
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) != 3 {
		t.Fatalf("possible tuples = %d", len(ranked))
	}
	// Descending probabilities: 1 (1.0), 2 (0.75), 3 (0.25).
	if !ranked[0].Tuple.Equal(it(1)) || !ranked[1].Tuple.Equal(it(2)) || !ranked[2].Tuple.Equal(it(3)) {
		t.Errorf("ranking = %v", ranked)
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Prob > ranked[i-1].Prob {
			t.Error("not sorted by probability")
		}
	}
}

func TestEvalWorldsKeepProbs(t *testing.T) {
	d := probDB(t)
	q := kdb.SelectQ{Input: kdb.Table{Name: "R"}, Pred: kdb.AttrConst{Attr: "a", Op: kdb.OpGe, Const: types.NewInt(2)}}
	res, err := EvalWorldsKeepProbs(q, d)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probs) != len(d.Probs) {
		t.Fatal("distribution dropped")
	}
	// Marginal of tuple 2 in the result equals its input marginal: the
	// selection keeps it wherever it existed.
	p, err := TupleMarginal(res, "result", it(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-0.75) > 1e-12 {
		t.Errorf("marginal after query = %f", p)
	}
}
