// Package incomplete implements incomplete K-databases (Definition 1): sets
// of possible worlds that are each a K-database, the pivoted K^W encoding of
// Section 3.2, possible-worlds query semantics, and the certain/possible
// annotations certK/possK defined through the GLB/LUB of the l-semiring K.
package incomplete

import (
	"fmt"

	"repro/internal/kdb"
	"repro/internal/semiring"
	"repro/internal/types"
)

// DB is an incomplete K-database: a non-empty set of possible worlds.
// Probabilities, when present, form a distribution over the worlds.
type DB[T any] struct {
	K      semiring.Lattice[T]
	Worlds []*kdb.Database[T]
	// Probs[i] is the probability of world i; nil for purely incomplete
	// (non-probabilistic) databases.
	Probs []float64
}

// New returns an incomplete database over the given worlds.
func New[T any](k semiring.Lattice[T], worlds ...*kdb.Database[T]) *DB[T] {
	if len(worlds) == 0 {
		panic("incomplete: need at least one possible world")
	}
	return &DB[T]{K: k, Worlds: worlds}
}

// NumWorlds returns |W|.
func (d *DB[T]) NumWorlds() int { return len(d.Worlds) }

// BestGuessWorld returns the index of the most probable world (ties broken
// toward the lower index), or 0 for non-probabilistic databases, matching the
// paper's convention that any world may serve as the BGW when no ranking is
// available.
func (d *DB[T]) BestGuessWorld() int {
	if d.Probs == nil {
		return 0
	}
	best, bp := 0, d.Probs[0]
	for i, p := range d.Probs {
		if p > bp {
			best, bp = i, p
		}
	}
	return best
}

// EvalWorlds evaluates Q under possible-worlds semantics (Equation 1):
// the result is the incomplete database of per-world results.
func EvalWorlds[T any](q kdb.Query, d *DB[T]) (*DB[T], error) {
	out := &DB[T]{K: d.K, Probs: d.Probs}
	for i, w := range d.Worlds {
		res, err := kdb.Eval(q, w)
		if err != nil {
			return nil, fmt.Errorf("incomplete: world %d: %w", i, err)
		}
		wdb := kdb.NewDatabase[T](d.K)
		r := kdb.Rename(res, types.Schema{Name: "result", Attrs: res.Schema().Attrs})
		wdb.Put(r)
		out.Worlds = append(out.Worlds, wdb)
	}
	return out, nil
}

// CertainRelation returns the K-relation of certain annotations of the named
// relation: each tuple annotated certK(D, t) = ⊓_i D_i(t) (Section 3.1).
// Tuples whose certain annotation is 0_K are absent.
func CertainRelation[T any](d *DB[T], name string) *kdb.Relation[T] {
	return foldRelation(d, name, d.K.Glb)
}

// PossibleRelation returns the K-relation of possible annotations:
// possK(D, t) = ⊔_i D_i(t).
func PossibleRelation[T any](d *DB[T], name string) *kdb.Relation[T] {
	return foldRelation(d, name, d.K.Lub)
}

func foldRelation[T any](d *DB[T], name string, combine func(a, b T) T) *kdb.Relation[T] {
	first := d.Worlds[0].Get(name)
	if first == nil {
		panic(fmt.Sprintf("incomplete: unknown relation %q", name))
	}
	// Gather the union of tuples across worlds, then fold annotations.
	universe := make(map[string]types.Tuple)
	for _, w := range d.Worlds {
		r := w.Get(name)
		if r == nil {
			panic(fmt.Sprintf("incomplete: relation %q missing from a world", name))
		}
		r.ForEach(func(t types.Tuple, _ T) { universe[t.Key()] = t })
	}
	out := kdb.New(d.K, first.Schema())
	for _, t := range universe {
		acc := d.Worlds[0].Get(name).Get(t)
		for _, w := range d.Worlds[1:] {
			acc = combine(acc, w.Get(name).Get(t))
		}
		out.Set(t, acc)
	}
	return out
}

// CertainOfQuery evaluates Q in every world and returns the relation of
// certain annotations of the result — the ground truth that labelings and
// UA-DBs approximate. The result relation is named "result".
func CertainOfQuery[T any](q kdb.Query, d *DB[T]) (*kdb.Relation[T], error) {
	res, err := EvalWorlds(q, d)
	if err != nil {
		return nil, err
	}
	return CertainRelation(res, "result"), nil
}

// PossibleOfQuery is CertainOfQuery's dual using possK.
func PossibleOfQuery[T any](q kdb.Query, d *DB[T]) (*kdb.Relation[T], error) {
	res, err := EvalWorlds(q, d)
	if err != nil {
		return nil, err
	}
	return PossibleRelation(res, "result"), nil
}
