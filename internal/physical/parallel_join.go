package physical

import (
	"sync"

	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

// keyHash is FNV-1a over a canonical key encoding; it only routes keys to
// build partitions, so equality still rests on the byte-exact key itself.
func keyHash(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h
}

// keyHashSalted re-mixes keyHash with a salt, so recursive spill
// partitioning (aggregate generations, grace join sub-partitions) splits a
// partition's keys differently at every depth — without a new salt, an
// over-budget partition would re-partition into itself forever.
func keyHashSalted(key []byte, salt uint64) uint64 {
	h := keyHash(key)
	if salt != 0 {
		h ^= (salt + 1) * 0x9e3779b97f4a7c15
		h *= 1099511628211
	}
	return h
}

// hashBuild is a hash-join build table shared, read-only, by every probe
// worker of a parallel join. It is partitioned by key hash so construction
// parallelizes: one pass computes each build row's partition in parallel
// chunks, then one worker per partition inserts its rows — in global build
// order, so bucket contents match the serial HashJoin's first-seen order
// exactly. After build() returns the structure is immutable; the Gather
// starts probe workers only then, which is what makes the lock-free
// concurrent probing sound.
type hashBuild struct {
	Input Operator // build-side plan, drained once per Open by build()
	Keys  []int
	dop   int

	parts []buildPart
}

// buildPart is one hash partition: the same idx/buckets layout as the serial
// HashJoin's table, just restricted to keys that route here.
type buildPart struct {
	idx     map[string]int
	buckets [][][]types.Value
}

// build drains the build input and constructs the partitioned table with dop
// goroutines. NULL-keyed rows are dropped here, as in the serial build —
// NULL join keys never match.
func (hb *hashBuild) build() error {
	rows, err := Drain(hb.Input)
	if err != nil {
		return err
	}
	p := hb.dop
	if p < 1 {
		p = 1
	}
	// Pass 1, parallel over row chunks: route every row to a partition
	// (-1 for NULL keys).
	partOf := make([]int32, len(rows))
	var wg sync.WaitGroup
	chunk := (len(rows) + p - 1) / p
	for w := 0; w < p && w*chunk < len(rows); w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(rows) {
			hi = len(rows)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			var buf []byte
			for i := lo; i < hi; i++ {
				key, ok := appendJoinKey(buf[:0], rows[i], hb.Keys)
				buf = key
				if !ok {
					partOf[i] = -1
					continue
				}
				partOf[i] = int32(keyHash(key) % uint64(p))
			}
		}(lo, hi)
	}
	wg.Wait()
	// Pass 2, parallel over partitions: each worker owns one partition's map
	// outright, so insertion needs no locks; scanning partOf is cheap next
	// to encoding and inserting the partition's own rows.
	hb.parts = make([]buildPart, p)
	for w := 0; w < p; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			part := buildPart{idx: make(map[string]int)}
			var buf []byte
			for i, row := range rows {
				if partOf[i] != int32(w) {
					continue
				}
				key, _ := appendJoinKey(buf[:0], row, hb.Keys)
				buf = key
				idx, seen := part.idx[string(key)]
				if !seen {
					idx = len(part.buckets)
					part.idx[string(key)] = idx
					part.buckets = append(part.buckets, nil)
				}
				part.buckets[idx] = append(part.buckets[idx], row)
			}
			hb.parts[w] = part
		}(w)
	}
	wg.Wait()
	return nil
}

// lookup returns the bucket of build rows matching the encoded key, in the
// deterministic build order. Read-only; safe for concurrent probe workers.
// A single-partition table (serial build) skips the FNV routing hash — the
// partition map's own hash is the only per-key hashing the probe loop pays,
// same as the serial HashJoin's buildIdx.
func (hb *hashBuild) lookup(key []byte) [][]types.Value {
	part := &hb.parts[0]
	if len(hb.parts) > 1 {
		part = &hb.parts[keyHash(key)%uint64(len(hb.parts))]
	}
	if idx, ok := part.idx[string(key)]; ok {
		return part.buckets[idx]
	}
	return nil
}

// HashJoinProbe is the per-worker probe half of a parallel hash join. It sits
// on top of a worker's morsel pipeline inside an Exchange and runs the exact
// probe loop of the serial HashJoin — resumable mid-probe-row, slab-allocated
// output, residual over the concatenated row — against the shared immutable
// hashBuild instead of a private table. Because bucket order matches the
// serial build and the Gather restores morsel order, the joined output is
// byte-identical to the serial operator's.
type HashJoinProbe struct {
	Input    Operator
	Build    *hashBuild
	EquiL    []int
	Residual algebra.Expr

	schema types.Schema
	res    *algebra.Compiled
	keyBuf []byte
	probe  *Batch
	pi     int
	// Per-probe-batch cached views, as in the serial HashJoin: vector keying
	// only when the batch has no row view yet, rows resolved lazily.
	probeKeyCols []vector.Vector
	probeRows    [][]types.Value
	matches      [][]types.Value
	mi           int
	out          Batch
	sl           *slab
}

// Schema implements Operator.
func (j *HashJoinProbe) Schema() types.Schema { return j.schema }

// Open implements Operator. The shared build table is prepared by the Gather
// before any worker opens, so only worker-local state is set up here.
func (j *HashJoinProbe) Open() error {
	j.probe, j.matches, j.pi, j.mi = nil, nil, 0, 0
	j.sl = newSlab(j.schema.Arity())
	j.res = nil
	if j.Residual != nil {
		j.res = algebra.Compile(j.Residual)
	}
	return j.Input.Open()
}

// emit concatenates l and r into a slab row and appends it to the output
// batch when the residual accepts it, exactly as the serial HashJoin does.
func (j *HashJoinProbe) emit(l, r []types.Value) {
	row := j.sl.peek()
	copy(row, l)
	copy(row[len(l):], r)
	if j.res != nil && !algebra.Truthy(j.res.Eval(row)) {
		return
	}
	j.sl.commit()
	j.out.Append(row)
}

// Next implements Operator.
func (j *HashJoinProbe) Next() (*Batch, error) {
	j.out.Reset()
	for {
		if j.probe != nil {
			for {
				for j.mi < len(j.matches) {
					if j.probeRows == nil {
						j.probeRows = j.probe.Rows()
					}
					j.emit(j.probeRows[j.pi-1], j.matches[j.mi])
					j.mi++
					if j.out.Len() >= DefaultBatchSize {
						return &j.out, nil
					}
				}
				if j.pi >= j.probe.Len() {
					j.probe = nil
					break
				}
				pi := j.pi
				j.pi++
				j.matches, j.mi = nil, 0
				var key []byte
				var ok bool
				if j.probeKeyCols != nil {
					key, ok = appendVecJoinKey(j.keyBuf[:0], j.probeKeyCols, pi, j.EquiL)
				} else {
					key, ok = appendJoinKey(j.keyBuf[:0], j.probeRows[pi], j.EquiL)
				}
				j.keyBuf = key
				if ok {
					j.matches = j.Build.lookup(key)
				}
			}
		}
		b, err := j.Input.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if j.out.Len() > 0 {
				return &j.out, nil
			}
			return nil, nil
		}
		j.probe, j.pi, j.matches, j.mi = b, 0, nil, 0
		j.probeKeyCols = b.KeyCols()
		j.probeRows = nil
		if j.probeKeyCols == nil {
			j.probeRows = b.Rows()
		}
	}
}

// Close implements Operator: worker-local teardown only — the shared build
// table belongs to the Gather's prepare step and its input was closed when
// build() drained it.
func (j *HashJoinProbe) Close() error {
	j.matches, j.probe, j.sl = nil, nil, nil
	j.probeRows, j.probeKeyCols = nil, nil
	return j.Input.Close()
}
