package physical

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

// benchFusedSource is a minimal ColumnSource over one generated table.
type benchFusedSource struct {
	schema types.Schema
	rows   [][]types.Value
	cols   *vector.Columns
}

func (s *benchFusedSource) Resolve(string) (types.Schema, [][]types.Value, error) {
	return s.schema, s.rows, nil
}
func (s *benchFusedSource) ResolveColumns(string) (*vector.Columns, bool) { return s.cols, true }

func fusedBenchPlan(n int) (algebra.Node, *benchFusedSource) {
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{types.NewInt(int64(i % 7)), types.NewInt(int64(i))}
	}
	schema := types.NewSchema("t", "k", "v")
	src := &benchFusedSource{schema: schema, rows: rows, cols: vector.FromRows(rows, 2)}
	k := algebra.Col{Idx: 0, Name: "k"}
	v := algebra.Col{Idx: 1, Name: "v"}
	plan := &algebra.Project{
		Input: &algebra.Filter{
			Input: &algebra.Scan{Table: "t", TblSchema: schema},
			Pred: algebra.Bin{Op: algebra.OpLt, L: v,
				R: algebra.Const{V: types.NewInt(int64(n / 2))}},
		},
		Exprs: []algebra.Expr{k, algebra.Bin{Op: algebra.OpAdd, L: k, R: v}},
		Names: []string{"k", "kv"},
	}
	return plan, src
}

func benchLowered(b *testing.B, opt Options) {
	const n = 1_000_000
	plan, src := fusedBenchPlan(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op, err := LowerOpts(plan, src, opt)
		if err != nil {
			b.Fatal(err)
		}
		rows, err := Drain(op)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != n/2 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

func BenchmarkFusedPipeline(b *testing.B) {
	benchLowered(b, Options{DOP: 1, Fuse: true})
}

func BenchmarkUnfusedTyped(b *testing.B) {
	benchLowered(b, Options{DOP: 1})
}
