package physical

import (
	"fmt"

	"repro/internal/algebra"
)

// Lower compiles a logical plan into a physical operator tree, resolving
// scans against src and validating the plan's internal schema consistency
// (column references in range, join keys paired, union arities equal) so
// that execution cannot index out of bounds on a malformed or mismatched
// plan.
func Lower(n algebra.Node, src Source) (Operator, error) {
	switch node := n.(type) {
	case *algebra.Scan:
		schema, rows, err := src.Resolve(node.Table)
		if err != nil {
			return nil, err
		}
		if want := node.TblSchema.Arity(); want > 0 && want != schema.Arity() {
			return nil, fmt.Errorf("physical: scan of %q: plan expects %d columns, table has %d",
				node.Table, want, schema.Arity())
		}
		return NewScan(node.Table, schema, rows), nil

	case *algebra.Filter:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		if err := checkCols(node.Pred, in.Schema().Arity(), "filter predicate"); err != nil {
			return nil, err
		}
		return &Filter{Input: in, Pred: node.Pred}, nil

	case *algebra.Project:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		if len(node.Exprs) != len(node.Names) {
			return nil, fmt.Errorf("physical: projection has %d expressions but %d names",
				len(node.Exprs), len(node.Names))
		}
		for _, e := range node.Exprs {
			if err := checkCols(e, in.Schema().Arity(), "projection"); err != nil {
				return nil, err
			}
		}
		return NewProject(in, node.Exprs, node.Names), nil

	case *algebra.Join:
		l, err := Lower(node.Left, src)
		if err != nil {
			return nil, err
		}
		r, err := Lower(node.Right, src)
		if err != nil {
			return nil, err
		}
		la, ra := l.Schema().Arity(), r.Schema().Arity()
		if len(node.EquiL) != len(node.EquiR) {
			return nil, fmt.Errorf("physical: join has %d left keys but %d right keys",
				len(node.EquiL), len(node.EquiR))
		}
		for _, i := range node.EquiL {
			if i < 0 || i >= la {
				return nil, fmt.Errorf("physical: join key %d out of range for left arity %d", i, la)
			}
		}
		for _, i := range node.EquiR {
			if i < 0 || i >= ra {
				return nil, fmt.Errorf("physical: join key %d out of range for right arity %d", i, ra)
			}
		}
		if node.Residual != nil {
			if err := checkCols(node.Residual, la+ra, "join residual"); err != nil {
				return nil, err
			}
		}
		if len(node.EquiL) > 0 {
			return NewHashJoin(l, r, node.EquiL, node.EquiR, node.Residual), nil
		}
		return NewNestedLoopJoin(l, r, node.Residual), nil

	case *algebra.UnionAll:
		l, err := Lower(node.Left, src)
		if err != nil {
			return nil, err
		}
		r, err := Lower(node.Right, src)
		if err != nil {
			return nil, err
		}
		if l.Schema().Arity() != r.Schema().Arity() {
			return nil, fmt.Errorf("physical: UNION ALL arity mismatch: %d vs %d",
				l.Schema().Arity(), r.Schema().Arity())
		}
		return &UnionAll{Left: l, Right: r}, nil

	case *algebra.Aggregate:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		arity := in.Schema().Arity()
		for _, e := range node.GroupBy {
			if err := checkCols(e, arity, "group-by key"); err != nil {
				return nil, err
			}
		}
		for _, a := range node.Aggs {
			if a.Arg != nil {
				if err := checkCols(a.Arg, arity, "aggregate argument"); err != nil {
					return nil, err
				}
			}
		}
		return NewHashAggregate(in, node.GroupBy, node.GroupNames, node.Aggs), nil

	case *algebra.Sort:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		for _, k := range node.Keys {
			if err := checkCols(k.Expr, in.Schema().Arity(), "sort key"); err != nil {
				return nil, err
			}
		}
		return &Sort{Input: in, Keys: node.Keys}, nil

	case *algebra.Limit:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		return &Limit{Input: in, N: node.N}, nil

	case *algebra.Distinct:
		in, err := Lower(node.Input, src)
		if err != nil {
			return nil, err
		}
		return &Distinct{Input: in}, nil

	default:
		return nil, fmt.Errorf("physical: unsupported plan node %T", n)
	}
}

// checkCols verifies every column reference of e lies within the input
// arity.
func checkCols(e algebra.Expr, arity int, ctx string) error {
	var bad error
	algebra.WalkCols(e, func(c algebra.Col) {
		if bad == nil && (c.Idx < 0 || c.Idx >= arity) {
			bad = fmt.Errorf("physical: %s references column %d of a %d-column input", ctx, c.Idx, arity)
		}
	})
	return bad
}
