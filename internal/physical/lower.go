package physical

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/types"
)

// Lower compiles a logical plan into a physical operator tree, resolving
// scans against src and validating the plan's internal schema consistency
// (column references in range, join keys paired, union arities equal) so
// that execution cannot index out of bounds on a malformed or mismatched
// plan. Lower always produces the serial operator tree; LowerOpts adds the
// degree-of-parallelism knob.
func Lower(n algebra.Node, src Source) (Operator, error) {
	return LowerOpts(n, src, Options{DOP: 1})
}

// LowerOpts is Lower with execution options. With DOP > 1 the lowering
// rewrites eligible subtrees into morsel-driven parallel form:
//
//   - a Filter/Project pipeline over a big enough base-table scan becomes a
//     Gather over DOP workers, each running its own copy of the pipeline
//     (own compiled kernels, own scratch spines) over morsels claimed from
//     a shared queue, with output restored to the serial first-seen order
//     by morsel sequence number;
//   - an equi-join whose probe (left) side is such a pipeline becomes a
//     Gather of HashJoinProbe workers over a shared partitioned build table
//     constructed in parallel before the workers start;
//   - an aggregate over such a pipeline becomes a ParallelHashAggregate:
//     per-worker partial states merged in morsel order.
//
// Every other node lowers serially around the parallel subtrees. DOP = 1
// (or a plan with no eligible subtree) produces exactly the serial tree.
func LowerOpts(n algebra.Node, src Source, opt Options) (Operator, error) {
	return lowerNode(n, src, opt.normalized())
}

func lowerNode(n algebra.Node, src Source, opt Options) (Operator, error) {
	if opt.DOP > 1 {
		op, ok, err := lowerParallel(n, src, opt)
		if err != nil {
			return nil, err
		}
		if ok {
			return op, nil
		}
	}
	switch node := n.(type) {
	case *algebra.Scan:
		schema, rows, err := resolveScan(node, src)
		if err != nil {
			return nil, err
		}
		return NewColumnarScan(node.Table, schema, rows, columnsFor(src, node.Table, len(rows))), nil

	case *algebra.Filter:
		if opt.Fuse {
			if fp, ok, err := lowerFusedPipeline(n, src); err != nil {
				return nil, err
			} else if ok {
				return fp, nil
			}
		}
		in, err := lowerNode(node.Input, src, opt)
		if err != nil {
			return nil, err
		}
		if err := checkCols(node.Pred, in.Schema().Arity(), "filter predicate"); err != nil {
			return nil, err
		}
		return &Filter{Input: in, Pred: node.Pred}, nil

	case *algebra.Project:
		if opt.Fuse {
			if fp, ok, err := lowerFusedPipeline(n, src); err != nil {
				return nil, err
			} else if ok {
				return fp, nil
			}
		}
		in, err := lowerNode(node.Input, src, opt)
		if err != nil {
			return nil, err
		}
		if err := checkProject(node, in.Schema().Arity()); err != nil {
			return nil, err
		}
		return NewProject(in, node.Exprs, node.Names), nil

	case *algebra.Join:
		if opt.Fuse {
			if fp, ok, err := lowerFusedProbe(node, src, opt); err != nil {
				return nil, err
			} else if ok {
				return fp, nil
			}
		}
		l, err := lowerNode(node.Left, src, opt)
		if err != nil {
			return nil, err
		}
		r, err := lowerNode(node.Right, src, opt)
		if err != nil {
			return nil, err
		}
		if err := checkJoin(node, l.Schema().Arity(), r.Schema().Arity()); err != nil {
			return nil, err
		}
		if len(node.EquiL) > 0 {
			hj := NewHashJoin(l, r, node.EquiL, node.EquiR, node.Residual)
			hj.Mem, hj.SpillDir = opt.Gov, opt.SpillDir
			return hj, nil
		}
		return NewNestedLoopJoin(l, r, node.Residual), nil

	case *algebra.UnionAll:
		l, err := lowerNode(node.Left, src, opt)
		if err != nil {
			return nil, err
		}
		r, err := lowerNode(node.Right, src, opt)
		if err != nil {
			return nil, err
		}
		if l.Schema().Arity() != r.Schema().Arity() {
			return nil, fmt.Errorf("physical: UNION ALL arity mismatch: %d vs %d",
				l.Schema().Arity(), r.Schema().Arity())
		}
		return &UnionAll{Left: l, Right: r}, nil

	case *algebra.Aggregate:
		if opt.Fuse && opt.Gov == nil {
			// Ungoverned aggregates over a fusable chain fold straight off
			// the column vectors; under a memory budget the governed
			// (spilling) HashAggregate runs instead, like the fused probe.
			if fa, ok, err := lowerFusedAggregate(node, src); err != nil {
				return nil, err
			} else if ok {
				return fa, nil
			}
		}
		in, err := lowerNode(node.Input, src, opt)
		if err != nil {
			return nil, err
		}
		if err := checkAggregate(node, in.Schema().Arity()); err != nil {
			return nil, err
		}
		ha := NewHashAggregate(in, node.GroupBy, node.GroupNames, node.Aggs)
		ha.Mem, ha.SpillDir = opt.Gov, opt.SpillDir
		return ha, nil

	case *algebra.Sort:
		in, err := lowerNode(node.Input, src, opt)
		if err != nil {
			return nil, err
		}
		for _, k := range node.Keys {
			if err := checkCols(k.Expr, in.Schema().Arity(), "sort key"); err != nil {
				return nil, err
			}
		}
		return &Sort{Input: in, Keys: node.Keys, Mem: opt.Gov, SpillDir: opt.SpillDir}, nil

	case *algebra.Limit:
		in, err := lowerNode(node.Input, src, opt)
		if err != nil {
			return nil, err
		}
		return &Limit{Input: in, N: node.N}, nil

	case *algebra.Distinct:
		in, err := lowerNode(node.Input, src, opt)
		if err != nil {
			return nil, err
		}
		return &Distinct{Input: in}, nil

	default:
		return nil, fmt.Errorf("physical: unsupported plan node %T", n)
	}
}

// resolveScan resolves a logical scan against the source and cross-checks
// the compiled arity, shared by the serial and parallel lowering paths.
func resolveScan(node *algebra.Scan, src Source) (types.Schema, [][]types.Value, error) {
	schema, rows, err := src.Resolve(node.Table)
	if err != nil {
		return types.Schema{}, nil, err
	}
	if want := node.TblSchema.Arity(); want > 0 && want != schema.Arity() {
		return types.Schema{}, nil, fmt.Errorf("physical: scan of %q: plan expects %d columns, table has %d",
			node.Table, want, schema.Arity())
	}
	return schema, rows, nil
}

// checkProject validates a projection node against its input arity.
func checkProject(node *algebra.Project, arity int) error {
	if len(node.Exprs) != len(node.Names) {
		return fmt.Errorf("physical: projection has %d expressions but %d names",
			len(node.Exprs), len(node.Names))
	}
	for _, e := range node.Exprs {
		if err := checkCols(e, arity, "projection"); err != nil {
			return err
		}
	}
	return nil
}

// checkJoin validates a join's key pairing and column ranges.
func checkJoin(node *algebra.Join, la, ra int) error {
	if len(node.EquiL) != len(node.EquiR) {
		return fmt.Errorf("physical: join has %d left keys but %d right keys",
			len(node.EquiL), len(node.EquiR))
	}
	for _, i := range node.EquiL {
		if i < 0 || i >= la {
			return fmt.Errorf("physical: join key %d out of range for left arity %d", i, la)
		}
	}
	for _, i := range node.EquiR {
		if i < 0 || i >= ra {
			return fmt.Errorf("physical: join key %d out of range for right arity %d", i, ra)
		}
	}
	if node.Residual != nil {
		if err := checkCols(node.Residual, la+ra, "join residual"); err != nil {
			return err
		}
	}
	return nil
}

// checkAggregate validates an aggregate's expressions against its input.
func checkAggregate(node *algebra.Aggregate, arity int) error {
	for _, e := range node.GroupBy {
		if err := checkCols(e, arity, "group-by key"); err != nil {
			return err
		}
	}
	for _, a := range node.Aggs {
		if a.Arg != nil {
			if err := checkCols(a.Arg, arity, "aggregate argument"); err != nil {
				return err
			}
		}
	}
	return nil
}

// pipelineSpec describes a parallelizable pipeline: a Filter/Project chain
// over a base-table scan big enough to split into morsels. mk builds one
// worker's private copy of the pipeline — fresh operator structs over a new
// MorselScan, so nothing but the read-only morsel source (and the shared
// algebra expressions, which compile per Open into per-worker kernels) is
// shared between workers.
type pipelineSpec struct {
	src            *morselSource
	table          string
	schema         types.Schema
	preservesCount bool // no Filter in the chain → scan cardinality survives
	depth          int  // compute operators above the scan
	mk             func() (Operator, *MorselScan)
}

// pipelineFor recognizes a parallelizable pipeline rooted at n. ok is false
// — with no error — when the subtree has the wrong shape or the table is too
// small to be worth splitting; validation errors are the same ones serial
// lowering would report.
func pipelineFor(n algebra.Node, src Source, opt Options) (*pipelineSpec, bool, error) {
	switch node := n.(type) {
	case *algebra.Scan:
		schema, rows, err := resolveScan(node, src)
		if err != nil {
			return nil, false, err
		}
		if len(rows) < opt.MinParallelRows {
			return nil, false, nil
		}
		ms := &morselSource{rows: rows, size: opt.MorselSize,
			cols: columnsFor(src, node.Table, len(rows))}
		return &pipelineSpec{
			src: ms, table: node.Table, schema: schema, preservesCount: true,
			mk: func() (Operator, *MorselScan) {
				s := &MorselScan{Table: node.Table, src: ms, schema: schema}
				return s, s
			},
		}, true, nil

	case *algebra.Filter:
		in, ok, err := pipelineFor(node.Input, src, opt)
		if !ok || err != nil {
			return nil, ok, err
		}
		if err := checkCols(node.Pred, in.schema.Arity(), "filter predicate"); err != nil {
			return nil, false, err
		}
		out := *in
		out.preservesCount = false
		out.depth++
		inMk := in.mk
		out.mk = func() (Operator, *MorselScan) {
			pipe, scan := inMk()
			return &Filter{Input: pipe, Pred: node.Pred}, scan
		}
		return &out, true, nil

	case *algebra.Project:
		in, ok, err := pipelineFor(node.Input, src, opt)
		if !ok || err != nil {
			return nil, ok, err
		}
		if err := checkProject(node, in.schema.Arity()); err != nil {
			return nil, false, err
		}
		out := *in
		out.schema = types.Schema{Attrs: node.Names}
		out.depth++
		inMk := in.mk
		out.mk = func() (Operator, *MorselScan) {
			pipe, scan := inMk()
			return NewProject(pipe, node.Exprs, node.Names), scan
		}
		return &out, true, nil
	}
	return nil, false, nil
}

// newGather assembles a Gather over opt.DOP workers built from spec, with
// wrap (optional) stacking a per-worker operator — the join probe — on top
// of each pipeline copy.
func newGather(spec *pipelineSpec, opt Options, schema types.Schema,
	wrap func(Operator) Operator, prepare func() error, hintOK, capOK bool) *Gather {
	workers := make([]*Exchange, opt.DOP)
	for i := range workers {
		pipe, scan := spec.mk()
		if wrap != nil {
			pipe = wrap(pipe)
		}
		workers[i] = &Exchange{Pipe: pipe, Scan: scan}
	}
	return &Gather{Workers: workers, src: spec.src, schema: schema,
		prepare: prepare, hintOK: hintOK, capOK: capOK}
}

// lowerParallel rewrites eligible subtrees to morsel-driven parallel
// operators; ok reports whether it took the node.
func lowerParallel(n algebra.Node, src Source, opt Options) (Operator, bool, error) {
	switch node := n.(type) {
	case *algebra.Filter, *algebra.Project:
		// A fused chain replaces the worker pipelines outright; chains that
		// don't fuse (shape, kernels, or not worth it) parallelize unfused.
		if opt.Fuse {
			spec, ok, err := fusedPipelineSpec(n, src, opt, false)
			if err != nil {
				return nil, false, err
			}
			if ok {
				// Filter/Project output never exceeds the scan, so the scan
				// size caps the gathered result.
				g := newGather(spec, opt, spec.schema, nil, nil, spec.preservesCount, true)
				return g, true, nil
			}
		}
		spec, ok, err := pipelineFor(n, src, opt)
		if err != nil || !ok {
			return nil, false, err
		}
		if spec.depth == 0 {
			// A bare scan has no per-row compute to spread across workers;
			// the serial zero-copy Scan is strictly better.
			return nil, false, nil
		}
		g := newGather(spec, opt, spec.schema, nil, nil, spec.preservesCount, true)
		return g, true, nil

	case *algebra.Join:
		if len(node.EquiL) == 0 {
			return nil, false, nil
		}
		if opt.Gov != nil {
			// Under a memory budget the join lowers serially so its build
			// side is governed (grace spilling); declining here still lets
			// the probe-side Filter/Project pipeline become a Gather when
			// lowerNode descends into it.
			return nil, false, nil
		}
		if opt.Fuse {
			// Fused probe workers: the probe chain's key and payload columns
			// are read straight off each worker's morsel windows; the shared
			// build table is constructed once by the Gather's prepare step.
			spec, ok, err := fusedPipelineSpec(node.Left, src, opt, true)
			if err != nil {
				return nil, false, err
			}
			if ok {
				right, err := lowerNode(node.Right, src, opt)
				if err != nil {
					return nil, false, err
				}
				if err := checkJoin(node, spec.schema.Arity(), right.Schema().Arity()); err != nil {
					return nil, false, err
				}
				build := &hashBuild{Input: right, Keys: node.EquiR, dop: opt.DOP}
				schema := spec.schema.Concat(right.Schema())
				wrap := func(pipe Operator) Operator {
					fp := pipe.(*FusedPipeline)
					fp.Probe = &FusedProbe{Build: build, EquiL: node.EquiL,
						Residual: node.Residual}
					fp.Ops = append(fp.Ops[:len(fp.Ops):len(fp.Ops)], "probe")
					fp.schema = schema
					return fp
				}
				g := newGather(spec, opt, schema, wrap, build.build, false, false)
				return g, true, nil
			}
		}
		spec, ok, err := pipelineFor(node.Left, src, opt)
		if err != nil || !ok {
			return nil, false, err
		}
		right, err := lowerNode(node.Right, src, opt)
		if err != nil {
			return nil, false, err
		}
		if err := checkJoin(node, spec.schema.Arity(), right.Schema().Arity()); err != nil {
			return nil, false, err
		}
		build := &hashBuild{Input: right, Keys: node.EquiR, dop: opt.DOP}
		schema := spec.schema.Concat(right.Schema())
		wrap := func(pipe Operator) Operator {
			return &HashJoinProbe{Input: pipe, Build: build,
				EquiL: node.EquiL, Residual: node.Residual, schema: schema}
		}
		g := newGather(spec, opt, schema, wrap, build.build, false, false)
		return g, true, nil

	case *algebra.Aggregate:
		if opt.Gov != nil {
			// Same rule as the join: governed aggregation is the serial
			// spilling operator; its input pipeline still parallelizes.
			return nil, false, nil
		}
		if opt.Fuse {
			// Fused aggregate workers fold morsel windows straight off the
			// shared columnar source; a too-small table declines here and
			// the serial fused hook in lowerNode catches it.
			if pfa, ok, err := lowerParallelFusedAggregate(node, src, opt); err != nil {
				return nil, false, err
			} else if ok {
				return pfa, true, nil
			}
		}
		spec, ok, err := pipelineFor(node.Input, src, opt)
		if err != nil || !ok {
			return nil, false, err
		}
		if err := checkAggregate(node, spec.schema.Arity()); err != nil {
			return nil, false, err
		}
		attrs := append([]string{}, node.GroupNames...)
		for _, a := range node.Aggs {
			attrs = append(attrs, a.Name)
		}
		h := &ParallelHashAggregate{
			GroupBy: node.GroupBy, GroupNames: node.GroupNames, Aggs: node.Aggs,
			schema: types.Schema{Attrs: attrs}, src: spec.src,
		}
		h.workers = make([]*aggWorker, opt.DOP)
		for i := range h.workers {
			pipe, scan := spec.mk()
			h.workers[i] = &aggWorker{scan: scan, pipe: pipe}
		}
		return h, true, nil
	}
	return nil, false, nil
}

// checkCols verifies every column reference of e lies within the input
// arity.
func checkCols(e algebra.Expr, arity int, ctx string) error {
	var bad error
	algebra.WalkCols(e, func(c algebra.Col) {
		if bad == nil && (c.Idx < 0 || c.Idx >= arity) {
			bad = fmt.Errorf("physical: %s references column %d of a %d-column input", ctx, c.Idx, arity)
		}
	})
	return bad
}
