package physical

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"

	"repro/internal/types"
)

// MemGovernor is the query-wide memory budget tracker of the spilling
// subsystem. Lowering builds one governor per query (from
// Options.MemBudget) and threads it into every pipeline breaker; operators
// Reserve before growing their working set and Release when they drop it,
// so the tracked total is the query's pipeline-breaker working set across
// all operators, not a per-operator allowance.
//
// The budget is a soft ceiling with a hard accounting: Reserve refuses
// growth past the budget — the operator's cue to spill — while Force
// records growth that must proceed regardless (a single over-budget row, a
// merge cursor's resident frame). Peak therefore reports the true
// high-water mark including the forced slack, which the out-of-core
// acceptance tests bound at budget + one batch.
//
// All methods are safe on a nil receiver (no budget: Reserve always
// succeeds, nothing is tracked) so operator code branches on pressure, not
// on configuration, and safe for concurrent use (parallel pipeline
// segments share the governor).
type MemGovernor struct {
	budget int64
	used   atomic.Int64
	peak   atomic.Int64

	// parent, when set, receives every byte this governor tracks as a
	// forced (never-refused) reservation: the child's budget is the
	// enforcement, the parent is the server-wide ledger. See
	// NewChildGovernor.
	parent *MemGovernor

	// ctx, when set via Bind, makes Err report the query's cancellation.
	// Spill paths poll it before long disk work, so a cancelled query
	// aborts mid-spill instead of finishing the eviction it no longer
	// needs.
	ctx context.Context
}

// NewMemGovernor returns a governor enforcing a budget of b bytes. b <= 0
// means unlimited; lowering never constructs a governor for that case, and
// a nil *MemGovernor is the canonical "unlimited" everywhere else.
func NewMemGovernor(b int64) *MemGovernor {
	if b <= 0 {
		return nil
	}
	return &MemGovernor{budget: b}
}

// NewChildGovernor returns a governor enforcing budget b whose every
// tracked byte also rolls up into parent as a forced reservation — the
// shape the server's admission control hands to each admitted query: the
// child's budget (the admission grant) is what refuses growth, while the
// parent aggregates true usage across all concurrent queries so its Peak
// is the server-wide high-water mark. A nil parent degrades to
// NewMemGovernor.
func NewChildGovernor(parent *MemGovernor, b int64) *MemGovernor {
	if b <= 0 {
		return nil
	}
	return &MemGovernor{budget: b, parent: parent}
}

// Bind attaches a context to the governor: Err (polled by the spill paths)
// reports ctx's cancellation from then on. Safe on a nil governor (no-op).
// Bind is not synchronized with concurrent Reserve traffic — call it before
// execution starts, as engine.Session does.
func (g *MemGovernor) Bind(ctx context.Context) {
	if g == nil || ctx == nil {
		return
	}
	g.ctx = ctx
}

// Err reports the bound context's cancellation or deadline error, nil on an
// unbound or nil governor. Spilling operators poll it at eviction
// boundaries — the points where a query is about to pay disk I/O that a
// cancelled client will never read.
func (g *MemGovernor) Err() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	return g.ctx.Err()
}

// Budget reports the configured budget in bytes (0 on a nil governor).
func (g *MemGovernor) Budget() int64 {
	if g == nil {
		return 0
	}
	return g.budget
}

// InUse reports the currently reserved bytes.
func (g *MemGovernor) InUse() int64 {
	if g == nil {
		return 0
	}
	return g.used.Load()
}

// Peak reports the high-water mark of reserved bytes, forced slack
// included.
func (g *MemGovernor) Peak() int64 {
	if g == nil {
		return 0
	}
	return g.peak.Load()
}

// Reserve tries to reserve n bytes, reporting false — without reserving —
// when that would exceed the budget. A false return is the spill signal.
func (g *MemGovernor) Reserve(n int64) bool {
	if g == nil {
		return true
	}
	for {
		u := g.used.Load()
		if u+n > g.budget {
			return false
		}
		if g.used.CompareAndSwap(u, u+n) {
			g.bumpPeak(u + n)
			g.parent.Force(n)
			return true
		}
	}
}

// Force reserves n bytes unconditionally: the growth happens either way
// (the row already exists; the merge needs its frame), so it is tracked
// even past the budget. Spill paths use it after releasing what they can.
func (g *MemGovernor) Force(n int64) {
	if g == nil {
		return
	}
	g.bumpPeak(g.used.Add(n))
	g.parent.Force(n)
}

// Release returns n reserved bytes.
func (g *MemGovernor) Release(n int64) {
	if g == nil {
		return
	}
	g.used.Add(-n)
	g.parent.Release(n)
}

// Over reports whether the tracked usage currently exceeds the budget —
// the batch-granularity pressure check used by folding operators that
// Force per group and spill when the batch pushed them over.
func (g *MemGovernor) Over() bool {
	if g == nil {
		return false
	}
	return g.used.Load() > g.budget
}

func (g *MemGovernor) bumpPeak(u int64) {
	for {
		p := g.peak.Load()
		if u <= p || g.peak.CompareAndSwap(p, u) {
			return
		}
	}
}

// valueMemBytes estimates the in-memory footprint of one types.Value
// header (the struct itself, independent of GOARCH so accounting is
// portable); string payloads add their length on top.
const valueMemBytes = 48

// rowOverheadBytes is the spine slot plus slice header charged per row.
const rowOverheadBytes = 24

// RowMemSize estimates the resident bytes of one row: spine slot, value
// headers, and string payloads. It is the unit of MemGovernor accounting —
// an estimate, deliberately stable across architectures, not a measurement.
func RowMemSize(row []types.Value) int64 {
	n := int64(rowOverheadBytes) + int64(len(row))*valueMemBytes
	for _, v := range row {
		if v.Kind() == types.KindString {
			n += int64(len(v.Str()))
		}
	}
	return n
}

// RowsMemSize is RowMemSize summed over a row set — how the out-of-core
// tests and benchmarks size "the data" when deriving a fractional budget.
func RowsMemSize(rows [][]types.Value) int64 {
	var n int64
	for _, r := range rows {
		n += RowMemSize(r)
	}
	return n
}

// ParseByteSize parses a human byte-size string for the -mem-budget flags:
// a plain integer is bytes; K/M/G (or KB/MB/GB, any case) scale by 2^10,
// 2^20, 2^30. Empty and "0" mean unlimited.
func ParseByteSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	mult := int64(1)
	upper := strings.ToUpper(s)
	for _, suf := range []struct {
		text string
		mul  int64
	}{{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30}, {"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30}, {"B", 1}} {
		if strings.HasSuffix(upper, suf.text) {
			mult = suf.mul
			s = s[:len(s)-len(suf.text)]
			break
		}
	}
	n, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad byte size %q (want e.g. 67108864, 64M, 2G)", s)
	}
	if n < 0 {
		return 0, fmt.Errorf("byte size %q is negative", s)
	}
	return n * mult, nil
}
