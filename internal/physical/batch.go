package physical

import (
	"repro/internal/types"
	"repro/internal/vector"
)

// DefaultBatchSize is the number of rows operators aim to put in one batch.
// It is large enough to amortize per-batch interface calls and small enough
// that a batch of row headers stays cache-resident.
const DefaultBatchSize = 1024

// Batch is a reusable slab of row references exchanged between operators.
// The batch's spine (its [][]types.Value) belongs to whichever operator
// returned it from Next and is valid only until that operator's next Next or
// Close call. Row slices inside a batch are stable: producers never reuse a
// row's backing storage once emitted, so consumers that retain rows across
// batches (sort runs, join build tables, Drain) may keep the row slices
// without copying — but must copy the spine, since that is recycled.
// Stability outlives the operator: Close must never reclaim or reuse emitted
// row storage — Drain returns rows after closing the tree, and exchange
// workers close their pipelines while their packets are still in flight, so
// an operator that pooled its slabs at Close would corrupt both. Only spines
// die with the producer; rows, once emitted, are immortal.
//
// A batch whose spine aliases storage owned elsewhere (a Scan slicing its
// table's row array) is marked shared; consumers must not reorder or
// truncate a shared spine in place. Owned spines may be compacted in place
// by the immediate consumer (selection-vector filtering), which is why
// Filter and Distinct can often avoid even the pointer copy.
//
// A batch may additionally (or exclusively) carry a columnar view: one
// typed vector per column (internal/vector). Scans emit both views —
// zero-copy row-spine and zero-copy vector windows of the table's cached
// columnar form — so boxed consumers pay nothing; typed Filter/Project
// outputs may carry only columns, and Rows materializes the row view on
// first demand. The columnar view follows the spine's lifetime rule (valid
// only until the producer's next Next or Close), while materialized rows
// follow the row-stability rule: freshly allocated, immortal once handed
// out. The two views of one batch always describe identical values.
type Batch struct {
	rows     [][]types.Value
	shared   bool
	cols     []vector.Vector
	colsN    int                    // row count of the columnar view when rows is nil
	lazyCols func() []vector.Vector // deferred columnar view; built on first Cols
}

// NewBatch returns an owned, empty batch with the given row capacity.
func NewBatch(capacity int) *Batch {
	return &Batch{rows: make([][]types.Value, 0, capacity)}
}

// Len reports the number of rows in the batch.
func (b *Batch) Len() int {
	if b.rows == nil && b.cols != nil {
		return b.colsN
	}
	return len(b.rows)
}

// Rows exposes the row spine for iteration, materializing it from the
// columnar view first when the batch is column-only. Callers must honor the
// ownership contract documented on Batch: read-only for shared spines, and
// no use after the producer's next Next call. Materialized rows are freshly
// allocated and therefore obey the engine-wide row-stability rule.
func (b *Batch) Rows() [][]types.Value {
	if b.rows == nil && b.cols != nil {
		b.rows = vector.Materialize(b.cols, b.colsN)
	}
	return b.rows
}

// Row returns the i-th row (materializing the row view if needed).
func (b *Batch) Row(i int) []types.Value { return b.Rows()[i] }

// Cols exposes the columnar view, or nil when the batch is row-only. A
// deferred view (a typed filter's gather) is built on first call — a
// consumer that only ever reads rows never pays for it.
func (b *Batch) Cols() []vector.Vector {
	if b.cols == nil && b.lazyCols != nil {
		b.cols, b.lazyCols = b.lazyCols(), nil
		b.colsN = len(b.rows)
	}
	return b.cols
}

// KeyCols returns the columnar view only when the batch has no row view yet:
// the cases where keying off the vectors saves the boxed reads. A batch that
// already carries rows (a dual-view scan batch, a compacted filter output)
// keys off the spine directly — those reads are plain struct loads and
// beat per-element vector dispatch.
func (b *Batch) KeyCols() []vector.Vector {
	if b.rows != nil {
		return nil
	}
	return b.cols
}

// Shared reports whether the spine aliases storage owned outside the batch
// (and therefore must not be reordered or truncated in place).
func (b *Batch) Shared() bool { return b.shared }

// Reset truncates the batch to zero rows and reclaims spine ownership. If
// the spine was shared it is dropped rather than truncated, so the aliased
// storage is never written through. Any columnar view is dropped.
func (b *Batch) Reset() {
	b.cols, b.colsN, b.lazyCols = nil, 0, nil
	if b.shared {
		b.rows, b.shared = nil, false
		return
	}
	b.rows = b.rows[:0]
}

// SetShared points the batch at rows owned elsewhere, marking the spine
// shared. Used by leaf operators to emit zero-copy slices of table storage.
func (b *Batch) SetShared(rows [][]types.Value) {
	b.rows, b.shared = rows, true
	b.cols, b.colsN, b.lazyCols = nil, 0, nil
}

// SetSharedWithCols is SetShared plus a columnar view of the same rows:
// the dual-view emission of scans over columnar table storage. Both views
// alias storage owned elsewhere.
func (b *Batch) SetSharedWithCols(rows [][]types.Value, cols []vector.Vector) {
	b.rows, b.shared = rows, true
	b.cols, b.colsN, b.lazyCols = cols, len(rows), nil
}

// SetCols makes the batch column-only: n rows described by cols, with the
// row view materialized lazily on demand. The typed operators emit their
// outputs this way.
func (b *Batch) SetCols(cols []vector.Vector, n int) {
	b.rows, b.shared = nil, false
	b.cols, b.colsN, b.lazyCols = cols, n, nil
}

// setLazyColsView attaches a deferred columnar view describing the batch's
// current rows (a typed filter's gather): built only if a consumer reads
// Cols before the producer's next Next, skipped entirely for row-only
// consumers like joins, sorts, and Drain.
func (b *Batch) setLazyColsView(fn func() []vector.Vector) {
	b.cols, b.colsN, b.lazyCols = nil, 0, fn
}

// Append adds a row to an owned batch.
func (b *Batch) Append(row []types.Value) {
	b.rows = append(b.rows, row)
}

// Truncate shortens an owned batch to n rows.
func (b *Batch) Truncate(n int) { b.rows = b.rows[:n] }

// applySel narrows in to the rows selected by sel (indices, ascending).
// Owned spines are compacted in place — the selection-vector fast path —
// while shared spines are copied into scratch, which the caller must own
// and reuse across calls. The returned batch holds the selected rows. A
// columnar view on the input is dropped unless every row was selected (it
// would describe the pre-selection rows); callers with a freshly gathered
// view reattach it with setColsView.
func applySel(in *Batch, sel []int, scratch *Batch) *Batch {
	if len(sel) == in.Len() {
		return in
	}
	rows := in.Rows()
	if in.shared {
		scratch.Reset()
		for _, i := range sel {
			scratch.Append(rows[i])
		}
		return scratch
	}
	for out, i := range sel {
		rows[out] = rows[i]
	}
	in.Truncate(len(sel))
	in.cols, in.colsN, in.lazyCols = nil, 0, nil
	return in
}

// slab hands out stable row slices carved from large value arrays: one
// allocation per ~batch of rows instead of one per row. Slices are never
// reclaimed — emitted rows must stay valid until Close — so exhausting a
// chunk simply allocates the next one.
type slab struct {
	buf   []types.Value
	width int
}

// newSlab returns a slab cutting rows of the given width.
func newSlab(width int) *slab { return &slab{width: width} }

// peek returns the next row's storage without committing it: the same
// storage is handed out again until commit is called. Operators that may
// discard a candidate row (a join testing its residual) fill the peeked
// row, test, and only then commit.
func (s *slab) peek() []types.Value {
	if len(s.buf) < s.width {
		n := DefaultBatchSize * s.width
		if n < s.width {
			n = s.width
		}
		s.buf = make([]types.Value, n)
	}
	return s.buf[:s.width:s.width]
}

// commit finalizes the most recently peeked row; its storage will not be
// handed out again.
func (s *slab) commit() { s.buf = s.buf[s.width:] }

// row fills a fresh committed row with the values of src.
func (s *slab) row(src []types.Value) []types.Value {
	r := s.peek()
	copy(r, src)
	s.commit()
	return r
}
