package physical

import (
	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

// Scan emits the rows of a resolved base table in batches whose spines are
// zero-copy slices of the table's row array (marked shared — consumers must
// not compact them in place). The row slices alias table storage; operators
// above that construct rows (Project, joins, HashAggregate) emit fresh
// slices and never mutate inputs, while row-preserving operators (Filter,
// Sort, Distinct, UnionAll) pass the aliased slices through. Callers
// therefore must not mutate result rows of row-preserving plans in place;
// Limit is the exception and copies, so that LIMIT results are always safe
// to mutate.
//
// When the source also provides columnar table storage (ColumnSource), each
// batch additionally carries zero-copy vector windows of the table's
// columns, and the typed operators above run their unboxed loops instead of
// boxed row kernels; boxed consumers keep reading the row view for free.
type Scan struct {
	Table     string
	BatchSize int // rows per batch; 0 means DefaultBatchSize
	schema    types.Schema
	rows      [][]types.Value
	cols      *vector.Columns // nil: row-only source
	pos       int
	out       Batch
}

// NewScan builds a scan over pre-resolved rows.
func NewScan(table string, schema types.Schema, rows [][]types.Value) *Scan {
	return &Scan{Table: table, schema: schema, rows: rows}
}

// NewColumnarScan builds a scan that emits dual-view batches: the row spine
// plus zero-copy windows of cols. A cols whose length disagrees with rows
// (a stale cache) is ignored.
func NewColumnarScan(table string, schema types.Schema, rows [][]types.Value, cols *vector.Columns) *Scan {
	s := NewScan(table, schema, rows)
	if cols != nil && cols.N == len(rows) {
		s.cols = cols
	}
	return s
}

// Schema implements Operator.
func (s *Scan) Schema() types.Schema { return s.schema }

// Open implements Operator.
func (s *Scan) Open() error { s.pos = 0; return nil }

// RowCountHint implements RowCountHinter: a scan knows its table size.
func (s *Scan) RowCountHint() (int, bool) { return len(s.rows) - s.pos, true }

// Next implements Operator.
func (s *Scan) Next() (*Batch, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	size := s.BatchSize
	if size <= 0 {
		size = DefaultBatchSize
	}
	end := s.pos + size
	if end > len(s.rows) {
		end = len(s.rows)
	}
	if s.cols != nil {
		s.out.SetSharedWithCols(s.rows[s.pos:end], s.cols.Slice(s.pos, end))
	} else {
		s.out.SetShared(s.rows[s.pos:end])
	}
	s.pos = end
	return &s.out, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// drainColumns implements colsDrainer: a columnar scan at the root of a plan
// hands its whole table over as one zero-copy columnar result — no batches,
// no row spine, no boxing. The columns alias table storage; Result documents
// the read-only rule.
func (s *Scan) drainColumns() (*vector.Columns, bool, error) {
	if s.cols == nil || s.pos != 0 {
		return nil, false, nil
	}
	s.pos = len(s.rows)
	return s.cols, true, nil
}

// Filter keeps the input rows whose predicate evaluates to TRUE (SQL
// three-valued logic: UNKNOWN rows are dropped). The predicate is compiled
// to a closure kernel at Open; each input batch is then narrowed through a
// reused selection vector: owned batches are compacted in place, shared
// (scan-aliased) batches are compacted into the filter's own spine — either
// way no row data moves, only row pointers.
//
// Columnar batches take the typed path when the predicate has an unboxed
// selection kernel: the selection vector is computed straight off the
// vectors, and the surviving rows' columns are gathered into fresh packed
// vectors so downstream typed operators (Project's arithmetic, join key
// encoding) keep their unboxed loops. When the batch also carries a row
// view it is narrowed as before, so boxed consumers lose nothing.
type Filter struct {
	Input Operator
	Pred  algebra.Expr

	prog     *algebra.Compiled
	sel      []int
	scratch  Batch
	colsOut  []vector.Vector
	colsWin  []vector.Vector // zero-copy window headers; never gathered into
	colsOnly Batch
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.Input.Schema() }

// Open implements Operator.
func (f *Filter) Open() error {
	f.prog = algebra.Compile(f.Pred)
	return f.Input.Open()
}

// gather packs the selected rows' columns into the filter's scratch-reused
// vectors (the previous batch's storage, whose lifetime has expired).
func (f *Filter) gather(cols []vector.Vector, sel []int) []vector.Vector {
	if cap(f.colsOut) < len(cols) {
		f.colsOut = make([]vector.Vector, len(cols))
	}
	gathered := f.colsOut[:len(cols)]
	for j, v := range cols {
		gathered[j] = vector.GatherInto(gathered[j], v, sel)
	}
	return gathered
}

// sliceWin builds zero-copy [lo, hi) windows of the input columns — the
// dense-selection fast path. The headers live in their own scratch slice,
// separate from colsOut: GatherInto reuses whatever storage sits in colsOut
// as its destination, and a zero-copy slice there would alias table storage
// and be written through. Slicing also preserves Asc sortedness (Gather
// drops it), so range predicates downstream of a dense filter keep their
// binary-search form.
func (f *Filter) sliceWin(cols []vector.Vector, lo, hi int) []vector.Vector {
	if cap(f.colsWin) < len(cols) {
		f.colsWin = make([]vector.Vector, len(cols))
	}
	win := f.colsWin[:len(cols)]
	for j, v := range cols {
		win[j] = v.Slice(lo, hi)
	}
	return win
}

// Next implements Operator.
func (f *Filter) Next() (*Batch, error) {
	for {
		b, err := f.Input.Next()
		if b == nil || err != nil {
			return nil, err
		}
		if cols := b.Cols(); cols != nil {
			sel, ok := f.prog.SelectTruthyVec(cols, b.Len(), f.sel[:0])
			if ok {
				f.sel = sel
				if len(sel) == 0 {
					continue
				}
				if len(sel) == b.Len() {
					return b, nil
				}
				// A selection that landed on one contiguous run degenerates to
				// zero-copy slicing: no gather, and Asc survives.
				dense := sel[len(sel)-1]-sel[0] == len(sel)-1
				if b.rows == nil {
					// Column-only input: stay column-only, materialize never.
					if dense {
						f.colsOnly.SetCols(f.sliceWin(cols, sel[0], sel[0]+len(sel)), len(sel))
					} else {
						f.colsOnly.SetCols(f.gather(cols, sel), len(sel))
					}
					return &f.colsOnly, nil
				}
				out := applySel(b, sel, &f.scratch)
				// The gather (or slice) runs only if a typed consumer reads
				// Cols before our next Next; row-only consumers (joins keying
				// off the spine, sorts, Drain) never pay for it.
				if dense {
					lo, hi := sel[0], sel[0]+len(sel)
					out.setLazyColsView(func() []vector.Vector { return f.sliceWin(cols, lo, hi) })
				} else {
					out.setLazyColsView(func() []vector.Vector { return f.gather(cols, sel) })
				}
				return out, nil
			}
		}
		f.sel = f.prog.SelectTruthy(b.Rows(), f.sel[:0])
		if len(f.sel) == 0 {
			continue
		}
		return applySel(b, f.sel, &f.scratch), nil
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Input.Close() }

// Project computes one output column per expression. The expressions are
// compiled to closure kernels at Open; output rows for a batch are carved
// out of a single freshly allocated value slab — one allocation per batch
// instead of one per row — filled expression-at-a-time with strided batch
// evaluation. The slab is not reused, so emitted rows stay valid until
// Close, as the engine-wide row-stability rule requires.
//
// Columnar batches take a typed path when every output expression has an
// unboxed columnar kernel. A pure passthrough projection (bare columns and
// constants only) stays column-only — zero work now, and typed consumers
// (Distinct's dedup keying, join probes) keep their vectors; a consumer
// that wants rows pays exactly the copy the row path would have made. A
// computing projection instead fuses typed evaluation with row-slab
// construction (EvalVecStrided): operands are read unboxed, but the output
// Values are written once, directly into the slab — no intermediate vector
// materialization on the way to row consumers like Drain, Sort, and join
// builds. If any expression lacks a columnar kernel the whole batch falls
// back to the boxed row kernels, so a batch is never evaluated twice.
type Project struct {
	Input  Operator
	Exprs  []algebra.Expr
	Names  []string
	schema types.Schema

	progs       []*algebra.Compiled
	out         Batch
	colsOut     []vector.Vector
	passthrough bool // every expr is a bare Col or Const
	allVec      bool // every expr has a columnar kernel
}

// NewProject builds a projection operator.
func NewProject(in Operator, exprs []algebra.Expr, names []string) *Project {
	return &Project{Input: in, Exprs: exprs, Names: names,
		schema: types.Schema{Attrs: names}}
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error {
	p.progs = algebra.CompileAll(p.Exprs)
	p.passthrough, p.allVec = true, true
	for i, e := range p.Exprs {
		switch e.(type) {
		case algebra.Col, algebra.Const:
		default:
			p.passthrough = false
		}
		if !p.progs[i].CanEvalVec() {
			p.allVec = false
		}
	}
	return p.Input.Open()
}

// RowCountHint implements RowCountHinter: projection preserves cardinality.
func (p *Project) RowCountHint() (int, bool) {
	if h, ok := p.Input.(RowCountHinter); ok {
		return h.RowCountHint()
	}
	return 0, false
}

// Next implements Operator.
func (p *Project) Next() (*Batch, error) {
	b, err := p.Input.Next()
	if b == nil || err != nil {
		return nil, err
	}
	n, k := b.Len(), len(p.Exprs)
	if cols := b.Cols(); cols != nil && p.allVec {
		if p.passthrough {
			if cap(p.colsOut) < k {
				p.colsOut = make([]vector.Vector, k)
			}
			outCols := p.colsOut[:k]
			for j, prog := range p.progs {
				outCols[j], _ = prog.EvalVec(cols, n)
			}
			p.out.SetCols(outCols, n)
			return &p.out, nil
		}
		buf := make([]types.Value, n*k)
		for j, prog := range p.progs {
			prog.EvalVecStrided(cols, n, buf[j:], k)
		}
		p.out.Reset()
		for i := 0; i < n; i++ {
			p.out.Append(buf[i*k : (i+1)*k : (i+1)*k])
		}
		return &p.out, nil
	}
	buf := make([]types.Value, n*k)
	for j, prog := range p.progs {
		prog.EvalStrided(b.Rows(), buf[j:], k)
	}
	p.out.Reset()
	for i := 0; i < n; i++ {
		p.out.Append(buf[i*k : (i+1)*k : (i+1)*k])
	}
	return &p.out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Input.Close() }

// Limit emits the first N input rows and then stops pulling from its input —
// early termination that streaming producers below benefit from. Emitted
// rows are copied (slab-allocated per batch) so callers can mutate them, or
// append past them, without corrupting the source table the rows may alias.
type Limit struct {
	Input   Operator
	N       int64
	emitted int64
	out     Batch
}

// Schema implements Operator.
func (l *Limit) Schema() types.Schema { return l.Input.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { l.emitted = 0; return l.Input.Open() }

// RowCountHint implements RowCountHinter when the input's count is known.
func (l *Limit) RowCountHint() (int, bool) {
	h, ok := l.Input.(RowCountHinter)
	if !ok {
		return 0, false
	}
	n, known := h.RowCountHint()
	if !known {
		return 0, false
	}
	if int64(n) > l.N {
		n = int(l.N)
	}
	return n, true
}

// Next implements Operator.
func (l *Limit) Next() (*Batch, error) {
	if l.emitted >= l.N {
		return nil, nil
	}
	b, err := l.Input.Next()
	if b == nil || err != nil {
		return nil, err
	}
	take := b.Len()
	if rem := l.N - l.emitted; int64(take) > rem {
		take = int(rem)
	}
	l.emitted += int64(take)
	width := l.Schema().Arity()
	buf := make([]types.Value, take*width)
	rows := b.Rows()
	l.out.Reset()
	for i := 0; i < take; i++ {
		row := buf[i*width : (i+1)*width : (i+1)*width]
		copy(row, rows[i])
		l.out.Append(row)
	}
	return &l.out, nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Input.Close() }

// UnionAll streams the left input's batches, then the right's (bag union).
// Batches pass through untouched, shared flag and all.
type UnionAll struct {
	Left, Right Operator
	onRight     bool
}

// Schema implements Operator.
func (u *UnionAll) Schema() types.Schema { return u.Left.Schema() }

// Open implements Operator.
func (u *UnionAll) Open() error {
	u.onRight = false
	if err := u.Left.Open(); err != nil {
		return err
	}
	return u.Right.Open()
}

// RowCountHint implements RowCountHinter when both inputs' counts are known.
func (u *UnionAll) RowCountHint() (int, bool) {
	lh, ok := u.Left.(RowCountHinter)
	if !ok {
		return 0, false
	}
	rh, ok := u.Right.(RowCountHinter)
	if !ok {
		return 0, false
	}
	ln, lok := lh.RowCountHint()
	rn, rok := rh.RowCountHint()
	if !lok || !rok {
		return 0, false
	}
	return ln + rn, true
}

// Next implements Operator.
func (u *UnionAll) Next() (*Batch, error) {
	if !u.onRight {
		b, err := u.Left.Next()
		if b != nil || err != nil {
			return b, err
		}
		u.onRight = true
	}
	return u.Right.Next()
}

// Close implements Operator.
func (u *UnionAll) Close() error {
	lerr := u.Left.Close()
	rerr := u.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// Distinct keeps the first occurrence of each row, keyed by the shared
// canonical binary encoding (see key.go). Like Filter it narrows each batch
// through a selection vector — in place for owned spines, into its own
// spine for shared ones — so dedup moves row pointers, never row data. On
// columnar batches the keys are encoded straight from the vectors (the
// per-vector-type AppendElemKey fast paths), skipping the boxed reads.
type Distinct struct {
	Input Operator
	seen  map[string]struct{}

	sel     []int
	keyBuf  []byte
	scratch Batch
}

// Schema implements Operator.
func (d *Distinct) Schema() types.Schema { return d.Input.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = make(map[string]struct{})
	return d.Input.Open()
}

// Next implements Operator.
func (d *Distinct) Next() (*Batch, error) {
	for {
		b, err := d.Input.Next()
		if b == nil || err != nil {
			return nil, err
		}
		d.sel = d.sel[:0]
		if cols := b.KeyCols(); cols != nil {
			for i, n := 0, b.Len(); i < n; i++ {
				d.keyBuf = appendVecRowKey(d.keyBuf[:0], cols, i)
				if _, dup := d.seen[string(d.keyBuf)]; dup {
					continue
				}
				d.seen[string(d.keyBuf)] = struct{}{}
				d.sel = append(d.sel, i)
			}
		} else {
			for i, row := range b.Rows() {
				d.keyBuf = appendRowKey(d.keyBuf[:0], row)
				if _, dup := d.seen[string(d.keyBuf)]; dup {
					continue
				}
				d.seen[string(d.keyBuf)] = struct{}{}
				d.sel = append(d.sel, i)
			}
		}
		if len(d.sel) == 0 {
			continue
		}
		return applySel(b, d.sel, &d.scratch), nil
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}
