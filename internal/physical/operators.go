package physical

import (
	"repro/internal/algebra"
	"repro/internal/types"
)

// Scan streams the rows of a resolved base table. The emitted rows alias
// the table's storage; operators above that construct rows (Project, joins,
// HashAggregate) emit fresh slices and never mutate inputs, while
// row-preserving operators (Filter, Sort, Distinct, UnionAll) pass the
// aliased slices through. Callers therefore must not mutate result rows of
// row-preserving plans in place; Limit is the exception and copies, so that
// LIMIT results are always safe to mutate.
type Scan struct {
	Table  string
	schema types.Schema
	rows   [][]types.Value
	pos    int
}

// NewScan builds a scan over pre-resolved rows.
func NewScan(table string, schema types.Schema, rows [][]types.Value) *Scan {
	return &Scan{Table: table, schema: schema, rows: rows}
}

// Schema implements Operator.
func (s *Scan) Schema() types.Schema { return s.schema }

// Open implements Operator.
func (s *Scan) Open() error { s.pos = 0; return nil }

// Next implements Operator.
func (s *Scan) Next() ([]types.Value, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	row := s.rows[s.pos]
	s.pos++
	return row, nil
}

// Close implements Operator.
func (s *Scan) Close() error { return nil }

// Filter streams the input rows whose predicate evaluates to TRUE (SQL
// three-valued logic: UNKNOWN rows are dropped).
type Filter struct {
	Input Operator
	Pred  algebra.Expr
}

// Schema implements Operator.
func (f *Filter) Schema() types.Schema { return f.Input.Schema() }

// Open implements Operator.
func (f *Filter) Open() error { return f.Input.Open() }

// Next implements Operator.
func (f *Filter) Next() ([]types.Value, error) {
	for {
		row, err := f.Input.Next()
		if row == nil || err != nil {
			return nil, err
		}
		if algebra.Truthy(f.Pred.Eval(row)) {
			return row, nil
		}
	}
}

// Close implements Operator.
func (f *Filter) Close() error { return f.Input.Close() }

// Project computes one output column per expression, allocating a fresh row.
type Project struct {
	Input  Operator
	Exprs  []algebra.Expr
	Names  []string
	schema types.Schema
}

// NewProject builds a projection operator.
func NewProject(in Operator, exprs []algebra.Expr, names []string) *Project {
	return &Project{Input: in, Exprs: exprs, Names: names,
		schema: types.Schema{Attrs: names}}
}

// Schema implements Operator.
func (p *Project) Schema() types.Schema { return p.schema }

// Open implements Operator.
func (p *Project) Open() error { return p.Input.Open() }

// Next implements Operator.
func (p *Project) Next() ([]types.Value, error) {
	row, err := p.Input.Next()
	if row == nil || err != nil {
		return nil, err
	}
	out := make([]types.Value, len(p.Exprs))
	for i, e := range p.Exprs {
		out[i] = e.Eval(row)
	}
	return out, nil
}

// Close implements Operator.
func (p *Project) Close() error { return p.Input.Close() }

// Limit emits the first N input rows and then stops pulling from its input —
// early termination that streaming producers below benefit from. Emitted
// rows are copied so callers can mutate them (or append past them) without
// corrupting the source table the rows may alias.
type Limit struct {
	Input   Operator
	N       int64
	emitted int64
}

// Schema implements Operator.
func (l *Limit) Schema() types.Schema { return l.Input.Schema() }

// Open implements Operator.
func (l *Limit) Open() error { l.emitted = 0; return l.Input.Open() }

// Next implements Operator.
func (l *Limit) Next() ([]types.Value, error) {
	if l.emitted >= l.N {
		return nil, nil
	}
	row, err := l.Input.Next()
	if row == nil || err != nil {
		return nil, err
	}
	l.emitted++
	return append([]types.Value(nil), row...), nil
}

// Close implements Operator.
func (l *Limit) Close() error { return l.Input.Close() }

// UnionAll streams the left input, then the right (bag union).
type UnionAll struct {
	Left, Right Operator
	onRight     bool
}

// Schema implements Operator.
func (u *UnionAll) Schema() types.Schema { return u.Left.Schema() }

// Open implements Operator.
func (u *UnionAll) Open() error {
	u.onRight = false
	if err := u.Left.Open(); err != nil {
		return err
	}
	return u.Right.Open()
}

// Next implements Operator.
func (u *UnionAll) Next() ([]types.Value, error) {
	if !u.onRight {
		row, err := u.Left.Next()
		if row != nil || err != nil {
			return row, err
		}
		u.onRight = true
	}
	return u.Right.Next()
}

// Close implements Operator.
func (u *UnionAll) Close() error {
	lerr := u.Left.Close()
	rerr := u.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// Distinct streams the first occurrence of each row, keyed by the canonical
// tuple encoding.
type Distinct struct {
	Input Operator
	seen  map[string]bool
}

// Schema implements Operator.
func (d *Distinct) Schema() types.Schema { return d.Input.Schema() }

// Open implements Operator.
func (d *Distinct) Open() error {
	d.seen = make(map[string]bool)
	return d.Input.Open()
}

// Next implements Operator.
func (d *Distinct) Next() ([]types.Value, error) {
	for {
		row, err := d.Input.Next()
		if row == nil || err != nil {
			return nil, err
		}
		k := types.Tuple(row).Key()
		if !d.seen[k] {
			d.seen[k] = true
			return row, nil
		}
	}
}

// Close implements Operator.
func (d *Distinct) Close() error {
	d.seen = nil
	return d.Input.Close()
}
