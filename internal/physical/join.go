package physical

import (
	"repro/internal/algebra"
	"repro/internal/spill"
	"repro/internal/types"
	"repro/internal/vector"
)

// HashJoin executes an equi-join in O(|build| + |probe| + |output|): Open
// drains the right (build) input into a hash table keyed on EquiR with the
// shared canonical key encoding (key.go), then Next streams the left
// (probe) input batch by batch, emitting concatenated rows that satisfy the
// residual predicate (evaluated over the concatenated row). Output rows are
// carved from slabs, so one probe batch costs O(1) allocations however many
// matches it produces. NULL join keys never match, per SQL semantics.
//
// One probe batch can fan out into many output batches; Next keeps its
// probe cursor (batch, row, match index) across calls and resumes mid-row.
//
// With a memory governor (Mem non-nil), the build side is reserved as it
// is drained; while it fits, execution is exactly the in-memory operator.
// The first failed reservation switches Open to a hybrid Grace hash join:
// build rows are hash-partitioned, resident partitions are evicted to temp
// files fattest-first under pressure, and the survivors become in-memory
// hash tables. The probe pass then routes each probe row by the same hash —
// rows hitting resident partitions join immediately, rows hitting spilled
// partitions are appended to per-partition probe files — and every output
// row is tagged with its probe row's global sequence number and spooled to
// an output run. Spilled partitions join partition at a time afterwards
// (recursing with a re-salted hash when one partition alone exceeds the
// budget), each producing its own sequence-ordered output run, and Next
// streams the k-way merge of the runs by sequence number — which is exactly
// the in-memory operator's probe order, so spilled and in-memory execution
// emit byte-identical rows in identical order. Bucket contents keep global
// build order within each partition (one key routes to one partition), so
// per-probe-row match order is preserved too.
type HashJoin struct {
	Left, Right  Operator // Right is the build side
	EquiL, EquiR []int
	Residual     algebra.Expr
	Mem          *MemGovernor // nil: never spill (today's in-memory behavior)
	SpillDir     string       // temp dir for spill files; "" means os.TempDir()
	schema       types.Schema

	buildIdx map[string]int    // canonical key -> index into buckets
	buckets  [][][]types.Value // build rows per distinct key
	res      *algebra.Compiled // compiled Residual, nil when absent
	keyBuf   []byte
	probe    *Batch // current probe batch, nil when a new one is needed
	pi       int    // next probe row index
	// Per-probe-batch cached views: probeKeyCols keys off the vectors when
	// the batch has no row view yet (typed fast path); probeRows is the row
	// view, resolved lazily in that case — a batch probing with no matches
	// never materializes it.
	probeKeyCols []vector.Vector
	probeRows    [][]types.Value
	matches      [][]types.Value
	mi           int
	out          Batch
	sl           *slab

	held      int64
	sp        *spillSet
	graceHeap *mergeHeap    // non-nil: Next streams the grace output merge
	graceTag  []types.Value // scratch: [seq | concatenated output row]
}

// gracePart is one hash partition of a grace join's build side: resident
// rows (later a built hash table), or temp files once evicted.
type gracePart struct {
	rows    [][]types.Value // resident build rows, or a spilled tail buffer
	bytes   int64           // reserved estimate of rows
	spilled bool
	bw      *spill.Writer // build rows on disk
	brun    *spill.Run
	pw      *spill.Writer // probe rows on disk, [seq | probe row]
	idx     map[string]int
	buckets [][][]types.Value
}

// NewHashJoin builds a hash join; key positions are left- and right-relative.
func NewHashJoin(l, r Operator, equiL, equiR []int, residual algebra.Expr) *HashJoin {
	return &HashJoin{Left: l, Right: r, EquiL: equiL, EquiR: equiR,
		Residual: residual, schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Operator.
func (j *HashJoin) Schema() types.Schema { return j.schema }

// Open implements Operator: it materializes the build side's hash table
// (or, under memory pressure, the grace partitioning — see the type
// comment). Build rows are retained directly — row slices are stable until
// Close — only the batch spines are ephemeral.
func (j *HashJoin) Open() error {
	j.probe, j.matches, j.pi, j.mi = nil, nil, 0, 0
	j.sl = newSlab(j.schema.Arity())
	j.res = nil
	j.held, j.sp, j.graceHeap = 0, nil, nil
	if j.Residual != nil {
		j.res = algebra.Compile(j.Residual)
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	if j.Mem != nil {
		return j.openGoverned()
	}
	j.buildIdx = make(map[string]int)
	j.buckets = nil
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		// The build side always needs the row view (buckets retain row
		// slices), so keys come off the spine directly.
		for _, row := range b.Rows() {
			key, ok := appendJoinKey(j.keyBuf[:0], row, j.EquiR)
			j.keyBuf = key
			if !ok {
				continue
			}
			// The m[string(b)] lookup is allocation-free; the key string is
			// materialized once per distinct key, not once per build row.
			idx, seen := j.buildIdx[string(key)]
			if !seen {
				idx = len(j.buckets)
				j.buildIdx[string(key)] = idx
				j.buckets = append(j.buckets, nil)
			}
			j.buckets[idx] = append(j.buckets[idx], row)
		}
	}
	return nil
}

// buildRowsTable constructs the canonical first-seen bucket table over a
// build row slice — the one table shape shared by the governed whole-build
// replay, resident grace partitions, and spilled partition joins (the
// ungoverned Open keeps its streaming batch loop but builds the identical
// structure). NULL-key rows are dropped, as everywhere.
func (j *HashJoin) buildRowsTable(rows [][]types.Value) (map[string]int, [][][]types.Value) {
	idx := make(map[string]int)
	var buckets [][][]types.Value
	for _, row := range rows {
		key, ok := appendJoinKey(j.keyBuf[:0], row, j.EquiR)
		j.keyBuf = key
		if !ok {
			continue
		}
		bi, seen := idx[string(key)]
		if !seen {
			bi = len(buckets)
			idx[string(key)] = bi
			buckets = append(buckets, nil)
		}
		buckets[bi] = append(buckets[bi], row)
	}
	return idx, buckets
}

// graceFlushRows is how many rows a spilled partition buffers before the
// buffer is appended to its file.
const graceFlushRows = 1024

// openGoverned drains the build side under reservation; if it fits, probing
// proceeds exactly like the ungoverned operator. Otherwise it runs the full
// hybrid grace join (partitioned build, routed probe, per-partition joins)
// and leaves Next a sequence-ordered merge of the output runs.
func (j *HashJoin) openGoverned() error {
	var buffer [][]types.Value
	var parts []gracePart
	grace := false

	// spillPart evicts one partition's resident rows to its file.
	spillPart := func(p *gracePart) error {
		// A cancelled query aborts before paying the eviction I/O; Close
		// releases the reservations and removes any spill files.
		if err := j.Mem.Err(); err != nil {
			return err
		}
		if p.bw == nil {
			if j.sp == nil {
				j.sp = newSpillSet(j.SpillDir, j.Mem)
			}
			w, err := j.sp.newWriter()
			if err != nil {
				return err
			}
			p.bw = w
		}
		if err := p.bw.AppendAll(p.rows); err != nil {
			return err
		}
		j.Mem.Release(p.bytes)
		j.held -= p.bytes
		p.rows, p.bytes, p.spilled = nil, 0, true
		return nil
	}
	// routeBuild assigns an already-reserved row to its partition; NULL-key
	// rows are dropped (they never match), releasing their reservation.
	routeBuild := func(row []types.Value, bytes int64) error {
		key, ok := appendJoinKey(j.keyBuf[:0], row, j.EquiR)
		j.keyBuf = key
		if !ok {
			j.Mem.Release(bytes)
			j.held -= bytes
			return nil
		}
		p := &parts[keyHashSalted(key, 0)%SpillPartitions]
		p.rows = append(p.rows, row)
		p.bytes += bytes
		if p.spilled && len(p.rows) >= graceFlushRows {
			return spillPart(p)
		}
		return nil
	}
	enterGrace := func() error {
		if j.sp == nil {
			// Even if no partition ever reaches its file (pressure may come
			// entirely from sibling operators' reservations), the probe
			// pass needs the spill set for its output runs.
			j.sp = newSpillSet(j.SpillDir, j.Mem)
		}
		parts = make([]gracePart, SpillPartitions)
		grace = true
		for _, row := range buffer {
			if err := routeBuild(row, RowMemSize(row)); err != nil {
				return err
			}
		}
		buffer = nil
		return nil
	}
	// reserveBuild makes room for one more build row, evicting the fattest
	// resident partition until the reservation fits (or nothing resident
	// remains, in which case the row proceeds as forced slack).
	reserveBuild := func(bytes int64) error {
		if j.Mem.Reserve(bytes) {
			j.held += bytes
			return nil
		}
		for {
			best, bestBytes := -1, int64(0)
			for i := range parts {
				if parts[i].bytes > bestBytes {
					best, bestBytes = i, parts[i].bytes
				}
			}
			if best < 0 {
				j.Mem.Force(bytes)
				j.held += bytes
				return nil
			}
			if err := spillPart(&parts[best]); err != nil {
				return err
			}
			if j.Mem.Reserve(bytes) {
				j.held += bytes
				return nil
			}
		}
	}

	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, row := range b.Rows() {
			bytes := RowMemSize(row)
			if !grace {
				if j.Mem.Reserve(bytes) {
					j.held += bytes
					buffer = append(buffer, row)
					continue
				}
				if err := enterGrace(); err != nil {
					return err
				}
			}
			if err := reserveBuild(bytes); err != nil {
				return err
			}
			if err := routeBuild(row, bytes); err != nil {
				return err
			}
		}
	}

	if !grace {
		// The build fit: identical table, identical streaming probe.
		j.buildIdx, j.buckets = j.buildRowsTable(buffer)
		return nil
	}

	// Finish the partitions: spilled ones flush their tails, resident ones
	// become per-partition hash tables (same layout as the single table).
	for i := range parts {
		p := &parts[i]
		if p.spilled {
			if len(p.rows) > 0 {
				if err := spillPart(p); err != nil {
					return err
				}
			}
			run, err := j.sp.finish(p.bw)
			if err != nil {
				return err
			}
			p.brun, p.bw = run, nil
			continue
		}
		p.idx, p.buckets = j.buildRowsTable(p.rows)
	}
	return j.graceProbe(parts)
}

// emitTagged writes one joined output row, tagged with its probe sequence
// number, to w — unless the residual rejects the concatenation.
func (j *HashJoin) emitTagged(w *spill.Writer, seq int64, l, r []types.Value) error {
	width := j.schema.Arity()
	if cap(j.graceTag) < width+1 {
		j.graceTag = make([]types.Value, width+1)
	}
	tag := j.graceTag[:width+1]
	tag[0] = types.NewInt(seq)
	copy(tag[1:], l)
	copy(tag[1+len(l):], r)
	if j.res != nil && !algebra.Truthy(j.res.Eval(tag[1:])) {
		return nil
	}
	return w.Append(tag)
}

// graceProbe consumes the probe input: resident-partition rows join
// immediately into the memOut run, spilled-partition rows are appended to
// per-partition probe files; then every spilled partition joins on its own
// and the output runs are wired into the sequence merge Next streams.
func (j *HashJoin) graceProbe(parts []gracePart) error {
	memOut, err := j.sp.newWriter()
	if err != nil {
		return err
	}
	var probeTag []types.Value
	var seq int64
	for {
		b, err := j.Left.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, row := range b.Rows() {
			s := seq
			seq++
			key, ok := appendJoinKey(j.keyBuf[:0], row, j.EquiL)
			j.keyBuf = key
			if !ok {
				continue
			}
			p := &parts[keyHashSalted(key, 0)%SpillPartitions]
			if p.spilled {
				if p.pw == nil {
					w, err := j.sp.newWriter()
					if err != nil {
						return err
					}
					p.pw = w
				}
				probeTag = append(probeTag[:0], types.NewInt(s))
				probeTag = append(probeTag, row...)
				if err := p.pw.Append(probeTag); err != nil {
					return err
				}
				continue
			}
			if bi, hit := p.idx[string(key)]; hit {
				for _, r := range p.buckets[bi] {
					if err := j.emitTagged(memOut, s, row, r); err != nil {
						return err
					}
				}
			}
		}
	}
	memRun, err := j.sp.finish(memOut)
	if err != nil {
		return err
	}
	outRuns := []*spill.Run{memRun}
	// Resident partitions are done probing; release them before loading
	// spilled build partitions, so the budget is free for the joins.
	for i := range parts {
		p := &parts[i]
		if p.spilled {
			continue
		}
		j.Mem.Release(p.bytes)
		j.held -= p.bytes
		p.rows, p.bytes, p.idx, p.buckets = nil, 0, nil, nil
	}
	for i := range parts {
		p := &parts[i]
		if !p.spilled {
			continue
		}
		if p.pw == nil {
			// No probe rows routed here: no output, drop the build file.
			if err := p.brun.Remove(); err != nil {
				return err
			}
			continue
		}
		prun, err := j.sp.finish(p.pw)
		if err != nil {
			return err
		}
		if err := j.joinPartition(p.brun, prun, 1, &outRuns); err != nil {
			return err
		}
	}
	// Deep re-splitting can leave one output run per leaf partition; cap
	// the final merge's fan-in. Each run covers a disjoint set of probe
	// sequence numbers, so merging a prefix of runs by sequence yields a
	// sequence-ordered run and the cascade preserves the final order.
	bySeq := func(a, b []types.Value) bool { return a[0].Int() < b[0].Int() }
	outRuns, err = cascadeRuns(j.sp, j.Mem, outRuns, bySeq)
	if err != nil {
		return err
	}
	j.graceHeap = &mergeHeap{less: bySeq}
	for i, run := range outRuns {
		rd, err := j.sp.open(run)
		if err != nil {
			return err
		}
		if err := j.graceHeap.add(mergeItem{run: i, refill: frameCursor(rd, j.Mem)}); err != nil {
			return err
		}
	}
	return nil
}

// joinPartition joins one spilled partition pair: the build file is loaded
// under reservation and probed by the streamed probe file, appending a new
// sequence-ordered output run. If the build partition alone exceeds the
// budget it is re-split under a re-salted hash and the sub-pairs join
// recursively. Consumed temp files are removed eagerly.
func (j *HashJoin) joinPartition(brun, prun *spill.Run, depth int, outRuns *[]*spill.Run) error {
	rd, err := j.sp.open(brun)
	if err != nil {
		return err
	}
	var rows [][]types.Value
	var bytes int64
	split := false
loadLoop:
	for {
		frame, err := rd.Next()
		if err != nil {
			return err
		}
		if frame == nil {
			break
		}
		for fi, row := range frame {
			b := RowMemSize(row)
			if !j.Mem.Reserve(b) {
				if depth < maxSpillDepth {
					// Budget tripped: carry the rest of this frame, unreserved,
					// into the re-split below.
					split = true
					rows = append(rows, frame[fi:]...)
					break loadLoop
				}
				j.Mem.Force(b)
			}
			j.held += b
			bytes += b
			rows = append(rows, row)
		}
	}
	if split {
		err := j.splitPartition(rows, bytes, rd, prun, depth, outRuns)
		rd.Close()
		if err != nil {
			return err
		}
		return brun.Remove()
	}
	rd.Close()

	idx, buckets := j.buildRowsTable(rows)
	out, err := j.sp.newWriter()
	if err != nil {
		return err
	}
	prd, err := j.sp.open(prun)
	if err != nil {
		return err
	}
	for {
		frame, err := prd.Next()
		if err != nil {
			return err
		}
		if frame == nil {
			break
		}
		for _, pr := range frame {
			cells := pr[1:]
			key, ok := appendJoinKey(j.keyBuf[:0], cells, j.EquiL)
			j.keyBuf = key
			if !ok {
				continue
			}
			if bi, hit := idx[string(key)]; hit {
				for _, r := range buckets[bi] {
					if err := j.emitTagged(out, pr[0].Int(), cells, r); err != nil {
						return err
					}
				}
			}
		}
	}
	prd.Close()
	orun, err := j.sp.finish(out)
	if err != nil {
		return err
	}
	*outRuns = append(*outRuns, orun)
	j.Mem.Release(bytes)
	j.held -= bytes
	if err := brun.Remove(); err != nil {
		return err
	}
	return prun.Remove()
}

// splitPartition re-partitions an over-budget build partition (the rows
// loaded so far plus the unread remainder) and its probe file under a
// re-salted hash, then joins the sub-pairs recursively.
func (j *HashJoin) splitPartition(loaded [][]types.Value, bytes int64, rd *spill.Reader,
	prun *spill.Run, depth int, outRuns *[]*spill.Run) error {
	var subB, subP [SpillPartitions]*spill.Writer
	route := func(subs *[SpillPartitions]*spill.Writer, row []types.Value, key []byte) error {
		p := keyHashSalted(key, uint64(depth)) % SpillPartitions
		if subs[p] == nil {
			w, err := j.sp.newWriter()
			if err != nil {
				return err
			}
			subs[p] = w
		}
		return subs[p].Append(row)
	}
	routeBuild := func(row []types.Value) error {
		key, ok := appendJoinKey(j.keyBuf[:0], row, j.EquiR)
		j.keyBuf = key
		if !ok {
			return nil
		}
		return route(&subB, row, key)
	}
	for _, row := range loaded {
		if err := routeBuild(row); err != nil {
			return err
		}
	}
	j.Mem.Release(bytes)
	j.held -= bytes
	for {
		frame, err := rd.Next()
		if err != nil {
			return err
		}
		if frame == nil {
			break
		}
		for _, row := range frame {
			if err := routeBuild(row); err != nil {
				return err
			}
		}
	}
	prd, err := j.sp.open(prun)
	if err != nil {
		return err
	}
	for {
		frame, err := prd.Next()
		if err != nil {
			return err
		}
		if frame == nil {
			break
		}
		for _, pr := range frame {
			key, ok := appendJoinKey(j.keyBuf[:0], pr[1:], j.EquiL)
			j.keyBuf = key
			if !ok {
				continue
			}
			if err := route(&subP, pr, key); err != nil {
				return err
			}
		}
	}
	prd.Close()
	if err := prun.Remove(); err != nil {
		return err
	}
	for p := 0; p < SpillPartitions; p++ {
		bw, pw := subB[p], subP[p]
		if bw == nil || pw == nil {
			// One side empty: no matches possible in this sub-partition.
			if bw != nil {
				bw.Abort()
			}
			if pw != nil {
				pw.Abort()
			}
			continue
		}
		bsub, err := j.sp.finish(bw)
		if err != nil {
			return err
		}
		psub, err := j.sp.finish(pw)
		if err != nil {
			return err
		}
		if err := j.joinPartition(bsub, psub, depth+1, outRuns); err != nil {
			return err
		}
	}
	return nil
}

// emit concatenates l and r into a slab row and appends it to the output
// batch when the residual accepts it; slab storage is only committed for
// emitted rows.
func (j *HashJoin) emit(l, r []types.Value) {
	row := j.sl.peek()
	copy(row, l)
	copy(row[len(l):], r)
	if j.res != nil && !algebra.Truthy(j.res.Eval(row)) {
		return
	}
	j.sl.commit()
	j.out.Append(row)
}

// Next implements Operator.
func (j *HashJoin) Next() (*Batch, error) {
	if j.graceHeap != nil {
		return j.graceNext()
	}
	j.out.Reset()
	for {
		if j.probe != nil {
			for {
				for j.mi < len(j.matches) {
					if j.probeRows == nil {
						// First match of a column-only probe batch: now the
						// row view is needed for output construction.
						j.probeRows = j.probe.Rows()
					}
					j.emit(j.probeRows[j.pi-1], j.matches[j.mi])
					j.mi++
					if j.out.Len() >= DefaultBatchSize {
						return &j.out, nil
					}
				}
				if j.pi >= j.probe.Len() {
					j.probe = nil
					break
				}
				pi := j.pi
				j.pi++
				j.matches, j.mi = nil, 0
				var key []byte
				var ok bool
				if j.probeKeyCols != nil {
					key, ok = appendVecJoinKey(j.keyBuf[:0], j.probeKeyCols, pi, j.EquiL)
				} else {
					key, ok = appendJoinKey(j.keyBuf[:0], j.probeRows[pi], j.EquiL)
				}
				j.keyBuf = key
				if ok {
					if idx, hit := j.buildIdx[string(key)]; hit {
						j.matches = j.buckets[idx]
					}
				}
			}
		}
		b, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if j.out.Len() > 0 {
				return &j.out, nil
			}
			return nil, nil
		}
		j.probe, j.pi, j.matches, j.mi = b, 0, nil, 0
		j.probeKeyCols = b.KeyCols()
		j.probeRows = nil
		if j.probeKeyCols == nil {
			j.probeRows = b.Rows()
		}
	}
}

// graceNext streams the sequence-ordered merge of the grace output runs,
// stripping the leading sequence tag. Decoded rows are freshly allocated,
// so the re-sliced rows obey the engine-wide stability rule.
func (j *HashJoin) graceNext() (*Batch, error) {
	if j.graceHeap.Len() == 0 {
		return nil, nil
	}
	j.out.Reset()
	if err := j.graceHeap.emit(&j.out, DefaultBatchSize); err != nil {
		return nil, err
	}
	if j.out.Len() == 0 {
		return nil, nil
	}
	for i, row := range j.out.rows {
		j.out.rows[i] = row[1:]
	}
	return &j.out, nil
}

// Close implements Operator: beyond the in-memory state, release any
// reservation still held and remove every spill file — including on early
// Close mid-merge.
func (j *HashJoin) Close() error {
	j.buildIdx, j.buckets, j.matches, j.probe, j.sl = nil, nil, nil, nil, nil
	j.probeRows, j.probeKeyCols, j.graceHeap = nil, nil, nil
	j.Mem.Release(j.held)
	j.held = 0
	serr := j.sp.cleanup()
	j.sp = nil
	lerr := j.Left.Close()
	rerr := j.Right.Close()
	if lerr != nil {
		return lerr
	}
	if rerr != nil {
		return rerr
	}
	return serr
}

// NestedLoopJoin is the theta-join fallback: the right input is materialized
// once on Open, and every (left, right) pair satisfying the predicate is
// emitted, batch by batch with the same slab discipline as HashJoin.
// O(n·m); the optimizer extracts equi-join keys precisely so this operator
// only runs for genuinely non-equi predicates.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        algebra.Expr // nil accepts all pairs
	schema      types.Schema

	inner     [][]types.Value
	pred      *algebra.Compiled // compiled Pred, nil when absent
	probe     *Batch
	probeRows [][]types.Value // cached row view of the current probe batch
	pi        int             // probe row index currently being expanded
	ii        int             // next inner row for that probe row
	out       Batch
	sl        *slab
}

// NewNestedLoopJoin builds a nested-loop join.
func NewNestedLoopJoin(l, r Operator, pred algebra.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{Left: l, Right: r, Pred: pred,
		schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() types.Schema { return j.schema }

// Open implements Operator: it materializes the inner (right) input.
func (j *NestedLoopJoin) Open() error {
	j.inner, j.probe, j.pi, j.ii = nil, nil, 0, 0
	j.sl = newSlab(j.schema.Arity())
	j.pred = nil
	if j.Pred != nil {
		j.pred = algebra.Compile(j.Pred)
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		j.inner = append(j.inner, b.Rows()...)
	}
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (*Batch, error) {
	j.out.Reset()
	for {
		if j.probe != nil {
			for j.pi < j.probe.Len() {
				l := j.probeRows[j.pi]
				for j.ii < len(j.inner) {
					row := j.sl.peek()
					copy(row, l)
					copy(row[len(l):], j.inner[j.ii])
					j.ii++
					if j.pred != nil && !algebra.Truthy(j.pred.Eval(row)) {
						continue
					}
					j.sl.commit()
					j.out.Append(row)
					if j.out.Len() >= DefaultBatchSize {
						return &j.out, nil
					}
				}
				j.pi++
				j.ii = 0
			}
			j.probe = nil
		}
		b, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if j.out.Len() > 0 {
				return &j.out, nil
			}
			return nil, nil
		}
		j.probe, j.probeRows, j.pi, j.ii = b, b.Rows(), 0, 0
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.inner, j.probe, j.probeRows, j.sl = nil, nil, nil, nil
	lerr := j.Left.Close()
	rerr := j.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}
