package physical

import (
	"repro/internal/algebra"
	"repro/internal/types"
)

// joinKey builds the canonical hash key for the given column positions, or
// reports false when any key column is NULL (NULL keys never match).
func joinKey(row []types.Value, idx []int) (string, bool) {
	key := make(types.Tuple, len(idx))
	for i, j := range idx {
		if row[j].IsNull() {
			return "", false
		}
		key[i] = row[j]
	}
	return key.Key(), true
}

// concatRow builds the joined output row.
func concatRow(l, r []types.Value) []types.Value {
	row := make([]types.Value, 0, len(l)+len(r))
	row = append(row, l...)
	row = append(row, r...)
	return row
}

// HashJoin executes an equi-join in O(|build| + |probe| + |output|): Open
// drains the right (build) input into a hash table keyed on EquiR, then Next
// streams the left (probe) input, emitting one concatenated row per match
// that also satisfies the residual predicate (evaluated over the
// concatenated row). NULL join keys never match, per SQL semantics.
type HashJoin struct {
	Left, Right  Operator // Right is the build side
	EquiL, EquiR []int
	Residual     algebra.Expr
	schema       types.Schema

	build    map[string][][]types.Value
	probeRow []types.Value
	matches  [][]types.Value
	mi       int
}

// NewHashJoin builds a hash join; key positions are left- and right-relative.
func NewHashJoin(l, r Operator, equiL, equiR []int, residual algebra.Expr) *HashJoin {
	return &HashJoin{Left: l, Right: r, EquiL: equiL, EquiR: equiR,
		Residual: residual, schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Operator.
func (j *HashJoin) Schema() types.Schema { return j.schema }

// Open implements Operator: it materializes the build side's hash table.
func (j *HashJoin) Open() error {
	j.probeRow, j.matches, j.mi = nil, nil, 0
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.build = make(map[string][][]types.Value)
	for {
		row, err := j.Right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		if key, ok := joinKey(row, j.EquiR); ok {
			j.build[key] = append(j.build[key], row)
		}
	}
	return nil
}

// Next implements Operator.
func (j *HashJoin) Next() ([]types.Value, error) {
	for {
		for j.mi < len(j.matches) {
			row := concatRow(j.probeRow, j.matches[j.mi])
			j.mi++
			if j.Residual == nil || algebra.Truthy(j.Residual.Eval(row)) {
				return row, nil
			}
		}
		probe, err := j.Left.Next()
		if probe == nil || err != nil {
			return nil, err
		}
		if key, ok := joinKey(probe, j.EquiL); ok {
			j.probeRow, j.matches, j.mi = probe, j.build[key], 0
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.build, j.matches, j.probeRow = nil, nil, nil
	lerr := j.Left.Close()
	rerr := j.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// NestedLoopJoin is the theta-join fallback: the right input is materialized
// once on Open, and every (left, right) pair satisfying the predicate is
// emitted. O(n·m); the optimizer extracts equi-join keys precisely so this
// operator only runs for genuinely non-equi predicates.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        algebra.Expr // nil accepts all pairs
	schema      types.Schema

	inner    [][]types.Value
	probeRow []types.Value
	ii       int
}

// NewNestedLoopJoin builds a nested-loop join.
func NewNestedLoopJoin(l, r Operator, pred algebra.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{Left: l, Right: r, Pred: pred,
		schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() types.Schema { return j.schema }

// Open implements Operator: it materializes the inner (right) input.
func (j *NestedLoopJoin) Open() error {
	j.inner, j.probeRow, j.ii = nil, nil, 0
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	for {
		row, err := j.Right.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		j.inner = append(j.inner, row)
	}
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() ([]types.Value, error) {
	for {
		if j.probeRow != nil {
			for j.ii < len(j.inner) {
				row := concatRow(j.probeRow, j.inner[j.ii])
				j.ii++
				if j.Pred == nil || algebra.Truthy(j.Pred.Eval(row)) {
					return row, nil
				}
			}
		}
		probe, err := j.Left.Next()
		if probe == nil || err != nil {
			return nil, err
		}
		j.probeRow, j.ii = probe, 0
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.inner, j.probeRow = nil, nil
	lerr := j.Left.Close()
	rerr := j.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}
