package physical

import (
	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

// HashJoin executes an equi-join in O(|build| + |probe| + |output|): Open
// drains the right (build) input into a hash table keyed on EquiR with the
// shared canonical key encoding (key.go), then Next streams the left
// (probe) input batch by batch, emitting concatenated rows that satisfy the
// residual predicate (evaluated over the concatenated row). Output rows are
// carved from slabs, so one probe batch costs O(1) allocations however many
// matches it produces. NULL join keys never match, per SQL semantics.
//
// One probe batch can fan out into many output batches; Next keeps its
// probe cursor (batch, row, match index) across calls and resumes mid-row.
type HashJoin struct {
	Left, Right  Operator // Right is the build side
	EquiL, EquiR []int
	Residual     algebra.Expr
	schema       types.Schema

	buildIdx map[string]int    // canonical key -> index into buckets
	buckets  [][][]types.Value // build rows per distinct key
	res      *algebra.Compiled // compiled Residual, nil when absent
	keyBuf   []byte
	probe    *Batch // current probe batch, nil when a new one is needed
	pi       int    // next probe row index
	// Per-probe-batch cached views: probeKeyCols keys off the vectors when
	// the batch has no row view yet (typed fast path); probeRows is the row
	// view, resolved lazily in that case — a batch probing with no matches
	// never materializes it.
	probeKeyCols []vector.Vector
	probeRows    [][]types.Value
	matches      [][]types.Value
	mi           int
	out          Batch
	sl           *slab
}

// NewHashJoin builds a hash join; key positions are left- and right-relative.
func NewHashJoin(l, r Operator, equiL, equiR []int, residual algebra.Expr) *HashJoin {
	return &HashJoin{Left: l, Right: r, EquiL: equiL, EquiR: equiR,
		Residual: residual, schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Operator.
func (j *HashJoin) Schema() types.Schema { return j.schema }

// Open implements Operator: it materializes the build side's hash table.
// Build rows are retained directly — row slices are stable until Close —
// only the batch spines are ephemeral.
func (j *HashJoin) Open() error {
	j.probe, j.matches, j.pi, j.mi = nil, nil, 0, 0
	j.sl = newSlab(j.schema.Arity())
	j.res = nil
	if j.Residual != nil {
		j.res = algebra.Compile(j.Residual)
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	j.buildIdx = make(map[string]int)
	j.buckets = nil
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		// The build side always needs the row view (buckets retain row
		// slices), so keys come off the spine directly.
		for _, row := range b.Rows() {
			key, ok := appendJoinKey(j.keyBuf[:0], row, j.EquiR)
			j.keyBuf = key
			if !ok {
				continue
			}
			// The m[string(b)] lookup is allocation-free; the key string is
			// materialized once per distinct key, not once per build row.
			idx, seen := j.buildIdx[string(key)]
			if !seen {
				idx = len(j.buckets)
				j.buildIdx[string(key)] = idx
				j.buckets = append(j.buckets, nil)
			}
			j.buckets[idx] = append(j.buckets[idx], row)
		}
	}
	return nil
}

// emit concatenates l and r into a slab row and appends it to the output
// batch when the residual accepts it; slab storage is only committed for
// emitted rows.
func (j *HashJoin) emit(l, r []types.Value) {
	row := j.sl.peek()
	copy(row, l)
	copy(row[len(l):], r)
	if j.res != nil && !algebra.Truthy(j.res.Eval(row)) {
		return
	}
	j.sl.commit()
	j.out.Append(row)
}

// Next implements Operator.
func (j *HashJoin) Next() (*Batch, error) {
	j.out.Reset()
	for {
		if j.probe != nil {
			for {
				for j.mi < len(j.matches) {
					if j.probeRows == nil {
						// First match of a column-only probe batch: now the
						// row view is needed for output construction.
						j.probeRows = j.probe.Rows()
					}
					j.emit(j.probeRows[j.pi-1], j.matches[j.mi])
					j.mi++
					if j.out.Len() >= DefaultBatchSize {
						return &j.out, nil
					}
				}
				if j.pi >= j.probe.Len() {
					j.probe = nil
					break
				}
				pi := j.pi
				j.pi++
				j.matches, j.mi = nil, 0
				var key []byte
				var ok bool
				if j.probeKeyCols != nil {
					key, ok = appendVecJoinKey(j.keyBuf[:0], j.probeKeyCols, pi, j.EquiL)
				} else {
					key, ok = appendJoinKey(j.keyBuf[:0], j.probeRows[pi], j.EquiL)
				}
				j.keyBuf = key
				if ok {
					if idx, hit := j.buildIdx[string(key)]; hit {
						j.matches = j.buckets[idx]
					}
				}
			}
		}
		b, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if j.out.Len() > 0 {
				return &j.out, nil
			}
			return nil, nil
		}
		j.probe, j.pi, j.matches, j.mi = b, 0, nil, 0
		j.probeKeyCols = b.KeyCols()
		j.probeRows = nil
		if j.probeKeyCols == nil {
			j.probeRows = b.Rows()
		}
	}
}

// Close implements Operator.
func (j *HashJoin) Close() error {
	j.buildIdx, j.buckets, j.matches, j.probe, j.sl = nil, nil, nil, nil, nil
	j.probeRows, j.probeKeyCols = nil, nil
	lerr := j.Left.Close()
	rerr := j.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}

// NestedLoopJoin is the theta-join fallback: the right input is materialized
// once on Open, and every (left, right) pair satisfying the predicate is
// emitted, batch by batch with the same slab discipline as HashJoin.
// O(n·m); the optimizer extracts equi-join keys precisely so this operator
// only runs for genuinely non-equi predicates.
type NestedLoopJoin struct {
	Left, Right Operator
	Pred        algebra.Expr // nil accepts all pairs
	schema      types.Schema

	inner     [][]types.Value
	pred      *algebra.Compiled // compiled Pred, nil when absent
	probe     *Batch
	probeRows [][]types.Value // cached row view of the current probe batch
	pi        int             // probe row index currently being expanded
	ii        int             // next inner row for that probe row
	out       Batch
	sl        *slab
}

// NewNestedLoopJoin builds a nested-loop join.
func NewNestedLoopJoin(l, r Operator, pred algebra.Expr) *NestedLoopJoin {
	return &NestedLoopJoin{Left: l, Right: r, Pred: pred,
		schema: l.Schema().Concat(r.Schema())}
}

// Schema implements Operator.
func (j *NestedLoopJoin) Schema() types.Schema { return j.schema }

// Open implements Operator: it materializes the inner (right) input.
func (j *NestedLoopJoin) Open() error {
	j.inner, j.probe, j.pi, j.ii = nil, nil, 0, 0
	j.sl = newSlab(j.schema.Arity())
	j.pred = nil
	if j.Pred != nil {
		j.pred = algebra.Compile(j.Pred)
	}
	if err := j.Left.Open(); err != nil {
		return err
	}
	if err := j.Right.Open(); err != nil {
		return err
	}
	for {
		b, err := j.Right.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		j.inner = append(j.inner, b.Rows()...)
	}
	return nil
}

// Next implements Operator.
func (j *NestedLoopJoin) Next() (*Batch, error) {
	j.out.Reset()
	for {
		if j.probe != nil {
			for j.pi < j.probe.Len() {
				l := j.probeRows[j.pi]
				for j.ii < len(j.inner) {
					row := j.sl.peek()
					copy(row, l)
					copy(row[len(l):], j.inner[j.ii])
					j.ii++
					if j.pred != nil && !algebra.Truthy(j.pred.Eval(row)) {
						continue
					}
					j.sl.commit()
					j.out.Append(row)
					if j.out.Len() >= DefaultBatchSize {
						return &j.out, nil
					}
				}
				j.pi++
				j.ii = 0
			}
			j.probe = nil
		}
		b, err := j.Left.Next()
		if err != nil {
			return nil, err
		}
		if b == nil {
			if j.out.Len() > 0 {
				return &j.out, nil
			}
			return nil, nil
		}
		j.probe, j.probeRows, j.pi, j.ii = b, b.Rows(), 0, 0
	}
}

// Close implements Operator.
func (j *NestedLoopJoin) Close() error {
	j.inner, j.probe, j.probeRows, j.sl = nil, nil, nil, nil
	lerr := j.Left.Close()
	rerr := j.Right.Close()
	if lerr != nil {
		return lerr
	}
	return rerr
}
