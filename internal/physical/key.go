package physical

import (
	"repro/internal/types"
	"repro/internal/vector"
)

// This file is the one place hash keys are built in the physical layer.
// HashJoin, HashAggregate, and Distinct all key their tables with the
// canonical binary encoding of types.Value (Value.AppendKey) joined by '|'
// separators — the same format as types.Tuple.Key — so a value pair
// collides iff the values compare equal, and the three operators agree with
// each other and with every annotation-lookup map elsewhere in the repo.
//
// The builders append into a caller-owned scratch buffer; looking a key up
// as m[string(buf)] does not allocate (the compiler elides the conversion
// for map access), so steady-state probing is allocation-free.

// appendRowKey appends the canonical key of the whole row to buf and
// returns it. NULLs participate (encoded distinctly from every non-NULL
// value), matching GROUP BY and DISTINCT semantics where NULLs form a
// group.
func appendRowKey(buf []byte, row []types.Value) []byte {
	for _, v := range row {
		buf = v.AppendKey(buf)
		buf = append(buf, '|')
	}
	return buf
}

// appendColsKey appends the canonical key of the row restricted to the
// columns idx, as appendRowKey does for the whole row.
func appendColsKey(buf []byte, row []types.Value, idx []int) []byte {
	for _, j := range idx {
		buf = row[j].AppendKey(buf)
		buf = append(buf, '|')
	}
	return buf
}

// appendJoinKey appends the equi-join key of the row's columns idx, or
// reports false when any key column is NULL — NULL join keys never match,
// per SQL semantics, so such rows are skipped entirely.
func appendJoinKey(buf []byte, row []types.Value, idx []int) ([]byte, bool) {
	for _, j := range idx {
		if row[j].IsNull() {
			return buf, false
		}
		buf = row[j].AppendKey(buf)
		buf = append(buf, '|')
	}
	return buf, true
}

// The appendVec* builders are the columnar twins of the three row builders:
// the same canonical encoding produced element-at-a-time by the vectors'
// per-type AppendElemKey fast paths (types.Append*Key over the unboxed
// payloads), so a columnar batch and its materialized row view always build
// byte-identical keys.

// appendVecRowKey is appendRowKey over row i of a columnar batch.
func appendVecRowKey(buf []byte, cols []vector.Vector, i int) []byte {
	for _, v := range cols {
		buf = v.AppendElemKey(buf, i)
		buf = append(buf, '|')
	}
	return buf
}

// appendVecColsKey is appendColsKey over row i of a columnar batch.
func appendVecColsKey(buf []byte, cols []vector.Vector, i int, idx []int) []byte {
	for _, j := range idx {
		buf = cols[j].AppendElemKey(buf, i)
		buf = append(buf, '|')
	}
	return buf
}

// appendVecJoinKey is appendJoinKey over row i of a columnar batch.
func appendVecJoinKey(buf []byte, cols []vector.Vector, i int, idx []int) ([]byte, bool) {
	for _, j := range idx {
		if cols[j].Null(i) {
			return buf, false
		}
		buf = cols[j].AppendElemKey(buf, i)
		buf = append(buf, '|')
	}
	return buf, true
}
