package physical

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
)

func col(i int, name string) algebra.Col { return algebra.Col{Idx: i, Name: name} }

func constI(v int64) algebra.Const { return algebra.Const{V: iv(v)} }

// TestPushdownDistributesOverJoin checks that a WHERE-style filter above a
// cross join splits into per-side filters plus extracted hash keys.
func TestPushdownDistributesOverJoin(t *testing.T) {
	scanR := &algebra.Scan{Table: "r", TblSchema: types.NewSchema("r", "a", "b")}
	scanS := &algebra.Scan{Table: "s", TblSchema: types.NewSchema("s", "c", "d")}
	// a = c AND b > 1 AND d < 5: equi key + left filter + right filter.
	pred := algebra.Bin{Op: algebra.OpAnd,
		L: algebra.Bin{Op: algebra.OpAnd,
			L: algebra.Bin{Op: algebra.OpEq, L: col(0, "a"), R: col(2, "c")},
			R: algebra.Bin{Op: algebra.OpGt, L: col(1, "b"), R: constI(1)},
		},
		R: algebra.Bin{Op: algebra.OpLt, L: col(3, "d"), R: constI(5)},
	}
	plan := &algebra.Filter{Input: &algebra.Join{Left: scanR, Right: scanS}, Pred: pred}
	opt := Optimize(plan)

	join, ok := opt.(*algebra.Join)
	if !ok {
		t.Fatalf("optimized root is %T, want *algebra.Join: %s", opt, opt)
	}
	if len(join.EquiL) != 1 || join.EquiL[0] != 0 || join.EquiR[0] != 0 {
		t.Errorf("equi keys = %v/%v, want [0]/[0]", join.EquiL, join.EquiR)
	}
	if join.Residual != nil {
		t.Errorf("residual should be empty, got %s", join.Residual)
	}
	if _, ok := join.Left.(*algebra.Filter); !ok {
		t.Errorf("left side should carry the b > 1 filter: %s", join.Left)
	}
	if _, ok := join.Right.(*algebra.Filter); !ok {
		t.Errorf("right side should carry the d < 5 filter: %s", join.Right)
	}
}

// TestEquiExtractionFromResidual checks that a join assembled with a raw
// equality residual (as the UA rewriter or programmatic plans may do)
// executes as a hash join after optimization, with identical results.
func TestEquiExtractionFromResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := memSource{}
	src.put("l", []string{"k", "p"}, randomTable(rng, 30, 4))
	src.put("r", []string{"k", "q"}, randomTable(rng, 30, 4))
	plan := &algebra.Join{
		Left:     &algebra.Scan{Table: "l", TblSchema: types.NewSchema("l", "k", "p")},
		Right:    &algebra.Scan{Table: "r", TblSchema: types.NewSchema("r", "k", "q")},
		Residual: algebra.Bin{Op: algebra.OpEq, L: col(0, "k"), R: col(2, "k")},
	}

	raw, err := Lower(plan, src)
	if err != nil {
		t.Fatal(err)
	}
	if s := Explain(raw); !strings.Contains(s, "NestedLoopJoin") {
		t.Fatalf("unoptimized plan should nested-loop:\n%s", s)
	}
	opt, err := Lower(Optimize(plan), src)
	if err != nil {
		t.Fatal(err)
	}
	if s := Explain(opt); !strings.Contains(s, "HashJoin") {
		t.Fatalf("optimized plan should hash-join:\n%s", s)
	}

	rawRows, err := Drain(raw)
	if err != nil {
		t.Fatal(err)
	}
	optRows, err := Drain(opt)
	if err != nil {
		t.Fatal(err)
	}
	sameBag(t, rawRows, optRows)
}

// TestProjectionPruningNarrowsJoinInputs checks that columns not consumed
// above a join are cut before the join, and that results are unchanged.
func TestProjectionPruningNarrowsJoinInputs(t *testing.T) {
	src := memSource{}
	src.put("wide", []string{"k", "x1", "x2", "x3"}, [][]types.Value{
		{iv(1), sv("a"), sv("b"), sv("c")},
		{iv(2), sv("d"), sv("e"), sv("f")},
	})
	src.put("narrow", []string{"k", "y"}, [][]types.Value{
		{iv(1), iv(10)},
		{iv(2), iv(20)},
	})
	join := &algebra.Join{
		Left:  &algebra.Scan{Table: "wide", TblSchema: types.NewSchema("wide", "k", "x1", "x2", "x3")},
		Right: &algebra.Scan{Table: "narrow", TblSchema: types.NewSchema("narrow", "k", "y")},
		EquiL: []int{0}, EquiR: []int{0},
	}
	// Only y survives the projection; the x payload columns are dead.
	plan := &algebra.Project{Input: join,
		Exprs: []algebra.Expr{col(5, "y")}, Names: []string{"y"}}

	opt := Optimize(plan)
	root, ok := opt.(*algebra.Project)
	if !ok {
		t.Fatalf("root is %T", opt)
	}
	j, ok := root.Input.(*algebra.Join)
	if !ok {
		t.Fatalf("below root: %T", root.Input)
	}
	if got := j.Left.Schema().Arity(); got != 1 {
		t.Errorf("left join input keeps %d columns, want 1 (just the key): %s", got, j.Left)
	}

	rawOp, err := Lower(plan, src)
	if err != nil {
		t.Fatal(err)
	}
	optOp, err := Lower(opt, src)
	if err != nil {
		t.Fatal(err)
	}
	rawRows, err := Drain(rawOp)
	if err != nil {
		t.Fatal(err)
	}
	optRows, err := Drain(optOp)
	if err != nil {
		t.Fatal(err)
	}
	sameBag(t, rawRows, optRows)
}

// TestNoPushdownBelowLimitOrAggregate pins the soundness boundaries: a
// filter must not slide below LIMIT (it would change which rows are kept)
// nor below an aggregate (HAVING sees groups, not input rows).
func TestNoPushdownBelowLimitOrAggregate(t *testing.T) {
	scan := &algebra.Scan{Table: "r", TblSchema: types.NewSchema("r", "a")}
	pred := algebra.Bin{Op: algebra.OpGt, L: col(0, "a"), R: constI(0)}

	overLimit := &algebra.Filter{Input: &algebra.Limit{Input: scan, N: 2}, Pred: pred}
	if opt, ok := Optimize(overLimit).(*algebra.Filter); !ok {
		t.Errorf("filter slid below limit: %s", Optimize(overLimit))
	} else if _, ok := opt.Input.(*algebra.Limit); !ok {
		t.Errorf("limit not directly below filter: %s", opt)
	}

	agg := &algebra.Aggregate{Input: scan,
		GroupBy: []algebra.Expr{col(0, "a")}, GroupNames: []string{"a"},
		Aggs: []algebra.AggSpec{{Func: algebra.AggCount, Star: true, Name: "count(*)"}}}
	overAgg := &algebra.Filter{Input: agg, Pred: pred}
	if _, ok := Optimize(overAgg).(*algebra.Filter); !ok {
		t.Errorf("filter slid below aggregate: %s", Optimize(overAgg))
	}
}

// TestPushdownThroughRenamingProject checks substitution through pure
// column renamings (subquery SELECT * shapes) and refusal through computed
// projections.
func TestPushdownThroughRenamingProject(t *testing.T) {
	scan := &algebra.Scan{Table: "r", TblSchema: types.NewSchema("r", "a", "b")}
	renaming := &algebra.Project{Input: scan,
		Exprs: []algebra.Expr{col(1, "b"), col(0, "a")}, Names: []string{"b", "a"}}
	pred := algebra.Bin{Op: algebra.OpGt, L: col(0, "b"), R: constI(3)}
	opt := Optimize(&algebra.Filter{Input: renaming, Pred: pred})
	proj, ok := opt.(*algebra.Project)
	if !ok {
		t.Fatalf("root is %T, want Project above pushed filter: %s", opt, opt)
	}
	f, ok := proj.Input.(*algebra.Filter)
	if !ok {
		t.Fatalf("filter did not slide below renaming project: %s", opt)
	}
	// b was position 0 of the projection but position 1 of the scan.
	if !strings.Contains(f.Pred.String(), "#1") {
		t.Errorf("substituted predicate = %s, want reference to column 1", f.Pred)
	}

	computed := &algebra.Project{Input: scan,
		Exprs: []algebra.Expr{algebra.Bin{Op: algebra.OpAdd, L: col(0, "a"), R: col(1, "b")}},
		Names: []string{"s"}}
	opt = Optimize(&algebra.Filter{Input: computed, Pred: algebra.Bin{Op: algebra.OpGt, L: col(0, "s"), R: constI(3)}})
	if _, ok := opt.(*algebra.Filter); !ok {
		t.Errorf("filter over computed projection must stay above: %s", opt)
	}
}

// TestPushdownBelowUnionAll checks σ(A ∪ B) = σ(A) ∪ σ(B).
func TestPushdownBelowUnionAll(t *testing.T) {
	src := memSource{}
	src.put("a", []string{"x"}, [][]types.Value{{iv(1)}, {iv(5)}})
	src.put("b", []string{"x"}, [][]types.Value{{iv(2)}, {iv(6)}})
	union := &algebra.UnionAll{
		Left:  &algebra.Scan{Table: "a", TblSchema: types.NewSchema("a", "x")},
		Right: &algebra.Scan{Table: "b", TblSchema: types.NewSchema("b", "x")},
	}
	plan := &algebra.Filter{Input: union, Pred: algebra.Bin{Op: algebra.OpGt, L: col(0, "x"), R: constI(4)}}
	opt := Optimize(plan)
	if _, ok := opt.(*algebra.UnionAll); !ok {
		t.Fatalf("filter did not distribute over union: %s", opt)
	}
	op, err := Lower(opt, src)
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Errorf("rows = %d, want 2", len(rows))
	}
}

// TestOptimizeRandomizedAgreement runs random filter+join+project plans
// through the optimizer and compares against the unoptimized execution.
func TestOptimizeRandomizedAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 20; trial++ {
		src := memSource{}
		src.put("l", []string{"k", "p"}, randomTable(rng, 5+rng.Intn(30), 1+rng.Intn(5)))
		src.put("r", []string{"k", "q"}, randomTable(rng, 5+rng.Intn(30), 1+rng.Intn(5)))
		join := &algebra.Join{
			Left:  &algebra.Scan{Table: "l", TblSchema: types.NewSchema("l", "k", "p")},
			Right: &algebra.Scan{Table: "r", TblSchema: types.NewSchema("r", "k", "q")},
			Residual: algebra.Bin{Op: algebra.OpEq,
				L: col(0, "k"), R: col(2, "k")},
		}
		var plan algebra.Node = &algebra.Filter{Input: join,
			Pred: algebra.Bin{Op: algebra.OpGt, L: col(3, "q"), R: constI(int64(rng.Intn(20)))}}
		plan = &algebra.Project{Input: plan,
			Exprs: []algebra.Expr{col(1, "p"), col(3, "q")}, Names: []string{"p", "q"}}

		rawOp, err := Lower(plan, src)
		if err != nil {
			t.Fatal(err)
		}
		optOp, err := Lower(Optimize(plan), src)
		if err != nil {
			t.Fatal(err)
		}
		rawRows, err := Drain(rawOp)
		if err != nil {
			t.Fatal(err)
		}
		optRows, err := Drain(optOp)
		if err != nil {
			t.Fatal(err)
		}
		sameBag(t, rawRows, optRows)
	}
}
