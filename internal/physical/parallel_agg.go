package physical

import (
	"sync"

	"repro/internal/algebra"
	"repro/internal/types"
)

// partialGroup is one group's partial aggregate state for a single morsel,
// tagged with its canonical key so the merge can find its global peer.
// Groups travel in the morsel's first-seen order.
type partialGroup struct {
	key string
	st  *aggState
}

// aggPacket carries one morsel's partial aggregation from a worker to the
// merging Open. Like morselPacket, ownership transfers with the send.
type aggPacket struct {
	seq    int
	groups []partialGroup
	err    error
}

// aggWorker is one worker of a ParallelHashAggregate: a morsel pipeline plus
// the claim-fold-send loop.
type aggWorker struct {
	scan *MorselScan
	pipe Operator
}

// ParallelHashAggregate is the partitioned-aggregation variant of
// HashAggregate: DOP workers each run their own morsel pipeline and fold
// every morsel into a private partial-state map (per-worker kernels,
// per-worker scratch), and Open merges the per-morsel partials in morsel
// sequence order. Merging in sequence order makes the result a pure function
// of the input — independent of worker count and scheduling — and keeps the
// group output in the serial engine's first-seen order: a group's position is
// decided by the first morsel (in table order) that contains it. Integer
// aggregates merge exactly; float SUM/AVG re-associate addition (see
// aggState.merge). Next then streams the materialized rows exactly like the
// serial operator.
type ParallelHashAggregate struct {
	GroupBy    []algebra.Expr
	GroupNames []string
	Aggs       []algebra.AggSpec

	schema  types.Schema
	workers []*aggWorker
	src     *morselSource

	out [][]types.Value
	pos int
	b   Batch
}

// Schema implements Operator.
func (h *ParallelHashAggregate) Schema() types.Schema { return h.schema }

// DOP reports the aggregate's worker count.
func (h *ParallelHashAggregate) DOP() int { return len(h.workers) }

// run executes one worker: open the pipeline, fold each claimed morsel into
// a fresh partial map, send the tagged partials, close the pipeline. Every
// claimed morsel sends exactly one packet; failures send an error packet.
// The merging Open always receives until the channel closes, so sends never
// need a quit path.
func (w *aggWorker) run(h *ParallelHashAggregate, out chan<- aggPacket) {
	err := w.loop(h, out)
	if cerr := w.pipe.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		out <- aggPacket{seq: -1, err: err}
	}
}

func (w *aggWorker) loop(h *ParallelHashAggregate, out chan<- aggPacket) error {
	if err := w.pipe.Open(); err != nil {
		return err
	}
	folder := newAggFolder(h.GroupBy, h.Aggs)
	for {
		seq, ok := w.scan.advance()
		if !ok {
			return nil
		}
		groups := make(map[string]*aggState)
		var order []partialGroup
		for {
			b, err := w.pipe.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			folder.fold(b, groups, func(key string, st *aggState) {
				order = append(order, partialGroup{key: key, st: st})
			})
		}
		out <- aggPacket{seq: seq, groups: order}
	}
}

// Open implements Operator: it runs the full parallel aggregation to
// completion — fan out workers, collect every morsel's partials, merge in
// sequence order — and materializes the output rows.
func (h *ParallelHashAggregate) Open() error {
	h.out, h.pos = nil, 0
	h.src.reset()
	ch := make(chan aggPacket, 2*len(h.workers))
	var wg sync.WaitGroup
	for _, w := range h.workers {
		wg.Add(1)
		go func(w *aggWorker) {
			defer wg.Done()
			w.run(h, ch)
		}(w)
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	bySeq := make(map[int][]partialGroup)
	var firstErr error
	for p := range ch {
		if p.err != nil {
			if firstErr == nil {
				firstErr = p.err
			}
			continue
		}
		bySeq[p.seq] = p.groups
	}
	if firstErr != nil {
		return firstErr
	}
	states := mergeSeqPartials(bySeq, h.src.nMorsels())
	h.out = finishAggStates(states, len(h.GroupBy) == 0, h.Aggs, len(h.GroupBy))
	return nil
}

// mergeSeqPartials merges per-morsel partial states in morsel sequence
// order — the step that makes parallel aggregation a pure function of the
// input and restores the serial engine's global first-seen group order: a
// group's position is decided by the first morsel (in table order) that
// contains it. Shared by ParallelHashAggregate and ParallelFusedAggregate.
func mergeSeqPartials(bySeq map[int][]partialGroup, nMorsels int) []*aggState {
	global := make(map[string]*aggState)
	var states []*aggState
	for seq := 0; seq < nMorsels; seq++ {
		for _, pg := range bySeq[seq] {
			if st, ok := global[pg.key]; ok {
				st.merge(pg.st)
				continue
			}
			global[pg.key] = pg.st
			states = append(states, pg.st)
		}
	}
	return states
}

// RowCountHint implements RowCountHinter: after Open the groups are
// materialized, so the count is exact.
func (h *ParallelHashAggregate) RowCountHint() (int, bool) { return len(h.out) - h.pos, true }

// Next implements Operator.
func (h *ParallelHashAggregate) Next() (*Batch, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	end := h.pos + DefaultBatchSize
	if end > len(h.out) {
		end = len(h.out)
	}
	h.b.SetShared(h.out[h.pos:end])
	h.pos = end
	return &h.b, nil
}

// Close implements Operator. Worker pipelines close themselves at the end of
// Open's fan-out, so only the materialized output is released here.
func (h *ParallelHashAggregate) Close() error {
	h.out = nil
	return nil
}
