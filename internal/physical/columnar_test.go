package physical

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

func colIntTable(n int) (types.Schema, [][]types.Value, *vector.Columns) {
	schema := types.NewSchema("t", "k", "v")
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{types.NewInt(int64(i % 5)), types.NewInt(int64(i))}
	}
	return schema, rows, vector.FromRows(rows, 2)
}

// TestColumnarScanEmitsDualViewBatches: a columnar scan's batches carry both
// a zero-copy shared row spine and zero-copy vector windows, in agreement.
func TestColumnarScanEmitsDualViewBatches(t *testing.T) {
	schema, rows, cols := colIntTable(2500)
	s := NewColumnarScan("t", schema, rows, cols)
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	seen := 0
	for {
		b, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if !b.Shared() {
			t.Fatal("columnar scan batch lost its shared row spine")
		}
		bc := b.Cols()
		if bc == nil {
			t.Fatal("columnar scan batch has no columnar view")
		}
		for i := 0; i < b.Len(); i++ {
			for j, v := range bc {
				if !v.Value(i).Equal(b.Row(i)[j]) {
					t.Fatalf("row %d col %d: vector %v != row %v", seen+i, j, v.Value(i), b.Row(i)[j])
				}
			}
		}
		seen += b.Len()
	}
	if seen != len(rows) {
		t.Fatalf("scanned %d rows, want %d", seen, len(rows))
	}
}

// TestColumnarScanRejectsStaleColumns: a columnar form whose length
// disagrees with the rows (stale cache) must be dropped, not scanned.
func TestColumnarScanRejectsStaleColumns(t *testing.T) {
	schema, rows, cols := colIntTable(100)
	s := NewColumnarScan("t", schema, rows[:50], cols)
	if s.cols != nil {
		t.Fatal("stale columnar storage was accepted")
	}
}

// TestColumnOnlyBatchMaterializesStableRows: Rows() on a column-only batch
// materializes fresh storage each time the batch is refilled, so previously
// emitted rows obey the engine-wide stability rule.
func TestColumnOnlyBatchMaterializesStableRows(t *testing.T) {
	var b Batch
	mk := func(v int64) []vector.Vector {
		return []vector.Vector{vector.NewInt64Vector([]int64{v, v + 1}, nil)}
	}
	b.SetCols(mk(10), 2)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
	first := b.Rows()
	if len(first) != 2 || !first[1][0].Equal(types.NewInt(11)) {
		t.Fatalf("materialized rows wrong: %v", first)
	}
	b.SetCols(mk(20), 2)
	second := b.Rows()
	if !first[0][0].Equal(types.NewInt(10)) {
		t.Fatalf("earlier materialized row was corrupted: %v", first[0])
	}
	if !second[0][0].Equal(types.NewInt(20)) {
		t.Fatalf("refilled batch materialized stale data: %v", second[0])
	}
}

// TestApplySelDropsStaleColumnarView: narrowing a dual-view batch through a
// selection vector must not leave the old (pre-selection) columns attached.
func TestApplySelDropsStaleColumnarView(t *testing.T) {
	rows := [][]types.Value{
		{types.NewInt(0)}, {types.NewInt(1)}, {types.NewInt(2)},
	}
	var b Batch
	b.SetCols(vector.FromRows(rows, 1).Slice(0, 3), 3)
	b.Rows() // force the owned row view so applySel compacts in place
	var scratch Batch
	out := applySel(&b, []int{0, 2}, &scratch)
	if out.Cols() != nil {
		t.Fatal("applySel kept a columnar view describing pre-selection rows")
	}
	if out.Len() != 2 || !out.Row(1)[0].Equal(types.NewInt(2)) {
		t.Fatalf("applySel result wrong: len %d", out.Len())
	}

	// Full selection keeps the batch — and its still-valid columns — intact.
	var b2 Batch
	b2.SetCols(vector.FromRows(rows, 1).Slice(0, 3), 3)
	out2 := applySel(&b2, []int{0, 1, 2}, &scratch)
	if out2.Cols() == nil {
		t.Fatal("applySel dropped a columnar view that still described every row")
	}
}

// TestFilterTypedPathKeepsColumns: a typed filter over a dual-view batch
// emits gathered columns consistent with its narrowed rows, and a
// column-only input stays column-only.
func TestFilterTypedPathKeepsColumns(t *testing.T) {
	schema, rows, cols := colIntTable(3000)
	pred := algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1, Name: "v"},
		R: algebra.Const{V: types.NewInt(1500)}}
	f := &Filter{Input: NewColumnarScan("t", schema, rows, cols), Pred: pred}
	got, err := Drain(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1500 {
		t.Fatalf("filter kept %d rows, want 1500", len(got))
	}

	f = &Filter{Input: NewColumnarScan("t", schema, rows, cols), Pred: pred}
	if err := f.Open(); err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b, err := f.Next()
	if err != nil || b == nil {
		t.Fatalf("Next: %v %v", b, err)
	}
	bc := b.Cols()
	if bc == nil {
		t.Fatal("typed filter dropped the columnar view")
	}
	for i := 0; i < b.Len(); i++ {
		if !bc[1].Value(i).Equal(b.Row(i)[1]) {
			t.Fatalf("gathered column disagrees with narrowed rows at %d", i)
		}
	}
}

// TestVecKeyBuildersMatchRowBuilders: the columnar key builders must be
// byte-identical to the row builders over the same data, NULL join-key
// skipping included.
func TestVecKeyBuildersMatchRowBuilders(t *testing.T) {
	rows := [][]types.Value{
		{types.NewInt(1), types.NewString("a"), types.Null()},
		{types.Null(), types.NewString(""), types.NewFloat(1)},
		{types.NewInt(1 << 53), types.NewString("a|b"), types.NewBool(true)},
	}
	cols := vector.FromRows(rows, 3).Slice(0, len(rows))
	idx := []int{2, 0}
	for i, row := range rows {
		if got, want := string(appendVecRowKey(nil, cols, i)), string(appendRowKey(nil, row)); got != want {
			t.Errorf("row %d: vec row key %q != %q", i, got, want)
		}
		if got, want := string(appendVecColsKey(nil, cols, i, idx)), string(appendColsKey(nil, row, idx)); got != want {
			t.Errorf("row %d: vec cols key %q != %q", i, got, want)
		}
		gotK, gotOK := appendVecJoinKey(nil, cols, i, idx)
		wantK, wantOK := appendJoinKey(nil, row, idx)
		if gotOK != wantOK || string(gotK) != string(wantK) {
			t.Errorf("row %d: vec join key (%q,%v) != (%q,%v)", i, gotK, gotOK, wantK, wantOK)
		}
	}
}
