package physical

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/types"
	"repro/internal/vector"
)

// DefaultMorselSize is the number of rows handed to a worker per morsel. It
// is the unit of parallel scheduling *and* of output ordering: a morsel is
// large enough that claiming one (a single atomic add) is negligible against
// the work it carries, and small enough that a table splits into plenty of
// morsels for the pool to balance across workers.
const DefaultMorselSize = 16384

// Options tunes plan lowering. The zero value asks for automatic parallelism
// (DOP = runtime.GOMAXPROCS) with default morsel sizing and no memory
// budget; DOP = 1 disables the parallel rewrites entirely and lowers exactly
// the serial operator tree PR 2 shipped, which is also what Lower (without
// options) does.
type Options struct {
	// DOP is the degree of parallelism: how many workers a parallelized
	// pipeline runs. <= 0 means runtime.GOMAXPROCS(0); 1 lowers serially.
	DOP int
	// MorselSize is the rows-per-morsel unit of work distribution;
	// <= 0 means DefaultMorselSize.
	MorselSize int
	// MinParallelRows is the smallest base table worth parallelizing; scans
	// of smaller tables lower serially no matter the DOP. <= 0 means twice
	// the morsel size (below that there is nothing to balance).
	MinParallelRows int
	// MemBudget caps the query's pipeline-breaker working set in bytes
	// (the -mem-budget flag). <= 0 means unlimited: no governor is built,
	// lowering produces exactly today's operator tree, and nothing ever
	// spills. With a budget, sort, hash aggregate, and hash join degrade to
	// their spilling forms under pressure — and lower serially (their
	// input pipelines still parallelize), because the parallel breakers'
	// shared build tables and per-worker partial states are ungoverned.
	MemBudget int64
	// SpillDir is where spill runs are written; "" means os.TempDir().
	SpillDir string
	// Gov is the query's memory governor. Leave nil: normalization builds
	// one from MemBudget. Tests pass a pre-built governor to observe the
	// peak tracked allocation of a single execution.
	Gov *MemGovernor
	// Fuse turns on fused pipeline compilation: maximal Scan→Filter→Project
	// chains (and equi-join probe sides) whose composed expressions all have
	// columnar kernels lower to a single-loop FusedPipeline instead of the
	// operator chain (see fused.go). Off by default: the unfused tree is the
	// reference engine, and fusion is pinned byte-identical to it by the
	// agreement harnesses. Fusion composes with DOP (fused kernels run
	// inside morsel workers) and with MemBudget (fused pipelines are not
	// pipeline breakers; governed joins simply decline the fused probe).
	Fuse bool
}

// normalized fills the option defaults in.
func (o Options) normalized() Options {
	if o.DOP <= 0 {
		o.DOP = runtime.GOMAXPROCS(0)
	}
	if o.MorselSize <= 0 {
		o.MorselSize = DefaultMorselSize
	}
	if o.MinParallelRows <= 0 {
		o.MinParallelRows = 2 * o.MorselSize
	}
	if o.Gov == nil {
		o.Gov = NewMemGovernor(o.MemBudget) // nil when MemBudget <= 0
	}
	return o
}

// morselSource is the shared work queue of a parallel pipeline: the scanned
// table's rows, split into fixed-size morsels claimed by workers with one
// atomic increment each. Morsel sequence numbers are positions in the
// original table order; the Gather above uses them to restore deterministic
// first-seen output order no matter which worker ran which morsel. cols,
// when present, is the table's columnar form: read-only like rows, so every
// worker slices it zero-copy without coordination.
type morselSource struct {
	rows [][]types.Value
	cols *vector.Columns // nil: row-only source
	size int
	next atomic.Int64
}

// nMorsels reports how many morsels the table splits into.
func (m *morselSource) nMorsels() int {
	return (len(m.rows) + m.size - 1) / m.size
}

// reset rewinds the queue for a fresh Open.
func (m *morselSource) reset() { m.next.Store(0) }

// claim hands out the next unclaimed morsel. Safe for concurrent use.
func (m *morselSource) claim() (seq, lo, hi int, ok bool) {
	s := int(m.next.Add(1)) - 1
	if s >= m.nMorsels() {
		return 0, 0, 0, false
	}
	lo = s * m.size
	hi = lo + m.size
	if hi > len(m.rows) {
		hi = len(m.rows)
	}
	return s, lo, hi, true
}

// MorselScan is the per-worker leaf of a parallel pipeline: a Scan whose row
// range is not the whole table but the morsel its worker most recently
// claimed from the shared morselSource. Next emits zero-copy shared batches
// within the current morsel and reports exhaustion at the morsel boundary;
// the worker then claims the next morsel (advance) and resumes the pipeline,
// so the operators stacked above never notice they are running on slices of
// the table.
type MorselScan struct {
	Table     string
	BatchSize int // rows per batch; 0 means DefaultBatchSize

	src    *morselSource
	schema types.Schema
	hi     int
	pos    int
	out    Batch
}

// Schema implements Operator.
func (m *MorselScan) Schema() types.Schema { return m.schema }

// Open implements Operator. The worker owns morsel claiming; a freshly
// opened MorselScan holds no morsel and reports exhaustion until advance.
func (m *MorselScan) Open() error { m.pos, m.hi = 0, 0; return nil }

// advance claims the next morsel from the shared source, returning its
// sequence number, or false when the table is fully claimed.
func (m *MorselScan) advance() (int, bool) {
	seq, lo, hi, ok := m.src.claim()
	if !ok {
		return 0, false
	}
	m.pos, m.hi = lo, hi
	return seq, true
}

// Next implements Operator: batches within the current morsel only.
func (m *MorselScan) Next() (*Batch, error) {
	if m.pos >= m.hi {
		return nil, nil
	}
	size := m.BatchSize
	if size <= 0 {
		size = DefaultBatchSize
	}
	end := m.pos + size
	if end > m.hi {
		end = m.hi
	}
	if m.src.cols != nil {
		m.out.SetSharedWithCols(m.src.rows[m.pos:end], m.src.cols.Slice(m.pos, end))
	} else {
		m.out.SetShared(m.src.rows[m.pos:end])
	}
	m.pos = end
	return &m.out, nil
}

// Close implements Operator.
func (m *MorselScan) Close() error { return nil }

// morselPacket is one morsel's fully processed output crossing the exchange
// from a worker to the Gather. Ownership transfers with the send: the rows
// spine was allocated by the worker for this packet alone and belongs to the
// receiver, per the cross-goroutine handoff rule in ARCHITECTURE.md. seq is
// -1 on pure error packets (a pipeline Open/Close failure not tied to a
// morsel).
type morselPacket struct {
	seq  int
	rows [][]types.Value
	err  error
}

// Exchange is the sending half of the exchange pair: one worker's pipeline
// (rooted at its MorselScan) plus the loop that claims morsels, drains the
// pipeline for each, and pushes the tagged results to the Gather. The
// pipeline is opened, compiled (kernels are per-Open closures, so every
// worker compiles its own), and closed entirely on the worker's goroutine —
// no operator state is ever shared across workers, only the read-only morsel
// source and (for joins) the immutable build table.
type Exchange struct {
	Pipe Operator
	Scan *MorselScan
}

// run executes the worker until the morsel source is exhausted, the Gather
// quits, or the pipeline fails. Every claimed morsel produces exactly one
// packet (possibly with zero rows), so the Gather can account for all
// sequence numbers.
func (e *Exchange) run(out chan<- morselPacket, quit <-chan struct{}) {
	err := e.loop(out, quit)
	if cerr := e.Pipe.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		select {
		case out <- morselPacket{seq: -1, err: err}:
		case <-quit:
		}
	}
}

func (e *Exchange) loop(out chan<- morselPacket, quit <-chan struct{}) error {
	if err := e.Pipe.Open(); err != nil {
		return err
	}
	for {
		seq, ok := e.Scan.advance()
		if !ok {
			return nil
		}
		var rows [][]types.Value
		for {
			b, err := e.Pipe.Next()
			if err != nil {
				return err
			}
			if b == nil {
				break
			}
			rows = append(rows, b.Rows()...)
		}
		select {
		case out <- morselPacket{seq: seq, rows: rows}:
		case <-quit:
			return nil
		}
	}
}

// Gather is the receiving half of the exchange pair and the only parallel
// operator a consumer sees: an ordinary Operator whose Open starts DOP
// worker goroutines and whose Next merges their tagged packets back into
// morsel-sequence order — i.e. the exact first-seen order the serial engine
// would have produced. Out-of-order packets wait in a reorder buffer;
// in-order morsel results are re-emitted as owned batches (the spine was
// handed over by the worker). Close tears the pool down even mid-stream, so
// early-terminating consumers (Limit) work unchanged.
type Gather struct {
	Workers []*Exchange

	src      *morselSource
	schema   types.Schema
	prepare  func() error // optional shared setup (join build) before workers start
	hintOK   bool         // pipeline preserves scan cardinality → hint len(rows)
	capOK    bool         // pipeline never exceeds scan cardinality → cap len(rows)
	started  bool
	quit     chan struct{}
	ch       chan morselPacket
	pending  map[int][][]types.Value
	nextSeq  int
	cur      [][]types.Value
	curPos   int
	out      Batch
	firstErr error
}

// Schema implements Operator.
func (g *Gather) Schema() types.Schema { return g.schema }

// DOP reports the gather's worker count.
func (g *Gather) DOP() int { return len(g.Workers) }

// MorselSize reports the gather's scheduling unit.
func (g *Gather) MorselSize() int { return g.src.size }

// Open implements Operator: shared setup first (a join's build table must be
// complete before any probe worker starts), then the worker pool.
func (g *Gather) Open() error {
	g.pending = make(map[int][][]types.Value)
	g.nextSeq, g.cur, g.curPos, g.firstErr = 0, nil, 0, nil
	if g.prepare != nil {
		if err := g.prepare(); err != nil {
			return err
		}
	}
	g.src.reset()
	g.quit = make(chan struct{})
	g.ch = make(chan morselPacket, 2*len(g.Workers))
	var wg sync.WaitGroup
	for _, w := range g.Workers {
		wg.Add(1)
		go func(w *Exchange) {
			defer wg.Done()
			w.run(g.ch, g.quit)
		}(w)
	}
	ch := g.ch
	go func() {
		wg.Wait()
		close(ch)
	}()
	g.started = true
	return nil
}

// RowCountHint implements RowCountHinter when the worker pipelines preserve
// the scan's cardinality (no Filter in the chain): the exchange forwards the
// hint so Drain keeps its single-allocation result path above a Gather.
func (g *Gather) RowCountHint() (int, bool) {
	if !g.hintOK {
		return 0, false
	}
	return len(g.src.rows), true
}

// RowCountCap implements RowCapHinter for pipelines that can only shrink the
// scan (Filter/Project chains, fused or not): the scan size bounds the
// gathered result, so Drain can pre-size its spine. Join gathers can expand
// and cap nothing.
func (g *Gather) RowCountCap() (int, bool) {
	if !g.capOK {
		return 0, false
	}
	return len(g.src.rows), true
}

// Next implements Operator.
func (g *Gather) Next() (*Batch, error) {
	if g.firstErr != nil {
		return nil, g.firstErr
	}
	for {
		// Re-emit the in-order morsel currently being streamed.
		if g.curPos < len(g.cur) {
			end := g.curPos + DefaultBatchSize
			if end > len(g.cur) {
				end = len(g.cur)
			}
			g.out.rows, g.out.shared = g.cur[g.curPos:end], false
			g.curPos = end
			return &g.out, nil
		}
		// Promote the next morsel in sequence from the reorder buffer.
		if rows, ok := g.pending[g.nextSeq]; ok {
			delete(g.pending, g.nextSeq)
			g.nextSeq++
			g.cur, g.curPos = rows, 0
			continue
		}
		if g.nextSeq >= g.src.nMorsels() {
			// All morsels emitted; reap worker shutdown (and any pipeline
			// Close error) before reporting exhaustion.
			for p := range g.ch {
				if p.err != nil && g.firstErr == nil {
					g.firstErr = p.err
				}
			}
			return nil, g.firstErr
		}
		p, ok := <-g.ch
		if !ok {
			// Workers are gone but morsels are missing: a worker must have
			// failed; its error packet was already consumed.
			return nil, g.firstErr
		}
		if p.err != nil {
			g.firstErr = p.err
			return nil, p.err
		}
		g.pending[p.seq] = p.rows
	}
}

// Close implements Operator: signal the pool, then wait for every worker to
// exit (each closes its own pipeline) by draining the packet channel to its
// close.
func (g *Gather) Close() error {
	if !g.started {
		return nil
	}
	close(g.quit)
	for p := range g.ch {
		if p.err != nil && g.firstErr == nil {
			g.firstErr = p.err
		}
	}
	g.started = false
	g.pending, g.cur = nil, nil
	return g.firstErr
}
