package physical

import (
	"context"

	"repro/internal/types"
	"repro/internal/vector"
)

// Result is a drained query result that keeps its columnar form when the
// plan produced one: a schema plus either column vectors (zero per-row
// boxing on the way out of the engine) or boxed rows (the classic Drain
// shape, for plans with no columnar output path). Row access is lazy — the
// first Rows call materializes boxed rows from the vectors and caches them —
// so a consumer that streams straight from columns (CSV output, vector-aware
// clients) never pays for boxing at all.
//
// Ownership: columnar results may alias table storage and compiled-kernel
// scratch, so the columns are valid only until the producing operator is
// re-executed (Open/Drain on the same lowered plan invalidates them); rows
// returned by Rows are materialized copies and obey the engine-wide
// row-stability rule instead (stable forever, but possibly aliasing table
// cells — do not mutate in place). Plans lowered fresh per query, as the
// engine does, never observe the reuse.
type Result struct {
	Schema types.Schema

	cols     *vector.Columns
	rows     [][]types.Value
	haveRows bool
}

// NewColumnarResult wraps column vectors as a result.
func NewColumnarResult(schema types.Schema, cols *vector.Columns) *Result {
	return &Result{Schema: schema, cols: cols}
}

// NewRowResult wraps boxed rows as a result.
func NewRowResult(schema types.Schema, rows [][]types.Value) *Result {
	return &Result{Schema: schema, rows: rows, haveRows: true}
}

// NumRows reports the result's row count without materializing anything.
func (r *Result) NumRows() int {
	if r.cols != nil {
		return r.cols.N
	}
	return len(r.rows)
}

// Cols returns the columnar form, or nil for a row-backed result.
func (r *Result) Cols() *vector.Columns { return r.cols }

// Rows returns the result as boxed rows, materializing (and caching) them
// from the columns on first call. Row-backed results return their rows
// as-is, so Drain-equivalent consumers see byte-identical data either way.
func (r *Result) Rows() [][]types.Value {
	if !r.haveRows {
		r.rows = vector.Materialize(r.cols.Vecs, r.cols.N)
		r.haveRows = true
	}
	return r.rows
}

// colsDrainer is optionally implemented by operators that can produce their
// entire output as column vectors with no per-row boxing — a passthrough
// columnar scan, or a serial fused pipeline whose projection kernels emit
// vectors. DrainColumns calls it once right after Open; handled=false falls
// back to the boxed row drain.
type colsDrainer interface {
	drainColumns() (cols *vector.Columns, handled bool, err error)
}

// DrainColumns is Drain with a columnar result sink: when the root operator
// can emit its whole output as vectors, no output row is ever boxed — the
// boxed [][]types.Value sink (and its alloc-zeroing + GC-marking cost, the
// structural floor of row draining at scale) disappears, and boxed Values
// exist only if the caller materializes via Result.Rows. Operators without a
// columnar output path drain through the normal row loop and return a
// row-backed Result, so the call is total: every plan drains, only the
// representation differs.
func DrainColumns(op Operator) (*Result, error) {
	return DrainColumnsContext(context.Background(), op)
}

// DrainColumnsContext is DrainColumns under a cancellation context, with the
// same batch-granularity checks as DrainContext (and the same division of
// labor with the governor-bound ctx for mid-spill cancellation).
func DrainColumnsContext(ctx context.Context, op Operator) (*Result, error) {
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		op.Close()
		return nil, err
	}
	if d, ok := op.(colsDrainer); ok {
		cols, handled, err := d.drainColumns()
		if err != nil {
			op.Close()
			return nil, err
		}
		if handled {
			if cerr := op.Close(); cerr != nil {
				return nil, cerr
			}
			return NewColumnarResult(op.Schema(), cols), nil
		}
	}
	rows, err := drainOpened(ctx, op)
	if err != nil {
		return nil, err
	}
	return NewRowResult(op.Schema(), rows), nil
}
