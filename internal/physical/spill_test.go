package physical

// Operator-level tests of the memory-governed spilling paths: governed
// sort/aggregate/join must produce byte-identical output to their
// in-memory selves at any budget, surface spill-file faults as query
// errors, and never leave a temp file behind — on clean Close, early
// Close, and error paths alike.

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
)

// spillTable builds n rows (k cycling over domain, v = i, s = short string)
// — enough kinds to exercise the codec, duplicate keys for buckets/groups.
func spillTable(n, domain int) (types.Schema, [][]types.Value) {
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{
			types.NewInt(int64(i % domain)),
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("s%d", i%7)),
		}
	}
	return types.NewSchema("t", "k", "v", "s"), rows
}

func drainAll(t *testing.T, op Operator, what string) [][]types.Value {
	t.Helper()
	rows, err := Drain(op)
	if err != nil {
		t.Fatalf("%s: %v", what, err)
	}
	return rows
}

func requireSameRows(t *testing.T, got, want [][]types.Value, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if types.Tuple(got[i]).Key() != types.Tuple(want[i]).Key() {
			t.Fatalf("%s: row %d differs:\ngot:  %v\nwant: %v", what, i, got[i], want[i])
		}
	}
}

func requireEmptyDir(t *testing.T, dir, when string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("%s: spill files leaked: %v", when, names)
	}
}

// spillDirHasFiles reports whether any spill file currently exists in dir.
func spillDirHasFiles(t *testing.T, dir string) bool {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(ents) > 0
}

func TestSortSpillsAndAgrees(t *testing.T) {
	schema, rows := spillTable(20000, 37)
	keys := []algebra.SortKey{{Expr: algebra.Col{Idx: 0}}, {Expr: algebra.Col{Idx: 1}, Desc: true}}
	want := drainAll(t, &Sort{Input: NewScan("t", schema, rows), Keys: keys}, "in-memory sort")

	for _, budget := range []int64{RowsMemSize(rows) / 4, 64 << 10, 512} {
		dir := t.TempDir()
		gov := NewMemGovernor(budget)
		s := &Sort{Input: NewScan("t", schema, rows), Keys: keys, Mem: gov, SpillDir: dir}
		got := drainAll(t, s, "spilling sort")
		requireSameRows(t, got, want, fmt.Sprintf("sort at budget %d", budget))
		requireEmptyDir(t, dir, "after sort Close")
		if gov.Peak() == 0 {
			t.Fatalf("budget %d: governor tracked nothing", budget)
		}
		if gov.InUse() != 0 {
			t.Fatalf("budget %d: %d bytes still reserved after Close", budget, gov.InUse())
		}
	}
}

// TestSortSpillActuallySpills pins that a tight budget really writes temp
// files mid-query (the parity above would pass vacuously if Reserve never
// failed) and that run boundaries forced by the budget don't change output.
func TestSortSpillActuallySpills(t *testing.T) {
	schema, rows := spillTable(5000, 11)
	dir := t.TempDir()
	s := &Sort{Input: NewScan("t", schema, rows),
		Keys: []algebra.SortKey{{Expr: algebra.Col{Idx: 2}}},
		Mem:  NewMemGovernor(4 << 10), SpillDir: dir}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	if !spillDirHasFiles(t, dir) {
		t.Fatal("4KB budget over ~5000 rows did not spill")
	}
	if _, err := s.Next(); err != nil {
		t.Fatal(err)
	}
	// Early Close mid-merge: files must still be removed.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	requireEmptyDir(t, dir, "after early Close")
}

// TestSortCascadeBoundsFanIn pins the cascade merge: a pathological budget
// creates thousands of runs, and the merge must never hold more than
// maxMergeFanIn cursors (file descriptors, resident frames) open at once.
// The test enforces that for real by dropping the process's soft fd limit
// — without the cascade, Open would fail with "too many open files".
func TestSortCascadeBoundsFanIn(t *testing.T) {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		t.Skipf("Getrlimit: %v", err)
	}
	lowered := lim
	lowered.Cur = 256
	if err := syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lowered); err != nil {
		t.Skipf("Setrlimit: %v", err)
	}
	defer syscall.Setrlimit(syscall.RLIMIT_NOFILE, &lim)

	schema, rows := spillTable(20000, 37)
	keys := []algebra.SortKey{{Expr: algebra.Col{Idx: 1}, Desc: true}}
	want := drainAll(t, &Sort{Input: NewScan("t", schema, rows), Keys: keys}, "in-memory sort")
	dir := t.TempDir()
	s := &Sort{Input: NewScan("t", schema, rows), Keys: keys,
		Mem: NewMemGovernor(512), SpillDir: dir} // ~4700 runs before the cascade
	got := drainAll(t, s, "cascaded sort")
	requireSameRows(t, got, want, "cascade parity")
	requireEmptyDir(t, dir, "after cascaded sort Close")
}

func TestAggregateSpillsAndAgrees(t *testing.T) {
	schema, rows := spillTable(20000, 617)
	groupBy := []algebra.Expr{algebra.Col{Idx: 0}, algebra.Col{Idx: 2}}
	names := []string{"k", "s"}
	aggs := []algebra.AggSpec{
		{Func: algebra.AggCount, Star: true, Name: "n"},
		{Func: algebra.AggSum, Arg: algebra.Col{Idx: 1}, Name: "sum"},
		{Func: algebra.AggMin, Arg: algebra.Col{Idx: 1}, Name: "min"},
		{Func: algebra.AggMax, Arg: algebra.Col{Idx: 2}, Name: "max"},
		{Func: algebra.AggAvg, Arg: algebra.Col{Idx: 1}, Name: "avg"},
	}
	want := drainAll(t, NewHashAggregate(NewScan("t", schema, rows), groupBy, names, aggs),
		"in-memory aggregate")

	for _, budget := range []int64{RowsMemSize(rows) / 4, 64 << 10, 2 << 10} {
		dir := t.TempDir()
		gov := NewMemGovernor(budget)
		h := NewHashAggregate(NewScan("t", schema, rows), groupBy, names, aggs)
		h.Mem, h.SpillDir = gov, dir
		got := drainAll(t, h, "spilling aggregate")
		requireSameRows(t, got, want, fmt.Sprintf("aggregate at budget %d", budget))
		requireEmptyDir(t, dir, "after aggregate Close")
		if gov.InUse() != 0 {
			t.Fatalf("budget %d: %d bytes still reserved after Close", budget, gov.InUse())
		}
	}
}

// TestAggregateSpillRecursion drives the 2KB budget deep enough that a
// single partition of partial states exceeds the budget and must
// re-partition under a re-salted hash.
func TestAggregateSpillRecursion(t *testing.T) {
	schema, rows := spillTable(30000, 9973) // nearly all groups distinct
	groupBy := []algebra.Expr{algebra.Col{Idx: 0}}
	aggs := []algebra.AggSpec{{Func: algebra.AggCount, Star: true, Name: "n"}}
	want := drainAll(t, NewHashAggregate(NewScan("t", schema, rows), groupBy, []string{"k"}, aggs),
		"in-memory aggregate")
	dir := t.TempDir()
	h := NewHashAggregate(NewScan("t", schema, rows), groupBy, []string{"k"}, aggs)
	h.Mem, h.SpillDir = NewMemGovernor(2<<10), dir
	got := drainAll(t, h, "recursively spilling aggregate")
	requireSameRows(t, got, want, "aggregate recursion")
	requireEmptyDir(t, dir, "after aggregate Close")
}

func TestGraceJoinAgrees(t *testing.T) {
	lschema, lrows := spillTable(8000, 701)
	rschema, rrows := spillTable(3000, 701)
	// Inject NULL keys on both sides: they must never match.
	for i := 0; i < len(lrows); i += 97 {
		lrows[i][0] = types.Null()
	}
	for i := 0; i < len(rrows); i += 89 {
		rrows[i][0] = types.Null()
	}
	residual := algebra.Bin{Op: algebra.OpNe,
		L: algebra.Col{Idx: 1}, R: algebra.Col{Idx: 4}}

	for _, res := range []algebra.Expr{nil, residual} {
		want := drainAll(t, NewHashJoin(
			NewScan("l", lschema, lrows), NewScan("r", rschema, rrows),
			[]int{0}, []int{0}, res), "in-memory join")

		for _, budget := range []int64{RowsMemSize(rrows) / 4, 32 << 10, 1 << 10} {
			dir := t.TempDir()
			gov := NewMemGovernor(budget)
			j := NewHashJoin(
				NewScan("l", lschema, lrows), NewScan("r", rschema, rrows),
				[]int{0}, []int{0}, res)
			j.Mem, j.SpillDir = gov, dir
			got := drainAll(t, j, "grace join")
			requireSameRows(t, got, want,
				fmt.Sprintf("join at budget %d (residual %v)", budget, res != nil))
			requireEmptyDir(t, dir, "after join Close")
			if gov.InUse() != 0 {
				t.Fatalf("budget %d: %d bytes still reserved after Close", budget, gov.InUse())
			}
		}
	}
}

// TestGraceJoinSkewedKey forces the recursion cap: one build key carries
// most of the rows, so no amount of re-partitioning can split it and the
// partition must proceed as forced slack rather than recurse forever.
func TestGraceJoinSkewedKey(t *testing.T) {
	lschema, lrows := spillTable(2000, 1)
	rschema, rrows := spillTable(4000, 1) // every build row shares key 0
	want := drainAll(t, NewHashJoin(
		NewScan("l", lschema, lrows[:3]), NewScan("r", rschema, rrows),
		[]int{0}, []int{0}, nil), "in-memory skewed join")
	dir := t.TempDir()
	j := NewHashJoin(
		NewScan("l", lschema, lrows[:3]), NewScan("r", rschema, rrows),
		[]int{0}, []int{0}, nil)
	j.Mem, j.SpillDir = NewMemGovernor(1<<10), dir
	got := drainAll(t, j, "skewed grace join")
	requireSameRows(t, got, want, "skewed join")
	requireEmptyDir(t, dir, "after skewed join Close")
}

// TestGovernedButFitsIsUntouched: a budget generous enough that nothing
// spills must not create a single temp file, and the governor must track a
// plausible peak.
func TestGovernedButFitsIsUntouched(t *testing.T) {
	schema, rows := spillTable(2000, 13)
	dir := t.TempDir()
	gov := NewMemGovernor(1 << 30)
	s := &Sort{Input: NewScan("t", schema, rows),
		Keys: []algebra.SortKey{{Expr: algebra.Col{Idx: 1}, Desc: true}},
		Mem:  gov, SpillDir: dir}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	requireEmptyDir(t, dir, "mid-query with a roomy budget")
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if gov.Peak() == 0 || gov.Peak() > 1<<30 {
		t.Fatalf("peak %d not plausible for a fitting working set", gov.Peak())
	}
}

// errOp fails after emitting a few batches — the mid-stream error source
// for teardown tests.
type errOp struct {
	schema types.Schema
	rows   [][]types.Value
	calls  int
	failAt int
	out    Batch
}

func (e *errOp) Schema() types.Schema { return e.schema }
func (e *errOp) Open() error          { e.calls = 0; return nil }
func (e *errOp) Next() (*Batch, error) {
	e.calls++
	if e.calls >= e.failAt {
		return nil, fmt.Errorf("injected mid-stream failure")
	}
	e.out.SetShared(e.rows)
	return &e.out, nil
}
func (e *errOp) Close() error { return nil }

func TestSpillInputErrorCleansUp(t *testing.T) {
	schema, rows := spillTable(2000, 7)
	dir := t.TempDir()
	s := &Sort{Input: &errOp{schema: schema, rows: rows, failAt: 10},
		Keys: []algebra.SortKey{{Expr: algebra.Col{Idx: 1}}},
		Mem:  NewMemGovernor(2 << 10), SpillDir: dir}
	_, err := Drain(s)
	if err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("input failure not surfaced: %v", err)
	}
	requireEmptyDir(t, dir, "after failed sort")
}

// TestCorruptedSpillFileIsAQueryError corrupts a spilled sort run between
// Open and the merge reads: the query must fail with a checksum error, not
// panic, and Close must still remove the files.
func TestCorruptedSpillFileIsAQueryError(t *testing.T) {
	schema, rows := spillTable(60000, 7)
	dir := t.TempDir()
	// The budget holds >1024 rows, so spilled runs span multiple frames,
	// and each run file is bigger than the reader's 64KB buffer — so the
	// corruption below lands in bytes the merge has yet to fetch from disk
	// (only each run's first frame is resident after Open).
	s := &Sort{Input: NewScan("t", schema, rows),
		Keys: []algebra.SortKey{{Expr: algebra.Col{Idx: 1}}},
		Mem:  NewMemGovernor(4 << 20), SpillDir: dir}
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("expected spilled runs (err %v)", err)
	}
	for _, e := range ents {
		p := filepath.Join(dir, e.Name())
		raw, err := os.ReadFile(p)
		if err != nil {
			t.Fatal(err)
		}
		if len(raw) > 100 {
			raw[len(raw)-50] ^= 0xff
			if err := os.WriteFile(p, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	var nerr error
	for nerr == nil {
		var b *Batch
		b, nerr = s.Next()
		if b == nil && nerr == nil {
			t.Fatal("corrupted run drained cleanly")
		}
	}
	if !strings.Contains(nerr.Error(), "spill") {
		t.Fatalf("got %v, want a spill-layer integrity error", nerr)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	requireEmptyDir(t, dir, "after corrupted-run Close")
}

// TestBadSpillDirIsAQueryError: an unwritable spill directory surfaces as
// an error from the operator, not a panic.
func TestBadSpillDirIsAQueryError(t *testing.T) {
	schema, rows := spillTable(5000, 7)
	s := &Sort{Input: NewScan("t", schema, rows),
		Keys:     []algebra.SortKey{{Expr: algebra.Col{Idx: 1}}},
		Mem:      NewMemGovernor(2 << 10),
		SpillDir: filepath.Join(t.TempDir(), "does", "not", "exist")}
	_, err := Drain(s)
	if err == nil || !strings.Contains(err.Error(), "creating run file") {
		t.Fatalf("bad spill dir: got %v, want create error", err)
	}
}

// TestGovernedLoweringShape: with no budget the lowered tree is byte-for-
// byte today's (governor nil everywhere); with a budget the breaker types
// are unchanged (Explain identical) and at DOP > 1 the governed join
// lowers serially while its probe pipeline still becomes a Gather.
func TestGovernedLoweringShape(t *testing.T) {
	schema, rows := spillTable(40000, 11)
	src := testSource{"t": {schema, rows}}
	plan := &algebra.Join{
		Left: &algebra.Filter{
			Input: &algebra.Scan{Table: "t", TblSchema: schema},
			Pred: algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1},
				R: algebra.Const{V: types.NewInt(1000)}}},
		Right: &algebra.Scan{Table: "t", TblSchema: schema},
		EquiL: []int{0}, EquiR: []int{0},
	}

	serial, err := Lower(plan, src)
	if err != nil {
		t.Fatal(err)
	}
	governed, err := LowerOpts(plan, src, Options{DOP: 1, MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if Explain(serial) != Explain(governed) {
		t.Fatalf("budgeted lowering changed the plan shape:\n%s\nvs\n%s",
			Explain(serial), Explain(governed))
	}
	hj, ok := governed.(*HashJoin)
	if !ok || hj.Mem == nil {
		t.Fatalf("governed lowering did not thread the governor (%T)", governed)
	}
	if sj, ok := serial.(*HashJoin); !ok || sj.Mem != nil {
		t.Fatalf("unbudgeted lowering must leave the governor nil (%T)", serial)
	}

	par, err := LowerOpts(plan, src, Options{DOP: 4, MemBudget: 1 << 20,
		MorselSize: 4096, MinParallelRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	shape := Explain(par)
	if !strings.Contains(shape, "HashJoin[") || strings.Contains(shape, "HashJoinProbe") {
		t.Fatalf("governed parallel join must be the serial spilling operator:\n%s", shape)
	}
	if !strings.Contains(shape, "Gather[") {
		t.Fatalf("governed join lost its parallel probe pipeline:\n%s", shape)
	}
}

// testSource is a minimal physical.Source over in-test tables.
type testSource map[string]struct {
	schema types.Schema
	rows   [][]types.Value
}

func (s testSource) Resolve(table string) (types.Schema, [][]types.Value, error) {
	tb, ok := s[table]
	if !ok {
		return types.Schema{}, nil, fmt.Errorf("no table %q", table)
	}
	return tb.schema, tb.rows, nil
}
