package physical

import (
	"repro/internal/algebra"
)

// Optimize normalizes a logical plan for execution. Three rewrites run, all
// semantics-preserving under SQL three-valued logic:
//
//  1. Predicate pushdown: filters split into AND-conjuncts that slide below
//     projections (when the referenced columns are pure renamings), sorts,
//     distincts, and union-alls, and into the matching side of joins.
//  2. Equi-join extraction: residual conjuncts of the form l.col = r.col
//     across a join become hash-join key pairs, so equality joins execute in
//     O(n+m) instead of O(n·m) — including joins assembled programmatically
//     by the UA rewriter rather than the SQL planner.
//  3. Projection pruning: subtrees feeding joins and aggregates are narrowed
//     to the columns actually consumed above, shrinking hash tables and
//     intermediate rows.
//
// Optimize never mutates its input; shared subtrees may be referenced by the
// output.
func Optimize(n algebra.Node) algebra.Node {
	return pruneTop(pushDown(n))
}

// splitAnd flattens an AND tree into its conjuncts. A row satisfies the
// conjunction iff every conjunct evaluates to TRUE, so conjuncts may be
// applied independently at different plan levels.
func splitAnd(e algebra.Expr) []algebra.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(algebra.Bin); ok && b.Op == algebra.OpAnd {
		return append(splitAnd(b.L), splitAnd(b.R)...)
	}
	return []algebra.Expr{e}
}

// andAll rebuilds a conjunction; nil for an empty list.
func andAll(conjs []algebra.Expr) algebra.Expr {
	var out algebra.Expr
	for _, c := range conjs {
		if out == nil {
			out = c
		} else {
			out = algebra.Bin{Op: algebra.OpAnd, L: out, R: c}
		}
	}
	return out
}

// pushDown recursively rebuilds the plan with every filter as low as it can
// soundly go.
func pushDown(n algebra.Node) algebra.Node {
	switch node := n.(type) {
	case *algebra.Scan:
		return node
	case *algebra.Filter:
		return pushConjuncts(splitAnd(node.Pred), pushDown(node.Input))
	case *algebra.Project:
		return &algebra.Project{Input: pushDown(node.Input), Exprs: node.Exprs, Names: node.Names}
	case *algebra.Join:
		j := &algebra.Join{
			Left: pushDown(node.Left), Right: pushDown(node.Right),
			EquiL:    append([]int{}, node.EquiL...),
			EquiR:    append([]int{}, node.EquiR...),
			Residual: node.Residual,
		}
		return distributeJoin(j)
	case *algebra.UnionAll:
		return &algebra.UnionAll{Left: pushDown(node.Left), Right: pushDown(node.Right)}
	case *algebra.Aggregate:
		return &algebra.Aggregate{Input: pushDown(node.Input),
			GroupBy: node.GroupBy, GroupNames: node.GroupNames, Aggs: node.Aggs}
	case *algebra.Sort:
		return &algebra.Sort{Input: pushDown(node.Input), Keys: node.Keys}
	case *algebra.Limit:
		return &algebra.Limit{Input: pushDown(node.Input), N: node.N}
	case *algebra.Distinct:
		return &algebra.Distinct{Input: pushDown(node.Input)}
	default:
		return n
	}
}

// distributeJoin sinks the join's residual conjuncts: single-side conjuncts
// become filters on that side, cross-side equalities become hash-join key
// pairs, and only genuinely mixed predicates stay residual. j must be a
// fresh node (its fields are rewritten in place).
func distributeJoin(j *algebra.Join) *algebra.Join {
	la := j.Left.Schema().Arity()
	var residual, lpush, rpush []algebra.Expr
	for _, c := range splitAnd(j.Residual) {
		cols := algebra.ColsUsed(c)
		switch {
		case len(cols) == 0 || cols[len(cols)-1] < la:
			lpush = append(lpush, c)
		case cols[0] >= la:
			rpush = append(rpush, algebra.ShiftCols(c, la, -la))
		default:
			if li, ri, ok := equiCols(c, la); ok {
				j.EquiL = append(j.EquiL, li)
				j.EquiR = append(j.EquiR, ri)
			} else {
				residual = append(residual, c)
			}
		}
	}
	if len(lpush) > 0 {
		j.Left = pushConjuncts(lpush, j.Left)
	}
	if len(rpush) > 0 {
		j.Right = pushConjuncts(rpush, j.Right)
	}
	j.Residual = andAll(residual)
	return j
}

// equiCols recognizes a cross-side column equality over the concatenated
// join schema and returns left- and right-relative key positions. Moving the
// equality from the residual to the hash keys preserves semantics: a NULL
// operand makes the predicate UNKNOWN (row dropped), and NULL hash keys
// never match.
func equiCols(e algebra.Expr, la int) (int, int, bool) {
	b, ok := e.(algebra.Bin)
	if !ok || b.Op != algebra.OpEq {
		return 0, 0, false
	}
	l, lok := b.L.(algebra.Col)
	r, rok := b.R.(algebra.Col)
	if !lok || !rok {
		return 0, 0, false
	}
	switch {
	case l.Idx < la && r.Idx >= la:
		return l.Idx, r.Idx - la, true
	case r.Idx < la && l.Idx >= la:
		return r.Idx, l.Idx - la, true
	}
	return 0, 0, false
}

// pushConjuncts pushes filter conjuncts into n, wrapping whatever cannot
// sink in a Filter above it.
func pushConjuncts(conjs []algebra.Expr, n algebra.Node) algebra.Node {
	if len(conjs) == 0 {
		return n
	}
	switch node := n.(type) {
	case *algebra.Filter:
		merged := append(append([]algebra.Expr{}, conjs...), splitAnd(node.Pred)...)
		return pushConjuncts(merged, node.Input)
	case *algebra.Join:
		j := &algebra.Join{
			Left: node.Left, Right: node.Right,
			EquiL:    append([]int{}, node.EquiL...),
			EquiR:    append([]int{}, node.EquiR...),
			Residual: andAll(append(splitAnd(node.Residual), conjs...)),
		}
		return distributeJoin(j)
	case *algebra.Project:
		// A conjunct slides below the projection when every column it reads
		// is a pure renaming (Col) or a constant — substitution then cannot
		// duplicate computed work.
		var pushable, kept []algebra.Expr
		for _, c := range conjs {
			if renamingOnly(c, node.Exprs) {
				pushable = append(pushable, algebra.MapCols(c, func(col algebra.Col) algebra.Expr {
					return node.Exprs[col.Idx]
				}))
			} else {
				kept = append(kept, c)
			}
		}
		out := node
		if len(pushable) > 0 {
			out = &algebra.Project{Input: pushConjuncts(pushable, node.Input),
				Exprs: node.Exprs, Names: node.Names}
		}
		if len(kept) > 0 {
			return &algebra.Filter{Input: out, Pred: andAll(kept)}
		}
		return out
	case *algebra.UnionAll:
		// Both branches share the output schema, so the conjuncts apply
		// verbatim on each side: σ(A ∪ B) = σ(A) ∪ σ(B) under bag semantics.
		return &algebra.UnionAll{
			Left:  pushConjuncts(conjs, node.Left),
			Right: pushConjuncts(conjs, node.Right),
		}
	case *algebra.Sort:
		return &algebra.Sort{Input: pushConjuncts(conjs, node.Input), Keys: node.Keys}
	case *algebra.Distinct:
		// σ(δ(R)) = δ(σ(R)): the predicate reads only the row itself.
		return &algebra.Distinct{Input: pushConjuncts(conjs, node.Input)}
	default:
		// Scan, Limit (a filter must not slide below a limit), Aggregate
		// (HAVING must see the aggregated groups), and anything unknown.
		return &algebra.Filter{Input: n, Pred: andAll(conjs)}
	}
}

// renamingOnly reports whether every column c reads maps to a Col or Const
// projection expression.
func renamingOnly(c algebra.Expr, exprs []algebra.Expr) bool {
	ok := true
	algebra.WalkCols(c, func(col algebra.Col) {
		if col.Idx >= len(exprs) {
			ok = false
			return
		}
		switch exprs[col.Idx].(type) {
		case algebra.Col, algebra.Const:
		default:
			ok = false
		}
	})
	return ok
}

// --- projection pruning ---

// pruneTop narrows every subtree to the columns consumed above it. At the
// root all columns are needed, so the plan's output schema is unchanged
// (prune with a full needed-set always returns an identity mapping).
func pruneTop(n algebra.Node) algebra.Node {
	out, _ := pruneNode(n, allNeeded(n.Schema().Arity()))
	return out
}

func allNeeded(n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = true
	}
	return out
}

func identityMap(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func countNeeded(needed []bool) int {
	n := 0
	for _, b := range needed {
		if b {
			n++
		}
	}
	return n
}

// remapExpr rebases an expression's column references through an old→new
// position mapping. Every referenced column must be retained (mapping ≥ 0);
// pruneNode guarantees that by adding the columns a node reads to the needed
// set before recursing.
func remapExpr(e algebra.Expr, m []int) algebra.Expr {
	return algebra.MapCols(e, func(c algebra.Col) algebra.Expr {
		return algebra.Col{Idx: m[c.Idx], Name: c.Name}
	})
}

// pruneNode rewrites n to produce at least the needed columns, keeping their
// relative order, and returns the old→new position mapping (-1 = dropped).
func pruneNode(n algebra.Node, needed []bool) (algebra.Node, []int) {
	switch node := n.(type) {
	case *algebra.Scan:
		arity := node.Schema().Arity()
		if countNeeded(needed) == arity {
			return node, identityMap(arity)
		}
		// Narrow the scan with a renaming projection. Keep at least one
		// column so the row count survives (a join side may be consumed for
		// cardinality only).
		m := make([]int, arity)
		var exprs []algebra.Expr
		var names []string
		for i := 0; i < arity; i++ {
			if needed[i] || (len(exprs) == 0 && i == arity-1) {
				m[i] = len(exprs)
				exprs = append(exprs, algebra.Col{Idx: i, Name: node.Schema().Attrs[i]})
				names = append(names, node.Schema().Attrs[i])
			} else {
				m[i] = -1
			}
		}
		return &algebra.Project{Input: node, Exprs: exprs, Names: names}, m

	case *algebra.Filter:
		need := append([]bool{}, needed...)
		for _, i := range algebra.ColsUsed(node.Pred) {
			need[i] = true
		}
		in, m := pruneNode(node.Input, need)
		return &algebra.Filter{Input: in, Pred: remapExpr(node.Pred, m)}, m

	case *algebra.Project:
		var kept []int
		for i := range node.Exprs {
			if needed[i] {
				kept = append(kept, i)
			}
		}
		if len(kept) == 0 {
			kept = []int{0}
		}
		childNeed := make([]bool, node.Input.Schema().Arity())
		for _, i := range kept {
			for _, c := range algebra.ColsUsed(node.Exprs[i]) {
				childNeed[c] = true
			}
		}
		in, cm := pruneNode(node.Input, childNeed)
		exprs := make([]algebra.Expr, len(kept))
		names := make([]string, len(kept))
		m := make([]int, len(node.Exprs))
		for i := range m {
			m[i] = -1
		}
		for k, i := range kept {
			exprs[k] = remapExpr(node.Exprs[i], cm)
			names[k] = node.Names[i]
			m[i] = k
		}
		return &algebra.Project{Input: in, Exprs: exprs, Names: names}, m

	case *algebra.Join:
		la := node.Left.Schema().Arity()
		ra := node.Right.Schema().Arity()
		lneed := make([]bool, la)
		rneed := make([]bool, ra)
		mark := func(i int) {
			if i < la {
				lneed[i] = true
			} else {
				rneed[i-la] = true
			}
		}
		for i, b := range needed {
			if b {
				mark(i)
			}
		}
		for _, i := range node.EquiL {
			lneed[i] = true
		}
		for _, i := range node.EquiR {
			rneed[i] = true
		}
		if node.Residual != nil {
			for _, i := range algebra.ColsUsed(node.Residual) {
				mark(i)
			}
		}
		l, lm := pruneNode(node.Left, lneed)
		r, rm := pruneNode(node.Right, rneed)
		nla := l.Schema().Arity()
		equiL := make([]int, len(node.EquiL))
		for i, j := range node.EquiL {
			equiL[i] = lm[j]
		}
		equiR := make([]int, len(node.EquiR))
		for i, j := range node.EquiR {
			equiR[i] = rm[j]
		}
		var residual algebra.Expr
		if node.Residual != nil {
			residual = algebra.MapCols(node.Residual, func(c algebra.Col) algebra.Expr {
				if c.Idx < la {
					return algebra.Col{Idx: lm[c.Idx], Name: c.Name}
				}
				return algebra.Col{Idx: nla + rm[c.Idx-la], Name: c.Name}
			})
		}
		m := make([]int, la+ra)
		for i := 0; i < la; i++ {
			m[i] = lm[i]
		}
		for i := 0; i < ra; i++ {
			if rm[i] < 0 {
				m[la+i] = -1
			} else {
				m[la+i] = nla + rm[i]
			}
		}
		return &algebra.Join{Left: l, Right: r, EquiL: equiL, EquiR: equiR, Residual: residual}, m

	case *algebra.Aggregate:
		childNeed := make([]bool, node.Input.Schema().Arity())
		for _, e := range node.GroupBy {
			for _, c := range algebra.ColsUsed(e) {
				childNeed[c] = true
			}
		}
		for _, a := range node.Aggs {
			if a.Arg != nil {
				for _, c := range algebra.ColsUsed(a.Arg) {
					childNeed[c] = true
				}
			}
		}
		in, cm := pruneNode(node.Input, childNeed)
		groupBy := make([]algebra.Expr, len(node.GroupBy))
		for i, e := range node.GroupBy {
			groupBy[i] = remapExpr(e, cm)
		}
		aggs := make([]algebra.AggSpec, len(node.Aggs))
		for i, a := range node.Aggs {
			aggs[i] = a
			if a.Arg != nil {
				aggs[i].Arg = remapExpr(a.Arg, cm)
			}
		}
		out := &algebra.Aggregate{Input: in, GroupBy: groupBy,
			GroupNames: node.GroupNames, Aggs: aggs}
		return out, identityMap(out.Schema().Arity())

	case *algebra.Sort:
		need := append([]bool{}, needed...)
		for _, k := range node.Keys {
			for _, i := range algebra.ColsUsed(k.Expr) {
				need[i] = true
			}
		}
		in, m := pruneNode(node.Input, need)
		keys := make([]algebra.SortKey, len(node.Keys))
		for i, k := range node.Keys {
			keys[i] = algebra.SortKey{Expr: remapExpr(k.Expr, m), Desc: k.Desc}
		}
		return &algebra.Sort{Input: in, Keys: keys}, m

	case *algebra.Limit:
		in, m := pruneNode(node.Input, needed)
		return &algebra.Limit{Input: in, N: node.N}, m

	case *algebra.Distinct:
		// Duplicate elimination compares whole rows: every column is load-
		// bearing even when the parent reads none of it.
		in, m := pruneNode(node.Input, allNeeded(node.Input.Schema().Arity()))
		return &algebra.Distinct{Input: in}, m

	case *algebra.UnionAll:
		// Keep both branches at full width so their column layouts agree.
		// Pruning still proceeds below each branch independently.
		l, _ := pruneNode(node.Left, allNeeded(node.Left.Schema().Arity()))
		r, _ := pruneNode(node.Right, allNeeded(node.Right.Schema().Arity()))
		return &algebra.UnionAll{Left: l, Right: r}, identityMap(node.Schema().Arity())

	default:
		return n, identityMap(n.Schema().Arity())
	}
}
