package physical

import (
	"fmt"
	"sync"

	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

// Fused pipeline compilation: the Options.Fuse lowering collapses a maximal
// Scan→Filter→Project chain (optionally capped by the probe side of an
// equi-join) into one FusedPipeline operator that runs the whole chain as a
// single loop per column window. The operator chain is composed at lowering
// time by expression substitution — each Filter predicate and each final
// Project expression is rewritten in terms of the scan's columns — so
// execution reads the source vectors once, selects with the unboxed columnar
// kernels, and boxes only the final output cells, one type switch per kernel
// per window. Nothing between the scan and the output is materialized: no
// compacted row spines, no gathered intermediate vectors, no per-operator
// Next dispatch.
//
// Fusion is an execution strategy, never a semantics change: the composed
// kernels are the same compile_vec.go kernels the unfused typed operators
// run (selection parity, NULL propagation, division-by-zero, float widening
// and all), rows survive a fused multi-filter chain exactly when every
// composed predicate selects them (ascending selection-vector intersection),
// and the probe stage encodes keys and orders matches exactly like the
// serial HashJoin. The randomized agreement harnesses pin fused output
// byte-identical to the unfused engine at every DOP and memory budget.

// FusedProbe is the optional hash-join probe stage of a fused pipeline: the
// chain's output columns are probed against a shared build table without
// ever materializing the probe-side rows — the join key is encoded straight
// from the chain's output vectors at each selected position, and the probe
// payload is boxed only for positions that actually match (late
// materialization, which is what makes sparse probes cheap).
type FusedProbe struct {
	Build    *hashBuild
	EquiL    []int // key positions in the chain's projected schema
	Residual algebra.Expr
	// OwnsBuild: a serial fused join constructs the shared build table at
	// Open. Parallel fused joins leave it false — the Gather's prepare step
	// builds once before any worker opens.
	OwnsBuild bool
}

// FusedPipeline executes a composed Scan→Filter→Project(→probe) chain as a
// single loop over each column window its leaf provides: the resolved
// table's vectors as one whole-table window serially (full), or the
// columnar batches of a MorselScan inside a parallel worker (Input).
// Everything above the scan in the original chain has been folded into
// Preds and Projs, which are expressions over the scan schema.
//
// Per window: every predicate runs its unboxed selection kernel and the
// ascending selection vectors are intersected; the projections are then
// evaluated unboxed over the window and boxed at the selected positions
// only, straight into a fresh per-batch output slab (emitted rows are
// immortal until Close, per the engine-wide row-stability rule — the
// selection vectors and any arithmetic scratch live only until the next
// window). With a Probe stage the slab rows are built per match instead,
// probe columns first, build row appended, residual-checked — the serial
// HashJoin's emit, minus the probe-side row materialization.
type FusedPipeline struct {
	Input Operator // *MorselScan emitting columnar batches; nil when full is set
	Preds []algebra.Expr
	Projs []algebra.Expr
	Ops   []string // collapsed chain, scan first — Explain renders this
	Probe *FusedProbe

	// full replaces Input for serial fused chains: the lowering hands the
	// resolved table's vectors over directly and the pipeline runs them as a
	// single whole-table window. One selection pass, one exactly-sized output
	// buffer, one batch out — the windowed path's per-batch buffers and
	// dispatch disappear, which is most of the fused speedup at scale.
	// Parallel workers keep windowed execution over their MorselScan.
	full     *vector.Columns
	fullDone bool

	schema    types.Schema
	compiled  bool
	predProgs []*algebra.Compiled
	projProgs []*algebra.Compiled
	sel, sel2 []int
	out       Batch

	// Cached zero-copy window for range-form columnar drains: slice headers
	// are immutable views of full, so a re-drained plan (bench loops, cached
	// prepared plans) whose range repeats allocates no new headers.
	colsWin              []vector.Vector
	colsWinLo, colsWinHi int

	// Probe-stage state, resumable across Next calls mid-window.
	res      *algebra.Compiled
	sl       *slab
	keyBuf   []byte
	projVecs []vector.Vector
	win      []vector.Vector // current window's source columns; nil when done
	winSel   []int
	si       int
	matches  [][]types.Value
	mi       int
}

// Schema implements Operator.
func (f *FusedPipeline) Schema() types.Schema { return f.schema }

// Open implements Operator: kernels compile on the first Open and are
// memoized across re-Opens of the same instance (each parallel worker owns a
// private pipeline, so kernel scratch stays single-goroutine by
// construction), and a serial probe stage constructs its build table before
// the first window.
func (f *FusedPipeline) Open() error {
	if !f.compiled {
		f.predProgs = algebra.CompileAll(f.Preds)
		f.projProgs = algebra.CompileAll(f.Projs)
		for _, p := range f.predProgs {
			if !p.CanSelectVec() {
				return fmt.Errorf("physical: fused predicate lost its columnar kernel")
			}
		}
		for _, p := range f.projProgs {
			if !p.CanEvalVec() {
				return fmt.Errorf("physical: fused projection lost its columnar kernel")
			}
		}
		f.compiled = true
	}
	f.win, f.winSel, f.matches, f.si, f.mi = nil, nil, nil, 0, 0
	f.fullDone = false
	if f.Probe != nil {
		f.res = nil
		if f.Probe.Residual != nil {
			f.res = algebra.Compile(f.Probe.Residual)
		}
		f.sl = newSlab(f.schema.Arity())
		if f.Probe.OwnsBuild {
			if err := f.Probe.Build.build(); err != nil {
				return err
			}
		}
	}
	if f.Input == nil {
		return nil
	}
	return f.Input.Open()
}

// nextWindow produces the next column window: the whole table at once in
// full mode, otherwise the next columnar batch from Input. cols == nil with
// a nil error means exhausted.
func (f *FusedPipeline) nextWindow() (cols []vector.Vector, n int, err error) {
	if f.full != nil {
		if f.fullDone || f.full.N == 0 {
			return nil, 0, nil
		}
		f.fullDone = true
		return f.full.Vecs, f.full.N, nil
	}
	b, err := f.Input.Next()
	if b == nil || err != nil {
		return nil, 0, err
	}
	if cols = b.Cols(); cols == nil {
		return nil, 0, fmt.Errorf("physical: fused pipeline over a row-only batch")
	}
	return cols, b.Len(), nil
}

// RowCountHint implements RowCountHinter: a predicate-free fused chain
// preserves its scan's cardinality exactly.
func (f *FusedPipeline) RowCountHint() (int, bool) {
	if f.Probe != nil || len(f.Preds) > 0 {
		return 0, false
	}
	if f.full != nil {
		return f.full.N, true
	}
	if h, ok := f.Input.(RowCountHinter); ok {
		return h.RowCountHint()
	}
	return 0, false
}

// RowCountCap implements RowCapHinter: filters only shrink, so the scan's
// size bounds a probe-less fused chain's output. A probe stage can expand
// (1:N matches) and caps nothing.
func (f *FusedPipeline) RowCountCap() (int, bool) {
	if f.Probe != nil {
		return 0, false
	}
	if f.full != nil {
		return f.full.N, true
	}
	if h, ok := f.Input.(RowCountHinter); ok {
		return h.RowCountHint()
	}
	return 0, false
}

// selScratchPool recycles whole-table selection vectors across one-shot
// drains. A lowered plan is typically executed once and discarded, so
// per-operator scratch reuse never amortizes; pooling does. The slices hold
// no pointers and are fully overwritten before every read, so a pooled
// buffer carries no state between drains.
var selScratchPool = sync.Pool{New: func() any { return new([]int) }}

func selScratchGet(n int) *[]int {
	s := selScratchPool.Get().(*[]int)
	if cap(*s) < n {
		*s = make([]int, 0, n)
	}
	return s
}

// drainRows implements rowsDrainer for serial probe-less fused chains: the
// whole-table window is selected once, the output buffer and result spine
// are allocated exactly once at their final sizes, and rows are written
// straight into the returned result. Compared to batch-at-a-time draining
// this removes the intermediate batch spine, every append-growth copy, and
// the ≤2x cap slack — on a 1M-row chain that is most of the remaining
// allocation churn. Selection scratch comes from a pool, and a selection
// that lands on one contiguous run of rows (a filter over correlated or
// sorted data — or no filter at all) degenerates to a zero-copy slice of
// the source window, so projection runs dense: sequential kernels over
// exactly the surviving rows, no gather.
func (f *FusedPipeline) drainRows() ([][]types.Value, bool, error) {
	if f.full == nil || f.Probe != nil || f.fullDone {
		return nil, false, nil
	}
	f.fullDone = true
	n := f.full.N
	if n == 0 {
		return nil, true, nil
	}
	cols := f.full.Vecs
	// Range form first: if every predicate resolves to a contiguous row
	// range on this table (ascending columns, binary search), their
	// conjunction is the ranges' intersection and no selection vector is
	// needed at all.
	lo, hi, ranged := 0, n, true
	for _, prog := range f.predProgs {
		plo, phi, ok := prog.SelectRangeVec(cols, n)
		if !ok {
			ranged = false
			break
		}
		lo, hi = max(lo, plo), min(hi, phi)
	}
	var sel []int
	if !ranged {
		selBuf := selScratchGet(n)
		defer selScratchPool.Put(selBuf)
		f.sel = (*selBuf)[:0]
		if len(f.predProgs) > 1 {
			sel2Buf := selScratchGet(n)
			defer selScratchPool.Put(sel2Buf)
			f.sel2 = (*sel2Buf)[:0]
		}
		sel = f.selectWindow(cols, n)
		f.sel, f.sel2 = nil, nil
		if len(sel) == 0 {
			return nil, true, nil
		}
		// A selection that landed on one contiguous run (correlated or
		// sorted data under a non-range predicate) degenerates to a range.
		if first := sel[0]; sel[len(sel)-1]-first == len(sel)-1 {
			lo, hi, ranged = first, first+len(sel), true
		}
	} else if lo >= hi {
		return nil, true, nil
	}
	k := len(f.projProgs)
	var out int
	if ranged {
		out = hi - lo
	} else {
		out = len(sel)
	}
	buf := make([]types.Value, out*k)
	if ranged {
		win, m := cols, n
		if lo != 0 || hi != n {
			win, m = f.window(lo, hi), hi-lo
		}
		for j, prog := range f.projProgs {
			prog.EvalVecStrided(win, m, buf[j:], k)
		}
	} else {
		for j, prog := range f.projProgs {
			prog.EvalVecSelStrided(cols, n, sel, buf[j:], k)
		}
	}
	rows := make([][]types.Value, out)
	for r := range rows {
		rows[r] = buf[r*k : (r+1)*k : (r+1)*k]
	}
	return rows, true, nil
}

// window returns f.full.Slice(lo, hi), caching the slice headers: they are
// immutable views of the table's vectors, so sharing them across drains (and
// across the Results of a re-drained plan) is safe, and a repeated range —
// the steady state of a benchmark loop or a cached prepared plan — allocates
// nothing.
func (f *FusedPipeline) window(lo, hi int) []vector.Vector {
	if f.colsWin == nil || f.colsWinLo != lo || f.colsWinHi != hi {
		f.colsWin, f.colsWinLo, f.colsWinHi = f.full.Slice(lo, hi), lo, hi
	}
	return f.colsWin
}

// drainColumns implements colsDrainer for serial probe-less fused chains:
// drainRows' selection logic with the boxed output slab replaced by the
// projection kernels' own vectors. In range form the projections evaluate
// dense over a zero-copy window — bare columns pass through as slice
// headers, computed ones land in kernel scratch — and nothing is boxed at
// all; a scattered selection gathers each projected vector at the selected
// positions. Either way the boxed [][]types.Value sink, the structural
// allocation floor of whole-table row draining, never exists.
func (f *FusedPipeline) drainColumns() (*vector.Columns, bool, error) {
	if f.full == nil || f.Probe != nil || f.fullDone {
		return nil, false, nil
	}
	f.fullDone = true
	n := f.full.N
	k := len(f.projProgs)
	empty := func() *vector.Columns {
		// Evaluate the projection kernels over a zero-width window so a
		// filtered-to-nothing result keeps typed columns: the kernels are
		// element-wise (zero iterations), but their output vectors still
		// carry the column kind, which the wire protocol's header tags and
		// columnar consumers rely on for zero-row results.
		vecs := make([]vector.Vector, k)
		win := f.window(0, 0)
		for j, prog := range f.projProgs {
			v, ok := prog.EvalVec(win, 0)
			if !ok {
				v = vector.NewValueVector(nil)
			}
			vecs[j] = v
		}
		return &vector.Columns{N: 0, Vecs: vecs}
	}
	if n == 0 {
		return empty(), true, nil
	}
	cols := f.full.Vecs
	lo, hi, ranged := 0, n, true
	for _, prog := range f.predProgs {
		plo, phi, ok := prog.SelectRangeVec(cols, n)
		if !ok {
			ranged = false
			break
		}
		lo, hi = max(lo, plo), min(hi, phi)
	}
	var sel []int
	if !ranged {
		selBuf := selScratchGet(n)
		defer selScratchPool.Put(selBuf)
		f.sel = (*selBuf)[:0]
		if len(f.predProgs) > 1 {
			sel2Buf := selScratchGet(n)
			defer selScratchPool.Put(sel2Buf)
			f.sel2 = (*sel2Buf)[:0]
		}
		sel = f.selectWindow(cols, n)
		f.sel, f.sel2 = nil, nil
		if len(sel) == 0 {
			return empty(), true, nil
		}
		if first := sel[0]; sel[len(sel)-1]-first == len(sel)-1 {
			lo, hi, ranged = first, first+len(sel), true
		}
	} else if lo >= hi {
		return empty(), true, nil
	}
	vecs := make([]vector.Vector, k)
	if ranged {
		win, m := cols, n
		if lo != 0 || hi != n {
			win, m = f.window(lo, hi), hi-lo
		}
		for j, prog := range f.projProgs {
			vecs[j], _ = prog.EvalVec(win, m)
		}
		return &vector.Columns{N: m, Vecs: vecs}, true, nil
	}
	for j, prog := range f.projProgs {
		vecs[j], _ = prog.EvalVecSel(cols, n, sel)
	}
	return &vector.Columns{N: len(sel), Vecs: vecs}, true, nil
}

// selectWindow runs the composed predicate chain over one window and returns
// the surviving positions (ascending, scratch-backed — valid until the next
// window). Sequential filters are logical conjunction on the kept set: a row
// survives the unfused chain iff every predicate evaluates to TRUE on it, so
// intersecting the per-predicate selection vectors reproduces the chain
// exactly. (Predicates past the first run over the full window, including
// rows an earlier filter dropped; the columnar kernels are total — no
// faults, division by zero is NULL — so the extra evaluations cannot change
// which rows the intersection keeps.)
func (f *FusedPipeline) selectWindow(cols []vector.Vector, n int) []int {
	if len(f.predProgs) == 0 {
		sel := f.sel[:0]
		for i := 0; i < n; i++ {
			sel = append(sel, i)
		}
		f.sel = sel
		return sel
	}
	sel, _ := f.predProgs[0].SelectTruthyVec(cols, n, f.sel[:0])
	for _, prog := range f.predProgs[1:] {
		if len(sel) == 0 {
			break
		}
		s2, _ := prog.SelectTruthyVec(cols, n, f.sel2[:0])
		f.sel2 = s2
		sel = intersectAsc(sel, s2)
	}
	f.sel = sel
	return sel
}

// intersectAsc intersects two ascending index lists, writing the result into
// a's storage (safe in place: the write index never passes the read index).
func intersectAsc(a, b []int) []int {
	out := a[:0]
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j == len(b) {
			break
		}
		if b[j] == x {
			out = append(out, x)
		}
	}
	return out
}

// Next implements Operator.
func (f *FusedPipeline) Next() (*Batch, error) {
	if f.Probe != nil {
		return f.nextProbe()
	}
	for {
		cols, n, err := f.nextWindow()
		if cols == nil || err != nil {
			return nil, err
		}
		sel := f.selectWindow(cols, n)
		if len(sel) == 0 {
			continue
		}
		k := len(f.projProgs)
		buf := make([]types.Value, len(sel)*k)
		if len(sel) == n {
			for j, prog := range f.projProgs {
				prog.EvalVecStrided(cols, n, buf[j:], k)
			}
		} else {
			for j, prog := range f.projProgs {
				prog.EvalVecSelStrided(cols, n, sel, buf[j:], k)
			}
		}
		f.out.Reset()
		for r := 0; r < len(sel); r++ {
			f.out.Append(buf[r*k : (r+1)*k : (r+1)*k])
		}
		return &f.out, nil
	}
}

// nextProbe is Next for a probe-capped pipeline: the serial HashJoin's
// resumable probe loop, run directly over the chain's output vectors at the
// selected window positions.
func (f *FusedPipeline) nextProbe() (*Batch, error) {
	f.out.Reset()
	for {
		for f.win != nil {
			for f.mi < len(f.matches) {
				f.emitProbe(f.winSel[f.si-1])
				f.mi++
				if f.out.Len() >= DefaultBatchSize {
					return &f.out, nil
				}
			}
			if f.si >= len(f.winSel) {
				f.win = nil
				break
			}
			i := f.winSel[f.si]
			f.si++
			f.matches, f.mi = nil, 0
			key, ok := appendVecJoinKey(f.keyBuf[:0], f.projVecs, i, f.Probe.EquiL)
			f.keyBuf = key
			if ok {
				f.matches = f.Probe.Build.lookup(key)
			}
		}
		cols, n, err := f.nextWindow()
		if err != nil {
			return nil, err
		}
		if cols == nil {
			if f.out.Len() > 0 {
				return &f.out, nil
			}
			return nil, nil
		}
		sel := f.selectWindow(cols, n)
		if len(sel) == 0 {
			continue
		}
		// The chain's output columns, evaluated once per window: bare column
		// projections pass through zero-copy, computed ones go to kernel
		// scratch valid until the next window — which is exactly as long as
		// the probe needs them.
		if cap(f.projVecs) < len(f.projProgs) {
			f.projVecs = make([]vector.Vector, len(f.projProgs))
		}
		f.projVecs = f.projVecs[:len(f.projProgs)]
		for j, prog := range f.projProgs {
			f.projVecs[j], _ = prog.EvalVec(cols, n)
		}
		f.win, f.winSel, f.si = cols, sel, 0
		f.matches, f.mi = nil, 0
	}
}

// emitProbe boxes the probe row at window position i and the current build
// match into one slab row, residual-checked — the payload is materialized
// here, per match, and nowhere else.
func (f *FusedPipeline) emitProbe(i int) {
	row := f.sl.peek()
	for c, v := range f.projVecs {
		row[c] = v.Value(i)
	}
	copy(row[len(f.projVecs):], f.matches[f.mi])
	if f.res != nil && !algebra.Truthy(f.res.Eval(row)) {
		return
	}
	f.sl.commit()
	f.out.Append(row)
}

// Close implements Operator. A serially owned build table's input was
// already closed when build() drained it.
func (f *FusedPipeline) Close() error {
	f.win, f.winSel, f.matches, f.projVecs, f.sl = nil, nil, nil, nil, nil
	if f.Input == nil {
		return nil
	}
	return f.Input.Close()
}

// fusedChain is a recognized Scan→Filter→Project chain, composed down to
// expressions over the scan schema.
type fusedChain struct {
	table     string
	schema    types.Schema // scan schema
	rows      [][]types.Value
	cols      *vector.Columns
	preds     []algebra.Expr
	projs     []algebra.Expr
	names     []string
	ops       []string
	hasProj   bool // the chain contains a Project node
	computing bool // some composed projection is not a bare column/constant
}

// substCols rewrites e's column references through the chain's current
// output expressions, composing the operator below into e.
func substCols(e algebra.Expr, mapping []algebra.Expr) algebra.Expr {
	return algebra.MapCols(e, func(c algebra.Col) algebra.Expr { return mapping[c.Idx] })
}

// fuseChainFor recognizes a fusable chain rooted at n: Filter/Project nodes
// over a base-table scan with columnar storage. ok is false — with no error
// — when the subtree has the wrong shape or the table has no columns;
// validation errors are the same ones serial lowering would report. The
// caller still gates on kernel availability and on the chain being worth
// fusing.
func fuseChainFor(n algebra.Node, src Source) (*fusedChain, bool, error) {
	switch node := n.(type) {
	case *algebra.Scan:
		schema, rows, err := resolveScan(node, src)
		if err != nil {
			return nil, false, err
		}
		cols := columnsFor(src, node.Table, len(rows))
		if cols == nil {
			return nil, false, nil
		}
		projs := make([]algebra.Expr, schema.Arity())
		for i := range projs {
			projs[i] = algebra.Col{Idx: i, Name: schema.Attrs[i]}
		}
		return &fusedChain{
			table: node.Table, schema: schema, rows: rows, cols: cols,
			projs: projs, names: schema.Attrs,
			ops: []string{"scan " + node.Table},
		}, true, nil

	case *algebra.Filter:
		in, ok, err := fuseChainFor(node.Input, src)
		if !ok || err != nil {
			return nil, ok, err
		}
		if err := checkCols(node.Pred, len(in.projs), "filter predicate"); err != nil {
			return nil, false, err
		}
		out := *in
		out.preds = append(in.preds[:len(in.preds):len(in.preds)], substCols(node.Pred, in.projs))
		out.ops = append(in.ops[:len(in.ops):len(in.ops)], "filter")
		return &out, true, nil

	case *algebra.Project:
		in, ok, err := fuseChainFor(node.Input, src)
		if !ok || err != nil {
			return nil, ok, err
		}
		if err := checkProject(node, len(in.projs)); err != nil {
			return nil, false, err
		}
		out := *in
		out.projs = make([]algebra.Expr, len(node.Exprs))
		out.computing = false
		for i, e := range node.Exprs {
			out.projs[i] = substCols(e, in.projs)
			switch out.projs[i].(type) {
			case algebra.Col, algebra.Const:
			default:
				out.computing = true
			}
		}
		out.names = node.Names
		out.hasProj = true
		out.ops = append(in.ops[:len(in.ops):len(in.ops)], "project")
		return &out, true, nil
	}
	return nil, false, nil
}

// kernelsOK reports whether every composed predicate has a columnar
// selection kernel and every composed projection a columnar evaluation
// kernel — the condition for the fused loop to exist at all. Compilation is
// deterministic, so a positive answer here guarantees Open succeeds.
func (fc *fusedChain) kernelsOK() bool {
	for _, p := range fc.preds {
		if !algebra.Compile(p).CanSelectVec() {
			return false
		}
	}
	for _, e := range fc.projs {
		if !algebra.Compile(e).CanEvalVec() {
			return false
		}
	}
	return true
}

// worthFusing gates standalone (probe-less) fusion on chains where the fused
// loop strictly saves work: the chain must box rows anyway (it ends in a
// projection) and must either filter or compute. A filter-only chain stays
// unfused — the typed Filter moves row pointers and boxes nothing, which the
// fused loop could only pessimize — as does a bare passthrough projection,
// whose unfused form is a zero-cost column window.
func (fc *fusedChain) worthFusing() bool {
	return fc.hasProj && (len(fc.preds) > 0 || fc.computing)
}

// worthProbeFusing is the probe-capped variant: the chain need not end in a
// projection (the probe materializes rows itself, late), but it must filter
// or compute — a bare passthrough chain under a join gains nothing, because
// the typed HashJoinProbe already probes straight off the scan's vectors and
// materializes only matches. Fusing it would just re-dispatch the same work.
func (fc *fusedChain) worthProbeFusing() bool {
	return len(fc.preds) > 0 || fc.computing
}

// lowerFusedPipeline lowers a standalone fusable chain rooted at n to a
// FusedPipeline running the resolved table as one whole-table window. ok is
// false when the chain doesn't fuse; the caller falls back to the unfused
// operator tree.
func lowerFusedPipeline(n algebra.Node, src Source) (Operator, bool, error) {
	fc, ok, err := fuseChainFor(n, src)
	if err != nil || !ok {
		return nil, false, err
	}
	if !fc.worthFusing() || !fc.kernelsOK() {
		return nil, false, nil
	}
	return &FusedPipeline{
		full:   fc.cols,
		Preds:  fc.preds,
		Projs:  fc.projs,
		Ops:    fc.ops,
		schema: types.Schema{Attrs: fc.names},
	}, true, nil
}

// lowerFusedProbe lowers an ungoverned equi-join whose probe (left) side is
// a fusable chain to a FusedPipeline with a probe stage over a private
// hashBuild — the serial fused join. Under a memory budget the join must
// stay the governed (grace-spilling) HashJoin, which consumes fused inputs
// unchanged; fused pipelines are not pipeline breakers.
func lowerFusedProbe(node *algebra.Join, src Source, opt Options) (Operator, bool, error) {
	if len(node.EquiL) == 0 || opt.Gov != nil {
		return nil, false, nil
	}
	fc, ok, err := fuseChainFor(node.Left, src)
	if err != nil || !ok {
		return nil, false, err
	}
	if !fc.worthProbeFusing() || !fc.kernelsOK() {
		return nil, false, nil
	}
	right, err := lowerNode(node.Right, src, opt)
	if err != nil {
		return nil, false, err
	}
	if err := checkJoin(node, len(fc.projs), right.Schema().Arity()); err != nil {
		return nil, false, err
	}
	build := &hashBuild{Input: right, Keys: node.EquiR, dop: opt.DOP}
	return &FusedPipeline{
		full:  fc.cols,
		Preds: fc.preds,
		Projs: fc.projs,
		Ops:   append(fc.ops[:len(fc.ops):len(fc.ops)], "probe"),
		Probe: &FusedProbe{Build: build, EquiL: node.EquiL,
			Residual: node.Residual, OwnsBuild: true},
		schema: types.Schema{Attrs: fc.names}.Concat(right.Schema()),
	}, true, nil
}

// fusedPipelineSpec is the parallel twin of lowerFusedPipeline: a
// pipelineSpec whose workers each run a private FusedPipeline over a
// MorselScan. probe applies the probe-capped worth gate instead of the
// standalone one.
func fusedPipelineSpec(n algebra.Node, src Source, opt Options, probe bool) (*pipelineSpec, bool, error) {
	fc, ok, err := fuseChainFor(n, src)
	if err != nil || !ok {
		return nil, false, err
	}
	if len(fc.rows) < opt.MinParallelRows {
		return nil, false, nil
	}
	if probe && !fc.worthProbeFusing() {
		return nil, false, nil
	}
	if (!probe && !fc.worthFusing()) || !fc.kernelsOK() {
		return nil, false, nil
	}
	ms := &morselSource{rows: fc.rows, size: opt.MorselSize, cols: fc.cols}
	schema := types.Schema{Attrs: fc.names}
	return &pipelineSpec{
		src: ms, table: fc.table, schema: schema,
		preservesCount: len(fc.preds) == 0,
		depth:          len(fc.ops) - 1,
		mk: func() (Operator, *MorselScan) {
			s := &MorselScan{Table: fc.table, src: ms, schema: fc.schema}
			return &FusedPipeline{Input: s, Preds: fc.preds, Projs: fc.projs,
				Ops: fc.ops, schema: schema}, s
		},
	}, true, nil
}
