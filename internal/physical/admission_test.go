package physical

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestAdmissionImmediateGrant: queries that fit are granted without
// queueing, grants roll up into the shared ledger, Release returns budget.
func TestAdmissionImmediateGrant(t *testing.T) {
	a := NewAdmission(100)
	g1, err := a.Acquire(context.Background(), 40)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := a.Acquire(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Granted(); got != 100 {
		t.Fatalf("granted = %d, want 100", got)
	}
	if g1.Gov() == nil || g1.Gov().Budget() != 40 {
		t.Fatalf("grant governor budget = %v, want 40", g1.Gov().Budget())
	}
	// The grant's governor enforces its slice and reports into the ledger.
	if !g1.Gov().Reserve(30) {
		t.Fatal("reserve within slice refused")
	}
	if g1.Gov().Reserve(20) {
		t.Fatal("reserve beyond slice allowed")
	}
	if got := a.InUse(); got != 30 {
		t.Fatalf("ledger in-use = %d, want 30", got)
	}
	g1.Gov().Release(30)
	if got := a.InUse(); got != 0 {
		t.Fatalf("ledger in-use after release = %d, want 0", got)
	}
	g1.Release()
	g2.Release()
	if got := a.Granted(); got != 0 {
		t.Fatalf("granted after release = %d, want 0", got)
	}
	if adm, _ := a.Stats(); adm != 2 {
		t.Fatalf("admitted = %d, want 2", adm)
	}
}

// TestAdmissionClamp: asks above the budget are clamped to it, asks below
// one byte are raised to it.
func TestAdmissionClamp(t *testing.T) {
	a := NewAdmission(50)
	g, err := a.Acquire(context.Background(), 500)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bytes() != 50 {
		t.Fatalf("oversized ask granted %d, want the whole budget 50", g.Bytes())
	}
	g.Release()
	g, err = a.Acquire(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Bytes() != 1 {
		t.Fatalf("zero ask granted %d, want 1", g.Bytes())
	}
	g.Release()
}

// TestAdmissionFIFO pins the no-bypass property of strict FIFO: while a
// big request is blocked at the queue head, a later small request that
// WOULD fit right now must not be served around it.
func TestAdmissionFIFO(t *testing.T) {
	a := NewAdmission(100)
	hold, err := a.Acquire(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}

	bigServed := make(chan *Grant, 1)
	go func() {
		g, err := a.Acquire(context.Background(), 80) // 60+80 > 100: blocks
		if err != nil {
			t.Error(err)
		}
		bigServed <- g
	}()
	waitFor(t, func() bool { return a.QueueLen() == 1 })

	smallServed := make(chan *Grant, 1)
	go func() {
		g, err := a.Acquire(context.Background(), 10) // 60+10 <= 100: would fit
		if err != nil {
			t.Error(err)
		}
		smallServed <- g
	}()
	waitFor(t, func() bool { return a.QueueLen() == 2 })

	// The small request fits the remaining budget but must stay queued
	// behind the blocked head.
	select {
	case <-smallServed:
		t.Fatal("small request bypassed the blocked queue head")
	case <-bigServed:
		t.Fatal("big request served beyond the budget")
	case <-time.After(20 * time.Millisecond):
	}

	// Head unblocks; both fit (80 + 10 <= 100) and are served in order.
	hold.Release()
	big := <-bigServed
	small := <-smallServed
	if got := a.Granted(); got != 90 {
		t.Fatalf("granted = %d, want 90", got)
	}
	if _, queued := a.Stats(); queued != 2 {
		t.Fatalf("queuedEver = %d, want 2", queued)
	}
	big.Release()
	small.Release()
	if got := a.Granted(); got != 0 {
		t.Fatalf("granted after all releases = %d, want 0", got)
	}
}

// TestAdmissionTimeout: a queued query whose context expires leaves the
// queue with an error and without leaking budget, and its departure
// unblocks waiters behind it.
func TestAdmissionTimeout(t *testing.T) {
	a := NewAdmission(100)
	hold, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := a.Acquire(ctx, 50); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("timed-out acquire returned %v, want deadline exceeded", err)
	}
	if got := a.QueueLen(); got != 0 {
		t.Fatalf("queue length after timeout = %d, want 0", got)
	}
	hold.Release()
	g, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
}

// TestAdmissionCancelQueuedUnblocksSuccessor: cancelling the queue head
// must not leave successors stuck behind its corpse.
func TestAdmissionCancelQueuedUnblocksSuccessor(t *testing.T) {
	a := NewAdmission(100)
	hold, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	headCtx, cancelHead := context.WithCancel(context.Background())
	headErr := make(chan error, 1)
	go func() {
		_, err := a.Acquire(headCtx, 100)
		headErr <- err
	}()
	waitFor(t, func() bool { return a.QueueLen() == 1 })
	got := make(chan *Grant, 1)
	go func() {
		g, err := a.Acquire(context.Background(), 10)
		if err != nil {
			t.Error(err)
		}
		got <- g
	}()
	waitFor(t, func() bool { return a.QueueLen() == 2 })

	cancelHead()
	if err := <-headErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled head returned %v, want context.Canceled", err)
	}
	// The successor is still blocked — strict FIFO, budget exhausted — but
	// only on real demand, not on the abandoned head.
	hold.Release()
	select {
	case g := <-got:
		g.Release()
	case <-time.After(time.Second):
		t.Fatal("successor still blocked after the abandoned head was compacted")
	}
}

// TestAdmissionReleaseIdempotent: double release must not double-credit
// the budget.
func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := NewAdmission(100)
	g, err := a.Acquire(context.Background(), 60)
	if err != nil {
		t.Fatal(err)
	}
	g.Release()
	g.Release()
	if got := a.Granted(); got != 0 {
		t.Fatalf("granted = %d after double release, want 0", got)
	}
	// A second acquire-release cycle still balances.
	g2, err := a.Acquire(context.Background(), 100)
	if err != nil {
		t.Fatal(err)
	}
	g2.Release()
	if got := a.Granted(); got != 0 {
		t.Fatalf("granted = %d, want 0", got)
	}
}

// TestAdmissionNil: a nil controller is the unlimited convention end to
// end.
func TestAdmissionNil(t *testing.T) {
	var a *Admission
	g, err := a.Acquire(context.Background(), 1<<40)
	if err != nil {
		t.Fatal(err)
	}
	if g.Gov() != nil {
		t.Fatal("nil admission produced a governor")
	}
	g.Release() // must not panic
	if a.Budget() != 0 || a.Granted() != 0 || a.QueueLen() != 0 || a.InUse() != 0 || a.Peak() != 0 {
		t.Fatal("nil admission reported non-zero stats")
	}
}

// TestAdmissionGrantRaceWithCancel: hammer concurrent acquires against
// releases and cancellations; afterwards the budget must balance to zero.
// Run with -race this doubles as the controller's data-race check.
func TestAdmissionGrantRaceWithCancel(t *testing.T) {
	a := NewAdmission(64)
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				ctx := context.Background()
				if i%3 == 0 {
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(j%5)*time.Millisecond)
					defer cancel()
				}
				g, err := a.Acquire(ctx, int64(1+(i*7+j)%40))
				if err != nil {
					continue
				}
				gov := g.Gov()
				if gov.Reserve(1) {
					gov.Release(1)
				}
				g.Release()
			}
		}(i)
	}
	wg.Wait()
	if got := a.Granted(); got != 0 {
		t.Fatalf("granted after all goroutines exited = %d, want 0", got)
	}
	if got := a.InUse(); got != 0 {
		t.Fatalf("ledger in-use after all goroutines exited = %d, want 0", got)
	}
	if a.Peak() > a.Budget() {
		t.Fatalf("ledger peak %d exceeded global budget %d with no forced slack in play",
			a.Peak(), a.Budget())
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
