package physical

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
)

func iv(v int64) types.Value  { return types.NewInt(v) }
func sv(v string) types.Value { return types.NewString(v) }

// memSource is an in-memory Source for tests.
type memSource map[string]struct {
	schema types.Schema
	rows   [][]types.Value
}

func (m memSource) Resolve(name string) (types.Schema, [][]types.Value, error) {
	t, ok := m[name]
	if !ok {
		return types.Schema{}, nil, &unknownTable{name}
	}
	return t.schema, t.rows, nil
}

type unknownTable struct{ name string }

func (e *unknownTable) Error() string { return "unknown table " + e.name }

func (m memSource) put(name string, attrs []string, rows [][]types.Value) {
	m[name] = struct {
		schema types.Schema
		rows   [][]types.Value
	}{types.Schema{Name: name, Attrs: attrs}, rows}
}

func multiset(rows [][]types.Value) map[string]int {
	out := make(map[string]int, len(rows))
	for _, r := range rows {
		out[types.Tuple(r).Key()]++
	}
	return out
}

func sameBag(t *testing.T, a, b [][]types.Value) {
	t.Helper()
	ma, mb := multiset(a), multiset(b)
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for k, n := range ma {
		if mb[k] != n {
			t.Fatalf("bag mismatch at key %q: %d vs %d", k, n, mb[k])
		}
	}
}

func scanOf(rows [][]types.Value, attrs ...string) *Scan {
	return NewScan("t", types.Schema{Name: "t", Attrs: attrs}, rows)
}

// randomTable builds rows with a key column drawn from a small domain
// (including NULLs, which must never join) and a payload column.
func randomTable(rng *rand.Rand, n, domain int) [][]types.Value {
	rows := make([][]types.Value, n)
	for i := range rows {
		key := types.Null()
		if rng.Intn(10) > 0 {
			key = iv(int64(rng.Intn(domain)))
		}
		rows[i] = []types.Value{key, iv(int64(i))}
	}
	return rows
}

func TestHashVsNestedLoopRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	eq := algebra.Bin{Op: algebra.OpEq,
		L: algebra.Col{Idx: 0, Name: "k"},
		R: algebra.Col{Idx: 2, Name: "k"},
	}
	for trial := 0; trial < 25; trial++ {
		l := randomTable(rng, rng.Intn(40), 1+rng.Intn(6))
		r := randomTable(rng, rng.Intn(40), 1+rng.Intn(6))
		hj := NewHashJoin(scanOf(l, "k", "p"), scanOf(r, "k", "q"), []int{0}, []int{0}, nil)
		nl := NewNestedLoopJoin(scanOf(l, "k", "p"), scanOf(r, "k", "q"), eq)
		hrows, err := Drain(hj)
		if err != nil {
			t.Fatal(err)
		}
		nrows, err := Drain(nl)
		if err != nil {
			t.Fatal(err)
		}
		sameBag(t, hrows, nrows)
	}
}

func TestJoinsOverEmptyInputs(t *testing.T) {
	some := [][]types.Value{{iv(1), iv(10)}, {iv(2), iv(20)}}
	none := [][]types.Value{}
	cases := []struct{ l, r [][]types.Value }{
		{none, some}, {some, none}, {none, none},
	}
	for i, c := range cases {
		hj := NewHashJoin(scanOf(c.l, "k", "p"), scanOf(c.r, "k", "q"), []int{0}, []int{0}, nil)
		rows, err := Drain(hj)
		if err != nil || len(rows) != 0 {
			t.Errorf("case %d: hash join over empty input: rows=%d err=%v", i, len(rows), err)
		}
		nl := NewNestedLoopJoin(scanOf(c.l, "k", "p"), scanOf(c.r, "k", "q"), nil)
		rows, err = Drain(nl)
		if err != nil || len(rows) != 0 {
			t.Errorf("case %d: nested-loop join over empty input: rows=%d err=%v", i, len(rows), err)
		}
	}
}

func TestLowerValidatesPlans(t *testing.T) {
	src := memSource{}
	src.put("r", []string{"a", "b"}, [][]types.Value{{iv(1), iv(2)}})
	src.put("s", []string{"c"}, [][]types.Value{{iv(3)}})
	scanR := &algebra.Scan{Table: "r", TblSchema: types.NewSchema("r", "a", "b")}
	scanS := &algebra.Scan{Table: "s", TblSchema: types.NewSchema("s", "c")}

	cases := []struct {
		name string
		plan algebra.Node
		want string
	}{
		{"unknown table",
			&algebra.Scan{Table: "zzz"}, "unknown table"},
		{"scan arity mismatch",
			&algebra.Scan{Table: "r", TblSchema: types.NewSchema("r", "a", "b", "ghost")},
			"plan expects 3 columns"},
		{"join key count mismatch",
			&algebra.Join{Left: scanR, Right: scanS, EquiL: []int{0, 1}, EquiR: []int{0}},
			"left keys"},
		{"join key out of range",
			&algebra.Join{Left: scanR, Right: scanS, EquiL: []int{0}, EquiR: []int{5}},
			"out of range"},
		{"residual out of range",
			&algebra.Join{Left: scanR, Right: scanS,
				Residual: algebra.Col{Idx: 9, Name: "x"}},
			"references column 9"},
		{"union arity mismatch",
			&algebra.UnionAll{Left: scanR, Right: scanS}, "arity mismatch"},
		{"filter column out of range",
			&algebra.Filter{Input: scanS, Pred: algebra.Col{Idx: 3, Name: "x"}},
			"references column 3"},
		{"projection name count mismatch",
			&algebra.Project{Input: scanS, Exprs: []algebra.Expr{algebra.Col{Idx: 0}}, Names: []string{"a", "b"}},
			"1 expressions but 2 names"},
	}
	for _, c := range cases {
		_, err := Lower(c.plan, src)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want substring %q", c.name, err, c.want)
		}
	}
}

func TestDistinctAndAggregateOverZeroRows(t *testing.T) {
	empty := scanOf(nil, "a")
	rows, err := Drain(&Distinct{Input: empty})
	if err != nil || len(rows) != 0 {
		t.Errorf("distinct over empty: rows=%d err=%v", len(rows), err)
	}

	// A global aggregate over zero rows still emits one row: COUNT is 0,
	// SUM/MIN/MAX/AVG are NULL.
	aggs := []algebra.AggSpec{
		{Func: algebra.AggCount, Star: true, Name: "count(*)"},
		{Func: algebra.AggSum, Arg: algebra.Col{Idx: 0, Name: "a"}, Name: "sum(a)"},
		{Func: algebra.AggMin, Arg: algebra.Col{Idx: 0, Name: "a"}, Name: "min(a)"},
	}
	global := NewHashAggregate(scanOf(nil, "a"), nil, nil, aggs)
	rows, err = Drain(global)
	if err != nil || len(rows) != 1 {
		t.Fatalf("global aggregate over empty: rows=%d err=%v", len(rows), err)
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() || !rows[0][2].IsNull() {
		t.Errorf("global aggregate row = %v", rows[0])
	}

	// A grouped aggregate over zero rows emits zero groups.
	grouped := NewHashAggregate(scanOf(nil, "a"),
		[]algebra.Expr{algebra.Col{Idx: 0, Name: "a"}}, []string{"a"}, aggs)
	rows, err = Drain(grouped)
	if err != nil || len(rows) != 0 {
		t.Errorf("grouped aggregate over empty: rows=%d err=%v", len(rows), err)
	}
}

// countingOp wraps an operator and counts Next calls.
type countingOp struct {
	Operator
	calls int
}

func (c *countingOp) Next() (*Batch, error) {
	c.calls++
	return c.Operator.Next()
}

func TestLimitTerminatesEarlyAndCopies(t *testing.T) {
	rows := [][]types.Value{{iv(1)}, {iv(2)}, {iv(3)}, {iv(4)}, {iv(5)}}
	scan := scanOf(rows, "a")
	scan.BatchSize = 2 // 3 batches of ≤2 rows
	src := &countingOp{Operator: scan}
	lim := &Limit{Input: src, N: 2}
	out, err := Drain(lim)
	if err != nil || len(out) != 2 {
		t.Fatalf("limit: rows=%d err=%v", len(out), err)
	}
	if src.calls != 1 {
		t.Errorf("limit pulled %d batches from its input, want exactly 1", src.calls)
	}
	// Emitted rows must not alias the scanned storage: mutating the output
	// must leave the base rows intact (regression for the seed executor,
	// which returned a slice of the input's backing array).
	out[0][0] = iv(99)
	if rows[0][0].Int() != 1 {
		t.Error("limit output aliases the source rows")
	}
}

func TestSortRunsMergeStable(t *testing.T) {
	// Keys with duplicates; payload records arrival order. RunSize 2 forces
	// a multi-run merge.
	var rows [][]types.Value
	keys := []int64{3, 1, 2, 1, 3, 2, 1, 2, 3, 1}
	for i, k := range keys {
		rows = append(rows, []types.Value{iv(k), iv(int64(i))})
	}
	s := &Sort{Input: scanOf(rows, "k", "ord"),
		Keys:    []algebra.SortKey{{Expr: algebra.Col{Idx: 0, Name: "k"}}},
		RunSize: 2}
	out, err := Drain(s)
	if err != nil || len(out) != len(rows) {
		t.Fatalf("sort: rows=%d err=%v", len(out), err)
	}
	lastKey, lastOrd := int64(-1), int64(-1)
	for _, r := range out {
		k, ord := r[0].Int(), r[1].Int()
		if k < lastKey {
			t.Fatalf("not sorted: %v", out)
		}
		if k == lastKey && ord < lastOrd {
			t.Fatalf("not stable within key %d: %v", k, out)
		}
		lastKey, lastOrd = k, ord
	}
}

func TestUnionAllAndDistinctStreaming(t *testing.T) {
	l := scanOf([][]types.Value{{iv(1)}, {iv(2)}}, "a")
	r := scanOf([][]types.Value{{iv(2)}, {iv(3)}}, "a")
	rows, err := Drain(&Distinct{Input: &UnionAll{Left: l, Right: r}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("distinct(union) rows = %d, want 3", len(rows))
	}
	// First occurrence wins, in stream order.
	want := []int64{1, 2, 3}
	for i, r := range rows {
		if r[0].Int() != want[i] {
			t.Errorf("row %d = %v, want %d", i, r[0], want[i])
		}
	}
}

func TestExplainShapes(t *testing.T) {
	src := memSource{}
	src.put("r", []string{"a"}, nil)
	src.put("s", []string{"b"}, nil)
	scanR := &algebra.Scan{Table: "r", TblSchema: types.NewSchema("r", "a")}
	scanS := &algebra.Scan{Table: "s", TblSchema: types.NewSchema("s", "b")}

	hash := &algebra.Join{Left: scanR, Right: scanS, EquiL: []int{0}, EquiR: []int{0}}
	op, err := Lower(hash, src)
	if err != nil {
		t.Fatal(err)
	}
	if s := Explain(op); !strings.Contains(s, "HashJoin") {
		t.Errorf("explain missing HashJoin:\n%s", s)
	}

	theta := &algebra.Join{Left: scanR, Right: scanS,
		Residual: algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 1}}}
	op, err = Lower(theta, src)
	if err != nil {
		t.Fatal(err)
	}
	if s := Explain(op); !strings.Contains(s, "NestedLoopJoin") {
		t.Errorf("explain missing NestedLoopJoin:\n%s", s)
	}
}
