package physical

import (
	"fmt"
	"strings"

	"repro/internal/algebra"
)

// Explain renders a physical operator tree as an indented plan, one operator
// per line — the shape tests and EXPLAIN output both read this.
func Explain(op Operator) string {
	var sb strings.Builder
	explain(&sb, op, 0)
	return sb.String()
}

func explain(sb *strings.Builder, op Operator, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	switch o := op.(type) {
	case *Scan:
		fmt.Fprintf(sb, "Scan(%s)\n", o.Table)
	case *Filter:
		fmt.Fprintf(sb, "Filter[%s]\n", o.Pred)
		explain(sb, o.Input, depth+1)
	case *Project:
		parts := make([]string, len(o.Exprs))
		for i, e := range o.Exprs {
			parts[i] = fmt.Sprintf("%s AS %s", e, o.Names[i])
		}
		fmt.Fprintf(sb, "Project[%s]\n", strings.Join(parts, ", "))
		explain(sb, o.Input, depth+1)
	case *HashJoin:
		res := ""
		if o.Residual != nil {
			res = fmt.Sprintf(", residual %s", o.Residual)
		}
		fmt.Fprintf(sb, "HashJoin[L%v = R%v%s]\n", o.EquiL, o.EquiR, res)
		explain(sb, o.Left, depth+1)
		explain(sb, o.Right, depth+1)
	case *NestedLoopJoin:
		pred := "true"
		if o.Pred != nil {
			pred = o.Pred.String()
		}
		fmt.Fprintf(sb, "NestedLoopJoin[%s]\n", pred)
		explain(sb, o.Left, depth+1)
		explain(sb, o.Right, depth+1)
	case *HashAggregate:
		keys := make([]string, len(o.GroupBy))
		for i, e := range o.GroupBy {
			keys[i] = e.String()
		}
		aggs := make([]string, len(o.Aggs))
		for i, a := range o.Aggs {
			aggs[i] = a.String()
		}
		fmt.Fprintf(sb, "HashAggregate[by %s; %s]\n",
			strings.Join(keys, ","), strings.Join(aggs, ","))
		explain(sb, o.Input, depth+1)
	case *Sort:
		keys := make([]string, len(o.Keys))
		for i, k := range o.Keys {
			dir := "asc"
			if k.Desc {
				dir = "desc"
			}
			keys[i] = fmt.Sprintf("%s %s", k.Expr, dir)
		}
		fmt.Fprintf(sb, "Sort[%s]\n", strings.Join(keys, ", "))
		explain(sb, o.Input, depth+1)
	case *Limit:
		fmt.Fprintf(sb, "Limit[%d]\n", o.N)
		explain(sb, o.Input, depth+1)
	case *UnionAll:
		sb.WriteString("UnionAll\n")
		explain(sb, o.Left, depth+1)
		explain(sb, o.Right, depth+1)
	case *Distinct:
		sb.WriteString("Distinct\n")
		explain(sb, o.Input, depth+1)
	case *FusedPipeline:
		// One node for the whole collapsed chain; a probe stage also shows
		// the join's build subtree, like HashJoinProbe does.
		fmt.Fprintf(sb, "FusedPipeline[%s]\n", strings.Join(o.Ops, " → "))
		if o.Probe != nil {
			sb.WriteString(strings.Repeat("  ", depth+1))
			sb.WriteString("build:\n")
			explain(sb, o.Probe.Build.Input, depth+2)
		}
	case *Gather:
		// All workers run identical pipeline copies; print worker 0's.
		fmt.Fprintf(sb, "Gather[dop=%d, morsel=%d]\n", o.DOP(), o.MorselSize())
		explain(sb, o.Workers[0].Pipe, depth+1)
	case *MorselScan:
		fmt.Fprintf(sb, "MorselScan(%s)\n", o.Table)
	case *HashJoinProbe:
		res := ""
		if o.Residual != nil {
			res = fmt.Sprintf(", residual %s", o.Residual)
		}
		fmt.Fprintf(sb, "HashJoinProbe[L%v = R%v%s]\n", o.EquiL, o.Build.Keys, res)
		explain(sb, o.Input, depth+1)
		sb.WriteString(strings.Repeat("  ", depth+1))
		sb.WriteString("build:\n")
		explain(sb, o.Build.Input, depth+2)
	case *FusedAggregate:
		fmt.Fprintf(sb, "FusedAggregate[%s; by %s; %s]\n",
			strings.Join(o.Ops, " → "), exprList(o.GroupBy), aggList(o.Aggs))
	case *ParallelFusedAggregate:
		fmt.Fprintf(sb, "ParallelFusedAggregate[dop=%d; %s; by %s; %s]\n",
			o.DOP(), strings.Join(o.Ops, " → "), exprList(o.GroupBy), aggList(o.Aggs))
	case *ParallelHashAggregate:
		keys := make([]string, len(o.GroupBy))
		for i, e := range o.GroupBy {
			keys[i] = e.String()
		}
		aggs := make([]string, len(o.Aggs))
		for i, a := range o.Aggs {
			aggs[i] = a.String()
		}
		fmt.Fprintf(sb, "ParallelHashAggregate[dop=%d; by %s; %s]\n",
			o.DOP(), strings.Join(keys, ","), strings.Join(aggs, ","))
		explain(sb, o.workers[0].pipe, depth+1)
	default:
		fmt.Fprintf(sb, "%T\n", op)
	}
}

// exprList renders expressions comma-joined, as the aggregate nodes print
// their group-by keys.
func exprList(exprs []algebra.Expr) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = e.String()
	}
	return strings.Join(parts, ",")
}

// aggList renders aggregate specs comma-joined.
func aggList(aggs []algebra.AggSpec) string {
	parts := make([]string, len(aggs))
	for i, a := range aggs {
		parts[i] = a.String()
	}
	return strings.Join(parts, ",")
}
