package physical

import (
	"fmt"

	"repro/internal/algebra"
)

// Validate checks a logical plan's internal consistency against its compiled
// (static) schemas: expression column references in range, join keys paired
// and in range, projection expression/name counts equal, union arities
// matching. It returns whether the plan is optimizable — false when any scan
// lacks a compiled schema (arity 0), in which case static column positions
// are unknowable, Optimize must be skipped, and lowering-time validation
// against the runtime catalog takes over. Optimize itself assumes a
// validated plan and may panic on malformed input.
func Validate(n algebra.Node) (bool, error) {
	known, _, err := validateNode(n)
	return known, err
}

// validateNode reports whether the subtree's schema is statically known, its
// output arity, and any consistency error detectable so far.
func validateNode(n algebra.Node) (known bool, arity int, err error) {
	switch node := n.(type) {
	case *algebra.Scan:
		a := node.TblSchema.Arity()
		return a > 0, a, nil

	case *algebra.Filter:
		known, arity, err = validateNode(node.Input)
		if err == nil && known {
			err = checkCols(node.Pred, arity, "filter predicate")
		}
		return known, arity, err

	case *algebra.Project:
		known, arity, err = validateNode(node.Input)
		if err != nil {
			return known, arity, err
		}
		if len(node.Exprs) != len(node.Names) {
			return known, arity, fmt.Errorf("physical: projection has %d expressions but %d names",
				len(node.Exprs), len(node.Names))
		}
		if known {
			for _, e := range node.Exprs {
				if err := checkCols(e, arity, "projection"); err != nil {
					return known, arity, err
				}
			}
		}
		return known, len(node.Exprs), nil

	case *algebra.Join:
		lk, la, err := validateNode(node.Left)
		if err != nil {
			return false, 0, err
		}
		rk, ra, err := validateNode(node.Right)
		if err != nil {
			return false, 0, err
		}
		if len(node.EquiL) != len(node.EquiR) {
			return false, 0, fmt.Errorf("physical: join has %d left keys but %d right keys",
				len(node.EquiL), len(node.EquiR))
		}
		if lk {
			for _, i := range node.EquiL {
				if i < 0 || i >= la {
					return false, 0, fmt.Errorf("physical: join key %d out of range for left arity %d", i, la)
				}
			}
		}
		if rk {
			for _, i := range node.EquiR {
				if i < 0 || i >= ra {
					return false, 0, fmt.Errorf("physical: join key %d out of range for right arity %d", i, ra)
				}
			}
		}
		if lk && rk && node.Residual != nil {
			if err := checkCols(node.Residual, la+ra, "join residual"); err != nil {
				return false, 0, err
			}
		}
		return lk && rk, la + ra, nil

	case *algebra.UnionAll:
		lk, la, err := validateNode(node.Left)
		if err != nil {
			return false, 0, err
		}
		rk, ra, err := validateNode(node.Right)
		if err != nil {
			return false, 0, err
		}
		if lk && rk && la != ra {
			return false, 0, fmt.Errorf("physical: UNION ALL arity mismatch: %d vs %d", la, ra)
		}
		return lk && rk, la, nil

	case *algebra.Aggregate:
		known, arity, err = validateNode(node.Input)
		if err != nil {
			return known, arity, err
		}
		if known {
			for _, e := range node.GroupBy {
				if err := checkCols(e, arity, "group-by key"); err != nil {
					return known, arity, err
				}
			}
			for _, a := range node.Aggs {
				if a.Arg != nil {
					if err := checkCols(a.Arg, arity, "aggregate argument"); err != nil {
						return known, arity, err
					}
				}
			}
		}
		return known, len(node.GroupNames) + len(node.Aggs), nil

	case *algebra.Sort:
		known, arity, err = validateNode(node.Input)
		if err == nil && known {
			for _, k := range node.Keys {
				if err = checkCols(k.Expr, arity, "sort key"); err != nil {
					break
				}
			}
		}
		return known, arity, err

	case *algebra.Limit:
		return validateNode(node.Input)

	case *algebra.Distinct:
		return validateNode(node.Input)

	default:
		// Unknown node types: not statically understood, never optimized.
		return false, n.Schema().Arity(), nil
	}
}
