package physical

import (
	"math"
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

// aggFuzzSource is a one-table Source with columnar storage, the shape the
// fused-aggregate lowering requires.
type aggFuzzSource struct {
	schema types.Schema
	rows   [][]types.Value
	cols   *vector.Columns
}

func (s aggFuzzSource) Resolve(string) (types.Schema, [][]types.Value, error) {
	return s.schema, s.rows, nil
}

func (s aggFuzzSource) ResolveColumns(string) (*vector.Columns, bool) { return s.cols, true }

// aggFuzzDec decodes fuzz bytes into values, expressions, and plans. Runs
// out of data gracefully (zero bytes forever).
type aggFuzzDec struct {
	data []byte
	pos  int
}

func (d *aggFuzzDec) byte() byte {
	if d.pos >= len(d.data) {
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

// value draws from a pool that stresses every accumulation arm: NULLs,
// small and past-2^53 integers, NaN/±0/±Inf floats, strings, booleans.
func (d *aggFuzzDec) value() types.Value {
	const big = int64(1) << 53
	switch d.byte() % 6 {
	case 0:
		return types.Null()
	case 1:
		return types.NewInt(int64(int8(d.byte())))
	case 2:
		return types.NewInt(big + int64(int8(d.byte())))
	case 3:
		fs := []float64{0, math.Copysign(0, -1), 1.5, -2.25, math.NaN(),
			math.Inf(1), math.Inf(-1), 3}
		return types.NewFloat(fs[int(d.byte())%len(fs)])
	case 4:
		return types.NewString(string(rune('a' + d.byte()%5)))
	default:
		return types.NewBool(d.byte()%2 == 0)
	}
}

func (d *aggFuzzDec) expr(arity, depth int) algebra.Expr {
	if depth <= 0 || d.byte()%3 == 0 {
		if d.byte()%4 == 0 {
			return algebra.Const{V: d.value()}
		}
		return algebra.Col{Idx: int(d.byte()) % arity}
	}
	ops := []algebra.BinOp{algebra.OpAdd, algebra.OpSub, algebra.OpMul,
		algebra.OpDiv, algebra.OpLt, algebra.OpLe, algebra.OpEq, algebra.OpAnd}
	op := ops[int(d.byte())%len(ops)]
	return algebra.Bin{Op: op, L: d.expr(arity, depth-1), R: d.expr(arity, depth-1)}
}

// FuzzFusedAgg decodes a random table and a random (optionally filtered,
// optionally grouped) aggregate plan, and requires the fused lowering —
// serial FusedAggregate and morsel-parallel ParallelFusedAggregate — to
// produce byte-identical rows, in identical order, to the unfused serial
// engine over the same catalog stripped of columns. Plans whose expressions
// have no columnar kernels simply decline fusion and still must agree (the
// fallback composes).
func FuzzFusedAgg(f *testing.F) {
	f.Add([]byte{0x03, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09})
	f.Add([]byte("fused-aggregate-agreement"))
	f.Fuzz(func(t *testing.T, data []byte) {
		d := &aggFuzzDec{data: data}
		arity := 1 + int(d.byte())%3
		nRows := int(d.byte()) % 48
		rows := make([][]types.Value, nRows)
		for i := range rows {
			row := make([]types.Value, arity)
			for j := range row {
				row[j] = d.value()
			}
			rows[i] = row
		}
		attrs := []string{"a", "b", "c"}[:arity]
		schema := types.Schema{Name: "t", Attrs: attrs}

		var input algebra.Node = &algebra.Scan{Table: "t", TblSchema: schema}
		for p := int(d.byte()) % 3; p > 0; p-- {
			input = &algebra.Filter{Input: input, Pred: d.expr(arity, 2)}
		}
		nGroup := int(d.byte()) % 3
		groupBy := make([]algebra.Expr, nGroup)
		groupNames := make([]string, nGroup)
		for i := range groupBy {
			groupBy[i] = d.expr(arity, 1)
			groupNames[i] = string(rune('g' + i))
		}
		funcs := []algebra.AggFunc{algebra.AggCount, algebra.AggSum,
			algebra.AggAvg, algebra.AggMin, algebra.AggMax}
		nAggs := 1 + int(d.byte())%3
		aggs := make([]algebra.AggSpec, nAggs)
		for i := range aggs {
			fn := funcs[int(d.byte())%len(funcs)]
			if fn == algebra.AggCount && d.byte()%2 == 0 {
				aggs[i] = algebra.AggSpec{Func: fn, Star: true, Name: string(rune('n' + i))}
				continue
			}
			aggs[i] = algebra.AggSpec{Func: fn, Arg: d.expr(arity, 2), Name: string(rune('n' + i))}
		}
		plan := &algebra.Aggregate{Input: input, GroupBy: groupBy,
			GroupNames: groupNames, Aggs: aggs}

		src := aggFuzzSource{schema: schema, rows: rows, cols: vector.FromRows(rows, arity)}
		drain := func(s Source, opt Options, what string) [][]types.Value {
			t.Helper()
			op, err := LowerOpts(plan, s, opt)
			if err != nil {
				t.Fatalf("%s: lower: %v", what, err)
			}
			out, err := Drain(op)
			if err != nil {
				t.Fatalf("%s: drain: %v", what, err)
			}
			return out
		}
		// The unfused reference runs the boxed engine — same rows, no columns
		// — at the same DOP and morsel geometry as the fused run: parallel
		// aggregation re-associates float sums across morsel partials (see
		// aggState.merge), identically on the fused and unfused paths, so the
		// exact reference for each run is its unfused twin.
		for _, opt := range []Options{
			{DOP: 1},
			{DOP: 2, MorselSize: 8, MinParallelRows: 1},
		} {
			want := drain(struct{ Source }{src}, opt, "unfused")
			opt.Fuse = true
			got := drain(src, opt, "fused")
			if len(got) != len(want) {
				t.Fatalf("dop %d: %d rows, want %d", opt.DOP, len(got), len(want))
			}
			for i := range got {
				if types.Tuple(got[i]).Key() != types.Tuple(want[i]).Key() {
					t.Fatalf("dop %d row %d: fused %v, want %v", opt.DOP, i, got[i], want[i])
				}
			}
		}
	})
}
