package physical

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
)

// TestScanBatchesAreSharedAndZeroCopy: a scan's batches must alias the
// table's row array (zero copy) and be marked shared so consumers never
// compact them in place.
func TestScanBatchesAreSharedAndZeroCopy(t *testing.T) {
	rows := [][]types.Value{{iv(1)}, {iv(2)}, {iv(3)}, {iv(4)}, {iv(5)}}
	s := scanOf(rows, "a")
	s.BatchSize = 2
	if err := s.Open(); err != nil {
		t.Fatal(err)
	}
	seen := 0
	for {
		b, err := s.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		if !b.Shared() {
			t.Fatal("scan batch not marked shared")
		}
		if b.Len() == 0 || b.Len() > 2 {
			t.Fatalf("batch size %d out of range", b.Len())
		}
		for i := 0; i < b.Len(); i++ {
			if &b.Row(i)[0] != &rows[seen][0] {
				t.Fatalf("row %d does not alias table storage", seen)
			}
			seen++
		}
	}
	if seen != len(rows) {
		t.Fatalf("scanned %d rows, want %d", seen, len(rows))
	}
}

// TestFilterDoesNotCorruptSharedSpines: in-place compaction must never be
// applied to a scan's shared spine — the base table's row order has to
// survive a selective filter.
func TestFilterDoesNotCorruptSharedSpines(t *testing.T) {
	rows := [][]types.Value{{iv(1)}, {iv(2)}, {iv(3)}, {iv(4)}, {iv(5)}, {iv(6)}}
	f := &Filter{
		Input: scanOf(rows, "a"),
		Pred: algebra.Bin{Op: algebra.OpEq,
			L: algebra.Bin{Op: algebra.OpMod, L: algebra.Col{Idx: 0}, R: algebra.Const{V: iv(2)}},
			R: algebra.Const{V: iv(0)}},
	}
	out, err := Drain(f)
	if err != nil || len(out) != 3 {
		t.Fatalf("filter: rows=%d err=%v", len(out), err)
	}
	for i, want := range []int64{1, 2, 3, 4, 5, 6} {
		if rows[i][0].Int() != want {
			t.Fatalf("base table corrupted at %d: %v", i, rows[i])
		}
	}
}

// TestApplySelInPlaceVsScratch pins the two compaction paths directly.
func TestApplySelInPlaceVsScratch(t *testing.T) {
	mk := func() [][]types.Value {
		return [][]types.Value{{iv(10)}, {iv(11)}, {iv(12)}, {iv(13)}}
	}

	// Owned spine: compacted in place, same batch returned.
	owned := NewBatch(4)
	for _, r := range mk() {
		owned.Append(r)
	}
	var scratch Batch
	got := applySel(owned, []int{1, 3}, &scratch)
	if got != owned || got.Len() != 2 || got.Row(0)[0].Int() != 11 || got.Row(1)[0].Int() != 13 {
		t.Fatalf("in-place compaction wrong: len=%d", got.Len())
	}

	// Shared spine: the aliased storage must be untouched; the scratch
	// batch receives the selection.
	backing := mk()
	shared := &Batch{}
	shared.SetShared(backing)
	got = applySel(shared, []int{0, 2}, &scratch)
	if got != &scratch || got.Len() != 2 || got.Row(1)[0].Int() != 12 {
		t.Fatalf("scratch compaction wrong: len=%d", got.Len())
	}
	for i, want := range []int64{10, 11, 12, 13} {
		if backing[i][0].Int() != want {
			t.Fatalf("shared backing mutated at %d", i)
		}
	}

	// Full selection: pass-through without copying, shared or not.
	shared.SetShared(backing)
	if got := applySel(shared, []int{0, 1, 2, 3}, &scratch); got != shared {
		t.Fatal("full selection should pass the batch through")
	}
}

// TestRowCountHints: operators that know their exact output size after Open
// must say so, and only then.
func TestRowCountHints(t *testing.T) {
	rows := [][]types.Value{{iv(1), iv(10)}, {iv(2), iv(20)}, {iv(3), iv(30)}}
	newScan := func() *Scan { return scanOf(rows, "k", "v") }

	check := func(name string, op Operator, want int) {
		t.Helper()
		if err := op.Open(); err != nil {
			t.Fatal(err)
		}
		defer op.Close()
		h, ok := op.(RowCountHinter)
		if !ok {
			t.Fatalf("%s: no RowCountHint", name)
		}
		n, known := h.RowCountHint()
		if !known || n != want {
			t.Errorf("%s: hint = %d/%v, want %d/true", name, n, known, want)
		}
	}

	check("scan", newScan(), 3)
	check("project", NewProject(newScan(),
		[]algebra.Expr{algebra.Col{Idx: 0}}, []string{"k"}), 3)
	check("limit", &Limit{Input: newScan(), N: 2}, 2)
	check("limit-loose", &Limit{Input: newScan(), N: 99}, 3)
	check("union", &UnionAll{Left: newScan(), Right: newScan()}, 6)
	check("sort", &Sort{Input: newScan(),
		Keys: []algebra.SortKey{{Expr: algebra.Col{Idx: 0}}}}, 3)
	check("aggregate", NewHashAggregate(newScan(),
		[]algebra.Expr{algebra.Col{Idx: 0}}, []string{"k"},
		[]algebra.AggSpec{{Func: algebra.AggCount, Star: true, Name: "n"}}), 3)

	// Data-dependent operators must not implement the hint.
	if _, ok := any(&Filter{Input: newScan(), Pred: algebra.Const{V: types.NewBool(true)}}).(RowCountHinter); ok {
		t.Error("filter should not hint")
	}
	if _, ok := any(&Distinct{Input: newScan()}).(RowCountHinter); ok {
		t.Error("distinct should not hint")
	}
}

// TestRowKeyEncoderCollisions pins the operator-level key builders against
// the collision traps from the satellite spec.
func TestRowKeyEncoderCollisions(t *testing.T) {
	k := func(row []types.Value, idx []int) string {
		return string(appendColsKey(nil, row, idx))
	}
	all2 := []int{0, 1}
	if k([]types.Value{sv("a"), sv("bc")}, all2) == k([]types.Value{sv("ab"), sv("c")}, all2) {
		t.Error(`("a","bc") and ("ab","c") collide`)
	}
	if k([]types.Value{types.Null()}, []int{0}) == k([]types.Value{sv("")}, []int{0}) {
		t.Error("NULL and empty string collide")
	}
	if string(appendRowKey(nil, []types.Value{iv(1)})) != k([]types.Value{iv(1)}, []int{0}) {
		t.Error("appendRowKey and appendColsKey disagree on the same column set")
	}
	// Equal-by-Compare values must agree, e.g. 1 and 1.0 group together.
	if k([]types.Value{iv(1)}, []int{0}) != k([]types.Value{types.NewFloat(1)}, []int{0}) {
		t.Error("int 1 and float 1.0 should share a key")
	}
	// Join keys: NULL never participates.
	if _, ok := appendJoinKey(nil, []types.Value{types.Null(), iv(1)}, []int{0}); ok {
		t.Error("NULL join key should report no key")
	}
	if key, ok := appendJoinKey(nil, []types.Value{types.Null(), iv(1)}, []int{1}); !ok || len(key) == 0 {
		t.Error("non-NULL join key should encode")
	}
}

// TestBatchBoundaryAgreement runs a pipeline at several scan batch sizes —
// including sizes that leave partial final batches — and requires identical
// ordered output.
func TestBatchBoundaryAgreement(t *testing.T) {
	var rows [][]types.Value
	for i := 0; i < 23; i++ {
		rows = append(rows, []types.Value{iv(int64(i % 5)), iv(int64(i))})
	}
	pred := algebra.Bin{Op: algebra.OpGt, L: algebra.Col{Idx: 1}, R: algebra.Const{V: iv(4)}}
	exprs := []algebra.Expr{algebra.Col{Idx: 0},
		algebra.Bin{Op: algebra.OpMul, L: algebra.Col{Idx: 1}, R: algebra.Const{V: iv(2)}}}

	var want [][]types.Value
	for _, size := range []int{1, 2, 3, 7, 23, 100, 0} {
		s := scanOf(rows, "k", "v")
		s.BatchSize = size
		got, err := Drain(NewProject(&Filter{Input: s, Pred: pred}, exprs, []string{"k", "v2"}))
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = got
			continue
		}
		if len(got) != len(want) {
			t.Fatalf("batch size %d: %d rows, want %d", size, len(got), len(want))
		}
		for i := range got {
			if !types.Tuple(got[i]).Equal(types.Tuple(want[i])) {
				t.Fatalf("batch size %d: row %d = %v, want %v", size, i, got[i], want[i])
			}
		}
	}
}
