package physical

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

// TestFilterDenseSelectionKeepsAsc pins the typed Filter's zero-copy window
// path: a selection that lands on one contiguous run of a batch degenerates
// to a slice of the source vectors instead of a gather, so sortedness
// metadata (Asc) survives the filter — which is what lets range-form fused
// predicates downstream keep binary-searching filtered data. The gathered
// (non-contiguous) path necessarily drops Asc; both are pinned, as is the
// source table staying intact (the windows are views, never gather targets).
func TestFilterDenseSelectionKeepsAsc(t *testing.T) {
	schema, rows, cols := colIntTable(2500)
	src := cols.Vecs[1].(*vector.Int64Vector)
	if !src.Asc {
		t.Fatal("test table's v column was not detected ascending")
	}
	v := algebra.Col{Idx: 1, Name: "v"}

	// v < 1500 selects a contiguous prefix of every batch it touches: the
	// second scan batch (rows 1024..2047) keeps a strict dense prefix.
	f := &Filter{
		Input: NewColumnarScan("t", schema, rows, cols),
		Pred:  algebra.Bin{Op: algebra.OpLt, L: v, R: algebra.Const{V: types.NewInt(1500)}},
	}
	if err := f.Open(); err != nil {
		t.Fatal(err)
	}
	seen, sawPartial := 0, false
	for {
		b, err := f.Next()
		if err != nil {
			t.Fatal(err)
		}
		if b == nil {
			break
		}
		bc := b.Cols()
		if bc == nil {
			t.Fatal("typed filter dropped its columnar view")
		}
		vv, ok := bc[1].(*vector.Int64Vector)
		if !ok {
			t.Fatalf("filtered v column is %T, want *Int64Vector", bc[1])
		}
		if !vv.Asc {
			t.Fatalf("dense filter output lost Asc at row %d", seen)
		}
		if b.Len() < DefaultBatchSize {
			sawPartial = true
		}
		seen += b.Len()
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if seen != 1500 {
		t.Fatalf("filter passed %d rows, want 1500", seen)
	}
	if !sawPartial {
		t.Fatal("no batch exercised the strict dense-subset window path")
	}
	// The windows alias table storage; the filter must never have written
	// through them.
	for i, x := range src.Vals {
		if x != int64(i) {
			t.Fatalf("source column corrupted at %d: %d", i, x)
		}
	}

	// A scattered selection (k == 2 picks every 5th row) gathers into fresh
	// storage and correctly drops Asc on the still-ascending v column.
	f = &Filter{
		Input: NewColumnarScan("t", schema, rows, cols),
		Pred: algebra.Bin{Op: algebra.OpEq, L: algebra.Col{Idx: 0, Name: "k"},
			R: algebra.Const{V: types.NewInt(2)}},
	}
	if err := f.Open(); err != nil {
		t.Fatal(err)
	}
	b, err := f.Next()
	if err != nil || b == nil {
		t.Fatalf("scattered filter: batch %v err %v", b, err)
	}
	if vv := b.Cols()[1].(*vector.Int64Vector); vv.Asc {
		t.Fatal("gathered filter output kept Asc; gathers must drop it")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
