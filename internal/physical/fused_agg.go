package physical

import (
	"sync"

	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

// Fused aggregation: the Options.Fuse lowering extends past the first
// pipeline breaker, collapsing a maximal Scan→Filter→Project→Aggregate chain
// over a columnar table into one operator that folds group states straight
// off the source vectors. Per window the composed predicates select (range
// form or selection-vector form, exactly like FusedPipeline), the group-key
// and argument expressions evaluate unboxed, keys are encoded with the
// per-vector-type AppendElemKey fast paths, and the numeric aggregates
// accumulate into unboxed int64/float64 state — no intermediate batch, no
// boxed argument cell, and only one boxed representative row per distinct
// group.
//
// Fusion remains an execution strategy, never a semantics change. The folder
// reproduces aggState absorption rule for rule: NULL arguments are skipped,
// COUNT counts every non-null argument (strings and booleans included —
// those fall back to the boxed absorbValue arm), SUM/AVG keep the serial
// per-group addition order (rows ascending within each aggregate, and
// per-aggregate accumulators are independent, so float sums land on the
// identical last ulp), and MIN/MAX replicate types.Value.Compare — integer
// comparisons widen through float64 with ties keeping the incumbent, and
// NaN never replaces nor is replaced, exactly as Compare orders it. Group
// output order is the engine-wide first-seen order: the serial operator
// folds one whole-table window; the parallel one merges per-morsel partials
// in morsel sequence order via mergeSeqPartials, like ParallelHashAggregate.
// Under a memory governor fused aggregation declines and the governed
// (spilling) HashAggregate runs instead, exactly like the fused probe.

// fusedAggChain is a recognized Scan→Filter→Project→Aggregate chain: the
// underlying fusedChain with the aggregate's group-by keys and arguments
// composed down to expressions over the scan schema.
type fusedAggChain struct {
	table   string
	rows    [][]types.Value
	cols    *vector.Columns
	preds   []algebra.Expr
	groupBy []algebra.Expr // composed; empty for a global aggregate
	args    []algebra.Expr // composed per aggregate; nil for COUNT(*)
	aggs    []algebra.AggSpec
	ops     []string
	schema  types.Schema // output: group names then aggregate names
	nGroup  int
}

// fusedAggFor recognizes a fusable aggregate rooted at node: a fusable
// Scan→Filter→Project chain below, columnar kernels for every composed
// predicate, group key, and aggregate argument. ok is false — with no error
// — when the shape or kernels don't allow fusion; validation errors are the
// ones serial lowering would report. There is no worth gate: even a bare
// scan-aggregate saves the boxed batch stream and the per-row argument
// boxing, so a recognized chain always fuses.
func fusedAggFor(node *algebra.Aggregate, src Source) (*fusedAggChain, bool, error) {
	fc, ok, err := fuseChainFor(node.Input, src)
	if err != nil || !ok {
		return nil, false, err
	}
	if err := checkAggregate(node, len(fc.projs)); err != nil {
		return nil, false, err
	}
	for _, p := range fc.preds {
		if !algebra.Compile(p).CanSelectVec() {
			return nil, false, nil
		}
	}
	groupBy := make([]algebra.Expr, len(node.GroupBy))
	for i, e := range node.GroupBy {
		groupBy[i] = substCols(e, fc.projs)
		if !algebra.Compile(groupBy[i]).CanEvalVec() {
			return nil, false, nil
		}
	}
	args := make([]algebra.Expr, len(node.Aggs))
	for i, a := range node.Aggs {
		if a.Star {
			continue
		}
		args[i] = substCols(a.Arg, fc.projs)
		if !algebra.Compile(args[i]).CanEvalVec() {
			return nil, false, nil
		}
	}
	attrs := append([]string{}, node.GroupNames...)
	for _, a := range node.Aggs {
		attrs = append(attrs, a.Name)
	}
	return &fusedAggChain{
		table: fc.table, rows: fc.rows, cols: fc.cols,
		preds: fc.preds, groupBy: groupBy, args: args, aggs: node.Aggs,
		ops:    append(fc.ops[:len(fc.ops):len(fc.ops)], "aggregate"),
		schema: types.Schema{Attrs: attrs},
		nGroup: len(node.GroupBy),
	}, true, nil
}

// fusedAggFolder folds column windows into group states without boxing: the
// fused-aggregation core shared by the serial FusedAggregate (one whole-table
// window) and each ParallelFusedAggregate worker (one window per morsel).
// One folder belongs to one goroutine — its kernels are closures with private
// scratch, so parallel workers each build their own.
type fusedAggFolder struct {
	predProgs  []*algebra.Compiled
	groupProgs []*algebra.Compiled
	argProgs   []*algebra.Compiled // nil entries are COUNT(*)
	aggs       []algebra.AggSpec

	sel, sel2 []int
	keyVecs   []vector.Vector
	keyBuf    []byte
	slots     []*aggState // selected row → its group, in selection order
}

func newFusedAggFolder(preds, groupBy, args []algebra.Expr, aggs []algebra.AggSpec) *fusedAggFolder {
	f := &fusedAggFolder{
		predProgs:  algebra.CompileAll(preds),
		groupProgs: algebra.CompileAll(groupBy),
		argProgs:   make([]*algebra.Compiled, len(args)),
		aggs:       aggs,
		keyVecs:    make([]vector.Vector, len(groupBy)),
	}
	for i, e := range args {
		if e != nil {
			f.argProgs[i] = algebra.Compile(e)
		}
	}
	return f
}

// selectWindow mirrors FusedPipeline.selectWindow over the folder's own
// scratch: per-predicate unboxed selection, ascending intersection.
func (f *fusedAggFolder) selectWindow(cols []vector.Vector, n int) []int {
	sel, _ := f.predProgs[0].SelectTruthyVec(cols, n, f.sel[:0])
	for _, prog := range f.predProgs[1:] {
		if len(sel) == 0 {
			break
		}
		s2, _ := prog.SelectTruthyVec(cols, n, f.sel2[:0])
		f.sel2 = s2
		sel = intersectAsc(sel, s2)
	}
	f.sel = sel
	return sel
}

// sliceVecs is a zero-copy sub-window of an already-sliced column window
// (Columns.Slice for plain []vector.Vector).
func sliceVecs(cols []vector.Vector, lo, hi int) []vector.Vector {
	out := make([]vector.Vector, len(cols))
	for j, v := range cols {
		out[j] = v.Slice(lo, hi)
	}
	return out
}

// foldWindow absorbs one column window into groups, calling add (in
// first-seen order) for every group created along the way. The selection
// logic is FusedPipeline's: range form when every predicate resolves to a
// contiguous row range (ascending columns, binary search), otherwise
// selection vectors with dense-run degeneration. Pass 1 assigns every
// selected row its group (creating states first-seen); pass 2 accumulates
// each aggregate column-at-a-time through the unboxed per-kind loops.
func (f *fusedAggFolder) foldWindow(cols []vector.Vector, n int, groups map[string]*aggState, add func(key string, st *aggState)) {
	if n == 0 {
		return
	}
	lo, hi, ranged := 0, n, true
	for _, prog := range f.predProgs {
		plo, phi, ok := prog.SelectRangeVec(cols, n)
		if !ok {
			ranged = false
			break
		}
		lo, hi = max(lo, plo), min(hi, phi)
	}
	var sel []int
	if !ranged {
		f.sel = f.sel[:0]
		if len(f.predProgs) > 1 {
			f.sel2 = f.sel2[:0]
		}
		sel = f.selectWindow(cols, n)
		if len(sel) == 0 {
			return
		}
		if first := sel[0]; sel[len(sel)-1]-first == len(sel)-1 {
			lo, hi, ranged = first, first+len(sel), true
			sel = nil
		}
	} else if lo >= hi {
		return
	}
	win, m := cols, n
	count := len(sel)
	if ranged {
		if lo != 0 || hi != n {
			win, m = sliceVecs(cols, lo, hi), hi-lo
		}
		count = m
	}
	// In range form the kernels evaluate dense over the sub-window and rows
	// index it directly (sel == nil); in selection form they evaluate over
	// the whole window and rows index through sel.
	for g, prog := range f.groupProgs {
		f.keyVecs[g], _ = prog.EvalVec(win, m)
	}
	if cap(f.slots) < count {
		f.slots = make([]*aggState, count)
	}
	slots := f.slots[:count]
	for i := 0; i < count; i++ {
		pos := i
		if sel != nil {
			pos = sel[i]
		}
		buf := f.keyBuf[:0]
		for _, kv := range f.keyVecs {
			buf = kv.AppendElemKey(buf, pos)
			buf = append(buf, '|')
		}
		f.keyBuf = buf
		st, ok := groups[string(buf)]
		if !ok {
			groupRow := make([]types.Value, len(f.keyVecs))
			for g, kv := range f.keyVecs {
				groupRow[g] = kv.Value(pos)
			}
			st = newAggState(groupRow, len(f.aggs))
			key := string(buf)
			groups[key] = st
			add(key, st)
		}
		slots[i] = st
	}
	for a, prog := range f.argProgs {
		if prog == nil {
			for _, st := range slots {
				st.count[a]++ // COUNT(*) counts rows unconditionally
			}
			continue
		}
		av, _ := prog.EvalVec(win, m)
		f.absorbCol(a, av, slots, sel)
	}
}

// absorbCol folds one evaluated aggregate-argument column into the selected
// rows' states. The typed arms are aggState.absorbValue unboxed: skip NULL,
// count, sum (integer sums stay exact in int64, every numeric feeds the
// float sum in row order), and min/max with Compare's exact semantics —
// integers compare widened through float64 (ties keep the incumbent, which
// is also what Compare's 0 does), floats compare IEEE so NaN neither
// replaces nor is replaced. Strings, booleans, and mixed-kind columns take
// the boxed arm, which is absorbValue itself.
func (f *fusedAggFolder) absorbCol(a int, vec vector.Vector, slots []*aggState, sel []int) {
	switch tv := vec.(type) {
	case *vector.Int64Vector:
		for i, st := range slots {
			pos := i
			if sel != nil {
				pos = sel[i]
			}
			if tv.Null(pos) {
				continue
			}
			x := tv.Vals[pos]
			st.count[a]++
			st.sumI[a] += x
			st.sumF[a] += float64(x)
			if !st.seen[a] {
				v := types.NewInt(x)
				st.min[a], st.max[a] = v, v
				st.seen[a] = true
				continue
			}
			if float64(x) < st.min[a].Float() {
				st.min[a] = types.NewInt(x)
			}
			if float64(x) > st.max[a].Float() {
				st.max[a] = types.NewInt(x)
			}
		}
	case *vector.Float64Vector:
		for i, st := range slots {
			pos := i
			if sel != nil {
				pos = sel[i]
			}
			if tv.Null(pos) {
				continue
			}
			x := tv.Vals[pos]
			st.count[a]++
			st.isFloat[a] = true
			st.sumF[a] += x
			if !st.seen[a] {
				v := types.NewFloat(x)
				st.min[a], st.max[a] = v, v
				st.seen[a] = true
				continue
			}
			if x < st.min[a].Float() {
				st.min[a] = types.NewFloat(x)
			}
			if x > st.max[a].Float() {
				st.max[a] = types.NewFloat(x)
			}
		}
	default:
		for i, st := range slots {
			pos := i
			if sel != nil {
				pos = sel[i]
			}
			st.absorbValue(a, vec.Value(pos))
		}
	}
}

// FusedAggregate is the serial fused aggregate: the whole chain — scan,
// filters, projections, grouping, accumulation — runs as one fold over the
// resolved table's column vectors at Open, and Next streams the rendered
// group rows exactly like HashAggregate.
type FusedAggregate struct {
	Table   string
	GroupBy []algebra.Expr // composed over the scan schema
	Aggs    []algebra.AggSpec
	Preds   []algebra.Expr // composed over the scan schema
	Ops     []string       // collapsed chain, scan first — Explain renders this

	full   *vector.Columns
	args   []algebra.Expr
	schema types.Schema
	nGroup int

	folder *fusedAggFolder
	out    [][]types.Value
	pos    int
	b      Batch
}

// Schema implements Operator.
func (h *FusedAggregate) Schema() types.Schema { return h.schema }

// Open implements Operator: fold the single whole-table window and render
// the groups. Kernels compile on the first Open and are memoized.
func (h *FusedAggregate) Open() error {
	h.out, h.pos = nil, 0
	if h.folder == nil {
		h.folder = newFusedAggFolder(h.Preds, h.GroupBy, h.args, h.Aggs)
	}
	groups := make(map[string]*aggState)
	var states []*aggState // first-seen order
	h.folder.foldWindow(h.full.Vecs, h.full.N, groups, func(_ string, st *aggState) {
		states = append(states, st)
	})
	h.out = finishAggStates(states, h.nGroup == 0, h.Aggs, h.nGroup)
	return nil
}

// RowCountHint implements RowCountHinter: after Open the groups are
// materialized, so the count is exact.
func (h *FusedAggregate) RowCountHint() (int, bool) { return len(h.out) - h.pos, true }

// Next implements Operator.
func (h *FusedAggregate) Next() (*Batch, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	end := h.pos + DefaultBatchSize
	if end > len(h.out) {
		end = len(h.out)
	}
	h.b.SetShared(h.out[h.pos:end])
	h.pos = end
	return &h.b, nil
}

// Close implements Operator. A fused aggregate has no input operator; only
// the materialized output is released.
func (h *FusedAggregate) Close() error {
	h.out = nil
	return nil
}

// ParallelFusedAggregate is the morsel-parallel fused aggregate: DOP workers
// claim morsels straight off the shared source — folding is pure compute, so
// there is no per-worker operator pipeline at all — fold each morsel's
// column window into a private partial-state map with their own folder, and
// Open merges the per-morsel partials in morsel sequence order
// (mergeSeqPartials), which keeps the result a pure function of the input
// and the group order the serial engine's first-seen order, exactly like
// ParallelHashAggregate.
type ParallelFusedAggregate struct {
	Table   string
	GroupBy []algebra.Expr
	Aggs    []algebra.AggSpec
	Preds   []algebra.Expr
	Ops     []string

	args   []algebra.Expr
	schema types.Schema
	nGroup int
	dop    int
	src    *morselSource

	out [][]types.Value
	pos int
	b   Batch
}

// Schema implements Operator.
func (h *ParallelFusedAggregate) Schema() types.Schema { return h.schema }

// DOP reports the aggregate's worker count.
func (h *ParallelFusedAggregate) DOP() int { return h.dop }

// Open implements Operator: fan out, fold, merge in sequence order. Workers
// send one packet per claimed morsel; folding cannot fail, so there is no
// error path out of the workers.
func (h *ParallelFusedAggregate) Open() error {
	h.out, h.pos = nil, 0
	h.src.reset()
	ch := make(chan aggPacket, 2*h.dop)
	var wg sync.WaitGroup
	for i := 0; i < h.dop; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			folder := newFusedAggFolder(h.Preds, h.GroupBy, h.args, h.Aggs)
			for {
				seq, lo, hi, ok := h.src.claim()
				if !ok {
					return
				}
				groups := make(map[string]*aggState)
				var order []partialGroup
				folder.foldWindow(h.src.cols.Slice(lo, hi), hi-lo, groups,
					func(key string, st *aggState) {
						order = append(order, partialGroup{key: key, st: st})
					})
				ch <- aggPacket{seq: seq, groups: order}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(ch)
	}()
	bySeq := make(map[int][]partialGroup)
	for p := range ch {
		bySeq[p.seq] = p.groups
	}
	states := mergeSeqPartials(bySeq, h.src.nMorsels())
	h.out = finishAggStates(states, h.nGroup == 0, h.Aggs, h.nGroup)
	return nil
}

// RowCountHint implements RowCountHinter: after Open the groups are
// materialized, so the count is exact.
func (h *ParallelFusedAggregate) RowCountHint() (int, bool) { return len(h.out) - h.pos, true }

// Next implements Operator.
func (h *ParallelFusedAggregate) Next() (*Batch, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	end := h.pos + DefaultBatchSize
	if end > len(h.out) {
		end = len(h.out)
	}
	h.b.SetShared(h.out[h.pos:end])
	h.pos = end
	return &h.b, nil
}

// Close implements Operator.
func (h *ParallelFusedAggregate) Close() error {
	h.out = nil
	return nil
}

// lowerFusedAggregate lowers a fusable aggregate to the serial
// FusedAggregate. ok is false when the chain doesn't fuse; the caller falls
// back to the unfused HashAggregate over whatever its input lowers to.
func lowerFusedAggregate(node *algebra.Aggregate, src Source) (Operator, bool, error) {
	fa, ok, err := fusedAggFor(node, src)
	if err != nil || !ok {
		return nil, false, err
	}
	return &FusedAggregate{
		Table: fa.table, GroupBy: fa.groupBy, Aggs: fa.aggs, Preds: fa.preds,
		Ops: fa.ops, full: fa.cols, args: fa.args,
		schema: fa.schema, nGroup: fa.nGroup,
	}, true, nil
}

// lowerParallelFusedAggregate is the parallel twin: a ParallelFusedAggregate
// over a shared morsel source, gated on the table being big enough to split.
// A too-small table declines here and the serial fused hook catches it.
func lowerParallelFusedAggregate(node *algebra.Aggregate, src Source, opt Options) (Operator, bool, error) {
	fa, ok, err := fusedAggFor(node, src)
	if err != nil || !ok {
		return nil, false, err
	}
	if len(fa.rows) < opt.MinParallelRows {
		return nil, false, nil
	}
	return &ParallelFusedAggregate{
		Table: fa.table, GroupBy: fa.groupBy, Aggs: fa.aggs, Preds: fa.preds,
		Ops: fa.ops, args: fa.args, schema: fa.schema, nGroup: fa.nGroup,
		dop: opt.DOP,
		src: &morselSource{rows: fa.rows, size: opt.MorselSize, cols: fa.cols},
	}, true, nil
}
