package physical

import (
	"container/heap"
	"sort"

	"repro/internal/algebra"
	"repro/internal/types"
)

// DefaultSortRunSize is the number of rows sorted per run before a new run
// is started. Runs are merged with a loser-tree-style heap, so the operator
// is external-friendly: spilling a sorted run to disk and streaming it back
// would slot into runs without touching the merge or the comparator.
const DefaultSortRunSize = 1 << 16

// Sort orders the input by the keys. Open consumes the input's batches into
// sorted runs of at most RunSize rows (retaining the stable row slices;
// only the ephemeral batch spines are copied); Next streams the k-way merge
// of the runs in batches of up to DefaultBatchSize through a reused spine.
// The sort is stable: within a run sort.SliceStable preserves arrival
// order, and the merge breaks comparator ties by run index (runs are
// consecutive chunks of the input).
type Sort struct {
	Input   Operator
	Keys    []algebra.SortKey
	RunSize int // 0 means DefaultSortRunSize

	keyProgs []*algebra.Compiled
	runs     [][][]types.Value
	total    int
	h        *mergeHeap
	out      Batch
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.Input.Schema() }

// less orders rows by the compiled sort keys.
func (s *Sort) less(a, b []types.Value) bool {
	for i, k := range s.Keys {
		prog := s.keyProgs[i]
		c := prog.Eval(a).Compare(prog.Eval(b))
		if c != 0 {
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// Open implements Operator: it consumes the input into sorted runs and
// prepares the merge.
func (s *Sort) Open() error {
	s.runs, s.h, s.total = nil, nil, 0
	s.keyProgs = s.keyProgs[:0]
	for _, k := range s.Keys {
		s.keyProgs = append(s.keyProgs, algebra.Compile(k.Expr))
	}
	if err := s.Input.Open(); err != nil {
		return err
	}
	runSize := s.RunSize
	if runSize <= 0 {
		runSize = DefaultSortRunSize
	}
	var run [][]types.Value
	flush := func() {
		if len(run) == 0 {
			return
		}
		sort.SliceStable(run, func(i, j int) bool { return s.less(run[i], run[j]) })
		s.runs = append(s.runs, run)
		s.total += len(run)
		run = nil
	}
	for {
		b, err := s.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, row := range b.Rows() {
			run = append(run, row)
			if len(run) >= runSize {
				flush()
			}
		}
	}
	flush()
	s.h = &mergeHeap{sort: s}
	for i, r := range s.runs {
		s.h.items = append(s.h.items, mergeItem{run: i, rows: r})
	}
	heap.Init(s.h)
	return nil
}

// RowCountHint implements RowCountHinter: after Open every run is
// materialized, so the count is exact.
func (s *Sort) RowCountHint() (int, bool) { return s.total, true }

// Next implements Operator.
func (s *Sort) Next() (*Batch, error) {
	if s.h.Len() == 0 {
		return nil, nil
	}
	s.out.Reset()
	for s.h.Len() > 0 && s.out.Len() < DefaultBatchSize {
		top := &s.h.items[0]
		s.out.Append(top.rows[top.pos])
		top.pos++
		if top.pos >= len(top.rows) {
			heap.Pop(s.h)
		} else {
			heap.Fix(s.h, 0)
		}
	}
	return &s.out, nil
}

// Close implements Operator.
func (s *Sort) Close() error {
	s.runs, s.h = nil, nil
	return s.Input.Close()
}

// mergeItem is one run's cursor in the k-way merge.
type mergeItem struct {
	run  int
	rows [][]types.Value
	pos  int
}

// mergeHeap is a min-heap of run cursors ordered by their current row, with
// run index as the stability tie-break.
type mergeHeap struct {
	sort  *Sort
	items []mergeItem
}

func (h *mergeHeap) Len() int { return len(h.items) }

func (h *mergeHeap) Less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	ra, rb := a.rows[a.pos], b.rows[b.pos]
	if h.sort.less(ra, rb) {
		return true
	}
	if h.sort.less(rb, ra) {
		return false
	}
	return a.run < b.run
}

func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *mergeHeap) Push(x any) { h.items = append(h.items, x.(mergeItem)) }

func (h *mergeHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}
