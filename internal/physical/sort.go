package physical

import (
	"math"
	"sort"

	"repro/internal/algebra"
	"repro/internal/spill"
	"repro/internal/types"
)

// DefaultSortRunSize is the number of rows sorted per run before a new run
// is started. Runs are merged with a loser-tree-style heap, so the operator
// is external: under memory pressure (Mem) a sorted run is spilled to disk
// and streamed back frame by frame, slotting into the same k-way merge.
const DefaultSortRunSize = 1 << 16

// Sort orders the input by the keys. Open consumes the input's batches into
// sorted runs of at most RunSize rows (retaining the stable row slices;
// only the ephemeral batch spines are copied); Next streams the k-way merge
// of the runs in batches of up to DefaultBatchSize through a reused spine.
// The sort is stable: within a run sort.SliceStable preserves arrival
// order, and the merge breaks comparator ties by run index (runs are
// consecutive chunks of the input).
//
// With a memory governor (Mem non-nil, set by lowering when -mem-budget is
// configured), Open reserves the retained rows' estimated bytes; when a
// reservation fails, every in-memory run — sorted runs and the growing
// current run alike — is spilled to a temp file in SpillDir and its memory
// released, so the operator's working set stays at one run plus the merge
// cursors' resident frames. Because the final order of a stable sort is
// fully determined by (key, input position) and run indexes are input
// chunk positions, spilled and in-memory execution produce byte-identical
// output regardless of where the run boundaries fall. Rows decoded from a
// spill file are freshly allocated, so they satisfy the engine-wide
// row-stability rule like any other emitted row.
type Sort struct {
	Input    Operator
	Keys     []algebra.SortKey
	RunSize  int          // 0 means DefaultSortRunSize
	Mem      *MemGovernor // nil: never spill (today's in-memory behavior)
	SpillDir string       // temp dir for spilled runs; "" means os.TempDir()

	keyProgs []*algebra.Compiled
	runs     []sortRun
	total    int
	held     int64 // bytes currently reserved with Mem
	h        *mergeHeap
	sp       *spillSet
	out      Batch
}

// sortRun is one sorted run: resident rows, or a spill file once evicted.
type sortRun struct {
	rows  [][]types.Value
	run   *spill.Run // non-nil once evicted to disk
	bytes int64      // reserved estimate while resident
}

// Schema implements Operator.
func (s *Sort) Schema() types.Schema { return s.Input.Schema() }

// less orders rows by the compiled sort keys, under sortCompare's total
// order rather than raw Value.Compare.
func (s *Sort) less(a, b []types.Value) bool {
	for i, k := range s.Keys {
		prog := s.keyProgs[i]
		c := sortCompare(prog.Eval(a), prog.Eval(b))
		if c != 0 {
			if k.Desc {
				return c > 0
			}
			return c < 0
		}
	}
	return false
}

// sortCompare is Value.Compare strengthened to a total order for sorting:
// NaN keys sort after every other numeric (SQL's NaN-greatest convention).
// Raw Compare reports NaN equal to every numeric — not transitive (NaN = 1,
// NaN = 2, but 1 < 2) — and a stable sort over an inconsistent comparator
// makes output depend on where run boundaries fall, which would break the
// spilled/in-memory byte-identity contract. Predicate evaluation keeps raw
// Compare; only ordering is strengthened.
func sortCompare(a, b types.Value) int {
	if an, bn := isNaNKey(a), isNaNKey(b); an != bn && a.IsNumeric() && b.IsNumeric() {
		if an {
			return 1
		}
		return -1
	}
	return a.Compare(b)
}

func isNaNKey(v types.Value) bool {
	return v.Kind() == types.KindFloat && math.IsNaN(v.Float())
}

// sortRows stable-sorts one run in place.
func (s *Sort) sortRows(run [][]types.Value) {
	sort.SliceStable(run, func(i, j int) bool { return s.less(run[i], run[j]) })
}

// spillRun writes an already sorted run to a fresh temp file, releasing its
// reservation. The file is tracked by the operator's spill set and removed
// at Close.
func (s *Sort) spillRun(r *sortRun) error {
	if s.sp == nil {
		s.sp = newSpillSet(s.SpillDir, s.Mem)
	}
	w, err := s.sp.newWriter()
	if err != nil {
		return err
	}
	if err := w.AppendAll(r.rows); err != nil {
		return err
	}
	run, err := s.sp.finish(w)
	if err != nil {
		return err
	}
	r.run = run
	r.rows = nil
	s.Mem.Release(r.bytes)
	s.held -= r.bytes
	r.bytes = 0
	return nil
}

// Open implements Operator: it consumes the input into sorted runs —
// spilling them under memory pressure — and prepares the merge.
func (s *Sort) Open() error {
	s.runs, s.h, s.total, s.held = nil, nil, 0, 0
	s.sp = nil
	s.keyProgs = s.keyProgs[:0]
	for _, k := range s.Keys {
		s.keyProgs = append(s.keyProgs, algebra.Compile(k.Expr))
	}
	if err := s.Input.Open(); err != nil {
		return err
	}
	runSize := s.RunSize
	if runSize <= 0 {
		runSize = DefaultSortRunSize
		if s.Mem != nil {
			// Governed: let the budget set the run boundaries. Bigger runs
			// mean fewer spilled runs, and the merge phase holds one
			// resident frame per spilled run — so run count, not run size,
			// is what threatens the budget. Stable-sort output is a pure
			// function of (key, input position), so boundaries are free to
			// move.
			runSize = int(^uint(0) >> 1)
		}
	}
	var run [][]types.Value
	var runBytes int64
	flush := func() {
		if len(run) == 0 {
			return
		}
		s.sortRows(run)
		s.runs = append(s.runs, sortRun{rows: run, bytes: runBytes})
		run, runBytes = nil, 0
	}
	// spillAll evicts every resident run: the finished ones as they are,
	// the growing one sorted first. Run order (and therefore merge
	// tie-breaking) is unaffected — only residency changes.
	spillAll := func() error {
		// A cancelled query aborts before paying the eviction I/O; Close
		// releases the reservations and removes any spill files.
		if err := s.Mem.Err(); err != nil {
			return err
		}
		for i := range s.runs {
			if s.runs[i].rows == nil {
				continue
			}
			if err := s.spillRun(&s.runs[i]); err != nil {
				return err
			}
		}
		if len(run) > 0 {
			flush()
			if err := s.spillRun(&s.runs[len(s.runs)-1]); err != nil {
				return err
			}
		}
		return nil
	}
	for {
		b, err := s.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		for _, row := range b.Rows() {
			if s.Mem != nil {
				// Ungoverned sorts skip the estimator entirely — accounting
				// must cost nothing when -mem-budget is unset.
				bytes := RowMemSize(row)
				if !s.Mem.Reserve(bytes) {
					if err := spillAll(); err != nil {
						return err
					}
					// After a full spill the budget is free again; a row
					// larger than the whole budget still proceeds, tracked
					// as slack.
					if !s.Mem.Reserve(bytes) {
						s.Mem.Force(bytes)
					}
				}
				s.held += bytes
				runBytes += bytes
			}
			run = append(run, row)
			s.total++
			if len(run) >= runSize {
				flush()
			}
		}
	}
	flush()
	if s.Mem != nil && len(s.runs) > maxMergeFanIn {
		// Pathological budgets create dataBytes/budget runs; cap the final
		// merge's fan-in (open files, resident frames) with a cascade.
		// Resident runs are evicted first so the cascade sees disk runs
		// only. Order is preserved: the merge of a consecutive prefix of
		// runs is itself a sorted, stably tie-broken run of that prefix's
		// input range.
		for i := range s.runs {
			if s.runs[i].rows != nil {
				if err := s.spillRun(&s.runs[i]); err != nil {
					return err
				}
			}
		}
		disk := make([]*spill.Run, len(s.runs))
		for i := range s.runs {
			disk[i] = s.runs[i].run
		}
		disk, err := cascadeRuns(s.sp, s.Mem, disk, s.less)
		if err != nil {
			return err
		}
		s.runs = s.runs[:0]
		for _, r := range disk {
			s.runs = append(s.runs, sortRun{run: r})
		}
	}
	s.h = &mergeHeap{less: s.less}
	for i := range s.runs {
		r := &s.runs[i]
		it := mergeItem{run: i, rows: r.rows}
		if r.run != nil {
			rd, err := s.sp.open(r.run)
			if err != nil {
				return err
			}
			it.refill = frameCursor(rd, s.Mem)
		}
		if err := s.h.add(it); err != nil {
			return err
		}
	}
	return nil
}

// RowCountHint implements RowCountHinter: after Open every run is
// materialized (in memory or on disk), so the count is exact.
func (s *Sort) RowCountHint() (int, bool) { return s.total, true }

// Next implements Operator.
func (s *Sort) Next() (*Batch, error) {
	if s.h.Len() == 0 {
		return nil, nil
	}
	s.out.Reset()
	if err := s.h.emit(&s.out, DefaultBatchSize); err != nil {
		return nil, err
	}
	if s.out.Len() == 0 {
		return nil, nil
	}
	return &s.out, nil
}

// Close implements Operator: drop the runs, release the reservation, and
// remove every spill file — including on early Close mid-merge.
func (s *Sort) Close() error {
	s.runs, s.h = nil, nil
	s.Mem.Release(s.held)
	s.held = 0
	cerr := s.sp.cleanup()
	s.sp = nil
	if err := s.Input.Close(); err != nil {
		return err
	}
	return cerr
}
