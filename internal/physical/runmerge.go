package physical

import (
	"container/heap"

	"repro/internal/spill"
	"repro/internal/types"
)

// SpillWriterOverheadBytes is what the governor charges per open spill
// writer: the frame payload buffer's cap plus the bufio buffer. Writer
// buffers are real resident memory that scales with partition fan-out, so
// leaving them untracked would let Peak() understate the query's true
// high-water mark.
const SpillWriterOverheadBytes = spill.MaxFrameBufferBytes + spill.WriterBufferBytes

// spillSet tracks every temp-file artifact an operator created, so one
// cleanup call at Close removes them all — including on early Close
// (a Limit upstream), failed Opens, and mid-merge errors. Operators create
// the set lazily on first spill; a nil set cleans up nothing. The set also
// charges the governor for each writer open at a time (forced slack —
// the buffers exist regardless), releasing at finish or cleanup.
type spillSet struct {
	dir     string
	gov     *MemGovernor
	live    int64 // writers created but not yet finished
	writers []*spill.Writer
	runs    []*spill.Run
	readers []*spill.Reader
}

func newSpillSet(dir string, gov *MemGovernor) *spillSet {
	return &spillSet{dir: dir, gov: gov}
}

// newWriter opens a tracked run writer in the set's directory.
func (s *spillSet) newWriter() (*spill.Writer, error) {
	w, err := spill.NewWriter(s.dir)
	if err != nil {
		return nil, err
	}
	s.writers = append(s.writers, w)
	s.gov.Force(SpillWriterOverheadBytes)
	s.live++
	return w, nil
}

// finish finishes a tracked writer and tracks the resulting run. The
// writer's buffer charge is released either way — Finish closes the file.
func (s *spillSet) finish(w *spill.Writer) (*spill.Run, error) {
	s.gov.Release(SpillWriterOverheadBytes)
	s.live--
	run, err := w.Finish()
	if err != nil {
		return nil, err
	}
	s.runs = append(s.runs, run)
	return run, nil
}

// open opens a tracked reader over a run.
func (s *spillSet) open(run *spill.Run) (*spill.Reader, error) {
	r, err := run.Open()
	if err != nil {
		return nil, err
	}
	s.readers = append(s.readers, r)
	return r, nil
}

// cleanup closes every reader, aborts every unfinished writer, and removes
// every run file. Safe on a nil set and idempotent (Abort and Remove are).
func (s *spillSet) cleanup() error {
	if s == nil {
		return nil
	}
	var first error
	for _, r := range s.readers {
		if err := r.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, w := range s.writers {
		w.Abort()
	}
	s.gov.Release(s.live * SpillWriterOverheadBytes)
	s.live = 0
	for _, run := range s.runs {
		if err := run.Remove(); err != nil && first == nil {
			first = err
		}
	}
	s.readers, s.writers, s.runs = nil, nil, nil
	return first
}

// mergeItem is one run's cursor in a k-way streaming merge: a window of
// rows plus, for spilled runs, a refill that loads the next frame from
// disk. In-memory runs load their whole row set up front and never refill.
type mergeItem struct {
	run    int
	rows   [][]types.Value
	pos    int
	refill func() ([][]types.Value, error) // nil: fully in memory
}

// mergeHeap is a min-heap of run cursors ordered by less over their current
// rows, with run index as the stability tie-break — runs are consecutive
// chunks of the producer's input (sort) or disjoint sequence ranges (join
// output), so the tie-break reproduces first-arrival order exactly.
type mergeHeap struct {
	less  func(a, b []types.Value) bool
	items []mergeItem
}

func (h *mergeHeap) Len() int { return len(h.items) }

func (h *mergeHeap) Less(i, j int) bool {
	a, b := &h.items[i], &h.items[j]
	ra, rb := a.rows[a.pos], b.rows[b.pos]
	if h.less(ra, rb) {
		return true
	}
	if h.less(rb, ra) {
		return false
	}
	return a.run < b.run
}

func (h *mergeHeap) Swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *mergeHeap) Push(x any) { h.items = append(h.items, x.(mergeItem)) }

func (h *mergeHeap) Pop() any {
	n := len(h.items)
	it := h.items[n-1]
	h.items = h.items[:n-1]
	return it
}

// add pushes a cursor unless it is empty, priming spilled cursors with
// their first frame.
func (h *mergeHeap) add(it mergeItem) error {
	for len(it.rows) == 0 {
		if it.refill == nil {
			return nil
		}
		rows, err := it.refill()
		if err != nil {
			return err
		}
		if rows == nil {
			return nil
		}
		it.rows = rows
	}
	heap.Push(h, it)
	return nil
}

// emit appends up to max merged rows into out, advancing and refilling
// cursors as they drain. It reports whether any rows remain.
func (h *mergeHeap) emit(out *Batch, max int) error {
	for h.Len() > 0 && out.Len() < max {
		top := &h.items[0]
		out.Append(top.rows[top.pos])
		top.pos++
		if top.pos < len(top.rows) {
			heap.Fix(h, 0)
			continue
		}
		if top.refill != nil {
			rows, err := top.refill()
			if err != nil {
				return err
			}
			if len(rows) > 0 {
				top.rows, top.pos = rows, 0
				heap.Fix(h, 0)
				continue
			}
		}
		heap.Pop(h)
	}
	return nil
}

// maxMergeFanIn bounds how many run cursors a k-way merge holds open at
// once — each cursor is an open file descriptor plus one resident frame of
// governor slack, so fan-in must not scale with dataBytes/budget.
const maxMergeFanIn = 64

// cascadeRuns bounds merge fan-in: while more runs exist than
// maxMergeFanIn cursors can stream, the first maxMergeFanIn are merged
// into one on-disk run (consumed files are removed eagerly). Runs must
// each be ordered under less; consecutive runs must be disjoint,
// in-order ranges of the final output's tie-break domain (input chunks
// for sort, probe-sequence ranges for the grace join), which makes the
// cascade's replacement of a prefix of runs by one merged run
// order-preserving.
// Each pass merges consecutive groups of maxMergeFanIn runs into one run
// apiece, so the data is rewritten once per pass and pass count is
// log_fanIn(runs) — for any realistic budget, two passes.
func cascadeRuns(sp *spillSet, gov *MemGovernor, runs []*spill.Run,
	less func(a, b []types.Value) bool) ([]*spill.Run, error) {
	var scratch Batch
	mergeGroup := func(group []*spill.Run) (*spill.Run, error) {
		h := &mergeHeap{less: less}
		readers := make([]*spill.Reader, 0, len(group))
		for i, run := range group {
			rd, err := sp.open(run)
			if err != nil {
				return nil, err
			}
			readers = append(readers, rd)
			if err := h.add(mergeItem{run: i, refill: frameCursor(rd, gov)}); err != nil {
				return nil, err
			}
		}
		w, err := sp.newWriter()
		if err != nil {
			return nil, err
		}
		for h.Len() > 0 {
			scratch.Reset()
			if err := h.emit(&scratch, DefaultBatchSize); err != nil {
				return nil, err
			}
			if scratch.Len() == 0 {
				break
			}
			if err := w.AppendAll(scratch.rows); err != nil {
				return nil, err
			}
		}
		for _, rd := range readers {
			rd.Close()
		}
		merged, err := sp.finish(w)
		if err != nil {
			return nil, err
		}
		for _, run := range group {
			if err := run.Remove(); err != nil {
				return nil, err
			}
		}
		return merged, nil
	}
	for len(runs) > maxMergeFanIn {
		next := make([]*spill.Run, 0, (len(runs)+maxMergeFanIn-1)/maxMergeFanIn)
		for lo := 0; lo < len(runs); lo += maxMergeFanIn {
			hi := lo + maxMergeFanIn
			if hi > len(runs) {
				hi = len(runs)
			}
			if hi-lo == 1 {
				next = append(next, runs[lo])
				continue
			}
			merged, err := mergeGroup(runs[lo:hi])
			if err != nil {
				return nil, err
			}
			next = append(next, merged)
		}
		runs = next
	}
	return runs, nil
}

// frameCursor builds a mergeItem refill over a tracked reader, charging the
// governor for the resident frame (and releasing the previous one) so the
// merge's working set shows up in Peak like everything else.
func frameCursor(r *spill.Reader, gov *MemGovernor) func() ([][]types.Value, error) {
	var held int64
	return func() ([][]types.Value, error) {
		rows, err := r.Next()
		gov.Release(held)
		held = 0
		if err != nil || rows == nil {
			return nil, err
		}
		held = RowsMemSize(rows)
		gov.Force(held)
		return rows, nil
	}
}
