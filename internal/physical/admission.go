package physical

import (
	"context"
	"sync"
)

// Admission is the server-wide generalization of MemGovernor: one global
// byte budget shared by every concurrent query. Each query asks for a slice
// of the budget before it executes (Acquire); the controller grants slices
// FIFO so the sum of outstanding grants never exceeds the global budget, and
// queries that do not fit yet block — in arrival order — until running
// queries release their grants. A granted query gets a child MemGovernor
// whose budget is its grant, so it degrades to spilling under its slice
// exactly as a one-shot -mem-budget query would, while the shared parent
// ledger tracks the true aggregate so the server's peak governed memory is
// observable (and bounded by budget + the per-query forced slack the
// spilling operators already document: at most one batch per spill stream).
//
// The controller queues rather than rejects: admission pressure converts
// into latency, spilling converts grant pressure into disk, and the only
// errors Acquire returns are the caller's own context expiring — a timeout
// or a disconnected client. Strict FIFO (only the queue head is ever
// served) keeps admission starvation-free: a large request at the head is
// never bypassed by small ones behind it.
//
// A nil *Admission means no global budget: Acquire returns a nil Grant
// whose Gov is nil, i.e. ungoverned execution — the same convention a nil
// *MemGovernor carries.
type Admission struct {
	budget int64
	ledger *MemGovernor // shared parent of every grant's governor

	mu      sync.Mutex
	granted int64
	waiters []*admitWaiter

	peakGranted int64
	admitted    int64 // total queries ever granted (stats)
	queuedEver  int64 // total queries that had to wait (stats)
}

type admitWaiter struct {
	want  int64
	ready chan *Grant
	// abandoned marks a waiter whose Acquire returned (context expired)
	// before it was served; release scans past it without granting.
	abandoned bool
}

// NewAdmission returns an admission controller over a global budget of b
// bytes, or nil (no admission, unlimited) when b <= 0.
func NewAdmission(b int64) *Admission {
	if b <= 0 {
		return nil
	}
	return &Admission{budget: b, ledger: &MemGovernor{budget: b}}
}

// Budget reports the global budget (0 on nil).
func (a *Admission) Budget() int64 {
	if a == nil {
		return 0
	}
	return a.budget
}

// Granted reports the sum of outstanding grants.
func (a *Admission) Granted() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.granted
}

// PeakGranted reports the high-water mark of outstanding grants.
func (a *Admission) PeakGranted() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.peakGranted
}

// InUse reports the aggregate bytes currently tracked by every grant's
// governor — true usage, not grant reservations.
func (a *Admission) InUse() int64 {
	if a == nil {
		return 0
	}
	return a.ledger.InUse()
}

// Peak reports the server-wide high-water mark of governed bytes across all
// grants, forced slack included.
func (a *Admission) Peak() int64 {
	if a == nil {
		return 0
	}
	return a.ledger.Peak()
}

// QueueLen reports how many queries are currently blocked in Acquire.
func (a *Admission) QueueLen() int {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, w := range a.waiters {
		if !w.abandoned {
			n++
		}
	}
	return n
}

// Stats reports cumulative admission counters: queries granted and queries
// that had to queue before being granted or giving up.
func (a *Admission) Stats() (admitted, queued int64) {
	if a == nil {
		return 0, 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.admitted, a.queuedEver
}

// Acquire blocks until want bytes of the global budget can be granted, FIFO
// with every other waiter, or until ctx is done. want is clamped to the
// global budget (a query asking for more than the server has gets the whole
// budget and spills harder — it blocks until it runs alone) and to a 1-byte
// minimum so a zero request still serializes through admission. On success
// the returned Grant carries a child MemGovernor enforcing the granted
// slice; the caller must Release it when the query finishes, errors, or is
// abandoned. On a nil controller Acquire returns (nil, nil): a nil Grant is
// valid and its Gov is the nil (unlimited) governor.
func (a *Admission) Acquire(ctx context.Context, want int64) (*Grant, error) {
	if a == nil {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if want > a.budget {
		want = a.budget
	}
	if want < 1 {
		want = 1
	}
	a.mu.Lock()
	if len(a.waiters) == 0 && a.granted+want <= a.budget {
		a.granted += want
		if a.granted > a.peakGranted {
			a.peakGranted = a.granted
		}
		a.admitted++
		a.mu.Unlock()
		return &Grant{a: a, bytes: want, gov: NewChildGovernor(a.ledger, want)}, nil
	}
	w := &admitWaiter{want: want, ready: make(chan *Grant, 1)}
	a.waiters = append(a.waiters, w)
	a.queuedEver++
	a.mu.Unlock()

	select {
	case g := <-w.ready:
		return g, nil
	case <-ctx.Done():
		a.mu.Lock()
		// The grant may have raced the cancellation: if it is already in
		// the channel, take it back and release it so the budget is not
		// leaked by a client that stopped waiting.
		select {
		case g := <-w.ready:
			a.mu.Unlock()
			g.Release()
			return nil, ctx.Err()
		default:
		}
		w.abandoned = true
		a.compactLocked()
		a.mu.Unlock()
		return nil, ctx.Err()
	}
}

// Grant is an admitted query's slice of the global budget. Release returns
// the slice and wakes queued queries; it is idempotent, so deferred cleanup
// and error paths may both call it.
type Grant struct {
	a        *Admission
	bytes    int64
	gov      *MemGovernor
	released bool
	mu       sync.Mutex
}

// Gov returns the grant's memory governor: a child of the server ledger
// enforcing the granted slice. Nil (unlimited) on a nil grant.
func (g *Grant) Gov() *MemGovernor {
	if g == nil {
		return nil
	}
	return g.gov
}

// Bytes reports the granted slice size (0 on nil).
func (g *Grant) Bytes() int64 {
	if g == nil {
		return 0
	}
	return g.bytes
}

// Release returns the grant to the global budget and serves queued waiters
// in FIFO order. Idempotent and nil-safe.
func (g *Grant) Release() {
	if g == nil {
		return
	}
	g.mu.Lock()
	done := g.released
	g.released = true
	g.mu.Unlock()
	if done {
		return
	}
	a := g.a
	a.mu.Lock()
	a.granted -= g.bytes
	a.serveLocked()
	a.mu.Unlock()
}

// serveLocked grants as many queue-head waiters as now fit. Only the head
// is ever considered (strict FIFO); abandoned waiters are skipped.
func (a *Admission) serveLocked() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if w.abandoned {
			a.waiters = a.waiters[1:]
			continue
		}
		if a.granted+w.want > a.budget {
			return
		}
		a.waiters = a.waiters[1:]
		a.granted += w.want
		if a.granted > a.peakGranted {
			a.peakGranted = a.granted
		}
		a.admitted++
		w.ready <- &Grant{a: a, bytes: w.want, gov: NewChildGovernor(a.ledger, w.want)}
	}
}

// compactLocked drops abandoned waiters from the queue front so they cannot
// block serveLocked, then serves whoever is now at the head (the abandoned
// waiter may have been the one holding everyone up).
func (a *Admission) compactLocked() {
	for len(a.waiters) > 0 && a.waiters[0].abandoned {
		a.waiters = a.waiters[1:]
	}
	a.serveLocked()
}
