package physical

import (
	"math"
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
	"repro/internal/vector"
)

// mixedAggTable builds a 3-column table (k int group key, v ascending int,
// f float with NaN and NULL rows) whose columnar mirror drives both unboxed
// absorbCol arms plus the boxed fallback path.
func mixedAggTable(n int) (types.Schema, [][]types.Value, *vector.Columns) {
	rows := make([][]types.Value, n)
	for i := range rows {
		f := types.NewFloat(float64(i) / 2)
		switch i % 7 {
		case 3:
			f = types.Null()
		case 5:
			f = types.NewFloat(math.NaN())
		}
		rows[i] = []types.Value{
			types.NewInt(int64(i % 4)),
			types.NewInt(int64(i)),
			f,
		}
	}
	return types.NewSchema("t", "k", "v", "f"), rows, vector.FromRows(rows, 3)
}

// TestFusedAggregateSerialUnit drives the serial fused aggregate end to end
// in-package: a range-form filter (v < 60 over the ascending v column, which
// slices a strict sub-window of the table), int and float unboxed absorption
// with NULL/NaN rows, and the COUNT(*)/AVG finishing rules — all compared
// against the unfused serial engine on the same plan.
func TestFusedAggregateSerialUnit(t *testing.T) {
	schema, rows, cols := mixedAggTable(100)
	src := aggFuzzSource{schema: schema, rows: rows, cols: cols}
	col := func(i int, name string) algebra.Expr { return algebra.Col{Idx: i, Name: name} }
	plan := &algebra.Aggregate{
		Input: &algebra.Filter{
			Input: &algebra.Scan{Table: "t", TblSchema: schema},
			Pred: algebra.Bin{Op: algebra.OpLt, L: col(1, "v"),
				R: algebra.Const{V: types.NewInt(60)}},
		},
		GroupBy:    []algebra.Expr{col(0, "k")},
		GroupNames: []string{"k"},
		Aggs: []algebra.AggSpec{
			{Func: algebra.AggSum, Arg: col(1, "v"), Name: "sv"},
			{Func: algebra.AggMin, Arg: col(2, "f"), Name: "mf"},
			{Func: algebra.AggMax, Arg: col(2, "f"), Name: "xf"},
			{Func: algebra.AggAvg, Arg: col(1, "v"), Name: "av"},
			{Func: algebra.AggCount, Star: true, Name: "n"},
		},
	}

	fusedOp, err := LowerOpts(plan, src, Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := fusedOp.(*FusedAggregate); !ok {
		t.Fatalf("lowered to %T, want *FusedAggregate", fusedOp)
	}
	if ex := Explain(fusedOp); !strings.Contains(ex, "FusedAggregate[") ||
		!strings.Contains(ex, "count(*)") {
		t.Fatalf("explain missing fused aggregate rendering:\n%s", ex)
	}

	unfusedOp, err := LowerOpts(plan, struct{ Source }{src}, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Drain(unfusedOp)
	if err != nil {
		t.Fatal(err)
	}

	// FusedAggregate has no columnar output path, so DrainColumns must fall
	// back to a row-backed Result that matches the unfused drain exactly.
	res, err := DrainColumns(fusedOp)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols() != nil {
		t.Fatal("aggregate result claims a columnar form")
	}
	got := res.Rows()
	if res.NumRows() != len(want) || len(got) != len(want) {
		t.Fatalf("fused %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if types.Tuple(got[i]).Key() != types.Tuple(want[i]).Key() {
			t.Fatalf("row %d: fused %v, want %v", i, got[i], want[i])
		}
	}
}

// TestDrainColumnsFusedChainUnit pins the columnar sink on a fused
// scan→filter→project chain in-package: the result keeps vectors (no row is
// boxed during the drain), NumRows answers without materializing, and Rows
// materializes once and caches.
func TestDrainColumnsFusedChainUnit(t *testing.T) {
	schema, rows, cols := colIntTable(300)
	src := aggFuzzSource{schema: schema, rows: rows, cols: cols}
	col := func(i int, name string) algebra.Expr { return algebra.Col{Idx: i, Name: name} }
	plan := &algebra.Project{
		Input: &algebra.Filter{
			Input: &algebra.Scan{Table: "t", TblSchema: schema},
			Pred: algebra.Bin{Op: algebra.OpLt, L: col(1, "v"),
				R: algebra.Const{V: types.NewInt(150)}},
		},
		Exprs: []algebra.Expr{col(0, "k"),
			algebra.Bin{Op: algebra.OpAdd, L: col(0, "k"), R: col(1, "v")}},
		Names: []string{"k", "kv"},
	}
	op, err := LowerOpts(plan, src, Options{DOP: 1, Fuse: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DrainColumns(op)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cols() == nil {
		t.Fatal("fused chain lost its columnar result")
	}
	if res.NumRows() != 150 {
		t.Fatalf("NumRows = %d, want 150", res.NumRows())
	}
	r1, r2 := res.Rows(), res.Rows()
	if len(r1) != 150 || &r1[0] != &r2[0] {
		t.Fatal("Rows must materialize once and cache")
	}
	unfused, err := LowerOpts(plan, struct{ Source }{src}, Options{DOP: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Drain(unfused)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if types.Tuple(r1[i]).Key() != types.Tuple(want[i]).Key() {
			t.Fatalf("row %d: columnar %v, want %v", i, r1[i], want[i])
		}
	}
}

// TestParallelFusedAggregateUnit drives the morsel-parallel fused aggregate
// in-package and pins its explain rendering and DOP accessor.
func TestParallelFusedAggregateUnit(t *testing.T) {
	schema, rows, cols := mixedAggTable(200)
	src := aggFuzzSource{schema: schema, rows: rows, cols: cols}
	col := func(i int, name string) algebra.Expr { return algebra.Col{Idx: i, Name: name} }
	plan := &algebra.Aggregate{
		Input:      &algebra.Scan{Table: "t", TblSchema: schema},
		GroupBy:    []algebra.Expr{col(0, "k")},
		GroupNames: []string{"k"},
		Aggs: []algebra.AggSpec{
			{Func: algebra.AggSum, Arg: col(1, "v"), Name: "sv"},
			{Func: algebra.AggCount, Arg: col(2, "f"), Name: "nf"},
		},
	}
	opt := Options{DOP: 2, MorselSize: 32, MinParallelRows: 1, Fuse: true}
	op, err := LowerOpts(plan, src, opt)
	if err != nil {
		t.Fatal(err)
	}
	pfa, ok := op.(*ParallelFusedAggregate)
	if !ok {
		t.Fatalf("lowered to %T, want *ParallelFusedAggregate", op)
	}
	if pfa.DOP() != 2 {
		t.Fatalf("DOP = %d, want 2", pfa.DOP())
	}
	if ex := Explain(op); !strings.Contains(ex, "ParallelFusedAggregate[dop=2") {
		t.Fatalf("explain missing parallel fused aggregate:\n%s", ex)
	}
	got, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	unfused, err := LowerOpts(plan, struct{ Source }{src}, Options{DOP: 2, MorselSize: 32, MinParallelRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Drain(unfused)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("parallel fused %d rows, want %d", len(got), len(want))
	}
	for i := range got {
		if types.Tuple(got[i]).Key() != types.Tuple(want[i]).Key() {
			t.Fatalf("row %d: fused %v, want %v", i, got[i], want[i])
		}
	}
}
