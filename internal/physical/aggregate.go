package physical

import (
	"repro/internal/algebra"
	"repro/internal/types"
)

// HashAggregate groups the input by the key expressions and computes the
// aggregate functions. Open consumes the input batch by batch — group-by
// keys are evaluated expression-at-a-time into reused key columns
// (algebra.EvalColumn), and groups are keyed with the shared canonical
// binary encoding (key.go) — then Next streams one row per group in
// first-seen order (a global aggregate over an empty input still emits one
// row). Output rows are freshly allocated, group-by columns first,
// aggregate columns after, and emitted in shared-spine batches slicing the
// materialized result.
type HashAggregate struct {
	Input      Operator
	GroupBy    []algebra.Expr
	GroupNames []string
	Aggs       []algebra.AggSpec
	schema     types.Schema

	out [][]types.Value
	pos int
	b   Batch
}

// NewHashAggregate builds a hash aggregate with the output schema of the
// logical Aggregate node it implements.
func NewHashAggregate(in Operator, groupBy []algebra.Expr, groupNames []string, aggs []algebra.AggSpec) *HashAggregate {
	attrs := append([]string{}, groupNames...)
	for _, a := range aggs {
		attrs = append(attrs, a.Name)
	}
	return &HashAggregate{Input: in, GroupBy: groupBy, GroupNames: groupNames,
		Aggs: aggs, schema: types.Schema{Attrs: attrs}}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() types.Schema { return h.schema }

// aggState accumulates one group's running aggregates.
type aggState struct {
	groupRow []types.Value
	count    []int64
	sumI     []int64
	sumF     []float64
	isFloat  []bool
	min      []types.Value
	max      []types.Value
	seen     []bool
}

func newAggState(groupRow []types.Value, nAggs int) *aggState {
	return &aggState{
		groupRow: groupRow,
		count:    make([]int64, nAggs),
		sumI:     make([]int64, nAggs),
		sumF:     make([]float64, nAggs),
		isFloat:  make([]bool, nAggs),
		min:      make([]types.Value, nAggs),
		max:      make([]types.Value, nAggs),
		seen:     make([]bool, nAggs),
	}
}

// merge folds another partial state for the same group into st. Counts and
// sums add, extrema combine, and the float-ness flag ORs — exact for COUNT,
// integer SUM, MIN, and MAX; float SUM/AVG merge re-associates the addition,
// so parallel aggregation of float columns can differ from the serial result
// in the last ulp (the merge order itself — morsel sequence order — is
// deterministic, so a given input always produces the same answer).
func (st *aggState) merge(o *aggState) {
	for i := range st.count {
		st.count[i] += o.count[i]
		st.sumI[i] += o.sumI[i]
		st.sumF[i] += o.sumF[i]
		st.isFloat[i] = st.isFloat[i] || o.isFloat[i]
		if !o.seen[i] {
			continue
		}
		if !st.seen[i] {
			st.min[i], st.max[i] = o.min[i], o.max[i]
			st.seen[i] = true
			continue
		}
		if o.min[i].Compare(st.min[i]) < 0 {
			st.min[i] = o.min[i]
		}
		if o.max[i].Compare(st.max[i]) > 0 {
			st.max[i] = o.max[i]
		}
	}
}

// absorbValue folds one already-evaluated aggregate argument into the i-th
// aggregate's state. SQL aggregates skip NULL arguments; COUNT(*) never
// reaches here (its rows are counted unconditionally by the caller).
func (st *aggState) absorbValue(i int, v types.Value) {
	if v.IsNull() {
		return
	}
	st.count[i]++
	if v.IsNumeric() {
		if v.Kind() == types.KindFloat {
			st.isFloat[i] = true
		}
		if v.Kind() == types.KindInt {
			st.sumI[i] += v.Int()
		}
		st.sumF[i] += v.Float()
	}
	if !st.seen[i] {
		st.min[i], st.max[i] = v, v
		st.seen[i] = true
	} else {
		if v.Compare(st.min[i]) < 0 {
			st.min[i] = v
		}
		if v.Compare(st.max[i]) > 0 {
			st.max[i] = v
		}
	}
}

// result renders the group's final output columns for the aggregate specs.
func (st *aggState) result(aggs []algebra.AggSpec, nGroupCols int) []types.Value {
	row := make([]types.Value, 0, nGroupCols+len(aggs))
	row = append(row, st.groupRow...)
	for i, a := range aggs {
		switch a.Func {
		case algebra.AggCount:
			row = append(row, types.NewInt(st.count[i]))
		case algebra.AggSum:
			switch {
			case st.count[i] == 0:
				row = append(row, types.Null())
			case st.isFloat[i]:
				row = append(row, types.NewFloat(st.sumF[i]))
			default:
				row = append(row, types.NewInt(st.sumI[i]))
			}
		case algebra.AggAvg:
			if st.count[i] == 0 {
				row = append(row, types.Null())
			} else {
				row = append(row, types.NewFloat(st.sumF[i]/float64(st.count[i])))
			}
		case algebra.AggMin:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.min[i])
			}
		case algebra.AggMax:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.max[i])
			}
		}
	}
	return row
}

// aggFolder is the batch-folding core shared by the serial HashAggregate and
// the per-worker partial aggregation of ParallelHashAggregate: compiled
// group-key and argument kernels, reused evaluation columns, and the
// canonical-key group lookup. One folder belongs to one goroutine — the
// kernels it compiles are closures, so parallel workers each build their own.
//
// When every group-by expression is a bare column and the batch is columnar,
// group keys are encoded straight from the vectors (the per-vector-type
// AppendElemKey fast paths) instead of boxing each key cell through
// EvalColumn; the group's representative row is still boxed, but only once
// per distinct group.
type aggFolder struct {
	aggs       []algebra.AggSpec
	groupProgs []*algebra.Compiled
	argProgs   []*algebra.Compiled
	groupIdx   []int // column index per group expr when all are bare Cols
	keyCols    [][]types.Value
	argCols    [][]types.Value
	keyBuf     []byte
}

// newAggFolder compiles the group and argument expressions.
func newAggFolder(groupBy []algebra.Expr, aggs []algebra.AggSpec) *aggFolder {
	f := &aggFolder{
		aggs:       aggs,
		groupProgs: algebra.CompileAll(groupBy),
		argProgs:   make([]*algebra.Compiled, len(aggs)),
		keyCols:    make([][]types.Value, len(groupBy)),
		argCols:    make([][]types.Value, len(aggs)),
	}
	f.groupIdx = make([]int, 0, len(groupBy))
	for _, e := range groupBy {
		c, isCol := e.(algebra.Col)
		if !isCol {
			f.groupIdx = nil
			break
		}
		f.groupIdx = append(f.groupIdx, c.Idx)
	}
	for i, a := range aggs {
		if !a.Star {
			f.argProgs[i] = algebra.Compile(a.Arg)
		}
	}
	return f
}

// fold absorbs one batch into groups, calling add (in first-seen order) for
// every group created along the way.
func (f *aggFolder) fold(b *Batch, groups map[string]*aggState, add func(key string, st *aggState)) {
	n := b.Len()
	cols := b.Cols()
	useVec := cols != nil && f.groupIdx != nil && len(f.groupIdx) > 0

	// The aggregate arguments still evaluate through the row kernels; only
	// batches that need them (any non-COUNT(*) aggregate, or a non-columnar
	// key path) materialize a row view — a COUNT(*)-only aggregate over a
	// column-only batch never boxes a cell.
	var rows [][]types.Value
	needRows := !useVec
	for _, prog := range f.argProgs {
		if prog != nil {
			needRows = true
		}
	}
	if needRows {
		rows = b.Rows()
	}

	if !useVec {
		for g, prog := range f.groupProgs {
			f.keyCols[g] = prog.EvalColumn(rows, f.keyCols[g][:0])
		}
	}
	for i, prog := range f.argProgs {
		if prog != nil {
			f.argCols[i] = prog.EvalColumn(rows, f.argCols[i][:0])
		}
	}
	for i := 0; i < n; i++ {
		f.keyBuf = f.keyBuf[:0]
		if useVec {
			f.keyBuf = appendVecColsKey(f.keyBuf, cols, i, f.groupIdx)
		} else {
			for g := range f.keyCols {
				f.keyBuf = f.keyCols[g][i].AppendKey(f.keyBuf)
				f.keyBuf = append(f.keyBuf, '|')
			}
		}
		st, ok := groups[string(f.keyBuf)]
		if !ok {
			groupRow := make([]types.Value, len(f.groupProgs))
			if useVec {
				for g, idx := range f.groupIdx {
					groupRow[g] = cols[idx].Value(i)
				}
			} else {
				for g := range f.keyCols {
					groupRow[g] = f.keyCols[g][i]
				}
			}
			st = newAggState(groupRow, len(f.aggs))
			key := string(f.keyBuf)
			groups[key] = st
			add(key, st)
		}
		for a := range f.argProgs {
			if f.argProgs[a] == nil {
				st.count[a]++ // COUNT(*) counts rows unconditionally
			} else {
				st.absorbValue(a, f.argCols[a][i])
			}
		}
	}
}

// Open implements Operator: it consumes the input and builds all groups.
func (h *HashAggregate) Open() error {
	h.out, h.pos = nil, 0
	if err := h.Input.Open(); err != nil {
		return err
	}
	groups := make(map[string]*aggState)
	var states []*aggState // first-seen order
	folder := newAggFolder(h.GroupBy, h.Aggs)
	for {
		b, err := h.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		folder.fold(b, groups, func(_ string, st *aggState) {
			states = append(states, st)
		})
	}
	// A global aggregate over an empty input still emits one row.
	if len(h.GroupBy) == 0 && len(states) == 0 {
		states = append(states, newAggState(nil, len(h.Aggs)))
	}
	h.out = make([][]types.Value, 0, len(states))
	for _, st := range states {
		h.out = append(h.out, st.result(h.Aggs, len(h.GroupBy)))
	}
	return nil
}

// RowCountHint implements RowCountHinter: after Open the groups are
// materialized, so the count is exact.
func (h *HashAggregate) RowCountHint() (int, bool) { return len(h.out) - h.pos, true }

// Next implements Operator.
func (h *HashAggregate) Next() (*Batch, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	end := h.pos + DefaultBatchSize
	if end > len(h.out) {
		end = len(h.out)
	}
	h.b.SetShared(h.out[h.pos:end])
	h.pos = end
	return &h.b, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.out = nil
	return h.Input.Close()
}
