package physical

import (
	"fmt"
	"sort"

	"repro/internal/algebra"
	"repro/internal/spill"
	"repro/internal/types"
)

// HashAggregate groups the input by the key expressions and computes the
// aggregate functions. Open consumes the input batch by batch — group-by
// keys are evaluated expression-at-a-time into reused key columns
// (algebra.EvalColumn), and groups are keyed with the shared canonical
// binary encoding (key.go) — then Next streams one row per group in
// first-seen order (a global aggregate over an empty input still emits one
// row). Output rows are freshly allocated, group-by columns first,
// aggregate columns after, and emitted in shared-spine batches slicing the
// materialized result.
//
// With a memory governor (Mem non-nil), the group table is bounded: each
// new group Forces its estimated state bytes, and whenever a folded batch
// pushes the tracked total over budget the whole table — a "generation" of
// partial states, tagged with their global first-seen sequence numbers —
// is spilled to hash-partitioned temp files and the memory released.
// After the input is exhausted, each partition is re-aggregated on its own
// (partials for one group always land in one partition, so the exact
// aggState.merge combination applies generation by generation, in input
// order), recursing with a re-salted hash if a partition alone still
// exceeds the budget. The final groups are ordered by their first-seen
// sequence numbers, which restores the in-memory operator's global
// first-seen output order byte for byte. Only the materialized result rows
// — the operator's output, which Next hands to the consumer — live outside
// the budget, exactly as they do on the in-memory path.
type HashAggregate struct {
	Input      Operator
	GroupBy    []algebra.Expr
	GroupNames []string
	Aggs       []algebra.AggSpec
	Mem        *MemGovernor // nil: never spill (today's in-memory behavior)
	SpillDir   string       // temp dir for spilled partitions; "" means os.TempDir()
	schema     types.Schema

	out  [][]types.Value
	pos  int
	held int64
	sp   *spillSet
	b    Batch
}

// NewHashAggregate builds a hash aggregate with the output schema of the
// logical Aggregate node it implements.
func NewHashAggregate(in Operator, groupBy []algebra.Expr, groupNames []string, aggs []algebra.AggSpec) *HashAggregate {
	attrs := append([]string{}, groupNames...)
	for _, a := range aggs {
		attrs = append(attrs, a.Name)
	}
	return &HashAggregate{Input: in, GroupBy: groupBy, GroupNames: groupNames,
		Aggs: aggs, schema: types.Schema{Attrs: attrs}}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() types.Schema { return h.schema }

// aggState accumulates one group's running aggregates.
type aggState struct {
	groupRow []types.Value
	count    []int64
	sumI     []int64
	sumF     []float64
	isFloat  []bool
	min      []types.Value
	max      []types.Value
	seen     []bool
}

func newAggState(groupRow []types.Value, nAggs int) *aggState {
	return &aggState{
		groupRow: groupRow,
		count:    make([]int64, nAggs),
		sumI:     make([]int64, nAggs),
		sumF:     make([]float64, nAggs),
		isFloat:  make([]bool, nAggs),
		min:      make([]types.Value, nAggs),
		max:      make([]types.Value, nAggs),
		seen:     make([]bool, nAggs),
	}
}

// merge folds another partial state for the same group into st. Counts and
// sums add, extrema combine, and the float-ness flag ORs — exact for COUNT,
// integer SUM, MIN, and MAX; float SUM/AVG merge re-associates the addition,
// so parallel aggregation of float columns can differ from the serial result
// in the last ulp (the merge order itself — morsel sequence order — is
// deterministic, so a given input always produces the same answer).
func (st *aggState) merge(o *aggState) {
	for i := range st.count {
		st.count[i] += o.count[i]
		st.sumI[i] += o.sumI[i]
		st.sumF[i] += o.sumF[i]
		st.isFloat[i] = st.isFloat[i] || o.isFloat[i]
		if !o.seen[i] {
			continue
		}
		if !st.seen[i] {
			st.min[i], st.max[i] = o.min[i], o.max[i]
			st.seen[i] = true
			continue
		}
		if o.min[i].Compare(st.min[i]) < 0 {
			st.min[i] = o.min[i]
		}
		if o.max[i].Compare(st.max[i]) > 0 {
			st.max[i] = o.max[i]
		}
	}
}

// absorbValue folds one already-evaluated aggregate argument into the i-th
// aggregate's state. SQL aggregates skip NULL arguments; COUNT(*) never
// reaches here (its rows are counted unconditionally by the caller).
func (st *aggState) absorbValue(i int, v types.Value) {
	if v.IsNull() {
		return
	}
	st.count[i]++
	if v.IsNumeric() {
		if v.Kind() == types.KindFloat {
			st.isFloat[i] = true
		}
		if v.Kind() == types.KindInt {
			st.sumI[i] += v.Int()
		}
		st.sumF[i] += v.Float()
	}
	if !st.seen[i] {
		st.min[i], st.max[i] = v, v
		st.seen[i] = true
	} else {
		if v.Compare(st.min[i]) < 0 {
			st.min[i] = v
		}
		if v.Compare(st.max[i]) > 0 {
			st.max[i] = v
		}
	}
}

// result renders the group's final output columns for the aggregate specs.
func (st *aggState) result(aggs []algebra.AggSpec, nGroupCols int) []types.Value {
	row := make([]types.Value, 0, nGroupCols+len(aggs))
	row = append(row, st.groupRow...)
	for i, a := range aggs {
		switch a.Func {
		case algebra.AggCount:
			row = append(row, types.NewInt(st.count[i]))
		case algebra.AggSum:
			switch {
			case st.count[i] == 0:
				row = append(row, types.Null())
			case st.isFloat[i]:
				row = append(row, types.NewFloat(st.sumF[i]))
			default:
				row = append(row, types.NewInt(st.sumI[i]))
			}
		case algebra.AggAvg:
			if st.count[i] == 0 {
				row = append(row, types.Null())
			} else {
				row = append(row, types.NewFloat(st.sumF[i]/float64(st.count[i])))
			}
		case algebra.AggMin:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.min[i])
			}
		case algebra.AggMax:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.max[i])
			}
		}
	}
	return row
}

// aggFolder is the batch-folding core shared by the serial HashAggregate and
// the per-worker partial aggregation of ParallelHashAggregate: compiled
// group-key and argument kernels, reused evaluation columns, and the
// canonical-key group lookup. One folder belongs to one goroutine — the
// kernels it compiles are closures, so parallel workers each build their own.
//
// When every group-by expression is a bare column and the batch is columnar,
// group keys are encoded straight from the vectors (the per-vector-type
// AppendElemKey fast paths) instead of boxing each key cell through
// EvalColumn; the group's representative row is still boxed, but only once
// per distinct group.
type aggFolder struct {
	aggs       []algebra.AggSpec
	groupProgs []*algebra.Compiled
	argProgs   []*algebra.Compiled
	groupIdx   []int // column index per group expr when all are bare Cols
	keyCols    [][]types.Value
	argCols    [][]types.Value
	keyBuf     []byte
}

// newAggFolder compiles the group and argument expressions.
func newAggFolder(groupBy []algebra.Expr, aggs []algebra.AggSpec) *aggFolder {
	f := &aggFolder{
		aggs:       aggs,
		groupProgs: algebra.CompileAll(groupBy),
		argProgs:   make([]*algebra.Compiled, len(aggs)),
		keyCols:    make([][]types.Value, len(groupBy)),
		argCols:    make([][]types.Value, len(aggs)),
	}
	f.groupIdx = make([]int, 0, len(groupBy))
	for _, e := range groupBy {
		c, isCol := e.(algebra.Col)
		if !isCol {
			f.groupIdx = nil
			break
		}
		f.groupIdx = append(f.groupIdx, c.Idx)
	}
	for i, a := range aggs {
		if !a.Star {
			f.argProgs[i] = algebra.Compile(a.Arg)
		}
	}
	return f
}

// fold absorbs one batch into groups, calling add (in first-seen order) for
// every group created along the way.
func (f *aggFolder) fold(b *Batch, groups map[string]*aggState, add func(key string, st *aggState)) {
	n := b.Len()
	cols := b.Cols()
	useVec := cols != nil && f.groupIdx != nil && len(f.groupIdx) > 0

	// The aggregate arguments still evaluate through the row kernels; only
	// batches that need them (any non-COUNT(*) aggregate, or a non-columnar
	// key path) materialize a row view — a COUNT(*)-only aggregate over a
	// column-only batch never boxes a cell.
	var rows [][]types.Value
	needRows := !useVec
	for _, prog := range f.argProgs {
		if prog != nil {
			needRows = true
		}
	}
	if needRows {
		rows = b.Rows()
	}

	if !useVec {
		for g, prog := range f.groupProgs {
			f.keyCols[g] = prog.EvalColumn(rows, f.keyCols[g][:0])
		}
	}
	for i, prog := range f.argProgs {
		if prog != nil {
			f.argCols[i] = prog.EvalColumn(rows, f.argCols[i][:0])
		}
	}
	for i := 0; i < n; i++ {
		f.keyBuf = f.keyBuf[:0]
		if useVec {
			f.keyBuf = appendVecColsKey(f.keyBuf, cols, i, f.groupIdx)
		} else {
			for g := range f.keyCols {
				f.keyBuf = f.keyCols[g][i].AppendKey(f.keyBuf)
				f.keyBuf = append(f.keyBuf, '|')
			}
		}
		st, ok := groups[string(f.keyBuf)]
		if !ok {
			groupRow := make([]types.Value, len(f.groupProgs))
			if useVec {
				for g, idx := range f.groupIdx {
					groupRow[g] = cols[idx].Value(i)
				}
			} else {
				for g := range f.keyCols {
					groupRow[g] = f.keyCols[g][i]
				}
			}
			st = newAggState(groupRow, len(f.aggs))
			key := string(f.keyBuf)
			groups[key] = st
			add(key, st)
		}
		for a := range f.argProgs {
			if f.argProgs[a] == nil {
				st.count[a]++ // COUNT(*) counts rows unconditionally
			} else {
				st.absorbValue(a, f.argCols[a][i])
			}
		}
	}
}

// Open implements Operator: it consumes the input and builds all groups.
func (h *HashAggregate) Open() error {
	h.out, h.pos, h.held, h.sp = nil, 0, 0, nil
	if err := h.Input.Open(); err != nil {
		return err
	}
	if h.Mem != nil {
		return h.openGoverned()
	}
	groups := make(map[string]*aggState)
	var states []*aggState // first-seen order
	folder := newAggFolder(h.GroupBy, h.Aggs)
	for {
		b, err := h.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		folder.fold(b, groups, func(_ string, st *aggState) {
			states = append(states, st)
		})
	}
	h.out = finishAggStates(states, len(h.GroupBy) == 0, h.Aggs, len(h.GroupBy))
	return nil
}

// finishAggStates renders final group states (in first-seen order) into
// output rows — the shared tail of every aggregate operator. global applies
// the empty-input rule: a global aggregate (no GROUP BY) over an empty input
// still emits one row.
func finishAggStates(states []*aggState, global bool, aggs []algebra.AggSpec, nGroupCols int) [][]types.Value {
	if global && len(states) == 0 {
		states = append(states, newAggState(nil, len(aggs)))
	}
	out := make([][]types.Value, 0, len(states))
	for _, st := range states {
		out = append(out, st.result(aggs, nGroupCols))
	}
	return out
}

// SpillPartitions is the fan-out of the aggregate's (and grace join's)
// partition spilling: enough that one partition's share of a too-big table
// usually fits the budget after one split, small enough that partition
// writers and their buffers stay cheap. Exported because it bounds the
// governor's merge-phase slack: a spilling operator holds at most
// SpillPartitions+2 concurrent run cursors, each with one resident frame.
const SpillPartitions = 16

// maxSpillDepth bounds re-salted re-partitioning. Past this depth the data
// is pathological (e.g. a single group bigger than the budget, which no
// partitioning can split) and the partition proceeds over budget, tracked
// as forced slack.
const maxSpillDepth = 8

// aggPartial is one group's partial state tagged with the global sequence
// number of its first appearance — the sort key that restores first-seen
// output order after partitioned re-aggregation.
type aggPartial struct {
	key string
	seq int64
	st  *aggState
}

// stateMemSize estimates the resident bytes of one group's map entry and
// aggregate state.
func (h *HashAggregate) stateMemSize(key string, st *aggState) int64 {
	return int64(len(key)) + 96 + RowMemSize(st.groupRow) + int64(len(st.count))*138
}

// encodePartial renders a partial state as a plain value row for spilling:
// the first-seen sequence, the group-by values, then per aggregate the
// exact merge state (count, integer and float sums, float-ness, extrema,
// seen flag) — everything aggState.merge needs to combine generations.
func encodePartial(seq int64, st *aggState, nAggs int) []types.Value {
	row := make([]types.Value, 0, 1+len(st.groupRow)+7*nAggs)
	row = append(row, types.NewInt(seq))
	row = append(row, st.groupRow...)
	for i := 0; i < nAggs; i++ {
		row = append(row,
			types.NewInt(st.count[i]),
			types.NewInt(st.sumI[i]),
			types.NewFloat(st.sumF[i]),
			types.NewBool(st.isFloat[i]),
			st.min[i],
			st.max[i],
			types.NewBool(st.seen[i]),
		)
	}
	return row
}

// decodePartial is the inverse of encodePartial.
func decodePartial(row []types.Value, nGroup, nAggs int) (int64, *aggState, error) {
	if len(row) != 1+nGroup+7*nAggs {
		return 0, nil, fmt.Errorf("physical: corrupt spilled aggregate state (arity %d)", len(row))
	}
	if row[0].Kind() != types.KindInt {
		return 0, nil, fmt.Errorf("physical: corrupt spilled aggregate state")
	}
	seq := row[0].Int()
	st := newAggState(append([]types.Value{}, row[1:1+nGroup]...), nAggs)
	for i := 0; i < nAggs; i++ {
		f := row[1+nGroup+7*i:]
		if f[0].Kind() != types.KindInt || f[1].Kind() != types.KindInt ||
			f[2].Kind() != types.KindFloat || f[3].Kind() != types.KindBool ||
			f[6].Kind() != types.KindBool {
			return 0, nil, fmt.Errorf("physical: corrupt spilled aggregate state")
		}
		st.count[i] = f[0].Int()
		st.sumI[i] = f[1].Int()
		st.sumF[i] = f[2].Float()
		st.isFloat[i] = f[3].Bool()
		st.min[i] = f[4]
		st.max[i] = f[5]
		st.seen[i] = f[6].Bool()
	}
	return seq, st, nil
}

// seqRow is a rendered output row tagged with its first-seen sequence.
type seqRow struct {
	seq int64
	row []types.Value
}

// openGoverned is Open under a memory budget: generation spilling during
// the fold, partitioned re-aggregation after it.
func (h *HashAggregate) openGoverned() error {
	nAggs := len(h.Aggs)
	groups := make(map[string]*aggState)
	var gen []aggPartial // live generation, creation (= first-seen) order
	var genBytes int64
	var nextSeq int64
	var parts [SpillPartitions]*spill.Writer
	spilled := false

	spillGen := func() error {
		// A cancelled query aborts before paying the eviction I/O; Close
		// releases the reservations and removes any spill files.
		if err := h.Mem.Err(); err != nil {
			return err
		}
		if h.sp == nil {
			h.sp = newSpillSet(h.SpillDir, h.Mem)
		}
		var keyBuf []byte
		for i := range gen {
			p := &gen[i]
			keyBuf = append(keyBuf[:0], p.key...)
			part := keyHashSalted(keyBuf, 0) % SpillPartitions
			if parts[part] == nil {
				w, err := h.sp.newWriter()
				if err != nil {
					return err
				}
				parts[part] = w
			}
			if err := parts[part].Append(encodePartial(p.seq, p.st, nAggs)); err != nil {
				return err
			}
		}
		gen = gen[:0]
		groups = make(map[string]*aggState)
		h.Mem.Release(genBytes)
		h.held -= genBytes
		genBytes = 0
		spilled = true
		return nil
	}

	folder := newAggFolder(h.GroupBy, h.Aggs)
	add := func(key string, st *aggState) {
		// The group exists either way; Force tracks it and the post-batch
		// pressure check below spills the generation if this batch pushed
		// the table over budget.
		b := h.stateMemSize(key, st)
		h.Mem.Force(b)
		h.held += b
		genBytes += b
		gen = append(gen, aggPartial{key: key, seq: nextSeq, st: st})
		nextSeq++
	}
	for {
		b, err := h.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		folder.fold(b, groups, add)
		if h.Mem.Over() {
			if err := spillGen(); err != nil {
				return err
			}
		}
	}

	if !spilled {
		// Never under pressure: exactly the in-memory result.
		states := gen
		if len(h.GroupBy) == 0 && len(states) == 0 {
			states = append(states, aggPartial{st: newAggState(nil, nAggs)})
		}
		h.out = make([][]types.Value, 0, len(states))
		for _, p := range states {
			h.out = append(h.out, p.st.result(h.Aggs, len(h.GroupBy)))
		}
		h.Mem.Release(genBytes)
		h.held -= genBytes
		return nil
	}

	// Flush the live generation too, so every group is on disk, then
	// re-aggregate partition by partition.
	if err := spillGen(); err != nil {
		return err
	}
	var results []seqRow
	for _, w := range parts {
		if w == nil {
			continue
		}
		run, err := h.sp.finish(w)
		if err != nil {
			return err
		}
		if err := h.mergePartition(run, 1, &results); err != nil {
			return err
		}
	}
	sort.Slice(results, func(i, j int) bool { return results[i].seq < results[j].seq })
	if len(h.GroupBy) == 0 && len(results) == 0 {
		results = append(results, seqRow{row: newAggState(nil, nAggs).result(h.Aggs, 0)})
	}
	h.out = make([][]types.Value, 0, len(results))
	for _, r := range results {
		h.out = append(h.out, r.row)
	}
	return nil
}

// mergePartition re-aggregates one partition file: partial states are
// merged by group key in file order (= generation order, so aggState.merge
// combines them exactly as the parallel aggregate's sequence-ordered merge
// does), tracking each group's minimum first-seen sequence. If the
// partition alone exceeds the budget, its states — merged so far and
// still unread — are re-partitioned under a re-salted hash and merged
// recursively. Rendered rows are appended to out; every consumed temp file
// is removed eagerly.
func (h *HashAggregate) mergePartition(run *spill.Run, depth int, out *[]seqRow) error {
	nGroup, nAggs := len(h.GroupBy), len(h.Aggs)
	rd, err := h.sp.open(run)
	if err != nil {
		return err
	}
	var frame [][]types.Value
	fi := 0
	var frameHeld int64 // the resident frame, tracked like a merge cursor's
	nextRow := func() ([]types.Value, error) {
		for {
			if fi < len(frame) {
				r := frame[fi]
				fi++
				return r, nil
			}
			f, err := rd.Next()
			h.Mem.Release(frameHeld)
			h.held -= frameHeld
			frameHeld = 0
			if err != nil || f == nil {
				return nil, err
			}
			frameHeld = RowsMemSize(f)
			h.Mem.Force(frameHeld)
			h.held += frameHeld
			frame, fi = f, 0
		}
	}
	entries := make(map[string]int)
	var order []*aggPartial
	var bytes int64
	var keyBuf []byte
	for {
		prow, err := nextRow()
		if err != nil {
			return err
		}
		if prow == nil {
			break
		}
		seq, st, err := decodePartial(prow, nGroup, nAggs)
		if err != nil {
			return err
		}
		keyBuf = appendRowKey(keyBuf[:0], st.groupRow)
		if idx, ok := entries[string(keyBuf)]; ok {
			e := order[idx]
			e.st.merge(st)
			if seq < e.seq {
				e.seq = seq
			}
			continue
		}
		key := string(keyBuf)
		b := h.stateMemSize(key, st)
		if !h.Mem.Reserve(b) {
			if depth < maxSpillDepth {
				err := h.repartition(order, bytes, aggPartial{seq: seq, st: st}, nextRow, depth, out)
				rd.Close()
				h.Mem.Release(frameHeld)
				h.held -= frameHeld
				if err != nil {
					return err
				}
				return run.Remove()
			}
			h.Mem.Force(b)
		}
		h.held += b
		e := &aggPartial{key: key, seq: seq, st: st}
		entries[e.key] = len(order)
		order = append(order, e)
		bytes += b
	}
	rd.Close()
	if err := run.Remove(); err != nil {
		return err
	}
	for _, e := range order {
		*out = append(*out, seqRow{seq: e.seq, row: e.st.result(h.Aggs, nGroup)})
	}
	h.Mem.Release(bytes)
	h.held -= bytes
	return nil
}

// repartition splits an over-budget partition into sub-partitions under a
// re-salted hash: the states merged so far (released from memory), the
// state that tripped the budget, and the unread remainder of the stream
// all spill to the sub-files, which are then merged recursively. A group's
// merged-so-far state is written before its remaining partials, so
// generation merge order is preserved.
func (h *HashAggregate) repartition(order []*aggPartial, bytes int64, cur aggPartial,
	nextRow func() ([]types.Value, error), depth int, out *[]seqRow) error {
	nAggs := len(h.Aggs)
	var subs [SpillPartitions]*spill.Writer
	var keyBuf []byte
	route := func(seq int64, st *aggState) error {
		keyBuf = appendRowKey(keyBuf[:0], st.groupRow)
		p := keyHashSalted(keyBuf, uint64(depth)) % SpillPartitions
		if subs[p] == nil {
			w, err := h.sp.newWriter()
			if err != nil {
				return err
			}
			subs[p] = w
		}
		return subs[p].Append(encodePartial(seq, st, nAggs))
	}
	for _, e := range order {
		if err := route(e.seq, e.st); err != nil {
			return err
		}
	}
	h.Mem.Release(bytes)
	h.held -= bytes
	if err := route(cur.seq, cur.st); err != nil {
		return err
	}
	for {
		prow, err := nextRow()
		if err != nil {
			return err
		}
		if prow == nil {
			break
		}
		seq, st, err := decodePartial(prow, len(h.GroupBy), nAggs)
		if err != nil {
			return err
		}
		if err := route(seq, st); err != nil {
			return err
		}
	}
	for _, w := range subs {
		if w == nil {
			continue
		}
		run, err := h.sp.finish(w)
		if err != nil {
			return err
		}
		if err := h.mergePartition(run, depth+1, out); err != nil {
			return err
		}
	}
	return nil
}

// RowCountHint implements RowCountHinter: after Open the groups are
// materialized, so the count is exact.
func (h *HashAggregate) RowCountHint() (int, bool) { return len(h.out) - h.pos, true }

// Next implements Operator.
func (h *HashAggregate) Next() (*Batch, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	end := h.pos + DefaultBatchSize
	if end > len(h.out) {
		end = len(h.out)
	}
	h.b.SetShared(h.out[h.pos:end])
	h.pos = end
	return &h.b, nil
}

// Close implements Operator: drop the result, release any reservation
// still held, and remove every spill file.
func (h *HashAggregate) Close() error {
	h.out = nil
	h.Mem.Release(h.held)
	h.held = 0
	cerr := h.sp.cleanup()
	h.sp = nil
	if err := h.Input.Close(); err != nil {
		return err
	}
	return cerr
}
