package physical

import (
	"repro/internal/algebra"
	"repro/internal/types"
)

// HashAggregate groups the input by the key expressions and computes the
// aggregate functions. Open consumes the input and builds the group table;
// Next streams one row per group in first-seen order (a global aggregate
// over an empty input still emits one row). Output rows are freshly
// allocated: group-by columns first, aggregate columns after.
type HashAggregate struct {
	Input      Operator
	GroupBy    []algebra.Expr
	GroupNames []string
	Aggs       []algebra.AggSpec
	schema     types.Schema

	out [][]types.Value
	pos int
}

// NewHashAggregate builds a hash aggregate with the output schema of the
// logical Aggregate node it implements.
func NewHashAggregate(in Operator, groupBy []algebra.Expr, groupNames []string, aggs []algebra.AggSpec) *HashAggregate {
	attrs := append([]string{}, groupNames...)
	for _, a := range aggs {
		attrs = append(attrs, a.Name)
	}
	return &HashAggregate{Input: in, GroupBy: groupBy, GroupNames: groupNames,
		Aggs: aggs, schema: types.Schema{Attrs: attrs}}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() types.Schema { return h.schema }

// aggState accumulates one group's running aggregates.
type aggState struct {
	groupRow []types.Value
	count    []int64
	sumI     []int64
	sumF     []float64
	isFloat  []bool
	min      []types.Value
	max      []types.Value
	seen     []bool
}

func newAggState(groupRow []types.Value, nAggs int) *aggState {
	return &aggState{
		groupRow: groupRow,
		count:    make([]int64, nAggs),
		sumI:     make([]int64, nAggs),
		sumF:     make([]float64, nAggs),
		isFloat:  make([]bool, nAggs),
		min:      make([]types.Value, nAggs),
		max:      make([]types.Value, nAggs),
		seen:     make([]bool, nAggs),
	}
}

// absorb folds one input row into the group's state. SQL aggregates skip
// NULL arguments; COUNT(*) counts rows unconditionally.
func (st *aggState) absorb(aggs []algebra.AggSpec, row []types.Value) {
	for i, a := range aggs {
		if a.Star {
			st.count[i]++
			continue
		}
		v := a.Arg.Eval(row)
		if v.IsNull() {
			continue
		}
		st.count[i]++
		if v.IsNumeric() {
			if v.Kind() == types.KindFloat {
				st.isFloat[i] = true
			}
			if v.Kind() == types.KindInt {
				st.sumI[i] += v.Int()
			}
			st.sumF[i] += v.Float()
		}
		if !st.seen[i] {
			st.min[i], st.max[i] = v, v
			st.seen[i] = true
		} else {
			if v.Compare(st.min[i]) < 0 {
				st.min[i] = v
			}
			if v.Compare(st.max[i]) > 0 {
				st.max[i] = v
			}
		}
	}
}

// result renders the group's final output columns for the aggregate specs.
func (st *aggState) result(aggs []algebra.AggSpec, nGroupCols int) []types.Value {
	row := make([]types.Value, 0, nGroupCols+len(aggs))
	row = append(row, st.groupRow...)
	for i, a := range aggs {
		switch a.Func {
		case algebra.AggCount:
			row = append(row, types.NewInt(st.count[i]))
		case algebra.AggSum:
			switch {
			case st.count[i] == 0:
				row = append(row, types.Null())
			case st.isFloat[i]:
				row = append(row, types.NewFloat(st.sumF[i]))
			default:
				row = append(row, types.NewInt(st.sumI[i]))
			}
		case algebra.AggAvg:
			if st.count[i] == 0 {
				row = append(row, types.Null())
			} else {
				row = append(row, types.NewFloat(st.sumF[i]/float64(st.count[i])))
			}
		case algebra.AggMin:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.min[i])
			}
		case algebra.AggMax:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.max[i])
			}
		}
	}
	return row
}

// Open implements Operator: it consumes the input and builds all groups.
func (h *HashAggregate) Open() error {
	h.out, h.pos = nil, 0
	if err := h.Input.Open(); err != nil {
		return err
	}
	nAggs := len(h.Aggs)
	groups := make(map[string]*aggState)
	var order []string
	for {
		row, err := h.Input.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		key := make(types.Tuple, len(h.GroupBy))
		for i, e := range h.GroupBy {
			key[i] = e.Eval(row)
		}
		ks := key.Key()
		st, ok := groups[ks]
		if !ok {
			st = newAggState(key, nAggs)
			groups[ks] = st
			order = append(order, ks)
		}
		st.absorb(h.Aggs, row)
	}
	// A global aggregate over an empty input still emits one row.
	if len(h.GroupBy) == 0 && len(groups) == 0 {
		groups[""] = newAggState(nil, nAggs)
		order = append(order, "")
	}
	h.out = make([][]types.Value, 0, len(order))
	for _, ks := range order {
		h.out = append(h.out, groups[ks].result(h.Aggs, len(h.GroupBy)))
	}
	return nil
}

// Next implements Operator.
func (h *HashAggregate) Next() ([]types.Value, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	row := h.out[h.pos]
	h.pos++
	return row, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.out = nil
	return h.Input.Close()
}
