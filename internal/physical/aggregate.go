package physical

import (
	"repro/internal/algebra"
	"repro/internal/types"
)

// HashAggregate groups the input by the key expressions and computes the
// aggregate functions. Open consumes the input batch by batch — group-by
// keys are evaluated expression-at-a-time into reused key columns
// (algebra.EvalColumn), and groups are keyed with the shared canonical
// binary encoding (key.go) — then Next streams one row per group in
// first-seen order (a global aggregate over an empty input still emits one
// row). Output rows are freshly allocated, group-by columns first,
// aggregate columns after, and emitted in shared-spine batches slicing the
// materialized result.
type HashAggregate struct {
	Input      Operator
	GroupBy    []algebra.Expr
	GroupNames []string
	Aggs       []algebra.AggSpec
	schema     types.Schema

	out [][]types.Value
	pos int
	b   Batch
}

// NewHashAggregate builds a hash aggregate with the output schema of the
// logical Aggregate node it implements.
func NewHashAggregate(in Operator, groupBy []algebra.Expr, groupNames []string, aggs []algebra.AggSpec) *HashAggregate {
	attrs := append([]string{}, groupNames...)
	for _, a := range aggs {
		attrs = append(attrs, a.Name)
	}
	return &HashAggregate{Input: in, GroupBy: groupBy, GroupNames: groupNames,
		Aggs: aggs, schema: types.Schema{Attrs: attrs}}
}

// Schema implements Operator.
func (h *HashAggregate) Schema() types.Schema { return h.schema }

// aggState accumulates one group's running aggregates.
type aggState struct {
	groupRow []types.Value
	count    []int64
	sumI     []int64
	sumF     []float64
	isFloat  []bool
	min      []types.Value
	max      []types.Value
	seen     []bool
}

func newAggState(groupRow []types.Value, nAggs int) *aggState {
	return &aggState{
		groupRow: groupRow,
		count:    make([]int64, nAggs),
		sumI:     make([]int64, nAggs),
		sumF:     make([]float64, nAggs),
		isFloat:  make([]bool, nAggs),
		min:      make([]types.Value, nAggs),
		max:      make([]types.Value, nAggs),
		seen:     make([]bool, nAggs),
	}
}

// absorbValue folds one already-evaluated aggregate argument into the i-th
// aggregate's state. SQL aggregates skip NULL arguments; COUNT(*) never
// reaches here (its rows are counted unconditionally by the caller).
func (st *aggState) absorbValue(i int, v types.Value) {
	if v.IsNull() {
		return
	}
	st.count[i]++
	if v.IsNumeric() {
		if v.Kind() == types.KindFloat {
			st.isFloat[i] = true
		}
		if v.Kind() == types.KindInt {
			st.sumI[i] += v.Int()
		}
		st.sumF[i] += v.Float()
	}
	if !st.seen[i] {
		st.min[i], st.max[i] = v, v
		st.seen[i] = true
	} else {
		if v.Compare(st.min[i]) < 0 {
			st.min[i] = v
		}
		if v.Compare(st.max[i]) > 0 {
			st.max[i] = v
		}
	}
}

// result renders the group's final output columns for the aggregate specs.
func (st *aggState) result(aggs []algebra.AggSpec, nGroupCols int) []types.Value {
	row := make([]types.Value, 0, nGroupCols+len(aggs))
	row = append(row, st.groupRow...)
	for i, a := range aggs {
		switch a.Func {
		case algebra.AggCount:
			row = append(row, types.NewInt(st.count[i]))
		case algebra.AggSum:
			switch {
			case st.count[i] == 0:
				row = append(row, types.Null())
			case st.isFloat[i]:
				row = append(row, types.NewFloat(st.sumF[i]))
			default:
				row = append(row, types.NewInt(st.sumI[i]))
			}
		case algebra.AggAvg:
			if st.count[i] == 0 {
				row = append(row, types.Null())
			} else {
				row = append(row, types.NewFloat(st.sumF[i]/float64(st.count[i])))
			}
		case algebra.AggMin:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.min[i])
			}
		case algebra.AggMax:
			if !st.seen[i] {
				row = append(row, types.Null())
			} else {
				row = append(row, st.max[i])
			}
		}
	}
	return row
}

// Open implements Operator: it consumes the input and builds all groups.
func (h *HashAggregate) Open() error {
	h.out, h.pos = nil, 0
	if err := h.Input.Open(); err != nil {
		return err
	}
	nAggs := len(h.Aggs)
	groups := make(map[string]*aggState)
	var states []*aggState // first-seen order
	groupProgs := algebra.CompileAll(h.GroupBy)
	keyCols := make([][]types.Value, len(h.GroupBy))
	argProgs := make([]*algebra.Compiled, nAggs)
	argCols := make([][]types.Value, nAggs)
	for i, a := range h.Aggs {
		if !a.Star {
			argProgs[i] = algebra.Compile(a.Arg)
		}
	}
	var keyBuf []byte
	for {
		b, err := h.Input.Next()
		if err != nil {
			return err
		}
		if b == nil {
			break
		}
		rows := b.Rows()
		for g, prog := range groupProgs {
			keyCols[g] = prog.EvalColumn(rows, keyCols[g][:0])
		}
		for i, prog := range argProgs {
			if prog != nil {
				argCols[i] = prog.EvalColumn(rows, argCols[i][:0])
			}
		}
		for i := range rows {
			keyBuf = keyBuf[:0]
			for g := range keyCols {
				keyBuf = keyCols[g][i].AppendKey(keyBuf)
				keyBuf = append(keyBuf, '|')
			}
			st, ok := groups[string(keyBuf)]
			if !ok {
				groupRow := make([]types.Value, len(keyCols))
				for g := range keyCols {
					groupRow[g] = keyCols[g][i]
				}
				st = newAggState(groupRow, nAggs)
				groups[string(keyBuf)] = st
				states = append(states, st)
			}
			for a := range argProgs {
				if argProgs[a] == nil {
					st.count[a]++ // COUNT(*) counts rows unconditionally
				} else {
					st.absorbValue(a, argCols[a][i])
				}
			}
		}
	}
	// A global aggregate over an empty input still emits one row.
	if len(h.GroupBy) == 0 && len(states) == 0 {
		states = append(states, newAggState(nil, nAggs))
	}
	h.out = make([][]types.Value, 0, len(states))
	for _, st := range states {
		h.out = append(h.out, st.result(h.Aggs, len(h.GroupBy)))
	}
	return nil
}

// RowCountHint implements RowCountHinter: after Open the groups are
// materialized, so the count is exact.
func (h *HashAggregate) RowCountHint() (int, bool) { return len(h.out) - h.pos, true }

// Next implements Operator.
func (h *HashAggregate) Next() (*Batch, error) {
	if h.pos >= len(h.out) {
		return nil, nil
	}
	end := h.pos + DefaultBatchSize
	if end > len(h.out) {
		end = len(h.out)
	}
	h.b.SetShared(h.out[h.pos:end])
	h.pos = end
	return &h.b, nil
}

// Close implements Operator.
func (h *HashAggregate) Close() error {
	h.out = nil
	return h.Input.Close()
}
