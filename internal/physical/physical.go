// Package physical is the execution layer of the engine: a small optimizer
// that normalizes logical algebra plans (predicate pushdown, equi-join
// extraction, projection pruning) and a family of Volcano-style physical
// operators (Open/Next/Close iterators) they lower to — streaming scan,
// filter, project, hash join with a nested-loop fallback, hash aggregate,
// run-merging sort, early-terminating limit, union-all, and distinct.
//
// The layer is deliberately independent of the engine's catalog: plans are
// lowered against a Source, so the same operators run the deterministic
// database and the UA-encoded database produced by internal/rewrite. That
// symmetry is the paper's "lightweight" claim in code — the UA frontend adds
// a rewrite, not an engine.
package physical

import "repro/internal/types"

// Operator is a Volcano-style iterator over rows. The contract:
//
//   - Open prepares the operator (and its inputs) for iteration.
//   - Next returns the next row, or (nil, nil) when the input is exhausted.
//     Rows returned by leaf operators may alias stored data; operators that
//     construct rows (project, joins, aggregate, limit) return fresh slices.
//   - Close releases resources; it must be safe to call after Open failed.
type Operator interface {
	Schema() types.Schema
	Open() error
	Next() ([]types.Value, error)
	Close() error
}

// Source resolves table names at lowering time, so one logical plan can run
// against different databases (deterministic vs UA-encoded).
type Source interface {
	// Resolve returns the schema and backing rows of the named table, or an
	// error when the table does not exist.
	Resolve(table string) (types.Schema, [][]types.Value, error)
}

// Drain opens op, collects every row, and closes it. The Close error is
// reported only when iteration itself succeeded.
func Drain(op Operator) ([][]types.Value, error) {
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	var rows [][]types.Value
	for {
		row, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if row == nil {
			break
		}
		rows = append(rows, row)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}
