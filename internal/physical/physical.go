// Package physical is the execution layer of the engine: a small optimizer
// that normalizes logical algebra plans (predicate pushdown, equi-join
// extraction, projection pruning) and a family of batch-at-a-time physical
// operators (Open/Next/Close over Batch) they lower to — zero-copy scan,
// selection-vector filter, slab-allocating project, hash join with a
// nested-loop fallback, hash aggregate, run-merging sort, early-terminating
// limit, union-all, and distinct.
//
// The layer is deliberately independent of the engine's catalog: plans are
// lowered against a Source, so the same operators run the deterministic
// database and the UA-encoded database produced by internal/rewrite. That
// symmetry is the paper's "lightweight" claim in code — the UA frontend adds
// a rewrite, not an engine — and every cycle the batch engine saves is saved
// on both paths at once.
package physical

import (
	"context"

	"repro/internal/types"
	"repro/internal/vector"
)

// Operator is a batch-at-a-time iterator over rows. The contract:
//
//   - Open prepares the operator (and its inputs) for iteration.
//   - Next returns the next non-empty batch, or (nil, nil) when the input is
//     exhausted; empty batches are never returned. The batch (its spine) is
//     valid only until the operator's next Next or Close call; row slices
//     inside it are stable until Close and may be retained. See Batch for
//     the full ownership rules.
//   - Close releases resources; it must be safe to call after Open failed.
type Operator interface {
	Schema() types.Schema
	Open() error
	Next() (*Batch, error)
	Close() error
}

// RowCountHinter is optionally implemented by operators that know, after
// Open, exactly how many rows their Next calls will emit in total. Drain
// uses the hint to size its result slice in one allocation. Operators whose
// output size is data-dependent and not yet materialized (filters, joins,
// distinct) simply do not implement it.
type RowCountHinter interface {
	// RowCountHint reports the exact remaining row count, and whether it is
	// known. Valid only between Open and the first Next.
	RowCountHint() (int, bool)
}

// RowCapHinter is optionally implemented by operators that know, after Open,
// an upper bound on their total output — a fused or filtered pipeline over a
// base-table scan, whose selectivity is unknown but whose output can never
// exceed the scan. Drain uses the cap to pre-size its result spine when no
// exact hint exists; that trades at most the same ≤2x terminal slack that
// append-doubling growth would leave for the elimination of every
// intermediate spine copy. Unlike RowCountHint, the value is a bound, not a
// promise.
type RowCapHinter interface {
	// RowCountCap reports an upper bound on the remaining row count, and
	// whether one is known. Valid only between Open and the first Next.
	RowCountCap() (int, bool)
}

// rowsDrainer is optionally implemented by operators that can produce their
// entire output in one shot more cheaply than batch-at-a-time iteration — a
// serial fused pipeline over a whole-table window, which can size its output
// buffer and result spine exactly instead of appending through a batch.
// Drain calls it once right after Open; handled=false falls back to the
// normal Next loop.
type rowsDrainer interface {
	drainRows() (rows [][]types.Value, handled bool, err error)
}

// Source resolves table names at lowering time, so one logical plan can run
// against different databases (deterministic vs UA-encoded).
type Source interface {
	// Resolve returns the schema and backing rows of the named table, or an
	// error when the table does not exist.
	Resolve(table string) (types.Schema, [][]types.Value, error)
}

// ColumnSource is optionally implemented by sources that also hold columnar
// storage (internal/vector) for their tables. Scans over such sources emit
// dual-view batches and the typed operator paths engage; sources without it
// run the boxed row engine unchanged.
type ColumnSource interface {
	// ResolveColumns returns the cached columnar form of the named table, or
	// ok=false when none is available. The result must describe exactly the
	// rows Resolve returns (lowering discards a columnar form whose length
	// disagrees, so a stale cache degrades to the row path rather than
	// corrupting results).
	ResolveColumns(table string) (cols *vector.Columns, ok bool)
}

// columnsFor resolves the columnar form of a table when the source provides
// one that matches the resolved row count.
func columnsFor(src Source, table string, nRows int) *vector.Columns {
	cs, ok := src.(ColumnSource)
	if !ok {
		return nil
	}
	cols, ok := cs.ResolveColumns(table)
	if !ok || cols == nil || cols.N != nRows {
		return nil
	}
	return cols
}

// Drain opens op, collects every row, and closes it. The Close error is
// reported only when iteration itself succeeded. The result's spine is owned
// by the caller; the rows obey the engine-wide stability rule (stable, but
// possibly aliasing table storage — do not mutate in place).
func Drain(op Operator) ([][]types.Value, error) {
	return DrainContext(context.Background(), op)
}

// DrainContext is Drain under a cancellation context: the drain loop checks
// ctx between batches and before any one-shot whole-output drain, so a
// cancelled or timed-out query stops producing within one batch of the
// signal and returns ctx's error with the operator closed and its resources
// (spill files, governed reservations) released. Cancellation inside a
// pipeline breaker's materialization is the governor's job — engine.Session
// binds the same ctx to the query's MemGovernor, whose Err the spill paths
// poll — so between the two checks a query under a budget is cancellable
// both mid-spill and mid-stream.
func DrainContext(ctx context.Context, op Operator) ([][]types.Value, error) {
	if err := op.Open(); err != nil {
		op.Close()
		return nil, err
	}
	return drainOpened(ctx, op)
}

// drainOpened collects every row from an already-opened operator and closes
// it — the shared back half of Drain and the row fallback of DrainColumns.
func drainOpened(ctx context.Context, op Operator) ([][]types.Value, error) {
	if err := ctx.Err(); err != nil {
		op.Close()
		return nil, err
	}
	if d, ok := op.(rowsDrainer); ok {
		rows, handled, err := d.drainRows()
		if err != nil {
			op.Close()
			return nil, err
		}
		if handled {
			if cerr := op.Close(); cerr != nil {
				return nil, cerr
			}
			return rows, nil
		}
	}
	var rows [][]types.Value
	if h, ok := op.(RowCountHinter); ok {
		if n, known := h.RowCountHint(); known {
			rows = make([][]types.Value, 0, n)
		}
	}
	if rows == nil {
		if h, ok := op.(RowCapHinter); ok {
			if n, known := h.RowCountCap(); known {
				rows = make([][]types.Value, 0, n)
			}
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			op.Close()
			return nil, err
		}
		b, err := op.Next()
		if err != nil {
			op.Close()
			return nil, err
		}
		if b == nil {
			break
		}
		rows = append(rows, b.Rows()...)
	}
	if err := op.Close(); err != nil {
		return nil, err
	}
	return rows, nil
}
