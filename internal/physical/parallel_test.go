package physical

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/algebra"
	"repro/internal/types"
)

// parSource is an in-memory Source for parallel lowering tests.
type parSource map[string]struct {
	schema types.Schema
	rows   [][]types.Value
}

func (s parSource) Resolve(table string) (types.Schema, [][]types.Value, error) {
	t, ok := s[table]
	if !ok {
		return types.Schema{}, nil, fmt.Errorf("no table %q", table)
	}
	return t.schema, t.rows, nil
}

func (s parSource) put(name string, attrs []string, rows [][]types.Value) {
	s[name] = struct {
		schema types.Schema
		rows   [][]types.Value
	}{types.NewSchema(name, attrs...), rows}
}

// intTable builds n rows of (i%domain, i, i%3 as string-ish mix with NULLs).
func intTable(n, domain int) [][]types.Value {
	rows := make([][]types.Value, n)
	for i := range rows {
		var c types.Value
		switch i % 5 {
		case 0:
			c = types.Null()
		case 1:
			c = types.NewString("x")
		default:
			c = types.NewInt(int64(i % 4))
		}
		rows[i] = []types.Value{types.NewInt(int64(i % domain)), types.NewInt(int64(i)), c}
	}
	return rows
}

// parOpts is the small-morsel option set the tests use so even tiny tables
// split into many morsels.
func parOpts(dop int) Options {
	return Options{DOP: dop, MorselSize: 64, MinParallelRows: 1}
}

// mustRows lowers and drains plan with the given options.
func mustRows(t *testing.T, plan algebra.Node, src Source, opt Options) [][]types.Value {
	t.Helper()
	op, err := LowerOpts(plan, src, opt)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	rows, err := Drain(op)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	return rows
}

// mustIdentical asserts byte-identical rows in identical order.
func mustIdentical(t *testing.T, got, want [][]types.Value, what string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d rows, want %d", what, len(got), len(want))
	}
	for i := range got {
		if types.Tuple(got[i]).Key() != types.Tuple(want[i]).Key() {
			t.Fatalf("%s: row %d differs:\ngot:  %v\nwant: %v", what, i, got[i], want[i])
		}
	}
}

func scanNode(name string, schema types.Schema) *algebra.Scan {
	return &algebra.Scan{Table: name, TblSchema: schema}
}

// sfpPlan is the canonical filter+project pipeline over t.
func sfpPlan(src parSource) algebra.Node {
	return &algebra.Project{
		Input: &algebra.Filter{
			Input: scanNode("t", src["t"].schema),
			Pred: algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1},
				R: algebra.Const{V: types.NewInt(700)}},
		},
		Exprs: []algebra.Expr{algebra.Col{Idx: 0},
			algebra.Bin{Op: algebra.OpAdd, L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 1}}},
		Names: []string{"k", "kv"},
	}
}

// TestGatherPipelineMatchesSerial: the parallel pipeline must produce
// byte-identical ordered output to serial lowering across sizes that do and
// don't divide the morsel size, and across DOPs.
func TestGatherPipelineMatchesSerial(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 640, 1000} {
		src := parSource{}
		src.put("t", []string{"k", "v", "c"}, intTable(n, 7))
		plan := sfpPlan(src)
		want := mustRows(t, plan, src, Options{DOP: 1})
		for _, dop := range []int{2, 3, 8} {
			got := mustRows(t, plan, src, parOpts(dop))
			mustIdentical(t, got, want, fmt.Sprintf("n=%d dop=%d", n, dop))
		}
	}
}

// TestGatherLowering pins the plan shapes: big-table pipelines gather, bare
// scans and small tables stay serial, DOP=1 is the serial tree.
func TestGatherLowering(t *testing.T) {
	src := parSource{}
	src.put("t", []string{"k", "v", "c"}, intTable(1000, 7))
	src.put("tiny", []string{"k", "v", "c"}, intTable(10, 7))

	plan := sfpPlan(src)
	op, err := LowerOpts(plan, src, parOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	s := Explain(op)
	if !strings.Contains(s, "Gather[dop=4, morsel=64]") || !strings.Contains(s, "MorselScan(t)") {
		t.Errorf("big pipeline must gather:\n%s", s)
	}

	op, err = LowerOpts(plan, src, Options{DOP: 1, MorselSize: 64, MinParallelRows: 1})
	if err != nil {
		t.Fatal(err)
	}
	if s := Explain(op); strings.Contains(s, "Gather") {
		t.Errorf("DOP=1 must lower serially:\n%s", s)
	}

	// Bare scan: no compute to parallelize.
	op, err = LowerOpts(scanNode("t", src["t"].schema), src, parOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if s := Explain(op); strings.Contains(s, "Gather") {
		t.Errorf("bare scan must stay serial:\n%s", s)
	}

	// Small table: below MinParallelRows.
	small := &algebra.Filter{Input: scanNode("tiny", src["tiny"].schema),
		Pred: algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1}, R: algebra.Const{V: types.NewInt(5)}}}
	op, err = LowerOpts(small, src, Options{DOP: 4, MorselSize: 64, MinParallelRows: 100})
	if err != nil {
		t.Fatal(err)
	}
	if s := Explain(op); strings.Contains(s, "Gather") {
		t.Errorf("small table must stay serial:\n%s", s)
	}
}

// TestGatherHintForwarding: satellite acceptance — a Gather over a
// cardinality-preserving pipeline (no Filter) forwards the scan's row count
// so Drain keeps its single-allocation result spine; a filtered pipeline
// must not hint.
func TestGatherHintForwarding(t *testing.T) {
	const n = 1000
	src := parSource{}
	src.put("t", []string{"k", "v", "c"}, intTable(n, 7))
	proj := &algebra.Project{
		Input: scanNode("t", src["t"].schema),
		Exprs: []algebra.Expr{algebra.Bin{Op: algebra.OpAdd,
			L: algebra.Col{Idx: 0}, R: algebra.Col{Idx: 1}}},
		Names: []string{"s"},
	}
	op, err := LowerOpts(proj, src, parOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	g, ok := op.(*Gather)
	if !ok {
		t.Fatalf("projection pipeline must lower to Gather, got %T", op)
	}
	if err := g.Open(); err != nil {
		t.Fatal(err)
	}
	hint, known := g.RowCountHint()
	if !known || hint != n {
		t.Fatalf("Gather hint = (%d, %v), want (%d, true)", hint, known, n)
	}
	if err := g.Close(); err != nil {
		t.Fatal(err)
	}

	// Drain's preallocation path: the hint sizes the result spine exactly, so
	// append never regrows it — len == cap pins the single allocation.
	rows, err := Drain(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != n || cap(rows) != n {
		t.Fatalf("Drain over hinted Gather: len=%d cap=%d, want both %d (single allocation)",
			len(rows), cap(rows), n)
	}

	// Filtered pipeline: data-dependent, must not hint.
	op, err = LowerOpts(sfpPlan(src), src, parOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if _, known := op.(*Gather).RowCountHint(); known {
		t.Error("filtered pipeline must not forward a row-count hint")
	}
}

// TestParallelJoinMatchesSerial: parallel probe over the shared partitioned
// build must agree byte-for-byte with the serial HashJoin, including NULL
// join keys and a residual predicate.
func TestParallelJoinMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mkRows := func(n int) [][]types.Value {
		rows := make([][]types.Value, n)
		for i := range rows {
			var k types.Value
			if rng.Intn(8) == 0 {
				k = types.Null()
			} else {
				k = types.NewInt(int64(rng.Intn(20)))
			}
			rows[i] = []types.Value{k, types.NewInt(int64(i))}
		}
		return rows
	}
	src := parSource{}
	src.put("l", []string{"k", "v"}, mkRows(900))
	src.put("r", []string{"k", "w"}, mkRows(300))

	for _, residual := range []algebra.Expr{
		nil,
		algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1}, R: algebra.Col{Idx: 3}},
	} {
		plan := &algebra.Join{
			Left: &algebra.Filter{Input: scanNode("l", src["l"].schema),
				Pred: algebra.Bin{Op: algebra.OpGe, L: algebra.Col{Idx: 1}, R: algebra.Const{V: types.NewInt(50)}}},
			Right:    scanNode("r", src["r"].schema),
			EquiL:    []int{0},
			EquiR:    []int{0},
			Residual: residual,
		}
		want := mustRows(t, plan, src, Options{DOP: 1})
		for _, dop := range []int{2, 5} {
			op, err := LowerOpts(plan, src, parOpts(dop))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := op.(*Gather); !ok {
				t.Fatalf("parallel equi-join must lower to Gather, got %T", op)
			}
			got, err := Drain(op)
			if err != nil {
				t.Fatal(err)
			}
			mustIdentical(t, got, want, fmt.Sprintf("join dop=%d residual=%v", dop, residual != nil))
		}
	}

	// Bare-scan probe side is allowed for joins (the probe is the compute).
	bare := &algebra.Join{Left: scanNode("l", src["l"].schema),
		Right: scanNode("r", src["r"].schema), EquiL: []int{0}, EquiR: []int{0}}
	op, err := LowerOpts(bare, src, parOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	s := Explain(op)
	if !strings.Contains(s, "HashJoinProbe") || !strings.Contains(s, "build:") {
		t.Errorf("parallel join explain must show probe and build:\n%s", s)
	}
	mustIdentical(t, mustRows(t, bare, src, parOpts(3)),
		mustRows(t, bare, src, Options{DOP: 1}), "bare probe join")
}

// TestParallelAggregateMatchesSerial: per-worker partial aggregation merged
// in morsel order must reproduce the serial first-seen group order and the
// exact integer aggregate values, including NULL groups and NULL arguments.
func TestParallelAggregateMatchesSerial(t *testing.T) {
	src := parSource{}
	src.put("t", []string{"k", "v", "c"}, intTable(1200, 9))
	aggs := []algebra.AggSpec{
		{Func: algebra.AggCount, Star: true, Name: "n"},
		{Func: algebra.AggSum, Arg: algebra.Col{Idx: 1}, Name: "s"},
		{Func: algebra.AggMin, Arg: algebra.Col{Idx: 2}, Name: "lo"},
		{Func: algebra.AggMax, Arg: algebra.Col{Idx: 2}, Name: "hi"},
		{Func: algebra.AggAvg, Arg: algebra.Col{Idx: 1}, Name: "a"},
	}
	grouped := &algebra.Aggregate{
		Input:      scanNode("t", src["t"].schema),
		GroupBy:    []algebra.Expr{algebra.Col{Idx: 2}},
		GroupNames: []string{"g"},
		Aggs:       aggs,
	}
	global := &algebra.Aggregate{Input: &algebra.Filter{
		Input: scanNode("t", src["t"].schema),
		Pred:  algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1}, R: algebra.Const{V: types.NewInt(400)}},
	}, Aggs: aggs}
	for name, plan := range map[string]algebra.Node{"grouped": grouped, "global": global} {
		want := mustRows(t, plan, src, Options{DOP: 1})
		for _, dop := range []int{2, 4} {
			op, err := LowerOpts(plan, src, parOpts(dop))
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := op.(*ParallelHashAggregate); !ok {
				t.Fatalf("%s: want ParallelHashAggregate, got %T", name, op)
			}
			got, err := Drain(op)
			if err != nil {
				t.Fatal(err)
			}
			mustIdentical(t, got, want, fmt.Sprintf("%s dop=%d", name, dop))
		}
	}

	// A filtered-to-empty global aggregate still emits its single row.
	empty := &algebra.Aggregate{Input: &algebra.Filter{
		Input: scanNode("t", src["t"].schema),
		Pred:  algebra.Bin{Op: algebra.OpLt, L: algebra.Col{Idx: 1}, R: algebra.Const{V: types.NewInt(-1)}},
	}, Aggs: aggs[:2]}
	mustIdentical(t, mustRows(t, empty, src, parOpts(3)),
		mustRows(t, empty, src, Options{DOP: 1}), "empty global aggregate")
}

// TestGatherEarlyClose: a Limit above a Gather stops pulling mid-stream;
// Close must tear the worker pool down without deadlock and the result must
// still be the serial prefix.
func TestGatherEarlyClose(t *testing.T) {
	src := parSource{}
	src.put("t", []string{"k", "v", "c"}, intTable(5000, 7))
	plan := &algebra.Limit{Input: sfpPlan(src), N: 5}
	want := mustRows(t, plan, src, Options{DOP: 1})
	for i := 0; i < 20; i++ {
		got := mustRows(t, plan, src, parOpts(4))
		mustIdentical(t, got, want, "limited gather")
	}
}

// TestGatherReOpen: operators support Open after Close; the pool must come
// back up with a rewound morsel queue.
func TestGatherReOpen(t *testing.T) {
	src := parSource{}
	src.put("t", []string{"k", "v", "c"}, intTable(500, 7))
	op, err := LowerOpts(sfpPlan(src), src, parOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	want, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Drain(op)
	if err != nil {
		t.Fatal(err)
	}
	mustIdentical(t, got, want, "re-opened gather")
}

// failOp errors on the n-th Next call (or on Open when openErr is set).
type failOp struct {
	inner   Operator
	openErr error
	failAt  int
	calls   int
}

func (f *failOp) Schema() types.Schema { return f.inner.Schema() }
func (f *failOp) Open() error {
	f.calls = 0
	if f.openErr != nil {
		return f.openErr
	}
	return f.inner.Open()
}
func (f *failOp) Next() (*Batch, error) {
	f.calls++
	if f.calls >= f.failAt {
		return nil, errors.New("synthetic next failure")
	}
	return f.inner.Next()
}
func (f *failOp) Close() error { return f.inner.Close() }

// TestGatherErrorPropagation: worker pipeline failures (Open and Next) must
// surface from Gather without deadlocking the pool.
func TestGatherErrorPropagation(t *testing.T) {
	rows := intTable(640, 7)
	ms := &morselSource{rows: rows, size: 64}
	mkGather := func(n int, openErr error, failAt int) *Gather {
		workers := make([]*Exchange, n)
		for i := range workers {
			scan := &MorselScan{Table: "t", src: ms, schema: types.NewSchema("t", "k", "v", "c")}
			var pipe Operator = scan
			if i == 0 { // one faulty worker
				pipe = &failOp{inner: scan, openErr: openErr, failAt: failAt}
			}
			workers[i] = &Exchange{Pipe: pipe, Scan: scan}
		}
		return &Gather{Workers: workers, src: ms, schema: types.NewSchema("t", "k", "v", "c")}
	}
	for name, g := range map[string]*Gather{
		// Open always runs on every worker, so a faulty worker among healthy
		// ones is deterministic; a Next failure needs the faulty worker to be
		// the only one, or the others may legitimately claim every morsel
		// before it reaches its failing call.
		"open-failure": mkGather(3, errors.New("synthetic open failure"), 0),
		"next-failure": mkGather(1, nil, 3),
	} {
		if _, err := Drain(g); err == nil {
			t.Errorf("%s: Drain must surface the worker error", name)
		}
	}

	// Build-side failure of a parallel join surfaces from Open.
	src := parSource{}
	src.put("l", []string{"k", "v", "c"}, rows)
	spec, ok, err := pipelineFor(scanNode("l", types.NewSchema("l", "k", "v", "c")), src,
		parOpts(2).normalized())
	if err != nil || !ok {
		t.Fatalf("pipelineFor: %v %v", ok, err)
	}
	build := &hashBuild{
		Input: &failOp{inner: NewScan("r", types.NewSchema("r", "k"), nil),
			openErr: errors.New("synthetic build failure")},
		Keys: []int{0}, dop: 2,
	}
	g := newGather(spec, parOpts(2).normalized(), spec.schema, func(pipe Operator) Operator {
		return &HashJoinProbe{Input: pipe, Build: build, EquiL: []int{0}, schema: spec.schema}
	}, build.build, false, false)
	if err := g.Open(); err == nil {
		g.Close()
		t.Error("build failure must surface from Gather.Open")
	}
}

// TestMorselSourceClaim: concurrent claims must partition the table exactly.
func TestMorselSourceClaim(t *testing.T) {
	ms := &morselSource{rows: make([][]types.Value, 1000), size: 64}
	if n := ms.nMorsels(); n != 16 {
		t.Fatalf("nMorsels = %d, want 16", n)
	}
	var mu sync.Mutex
	seen := map[int][2]int{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				seq, lo, hi, ok := ms.claim()
				if !ok {
					return
				}
				mu.Lock()
				seen[seq] = [2]int{lo, hi}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	if len(seen) != 16 {
		t.Fatalf("claimed %d morsels, want 16", len(seen))
	}
	covered := 0
	for seq, r := range seen {
		if r[0] != seq*64 {
			t.Errorf("morsel %d starts at %d", seq, r[0])
		}
		covered += r[1] - r[0]
	}
	if covered != 1000 {
		t.Errorf("morsels cover %d rows, want 1000", covered)
	}
}
