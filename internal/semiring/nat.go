package semiring

import "strconv"

// NatSemiring is the bag semiring N = (ℕ, +, ×, 0, 1). An N-relation
// annotates each tuple with its multiplicity. The natural order is the usual
// ≤ on ℕ, GLB is min and LUB is max — so the certain multiplicity of a tuple
// across worlds is its minimum multiplicity, matching Guagliardo & Libkin's
// definition of certain answers under bag semantics.
type NatSemiring struct{}

// Nat is the canonical instance of the bag semiring. Annotations are int64
// and must be non-negative; operations do not check for overflow (real
// multiplicities are tiny).
var Nat = NatSemiring{}

// Zero returns 0.
func (NatSemiring) Zero() int64 { return 0 }

// One returns 1.
func (NatSemiring) One() int64 { return 1 }

// Add returns a + b.
func (NatSemiring) Add(a, b int64) int64 { return a + b }

// Mul returns a × b.
func (NatSemiring) Mul(a, b int64) int64 { return a * b }

// Eq reports a = b.
func (NatSemiring) Eq(a, b int64) bool { return a == b }

// IsZero reports a = 0.
func (NatSemiring) IsZero(a int64) bool { return a == 0 }

// Leq reports a ≤ b.
func (NatSemiring) Leq(a, b int64) bool { return a <= b }

// Glb returns min(a, b).
func (NatSemiring) Glb(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Lub returns max(a, b).
func (NatSemiring) Lub(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Sub returns the truncated difference a ∸ b = max(0, a-b).
func (NatSemiring) Sub(a, b int64) int64 {
	if a <= b {
		return 0
	}
	return a - b
}

// Format renders the multiplicity in decimal.
func (NatSemiring) Format(a int64) string { return strconv.FormatInt(a, 10) }

var (
	_ Lattice[int64] = Nat
	_ Monus[int64]   = Nat
)
