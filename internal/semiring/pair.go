package semiring

import "fmt"

// Pair is an element of the UA-semiring K² = K × K (Definition 3). Cert is
// the under-approximation c of the tuple's certain annotation; Det is the
// tuple's annotation d in the designated best-guess world. A UA-DB maintains
// the invariant Cert ⪯ certK(D, t) ⪯ Det, which RA⁺ queries preserve
// (Theorems 4 and 5).
type Pair[T any] struct {
	Cert T // c: lower bound on the certain annotation
	Det  T // d: annotation in the best-guess world
}

// PairSemiring is the product semiring K² with pointwise operations. It is
// an l-semiring whenever K is (the product of lattices is a lattice).
type PairSemiring[T any] struct {
	K Lattice[T]
}

// UA returns the UA-semiring K² over base semiring k.
func UA[T any](k Lattice[T]) PairSemiring[T] { return PairSemiring[T]{K: k} }

// Zero returns [0, 0].
func (p PairSemiring[T]) Zero() Pair[T] { return Pair[T]{p.K.Zero(), p.K.Zero()} }

// One returns [1, 1].
func (p PairSemiring[T]) One() Pair[T] { return Pair[T]{p.K.One(), p.K.One()} }

// Add adds pointwise.
func (p PairSemiring[T]) Add(a, b Pair[T]) Pair[T] {
	return Pair[T]{p.K.Add(a.Cert, b.Cert), p.K.Add(a.Det, b.Det)}
}

// Mul multiplies pointwise.
func (p PairSemiring[T]) Mul(a, b Pair[T]) Pair[T] {
	return Pair[T]{p.K.Mul(a.Cert, b.Cert), p.K.Mul(a.Det, b.Det)}
}

// Eq compares pointwise.
func (p PairSemiring[T]) Eq(a, b Pair[T]) bool {
	return p.K.Eq(a.Cert, b.Cert) && p.K.Eq(a.Det, b.Det)
}

// IsZero reports whether both components are 0_K. A tuple is absent from a
// UA-DB only when it is absent from the best-guess world and carries no
// certainty evidence.
func (p PairSemiring[T]) IsZero(a Pair[T]) bool {
	return p.K.IsZero(a.Cert) && p.K.IsZero(a.Det)
}

// Leq orders pointwise.
func (p PairSemiring[T]) Leq(a, b Pair[T]) bool {
	return p.K.Leq(a.Cert, b.Cert) && p.K.Leq(a.Det, b.Det)
}

// Glb takes the pointwise GLB.
func (p PairSemiring[T]) Glb(a, b Pair[T]) Pair[T] {
	return Pair[T]{p.K.Glb(a.Cert, b.Cert), p.K.Glb(a.Det, b.Det)}
}

// Lub takes the pointwise LUB.
func (p PairSemiring[T]) Lub(a, b Pair[T]) Pair[T] {
	return Pair[T]{p.K.Lub(a.Cert, b.Cert), p.K.Lub(a.Det, b.Det)}
}

// Format renders the pair as [c, d].
func (p PairSemiring[T]) Format(a Pair[T]) string {
	return fmt.Sprintf("[%s, %s]", p.K.Format(a.Cert), p.K.Format(a.Det))
}

// CertHom extracts the under-approximation component; it is the semiring
// homomorphism h_cert of Section 5.2.
func CertHom[T any](a Pair[T]) T { return a.Cert }

// DetHom extracts the best-guess-world component; it is the semiring
// homomorphism h_det of Section 5.2.
func DetHom[T any](a Pair[T]) T { return a.Det }

// Valid reports whether the pair satisfies the UA invariant c ⪯ d that holds
// for every tuple of a well-formed UA-DB (the certain annotation can never
// exceed the annotation in any single world).
func (p PairSemiring[T]) Valid(a Pair[T]) bool { return p.K.Leq(a.Cert, a.Det) }
