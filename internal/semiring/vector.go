package semiring

import "strings"

// VectorSemiring is the possible-world semiring K^W of Definition 2: a
// fixed-width product of K with itself, one component per possible world.
// All operations apply pointwise. When K is an l-semiring so is K^W, and the
// certain annotation of a tuple is the GLB folded across its vector
// (Section 3.2) while the possible annotation is the LUB.
type VectorSemiring[T any] struct {
	K Lattice[T]
	N int // |W|: number of possible worlds
}

// Worlds returns the possible-world semiring K^W with n worlds.
func Worlds[T any](k Lattice[T], n int) VectorSemiring[T] {
	if n < 1 {
		panic("semiring: K^W needs at least one world")
	}
	return VectorSemiring[T]{K: k, N: n}
}

// Zero returns the all-0_K vector.
func (v VectorSemiring[T]) Zero() []T {
	z := make([]T, v.N)
	for i := range z {
		z[i] = v.K.Zero()
	}
	return z
}

// One returns the all-1_K vector.
func (v VectorSemiring[T]) One() []T {
	o := make([]T, v.N)
	for i := range o {
		o[i] = v.K.One()
	}
	return o
}

// Add adds pointwise.
func (v VectorSemiring[T]) Add(a, b []T) []T {
	c := make([]T, v.N)
	for i := range c {
		c[i] = v.K.Add(a[i], b[i])
	}
	return c
}

// Mul multiplies pointwise.
func (v VectorSemiring[T]) Mul(a, b []T) []T {
	c := make([]T, v.N)
	for i := range c {
		c[i] = v.K.Mul(a[i], b[i])
	}
	return c
}

// Eq compares pointwise.
func (v VectorSemiring[T]) Eq(a, b []T) bool {
	for i := 0; i < v.N; i++ {
		if !v.K.Eq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// IsZero reports whether every component is 0_K: a tuple is absent from the
// incomplete database iff it is absent from every possible world.
func (v VectorSemiring[T]) IsZero(a []T) bool {
	for i := 0; i < v.N; i++ {
		if !v.K.IsZero(a[i]) {
			return false
		}
	}
	return true
}

// Leq orders pointwise.
func (v VectorSemiring[T]) Leq(a, b []T) bool {
	for i := 0; i < v.N; i++ {
		if !v.K.Leq(a[i], b[i]) {
			return false
		}
	}
	return true
}

// Glb takes the pointwise GLB.
func (v VectorSemiring[T]) Glb(a, b []T) []T {
	c := make([]T, v.N)
	for i := range c {
		c[i] = v.K.Glb(a[i], b[i])
	}
	return c
}

// Lub takes the pointwise LUB.
func (v VectorSemiring[T]) Lub(a, b []T) []T {
	c := make([]T, v.N)
	for i := range c {
		c[i] = v.K.Lub(a[i], b[i])
	}
	return c
}

// Format renders the vector as [k1, k2, ...].
func (v VectorSemiring[T]) Format(a []T) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i, x := range a {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(v.K.Format(x))
	}
	sb.WriteByte(']')
	return sb.String()
}

// Cert folds the GLB across the vector: certK(k⃗) of Section 3.2.
func (v VectorSemiring[T]) Cert(a []T) T { return GlbAll[T](v.K, a) }

// Poss folds the LUB across the vector: possK(k⃗) of Section 3.2.
func (v VectorSemiring[T]) Poss(a []T) T { return LubAll[T](v.K, a) }

// PW returns the world-extraction homomorphism pw_i of Section 3.2
// (Lemma 1: pw_i is a semiring homomorphism K^W → K).
func PW[T any](i int) Hom[[]T, T] {
	return func(a []T) T { return a[i] }
}
