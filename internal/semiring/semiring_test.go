package semiring

import (
	"math/rand"
	"testing"
)

// checkLaws verifies the commutative-semiring axioms and, for lattices, the
// natural-order/lattice axioms on a sample of elements.
func checkLaws[T any](t *testing.T, name string, k Semiring[T], elems []T) {
	t.Helper()
	eq := k.Eq
	for _, a := range elems {
		if !eq(k.Add(a, k.Zero()), a) {
			t.Errorf("%s: a ⊕ 0 ≠ a for %s", name, k.Format(a))
		}
		if !eq(k.Mul(a, k.One()), a) {
			t.Errorf("%s: a ⊗ 1 ≠ a for %s", name, k.Format(a))
		}
		if !eq(k.Mul(a, k.Zero()), k.Zero()) {
			t.Errorf("%s: a ⊗ 0 ≠ 0 for %s", name, k.Format(a))
		}
		if k.IsZero(a) != eq(a, k.Zero()) {
			t.Errorf("%s: IsZero inconsistent for %s", name, k.Format(a))
		}
		for _, b := range elems {
			if !eq(k.Add(a, b), k.Add(b, a)) {
				t.Errorf("%s: ⊕ not commutative on %s, %s", name, k.Format(a), k.Format(b))
			}
			if !eq(k.Mul(a, b), k.Mul(b, a)) {
				t.Errorf("%s: ⊗ not commutative on %s, %s", name, k.Format(a), k.Format(b))
			}
			for _, c := range elems {
				if !eq(k.Add(k.Add(a, b), c), k.Add(a, k.Add(b, c))) {
					t.Errorf("%s: ⊕ not associative", name)
				}
				if !eq(k.Mul(k.Mul(a, b), c), k.Mul(a, k.Mul(b, c))) {
					t.Errorf("%s: ⊗ not associative", name)
				}
				if !eq(k.Mul(a, k.Add(b, c)), k.Add(k.Mul(a, b), k.Mul(a, c))) {
					t.Errorf("%s: ⊗ does not distribute over ⊕ on %s,%s,%s",
						name, k.Format(a), k.Format(b), k.Format(c))
				}
			}
		}
	}
}

func checkLattice[T any](t *testing.T, name string, k Lattice[T], elems []T) {
	t.Helper()
	for _, a := range elems {
		if !k.Leq(a, a) {
			t.Errorf("%s: ⪯ not reflexive", name)
		}
		if !k.Leq(k.Zero(), a) {
			t.Errorf("%s: 0 is not the least element vs %s", name, k.Format(a))
		}
		for _, b := range elems {
			g, l := k.Glb(a, b), k.Lub(a, b)
			if !k.Leq(g, a) || !k.Leq(g, b) {
				t.Errorf("%s: GLB(%s,%s)=%s not a lower bound", name, k.Format(a), k.Format(b), k.Format(g))
			}
			if !k.Leq(a, l) || !k.Leq(b, l) {
				t.Errorf("%s: LUB(%s,%s)=%s not an upper bound", name, k.Format(a), k.Format(b), k.Format(l))
			}
			// Absorption laws of a lattice.
			if !k.Eq(k.Lub(a, k.Glb(a, b)), a) {
				t.Errorf("%s: absorption a ⊔ (a ⊓ b) ≠ a", name)
			}
			if !k.Eq(k.Glb(a, k.Lub(a, b)), a) {
				t.Errorf("%s: absorption a ⊓ (a ⊔ b) ≠ a", name)
			}
			// Antisymmetry.
			if k.Leq(a, b) && k.Leq(b, a) && !k.Eq(a, b) {
				t.Errorf("%s: ⪯ not antisymmetric", name)
			}
			// Natural order coherence: a ⪯ a ⊕ b (the defining witness).
			if !k.Leq(a, k.Add(a, b)) {
				t.Errorf("%s: a ⪯̸ a ⊕ b for %s, %s", name, k.Format(a), k.Format(b))
			}
			// Lemma 2: monotonicity of ⊕ and ⊗.
			for _, c := range elems {
				if k.Leq(a, b) {
					if !k.Leq(k.Add(a, c), k.Add(b, c)) {
						t.Errorf("%s: ⊕ not monotone", name)
					}
					if !k.Leq(k.Mul(a, c), k.Mul(b, c)) {
						t.Errorf("%s: ⊗ not monotone", name)
					}
				}
			}
		}
	}
}

func TestBoolLaws(t *testing.T) {
	elems := []bool{false, true}
	checkLaws[bool](t, "B", Bool, elems)
	checkLattice[bool](t, "B", Bool, elems)
}

func TestNatLaws(t *testing.T) {
	elems := []int64{0, 1, 2, 3, 5, 17}
	checkLaws[int64](t, "N", Nat, elems)
	checkLattice[int64](t, "N", Nat, elems)
}

func TestAccessLaws(t *testing.T) {
	checkLaws[Level](t, "A", Access, Levels)
	checkLattice[Level](t, "A", Access, Levels)
}

func TestFuzzyLaws(t *testing.T) {
	elems := []float64{0, 0.2, 0.5, 0.9, 1}
	checkLaws[float64](t, "F", Fuzzy, elems)
	checkLattice[float64](t, "F", Fuzzy, elems)
}

func TestTropicalLaws(t *testing.T) {
	elems := []float64{0, 1, 2.5, 10, Inf}
	checkLaws[float64](t, "T", Tropical, elems)
	checkLattice[float64](t, "T", Tropical, elems)
}

func TestWhyLaws(t *testing.T) {
	elems := []WhyProv{
		WhyZero(), WhyOne(), WhySource("a"), WhySource("b"),
		Why.Mul(WhySource("a"), WhySource("b")),
		Why.Add(WhySource("a"), WhySource("b")),
	}
	checkLaws[WhyProv](t, "Why", Why, elems)
	checkLattice[WhyProv](t, "Why", Why, elems)
}

func TestPairLaws(t *testing.T) {
	ua := UA[int64](Nat)
	var elems []Pair[int64]
	for _, c := range []int64{0, 1, 2} {
		for _, d := range []int64{0, 1, 3} {
			elems = append(elems, Pair[int64]{Cert: c, Det: d})
		}
	}
	checkLaws[Pair[int64]](t, "N²", ua, elems)
	checkLattice[Pair[int64]](t, "N²", ua, elems)
}

func TestVectorLaws(t *testing.T) {
	kw := Worlds[int64](Nat, 3)
	rng := rand.New(rand.NewSource(7))
	var elems [][]int64
	for i := 0; i < 6; i++ {
		elems = append(elems, []int64{rng.Int63n(4), rng.Int63n(4), rng.Int63n(4)})
	}
	checkLaws[[]int64](t, "N^3", kw, elems)
	checkLattice[[]int64](t, "N^3", kw, elems)
}

func TestNaturalOrderDefinition(t *testing.T) {
	// For N, B, A: a ⪯ b ⇔ ∃c: a ⊕ c = b. Verify Leq agrees with an
	// explicit witness search on small domains.
	for a := int64(0); a < 6; a++ {
		for b := int64(0); b < 6; b++ {
			witness := false
			for c := int64(0); c <= b; c++ {
				if a+c == b {
					witness = true
				}
			}
			if Nat.Leq(a, b) != witness {
				t.Errorf("N: Leq(%d,%d) disagrees with witness definition", a, b)
			}
		}
	}
	for _, a := range []bool{false, true} {
		for _, b := range []bool{false, true} {
			witness := false
			for _, c := range []bool{false, true} {
				if (a || c) == b {
					witness = true
				}
			}
			if Bool.Leq(a, b) != witness {
				t.Errorf("B: Leq(%v,%v) disagrees with witness definition", a, b)
			}
		}
	}
}

func TestGlbAllLubAll(t *testing.T) {
	if GlbAll[int64](Nat, []int64{3, 1, 2}) != 1 {
		t.Error("GlbAll")
	}
	if LubAll[int64](Nat, []int64{3, 1, 2}) != 3 {
		t.Error("LubAll")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("GlbAll on empty should panic")
			}
		}()
		GlbAll[int64](Nat, nil)
	}()
	// GLB of a set is order-insensitive (lattice associativity/commutativity).
	rng := rand.New(rand.NewSource(1))
	vals := []int64{5, 2, 9, 2, 7}
	want := GlbAll[int64](Nat, vals)
	for i := 0; i < 10; i++ {
		shuf := append([]int64(nil), vals...)
		rng.Shuffle(len(shuf), func(a, b int) { shuf[a], shuf[b] = shuf[b], shuf[a] })
		if GlbAll[int64](Nat, shuf) != want {
			t.Error("GlbAll order-sensitive")
		}
	}
}

func TestMonus(t *testing.T) {
	if Nat.Sub(5, 3) != 2 || Nat.Sub(3, 5) != 0 || Nat.Sub(3, 3) != 0 {
		t.Error("N monus")
	}
	if Bool.Sub(true, false) != true || Bool.Sub(true, true) != false || Bool.Sub(false, true) != false {
		t.Error("B monus")
	}
	// Monus law: b ⊕ (a ⊖ b) ⪰ a.
	for a := int64(0); a < 5; a++ {
		for b := int64(0); b < 5; b++ {
			if !Nat.Leq(a, Nat.Add(b, Nat.Sub(a, b))) {
				t.Errorf("N monus law fails at %d, %d", a, b)
			}
		}
	}
}

func TestCertHomDetHom(t *testing.T) {
	// h_cert and h_det are semiring homomorphisms K² → K.
	ua := UA[int64](Nat)
	pairs := []Pair[int64]{{0, 0}, {1, 1}, {1, 2}, {0, 3}, {2, 2}}
	homs := map[string]Hom[Pair[int64], int64]{"h_cert": CertHom[int64], "h_det": DetHom[int64]}
	for name, h := range homs {
		if h(ua.Zero()) != 0 {
			t.Errorf("%s(0) != 0", name)
		}
		if h(ua.One()) != 1 {
			t.Errorf("%s(1) != 1", name)
		}
		for _, a := range pairs {
			for _, b := range pairs {
				if h(ua.Add(a, b)) != Nat.Add(h(a), h(b)) {
					t.Errorf("%s does not distribute over ⊕", name)
				}
				if h(ua.Mul(a, b)) != Nat.Mul(h(a), h(b)) {
					t.Errorf("%s does not distribute over ⊗", name)
				}
			}
		}
	}
}

func TestPWHomomorphism(t *testing.T) {
	// Lemma 1: pw_i is a semiring homomorphism K^W → K.
	kw := Worlds[int64](Nat, 3)
	rng := rand.New(rand.NewSource(9))
	vecs := make([][]int64, 8)
	for i := range vecs {
		vecs[i] = []int64{rng.Int63n(5), rng.Int63n(5), rng.Int63n(5)}
	}
	for i := 0; i < 3; i++ {
		pw := PW[int64](i)
		if pw(kw.Zero()) != 0 || pw(kw.One()) != 1 {
			t.Fatalf("pw_%d on identities", i)
		}
		for _, a := range vecs {
			for _, b := range vecs {
				if pw(kw.Add(a, b)) != Nat.Add(pw(a), pw(b)) {
					t.Errorf("pw_%d vs ⊕", i)
				}
				if pw(kw.Mul(a, b)) != Nat.Mul(pw(a), pw(b)) {
					t.Errorf("pw_%d vs ⊗", i)
				}
			}
		}
	}
}

func TestCertSuperadditive(t *testing.T) {
	// Lemma 3: certK is superadditive and supermultiplicative over K^W.
	kw := Worlds[int64](Nat, 4)
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		a := []int64{rng.Int63n(6), rng.Int63n(6), rng.Int63n(6), rng.Int63n(6)}
		b := []int64{rng.Int63n(6), rng.Int63n(6), rng.Int63n(6), rng.Int63n(6)}
		if !Nat.Leq(Nat.Add(kw.Cert(a), kw.Cert(b)), kw.Cert(kw.Add(a, b))) {
			t.Fatalf("cert not superadditive: %v %v", a, b)
		}
		if !Nat.Leq(Nat.Mul(kw.Cert(a), kw.Cert(b)), kw.Cert(kw.Mul(a, b))) {
			t.Fatalf("cert not supermultiplicative: %v %v", a, b)
		}
		// Dually, poss is subadditive/submultiplicative from above:
		if !Nat.Leq(kw.Poss(kw.Add(a, b)), Nat.Add(kw.Poss(a), kw.Poss(b))) {
			t.Fatalf("poss not subadditive: %v %v", a, b)
		}
	}
}

func TestVectorCertPoss(t *testing.T) {
	kw := Worlds[int64](Nat, 2)
	// The paper's Example 7/8: [3,2] -> cert 2; [0,5] -> cert 0, poss 5.
	if kw.Cert([]int64{3, 2}) != 2 {
		t.Error("cert([3,2])")
	}
	if kw.Cert([]int64{0, 5}) != 0 {
		t.Error("cert([0,5])")
	}
	if kw.Poss([]int64{0, 5}) != 5 {
		t.Error("poss([0,5])")
	}
	bw := Worlds[bool](Bool, 2)
	if bw.Cert([]bool{true, true}) != true || bw.Cert([]bool{false, true}) != false {
		t.Error("B cert")
	}
}

func TestPairValid(t *testing.T) {
	ua := UA[int64](Nat)
	if !ua.Valid(Pair[int64]{1, 2}) || !ua.Valid(Pair[int64]{2, 2}) {
		t.Error("valid pairs rejected")
	}
	if ua.Valid(Pair[int64]{3, 2}) {
		t.Error("invalid pair accepted")
	}
}

func TestAccessDistance(t *testing.T) {
	if Distance(LevelConfidential, LevelTopSecret) != 0.4 {
		t.Errorf("Distance(C,T) = %v, want 0.4", Distance(LevelConfidential, LevelTopSecret))
	}
	if Distance(LevelPublic, LevelPublic) != 0 {
		t.Error("Distance identical levels")
	}
	if Distance(LevelNobody, LevelPublic) != 0.8 {
		t.Error("Distance extremes")
	}
}

func TestWhySemantics(t *testing.T) {
	a, b := WhySource("t1"), WhySource("t2")
	joint := Why.Mul(a, b)
	if Why.Format(joint) != "{{t1,t2}}" {
		t.Errorf("Mul = %s", Why.Format(joint))
	}
	alt := Why.Add(a, b)
	if Why.Format(alt) != "{{t1}, {t2}}" {
		t.Errorf("Add = %s", Why.Format(alt))
	}
	// Idempotence of addition.
	if !Why.Eq(Why.Add(a, a), a) {
		t.Error("Why ⊕ not idempotent")
	}
	// Canonicalization: duplicate ids within a witness collapse.
	if Why.Format(Why.Mul(a, a)) != "{{t1}}" {
		t.Error("witness dedup")
	}
	if !Why.Leq(a, alt) || Why.Leq(alt, a) {
		t.Error("Why subset order")
	}
	if Why.Format(Why.Glb(alt, a)) != "{{t1}}" {
		t.Error("Why GLB = intersection")
	}
}

func TestFormat(t *testing.T) {
	if Bool.Format(true) != "T" || Bool.Format(false) != "F" {
		t.Error("B format")
	}
	if Nat.Format(42) != "42" {
		t.Error("N format")
	}
	if Tropical.Format(Inf) != "inf" {
		t.Error("T format")
	}
	ua := UA[int64](Nat)
	if ua.Format(Pair[int64]{1, 2}) != "[1, 2]" {
		t.Error("pair format")
	}
	kw := Worlds[bool](Bool, 2)
	if kw.Format([]bool{true, false}) != "[T, F]" {
		t.Error("vector format")
	}
	if LevelSecret.String() != "S" {
		t.Error("level format")
	}
}
