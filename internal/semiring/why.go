package semiring

import (
	"sort"
	"strings"
)

// WhyProv is an element of the Why-provenance semiring Why(X): a set of
// witness sets, each witness a set of source-tuple identifiers sufficient to
// derive the annotated tuple. The canonical representation is a sorted slice
// of witnesses, each witness a sorted, deduplicated slice of identifiers; all
// constructors and operations below maintain canonical form, so Eq is a deep
// comparison.
//
// Why(X) = (P(P(X)), ∪, pairwise-∪, ∅, {∅}) is an idempotent l-semiring with
// the subset order: GLB is intersection, LUB is union. It is included both to
// exercise the framework on a non-numeric semiring and to let examples show
// provenance of (un)certain answers.
type WhyProv [][]string

// WhyZero is the empty set of witnesses (the tuple has no derivation).
func WhyZero() WhyProv { return nil }

// WhyOne is {∅}: derivable from nothing.
func WhyOne() WhyProv { return WhyProv{{}} }

// WhySource returns the provenance of a source tuple with identifier id.
func WhySource(id string) WhyProv { return WhyProv{{id}} }

func canonWitness(w []string) []string {
	c := append([]string(nil), w...)
	sort.Strings(c)
	out := c[:0]
	for i, s := range c {
		if i == 0 || s != c[i-1] {
			out = append(out, s)
		}
	}
	return out
}

func witnessKey(w []string) string { return strings.Join(w, "\x1f") }

func canon(ws WhyProv) WhyProv {
	seen := make(map[string]bool, len(ws))
	var out WhyProv
	for _, w := range ws {
		cw := canonWitness(w)
		k := witnessKey(cw)
		if !seen[k] {
			seen[k] = true
			out = append(out, cw)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return witnessKey(out[i]) < witnessKey(out[j])
	})
	return out
}

// WhySemiring implements Why(X).
type WhySemiring struct{}

// Why is the canonical instance of the Why-provenance semiring.
var Why = WhySemiring{}

// Zero returns ∅.
func (WhySemiring) Zero() WhyProv { return WhyZero() }

// One returns {∅}.
func (WhySemiring) One() WhyProv { return WhyOne() }

// Add returns the union of the witness sets.
func (WhySemiring) Add(a, b WhyProv) WhyProv {
	m := make(WhyProv, 0, len(a)+len(b))
	m = append(m, a...)
	m = append(m, b...)
	return canon(m)
}

// Mul returns all pairwise unions of witnesses from a and b.
func (WhySemiring) Mul(a, b WhyProv) WhyProv {
	var m WhyProv
	for _, wa := range a {
		for _, wb := range b {
			w := make([]string, 0, len(wa)+len(wb))
			w = append(w, wa...)
			w = append(w, wb...)
			m = append(m, w)
		}
	}
	return canon(m)
}

// Eq compares canonical forms.
func (WhySemiring) Eq(a, b WhyProv) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if witnessKey(a[i]) != witnessKey(b[i]) {
			return false
		}
	}
	return true
}

// IsZero reports whether the provenance is empty.
func (WhySemiring) IsZero(a WhyProv) bool { return len(a) == 0 }

// Leq reports the subset order a ⊆ b, which coincides with the natural order
// because addition is union.
func (WhySemiring) Leq(a, b WhyProv) bool {
	have := make(map[string]bool, len(b))
	for _, w := range b {
		have[witnessKey(w)] = true
	}
	for _, w := range a {
		if !have[witnessKey(w)] {
			return false
		}
	}
	return true
}

// Glb returns the intersection of witness sets.
func (WhySemiring) Glb(a, b WhyProv) WhyProv {
	have := make(map[string]bool, len(b))
	for _, w := range b {
		have[witnessKey(w)] = true
	}
	var out WhyProv
	for _, w := range a {
		if have[witnessKey(w)] {
			out = append(out, w)
		}
	}
	return canon(out)
}

// Lub returns the union of witness sets (same as Add; Why is idempotent).
func (WhySemiring) Lub(a, b WhyProv) WhyProv { return Why.Add(a, b) }

// Format renders the provenance as {{a,b},{c}}.
func (WhySemiring) Format(a WhyProv) string {
	var sb strings.Builder
	sb.WriteByte('{')
	for i, w := range a {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('{')
		sb.WriteString(strings.Join(w, ","))
		sb.WriteByte('}')
	}
	sb.WriteByte('}')
	return sb.String()
}

var _ Lattice[WhyProv] = Why
