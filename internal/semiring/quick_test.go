package semiring

// Property-based tests (testing/quick) over randomly drawn annotation
// values, complementing the exhaustive small-domain law checks in
// semiring_test.go.

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// natGen keeps multiplicities small enough that products cannot overflow.
type natGen int64

func (natGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(natGen(r.Int63n(1000)))
}

func TestQuickNatLaws(t *testing.T) {
	cfg := &quick.Config{MaxCount: 500}
	distrib := func(a, b, c natGen) bool {
		x, y, z := int64(a), int64(b), int64(c)
		return Nat.Mul(x, Nat.Add(y, z)) == Nat.Add(Nat.Mul(x, y), Nat.Mul(x, z))
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Error(err)
	}
	monus := func(a, b natGen) bool {
		x, y := int64(a), int64(b)
		// Monus law: y ⊕ (x ⊖ y) ⪰ x, and x ⊖ y ⪯ x.
		return Nat.Leq(x, Nat.Add(y, Nat.Sub(x, y))) && Nat.Leq(Nat.Sub(x, y), x)
	}
	if err := quick.Check(monus, cfg); err != nil {
		t.Error(err)
	}
	lattice := func(a, b natGen) bool {
		x, y := int64(a), int64(b)
		return Nat.Eq(Nat.Lub(x, Nat.Glb(x, y)), x) && Nat.Eq(Nat.Glb(x, Nat.Lub(x, y)), x)
	}
	if err := quick.Check(lattice, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickPairHomomorphisms(t *testing.T) {
	ua := UA[int64](Nat)
	cfg := &quick.Config{MaxCount: 500}
	f := func(c1, d1, c2, d2 natGen) bool {
		a := Pair[int64]{Cert: int64(c1), Det: int64(d1)}
		b := Pair[int64]{Cert: int64(c2), Det: int64(d2)}
		sum, prod := ua.Add(a, b), ua.Mul(a, b)
		return CertHom(sum) == Nat.Add(CertHom(a), CertHom(b)) &&
			CertHom(prod) == Nat.Mul(CertHom(a), CertHom(b)) &&
			DetHom(sum) == Nat.Add(DetHom(a), DetHom(b)) &&
			DetHom(prod) == Nat.Mul(DetHom(a), DetHom(b))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickVectorCertBounds(t *testing.T) {
	kw := Worlds[int64](Nat, 4)
	cfg := &quick.Config{MaxCount: 500}
	f := func(a0, a1, a2, a3 natGen) bool {
		vec := []int64{int64(a0), int64(a1), int64(a2), int64(a3)}
		cert, poss := kw.Cert(vec), kw.Poss(vec)
		for _, v := range vec {
			// certK ⪯ every world ⪯ possK.
			if !Nat.Leq(cert, v) || !Nat.Leq(v, poss) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickCertSuperadditiveFuzzy(t *testing.T) {
	// Lemma 3 on a different l-semiring (max/min over [0,1]) to confirm the
	// property is semiring-generic, not an artifact of N.
	kw := Worlds[float64](Fuzzy, 3)
	cfg := &quick.Config{MaxCount: 500}
	clamp := func(x float64) float64 {
		if x < 0 {
			x = -x
		}
		return x - float64(int(x)) // fractional part in [0,1)
	}
	f := func(a0, a1, a2, b0, b1, b2 float64) bool {
		a := []float64{clamp(a0), clamp(a1), clamp(a2)}
		b := []float64{clamp(b0), clamp(b1), clamp(b2)}
		return Fuzzy.Leq(Fuzzy.Add(kw.Cert(a), kw.Cert(b)), kw.Cert(kw.Add(a, b))) &&
			Fuzzy.Leq(Fuzzy.Mul(kw.Cert(a), kw.Cert(b)), kw.Cert(kw.Mul(a, b)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestQuickWhyCanonicalization(t *testing.T) {
	// Canonical form is insensitive to argument order and duplication.
	cfg := &quick.Config{MaxCount: 300}
	ids := []string{"a", "b", "c", "d"}
	f := func(picks []uint8) bool {
		var l1, l2 WhyProv
		for _, p := range picks {
			w := WhySource(ids[int(p)%len(ids)])
			l1 = Why.Add(l1, w)
			l2 = Why.Add(w, l2) // reversed accumulation
		}
		return Why.Eq(l1, l2) && Why.Eq(Why.Add(l1, l1), l1)
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
