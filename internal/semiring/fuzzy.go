package semiring

import "strconv"

// FuzzySemiring is the Viterbi/fuzzy confidence semiring
// F = ([0,1], max, min, 0, 1). Annotations are confidence scores; joining
// evidence takes the weakest link, alternative derivations the strongest.
// F is an l-semiring with the usual numeric order.
type FuzzySemiring struct{}

// Fuzzy is the canonical instance of F.
var Fuzzy = FuzzySemiring{}

// Zero returns 0.
func (FuzzySemiring) Zero() float64 { return 0 }

// One returns 1.
func (FuzzySemiring) One() float64 { return 1 }

// Add returns max(a, b).
func (FuzzySemiring) Add(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Mul returns min(a, b).
func (FuzzySemiring) Mul(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Eq reports a = b.
func (FuzzySemiring) Eq(a, b float64) bool { return a == b }

// IsZero reports a = 0.
func (FuzzySemiring) IsZero(a float64) bool { return a == 0 }

// Leq reports a ≤ b.
func (FuzzySemiring) Leq(a, b float64) bool { return a <= b }

// Glb returns min(a, b).
func (FuzzySemiring) Glb(a, b float64) float64 { return Fuzzy.Mul(a, b) }

// Lub returns max(a, b).
func (FuzzySemiring) Lub(a, b float64) float64 { return Fuzzy.Add(a, b) }

// Format renders the confidence with full precision.
func (FuzzySemiring) Format(a float64) string {
	return strconv.FormatFloat(a, 'g', -1, 64)
}

var _ Lattice[float64] = Fuzzy
