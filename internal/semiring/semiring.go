// Package semiring implements the commutative semiring framework of Green et
// al. (PODS 2007) that UA-DBs build on: concrete semirings (set B, bag N,
// access control A, fuzzy confidence F, tropical cost T, Why-provenance),
// the natural order and the lattice structure of l-semirings (GLB/LUB), and
// the two combinators the paper relies on — the possible-world semiring K^W
// (Definition 2) and the UA-semiring K² (Definition 3) — together with the
// semiring homomorphisms pw_i, h_cert, and h_det.
package semiring

// Semiring describes a commutative semiring K = (K, ⊕, ⊗, 0, 1). All
// implementations in this package are commutative; ⊕ and ⊗ are associative
// and commutative, ⊗ distributes over ⊕, 0 is neutral for ⊕ and absorbing
// for ⊗, and 1 is neutral for ⊗.
type Semiring[T any] interface {
	// Zero returns the additive identity 0_K.
	Zero() T
	// One returns the multiplicative identity 1_K.
	One() T
	// Add returns a ⊕ b.
	Add(a, b T) T
	// Mul returns a ⊗ b.
	Mul(a, b T) T
	// Eq reports whether two annotations are the same element of K.
	Eq(a, b T) bool
	// IsZero reports whether a = 0_K (tuples annotated 0 are absent).
	IsZero(a T) bool
	// Format renders an annotation for display.
	Format(a T) string
}

// Lattice is an l-semiring: a naturally ordered semiring whose natural order
//
//	a ⪯ b  ⇔  ∃c: a ⊕ c = b
//
// forms a lattice, so every finite set of annotations has a greatest lower
// bound (the certain annotation) and a least upper bound (the possible
// annotation). B, N, A, F, T below are all l-semirings.
type Lattice[T any] interface {
	Semiring[T]
	// Leq reports a ⪯ b in the natural order.
	Leq(a, b T) bool
	// Glb returns the greatest lower bound a ⊓ b.
	Glb(a, b T) T
	// Lub returns the least upper bound a ⊔ b.
	Lub(a, b T) T
}

// Monus is a semiring with a truncated-subtraction operation ⊖ satisfying
// a ⊖ b = the least c with b ⊕ c ⪰ a. The bag encoding Enc of Definition 8
// needs it to split a UA pair [c, d] into c certain and d ⊖ c uncertain rows.
type Monus[T any] interface {
	Semiring[T]
	// Sub returns a ⊖ b.
	Sub(a, b T) T
}

// GlbAll folds ⊓ over ks. It panics on an empty slice: the GLB of zero
// worlds is undefined (the paper always has |W| ≥ 1).
func GlbAll[T any](k Lattice[T], ks []T) T {
	if len(ks) == 0 {
		panic("semiring: GlbAll of empty slice")
	}
	acc := ks[0]
	for _, x := range ks[1:] {
		acc = k.Glb(acc, x)
	}
	return acc
}

// LubAll folds ⊔ over ks. It panics on an empty slice.
func LubAll[T any](k Lattice[T], ks []T) T {
	if len(ks) == 0 {
		panic("semiring: LubAll of empty slice")
	}
	acc := ks[0]
	for _, x := range ks[1:] {
		acc = k.Lub(acc, x)
	}
	return acc
}

// Hom is a mapping between annotation domains. A Hom h is a semiring
// homomorphism when h(0)=0, h(1)=1, h(a⊕b)=h(a)⊕h(b), h(a⊗b)=h(a)⊗h(b);
// homomorphisms commute with RA⁺ queries (Green et al.), which is what makes
// h_cert, h_det, and pw_i safe to push through query results.
type Hom[A, B any] func(A) B

// SumAll folds ⊕ over ks, returning 0_K for an empty slice.
func SumAll[T any](k Semiring[T], ks []T) T {
	acc := k.Zero()
	for _, x := range ks {
		acc = k.Add(acc, x)
	}
	return acc
}

// MulAll folds ⊗ over ks, returning 1_K for an empty slice.
func MulAll[T any](k Semiring[T], ks []T) T {
	acc := k.One()
	for _, x := range ks {
		acc = k.Mul(acc, x)
	}
	return acc
}
