package semiring

// Level is an element of the access-control semiring A of Green et al.,
// used in the paper's Section 11.3 "Beyond Set Semantics" experiment. The
// five clearance levels are ordered
//
//	0 (nobody) < T (top secret) < S (secret) < C (confidential) < P (public)
//
// Addition is max (combining alternate derivations relaxes the requirement)
// and multiplication is min (joining data restricts access to the strictest
// input). A is an l-semiring: GLB = min, LUB = max under the order above.
type Level uint8

// The access-control clearance levels.
const (
	LevelNobody Level = iota // 0: nobody can access
	LevelTopSecret
	LevelSecret
	LevelConfidential
	LevelPublic
)

// Levels lists all elements of A in ascending order.
var Levels = []Level{LevelNobody, LevelTopSecret, LevelSecret, LevelConfidential, LevelPublic}

// String returns the conventional one-letter name of the level.
func (l Level) String() string {
	switch l {
	case LevelNobody:
		return "0"
	case LevelTopSecret:
		return "T"
	case LevelSecret:
		return "S"
	case LevelConfidential:
		return "C"
	case LevelPublic:
		return "P"
	default:
		return "?"
	}
}

// Distance returns the normalized lattice distance |a-b| / (|A|-1) used by
// the paper to weight mislabelings in the access-control experiment
// (e.g. distance(C, T) = 2/5 per the paper's convention of dividing by 5).
func Distance(a, b Level) float64 {
	d := int(a) - int(b)
	if d < 0 {
		d = -d
	}
	return float64(d) / float64(len(Levels))
}

// AccessSemiring is the access-control semiring A.
type AccessSemiring struct{}

// Access is the canonical instance of A.
var Access = AccessSemiring{}

// Zero returns the least element 0 (nobody).
func (AccessSemiring) Zero() Level { return LevelNobody }

// One returns the greatest element P (public), neutral for min.
func (AccessSemiring) One() Level { return LevelPublic }

// Add returns max(a, b).
func (AccessSemiring) Add(a, b Level) Level {
	if a > b {
		return a
	}
	return b
}

// Mul returns min(a, b).
func (AccessSemiring) Mul(a, b Level) Level {
	if a < b {
		return a
	}
	return b
}

// Eq reports a = b.
func (AccessSemiring) Eq(a, b Level) bool { return a == b }

// IsZero reports a = 0 (nobody).
func (AccessSemiring) IsZero(a Level) bool { return a == LevelNobody }

// Leq reports a ≤ b in the clearance order.
func (AccessSemiring) Leq(a, b Level) bool { return a <= b }

// Glb returns min(a, b).
func (AccessSemiring) Glb(a, b Level) Level { return Access.Mul(a, b) }

// Lub returns max(a, b).
func (AccessSemiring) Lub(a, b Level) Level { return Access.Add(a, b) }

// Format renders the level name.
func (AccessSemiring) Format(a Level) string { return a.String() }

var _ Lattice[Level] = Access
