package semiring

import (
	"math"
	"strconv"
)

// TropicalSemiring is the min-plus cost semiring
// T = (ℝ≥0 ∪ {∞}, min, +, ∞, 0): annotations are costs, alternative
// derivations take the cheaper one, joint derivations add up. The natural
// order is *reversed* numeric order (a ⪯ b ⇔ b ≤ a, since min(a, c) = b is
// solvable exactly when b ≤ a), so the certain (GLB) cost across worlds is
// the numeric maximum: a guaranteed lower bound on how cheap the tuple can be
// in every world is "at least as expensive as the dearest world".
type TropicalSemiring struct{}

// Tropical is the canonical instance of T.
var Tropical = TropicalSemiring{}

// Inf is the additive identity ∞.
var Inf = math.Inf(1)

// Zero returns ∞.
func (TropicalSemiring) Zero() float64 { return Inf }

// One returns 0.
func (TropicalSemiring) One() float64 { return 0 }

// Add returns min(a, b).
func (TropicalSemiring) Add(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Mul returns a + b.
func (TropicalSemiring) Mul(a, b float64) float64 { return a + b }

// Eq reports a = b.
func (TropicalSemiring) Eq(a, b float64) bool { return a == b }

// IsZero reports a = ∞.
func (TropicalSemiring) IsZero(a float64) bool { return math.IsInf(a, 1) }

// Leq reports a ⪯ b in the natural order, which is reversed numeric order.
func (TropicalSemiring) Leq(a, b float64) bool { return b <= a }

// Glb returns the GLB under ⪯, the numeric maximum.
func (TropicalSemiring) Glb(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Lub returns the LUB under ⪯, the numeric minimum.
func (TropicalSemiring) Lub(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// Format renders the cost, with "inf" for the zero element.
func (TropicalSemiring) Format(a float64) string {
	if math.IsInf(a, 1) {
		return "inf"
	}
	return strconv.FormatFloat(a, 'g', -1, 64)
}

var _ Lattice[float64] = Tropical
