package semiring

// BoolSemiring is the set semiring B = ({F, T}, ∨, ∧, F, T). A B-relation is
// an ordinary set: a tuple is in the relation iff it is annotated T. The
// natural order is F ⪯ T, GLB is ∧, LUB is ∨ — so the certain annotation of
// a tuple across worlds is "present in every world", matching the classical
// definition of certain answers.
type BoolSemiring struct{}

// Bool is the canonical instance of the set semiring.
var Bool = BoolSemiring{}

// Zero returns F.
func (BoolSemiring) Zero() bool { return false }

// One returns T.
func (BoolSemiring) One() bool { return true }

// Add returns a ∨ b.
func (BoolSemiring) Add(a, b bool) bool { return a || b }

// Mul returns a ∧ b.
func (BoolSemiring) Mul(a, b bool) bool { return a && b }

// Eq reports a = b.
func (BoolSemiring) Eq(a, b bool) bool { return a == b }

// IsZero reports a = F.
func (BoolSemiring) IsZero(a bool) bool { return !a }

// Leq reports a ⪯ b in the order F ⪯ T.
func (BoolSemiring) Leq(a, b bool) bool { return !a || b }

// Glb returns a ∧ b.
func (BoolSemiring) Glb(a, b bool) bool { return a && b }

// Lub returns a ∨ b.
func (BoolSemiring) Lub(a, b bool) bool { return a || b }

// Sub returns the boolean monus a ⊖ b = a ∧ ¬b.
func (BoolSemiring) Sub(a, b bool) bool { return a && !b }

// Format renders the annotation as "T" or "F".
func (BoolSemiring) Format(a bool) string {
	if a {
		return "T"
	}
	return "F"
}

var (
	_ Lattice[bool] = Bool
	_ Monus[bool]   = Bool
)
