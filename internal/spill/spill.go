// Package spill is the out-of-core substrate of the physical engine: it
// writes runs of rows to temporary files and streams them back, so pipeline
// breakers (sort, aggregate, join) can degrade gracefully when a memory
// budget (physical.MemGovernor) says their working set no longer fits.
//
// A run is a sequence of frames. Each frame is
//
//	[4B little-endian payload length][4B CRC32-IEEE of payload][payload]
//
// and a payload is `uvarint rowCount` followed by rowCount rows, each
// `uvarint arity` followed by arity values. Values are encoded exactly —
// kind byte plus a kind-specific payload — so a round trip preserves kind,
// NaN payload, ±0, and huge ints past 2^53 bit for bit. (The engine's
// canonical grouping key, types.Value.AppendKey, deliberately collapses
// cross-kind numeric equality and therefore cannot round-trip; spilled
// operators store rows with this codec and re-derive their AppendKey-based
// hash keys after read-back, so keying stays byte-identical to the
// in-memory path.)
//
// The CRC makes torn writes and bit rot surface as query errors rather than
// silently wrong answers; a clean EOF is only ever reported at a frame
// boundary. Writers and runs own their temp file and remove it on
// Abort/Remove — callers (the physical operators' spill sets) guarantee
// removal even on early Close or mid-query errors.
package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"repro/internal/types"
)

// DefaultFrameRows is how many rows a Writer packs per frame before
// flushing: large enough to amortize the frame header and syscall, small
// enough that a reader holds only a modest slab of decoded rows in memory.
const DefaultFrameRows = 1024

// maxFrameBytes bounds a frame header's claimed payload size, so a
// corrupted length field cannot ask the reader for a gigantic allocation.
const maxFrameBytes = 1 << 30

// MaxFrameBufferBytes is the byte threshold at which a writer closes the
// current frame even before DefaultFrameRows rows accumulate, so wide
// string rows cannot grow a frame toward the reader's maxFrameBytes cap
// (a single row can still exceed this — its frame is simply that big).
// Exported because it bounds a writer's resident payload buffer: memory
// governors charge MaxFrameBufferBytes + WriterBufferBytes per open
// writer.
const MaxFrameBufferBytes = 256 << 10

// WriterBufferBytes is the bufio buffer each writer holds while open.
const WriterBufferBytes = 1 << 16

// maxFrameRowCount bounds a payload's claimed row count the same way.
const maxFrameRowCount = 1 << 26

// value kind tags. These mirror types.Kind but are an independent on-disk
// byte so the file format does not silently shift if the in-memory
// enumeration is ever reordered.
const (
	tagNull   = 'N'
	tagBool   = 'B'
	tagInt    = 'I'
	tagFloat  = 'F'
	tagString = 'S'
)

// AppendValue appends the exact binary encoding of v to buf.
func AppendValue(buf []byte, v types.Value) []byte {
	switch v.Kind() {
	case types.KindNull:
		return append(buf, tagNull)
	case types.KindBool:
		b := byte(0)
		if v.Bool() {
			b = 1
		}
		return append(buf, tagBool, b)
	case types.KindInt:
		buf = append(buf, tagInt)
		return binary.AppendVarint(buf, v.Int())
	case types.KindFloat:
		buf = append(buf, tagFloat)
		return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v.Float()))
	case types.KindString:
		s := v.Str()
		buf = append(buf, tagString)
		buf = binary.AppendUvarint(buf, uint64(len(s)))
		return append(buf, s...)
	default:
		// Unreachable for well-formed values; encode as NULL rather than
		// corrupting the frame.
		return append(buf, tagNull)
	}
}

// DecodeValue decodes one value from b, returning it and the remaining
// bytes.
func DecodeValue(b []byte) (types.Value, []byte, error) {
	if len(b) == 0 {
		return types.Value{}, nil, fmt.Errorf("spill: truncated value")
	}
	tag := b[0]
	b = b[1:]
	switch tag {
	case tagNull:
		return types.Null(), b, nil
	case tagBool:
		if len(b) < 1 {
			return types.Value{}, nil, fmt.Errorf("spill: truncated bool")
		}
		return types.NewBool(b[0] != 0), b[1:], nil
	case tagInt:
		v, n := binary.Varint(b)
		if n <= 0 {
			return types.Value{}, nil, fmt.Errorf("spill: bad varint")
		}
		return types.NewInt(v), b[n:], nil
	case tagFloat:
		if len(b) < 8 {
			return types.Value{}, nil, fmt.Errorf("spill: truncated float")
		}
		bits := binary.LittleEndian.Uint64(b)
		return types.NewFloat(math.Float64frombits(bits)), b[8:], nil
	case tagString:
		n, sz := binary.Uvarint(b)
		if sz <= 0 || n > uint64(len(b)-sz) {
			return types.Value{}, nil, fmt.Errorf("spill: bad string length")
		}
		b = b[sz:]
		return types.NewString(string(b[:n])), b[n:], nil
	default:
		return types.Value{}, nil, fmt.Errorf("spill: unknown value tag %q", tag)
	}
}

// AppendRow appends the encoding of one row: its arity, then its values.
func AppendRow(buf []byte, row []types.Value) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(row)))
	for _, v := range row {
		buf = AppendValue(buf, v)
	}
	return buf
}

// DecodeRow decodes one freshly allocated row from b, returning the
// remaining bytes. Decoded rows share nothing with the file buffer, so they
// obey the engine-wide row-stability rule.
func DecodeRow(b []byte) ([]types.Value, []byte, error) {
	arity, sz := binary.Uvarint(b)
	if sz <= 0 || arity > uint64(len(b)) {
		return nil, nil, fmt.Errorf("spill: bad row arity")
	}
	b = b[sz:]
	row := make([]types.Value, arity)
	var err error
	for i := range row {
		if row[i], b, err = DecodeValue(b); err != nil {
			return nil, nil, err
		}
	}
	return row, b, nil
}

// Writer accumulates rows into frames and writes them to a temp file.
type Writer struct {
	f         *os.File
	out       io.Writer // buffered; a test seam may interpose failures
	bw        *bufio.Writer
	path      string
	payload   []byte
	rows      int
	frameRows int
	header    [8]byte
	err       error
	done      bool
}

// NewWriter creates a run writer over a fresh temp file in dir (""
// means the system temp dir, so TMPDIR redirects spill traffic).
func NewWriter(dir string) (*Writer, error) {
	if dir == "" {
		dir = os.TempDir()
	}
	f, err := os.CreateTemp(dir, "uadb-spill-*.run")
	if err != nil {
		return nil, fmt.Errorf("spill: creating run file: %w", err)
	}
	bw := bufio.NewWriterSize(f, WriterBufferBytes)
	return &Writer{f: f, out: bw, bw: bw, path: f.Name(), frameRows: DefaultFrameRows}, nil
}

// Path reports the temp file backing the writer.
func (w *Writer) Path() string { return w.path }

// Append buffers one row, flushing a frame when the buffer is full. The row
// is encoded immediately; the caller may reuse it.
func (w *Writer) Append(row []types.Value) error {
	if w.err != nil {
		return w.err
	}
	w.payload = AppendRow(w.payload, row)
	w.rows++
	if w.rows >= w.frameRows || len(w.payload) >= MaxFrameBufferBytes {
		return w.flushFrame()
	}
	return nil
}

// AppendAll buffers every row of rows.
func (w *Writer) AppendAll(rows [][]types.Value) error {
	for _, row := range rows {
		if err := w.Append(row); err != nil {
			return err
		}
	}
	return nil
}

// flushFrame writes the buffered rows as one CRC-checked frame. The row
// count is prepended without copying the payload: the CRC runs
// incrementally over the count prefix and the payload, and the two parts
// are written back to back.
func (w *Writer) flushFrame() error {
	if w.rows == 0 {
		return nil
	}
	var cnt [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(cnt[:], uint64(w.rows))
	crc := crc32.ChecksumIEEE(cnt[:n])
	crc = crc32.Update(crc, crc32.IEEETable, w.payload)
	binary.LittleEndian.PutUint32(w.header[0:4], uint32(n+len(w.payload)))
	binary.LittleEndian.PutUint32(w.header[4:8], crc)
	if _, err := w.out.Write(w.header[:]); err != nil {
		return w.fail(err)
	}
	if _, err := w.out.Write(cnt[:n]); err != nil {
		return w.fail(err)
	}
	if _, err := w.out.Write(w.payload); err != nil {
		return w.fail(err)
	}
	w.payload = w.payload[:0]
	w.rows = 0
	return nil
}

// fail records the first write error; all later operations return it.
func (w *Writer) fail(err error) error {
	if w.err == nil {
		w.err = fmt.Errorf("spill: writing run: %w", err)
	}
	return w.err
}

// Finish flushes the final frame, closes the file, and hands the run over
// for reading. On error the temp file is removed before returning.
func (w *Writer) Finish() (*Run, error) {
	if w.err == nil {
		if err := w.flushFrame(); err == nil {
			if err := w.bw.Flush(); err != nil {
				w.fail(err)
			}
		}
	}
	cerr := w.f.Close()
	w.done = true
	if w.err == nil && cerr != nil {
		w.fail(cerr)
	}
	if w.err != nil {
		os.Remove(w.path)
		return nil, w.err
	}
	return &Run{path: w.path}, nil
}

// Abort closes and removes the temp file. Safe to call more than once and
// after Finish (Finish transfers file ownership to the Run).
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	w.f.Close()
	os.Remove(w.path)
}

// Run is a finished spill file, ready to be read (any number of times,
// sequentially) and eventually removed.
type Run struct {
	path    string
	removed bool
}

// Path reports the temp file backing the run.
func (r *Run) Path() string { return r.path }

// Open starts a sequential read of the run.
func (r *Run) Open() (*Reader, error) {
	f, err := os.Open(r.path)
	if err != nil {
		return nil, fmt.Errorf("spill: opening run: %w", err)
	}
	return &Reader{f: f, br: bufio.NewReaderSize(f, 1<<16)}, nil
}

// Remove deletes the temp file. Idempotent.
func (r *Run) Remove() error {
	if r.removed {
		return nil
	}
	r.removed = true
	if err := os.Remove(r.path); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("spill: removing run: %w", err)
	}
	return nil
}

// Reader streams a run frame by frame.
type Reader struct {
	f      *os.File
	br     *bufio.Reader
	header [8]byte
	buf    []byte
	closed bool
}

// Next returns the next frame's rows, freshly allocated, or (nil, nil) at a
// clean end of file. A truncated header or payload, or a checksum mismatch,
// is an error.
func (r *Reader) Next() ([][]types.Value, error) {
	_, err := io.ReadFull(r.br, r.header[:])
	if err == io.EOF {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("spill: truncated frame header: %w", err)
	}
	size := binary.LittleEndian.Uint32(r.header[0:4])
	want := binary.LittleEndian.Uint32(r.header[4:8])
	if size == 0 || size > maxFrameBytes {
		return nil, fmt.Errorf("spill: corrupt frame length %d", size)
	}
	if uint32(cap(r.buf)) < size {
		r.buf = make([]byte, size)
	}
	frame := r.buf[:size]
	if _, err := io.ReadFull(r.br, frame); err != nil {
		return nil, fmt.Errorf("spill: truncated frame payload: %w", err)
	}
	if got := crc32.ChecksumIEEE(frame); got != want {
		return nil, fmt.Errorf("spill: frame checksum mismatch (got %08x, want %08x)", got, want)
	}
	count, sz := binary.Uvarint(frame)
	if sz <= 0 || count == 0 || count > maxFrameRowCount {
		return nil, fmt.Errorf("spill: corrupt frame row count")
	}
	frame = frame[sz:]
	rows := make([][]types.Value, count)
	for i := range rows {
		if rows[i], frame, err = DecodeRow(frame); err != nil {
			return nil, err
		}
	}
	if len(frame) != 0 {
		return nil, fmt.Errorf("spill: %d trailing bytes in frame", len(frame))
	}
	return rows, nil
}

// Close releases the reader; idempotent, because operators close readers
// eagerly and their spill sets close whatever remains at operator Close.
// The run file stays until Run.Remove.
func (r *Reader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	return r.f.Close()
}
