package spill

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/types"
)

// rowsFromBytes deterministically derives a row set from raw fuzz input:
// each byte picks a kind, subsequent bytes feed the payload. The mapping is
// total — every input produces some row set — so the fuzzer explores frame
// boundaries, arity changes, and payload edge cases freely.
func rowsFromBytes(data []byte) [][]types.Value {
	var rows [][]types.Value
	var row []types.Value
	take := func(n int) []byte {
		if n > len(data) {
			n = len(data)
		}
		b := data[:n]
		data = data[n:]
		return b
	}
	pad := func(b []byte, n int) []byte {
		for len(b) < n {
			b = append(b, 0)
		}
		return b
	}
	for len(data) > 0 {
		switch op := take(1)[0]; op % 7 {
		case 0:
			row = append(row, types.Null())
		case 1:
			row = append(row, types.NewBool(op>>3&1 == 1))
		case 2:
			b := pad(take(8), 8)
			row = append(row, types.NewInt(int64(binary.LittleEndian.Uint64(b))))
		case 3:
			b := pad(take(8), 8)
			row = append(row, types.NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(b))))
		case 4:
			n := int(op) >> 2
			row = append(row, types.NewString(string(take(n))))
		case 5:
			row = append(row, types.NewInt(int64(op)-64))
		default: // end the row (possibly empty)
			rows = append(rows, row)
			row = nil
		}
	}
	return append(rows, row)
}

// FuzzSpillRunRoundTrip writes the derived rows through a run file and
// requires the read-back to be bit-identical — kind, NaN payload, ±0, and
// string bytes included. This is the spill twin of FuzzCompileVsEval: the
// on-disk format must never be lossy, because spilled operators re-derive
// their canonical hash keys from the decoded rows.
func FuzzSpillRunRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 1, 2, 3, 4, 5, 6, 7, 8, 6, 0, 6})
	f.Add([]byte{3, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xf8, 0x7f, 6}) // NaN bits
	f.Add([]byte{0x24, 'h', 'i', 6, 4, 6, 1, 9, 6})
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := rowsFromBytes(data)
		dir := t.TempDir()
		w, err := NewWriter(dir)
		if err != nil {
			t.Fatal(err)
		}
		w.frameRows = 3 // many frame boundaries even on small inputs
		if err := w.AppendAll(rows); err != nil {
			t.Fatal(err)
		}
		run, err := w.Finish()
		if err != nil {
			t.Fatal(err)
		}
		defer run.Remove()
		r, err := run.Open()
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		var got [][]types.Value
		for {
			frame, err := r.Next()
			if err != nil {
				t.Fatal(err)
			}
			if frame == nil {
				break
			}
			got = append(got, frame...)
		}
		if len(got) != len(rows) {
			t.Fatalf("got %d rows, want %d", len(got), len(rows))
		}
		for i := range rows {
			if len(got[i]) != len(rows[i]) {
				t.Fatalf("row %d: arity %d, want %d", i, len(got[i]), len(rows[i]))
			}
			for j := range rows[i] {
				if !sameValue(got[i][j], rows[i][j]) {
					t.Fatalf("row %d col %d: got %v (%s), want %v (%s)",
						i, j, got[i][j], got[i][j].Kind(), rows[i][j], rows[i][j].Kind())
				}
			}
		}
	})
}
