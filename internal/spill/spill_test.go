package spill

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/types"
)

// gnarlyRows exercises every kind and the encodings' edge cases: NaN
// payloads, ±0, ints past 2^53, empty and separator-bearing strings, NULLs,
// and rows of varying arity (including the empty row).
func gnarlyRows() [][]types.Value {
	return [][]types.Value{
		{types.NewInt(0), types.NewInt(-1), types.NewInt(math.MaxInt64), types.NewInt(math.MinInt64)},
		{types.NewInt(1<<53 + 1), types.NewFloat(float64(1 << 53))},
		{types.NewFloat(0), types.NewFloat(math.Copysign(0, -1)), types.NewFloat(math.NaN()), types.NewFloat(math.Inf(-1))},
		{types.NewString(""), types.NewString("a|b,c\nd"), types.NewString(strings.Repeat("x", 3000))},
		{types.NewBool(true), types.NewBool(false), types.Null()},
		{},
		{types.Null()},
	}
}

// sameValue is bit-exact equality: kind must match, floats compare by bits
// (so NaN == NaN and +0 != -0), everything else by payload.
func sameValue(a, b types.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case types.KindNull:
		return true
	case types.KindBool:
		return a.Bool() == b.Bool()
	case types.KindInt:
		return a.Int() == b.Int()
	case types.KindFloat:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case types.KindString:
		return a.Str() == b.Str()
	}
	return false
}

func mustRoundTrip(t *testing.T, rows [][]types.Value, frameRows int) {
	t.Helper()
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.frameRows = frameRows
	if err := w.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	r, err := run.Open()
	if err != nil {
		t.Fatal(err)
	}
	var got [][]types.Value
	for {
		frame, err := r.Next()
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if frame == nil {
			break
		}
		got = append(got, frame...)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if err := run.Remove(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(rows) {
		t.Fatalf("round trip: got %d rows, want %d", len(got), len(rows))
	}
	for i := range rows {
		if len(got[i]) != len(rows[i]) {
			t.Fatalf("row %d: arity %d, want %d", i, len(got[i]), len(rows[i]))
		}
		for j := range rows[i] {
			if !sameValue(got[i][j], rows[i][j]) {
				t.Fatalf("row %d col %d: got %v (%s), want %v (%s)",
					i, j, got[i][j], got[i][j].Kind(), rows[i][j], rows[i][j].Kind())
			}
		}
	}
	assertNoFiles(t, dir)
}

func assertNoFiles(t *testing.T, dir string) {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("temp files leaked: %v", names)
	}
}

func TestRunRoundTrip(t *testing.T) {
	mustRoundTrip(t, gnarlyRows(), DefaultFrameRows)
}

func TestRunRoundTripTinyFrames(t *testing.T) {
	// Frame boundary after every second row: many frames, odd tail.
	mustRoundTrip(t, gnarlyRows(), 2)
}

func TestRunRoundTripEmpty(t *testing.T) {
	// A zero-row run is a zero-byte file and a clean immediate EOF.
	mustRoundTrip(t, nil, DefaultFrameRows)
}

func TestRunRoundTripLarge(t *testing.T) {
	rows := make([][]types.Value, 5000)
	for i := range rows {
		rows[i] = []types.Value{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("s%d", i)),
			types.NewFloat(float64(i) / 4),
		}
	}
	mustRoundTrip(t, rows, DefaultFrameRows)
}

func TestAbortRemovesFile(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append([]types.Value{types.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	w.Abort()
	w.Abort() // idempotent
	assertNoFiles(t, dir)
}

func TestRemoveIdempotent(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.Append([]types.Value{types.NewInt(1)})
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if err := run.Remove(); err != nil {
		t.Fatal(err)
	}
	if err := run.Remove(); err != nil {
		t.Fatalf("second Remove: %v", err)
	}
	assertNoFiles(t, dir)
}

// writeRun writes rows with small frames and returns the finished run and
// its directory, for the corruption tests below.
func writeRun(t *testing.T, rows [][]types.Value) (*Run, string) {
	t.Helper()
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.frameRows = 2
	if err := w.AppendAll(rows); err != nil {
		t.Fatal(err)
	}
	run, err := w.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return run, dir
}

// readAll drains a run, returning the first error.
func readAll(run *Run) error {
	r, err := run.Open()
	if err != nil {
		return err
	}
	defer r.Close()
	for {
		frame, err := r.Next()
		if err != nil {
			return err
		}
		if frame == nil {
			return nil
		}
	}
}

func TestTruncatedRunIsAnError(t *testing.T) {
	run, dir := writeRun(t, gnarlyRows())
	info, err := os.Stat(run.Path())
	if err != nil {
		t.Fatal(err)
	}
	// Chop mid-payload: the reader must report truncation, not EOF.
	if err := os.Truncate(run.Path(), info.Size()-3); err != nil {
		t.Fatal(err)
	}
	if err := readAll(run); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated run: got %v, want truncation error", err)
	}
	// Chop mid-header too.
	if err := os.Truncate(run.Path(), 5); err != nil {
		t.Fatal(err)
	}
	if err := readAll(run); err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Fatalf("truncated header: got %v, want truncation error", err)
	}
	if err := run.Remove(); err != nil {
		t.Fatal(err)
	}
	assertNoFiles(t, dir)
}

func TestCorruptedFrameIsAnError(t *testing.T) {
	run, dir := writeRun(t, gnarlyRows())
	raw, err := os.ReadFile(run.Path())
	if err != nil {
		t.Fatal(err)
	}
	// Flip a payload byte of the first frame (offset 8 is past the header).
	raw[9] ^= 0xff
	if err := os.WriteFile(run.Path(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := readAll(run); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corrupted frame: got %v, want checksum error", err)
	}
	if err := run.Remove(); err != nil {
		t.Fatal(err)
	}
	assertNoFiles(t, dir)
}

func TestCorruptedLengthIsAnError(t *testing.T) {
	run, dir := writeRun(t, gnarlyRows())
	raw, err := os.ReadFile(run.Path())
	if err != nil {
		t.Fatal(err)
	}
	// A huge claimed frame length must be rejected before any allocation.
	raw[3] = 0xff
	if err := os.WriteFile(run.Path(), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := readAll(run); err == nil || !strings.Contains(err.Error(), "frame length") {
		t.Fatalf("corrupt length: got %v, want frame length error", err)
	}
	run.Remove()
	assertNoFiles(t, dir)
}

// failingWriter fails every write after the first n bytes — the ENOSPC
// stand-in for the write-error path.
type failingWriter struct{ n int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if len(p) <= f.n {
		f.n -= len(p)
		return len(p), nil
	}
	n := f.n
	f.n = 0
	return n, fmt.Errorf("injected: no space left on device")
}

func TestWriteErrorSurfacesAndCleansUp(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	w.frameRows = 1
	w.out = &failingWriter{n: 4}
	var werr error
	for i := 0; i < 10 && werr == nil; i++ {
		werr = w.Append([]types.Value{types.NewString(strings.Repeat("z", 100))})
	}
	if werr == nil || !strings.Contains(werr.Error(), "no space") {
		t.Fatalf("write error not surfaced: %v", werr)
	}
	// The sticky error also fails Finish, which removes the temp file.
	if _, err := w.Finish(); err == nil {
		t.Fatal("Finish after write error must fail")
	}
	assertNoFiles(t, dir)
}

func TestFinishFlushErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir)
	if err != nil {
		t.Fatal(err)
	}
	// The frame fits the Append-time buffer; the failure hits at Finish's
	// flush instead, which must still surface and remove the file.
	w.out = &failingWriter{n: 0}
	if err := w.Append([]types.Value{types.NewInt(1)}); err != nil {
		t.Fatalf("buffered append must not fail: %v", err)
	}
	if _, err := w.Finish(); err == nil || !strings.Contains(err.Error(), "no space") {
		t.Fatalf("Finish: got %v, want injected write error", err)
	}
	assertNoFiles(t, dir)
}

func TestOpenMissingRun(t *testing.T) {
	run := &Run{path: filepath.Join(t.TempDir(), "gone.run")}
	if _, err := run.Open(); err == nil {
		t.Fatal("opening a missing run must fail")
	}
	if err := run.Remove(); err != nil {
		t.Fatalf("removing a missing run is not an error: %v", err)
	}
}
