package vector

import "repro/internal/types"

// Columns is a table's column-oriented storage: one vector per attribute,
// all the same length. It is built once from the row representation and
// cached; scans slice it zero-copy into per-batch column windows.
type Columns struct {
	N    int
	Vecs []Vector
}

// Slice returns zero-copy windows [lo, hi) of every column.
func (c *Columns) Slice(lo, hi int) []Vector {
	out := make([]Vector, len(c.Vecs))
	for i, v := range c.Vecs {
		out[i] = v.Slice(lo, hi)
	}
	return out
}

// FromRows builds the columnar form of a row table. Each column's vector
// type is inferred from its data: a column whose non-null values are all one
// kind gets the matching typed vector (nulls recorded in the bitmap); a
// column mixing kinds — or holding only NULLs — falls back to the boxed
// ValueVector. Round-tripping through Value(i) reproduces the original
// values exactly, so columnar execution cannot change results.
func FromRows(rows [][]types.Value, arity int) *Columns {
	c := &Columns{N: len(rows), Vecs: make([]Vector, arity)}
	for j := 0; j < arity; j++ {
		c.Vecs[j] = columnFromRows(rows, j)
	}
	return c
}

// columnFromRows infers and builds one column.
func columnFromRows(rows [][]types.Value, j int) Vector {
	kind := types.KindNull
	mixed := false
	for _, r := range rows {
		k := r[j].Kind()
		if k == types.KindNull {
			continue
		}
		if kind == types.KindNull {
			kind = k
		} else if kind != k {
			mixed = true
			break
		}
	}
	if mixed || kind == types.KindNull {
		vals := make([]types.Value, len(rows))
		for i, r := range rows {
			vals[i] = r[j]
		}
		return NewValueVector(vals)
	}
	var nb *Bitmap
	markNull := func(i int) {
		if nb == nil {
			nb = NewBitmap(len(rows))
		}
		nb.Set(i)
	}
	switch kind {
	case types.KindInt:
		vals := make([]int64, len(rows))
		for i, r := range rows {
			if r[j].IsNull() {
				markNull(i)
			} else {
				vals[i] = r[j].Int()
			}
		}
		v := NewInt64Vector(vals, nb)
		v.Asc = nb == nil && intsAsc(vals)
		return v
	case types.KindFloat:
		vals := make([]float64, len(rows))
		for i, r := range rows {
			if r[j].IsNull() {
				markNull(i)
			} else {
				vals[i] = r[j].Float()
			}
		}
		v := NewFloat64Vector(vals, nb)
		v.Asc = nb == nil && floatsAsc(vals)
		return v
	case types.KindString:
		vals := make([]string, len(rows))
		for i, r := range rows {
			if r[j].IsNull() {
				markNull(i)
			} else {
				vals[i] = r[j].Str()
			}
		}
		return NewStringVector(vals, nb)
	default: // types.KindBool
		vals := make([]bool, len(rows))
		for i, r := range rows {
			if r[j].IsNull() {
				markNull(i)
			} else {
				vals[i] = r[j].Bool()
			}
		}
		return NewBoolVector(vals, nb)
	}
}

// intsAsc reports whether vals is non-decreasing.
func intsAsc(vals []int64) bool {
	for i := 1; i < len(vals); i++ {
		if vals[i-1] > vals[i] {
			return false
		}
	}
	return true
}

// floatsAsc reports whether vals is non-decreasing under IEEE <=, which is
// false for any comparison involving NaN — so a true result also certifies
// the column NaN-free.
func floatsAsc(vals []float64) bool {
	for i := 1; i < len(vals); i++ {
		if !(vals[i-1] <= vals[i]) {
			return false
		}
	}
	return true
}

// Materialize rebuilds n rows from column vectors, carving the row slices
// out of one value slab (one allocation for the cells, one for the spine).
// The result never aliases the vectors' storage, so the rows obey the
// engine-wide stability rule: valid forever, whatever happens to the
// (possibly scratch-backed) vectors afterwards.
func Materialize(cols []Vector, n int) [][]types.Value {
	k := len(cols)
	rows := make([][]types.Value, n)
	buf := make([]types.Value, n*k)
	for j, v := range cols {
		switch tv := v.(type) {
		case *Int64Vector:
			for i, x := range tv.Vals {
				if !tv.null(i) {
					buf[i*k+j] = types.NewInt(x)
				}
			}
		case *Float64Vector:
			for i, x := range tv.Vals {
				if !tv.null(i) {
					buf[i*k+j] = types.NewFloat(x)
				}
			}
		case *StringVector:
			for i, x := range tv.Vals {
				if !tv.null(i) {
					buf[i*k+j] = types.NewString(x)
				}
			}
		case *BoolVector:
			for i, x := range tv.Vals {
				if !tv.null(i) {
					buf[i*k+j] = types.NewBool(x)
				}
			}
		case *ValueVector:
			for i, x := range tv.Vals {
				buf[i*k+j] = x
			}
		default:
			for i := 0; i < n; i++ {
				buf[i*k+j] = v.Value(i)
			}
		}
	}
	for i := range rows {
		rows[i] = buf[i*k : (i+1)*k : (i+1)*k]
	}
	return rows
}
