package vector

import (
	"math"
	"testing"

	"repro/internal/types"
)

// sameWireValue is bit-exact value equality: same kind, same payload bits
// (NaN == NaN; +0 and -0 differ).
func sameWireValue(a, b types.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	switch a.Kind() {
	case types.KindNull:
		return true
	case types.KindInt:
		return a.Int() == b.Int()
	case types.KindFloat:
		return math.Float64bits(a.Float()) == math.Float64bits(b.Float())
	case types.KindString:
		return a.Str() == b.Str()
	default:
		return a.Bool() == b.Bool()
	}
}

// roundTrip encodes v, decodes it, and compares every element bit-exactly.
func roundTrip(t *testing.T, name string, v Vector) Vector {
	t.Helper()
	buf := AppendVector(nil, v)
	got, rest, err := DecodeVector(buf, v.Len())
	if err != nil {
		t.Fatalf("%s: decode: %v", name, err)
	}
	if len(rest) != 0 {
		t.Fatalf("%s: %d bytes left over", name, len(rest))
	}
	if got.Len() != v.Len() {
		t.Fatalf("%s: len %d -> %d", name, v.Len(), got.Len())
	}
	for i := 0; i < v.Len(); i++ {
		if v.Null(i) != got.Null(i) {
			t.Fatalf("%s: element %d null %v -> %v", name, i, v.Null(i), got.Null(i))
		}
		if !sameWireValue(v.Value(i), got.Value(i)) {
			t.Fatalf("%s: element %d %v -> %v", name, i, v.Value(i), got.Value(i))
		}
	}
	return got
}

func TestWireVectorRoundTrip(t *testing.T) {
	intNulls := NewBitmap(6)
	intNulls.Set(2)
	floatNulls := NewBitmap(8)
	floatNulls.Set(0)
	floatNulls.Set(7)
	strNulls := NewBitmap(5)
	strNulls.Set(1)
	boolNulls := NewBitmap(11)
	boolNulls.Set(10)

	vecs := map[string]Vector{
		"int64": NewInt64Vector(
			[]int64{0, 1, -1, math.MaxInt64, math.MinInt64, 1 << 53}, nil),
		"int64-nulls": NewInt64Vector(
			[]int64{5, 6, 0xDEAD, 8, 9, 10}, intNulls), // garbage in the null slot must not leak
		"float64": NewFloat64Vector(
			[]float64{0, math.Copysign(0, -1), 1.5, -2.25, math.NaN(), math.Inf(1), math.Inf(-1), 5e-324}, nil),
		"float64-nulls": NewFloat64Vector(
			[]float64{math.NaN(), 1, 2, 3, 4, 5, 6, math.Inf(-1)}, floatNulls),
		"string": NewStringVector(
			[]string{"", "a", "héllo ☃", "with\x00byte", "trailing"}, nil),
		"string-nulls": NewStringVector(
			[]string{"x", "IGNORED", "", "yz", ""}, strNulls),
		"bool": NewBoolVector(
			[]bool{true, false, true, true, false, false, true, false, true, true, false}, nil),
		"bool-nulls": NewBoolVector(
			[]bool{true, false, true, true, false, false, true, false, true, true, true}, boolNulls),
		"boxed": NewValueVector([]types.Value{
			types.NewInt(1), types.NewString("mixed"), types.Null(),
			types.NewFloat(math.NaN()), types.NewBool(true), types.NewInt(1 << 53),
		}),
		"empty-int":   NewInt64Vector(nil, nil),
		"empty-boxed": NewValueVector(nil),
	}
	for name, v := range vecs {
		roundTrip(t, name, v)
	}
}

// TestWireVectorSlices pins that encoding a sliced window transmits the
// window's elements with window-relative null positions.
func TestWireVectorSlices(t *testing.T) {
	nb := NewBitmap(10)
	nb.Set(3)
	nb.Set(7)
	full := NewInt64Vector([]int64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, nb)
	window := full.Slice(2, 8)
	got := roundTrip(t, "int64-window", window)
	if got.Null(0) || !got.Null(1) || !got.Null(5) {
		t.Errorf("window nulls landed wrong: %v %v %v", got.Null(0), got.Null(1), got.Null(5))
	}
}

// TestWireVectorDeterministic: the encoded bytes are a function of the
// values, not of garbage in masked slots — two semantically equal columns
// encode identically (what the chunk CRC protects).
func TestWireVectorDeterministic(t *testing.T) {
	nb1 := NewBitmap(3)
	nb1.Set(1)
	nb2 := NewBitmap(3)
	nb2.Set(1)
	a := AppendVector(nil, NewInt64Vector([]int64{7, 12345, 9}, nb1))
	b := AppendVector(nil, NewInt64Vector([]int64{7, -999, 9}, nb2))
	if string(a) != string(b) {
		t.Error("null-slot garbage leaked into the encoding")
	}
}

func TestWireVectorCorruption(t *testing.T) {
	nb := NewBitmap(4)
	nb.Set(2)
	vecs := []Vector{
		NewInt64Vector([]int64{1, 2, 3, 4}, nb),
		NewFloat64Vector([]float64{1, 2, 3, 4}, nil),
		NewStringVector([]string{"ab", "", "cdef", "g"}, nil),
		NewBoolVector([]bool{true, false, true, false}, nil),
		NewValueVector([]types.Value{types.NewInt(1), types.Null(), types.NewString("x"), types.NewBool(true)}),
	}
	for _, v := range vecs {
		buf := AppendVector(nil, v)
		// Every proper prefix must fail cleanly, never panic or over-read.
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := DecodeVector(buf[:cut], v.Len()); err == nil {
				t.Errorf("%c: truncation to %d of %d bytes decoded successfully", buf[0], cut, len(buf))
			}
		}
	}
	if _, _, err := DecodeVector([]byte{'Z', 0}, 1); err == nil {
		t.Error("unknown tag accepted")
	}
	if _, _, err := DecodeVector([]byte{'I', 9}, 0); err == nil {
		t.Error("bad null flag accepted")
	}
	// String offsets that point beyond the arena must be rejected.
	buf := AppendVector(nil, NewStringVector([]string{"abc"}, nil))
	buf[len(buf)-4-3] = 0xFF // corrupt offset[1]'s low byte (before 3 arena bytes)
	if _, _, err := DecodeVector(buf, 1); err == nil {
		t.Error("out-of-range string offset accepted")
	}
}

func TestWireConcat(t *testing.T) {
	nb := NewBitmap(2)
	nb.Set(0)
	got := Concat([]Vector{
		NewInt64Vector([]int64{1, 2}, nil),
		NewInt64Vector([]int64{0, 4}, nb),
		NewInt64Vector(nil, nil),
	})
	want := []types.Value{types.NewInt(1), types.NewInt(2), types.Null(), types.NewInt(4)}
	if _, ok := got.(*Int64Vector); !ok {
		t.Fatalf("uniform parts concatenated boxed: %T", got)
	}
	if got.Len() != len(want) {
		t.Fatalf("len = %d, want %d", got.Len(), len(want))
	}
	for i, w := range want {
		if !sameWireValue(got.Value(i), w) {
			t.Errorf("element %d = %v, want %v", i, got.Value(i), w)
		}
	}

	mixed := Concat([]Vector{
		NewInt64Vector([]int64{1}, nil),
		NewValueVector([]types.Value{types.NewString("s")}),
	})
	if _, ok := mixed.(*ValueVector); !ok {
		t.Fatalf("mixed parts stayed typed: %T", mixed)
	}
	if !sameWireValue(mixed.Value(0), types.NewInt(1)) || !sameWireValue(mixed.Value(1), types.NewString("s")) {
		t.Errorf("mixed concat lost values: %v %v", mixed.Value(0), mixed.Value(1))
	}

	if empty := Concat(nil); empty.Len() != 0 {
		t.Errorf("Concat(nil).Len() = %d", empty.Len())
	}
	one := NewBoolVector([]bool{true}, nil)
	if Concat([]Vector{one}) != Vector(one) {
		t.Error("single-part concat should return the part itself")
	}
}

func TestPackedNullsRoundTrip(t *testing.T) {
	nb := NewBitmap(13)
	for _, i := range []int{0, 5, 12} {
		nb.Set(i)
	}
	v := NewInt64Vector(make([]int64, 13), nb)
	packed := PackedNulls(v)
	if len(packed) != 2 {
		t.Fatalf("packed len = %d, want 2", len(packed))
	}
	back := BitmapFromPacked(packed, 13)
	for i := 0; i < 13; i++ {
		if back.Get(i) != nb.Get(i) {
			t.Errorf("bit %d: %v -> %v", i, nb.Get(i), back.Get(i))
		}
	}
	if PackedNulls(NewInt64Vector(make([]int64, 4), nil)) != nil {
		t.Error("null-free vector produced a bitmap")
	}
	if BitmapFromPacked(nil, 8) != nil {
		t.Error("nil packed bytes produced a bitmap")
	}
	if BitmapFromPacked(make([]byte, 2), 16) != nil {
		t.Error("all-zero packed bytes produced a bitmap")
	}
}
