package vector

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"repro/internal/types"
)

// edgeValues are the payloads where a typed encoding could plausibly diverge
// from the boxed one: NULL, negative zero, NaN, infinities, and integers
// around the 2^53 float-exactness boundary.
func edgeValues() []types.Value {
	const big = int64(1) << 53
	return []types.Value{
		types.Null(),
		types.NewBool(false), types.NewBool(true),
		types.NewInt(0), types.NewInt(-1), types.NewInt(42),
		types.NewInt(big), types.NewInt(big + 1), types.NewInt(-big - 1),
		types.NewInt(math.MaxInt64), types.NewInt(math.MinInt64),
		types.NewFloat(0), types.NewFloat(math.Copysign(0, -1)),
		types.NewFloat(math.NaN()), types.NewFloat(math.Inf(1)), types.NewFloat(math.Inf(-1)),
		types.NewFloat(1.5), types.NewFloat(float64(big)),
		types.NewString(""), types.NewString("a"), types.NewString("ab|c"),
	}
}

func randValue(rng *rand.Rand) types.Value {
	vals := edgeValues()
	return vals[rng.Intn(len(vals))]
}

// singleKindColumn builds a column of one kind (plus NULLs) so FromRows
// infers a typed vector.
func singleKindColumn(rng *rand.Rand, kind types.Kind, n int) []types.Value {
	col := make([]types.Value, n)
	for i := range col {
		if rng.Intn(5) == 0 {
			col[i] = types.Null()
			continue
		}
		switch kind {
		case types.KindInt:
			col[i] = types.NewInt(rng.Int63() - (1 << 62))
		case types.KindFloat:
			fs := []float64{0, math.Copysign(0, -1), math.NaN(), math.Inf(1), -2.5, 1e300}
			col[i] = types.NewFloat(fs[rng.Intn(len(fs))])
		case types.KindString:
			col[i] = types.NewString(string(rune('a' + rng.Intn(4))))
		default:
			col[i] = types.NewBool(rng.Intn(2) == 0)
		}
	}
	return col
}

func TestFromRowsInference(t *testing.T) {
	rows := [][]types.Value{
		{types.NewInt(1), types.NewFloat(1), types.NewString("x"), types.NewBool(true), types.NewInt(1), types.Null()},
		{types.Null(), types.Null(), types.Null(), types.Null(), types.NewString("mix"), types.Null()},
		{types.NewInt(2), types.NewFloat(2), types.NewString("y"), types.NewBool(false), types.NewInt(3), types.Null()},
	}
	c := FromRows(rows, 6)
	if _, ok := c.Vecs[0].(*Int64Vector); !ok {
		t.Errorf("col 0: got %T, want *Int64Vector", c.Vecs[0])
	}
	if _, ok := c.Vecs[1].(*Float64Vector); !ok {
		t.Errorf("col 1: got %T, want *Float64Vector", c.Vecs[1])
	}
	if _, ok := c.Vecs[2].(*StringVector); !ok {
		t.Errorf("col 2: got %T, want *StringVector", c.Vecs[2])
	}
	if _, ok := c.Vecs[3].(*BoolVector); !ok {
		t.Errorf("col 3: got %T, want *BoolVector", c.Vecs[3])
	}
	if _, ok := c.Vecs[4].(*ValueVector); !ok {
		t.Errorf("mixed col 4: got %T, want *ValueVector", c.Vecs[4])
	}
	if _, ok := c.Vecs[5].(*ValueVector); !ok {
		t.Errorf("all-NULL col 5: got %T, want *ValueVector", c.Vecs[5])
	}
}

// sameValue requires exact identity: same kind and, for floats, the same
// IEEE-754 bit pattern (Compare treats NaN as equal to everything, so the
// key encoding is the discriminating check).
func sameValue(a, b types.Value) bool {
	if a.Kind() != b.Kind() {
		return false
	}
	return bytes.Equal(a.AppendKey(nil), b.AppendKey(nil))
}

func TestRoundTripAndKeyAgreement(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 200
	kinds := []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindBool}
	rows := make([][]types.Value, n)
	for i := range rows {
		row := make([]types.Value, len(kinds)+1)
		for j, k := range kinds {
			row[j] = singleKindColumn(rng, k, 1)[0]
		}
		row[len(kinds)] = randValue(rng) // mixed column
		rows[i] = row
	}
	c := FromRows(rows, len(kinds)+1)
	if c.N != n {
		t.Fatalf("N = %d, want %d", c.N, n)
	}
	for j, vec := range c.Vecs {
		if vec.Len() != n {
			t.Fatalf("col %d: Len %d, want %d", j, vec.Len(), n)
		}
		for i := 0; i < n; i++ {
			orig := rows[i][j]
			if got := vec.Value(i); !sameValue(orig, got) {
				t.Fatalf("col %d row %d: round-trip %v (%s) != original %v (%s)",
					j, i, got, got.Kind(), orig, orig.Kind())
			}
			if vec.Null(i) != orig.IsNull() {
				t.Fatalf("col %d row %d: Null=%v, want %v", j, i, vec.Null(i), orig.IsNull())
			}
			want := orig.AppendKey(nil)
			got := vec.AppendElemKey(nil, i)
			if !bytes.Equal(want, got) {
				t.Fatalf("col %d row %d: AppendElemKey %q, boxed AppendKey %q", j, i, got, want)
			}
		}
	}
}

func TestSliceWindowsPreserveNulls(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	col := singleKindColumn(rng, types.KindInt, 130)
	rows := make([][]types.Value, len(col))
	for i, v := range col {
		rows[i] = []types.Value{v}
	}
	vec := FromRows(rows, 1).Vecs[0]
	for _, win := range [][2]int{{0, 130}, {0, 0}, {5, 70}, {64, 129}, {63, 65}} {
		lo, hi := win[0], win[1]
		s := vec.Slice(lo, hi)
		if s.Len() != hi-lo {
			t.Fatalf("slice [%d,%d): Len %d", lo, hi, s.Len())
		}
		for i := 0; i < s.Len(); i++ {
			if !sameValue(s.Value(i), col[lo+i]) {
				t.Fatalf("slice [%d,%d) elem %d: %v != %v", lo, hi, i, s.Value(i), col[lo+i])
			}
		}
		// Slicing a slice re-offsets into the same bitmap.
		if s.Len() >= 2 {
			ss := s.Slice(1, s.Len())
			if !sameValue(ss.Value(0), col[lo+1]) {
				t.Fatalf("nested slice: %v != %v", ss.Value(0), col[lo+1])
			}
		}
	}
}

func TestGather(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, kind := range []types.Kind{types.KindInt, types.KindFloat, types.KindString, types.KindBool} {
		col := singleKindColumn(rng, kind, 90)
		rows := make([][]types.Value, len(col))
		for i, v := range col {
			rows[i] = []types.Value{v}
		}
		vec := FromRows(rows, 1).Vecs[0].Slice(10, 90)
		sel := []int{0, 3, 3, 79, 41}
		g := vec.Gather(sel)
		if g.Len() != len(sel) {
			t.Fatalf("%s gather: Len %d", kind, g.Len())
		}
		for di, si := range sel {
			if !sameValue(g.Value(di), col[10+si]) {
				t.Fatalf("%s gather elem %d: %v != %v", kind, di, g.Value(di), col[10+si])
			}
		}
	}
	// Boxed fallback gathers too.
	vv := NewValueVector([]types.Value{types.NewInt(1), types.Null(), types.NewString("x")})
	g := vv.Gather([]int{2, 1})
	if !sameValue(g.Value(0), types.NewString("x")) || !g.Null(1) {
		t.Fatalf("ValueVector gather: %v %v", g.Value(0), g.Value(1))
	}
}

func TestMaterializeRebuildsRows(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const n, arity = 75, 3
	rows := make([][]types.Value, n)
	for i := range rows {
		rows[i] = []types.Value{
			singleKindColumn(rng, types.KindInt, 1)[0],
			singleKindColumn(rng, types.KindFloat, 1)[0],
			randValue(rng),
		}
	}
	c := FromRows(rows, arity)
	got := Materialize(c.Slice(0, n), n)
	if len(got) != n {
		t.Fatalf("Materialize: %d rows, want %d", len(got), n)
	}
	for i := range rows {
		for j := range rows[i] {
			if !sameValue(got[i][j], rows[i][j]) {
				t.Fatalf("row %d col %d: %v != %v", i, j, got[i][j], rows[i][j])
			}
		}
	}
	// A window materializes just the window.
	win := Materialize(c.Slice(20, 50), 30)
	for i := range win {
		for j := range win[i] {
			if !sameValue(win[i][j], rows[20+i][j]) {
				t.Fatalf("window row %d col %d: %v != %v", i, j, win[i][j], rows[20+i][j])
			}
		}
	}
}

func TestBitmapAnyInRange(t *testing.T) {
	m := NewBitmap(200)
	m.Set(130)
	if m.AnyInRange(0, 130) {
		t.Error("AnyInRange(0,130) = true")
	}
	if !m.AnyInRange(130, 131) {
		t.Error("AnyInRange(130,131) = false")
	}
	if !m.AnyInRange(0, 200) {
		t.Error("AnyInRange(0,200) = false")
	}
	var nilMap *Bitmap
	if nilMap.AnyInRange(0, 10) || nilMap.Get(3) {
		t.Error("nil bitmap reported a null")
	}
}
