// Package vector is the typed columnar layer under the physical engine's
// batches: per-column storage with the element type decided once per column
// instead of once per cell. A Vector holds one column's values unboxed
// ([]int64, []float64, []string, []bool) with a null bitmap on the side, or
// falls back to boxed []types.Value when the column's rows mix kinds. The
// compiled expression kernels (internal/algebra) run comparison, arithmetic,
// and least/greatest loops directly over the unboxed slices; the physical
// operators' key builders encode grouping/join/dedup keys straight from
// vector elements. Both paths reproduce the boxed semantics exactly —
// Value(i) rebuilds the original types.Value bit for bit, and AppendElemKey
// delegates to the same canonical encoders Value.AppendKey uses — so typed
// execution is an optimization, never a semantics change.
package vector

import "repro/internal/types"

// Vector is one column of values. Implementations are the typed vectors
// (Int64Vector, Float64Vector, StringVector, BoolVector) and the boxed
// ValueVector fallback. Slice windows are zero-copy; kernels that want the
// unboxed payload type-switch to the concrete vector and read its Vals
// directly.
type Vector interface {
	// Len reports the number of elements.
	Len() int
	// Kind reports the element kind non-null values carry (KindNull for the
	// boxed fallback, whose elements carry their own kinds).
	Kind() types.Kind
	// Null reports whether element i is NULL.
	Null(i int) bool
	// Value rebuilds element i as a boxed value, exactly equal (same kind,
	// same payload bits) to the value the column was built from.
	Value(i int) types.Value
	// Slice returns a zero-copy window [lo, hi) of the vector.
	Slice(lo, hi int) Vector
	// AppendElemKey appends element i's canonical key encoding — byte for
	// byte what Value(i).AppendKey would append — without boxing.
	AppendElemKey(b []byte, i int) []byte
	// Gather returns a vector holding the elements at the sel indices, in
	// sel order. The result is freshly allocated (never aliases the source),
	// so producers may hand it to consumers under batch ownership rules.
	Gather(sel []int) Vector
}

// Bitmap is a null bitmap: bit i set means element i is NULL. The zero
// value (or a nil *Bitmap) means no nulls. Vectors sliced from a parent
// share the parent's bitmap through an element offset, keeping Slice
// zero-copy.
type Bitmap struct {
	bits []uint64
}

// NewBitmap returns a bitmap sized for n elements, all non-null.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{bits: make([]uint64, (n+63)/64)}
}

// Set marks element i NULL.
func (m *Bitmap) Set(i int) { m.bits[i/64] |= 1 << (uint(i) % 64) }

// Get reports whether element i is NULL. A nil bitmap has no nulls.
func (m *Bitmap) Get(i int) bool {
	if m == nil {
		return false
	}
	return m.bits[i/64]&(1<<(uint(i)%64)) != 0
}

// AnyInRange reports whether any element in [lo, hi) is NULL — the kernels'
// cheap pre-check for skipping per-element null tests on fully valid
// windows.
func (m *Bitmap) AnyInRange(lo, hi int) bool {
	if m == nil {
		return false
	}
	for i := lo; i < hi; i++ {
		if m.Get(i) {
			return true
		}
	}
	return false
}

// nullsFor translates a sliced vector's element index to its parent bitmap
// position. Every typed vector embeds it.
type nulls struct {
	bm  *Bitmap
	off int
}

func (n nulls) null(i int) bool { return n.bm.Get(n.off + i) }

func (n nulls) anyNull(count int) bool { return n.bm.AnyInRange(n.off, n.off+count) }

// gatherNulls builds the null bitmap of a gather result: nil when the
// source window has no nulls at the selected positions.
func (n nulls) gatherNulls(sel []int) nulls {
	if n.bm == nil {
		return nulls{}
	}
	var out *Bitmap
	for di, si := range sel {
		if n.null(si) {
			if out == nil {
				out = NewBitmap(len(sel))
			}
			out.Set(di)
		}
	}
	return nulls{bm: out}
}

// Int64Vector is a column of integers.
type Int64Vector struct {
	Vals []int64
	// Asc records that the column is null-free and non-decreasing — an
	// ordering property detected once at column build time. It is advisory:
	// false makes no claim, true lets comparison kernels answer range
	// predicates by binary search instead of a full scan. Slicing preserves
	// it (a window of a sorted run is sorted); rebuilding vectors does not.
	Asc bool
	nulls
}

// NewInt64Vector wraps vals with an optional null bitmap (bit i set = vals[i]
// is NULL; the slot's payload is ignored).
func NewInt64Vector(vals []int64, nb *Bitmap) *Int64Vector {
	return &Int64Vector{Vals: vals, nulls: nulls{bm: nb}}
}

// Reset repoints the vector at new storage, clearing Asc and any slice
// offset. It lets kernel scratch reuse one header allocation across
// invocations; the reset vector obeys the same lifetime rule as the storage
// it wraps (valid until the owner's next invocation).
func (v *Int64Vector) Reset(vals []int64, nb *Bitmap) {
	*v = Int64Vector{Vals: vals, nulls: nulls{bm: nb}}
}

// Len implements Vector.
func (v *Int64Vector) Len() int { return len(v.Vals) }

// Kind implements Vector.
func (v *Int64Vector) Kind() types.Kind { return types.KindInt }

// Null implements Vector.
func (v *Int64Vector) Null(i int) bool { return v.null(i) }

// AnyNull reports whether the vector holds any NULL.
func (v *Int64Vector) AnyNull() bool { return v.anyNull(len(v.Vals)) }

// Value implements Vector.
func (v *Int64Vector) Value(i int) types.Value {
	if v.null(i) {
		return types.Null()
	}
	return types.NewInt(v.Vals[i])
}

// Slice implements Vector.
func (v *Int64Vector) Slice(lo, hi int) Vector {
	return &Int64Vector{Vals: v.Vals[lo:hi], Asc: v.Asc, nulls: nulls{bm: v.bm, off: v.off + lo}}
}

// AppendElemKey implements Vector.
func (v *Int64Vector) AppendElemKey(b []byte, i int) []byte {
	if v.null(i) {
		return types.AppendNullKey(b)
	}
	return types.AppendIntKey(b, v.Vals[i])
}

// Gather implements Vector.
func (v *Int64Vector) Gather(sel []int) Vector {
	out := make([]int64, len(sel))
	for di, si := range sel {
		out[di] = v.Vals[si]
	}
	return &Int64Vector{Vals: out, nulls: v.gatherNulls(sel)}
}

// Float64Vector is a column of floats.
type Float64Vector struct {
	Vals []float64
	// Asc records that the column is null-free, NaN-free and non-decreasing;
	// see Int64Vector.Asc. (Detection compares adjacent elements, and every
	// comparison against NaN is false, so a column containing NaN can never
	// be marked ascending.)
	Asc bool
	nulls
}

// NewFloat64Vector wraps vals with an optional null bitmap.
func NewFloat64Vector(vals []float64, nb *Bitmap) *Float64Vector {
	return &Float64Vector{Vals: vals, nulls: nulls{bm: nb}}
}

// Reset repoints the vector at new storage; see Int64Vector.Reset.
func (v *Float64Vector) Reset(vals []float64, nb *Bitmap) {
	*v = Float64Vector{Vals: vals, nulls: nulls{bm: nb}}
}

// Len implements Vector.
func (v *Float64Vector) Len() int { return len(v.Vals) }

// Kind implements Vector.
func (v *Float64Vector) Kind() types.Kind { return types.KindFloat }

// Null implements Vector.
func (v *Float64Vector) Null(i int) bool { return v.null(i) }

// AnyNull reports whether the vector holds any NULL.
func (v *Float64Vector) AnyNull() bool { return v.anyNull(len(v.Vals)) }

// Value implements Vector.
func (v *Float64Vector) Value(i int) types.Value {
	if v.null(i) {
		return types.Null()
	}
	return types.NewFloat(v.Vals[i])
}

// Slice implements Vector.
func (v *Float64Vector) Slice(lo, hi int) Vector {
	return &Float64Vector{Vals: v.Vals[lo:hi], Asc: v.Asc, nulls: nulls{bm: v.bm, off: v.off + lo}}
}

// AppendElemKey implements Vector.
func (v *Float64Vector) AppendElemKey(b []byte, i int) []byte {
	if v.null(i) {
		return types.AppendNullKey(b)
	}
	return types.AppendFloatKey(b, v.Vals[i])
}

// Gather implements Vector.
func (v *Float64Vector) Gather(sel []int) Vector {
	out := make([]float64, len(sel))
	for di, si := range sel {
		out[di] = v.Vals[si]
	}
	return &Float64Vector{Vals: out, nulls: v.gatherNulls(sel)}
}

// StringVector is a column of strings.
type StringVector struct {
	Vals []string
	nulls
}

// NewStringVector wraps vals with an optional null bitmap.
func NewStringVector(vals []string, nb *Bitmap) *StringVector {
	return &StringVector{Vals: vals, nulls: nulls{bm: nb}}
}

// Len implements Vector.
func (v *StringVector) Len() int { return len(v.Vals) }

// Kind implements Vector.
func (v *StringVector) Kind() types.Kind { return types.KindString }

// Null implements Vector.
func (v *StringVector) Null(i int) bool { return v.null(i) }

// Value implements Vector.
func (v *StringVector) Value(i int) types.Value {
	if v.null(i) {
		return types.Null()
	}
	return types.NewString(v.Vals[i])
}

// Slice implements Vector.
func (v *StringVector) Slice(lo, hi int) Vector {
	return &StringVector{Vals: v.Vals[lo:hi], nulls: nulls{bm: v.bm, off: v.off + lo}}
}

// AppendElemKey implements Vector.
func (v *StringVector) AppendElemKey(b []byte, i int) []byte {
	if v.null(i) {
		return types.AppendNullKey(b)
	}
	return types.AppendStringKey(b, v.Vals[i])
}

// Gather implements Vector.
func (v *StringVector) Gather(sel []int) Vector {
	out := make([]string, len(sel))
	for di, si := range sel {
		out[di] = v.Vals[si]
	}
	return &StringVector{Vals: out, nulls: v.gatherNulls(sel)}
}

// BoolVector is a column of booleans.
type BoolVector struct {
	Vals []bool
	nulls
}

// NewBoolVector wraps vals with an optional null bitmap.
func NewBoolVector(vals []bool, nb *Bitmap) *BoolVector {
	return &BoolVector{Vals: vals, nulls: nulls{bm: nb}}
}

// Len implements Vector.
func (v *BoolVector) Len() int { return len(v.Vals) }

// Kind implements Vector.
func (v *BoolVector) Kind() types.Kind { return types.KindBool }

// Null implements Vector.
func (v *BoolVector) Null(i int) bool { return v.null(i) }

// Value implements Vector.
func (v *BoolVector) Value(i int) types.Value {
	if v.null(i) {
		return types.Null()
	}
	return types.NewBool(v.Vals[i])
}

// Slice implements Vector.
func (v *BoolVector) Slice(lo, hi int) Vector {
	return &BoolVector{Vals: v.Vals[lo:hi], nulls: nulls{bm: v.bm, off: v.off + lo}}
}

// AppendElemKey implements Vector.
func (v *BoolVector) AppendElemKey(b []byte, i int) []byte {
	if v.null(i) {
		return types.AppendNullKey(b)
	}
	return types.AppendBoolKey(b, v.Vals[i])
}

// Gather implements Vector.
func (v *BoolVector) Gather(sel []int) Vector {
	out := make([]bool, len(sel))
	for di, si := range sel {
		out[di] = v.Vals[si]
	}
	return &BoolVector{Vals: out, nulls: v.gatherNulls(sel)}
}

// GatherInto is Gather with storage reuse: when prev is a vector of the
// same concrete type with enough capacity, its backing array is overwritten
// instead of allocating a fresh one. Callers own prev and must be done
// reading it — the selection-vector operators use their previous batch's
// gather output, which the batch lifetime rule has already expired.
func GatherInto(prev, src Vector, sel []int) Vector {
	switch s := src.(type) {
	case *Int64Vector:
		var out []int64
		if p, ok := prev.(*Int64Vector); ok && cap(p.Vals) >= len(sel) {
			out = p.Vals[:len(sel)]
		} else {
			out = make([]int64, len(sel))
		}
		for di, si := range sel {
			out[di] = s.Vals[si]
		}
		return &Int64Vector{Vals: out, nulls: s.gatherNulls(sel)}
	case *Float64Vector:
		var out []float64
		if p, ok := prev.(*Float64Vector); ok && cap(p.Vals) >= len(sel) {
			out = p.Vals[:len(sel)]
		} else {
			out = make([]float64, len(sel))
		}
		for di, si := range sel {
			out[di] = s.Vals[si]
		}
		return &Float64Vector{Vals: out, nulls: s.gatherNulls(sel)}
	case *StringVector:
		var out []string
		if p, ok := prev.(*StringVector); ok && cap(p.Vals) >= len(sel) {
			out = p.Vals[:len(sel)]
		} else {
			out = make([]string, len(sel))
		}
		for di, si := range sel {
			out[di] = s.Vals[si]
		}
		return &StringVector{Vals: out, nulls: s.gatherNulls(sel)}
	case *BoolVector:
		var out []bool
		if p, ok := prev.(*BoolVector); ok && cap(p.Vals) >= len(sel) {
			out = p.Vals[:len(sel)]
		} else {
			out = make([]bool, len(sel))
		}
		for di, si := range sel {
			out[di] = s.Vals[si]
		}
		return &BoolVector{Vals: out, nulls: s.gatherNulls(sel)}
	case *ValueVector:
		var out []types.Value
		if p, ok := prev.(*ValueVector); ok && cap(p.Vals) >= len(sel) {
			out = p.Vals[:len(sel)]
		} else {
			out = make([]types.Value, len(sel))
		}
		for di, si := range sel {
			out[di] = s.Vals[si]
		}
		return &ValueVector{Vals: out}
	default:
		return src.Gather(sel)
	}
}

// ValueVector is the boxed fallback for columns whose rows mix kinds (or
// hold only NULLs): elements are stored as they came. It satisfies Vector so
// mixed columns flow through the same columnar plumbing, just without the
// unboxed kernels.
type ValueVector struct {
	Vals []types.Value
}

// NewValueVector wraps boxed values.
func NewValueVector(vals []types.Value) *ValueVector { return &ValueVector{Vals: vals} }

// Len implements Vector.
func (v *ValueVector) Len() int { return len(v.Vals) }

// Kind implements Vector. Boxed elements carry their own kinds.
func (v *ValueVector) Kind() types.Kind { return types.KindNull }

// Null implements Vector.
func (v *ValueVector) Null(i int) bool { return v.Vals[i].IsNull() }

// Value implements Vector.
func (v *ValueVector) Value(i int) types.Value { return v.Vals[i] }

// Slice implements Vector.
func (v *ValueVector) Slice(lo, hi int) Vector { return &ValueVector{Vals: v.Vals[lo:hi]} }

// AppendElemKey implements Vector.
func (v *ValueVector) AppendElemKey(b []byte, i int) []byte { return v.Vals[i].AppendKey(b) }

// Gather implements Vector.
func (v *ValueVector) Gather(sel []int) Vector {
	out := make([]types.Value, len(sel))
	for di, si := range sel {
		out[di] = v.Vals[si]
	}
	return &ValueVector{Vals: out}
}
