package vector

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/spill"
	"repro/internal/types"
)

// Wire encoding of one column, used by the server's binary columnar result
// protocol (internal/server). The layout follows the spill codec's
// discipline — little-endian fixed-width spines, uvarint-free fixed
// offsets, the same per-cell kind tags for the boxed fallback — so there is
// one binary vocabulary for values at rest and values on the wire.
//
// A column is encoded as:
//
//	tag (1 byte): 'I' int64, 'F' float64, 'S' string, 'B' bool, 'V' boxed
//
// For the typed tags a null-presence byte follows (0 = no nulls, 1 = a
// packed null bitmap of ceil(n/8) bytes follows, bit i of byte i/8 set —
// LSB first — meaning element i is NULL), then the payload:
//
//	'I': n x 8 bytes, little-endian two's-complement int64
//	'F': n x 8 bytes, little-endian IEEE-754 bits (NaN payloads survive)
//	'S': (n+1) x 4 bytes little-endian uint32 offsets into a string arena
//	     (offset[0] = 0, element i is arena[offset[i]:offset[i+1]]),
//	     then the arena bytes
//	'B': ceil(n/8) bytes of packed value bits, LSB first
//
// NULL slots encode as zero payload (0 bits, empty arena entry) so the
// bytes are a pure function of the column's values — never of garbage left
// in masked slots.
//
// 'V' carries n self-describing cells in the spill codec's tagged value
// encoding (spill.AppendValue); boxed columns need no separate bitmap
// because null is a cell tag. The element count n is not part of the
// column encoding — the enclosing chunk frame carries it once for all
// columns.

// AppendVector appends the wire encoding of v to buf and returns the
// extended buffer. It is total over Vector: any implementation beyond the
// typed four is boxed cell by cell through the 'V' arm.
func AppendVector(buf []byte, v Vector) []byte {
	n := v.Len()
	switch tv := v.(type) {
	case *Int64Vector:
		buf = append(buf, 'I')
		buf = appendNullBitmap(buf, v)
		for i := 0; i < n; i++ {
			x := tv.Vals[i]
			if tv.null(i) {
				x = 0
			}
			buf = binary.LittleEndian.AppendUint64(buf, uint64(x))
		}
		return buf
	case *Float64Vector:
		buf = append(buf, 'F')
		buf = appendNullBitmap(buf, v)
		for i := 0; i < n; i++ {
			var bits uint64
			if !tv.null(i) {
				bits = math.Float64bits(tv.Vals[i])
			}
			buf = binary.LittleEndian.AppendUint64(buf, bits)
		}
		return buf
	case *StringVector:
		buf = append(buf, 'S')
		buf = appendNullBitmap(buf, v)
		off := uint32(0)
		buf = binary.LittleEndian.AppendUint32(buf, off)
		for i := 0; i < n; i++ {
			if !tv.null(i) {
				off += uint32(len(tv.Vals[i]))
			}
			buf = binary.LittleEndian.AppendUint32(buf, off)
		}
		for i := 0; i < n; i++ {
			if !tv.null(i) {
				buf = append(buf, tv.Vals[i]...)
			}
		}
		return buf
	case *BoolVector:
		buf = append(buf, 'B')
		buf = appendNullBitmap(buf, v)
		bits := make([]byte, (n+7)/8)
		for i := 0; i < n; i++ {
			if !tv.null(i) && tv.Vals[i] {
				bits[i/8] |= 1 << (uint(i) % 8)
			}
		}
		return append(buf, bits...)
	default:
		buf = append(buf, 'V')
		for i := 0; i < n; i++ {
			buf = spill.AppendValue(buf, tv.Value(i))
		}
		return buf
	}
}

// WireTag reports the wire column tag AppendVector would choose for v —
// the concrete typed tags for the four unboxed kinds, 'V' for anything
// boxed. Streaming headers carry these tags so a zero-chunk result can
// still be reassembled with the right column types.
func WireTag(v Vector) byte { return concreteKind(v) }

// EmptyOfTag returns a zero-length vector of the concrete type a wire
// column tag names. Unknown or 'V' tags yield an empty boxed vector, which
// is always value-correct. This is the typed counterpart of Concat over an
// empty parts list: with no chunks to inspect, the tag is the only record
// of the column's kind.
func EmptyOfTag(tag byte) Vector {
	switch tag {
	case 'I':
		return NewInt64Vector(nil, nil)
	case 'F':
		return NewFloat64Vector(nil, nil)
	case 'S':
		return NewStringVector(nil, nil)
	case 'B':
		return NewBoolVector(nil, nil)
	default:
		return NewValueVector(nil)
	}
}

// appendNullBitmap appends the null-presence byte and, when any element is
// null, the packed bitmap.
func appendNullBitmap(buf []byte, v Vector) []byte {
	packed := PackedNulls(v)
	if packed == nil {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	return append(buf, packed...)
}

// PackedNulls renders v's null positions as a packed LSB-first bitmap of
// ceil(Len/8) bytes (bit i set = element i NULL), or nil when the column
// holds no nulls. It works on sliced vectors — positions are relative to
// the slice, not the parent bitmap.
func PackedNulls(v Vector) []byte {
	n := v.Len()
	var packed []byte
	for i := 0; i < n; i++ {
		if v.Null(i) {
			if packed == nil {
				packed = make([]byte, (n+7)/8)
			}
			packed[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return packed
}

// BitmapFromPacked rebuilds a null Bitmap for n elements from a packed
// LSB-first byte form. A nil or all-zero input yields a nil bitmap (the
// canonical "no nulls").
func BitmapFromPacked(packed []byte, n int) *Bitmap {
	var bm *Bitmap
	for i := 0; i < n; i++ {
		if i/8 < len(packed) && packed[i/8]&(1<<(uint(i)%8)) != 0 {
			if bm == nil {
				bm = NewBitmap(n)
			}
			bm.Set(i)
		}
	}
	return bm
}

// DecodeVector decodes one column of n elements from b, returning the
// vector and the remaining bytes. Every length is bounds-checked so a
// truncated or corrupt input yields an error, never a panic or an
// over-read.
func DecodeVector(b []byte, n int) (Vector, []byte, error) {
	if n < 0 {
		return nil, nil, fmt.Errorf("vector: negative element count %d", n)
	}
	if len(b) < 1 {
		return nil, nil, fmt.Errorf("vector: truncated column (no tag)")
	}
	tag := b[0]
	b = b[1:]
	if tag == 'V' {
		vals := make([]types.Value, n)
		var err error
		for i := 0; i < n; i++ {
			vals[i], b, err = spill.DecodeValue(b)
			if err != nil {
				return nil, nil, fmt.Errorf("vector: boxed cell %d: %w", i, err)
			}
		}
		return NewValueVector(vals), b, nil
	}

	var nb *Bitmap
	switch tag {
	case 'I', 'F', 'S', 'B':
		if len(b) < 1 {
			return nil, nil, fmt.Errorf("vector: truncated column (no null flag)")
		}
		flag := b[0]
		b = b[1:]
		switch flag {
		case 0:
		case 1:
			nbytes := (n + 7) / 8
			if len(b) < nbytes {
				return nil, nil, fmt.Errorf("vector: truncated null bitmap (%d of %d bytes)", len(b), nbytes)
			}
			nb = BitmapFromPacked(b[:nbytes], n)
			b = b[nbytes:]
		default:
			return nil, nil, fmt.Errorf("vector: bad null flag %d", flag)
		}
	default:
		return nil, nil, fmt.Errorf("vector: unknown column tag %q", tag)
	}

	switch tag {
	case 'I':
		if len(b) < 8*n {
			return nil, nil, fmt.Errorf("vector: truncated int64 spine (%d of %d bytes)", len(b), 8*n)
		}
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return NewInt64Vector(vals, nb), b[8*n:], nil
	case 'F':
		if len(b) < 8*n {
			return nil, nil, fmt.Errorf("vector: truncated float64 spine (%d of %d bytes)", len(b), 8*n)
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
		}
		return NewFloat64Vector(vals, nb), b[8*n:], nil
	case 'S':
		need := 4 * (n + 1)
		if len(b) < need {
			return nil, nil, fmt.Errorf("vector: truncated string offsets (%d of %d bytes)", len(b), need)
		}
		offs := make([]uint32, n+1)
		for i := range offs {
			offs[i] = binary.LittleEndian.Uint32(b[4*i:])
		}
		b = b[need:]
		total := offs[n]
		if offs[0] != 0 {
			return nil, nil, fmt.Errorf("vector: string arena does not start at 0")
		}
		if uint64(total) > uint64(len(b)) {
			return nil, nil, fmt.Errorf("vector: truncated string arena (%d of %d bytes)", len(b), total)
		}
		arena := string(b[:total]) // one copy; elements are substrings of it
		vals := make([]string, n)
		for i := range vals {
			lo, hi := offs[i], offs[i+1]
			if lo > hi || hi > total {
				return nil, nil, fmt.Errorf("vector: bad string offsets [%d,%d) of %d", lo, hi, total)
			}
			vals[i] = arena[lo:hi]
		}
		return NewStringVector(vals, nb), b[total:], nil
	default: // 'B'
		nbytes := (n + 7) / 8
		if len(b) < nbytes {
			return nil, nil, fmt.Errorf("vector: truncated bool bits (%d of %d bytes)", len(b), nbytes)
		}
		vals := make([]bool, n)
		for i := range vals {
			vals[i] = b[i/8]&(1<<(uint(i)%8)) != 0
		}
		return NewBoolVector(vals, nb), b[nbytes:], nil
	}
}

// Concat stitches decoded column chunks back into one vector. Chunks of one
// typed kind concatenate unboxed (bitmaps rebuilt at the combined offsets);
// a mix of concrete types — possible when some chunk of a column decoded
// boxed — falls back to a boxed ValueVector, which still reproduces every
// value exactly. An empty parts list yields an empty boxed vector.
func Concat(parts []Vector) Vector {
	if len(parts) == 1 {
		return parts[0]
	}
	total := 0
	uniform := true
	for _, p := range parts {
		total += p.Len()
	}
	for i := 1; i < len(parts); i++ {
		if concreteKind(parts[i]) != concreteKind(parts[0]) {
			uniform = false
			break
		}
	}
	if len(parts) == 0 || !uniform {
		return concatBoxed(parts, total)
	}
	switch parts[0].(type) {
	case *Int64Vector:
		vals := make([]int64, 0, total)
		var nb *Bitmap
		at := 0
		for _, p := range parts {
			tv := p.(*Int64Vector)
			vals = append(vals, tv.Vals...)
			nb = copyNulls(nb, p, at, total)
			at += p.Len()
		}
		return NewInt64Vector(vals, nb)
	case *Float64Vector:
		vals := make([]float64, 0, total)
		var nb *Bitmap
		at := 0
		for _, p := range parts {
			tv := p.(*Float64Vector)
			vals = append(vals, tv.Vals...)
			nb = copyNulls(nb, p, at, total)
			at += p.Len()
		}
		return NewFloat64Vector(vals, nb)
	case *StringVector:
		vals := make([]string, 0, total)
		var nb *Bitmap
		at := 0
		for _, p := range parts {
			tv := p.(*StringVector)
			vals = append(vals, tv.Vals...)
			nb = copyNulls(nb, p, at, total)
			at += p.Len()
		}
		return NewStringVector(vals, nb)
	case *BoolVector:
		vals := make([]bool, 0, total)
		var nb *Bitmap
		at := 0
		for _, p := range parts {
			tv := p.(*BoolVector)
			vals = append(vals, tv.Vals...)
			nb = copyNulls(nb, p, at, total)
			at += p.Len()
		}
		return NewBoolVector(vals, nb)
	default:
		return concatBoxed(parts, total)
	}
}

// concreteKind distinguishes the concrete vector types for Concat's
// uniformity check.
func concreteKind(v Vector) byte {
	switch v.(type) {
	case *Int64Vector:
		return 'I'
	case *Float64Vector:
		return 'F'
	case *StringVector:
		return 'S'
	case *BoolVector:
		return 'B'
	default:
		return 'V'
	}
}

// copyNulls folds part p's nulls into a combined bitmap starting at element
// offset at.
func copyNulls(nb *Bitmap, p Vector, at, total int) *Bitmap {
	n := p.Len()
	for i := 0; i < n; i++ {
		if p.Null(i) {
			if nb == nil {
				nb = NewBitmap(total)
			}
			nb.Set(at + i)
		}
	}
	return nb
}

// concatBoxed concatenates any vector mix cell by cell.
func concatBoxed(parts []Vector, total int) Vector {
	vals := make([]types.Value, 0, total)
	for _, p := range parts {
		n := p.Len()
		for i := 0; i < n; i++ {
			vals = append(vals, p.Value(i))
		}
	}
	return NewValueVector(vals)
}
