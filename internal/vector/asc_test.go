package vector

import (
	"math"
	"testing"

	"repro/internal/types"
)

func intCol(vals ...any) []Vector {
	rows := make([][]types.Value, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case int:
			rows[i] = []types.Value{types.NewInt(int64(x))}
		case float64:
			rows[i] = []types.Value{types.NewFloat(x)}
		case nil:
			rows[i] = []types.Value{types.Null()}
		}
	}
	return FromRows(rows, 1).Vecs
}

// TestAscDetection pins when FromRows marks a column ascending: null-free
// non-decreasing values only, and for floats additionally NaN-free — the
// marking licenses binary search, which every one of those exceptions would
// silently break.
func TestAscDetection(t *testing.T) {
	asc := func(v Vector) bool {
		switch tv := v.(type) {
		case *Int64Vector:
			return tv.Asc
		case *Float64Vector:
			return tv.Asc
		}
		return false
	}

	if !asc(intCol(1, 1, 2, 5)[0]) {
		t.Error("non-decreasing int column (with duplicates) must be marked ascending")
	}
	if !asc(intCol(7)[0]) {
		t.Error("a single-element int column is trivially ascending")
	}
	if _, boxed := intCol()[0].(*ValueVector); !boxed {
		t.Error("an empty column has no kind to infer and stays boxed")
	}
	if asc(intCol(2, 1)[0]) {
		t.Error("descending column must not be marked ascending")
	}
	if asc(intCol(1, nil, 2)[0]) {
		t.Error("null-bearing column must not be marked ascending")
	}
	if !asc(intCol(-1.5, 0.0, 2.25)[0]) {
		t.Error("non-decreasing float column must be marked ascending")
	}
	if asc(intCol(0.0, math.NaN(), 2.0)[0]) {
		t.Error("NaN-bearing float column must not be marked ascending")
	}
	if asc(intCol(0.0, math.NaN())[0]) {
		t.Error("trailing NaN must not be marked ascending")
	}
	if !asc(intCol(math.Inf(-1), 0.0, math.Inf(1))[0]) {
		t.Error("infinities in order are still ascending")
	}
}

// TestAscSlicePreservedGatherNot: slicing a window of an ascending column
// stays ascending (a contiguous window of a sorted column is sorted);
// gathering by an arbitrary selection must drop the marking (the selection
// can reorder).
func TestAscSlicePreservedGatherNot(t *testing.T) {
	iv := intCol(1, 2, 3, 4)[0]
	if sl, ok := iv.Slice(1, 3).(*Int64Vector); !ok || !sl.Asc {
		t.Error("int Slice must preserve the ascending marking")
	}
	if g, ok := iv.Gather([]int{3, 0}).(*Int64Vector); !ok || g.Asc {
		t.Error("int Gather must not claim ascending order")
	}
	fv := intCol(1.0, 2.0, 3.0)[0]
	if sl, ok := fv.Slice(0, 2).(*Float64Vector); !ok || !sl.Asc {
		t.Error("float Slice must preserve the ascending marking")
	}
	if g, ok := fv.Gather([]int{2, 1}).(*Float64Vector); !ok || g.Asc {
		t.Error("float Gather must not claim ascending order")
	}
}

// TestAscNeverSurvivesWireOrConcat pins the remote-materialization hazard:
// the wire encoding carries values only, never the Asc marking, and a
// decoded or concatenated column must come back with Asc false — the
// marking licenses binary-search range selection, and neither path can
// guarantee order (decode trusts remote bytes; parts that are each sorted
// are not sorted end to end). The sources here are force-marked ascending
// over UNsorted data, so any path that preserved or recomputed-and-trusted
// the flag would hand SelectRangeVec a broken invariant.
func TestAscNeverSurvivesWireOrConcat(t *testing.T) {
	iv := NewInt64Vector([]int64{5, 1, 9, 2}, nil)
	iv.Asc = true
	fv := NewFloat64Vector([]float64{3.5, 0.5, 7.25}, nil)
	fv.Asc = true

	asc := func(v Vector) bool {
		switch tv := v.(type) {
		case *Int64Vector:
			return tv.Asc
		case *Float64Vector:
			return tv.Asc
		}
		return false
	}

	for name, v := range map[string]Vector{"int": iv, "float": fv} {
		dec, rest, err := DecodeVector(AppendVector(nil, v), v.Len())
		if err != nil || len(rest) != 0 {
			t.Fatalf("%s: decode: %v (%d trailing bytes)", name, err, len(rest))
		}
		if asc(dec) {
			t.Errorf("%s: Asc survived the wire round-trip", name)
		}
		for i := 0; i < v.Len(); i++ {
			if !valuesEqualKey(v.Value(i), dec.Value(i)) {
				t.Fatalf("%s: decode changed element %d", name, i)
			}
		}
	}

	// Concat: parts that are each genuinely ascending do not concatenate
	// ascending ([1,5] ++ [2,9]), so the marking must not propagate.
	a := NewInt64Vector([]int64{1, 5}, nil)
	a.Asc = true
	b := NewInt64Vector([]int64{2, 9}, nil)
	b.Asc = true
	if cat := Concat([]Vector{a, b}); asc(cat) {
		t.Error("int Concat propagated Asc across parts")
	}
	fa := NewFloat64Vector([]float64{0.5, 2.5}, nil)
	fa.Asc = true
	fb := NewFloat64Vector([]float64{1.5, 3.5}, nil)
	fb.Asc = true
	if cat := Concat([]Vector{fa, fb}); asc(cat) {
		t.Error("float Concat propagated Asc across parts")
	}
}

func valuesEqualKey(a, b types.Value) bool {
	return a.Kind() == b.Kind() && string(a.AppendKey(nil)) == string(b.AppendKey(nil))
}

// TestVectorKindAndAnyNull covers the Kind/AnyNull surface of every typed
// vector, with and without bitmaps, and through zero-copy slices.
func TestVectorKindAndAnyNull(t *testing.T) {
	nb := NewBitmap(3)
	nb.Set(1)
	cases := []struct {
		v    Vector
		kind types.Kind
	}{
		{NewInt64Vector([]int64{1, 0, 3}, nb), types.KindInt},
		{NewFloat64Vector([]float64{1, 0, 3}, nb), types.KindFloat},
		{NewStringVector([]string{"a", "", "c"}, nb), types.KindString},
		{NewBoolVector([]bool{true, false, true}, nb), types.KindBool},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%T.Kind() = %v, want %v", c.v, c.v.Kind(), c.kind)
		}
		if !c.v.Null(1) || c.v.Null(0) {
			t.Errorf("%T: bitmap nulls misread", c.v)
		}
		if !c.v.Value(1).IsNull() {
			t.Errorf("%T: Value at a null slot must be NULL", c.v)
		}
		// A window past the null is all-valid; one covering it is not.
		head := c.v.Slice(2, 3)
		if head.Null(0) {
			t.Errorf("%T: sliced window misaligned its bitmap offset", c.v)
		}
	}
	if NewInt64Vector([]int64{1}, nil).AnyNull() {
		t.Error("nil-bitmap vector reports nulls")
	}
	if !NewFloat64Vector([]float64{1, 2, 3}, nb).AnyNull() {
		t.Error("bitmap null not reported by AnyNull")
	}
}

// TestGatherInto covers the reuse path (same concrete type, enough
// capacity), the fallback allocation, and null propagation through gathers,
// for each typed vector.
func TestGatherInto(t *testing.T) {
	nb := NewBitmap(4)
	nb.Set(2)
	sel := []int{3, 2, 0}

	check := func(name string, src Vector, prev Vector) {
		t.Helper()
		out := GatherInto(prev, src, sel)
		if out.Len() != len(sel) {
			t.Fatalf("%s: gathered %d, want %d", name, out.Len(), len(sel))
		}
		for di, si := range sel {
			w, g := src.Value(si), out.Value(di)
			if w.Kind() != g.Kind() || string(w.AppendKey(nil)) != string(g.AppendKey(nil)) {
				t.Fatalf("%s: out[%d] = %v, want %v", name, di, g, w)
			}
		}
	}

	iv := NewInt64Vector([]int64{10, 11, 12, 13}, nb)
	check("int fresh", iv, nil)
	check("int reuse", iv, NewInt64Vector(make([]int64, 8), nil))
	check("int type-mismatch", iv, NewFloat64Vector(make([]float64, 8), nil))

	fv := NewFloat64Vector([]float64{0.5, 1.5, 2.5, 3.5}, nb)
	check("float fresh", fv, nil)
	check("float reuse", fv, NewFloat64Vector(make([]float64, 8), nil))

	sv := NewStringVector([]string{"a", "b", "c", "d"}, nb)
	check("string fresh", sv, nil)
	check("string reuse", sv, NewStringVector(make([]string, 8), nil))

	bv := NewBoolVector([]bool{true, false, true, false}, nb)
	check("bool fresh", bv, nil)
	check("bool reuse", bv, NewBoolVector(make([]bool, 8), nil))

	vv := NewValueVector([]types.Value{types.NewInt(1), types.NewString("x"), types.Null(), types.NewBool(true)})
	check("boxed fresh", vv, nil)
	check("boxed reuse", vv, NewValueVector(make([]types.Value, 8)))

	// Empty selection: every path must return a zero-length vector.
	if out := GatherInto(nil, iv, nil); out.Len() != 0 {
		t.Errorf("empty selection gathered %d elements", out.Len())
	}
}

// TestMaterializeEdges: all-NULL columns (boxed fallback), empty tables,
// and row stability after the source vectors are overwritten.
func TestMaterializeEdges(t *testing.T) {
	if rows := Materialize(FromRows(nil, 2).Slice(0, 0), 0); len(rows) != 0 {
		t.Errorf("materializing an empty table produced %d rows", len(rows))
	}

	src := [][]types.Value{
		{types.Null(), types.NewInt(1), types.NewBool(true)},
		{types.Null(), types.Null(), types.NewBool(false)},
	}
	cols := FromRows(src, 3)
	if _, ok := cols.Vecs[0].(*ValueVector); !ok {
		t.Fatalf("all-NULL column must fall back to the boxed vector, got %T", cols.Vecs[0])
	}
	vecs := cols.Slice(0, 2)
	rows := Materialize(vecs, 2)
	for i := range src {
		for j := range src[i] {
			w, g := src[i][j], rows[i][j]
			if w.Kind() != g.Kind() || string(w.AppendKey(nil)) != string(g.AppendKey(nil)) {
				t.Fatalf("row %d col %d: %v, want %v", i, j, g, w)
			}
		}
	}
	// Stability: scribbling over the source vectors must not reach the rows.
	if bv, ok := vecs[2].(*BoolVector); ok {
		bv.Vals[0] = false
	}
	if !rows[0][2].Bool() {
		t.Error("materialized rows alias vector storage")
	}
}
