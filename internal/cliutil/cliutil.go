// Package cliutil is the one copy of the flag plumbing the command-line
// tools share: the -dop / -fuse / -mem-budget execution knobs (cmd/uadb,
// cmd/bench, cmd/uadb-server all take the same three, with the same
// parsing and the same error wording) and the repeatable -table name=path
// CSV loader. Each tool registers what it needs on its own FlagSet and
// keeps tool-specific flags to itself.
package cliutil

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/csvio"
	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/rewrite"
)

// ExecFlagSpec selects which of the shared execution flags a tool takes
// and lets it override the usage text where its semantics differ
// (cmd/bench's -dop gates suite entries rather than a query, and its
// -mem-budget accepts "auto").
type ExecFlagSpec struct {
	// DOPUsage / BudgetUsage override the standard usage text when set.
	DOPUsage    string
	BudgetUsage string
	// NoFuse omits the -fuse flag (cmd/bench has no fusion knob; the
	// suite measures both sides itself).
	NoFuse bool
	// NoAttrBounds omits the -attr-bounds flag (cmd/bench benchmarks the
	// tuple-level path only).
	NoAttrBounds bool
}

// ExecFlags holds the shared execution flags after Register.
type ExecFlags struct {
	dop        *int
	fuse       *bool
	memBudget  *string
	attrBounds *bool
}

// RegisterExec adds -dop, -fuse, and -mem-budget to fs with the standard
// usage text.
func RegisterExec(fs *flag.FlagSet) *ExecFlags {
	return ExecFlagSpec{}.Register(fs)
}

// Register adds the selected execution flags to fs.
func (s ExecFlagSpec) Register(fs *flag.FlagSet) *ExecFlags {
	dopUsage := s.DOPUsage
	if dopUsage == "" {
		dopUsage = "degree of parallelism: 0 = GOMAXPROCS, 1 = serial engine"
	}
	budgetUsage := s.BudgetUsage
	if budgetUsage == "" {
		budgetUsage = "per-query memory budget for sorts/aggregates/joins, e.g. 64M or 2G (empty or 0 = unlimited, never spill)"
	}
	e := &ExecFlags{
		dop:       fs.Int("dop", 0, dopUsage),
		memBudget: fs.String("mem-budget", "", budgetUsage),
	}
	if !s.NoFuse {
		e.fuse = fs.Bool("fuse", false, "compile scan→filter→project(→probe) chains into fused single-loop pipelines (identical results, faster on columnar tables)")
	}
	if !s.NoAttrBounds {
		e.attrBounds = fs.Bool("attr-bounds", false, "attribute-level uncertainty mode: answer every column as a [lower, best-guess, upper] range (AU-DB), enabling aggregates over uncertain data")
	}
	return e
}

// DOP reports the parsed -dop value.
func (e *ExecFlags) DOP() int { return *e.dop }

// Fuse reports the parsed -fuse value (false when not registered).
func (e *ExecFlags) Fuse() bool { return e.fuse != nil && *e.fuse }

// AttrBounds reports the parsed -attr-bounds value (false when not
// registered).
func (e *ExecFlags) AttrBounds() bool { return e.attrBounds != nil && *e.attrBounds }

// MemBudgetRaw reports the unparsed -mem-budget string, for tools with
// extra spellings (cmd/bench accepts "auto").
func (e *ExecFlags) MemBudgetRaw() string { return *e.memBudget }

// MemBudget parses the -mem-budget flag, with the flag name in the error.
func (e *ExecFlags) MemBudget() (int64, error) {
	b, err := physical.ParseByteSize(*e.memBudget)
	if err != nil {
		return 0, fmt.Errorf("-mem-budget: %w", err)
	}
	return b, nil
}

// QueryOpts converts the parsed flags to the frontend's option struct.
func (e *ExecFlags) QueryOpts() (rewrite.QueryOpts, error) {
	budget, err := e.MemBudget()
	if err != nil {
		return rewrite.QueryOpts{}, err
	}
	return rewrite.QueryOpts{DOP: e.DOP(), MemBudget: budget, Fuse: e.Fuse(), AttrBounds: e.AttrBounds()}, nil
}

// TableFlags collects repeatable -table name=path.csv specs.
type TableFlags []string

// String implements flag.Value.
func (t *TableFlags) String() string { return strings.Join(*t, ",") }

// Set implements flag.Value.
func (t *TableFlags) Set(v string) error {
	*t = append(*t, v)
	return nil
}

// RegisterTables adds the repeatable -table flag to fs.
func RegisterTables(fs *flag.FlagSet) *TableFlags {
	var t TableFlags
	fs.Var(&t, "table", "name=path.csv (repeatable)")
	return &t
}

// LoadInto loads every -table spec and registers it on the frontend twice,
// the way the query tools need it: raw (for model-annotated references)
// and deterministic-encoded (for direct references).
func (t TableFlags) LoadInto(front *rewrite.Frontend) error {
	for _, spec := range t {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			return fmt.Errorf("bad -table %q, want name=path.csv", spec)
		}
		tbl, err := csvio.Load(name, path)
		if err != nil {
			return err
		}
		front.Raw.Put(tbl)
		front.Enc.Put(rewrite.EncodeDeterministic(tbl))
	}
	return nil
}

// NewFrontend builds a frontend over a fresh catalog with the loaded
// tables and the parsed execution options — the setup shared by cmd/uadb
// and cmd/uadb-server.
func NewFrontend(tables TableFlags, exec *ExecFlags) (*rewrite.Frontend, error) {
	opts, err := exec.QueryOpts()
	if err != nil {
		return nil, err
	}
	front := rewrite.NewFrontend(engine.NewCatalog())
	front.Opts = opts
	if err := tables.LoadInto(front); err != nil {
		return nil, err
	}
	return front, nil
}
