package maybms

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/types"
)

// Block describes one independent block: the probability of each alternative
// (indexed by alternative position) and the leftover "absent" mass.
type Block struct {
	AltProbs []float64
	Absent   float64
}

// Blocks maps block identifiers to their distributions.
type Blocks map[string]*Block

// BuildDB converts x-relations into a lineage-annotated K-database: each
// alternative's tuple is annotated with the pick of its block. Block ids are
// "<relation>#<x-tuple index>".
func BuildDB(xdbs map[string]*models.XRelation) (*kdb.Database[Lineage], Blocks) {
	db := kdb.NewDatabase[Lineage](Lin)
	blocks := make(Blocks)
	for name, x := range xdbs {
		rel := kdb.New[Lineage](Lin, types.Schema{Name: name, Attrs: x.Schema.Attrs})
		for i, xt := range x.XTuples {
			blockID := fmt.Sprintf("%s#%d", name, i)
			b := &Block{AltProbs: make([]float64, len(xt.Alts))}
			total := 0.0
			for j, alt := range xt.Alts {
				p := alt.Prob
				if !x.Probabilistic {
					// Uniform over alternatives (+ absence when optional).
					n := len(xt.Alts)
					if xt.Optional {
						n++
					}
					p = 1 / float64(n)
				}
				b.AltProbs[j] = p
				total += p
				rel.Add(alt.Data, FromPick(blockID, j))
			}
			b.Absent = 1 - total
			if b.Absent < 0 {
				b.Absent = 0
			}
			blocks[blockID] = b
		}
		db.Put(rel)
	}
	return db, blocks
}

// Eval evaluates an RA⁺ query over the lineage database, producing all
// possible answers annotated with their lineage.
func Eval(q kdb.Query, db *kdb.Database[Lineage]) (*kdb.Relation[Lineage], error) {
	return kdb.Eval(q, db)
}

// Prob computes the exact probability of a lineage via Shannon expansion
// over the blocks it mentions, memoized on canonical form. Blocks are
// independent, so conditioning on one block's outcome splits the DNF into
// independent subproblems.
func (bs Blocks) Prob(l Lineage) float64 {
	memo := make(map[string]float64)
	return bs.prob(l, memo)
}

func (bs Blocks) prob(l Lineage, memo map[string]float64) float64 {
	if len(l) == 0 {
		return 0
	}
	if len(l[0]) == 0 {
		return 1 // contains the empty monomial: TRUE
	}
	key := l.Key()
	if p, ok := memo[key]; ok {
		return p
	}
	// Condition on the first block mentioned.
	block := l[0][0].Block
	b := bs[block]
	if b == nil {
		panic(fmt.Sprintf("maybms: unknown block %q", block))
	}
	total := 0.0
	// Case: block takes alternative j.
	for j, pj := range b.AltProbs {
		if pj == 0 {
			continue
		}
		cond := conditionOn(l, block, j)
		total += pj * bs.prob(cond, memo)
	}
	// Case: block absent — every monomial mentioning the block dies.
	if b.Absent > 0 {
		cond := conditionOn(l, block, -1)
		total += b.Absent * bs.prob(cond, memo)
	}
	memo[key] = total
	return total
}

// conditionOn restricts the DNF to worlds where block takes alternative alt
// (-1 = absent): monomials requiring a different alternative are dropped,
// picks of this block are removed from surviving monomials.
func conditionOn(l Lineage, block string, alt int) Lineage {
	var out []Monomial
	for _, m := range l {
		keep := true
		var reduced Monomial
		for _, p := range m {
			if p.Block == block {
				if p.Alt != alt {
					keep = false
					break
				}
				continue // satisfied pick removed
			}
			reduced = append(reduced, p)
		}
		if keep {
			out = append(out, reduced)
		}
	}
	return canonLineage(out)
}

// ApproxProb estimates the probability by Monte-Carlo sampling of block
// outcomes; eps is the target absolute error bound at ~95% confidence
// (n ≈ 1/eps²).
func (bs Blocks) ApproxProb(l Lineage, eps float64, seed int64) float64 {
	if len(l) == 0 {
		return 0
	}
	if len(l[0]) == 0 {
		return 1
	}
	n := int(1/(eps*eps)) + 1
	rng := rand.New(rand.NewSource(seed))
	// Collect the blocks the lineage mentions.
	blockSet := map[string]bool{}
	for _, m := range l {
		for _, p := range m {
			blockSet[p.Block] = true
		}
	}
	blockIDs := make([]string, 0, len(blockSet))
	for b := range blockSet {
		blockIDs = append(blockIDs, b)
	}
	sort.Strings(blockIDs)
	hits := 0
	assign := make(map[string]int, len(blockIDs))
	for i := 0; i < n; i++ {
		for _, bid := range blockIDs {
			b := bs[bid]
			roll := rng.Float64()
			acc := 0.0
			assign[bid] = -1
			for j, pj := range b.AltProbs {
				acc += pj
				if roll < acc {
					assign[bid] = j
					break
				}
			}
		}
		if satisfied(l, assign) {
			hits++
		}
	}
	return float64(hits) / float64(n)
}

func satisfied(l Lineage, assign map[string]int) bool {
	for _, m := range l {
		ok := true
		for _, p := range m {
			if assign[p.Block] != p.Alt {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ResultTuple pairs a possible answer with its probability.
type ResultTuple struct {
	Tuple types.Tuple
	Prob  float64
}

// Conf computes conf() for every possible answer of a query result, exactly
// (eps ≤ 0) or approximately.
func Conf(rel *kdb.Relation[Lineage], blocks Blocks, eps float64, seed int64) []ResultTuple {
	var out []ResultTuple
	for _, t := range rel.Tuples() {
		l := rel.Get(t)
		var p float64
		if eps > 0 {
			p = blocks.ApproxProb(l, eps, seed)
		} else {
			p = blocks.Prob(l)
		}
		out = append(out, ResultTuple{Tuple: t, Prob: p})
	}
	return out
}
