package maybms

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/incomplete"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/types"
)

func iv(v int64) types.Value { return types.NewInt(v) }

func TestMonomialMerge(t *testing.T) {
	m, ok := newMonomial([]Pick{{"b", 1}, {"a", 0}, {"b", 1}})
	if !ok || len(m) != 2 || m[0].Block != "a" {
		t.Errorf("merge = %v, %v", m, ok)
	}
	if _, ok := newMonomial([]Pick{{"a", 0}, {"a", 1}}); ok {
		t.Error("conflicting picks must be unsatisfiable")
	}
}

func TestLineageSemiringLaws(t *testing.T) {
	elems := []Lineage{
		False(), True(), FromPick("a", 0), FromPick("a", 1), FromPick("b", 0),
		Lin.Mul(FromPick("a", 0), FromPick("b", 0)),
		Lin.Add(FromPick("a", 0), FromPick("b", 0)),
	}
	for _, a := range elems {
		if !Lin.Eq(Lin.Add(a, Lin.Zero()), a) {
			t.Errorf("a ⊕ 0 ≠ a: %s", Lin.Format(a))
		}
		if !Lin.Eq(Lin.Mul(a, Lin.One()), a) {
			t.Errorf("a ⊗ 1 ≠ a: %s", Lin.Format(a))
		}
		if !Lin.Eq(Lin.Mul(a, Lin.Zero()), Lin.Zero()) {
			t.Errorf("a ⊗ 0 ≠ 0")
		}
		for _, b := range elems {
			if !Lin.Eq(Lin.Add(a, b), Lin.Add(b, a)) || !Lin.Eq(Lin.Mul(a, b), Lin.Mul(b, a)) {
				t.Error("commutativity")
			}
			for _, c := range elems {
				l := Lin.Mul(a, Lin.Add(b, c))
				r := Lin.Add(Lin.Mul(a, b), Lin.Mul(a, c))
				if !Lin.Eq(l, r) {
					t.Errorf("distributivity: %s vs %s", Lin.Format(l), Lin.Format(r))
				}
			}
		}
	}
}

func TestAbsorption(t *testing.T) {
	a := FromPick("a", 0)
	ab := Lin.Mul(a, FromPick("b", 0))
	got := Lin.Add(a, ab)
	if !Lin.Eq(got, a) {
		t.Errorf("a ∨ (a∧b) should absorb to a, got %s", Lin.Format(got))
	}
	// Conflicting picks vanish in products.
	if !Lin.IsZero(Lin.Mul(FromPick("a", 0), FromPick("a", 1))) {
		t.Error("conflicting product should be ⊥")
	}
}

func sampleXDB() map[string]*models.XRelation {
	r := models.NewXRelation(types.NewSchema("r", "v"))
	r.Probabilistic = true
	r.Add(models.XTuple{Alts: []models.Alternative{
		{Data: types.Tuple{iv(1)}, Prob: 0.5},
		{Data: types.Tuple{iv(2)}, Prob: 0.5},
	}})
	r.Add(models.XTuple{Alts: []models.Alternative{
		{Data: types.Tuple{iv(2)}, Prob: 0.6},
	}}) // absent with 0.4
	return map[string]*models.XRelation{"r": r}
}

func TestBuildDBAndPossibleAnswers(t *testing.T) {
	db, blocks := BuildDB(sampleXDB())
	rel := db.Get("r")
	if rel.Len() != 2 {
		t.Fatalf("possible tuples = %d, want 2", rel.Len())
	}
	// Tuple (2) has two derivations: block r#0 alt 1 OR block r#1 alt 0.
	l := rel.Get(types.Tuple{iv(2)})
	if len(l) != 2 {
		t.Errorf("lineage of (2) = %s", Lin.Format(l))
	}
	if len(blocks) != 2 {
		t.Error("blocks")
	}
}

func TestExactProbability(t *testing.T) {
	db, blocks := BuildDB(sampleXDB())
	rel := db.Get("r")
	// P(tuple 1) = 0.5.
	p1 := blocks.Prob(rel.Get(types.Tuple{iv(1)}))
	if math.Abs(p1-0.5) > 1e-12 {
		t.Errorf("P(1) = %f", p1)
	}
	// P(tuple 2) = 1 - P(neither) = 1 - 0.5*0.4 = 0.8.
	p2 := blocks.Prob(rel.Get(types.Tuple{iv(2)}))
	if math.Abs(p2-0.8) > 1e-12 {
		t.Errorf("P(2) = %f", p2)
	}
	if blocks.Prob(False()) != 0 || blocks.Prob(True()) != 1 {
		t.Error("trivial lineages")
	}
}

func TestProbMatchesWorldEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		// Random small probabilistic x-relation.
		x := models.NewXRelation(types.NewSchema("r", "a"))
		x.Probabilistic = true
		nx := rng.Intn(3) + 1
		for i := 0; i < nx; i++ {
			nAlts := rng.Intn(2) + 1
			total := 0.0
			var alts []models.Alternative
			for j := 0; j < nAlts; j++ {
				p := rng.Float64() * (1 - total) * 0.9
				total += p
				alts = append(alts, models.Alternative{Data: types.Tuple{iv(rng.Int63n(3))}, Prob: p})
			}
			x.Add(models.XTuple{Alts: alts})
		}
		xdbs := map[string]*models.XRelation{"r": x}
		db, blocks := BuildDB(xdbs)

		q := kdb.ProjectQ{Input: kdb.Table{Name: "r"}, Attrs: []string{"a"}}
		res, err := Eval(q, db)
		if err != nil {
			t.Fatal(err)
		}
		worlds, err := models.WorldsXDB(x)
		if err != nil {
			t.Fatal(err)
		}
		for _, tp := range res.Tuples() {
			want := 0.0
			for i, w := range worlds.Worlds {
				if w.Get("r").Get(tp) > 0 {
					want += worlds.Probs[i]
				}
			}
			got := blocks.Prob(res.Get(tp))
			if math.Abs(got-want) > 1e-9 {
				t.Fatalf("P(%s) = %f, want %f (world enumeration)", tp, got, want)
			}
		}
	}
}

func TestJoinLineage(t *testing.T) {
	xdbs := sampleXDB()
	s := models.NewXRelation(types.NewSchema("s", "w"))
	s.Probabilistic = true
	s.Add(models.XTuple{Alts: []models.Alternative{{Data: types.Tuple{iv(2)}, Prob: 0.5}}})
	xdbs["s"] = s
	db, blocks := BuildDB(xdbs)
	q := kdb.JoinQ{
		Left: kdb.Table{Name: "r"}, Right: kdb.Table{Name: "s"},
		Pred: kdb.AttrAttr{PosLeft: 0, PosRight: 1, Op: kdb.OpEq},
	}
	res, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	// Only (2,2) joins; P = P(r has 2) * P(s has 2) = 0.8 * 0.5 = 0.4.
	tp := types.Tuple{iv(2), iv(2)}
	p := blocks.Prob(res.Get(tp))
	if math.Abs(p-0.4) > 1e-12 {
		t.Errorf("P(join) = %f, want 0.4", p)
	}
}

func TestApproxProb(t *testing.T) {
	db, blocks := BuildDB(sampleXDB())
	rel := db.Get("r")
	l := rel.Get(types.Tuple{iv(2)})
	approx := blocks.ApproxProb(l, 0.05, 42)
	if math.Abs(approx-0.8) > 0.1 {
		t.Errorf("approx = %f, want ≈ 0.8", approx)
	}
	if blocks.ApproxProb(False(), 0.3, 1) != 0 || blocks.ApproxProb(True(), 0.3, 1) != 1 {
		t.Error("trivial approximations")
	}
}

func TestConf(t *testing.T) {
	db, blocks := BuildDB(sampleXDB())
	rel := db.Get("r")
	exact := Conf(rel, blocks, 0, 0)
	if len(exact) != 2 {
		t.Fatal("conf count")
	}
	approx := Conf(rel, blocks, 0.1, 7)
	for i := range exact {
		if math.Abs(exact[i].Prob-approx[i].Prob) > 0.2 {
			t.Errorf("approx conf far from exact: %f vs %f", approx[i].Prob, exact[i].Prob)
		}
	}
}

// TestPossibleAnswersMatchEnumeration: lineage-satisfiable answers equal the
// union of per-world results.
func TestPossibleAnswersMatchEnumeration(t *testing.T) {
	x := sampleXDB()["r"]
	db, _ := BuildDB(map[string]*models.XRelation{"r": x})
	q := kdb.SelectQ{
		Input: kdb.Table{Name: "r"},
		Pred:  kdb.AttrConst{Attr: "v", Op: kdb.OpGe, Const: iv(1)},
	}
	res, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	worlds, err := models.WorldsXDB(x)
	if err != nil {
		t.Fatal(err)
	}
	nat := incomplete.PossibleRelation(worlds, "r")
	for _, tp := range res.Tuples() {
		if nat.Get(tp) == 0 {
			t.Errorf("tuple %s possible per lineage but absent from every world", tp)
		}
	}
}
