// Package maybms implements a MayBMS-style probabilistic query processor
// (Antova, Koch, Olteanu; ICDE 2007/2008) over block-independent databases —
// the "MayBMS" comparison system of the paper's experiments. Query results
// are computed with lineage annotations: each result tuple carries a DNF
// formula over block-alternative picks. Possible answers are tuples with
// satisfiable lineage; confidence computation (the conf() aggregate) is
// exact via Shannon expansion over independent blocks, or approximate via
// Monte-Carlo sampling with an error bound (the paper's "(0.3)" columns).
//
// The cost profile matches the original system: result sizes grow with the
// number of alternatives (all possible answers are produced, Figure 12) and
// probability computation dominates for join-heavy queries (Figure 19).
package maybms

import (
	"fmt"
	"sort"
	"strings"
)

// Pick is one choice: block b takes alternative a.
type Pick struct {
	Block string
	Alt   int
}

func (p Pick) key() string { return fmt.Sprintf("%s\x00%d", p.Block, p.Alt) }

// Monomial is a conjunction of picks, canonically sorted by block, at most
// one pick per block. The nil monomial is unsatisfiable and never stored.
type Monomial []Pick

// newMonomial merges picks, returning ok=false on a block conflict.
func newMonomial(picks []Pick) (Monomial, bool) {
	m := append(Monomial{}, picks...)
	sort.Slice(m, func(i, j int) bool {
		if m[i].Block != m[j].Block {
			return m[i].Block < m[j].Block
		}
		return m[i].Alt < m[j].Alt
	})
	out := m[:0]
	for i, p := range m {
		if i > 0 && p.Block == m[i-1].Block {
			if p.Alt != m[i-1].Alt {
				return nil, false // two different alternatives of one block
			}
			continue // duplicate pick
		}
		out = append(out, p)
	}
	return out, true
}

func (m Monomial) key() string {
	parts := make([]string, len(m))
	for i, p := range m {
		parts[i] = p.key()
	}
	return strings.Join(parts, "\x01")
}

// subsumes reports whether m ⊆ o (m implies o... for DNF absorption: a
// shorter monomial absorbs any superset).
func (m Monomial) subsumes(o Monomial) bool {
	if len(m) > len(o) {
		return false
	}
	i := 0
	for _, p := range o {
		if i < len(m) && m[i] == p {
			i++
		}
	}
	return i == len(m)
}

// Lineage is a DNF over picks in canonical, absorption-reduced form. The
// empty lineage is FALSE (the tuple is impossible); a lineage containing the
// empty monomial is TRUE (the tuple exists in every world).
type Lineage []Monomial

func canonLineage(ms []Monomial) Lineage {
	sort.Slice(ms, func(i, j int) bool {
		if len(ms[i]) != len(ms[j]) {
			return len(ms[i]) < len(ms[j])
		}
		return ms[i].key() < ms[j].key()
	})
	var out Lineage
	for _, m := range ms {
		absorbed := false
		for _, kept := range out {
			if kept.subsumes(m) {
				absorbed = true
				break
			}
		}
		if !absorbed {
			out = append(out, m)
		}
	}
	return out
}

// True is the lineage of a deterministic tuple.
func True() Lineage { return Lineage{{}} }

// False is the lineage of an impossible tuple.
func False() Lineage { return nil }

// FromPick is the lineage of one block alternative.
func FromPick(block string, alt int) Lineage {
	return Lineage{{Pick{Block: block, Alt: alt}}}
}

// Key returns a canonical string form.
func (l Lineage) Key() string {
	parts := make([]string, len(l))
	for i, m := range l {
		parts[i] = m.key()
	}
	return strings.Join(parts, "\x02")
}

// Semiring implements semiring.Semiring[Lineage]: DNF union as ⊕ and
// pairwise monomial merge as ⊗ (conflicting merges vanish). This is the
// positive boolean-expression semiring over block picks, so all kdb RA⁺
// operators evaluate MayBMS-style lineage directly.
type Semiring struct{}

// Lin is the canonical instance.
var Lin = Semiring{}

// Zero returns FALSE.
func (Semiring) Zero() Lineage { return False() }

// One returns TRUE.
func (Semiring) One() Lineage { return True() }

// Add returns the DNF union.
func (Semiring) Add(a, b Lineage) Lineage {
	ms := make([]Monomial, 0, len(a)+len(b))
	ms = append(ms, a...)
	ms = append(ms, b...)
	return canonLineage(ms)
}

// Mul returns all conflict-free pairwise merges.
func (Semiring) Mul(a, b Lineage) Lineage {
	var ms []Monomial
	for _, ma := range a {
		for _, mb := range b {
			merged, ok := newMonomial(append(append([]Pick{}, ma...), mb...))
			if ok {
				ms = append(ms, merged)
			}
		}
	}
	return canonLineage(ms)
}

// Eq compares canonical forms.
func (Semiring) Eq(a, b Lineage) bool { return a.Key() == b.Key() }

// IsZero reports FALSE.
func (Semiring) IsZero(a Lineage) bool { return len(a) == 0 }

// Format renders the DNF.
func (Semiring) Format(a Lineage) string {
	if len(a) == 0 {
		return "⊥"
	}
	parts := make([]string, len(a))
	for i, m := range a {
		if len(m) == 0 {
			parts[i] = "⊤"
			continue
		}
		ps := make([]string, len(m))
		for j, p := range m {
			ps[j] = fmt.Sprintf("%s=%d", p.Block, p.Alt)
		}
		parts[i] = strings.Join(ps, "∧")
	}
	return strings.Join(parts, " ∨ ")
}
