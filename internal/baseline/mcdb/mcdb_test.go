package mcdb

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/models"
	"repro/internal/types"
)

func iv(v int64) types.Value { return types.NewInt(v) }

func sampleXDB() map[string]*models.XRelation {
	r := models.NewXRelation(types.NewSchema("r", "v"))
	r.Probabilistic = true
	r.Add(models.XTuple{Alts: []models.Alternative{
		{Data: types.Tuple{iv(1)}, Prob: 1.0}, // certain
	}})
	r.Add(models.XTuple{Alts: []models.Alternative{
		{Data: types.Tuple{iv(2)}, Prob: 0.5},
		{Data: types.Tuple{iv(3)}, Prob: 0.5},
	}})
	return map[string]*models.XRelation{"r": r}
}

func TestCertainTupleAlwaysAppears(t *testing.T) {
	res, err := Run(sampleXDB(), "SELECT v FROM r", 10, 42)
	if err != nil {
		t.Fatal(err)
	}
	cert := res.CertainTuples()
	found := false
	for _, tp := range cert {
		if tp.Equal(types.Tuple{iv(1)}) {
			found = true
		}
		// Tuples 2/3 with P=0.5 almost surely miss at least one of 10
		// samples; allow but don't require their absence (sampling noise).
	}
	if !found {
		t.Error("tuple with P=1 must appear in all samples")
	}
}

func TestAppearanceFrequencyApproximatesProbability(t *testing.T) {
	res, err := Run(sampleXDB(), "SELECT v FROM r", 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	k2 := types.Tuple{iv(2)}.Key()
	freq := float64(res.Count[k2]) / float64(res.Samples)
	if math.Abs(freq-0.5) > 0.05 {
		t.Errorf("frequency of tuple 2 = %f, want ≈ 0.5", freq)
	}
}

func TestPossibleTuplesUnion(t *testing.T) {
	res, err := Run(sampleXDB(), "SELECT v FROM r", 200, 11)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PossibleTuples()) != 3 {
		t.Errorf("possible = %d, want 3", len(res.PossibleTuples()))
	}
}

func TestSampleWorldRespectsDisjointness(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xdbs := sampleXDB()
	for i := 0; i < 50; i++ {
		cat := SampleWorld(xdbs, rng)
		tbl := cat.Get("r")
		// Block 2 contributes at most one of {2, 3}.
		has2, has3 := false, false
		for _, row := range tbl.Rows {
			switch row[0].Int() {
			case 2:
				has2 = true
			case 3:
				has3 = true
			}
		}
		if has2 && has3 {
			t.Fatal("disjoint alternatives co-occur in a sampled world")
		}
	}
}

func TestNonProbabilisticSampling(t *testing.T) {
	r := models.NewXRelation(types.NewSchema("r", "v"))
	r.AddChoice(types.Tuple{iv(1)}, types.Tuple{iv(2)})
	res, err := Run(map[string]*models.XRelation{"r": r}, "SELECT v FROM r", 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	f1 := float64(res.Count[types.Tuple{iv(1)}.Key()]) / 300
	if math.Abs(f1-0.5) > 0.1 {
		t.Errorf("uniform alternative frequency = %f", f1)
	}
}

func TestRunQueryError(t *testing.T) {
	if _, err := Run(sampleXDB(), "garbage", 1, 1); err == nil {
		t.Error("expected parse error")
	}
	if _, err := Run(sampleXDB(), "SELECT missing FROM r", 1, 1); err == nil {
		t.Error("expected planning error")
	}
}
