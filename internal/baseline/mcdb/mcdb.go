// Package mcdb implements MCDB-style Monte-Carlo query processing (Jampani
// et al., SIGMOD 2008), the sampling baseline of the paper's experiments:
// sample N possible worlds of an uncertain database, run the query
// deterministically in each, and aggregate per-tuple appearance counts. A
// tuple appearing in all samples is (approximately) certain; the union of
// sample results over-approximates nothing but estimates the possible
// answers. Because every sample evaluates the full query, MCDB runs ~N times
// slower than deterministic processing — the behaviour Figures 11 and 14
// report.
package mcdb

import (
	"context"
	"math/rand"

	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/types"
)

// Result aggregates per-tuple appearance statistics across samples.
type Result struct {
	Schema  types.Schema
	Samples int
	// Count maps a tuple key to the number of samples whose query result
	// contained the tuple (at least once).
	Count map[string]int
	// Tuple maps the key back to the tuple.
	Tuple map[string]types.Tuple
}

// CertainTuples returns tuples that appeared in every sample — the
// Monte-Carlo estimate of the certain answers (may contain false positives:
// a tuple missing only from unsampled worlds).
func (r *Result) CertainTuples() []types.Tuple {
	var out []types.Tuple
	for k, c := range r.Count {
		if c == r.Samples {
			out = append(out, r.Tuple[k])
		}
	}
	return out
}

// PossibleTuples returns every tuple seen in any sample.
func (r *Result) PossibleTuples() []types.Tuple {
	out := make([]types.Tuple, 0, len(r.Tuple))
	for _, t := range r.Tuple {
		out = append(out, t)
	}
	return out
}

// SampleWorld instantiates one random world of every x-relation as a
// catalog: for each x-tuple an alternative is drawn according to its
// probability (or uniformly for incomplete x-DBs), with absence taking the
// remaining mass.
func SampleWorld(xdbs map[string]*models.XRelation, rng *rand.Rand) *engine.Catalog {
	cat := engine.NewCatalog()
	for name, x := range xdbs {
		t := engine.NewTable(types.Schema{Name: name, Attrs: x.Schema.Attrs})
		for _, xt := range x.XTuples {
			if len(xt.Alts) == 0 {
				continue
			}
			roll := rng.Float64()
			if !x.Probabilistic {
				// Uniform over alternatives; optional adds an "absent" slot.
				n := len(xt.Alts)
				if xt.Optional {
					n++
				}
				pick := rng.Intn(n)
				if pick < len(xt.Alts) {
					t.Append(append([]types.Value{}, xt.Alts[pick].Data...))
				}
				continue
			}
			acc := 0.0
			for _, alt := range xt.Alts {
				acc += alt.Prob
				if roll < acc {
					t.Append(append([]types.Value{}, alt.Data...))
					break
				}
			}
			// roll ≥ P(τ): x-tuple absent in this world.
		}
		cat.Put(t)
	}
	return cat
}

// Run executes the query over n sampled worlds and aggregates appearance
// counts. The per-sample result is reduced to a set of tuples (MCDB's tuple
// bundles track presence per world).
func Run(xdbs map[string]*models.XRelation, query string, n int, seed int64) (*Result, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	res := &Result{Samples: n, Count: make(map[string]int), Tuple: make(map[string]types.Tuple)}
	for i := 0; i < n; i++ {
		cat := SampleWorld(xdbs, rng)
		plan, err := engine.NewPlanner(cat).Plan(stmt)
		if err != nil {
			return nil, err
		}
		qres, err := engine.NewSession(cat, physical.Options{}).Execute(context.Background(), plan)
		if err != nil {
			return nil, err
		}
		tbl := engine.ResultTable(qres)
		res.Schema = tbl.Schema
		seen := make(map[string]bool, len(tbl.Rows))
		for _, row := range tbl.Rows {
			k := types.Tuple(row).Key()
			if !seen[k] {
				seen[k] = true
				res.Count[k]++
				if _, ok := res.Tuple[k]; !ok {
					res.Tuple[k] = types.Tuple(row).Clone()
				}
			}
		}
	}
	return res, nil
}
