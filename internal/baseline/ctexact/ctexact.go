// Package ctexact implements exact certain-answer computation over C-tables,
// the baseline of the paper's Figure 10 experiment: queries are evaluated
// symbolically — the result of RA⁺ over a C-table is again a C-table whose
// local conditions accumulate selection predicates (∧), join conditions
// (∧), and duplicate merges (∨) — and a result tuple is certain iff its
// accumulated condition is a tautology. The paper discharged tautology
// checks with Z3; this package uses the exact active-domain solver of
// internal/cond (see DESIGN.md for the substitution argument). Cost grows
// super-linearly with query complexity, which is precisely the behaviour
// Figure 10 contrasts with constant-overhead UA-DBs.
package ctexact

import (
	"fmt"

	"repro/internal/cond"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/types"
)

// SymRelation is a symbolic (C-table) relation: rows of terms guarded by
// local conditions, plus the domains of the variables (the closed-world
// valuation space certainty is judged against).
type SymRelation struct {
	Schema  types.Schema
	Rows    []models.CTuple
	Domains map[string][]types.Value
}

// SymDB is a named collection of symbolic relations.
type SymDB map[string]*SymRelation

// FromCTable wraps a models.CTable as a symbolic relation.
func FromCTable(c *models.CTable) *SymRelation {
	doms := make(map[string][]types.Value, len(c.Domains))
	for v, ws := range c.Domains {
		vals := make([]types.Value, len(ws))
		for i, w := range ws {
			vals[i] = w.Value
		}
		doms[v] = vals
	}
	return &SymRelation{Schema: c.Schema, Rows: c.Tuples, Domains: doms}
}

func mergeDomains(a, b map[string][]types.Value) map[string][]types.Value {
	out := make(map[string][]types.Value, len(a)+len(b))
	for v, d := range a {
		out[v] = d
	}
	for v, d := range b {
		out[v] = d
	}
	return out
}

// Eval evaluates an RA⁺ query symbolically. Predicates of the query are
// substituted with the rows' terms: comparisons over two constants fold
// immediately, anything touching a variable is conjoined to the local
// condition.
func Eval(q kdb.Query, db SymDB) (*SymRelation, error) {
	switch n := q.(type) {
	case kdb.Table:
		r, ok := db[n.Name]
		if !ok {
			return nil, fmt.Errorf("ctexact: unknown table %q", n.Name)
		}
		return r, nil
	case kdb.SelectQ:
		in, err := Eval(n.Input, db)
		if err != nil {
			return nil, err
		}
		out := &SymRelation{Schema: in.Schema, Domains: in.Domains}
		for _, row := range in.Rows {
			pred, err := substPred(n.Pred, in.Schema, row.Data)
			if err != nil {
				return nil, err
			}
			combined := cond.Simplify(cond.And{row.Cond, pred})
			if lit, ok := combined.(cond.Lit); ok && !bool(lit) {
				continue // certainly filtered out
			}
			out.Rows = append(out.Rows, models.CTuple{Data: row.Data, Cond: combined})
		}
		return out, nil
	case kdb.ProjectQ:
		in, err := Eval(n.Input, db)
		if err != nil {
			return nil, err
		}
		idx := make([]int, len(n.Attrs))
		for i, a := range n.Attrs {
			j := in.Schema.IndexOf(a)
			if j < 0 {
				return nil, fmt.Errorf("ctexact: unknown attribute %q", a)
			}
			idx[i] = j
		}
		out := &SymRelation{Schema: in.Schema.Project(idx), Domains: in.Domains}
		for _, row := range in.Rows {
			data := make([]cond.Term, len(idx))
			for i, j := range idx {
				data[i] = row.Data[j]
			}
			out.Rows = append(out.Rows, models.CTuple{Data: data, Cond: row.Cond})
		}
		return out, nil
	case kdb.JoinQ:
		l, err := Eval(n.Left, db)
		if err != nil {
			return nil, err
		}
		r, err := Eval(n.Right, db)
		if err != nil {
			return nil, err
		}
		schema := l.Schema.Concat(r.Schema)
		out := &SymRelation{Schema: schema, Domains: mergeDomains(l.Domains, r.Domains)}
		for _, lr := range l.Rows {
			for _, rr := range r.Rows {
				data := append(append([]cond.Term{}, lr.Data...), rr.Data...)
				parts := cond.And{lr.Cond, rr.Cond}
				if n.Pred != nil {
					pred, err := substPred(n.Pred, schema, data)
					if err != nil {
						return nil, err
					}
					parts = append(parts, pred)
				}
				combined := cond.Simplify(parts)
				if lit, ok := combined.(cond.Lit); ok && !bool(lit) {
					continue
				}
				out.Rows = append(out.Rows, models.CTuple{Data: data, Cond: combined})
			}
		}
		return out, nil
	case kdb.UnionQ:
		l, err := Eval(n.Left, db)
		if err != nil {
			return nil, err
		}
		r, err := Eval(n.Right, db)
		if err != nil {
			return nil, err
		}
		out := &SymRelation{Schema: l.Schema, Domains: mergeDomains(l.Domains, r.Domains)}
		out.Rows = append(append([]models.CTuple{}, l.Rows...), r.Rows...)
		return out, nil
	case kdb.RenameQ:
		in, err := Eval(n.Input, db)
		if err != nil {
			return nil, err
		}
		return &SymRelation{
			Schema:  types.Schema{Name: in.Schema.Name, Attrs: n.Attrs},
			Rows:    in.Rows,
			Domains: in.Domains,
		}, nil
	default:
		return nil, fmt.Errorf("ctexact: unsupported query node %T", q)
	}
}

// substPred translates a kdb predicate into a condition over the row's
// terms.
func substPred(p kdb.Predicate, schema types.Schema, data []cond.Term) (cond.Expr, error) {
	switch n := p.(type) {
	case kdb.TruePred:
		return cond.Lit(true), nil
	case kdb.AttrConst:
		i := schema.IndexOf(n.Attr)
		if i < 0 {
			return nil, fmt.Errorf("ctexact: unknown attribute %q", n.Attr)
		}
		return cond.Cmp(data[i], mapOp(n.Op), cond.C(n.Const)), nil
	case kdb.AttrAttr:
		li, ri := n.PosLeft, n.PosRight
		if li < 0 {
			li = schema.IndexOf(n.Left)
		}
		if ri < 0 {
			ri = schema.IndexOf(n.Right)
		}
		if li < 0 || ri < 0 {
			return nil, fmt.Errorf("ctexact: unknown attribute in %s", n)
		}
		return cond.Cmp(data[li], mapOp(n.Op), data[ri]), nil
	case kdb.And:
		var parts cond.And
		for _, c := range n {
			e, err := substPred(c, schema, data)
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		}
		return parts, nil
	case kdb.Or:
		var parts cond.Or
		for _, c := range n {
			e, err := substPred(c, schema, data)
			if err != nil {
				return nil, err
			}
			parts = append(parts, e)
		}
		return parts, nil
	default:
		return nil, fmt.Errorf("ctexact: unsupported predicate %T", p)
	}
}

func mapOp(op kdb.CmpOp) cond.Op {
	switch op {
	case kdb.OpEq:
		return cond.OpEq
	case kdb.OpNe:
		return cond.OpNe
	case kdb.OpLt:
		return cond.OpLt
	case kdb.OpLe:
		return cond.OpLe
	case kdb.OpGt:
		return cond.OpGt
	default:
		return cond.OpGe
	}
}

// CertainAnswer holds one certain result tuple.
type CertainAnswer struct {
	Tuple types.Tuple
}

// CertainTuples computes the exact certain answers among the ground result
// candidates: for each distinct ground tuple value t produced by some row,
// the disjunction over all rows r of (r.Cond ∧ r.Data = t) must be a
// tautology. Rows whose data contains variables contribute through the
// equality constraints. Candidates are drawn from ground rows (a certain
// tuple that only ever appears through variable bindings would require a
// singleton domain, which the workloads here do not produce).
func CertainTuples(rel *SymRelation) []CertainAnswer {
	// Candidate ground tuples.
	cands := make(map[string]types.Tuple)
	for _, row := range rel.Rows {
		if row.IsGround() {
			t := row.Ground()
			cands[t.Key()] = t
		}
	}
	var out []CertainAnswer
	for _, t := range sortedTuples(cands) {
		var disj cond.Or
		for _, row := range rel.Rows {
			eq := cond.And{row.Cond}
			feasible := true
			for i, term := range row.Data {
				if term.IsVar() {
					eq = append(eq, cond.Cmp(term, cond.OpEq, cond.C(t[i])))
				} else if !term.Const.Equal(t[i]) {
					feasible = false
					break
				}
			}
			if feasible {
				disj = append(disj, cond.Simplify(eq))
			}
		}
		if len(disj) > 0 && tautOverDomains(disj, rel.Domains) {
			out = append(out, CertainAnswer{Tuple: t})
		}
	}
	return out
}

// CertainRows counts result rows whose local condition is a tautology over
// the variable domains — the paper's Figure 10 instrumentation, which runs
// the solver once per result tuple. (A ground row with tautological
// condition is a certain answer; rows carrying variables are additionally
// checked, matching "running Z3 over the resulting boolean expression".)
func CertainRows(rel *SymRelation) int {
	n := 0
	for _, row := range rel.Rows {
		if tautOverDomains(row.Cond, rel.Domains) {
			n++
		}
	}
	return n
}

// tautOverDomains reports whether e holds under every valuation of its
// variables drawn from their declared domains. Variables without a declared
// domain range over the representative active domain of e (the open-world
// fallback of cond.Tautology).
func tautOverDomains(e cond.Expr, domains map[string][]types.Value) bool {
	vars := cond.Vars(e)
	if len(vars) == 0 {
		return cond.Eval(e, nil)
	}
	fallback := cond.Domain(e, len(vars))
	domOf := func(v string) []types.Value {
		if d, ok := domains[v]; ok && len(d) > 0 {
			return d
		}
		return fallback
	}
	val := make(cond.Valuation, len(vars))
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			return cond.Eval(e, val)
		}
		for _, d := range domOf(vars[i]) {
			val[vars[i]] = d
			if !rec(i + 1) {
				return false
			}
		}
		return true
	}
	return rec(0)
}

func sortedTuples(m map[string]types.Tuple) []types.Tuple {
	out := make([]types.Tuple, 0, len(m))
	for _, t := range m {
		out = append(out, t)
	}
	// Deterministic order for reproducible experiments.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Compare(out[j-1]) < 0; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
