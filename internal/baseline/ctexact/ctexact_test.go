package ctexact

import (
	"math/rand"
	"testing"

	"repro/internal/cond"
	"repro/internal/incomplete"
	"repro/internal/kdb"
	"repro/internal/models"
	"repro/internal/types"
)

func iv(v int64) types.Value { return types.NewInt(v) }

// example9 builds the paper's Example 9 C-table.
func example9() *models.CTable {
	c := models.NewCTable(types.NewSchema("r", "a", "b"))
	c.Add([]cond.Term{cond.CI(1), cond.V("X")}, cond.Cmp(cond.V("X"), cond.OpEq, cond.CI(1)))
	c.Add([]cond.Term{cond.CI(1), cond.CI(1)}, cond.Cmp(cond.V("X"), cond.OpNe, cond.CI(1)))
	c.SetDomain("X", iv(1), iv(2))
	return c
}

func TestExample9ExactCertainty(t *testing.T) {
	// The exact baseline must recognize (1,1) as certain even though the
	// PTIME labeling scheme cannot (Theorem 2's incompleteness).
	rel := FromCTable(example9())
	answers := CertainTuples(rel)
	if len(answers) != 1 || !answers[0].Tuple.Equal(types.Tuple{iv(1), iv(1)}) {
		t.Fatalf("certain answers = %v, want [(1,1)]", answers)
	}
}

func TestSelectionAccumulatesConditions(t *testing.T) {
	c := models.NewCTable(types.NewSchema("r", "a"))
	c.Add([]cond.Term{cond.V("X")}, cond.Lit(true))
	c.SetDomain("X", iv(1), iv(5))
	db := SymDB{"r": FromCTable(c)}
	q := kdb.SelectQ{
		Input: kdb.Table{Name: "r"},
		Pred:  kdb.AttrConst{Attr: "a", Op: kdb.OpGt, Const: iv(3)},
	}
	res, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The condition must now constrain X > 3.
	if cond.Tautology(res.Rows[0].Cond) {
		t.Error("selection condition must be contingent")
	}
	if !cond.Satisfiable(res.Rows[0].Cond) {
		t.Error("selection condition must be satisfiable")
	}
}

func TestGroundSelectionFoldsImmediately(t *testing.T) {
	c := models.NewCTable(types.NewSchema("r", "a"))
	c.AddGround(types.Tuple{iv(1)})
	c.AddGround(types.Tuple{iv(5)})
	db := SymDB{"r": FromCTable(c)}
	q := kdb.SelectQ{
		Input: kdb.Table{Name: "r"},
		Pred:  kdb.AttrConst{Attr: "a", Op: kdb.OpLt, Const: iv(3)},
	}
	res, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Errorf("ground false rows must be dropped eagerly: %d rows", len(res.Rows))
	}
}

func TestJoinConditionConjunction(t *testing.T) {
	c := models.NewCTable(types.NewSchema("r", "a"))
	c.Add([]cond.Term{cond.V("X")}, cond.Lit(true))
	d := models.NewCTable(types.NewSchema("s", "b"))
	d.AddGround(types.Tuple{iv(2)})
	db := SymDB{"r": FromCTable(c), "s": FromCTable(d)}
	q := kdb.JoinQ{
		Left: kdb.Table{Name: "r"}, Right: kdb.Table{Name: "s"},
		Pred: kdb.AttrAttr{PosLeft: 0, PosRight: 1, Op: kdb.OpEq},
	}
	res, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Condition is X = 2.
	want := cond.Cmp(cond.V("X"), cond.OpEq, cond.CI(2))
	if !cond.Equivalent(res.Rows[0].Cond, want) {
		t.Errorf("condition = %s, want X = 2", res.Rows[0].Cond)
	}
}

// TestCertainMatchesWorldEnumeration cross-validates the symbolic baseline
// against brute-force world enumeration on random C-tables and queries.
func TestCertainMatchesWorldEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		c := models.NewCTable(types.NewSchema("r", "a", "b"))
		nVars := rng.Intn(2) + 1
		vars := []string{"X", "Y"}[:nVars]
		for _, v := range vars {
			c.SetDomain(v, iv(0), iv(1), iv(2))
		}
		for i := 0; i < rng.Intn(4)+2; i++ {
			var data []cond.Term
			for j := 0; j < 2; j++ {
				if rng.Intn(3) == 0 {
					data = append(data, cond.V(vars[rng.Intn(nVars)]))
				} else {
					data = append(data, cond.CI(rng.Int63n(3)))
				}
			}
			var guard cond.Expr = cond.Lit(true)
			if rng.Intn(2) == 0 {
				ops := []cond.Op{cond.OpEq, cond.OpNe, cond.OpLe}
				guard = cond.Cmp(cond.V(vars[rng.Intn(nVars)]), ops[rng.Intn(3)], cond.CI(rng.Int63n(3)))
			}
			c.Add(data, guard)
		}

		var q kdb.Query = kdb.Table{Name: "r"}
		switch rng.Intn(3) {
		case 0:
			q = kdb.SelectQ{Input: q, Pred: kdb.AttrConst{Attr: "a", Op: kdb.OpLe, Const: iv(rng.Int63n(3))}}
		case 1:
			q = kdb.ProjectQ{Input: q, Attrs: []string{"b"}}
		}

		res, err := Eval(q, SymDB{"r": FromCTable(c)})
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]bool{}
		for _, ans := range CertainTuples(res) {
			got[ans.Tuple.Key()] = true
		}

		worlds, err := models.WorldsCTable(c)
		if err != nil {
			t.Fatal(err)
		}
		resWorlds, err := incomplete.EvalWorlds(q, worlds)
		if err != nil {
			t.Fatal(err)
		}
		cert := incomplete.CertainRelation(resWorlds, "result")
		want := map[string]bool{}
		cert.ForEach(func(tp types.Tuple, k int64) {
			if k > 0 {
				want[tp.Key()] = true
			}
		})
		// Exactness in both directions.
		for k := range got {
			if !want[k] {
				t.Fatalf("trial %d: symbolic baseline claims non-certain tuple %q certain", trial, k)
			}
		}
		for k := range want {
			if !got[k] {
				t.Fatalf("trial %d: symbolic baseline missed certain tuple %q", trial, k)
			}
		}
	}
}

func TestUnionAndRename(t *testing.T) {
	c := models.NewCTable(types.NewSchema("r", "a"))
	c.AddGround(types.Tuple{iv(1)})
	d := models.NewCTable(types.NewSchema("s", "b"))
	d.AddGround(types.Tuple{iv(1)})
	db := SymDB{"r": FromCTable(c), "s": FromCTable(d)}
	q := kdb.UnionQ{
		Left:  kdb.RenameQ{Input: kdb.Table{Name: "r"}, Attrs: []string{"v"}},
		Right: kdb.RenameQ{Input: kdb.Table{Name: "s"}, Attrs: []string{"v"}},
	}
	res, err := Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Errorf("union rows = %d", len(res.Rows))
	}
	answers := CertainTuples(res)
	if len(answers) != 1 {
		t.Errorf("certain = %v", answers)
	}
}

func TestEvalErrors(t *testing.T) {
	db := SymDB{}
	if _, err := Eval(kdb.Table{Name: "zzz"}, db); err == nil {
		t.Error("unknown table")
	}
	c := models.NewCTable(types.NewSchema("r", "a"))
	c.AddGround(types.Tuple{iv(1)})
	db["r"] = FromCTable(c)
	if _, err := Eval(kdb.ProjectQ{Input: kdb.Table{Name: "r"}, Attrs: []string{"zzz"}}, db); err == nil {
		t.Error("unknown attribute")
	}
}
