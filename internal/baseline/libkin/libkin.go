// Package libkin implements the certain-answer under-approximation of
// Guagliardo & Libkin (PODS 2016) / Libkin (TODS 2016) for Codd tables —
// databases where missing information is represented by SQL NULLs — used as
// the "Libkin" comparison system in the paper's experiments.
//
// For positive queries the under-approximation evaluates the query with
// certainly-true predicate semantics (a comparison involving NULL is never
// certainly true, so the row is rejected) and keeps only null-free result
// rows: any answer produced this way appears in every completion of the
// database, so the result is a subset of the certain answers (c-sound),
// generalizing Reiter's 1986 algorithm. In contrast to UA-DBs the output
// carries no marking of uncertain-but-likely rows — everything not certainly
// derivable is dropped, which is exactly the utility gap Figure 18 measures.
package libkin

import (
	"context"

	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/physical"
	"repro/internal/sql"
	"repro/internal/types"
)

// Run evaluates query over a catalog whose tables may contain NULLs and
// returns the under-approximation of certain answers. The deterministic
// engine already implements certainly-true WHERE/join semantics (SQL 3VL
// rejects unknown); Run additionally drops result rows containing NULLs.
func Run(cat *engine.Catalog, query string) (*engine.Table, error) {
	stmt, err := sql.Parse(query)
	if err != nil {
		return nil, err
	}
	return RunStmt(cat, stmt)
}

// RunStmt is Run over a parsed statement.
func RunStmt(cat *engine.Catalog, stmt *sql.SelectStmt) (*engine.Table, error) {
	plan, err := engine.NewPlanner(cat).Plan(stmt)
	if err != nil {
		return nil, err
	}
	res, err := engine.NewSession(cat, physical.Options{}).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return StripNullRows(engine.ResultTable(res)), nil
}

// CoddFromXDB converts an x-relation into a Codd table: each x-tuple
// becomes one row whose attributes are NULL wherever the alternatives
// disagree (the information-preserving projection of the x-DB onto the
// null-based model Libkin's technique accepts). Optional x-tuples are kept
// (their absence cannot be represented with attribute nulls; the resulting
// under-approximation stays c-sound for monotone queries only when
// optionality is rare, which matches the PDBench workload where tuples are
// never optional).
func CoddFromXDB(x *models.XRelation) *engine.Table {
	out := engine.NewTable(types.Schema{Name: x.Schema.Name, Attrs: x.Schema.Attrs})
	for _, xt := range x.XTuples {
		if len(xt.Alts) == 0 {
			continue
		}
		row := make([]types.Value, len(xt.Alts[0].Data))
		copy(row, xt.Alts[0].Data)
		for _, alt := range xt.Alts[1:] {
			for i, v := range alt.Data {
				if !row[i].IsNull() && !row[i].Equal(v) {
					row[i] = types.Null()
				}
			}
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}

// CoddCatalog converts a set of x-relations into a catalog of Codd tables.
func CoddCatalog(xdbs map[string]*models.XRelation) *engine.Catalog {
	cat := engine.NewCatalog()
	for _, x := range xdbs {
		cat.Put(CoddFromXDB(x))
	}
	return cat
}

// StripNullRows removes rows containing NULL: a ground certain answer can
// never contain an unknown value.
func StripNullRows(t *engine.Table) *engine.Table {
	out := engine.NewTable(t.Schema)
	for _, row := range t.Rows {
		if !types.Tuple(row).HasNull() {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}
