package libkin

import (
	"context"
	"testing"

	"repro/internal/engine"
	"repro/internal/physical"
	"repro/internal/types"
)

// runDet plans and runs a SQL string against cat via engine.Session.
func runDet(cat *engine.Catalog, query string) (*engine.Table, error) {
	plan, err := engine.NewPlanner(cat).PlanSQL(query)
	if err != nil {
		return nil, err
	}
	res, err := engine.NewSession(cat, physical.Options{}).Execute(context.Background(), plan)
	if err != nil {
		return nil, err
	}
	return engine.ResultTable(res), nil
}

func iv(v int64) types.Value  { return types.NewInt(v) }
func sv(v string) types.Value { return types.NewString(v) }

func coddCatalog() *engine.Catalog {
	cat := engine.NewCatalog()
	r := engine.NewTable(types.NewSchema("r", "id", "city", "pop"))
	r.AppendVals(iv(1), sv("NYC"), iv(8))
	r.AppendVals(iv(2), types.Null(), iv(4)) // unknown city
	r.AppendVals(iv(3), sv("LA"), types.Null())
	cat.Put(r)
	s := engine.NewTable(types.NewSchema("s", "city", "state"))
	s.AppendVals(sv("NYC"), sv("NY"))
	s.AppendVals(sv("LA"), sv("CA"))
	s.AppendVals(types.Null(), sv("TX"))
	cat.Put(s)
	return cat
}

func TestSelectionUnderApproximation(t *testing.T) {
	cat := coddCatalog()
	res, err := Run(cat, "SELECT id FROM r WHERE pop > 3")
	if err != nil {
		t.Fatal(err)
	}
	// Row 3's pop is NULL: not certainly > 3, excluded. Rows 1 and 2 match.
	if res.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", res.NumRows())
	}
}

func TestNullResultRowsDropped(t *testing.T) {
	cat := coddCatalog()
	res, err := Run(cat, "SELECT id, city FROM r")
	if err != nil {
		t.Fatal(err)
	}
	// Row 2 has NULL city: its projection is not a certain ground answer.
	if res.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", res.NumRows())
	}
	for _, row := range res.Rows {
		if types.Tuple(row).HasNull() {
			t.Error("null row leaked")
		}
	}
}

func TestJoinCertainty(t *testing.T) {
	cat := coddCatalog()
	res, err := Run(cat, "SELECT r.id, s.state FROM r, s WHERE r.city = s.city")
	if err != nil {
		t.Fatal(err)
	}
	// Only NYC and LA join certainly; NULL cities never certainly match.
	if res.NumRows() != 2 {
		t.Errorf("rows = %d, want 2", res.NumRows())
	}
}

// TestCSoundAgainstCompletions verifies the under-approximation property on
// a small Codd table by enumerating completions of the nulls over an active
// domain and intersecting the query results.
func TestCSoundAgainstCompletions(t *testing.T) {
	domain := []types.Value{sv("NYC"), sv("LA")}
	query := "SELECT r.id, s.state FROM r, s WHERE r.city = s.city"

	base := coddCatalog()
	approx, err := Run(base, query)
	if err != nil {
		t.Fatal(err)
	}

	// Enumerate completions: r row 2 city ∈ domain, r row 3 pop fixed by
	// copying (pop nulls don't affect this query), s row 3 city ∈ domain.
	certain := map[string]int{}
	n := 0
	for _, c1 := range domain {
		for _, c2 := range domain {
			cat := engine.NewCatalog()
			r := engine.NewTable(types.NewSchema("r", "id", "city", "pop"))
			r.AppendVals(iv(1), sv("NYC"), iv(8))
			r.AppendVals(iv(2), c1, iv(4))
			r.AppendVals(iv(3), sv("LA"), iv(0))
			cat.Put(r)
			s := engine.NewTable(types.NewSchema("s", "city", "state"))
			s.AppendVals(sv("NYC"), sv("NY"))
			s.AppendVals(sv("LA"), sv("CA"))
			s.AppendVals(c2, sv("TX"))
			cat.Put(s)
			res, err := runDet(cat, query)
			if err != nil {
				t.Fatal(err)
			}
			seen := map[string]bool{}
			for _, row := range res.Rows {
				seen[types.Tuple(row).Key()] = true
			}
			for k := range seen {
				certain[k]++
			}
			n++
		}
	}
	// Every approx answer must appear in all completions.
	for _, row := range approx.Rows {
		if certain[types.Tuple(row).Key()] != n {
			t.Errorf("approx answer %v is not certain", row)
		}
	}
}

func TestRunParseError(t *testing.T) {
	if _, err := Run(engine.NewCatalog(), "garbage"); err == nil {
		t.Error("expected parse error")
	}
}
