package core

import (
	"testing"

	"repro/internal/cond"
	"repro/internal/engine"
	"repro/internal/models"
	"repro/internal/types"
)

func iv(v int64) types.Value  { return types.NewInt(v) }
func sv(v string) types.Value { return types.NewString(v) }

func TestEndToEndXRelation(t *testing.T) {
	db := New()
	x := models.NewXRelation(types.NewSchema("sensor", "id", "room"))
	x.AddCertain(types.Tuple{iv(1), sv("lab")})
	x.AddChoice(types.Tuple{iv(2), sv("lab")}, types.Tuple{iv(2), sv("hall")})
	db.AddXRelation(x)

	res, err := db.Query("SELECT id, room FROM sensor WHERE room = 'lab'")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	if res.CertainCount() != 1 {
		t.Errorf("certain = %d, want 1", res.CertainCount())
	}
	for _, row := range res.Rows() {
		switch row.Values[0].Int() {
		case 1:
			if !row.Certain {
				t.Error("row 1 should be certain")
			}
		case 2:
			if row.Certain {
				t.Error("row 2 is ambiguous")
			}
		}
	}
	if len(res.Attrs) != 2 || res.Attrs[0] != "id" {
		t.Errorf("attrs = %v", res.Attrs)
	}
}

func TestBestGuessMatchesQueryRows(t *testing.T) {
	db := New()
	x := models.NewXRelation(types.NewSchema("r", "a"))
	x.AddChoice(types.Tuple{iv(1)}, types.Tuple{iv(2)})
	x.AddCertain(types.Tuple{iv(3)})
	db.AddXRelation(x)

	res, err := db.Query("SELECT a FROM r")
	if err != nil {
		t.Fatal(err)
	}
	bg, err := db.BestGuess("SELECT a FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != bg.NumRows() {
		t.Errorf("UA rows %d != BGQP rows %d (backward compatibility)", res.NumRows(), bg.NumRows())
	}
}

func TestTIRelationAndJoin(t *testing.T) {
	db := New()
	ti := models.NewTIRelation(types.NewSchema("obs", "id", "kind"))
	ti.AddCertain(types.Tuple{iv(1), sv("a")})
	ti.AddOptional(types.Tuple{iv(2), sv("b")}, 0.9)
	ti.AddOptional(types.Tuple{iv(3), sv("c")}, 0.1) // excluded from BGW
	db.AddTIRelation(ti)

	dict := engine.NewTable(types.NewSchema("dict", "kind2", "label"))
	dict.AppendVals(sv("a"), sv("alpha"))
	dict.AppendVals(sv("b"), sv("beta"))
	db.AddDeterministic(dict)

	res, err := db.Query("SELECT o.id, d.label FROM obs o, dict d WHERE o.kind = d.kind2")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 {
		t.Fatalf("rows = %d", res.NumRows())
	}
	for _, row := range res.Rows() {
		want := row.Values[0].Int() == 1 // only the P=1 row is certain
		if row.Certain != want {
			t.Errorf("row %v certain=%v", row.Values, row.Certain)
		}
	}
}

func TestCTable(t *testing.T) {
	db := New()
	c := models.NewCTable(types.NewSchema("r", "a"))
	c.AddGround(types.Tuple{iv(1)})
	c.Add([]cond.Term{cond.CI(2)}, cond.Cmp(cond.V("X"), cond.OpEq, cond.CI(1)))
	c.SetDomain("X", iv(0), iv(1))
	db.AddCTable(c)
	res, err := db.Query("SELECT a FROM r")
	if err != nil {
		t.Fatal(err)
	}
	// BGW binds X to its first domain value 0: row 2 absent.
	if res.NumRows() != 1 || !res.Rows()[0].Certain {
		t.Errorf("result: %+v", res.Rows())
	}
}

func TestRawAnnotationPath(t *testing.T) {
	db := New()
	raw := engine.NewTable(types.NewSchema("m", "v", "p"))
	raw.AppendVals(iv(1), types.NewFloat(1.0))
	raw.AppendVals(iv(2), types.NewFloat(0.6))
	db.AddRaw(raw)
	res, err := db.Query("SELECT v FROM m IS TI WITH PROBABILITY (p)")
	if err != nil {
		t.Fatal(err)
	}
	if res.NumRows() != 2 || res.CertainCount() != 1 {
		t.Errorf("rows=%d certain=%d", res.NumRows(), res.CertainCount())
	}
}

func TestRelationAccessor(t *testing.T) {
	db := New()
	x := models.NewXRelation(types.NewSchema("r", "a"))
	x.AddCertain(types.Tuple{iv(1)})
	db.AddXRelation(x)
	if db.Relation("r") == nil {
		t.Error("Relation accessor")
	}
	if db.Relation("zzz") != nil {
		t.Error("missing relation should be nil")
	}
}

func TestQueryErrors(t *testing.T) {
	db := New()
	if _, err := db.Query("SELECT * FROM nope"); err == nil {
		t.Error("unknown table")
	}
	if _, err := db.Query("not sql"); err == nil {
		t.Error("parse error")
	}
}
